package repro

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFacadeCompileAndRun(t *testing.T) {
	p, err := CompileCapC("t", `func main() { print(41 + 1); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Superscalar())
	if err != nil {
		t.Fatal(err)
	}
	out := res.UserOutput()
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("output = %v", out)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestFacadeListing(t *testing.T) {
	_, asmText, pre, err := CompileCapCListing("t", `
worker w() { return 0; }
func main() { coworker w(); join(); }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, "nthr") {
		t.Fatal("assembly missing nthr")
	}
	if !strings.Contains(pre, "switch (nthr())") {
		t.Fatal("pre-processed listing missing switch")
	}
}

func TestFacadeAssemble(t *testing.T) {
	p, err := Assemble("t.s", "main:\n\tli a0, 7\n\tprint a0\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, SMT())
	if err != nil {
		t.Fatal(err)
	}
	if res.UserOutput()[0] != 7 {
		t.Fatalf("output = %v", res.UserOutput())
	}
}

func TestFacadeConfigs(t *testing.T) {
	if SOMT().EnableDivision != true || SMT().EnableDivision != false {
		t.Fatal("division flags wrong")
	}
	if Superscalar().Contexts != 1 || SOMT().Contexts != 8 {
		t.Fatal("context counts wrong")
	}
	if SMTStatic().DivisionPolicy.String() != "static" {
		t.Fatal("static policy wrong")
	}
}

func TestFacadeTraced(t *testing.T) {
	p, err := CompileCapC("t", `
var acc;
worker w(v) { lock(&acc); acc = acc + v; unlock(&acc); return 0; }
func main() { coworker w(1); coworker w(2); join(); print(acc); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTraced(p, SOMT())
	if err != nil {
		t.Fatal(err)
	}
	if res.UserOutput()[0] != 3 {
		t.Fatalf("acc = %v", res.UserOutput())
	}
	if len(res.Divisions) == 0 {
		t.Fatal("no division events traced")
	}
}

func TestFacadeExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) < 10 {
		t.Fatalf("experiments = %v", ids)
	}
	found := false
	for _, id := range ids {
		if id == "fig3" {
			found = true
		}
	}
	if !found {
		t.Fatal("fig3 missing")
	}
}

func TestFacadeExperimentRuns(t *testing.T) {
	s, err := Experiment("table1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "RUU size") {
		t.Fatalf("table1 output: %s", s)
	}
	if _, err := Experiment("bogus", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeNativeRuntime(t *testing.T) {
	rt, err := NewRuntime(RuntimeConfig{Contexts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(RuntimeConfig{Contexts: -1}); err == nil {
		t.Fatal("negative Contexts accepted")
	}
	var sum int64
	done := make(chan int64, 4)
	for i := 0; i < 4; i++ {
		part := int64(i + 1)
		rt.Divide(func() { done <- part })
	}
	rt.Join()
	close(done)
	for v := range done {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
	var s RuntimeStats = rt.Stats()
	if s.Probes != 4 {
		t.Fatalf("probes = %d, want 4", s.Probes)
	}
	if DefaultRuntime().Contexts() < 1 {
		t.Fatal("default runtime has no contexts")
	}
}

func TestFacadeServer(t *testing.T) {
	srv, err := NewServer(ServerConfig{Runtime: DefaultRuntime()})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/run/quicksort?n=200&seed=1", nil))
	if rec.Code != 200 {
		t.Fatalf("served status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"checksum"`) {
		t.Fatalf("served body missing checksum: %s", rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "capsule_grant_rate") {
		t.Fatalf("metrics scrape failed: %d", rec.Code)
	}
}
