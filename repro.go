// Package repro is the public API of the CAPSULE reproduction: a
// hardware/software co-design for conditionally dividing component programs
// (Palatin, Lhuillier, Temam, "CAPSULE: Hardware-Assisted Parallel
// Execution of Component-Based Programs", MICRO-39, 2006), rebuilt as a
// self-contained Go system.
//
// The pieces, bottom to top:
//
//   - a 64-bit RISC ISA with the paper's component instructions
//     (nthr/kthr/mlock/munlock) — internal/isa;
//   - an assembler/linker — internal/asm — and the CapC compiler
//     (component-C with `worker` functions and `coworker` conditional
//     division) — internal/capc;
//   - the capsule runtime (worker stack pool, heap) — internal/core;
//   - a cycle-level out-of-order SMT timing model with the SOMT extensions:
//     division with death-rate throttling, a LIFO context stack with
//     latency-driven swapping, and the fast lock table — internal/cpu;
//   - the paper's benchmark suite and SPEC CINT2000 proxies —
//     internal/workloads — and every table/figure regenerator —
//     internal/exp;
//   - the native capsule runtime — internal/capsule — which ports the
//     probe/divide protocol to real goroutines (a lock-free bounded
//     context-token pool with LIFO reuse, persistent parked per-context
//     workers, an atomic death-ring throttle and a striped lock table),
//     so the same component algorithms also run at hardware speed
//     outside the simulator (see cmd/caprun; cmd/capstress tracks the
//     hot-path cost in BENCH_capsule.json).
//
// This package re-exports the surface a downstream user needs: compile a
// CapC program, pick one of the paper's machines, run it, and inspect
// cycles and CAPSULE statistics — or build a native Runtime and run
// component Go code on it directly.
package repro

import (
	"repro/internal/asm"
	"repro/internal/capcluster"
	"repro/internal/capserve"
	"repro/internal/capsule"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/prog"
)

// Program is a linked executable image.
type Program = prog.Program

// Config is a machine configuration; Stats the counters of one run.
type (
	Config = cpu.Config
	Stats  = cpu.Stats
)

// RunResult is one timing-simulation outcome.
type RunResult = core.RunResult

// Machine configurations of the paper's three processors.
func SOMT() Config        { return cpu.SOMTConfig() }
func SMT() Config         { return cpu.SMTConfig() }
func SMTStatic() Config   { return cpu.SMTStaticConfig() }
func Superscalar() Config { return cpu.SuperscalarConfig() }

// CompileCapC compiles CapC source and links the capsule runtime, returning
// a runnable program.
func CompileCapC(name, src string) (*Program, error) {
	b, err := core.BuildCapC(name, src)
	if err != nil {
		return nil, err
	}
	return b.Program, nil
}

// CompileCapCListing compiles and also returns the generated assembly and
// the Fig. 2(b)-style pre-processed listing.
func CompileCapCListing(name, src string) (p *Program, asmText, preprocessed string, err error) {
	b, err := core.BuildCapC(name, src)
	if err != nil {
		return nil, "", "", err
	}
	return b.Program, b.Compiled.Asm, b.Compiled.PreProcessed, nil
}

// Assemble links raw assembly units (plus the capsule runtime).
func Assemble(name, src string) (*Program, error) {
	return core.BuildAsm(asm.Unit{Name: name, Text: src})
}

// Run simulates p to completion on cfg.
func Run(p *Program, cfg Config) (*RunResult, error) { return core.RunTiming(p, cfg) }

// RunTraced additionally records division events (for Fig. 6-style trees).
func RunTraced(p *Program, cfg Config) (*RunResult, error) { return core.RunTimingTraced(p, cfg) }

// Experiment regenerates one of the paper's tables/figures by id (fig3,
// fig5, fig6, fig7, fig8, table1, table2, table3, crafty48, vprcache,
// divlat, ablations); quick trades input scale for runtime.
func Experiment(id string, quick bool) (string, error) {
	p := exp.Full()
	if quick {
		p = exp.Quick()
	}
	r, err := exp.Run(id, p)
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// Experiments lists the available experiment ids.
func Experiments() []string { return exp.IDs() }

// Native execution: the probe/divide protocol on real goroutines.
//
// A Runtime is one capsule execution domain; Probe/Divide follow the
// paper's protocol (divide only when a context token is free and the
// death-rate throttle is quiescent, run inline otherwise), on a
// lock-free, allocation-free hot path. A Domain is the division-capable
// scope component code is written against: the Runtime itself, a
// per-task Group (shared pool, private join), or the Sequential
// fallback. A Runtime that should release its parked worker goroutines
// before process exit is shut down with Close.
type (
	Runtime       = capsule.Runtime
	RuntimeConfig = capsule.Config
	RuntimeStats  = capsule.Stats
	Domain        = capsule.Domain
	Group         = capsule.Group
)

// NewRuntime builds a native capsule runtime; zero fields of cfg take the
// documented defaults (GOMAXPROCS contexts, 100µs death window). Invalid
// (negative) fields return an error.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return capsule.NewValidated(cfg) }

// DefaultRuntime builds a native runtime with the standard configuration:
// GOMAXPROCS context tokens and death-rate throttling on.
func DefaultRuntime() *Runtime { return capsule.NewDefault() }

// Serving layer: every native workload as an HTTP endpoint on a shared
// Runtime, with probe/divide admission control, bounded-queue load
// shedding and Prometheus metrics (see internal/capserve and
// cmd/capserve / cmd/capload).
type (
	Server       = capserve.Server
	ServerConfig = capserve.Config
)

// NewServer builds the serving layer over a shared native runtime. The
// returned Server implements http.Handler.
func NewServer(cfg ServerConfig) (*Server, error) { return capserve.New(cfg) }

// Cluster tier: probe/divide across processes. A Router fronts a fleet
// of capserve backends, treating each backend's advertised free capacity
// as remote contexts — remote probes are local credit checks, backend
// failures are cluster-scope deaths feeding a circuit breaker, and
// refusals degrade to the router's own Runtime and from there to
// sequential (see internal/capcluster and cmd/caprouter).
type (
	Router       = capcluster.Router
	RouterConfig = capcluster.Config
)

// NewRouter builds the cluster front end. The returned Router implements
// http.Handler and serves the same /run/{workload} API as a Server.
func NewRouter(cfg RouterConfig) (*Router, error) { return capcluster.New(cfg) }
