// Package capsule is the native software port of the paper's probe/divide
// protocol: the conditional-division runtime that internal/cpu models at
// cycle level, re-implemented on real goroutines so component programs can
// run at hardware speed.
//
// The mapping from the SOMT hardware to this runtime:
//
//   - hardware contexts     → a bounded pool of context tokens (default
//     GOMAXPROCS), so a probe succeeds only when a "hardware context" is
//     free — exactly the paper's resource-aware division condition. Each
//     token owns a persistent goroutine; a granted division hands work
//     to it through a spin-then-park slot (one store + one CAS while the
//     worker spins, a mailbox send once it parked), not a fresh
//     goroutine spawn;
//   - nthr (probe+divide)   → Probe/Spawn, or the fused Divide/TryDivide.
//     The paper's point that the SOMT answers nthr "in a few cycles" is
//     preserved in software: the whole probe path is a handful of atomic
//     loads and one CAS on a per-goroutine shard of a sharded Treiber
//     stack of context ids — no mutex, no allocation, and (like the
//     hardware's per-context resource check) no word shared by every
//     prober — so offering parallelism at every division point stays
//     cheap even under heavy contention. A probe that misses its home
//     shard steals from the others in ring order and refuses only after
//     inspecting all of them;
//   - kthr (worker death)   → token release when the worker function
//     returns, recorded in the death-rate window;
//   - division throttling   → a rolling window of recent worker deaths;
//     when deaths in the window reach half the context count, further
//     probes are denied (Section 3.1's death-rate throttle). The window
//     is a fixed atomic ring of death timestamps, read with one load;
//   - LIFO context stack    → freed tokens are reused most-recently-dead
//     first within each pool shard, keeping the working set on warm
//     stacks/caches (strict whole-pool LIFO when PoolShards is 1);
//   - fast lock table       → a striped lock table keyed by arbitrary
//     64-bit addresses (Lock/Unlock), mirroring mlock/munlock.
//
// The protocol is the paper's: a component *offers* parallelism at each
// division point; the runtime accepts only when resources are free, and on
// refusal the caller runs the same work inline (the sequential fallback
// path the CapC compiler emits after a failed nthr). Programs written this
// way never oversubscribe and never block waiting for a worker slot.
package capsule

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/captrace"
)

// Config parameterises a Runtime. The zero value is usable: every field
// has a documented default applied by New. Negative values are never
// meaningful and are rejected by Validate (New panics on them;
// NewValidated returns the error).
type Config struct {
	// Contexts is the context-token pool size — the software analogue of
	// the SOMT's hardware context count. Default: runtime.GOMAXPROCS(0).
	Contexts int

	// PoolShards is the number of cache-line-padded sub-stacks the free
	// token pool (and the hot Stats counters) are sharded over. Probe pops
	// from a per-goroutine home shard and steals from the others in ring
	// order only on a local miss, so the shard count trades single-shard
	// LIFO warmth for contention-free parallel probing. Default (0):
	// min(GOMAXPROCS, Contexts). 1 reproduces the single global Treiber
	// stack (strict whole-pool LIFO, every prober on one CAS word); values
	// above Contexts are clamped to Contexts.
	PoolShards int

	// Throttle enables death-rate division throttling. Defaulted on by
	// NewDefault; New leaves the zero value (off) untouched so ablations
	// can measure the unthrottled runtime.
	Throttle bool

	// DeathWindow is the rolling window over which worker deaths are
	// counted for the throttle (the software port of the paper's 128-cycle
	// window). Default: 100µs.
	DeathWindow time.Duration

	// DeathThreshold is the death count within DeathWindow that trips the
	// throttle. Default: Contexts/2, the paper's threshold.
	DeathThreshold int

	// LockStripes is the lock-table size (rounded up to a power of two).
	// Default: 256 entries, mirroring the bounded fast lock table.
	LockStripes int

	// Tracer, when non-nil, receives lifecycle events (probe outcomes,
	// handoffs, deaths, throttle transitions) from the hot path. Probe
	// and the Runtime-level Divide/TryDivide stay untraced either way;
	// per-request events flow only through ProbeTraced/NewGroupTraced
	// with a nonzero trace ID, and throttle edges are detected on the
	// death path, admission peeks and traced probes — so an
	// armed-but-unsampled probe runs the same instructions as tracing
	// off (the capstress trace_overhead budget). nil (the default)
	// disables tracing entirely — every instrumentation point is one
	// predictable branch.
	Tracer *captrace.Tracer
}

// Defaults returns the standard configuration: GOMAXPROCS contexts,
// throttling on, the paper-derived window and threshold.
func Defaults() Config {
	return Config{
		Contexts:    runtime.GOMAXPROCS(0),
		Throttle:    true,
		DeathWindow: 100 * time.Microsecond,
		LockStripes: 256,
	}
}

// Validate reports whether every field of c is meaningful. Zero fields
// are valid — they take the documented defaults — but negative counts,
// thresholds or windows have no sensible reading and were previously
// absorbed silently into the defaults; now they are errors.
func (c Config) Validate() error {
	if c.Contexts < 0 {
		return fmt.Errorf("capsule: Contexts must be >= 0 (0 means GOMAXPROCS), got %d", c.Contexts)
	}
	if c.PoolShards < 0 {
		return fmt.Errorf("capsule: PoolShards must be >= 0 (0 means min(GOMAXPROCS, Contexts)), got %d", c.PoolShards)
	}
	if c.DeathWindow < 0 {
		return fmt.Errorf("capsule: DeathWindow must be >= 0 (0 means 100µs default), got %v", c.DeathWindow)
	}
	if c.DeathThreshold < 0 {
		return fmt.Errorf("capsule: DeathThreshold must be >= 0 (0 means Contexts/2), got %d", c.DeathThreshold)
	}
	if c.LockStripes < 0 {
		return fmt.Errorf("capsule: LockStripes must be >= 0 (0 means 256), got %d", c.LockStripes)
	}
	return nil
}

// Stats is a snapshot of a Runtime's counters. All counts are cumulative
// since New (or the last ResetStats).
type Stats struct {
	Probes         uint64 `json:"probes"`          // division probes (nthr attempts)
	Granted        uint64 `json:"granted"`         // probes that reserved a context token
	NoCtxDenies    uint64 `json:"no_ctx_denies"`   // probes refused because the pool was empty
	ThrottleDenies uint64 `json:"throttle_denies"` // probes refused by the death-rate throttle
	InlineRuns     uint64 `json:"inline_runs"`     // Divide calls that ran the work inline
	Deaths         uint64 `json:"deaths"`          // worker terminations (kthr)
	TotalWorkers   uint64 `json:"total_workers"`   // workers ever spawned
	PeakWorkers    int    `json:"peak_workers"`    // maximum simultaneously live workers
	LockAcquires   uint64 `json:"lock_acquires"`   // lock-table acquisitions

	// Sharded-pool internals (PR 5), aggregated over shards: grants
	// served by the prober's home shard, grants that stole from another
	// shard, and refusals reached only after sweeping every shard empty.
	// ShardLocalHits + ShardSteals == Granted, and ShardFullSweeps <=
	// NoCtxDenies (closed-runtime denies refuse without sweeping).
	ShardLocalHits  uint64 `json:"shard_local_hits"`
	ShardSteals     uint64 `json:"shard_steals"`
	ShardFullSweeps uint64 `json:"shard_full_sweeps"`
}

// Delta returns the counters accumulated since prev, an earlier snapshot
// of the same Runtime: s - prev field by field. PeakWorkers is a
// high-water mark, not a cumulative count, so the later snapshot's value
// carries through unchanged. Snapshot-then-delta is how a shared runtime
// is observed without ResetStats (which would clobber concurrent
// observers): take Stats() before, Stats() after, and Delta the two.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Probes:          s.Probes - prev.Probes,
		Granted:         s.Granted - prev.Granted,
		NoCtxDenies:     s.NoCtxDenies - prev.NoCtxDenies,
		ThrottleDenies:  s.ThrottleDenies - prev.ThrottleDenies,
		InlineRuns:      s.InlineRuns - prev.InlineRuns,
		Deaths:          s.Deaths - prev.Deaths,
		TotalWorkers:    s.TotalWorkers - prev.TotalWorkers,
		PeakWorkers:     s.PeakWorkers,
		LockAcquires:    s.LockAcquires - prev.LockAcquires,
		ShardLocalHits:  s.ShardLocalHits - prev.ShardLocalHits,
		ShardSteals:     s.ShardSteals - prev.ShardSteals,
		ShardFullSweeps: s.ShardFullSweeps - prev.ShardFullSweeps,
	}
}

// GrantRate is the fraction of probes that succeeded (Table 3's
// "% divisions allowed"). It doubles as the steal-free work balance:
// CAPSULE distributes work purely by conditional division — there is no
// work stealing, and a refused probe always leaves the offered work with
// the offering worker (inline in Divide, or the caller's else-branch
// after TryDivide) — so the grant rate is exactly the fraction of
// division offers whose work moved to a fresh worker.
func (s Stats) GrantRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Granted) / float64(s.Probes)
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"probes=%d granted=%d (%.0f%%) denies[noctx=%d throttle=%d] inline=%d deaths=%d workers[total=%d peak=%d] locks=%d",
		s.Probes, s.Granted, 100*s.GrantRate(), s.NoCtxDenies, s.ThrottleDenies,
		s.InlineRuns, s.Deaths, s.TotalWorkers, s.PeakWorkers, s.LockAcquires)
}

// A Context is a reserved context token returned by a successful Probe.
// It must be consumed by exactly one Spawn or Release.
type Context struct {
	rt *Runtime
	id int
}

// ID is the hardware-context index this token reserves (stable across the
// runtime's lifetime; LIFO reuse means recently-died ids recur first).
func (c *Context) ID() int { return c.id }

// Runtime is one capsule execution domain: a context pool, a death window,
// a lock table and a join group. A Runtime is safe for concurrent use by
// any number of workers. Probe, TryDivide refusal and Release are
// lock-free and allocation-free; a granted Spawn is a spin-then-park
// handoff to the token's persistent worker (slot store + CAS on the fast
// path, mailbox send to a parked worker). A Runtime that should release
// its worker goroutines is shut down with Close; one that lives as long
// as the process (the common case) need not bother.
type Runtime struct {
	cfg     Config
	nshards int // pool and stat shard count: min(GOMAXPROCS, Contexts) by default

	pool shardedPool // lock-free per-shard LIFOs of free context ids
	ctxs []Context   // preallocated tokens, one per id: Probe allocates nothing
	ring deathRing   // death timestamps for the throttle

	workers   []chan job    // per-context park mailbox (the handoff slow path)
	wstate    []workerState // per-context spin-then-park handoff slot
	workerWG  sync.WaitGroup
	closed    atomic.Bool
	closeOnce sync.Once
	closedCh  chan struct{}

	// Hot counters, sharded like the pool so Probe on one core never
	// false-shares a counter line with Release on another; Stats()
	// aggregates the blocks on read.
	//
	// Counter discipline (the Stats no-tear invariant): Probe bumps its
	// outcome counter (localHits / steals / fullSweeps / closedDenies /
	// throttleDenies) BEFORE probes in the SAME shard block, and Stats
	// loads every shard's probes before any shard's outcome counters —
	// so each shard contributes no more probes than outcomes to the
	// snapshot, and every snapshot satisfies Probes <= Granted +
	// NoCtxDenies + ThrottleDenies (Granted and NoCtxDenies being
	// derived sums of those outcomes), with equality at quiescence.
	stats []statShard

	// Tracing (nil tracer = off). ctxTrace[id] is the trace ID of the
	// request whose division currently occupies context id, written by
	// the spawner before the handoff and read by the worker at death —
	// plain memory, ordered by the same handoff edge that publishes the
	// job itself. throttleOpen mirrors the last observed throttle state
	// so transitions (not levels) become KThrottleOpen/Close events.
	tracer       *captrace.Tracer
	ctxTrace     []uint64
	throttleOpen atomic.Bool

	live atomic.Int64
	peak atomic.Int64

	wg sync.WaitGroup

	stripes  []sync.Mutex
	lockMask uint64

	// now is the monotonic clock, injectable by tests to drive the death
	// window deterministically.
	now func() int64
}

// New builds a Runtime from cfg, applying defaults for zero fields. It
// panics if cfg fails Validate; use NewValidated to get the error
// instead.
func New(cfg Config) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Contexts <= 0 {
		cfg.Contexts = runtime.GOMAXPROCS(0)
	}
	if cfg.DeathWindow <= 0 {
		cfg.DeathWindow = 100 * time.Microsecond
	}
	if cfg.DeathThreshold <= 0 {
		cfg.DeathThreshold = cfg.Contexts / 2
		if cfg.DeathThreshold < 1 {
			cfg.DeathThreshold = 1
		}
	}
	if cfg.LockStripes <= 0 {
		cfg.LockStripes = 256
	}
	if cfg.PoolShards <= 0 {
		cfg.PoolShards = poolShards(cfg.Contexts)
	}
	if cfg.PoolShards > cfg.Contexts {
		cfg.PoolShards = cfg.Contexts
	}
	stripes := 1
	for stripes < cfg.LockStripes {
		stripes <<= 1
	}
	rt := &Runtime{
		cfg:      cfg,
		nshards:  cfg.PoolShards,
		workers:  make([]chan job, cfg.Contexts),
		wstate:   make([]workerState, cfg.Contexts),
		stats:    make([]statShard, cfg.PoolShards),
		closedCh: make(chan struct{}),
		stripes:  make([]sync.Mutex, stripes),
		lockMask: uint64(stripes - 1),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	rt.tracer = cfg.Tracer
	rt.pool.init(cfg.Contexts, cfg.PoolShards)
	rt.ring.init(cfg.DeathThreshold)
	rt.ctxs = make([]Context, cfg.Contexts)
	rt.ctxTrace = make([]uint64, cfg.Contexts)
	rt.workerWG.Add(cfg.Contexts)
	for i := range rt.ctxs {
		rt.ctxs[i] = Context{rt: rt, id: i}
		rt.workers[i] = make(chan job, 1)
		go rt.workerLoop(i)
	}
	return rt
}

// NewValidated is New for configurations built from external input (flags,
// requests): it returns cfg's validation error instead of panicking.
func NewValidated(cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// NewDefault is New(Defaults()).
func NewDefault() *Runtime { return New(Defaults()) }

// Contexts returns the context-pool size.
func (rt *Runtime) Contexts() int { return rt.cfg.Contexts }

// FreeContexts returns the number of currently unreserved context tokens.
// It is a point-in-time observation, not a reservation — a caller that
// needs the token must Probe — and it does not count as a probe, so
// admission-style peeks (is any parallelism even available?) don't
// distort the division grant rate. It is one atomic load per pool shard.
func (rt *Runtime) FreeContexts() int { return rt.pool.free() }

// CanDivide reports whether a probe made now would succeed: the runtime
// is open, a context token is free AND the death-rate throttle is
// quiescent. Like FreeContexts it is a non-counting peek, so admission
// checks that use it leave the grant rate to real offers — and unlike
// FreeContexts it agrees with Probe's full condition, so a caller that
// degrades on !CanDivide won't pour doomed offers into a throttled
// runtime. It is a few atomic loads: cheap enough for every request.
func (rt *Runtime) CanDivide() bool {
	if rt.closed.Load() {
		return false
	}
	open := rt.throttled()
	rt.traceThrottleEdge(open)
	if open {
		return false
	}
	return rt.pool.free() > 0
}

// throttled is Probe's death-rate condition: at least DeathThreshold
// deaths inside the trailing DeathWindow. One or two atomic loads against
// the death ring, and a clock read only when enough deaths exist to
// possibly trip — the software analogue of the SOMT's window monitor
// answering in a few cycles.
func (rt *Runtime) throttled() bool {
	if !rt.cfg.Throttle {
		return false
	}
	return rt.ring.atLeast(rt.cfg.DeathThreshold, rt.now, rt.cfg.DeathWindow.Nanoseconds())
}

// traceThrottleEdge records an open/close transition of the death-rate
// throttle against the last observed state. It is deliberately kept off
// the untraced probe fast path — an armed-but-unsampled probe pays no
// extra atomic loads for it (the capstress trace_overhead budget) — and
// is instead driven from the sites that can actually witness an edge
// promptly: death recording (deaths are what open the throttle),
// CanDivide admission peeks, and traced probes (which sample the level
// anyway). open is the caller's freshly computed throttled() level.
func (rt *Runtime) traceThrottleEdge(open bool) {
	if rt.tracer == nil || open == rt.throttleOpen.Load() {
		return
	}
	// Transition, not level: exactly one racing observer wins the CAS
	// and records the edge. Trace ID 0 — the throttle is runtime
	// state, not any one request's.
	if rt.throttleOpen.CompareAndSwap(!open, open) {
		kind := captrace.KThrottleClose
		if open {
			kind = captrace.KThrottleOpen
		}
		rt.tracer.Record(kind, 0, 0, 0, 0)
	}
}

// Probe attempts to reserve a context token: the paper's nthr condition.
// It succeeds only when the pool has a free token and the death-rate
// throttle is quiescent. On success the returned Context MUST be consumed
// by Spawn or Release; on failure the caller takes its sequential path.
// Probe never takes a mutex and never allocates (the returned Context is
// the token's preallocated struct).
//
// Counter order matters here: the outcome counter is bumped before the
// probes counter (and Stats reads them in the opposite order), so a
// concurrent snapshot can never observe a probe whose outcome is missing
// — Probes <= Granted + NoCtxDenies + ThrottleDenies holds in every
// snapshot (absent a concurrent ResetStats, which trades that guarantee
// away; see its doc).
func (rt *Runtime) Probe() (*Context, bool) { return rt.probe(0) }

// ProbeTraced is Probe with a trace identity: when tid is nonzero and
// the runtime has a Tracer, the probe's outcome (grant with shard and
// steal distance, or refusal with its reason) is recorded against tid,
// and a subsequent Spawn of the returned context tags its handoff and
// death the same way. tid 0 is exactly Probe.
func (rt *Runtime) ProbeTraced(tid uint64) (*Context, bool) { return rt.probe(tid) }

func (rt *Runtime) probe(tid uint64) (*Context, bool) {
	h := affinityHint(rt.nshards)
	st := &rt.stats[h]
	if rt.closed.Load() {
		// A closed runtime grants nothing; the pool is (being) drained, so
		// "no context" is the refusal Stats reports (NoCtxDenies sums
		// these with the pool-empty sweeps).
		st.closedDenies.Add(1)
		st.probes.Add(1)
		if tid != 0 {
			rt.tracer.Record(captrace.KProbeDenied, tid, uint8(h), captrace.DenyClosed, 0)
		}
		return nil, false
	}
	open := rt.throttled()
	if tid != 0 {
		rt.traceThrottleEdge(open)
	}
	if open {
		st.throttleDenies.Add(1)
		st.probes.Add(1)
		if tid != 0 {
			rt.tracer.Record(captrace.KProbeDenied, tid, uint8(h), captrace.DenyThrottle, 0)
		}
		return nil, false
	}
	id, steals, ok := rt.pool.popScan(h)
	if !ok {
		// fullSweeps IS this path's outcome counter (Stats folds it into
		// NoCtxDenies), so the empty-pool refusal pays the same two
		// counter bumps it did before the per-shard breakdown existed.
		st.fullSweeps.Add(1)
		st.probes.Add(1)
		if tid != 0 {
			rt.tracer.Record(captrace.KProbeDenied, tid, uint8(h), captrace.DenyNoCtx, 0)
		}
		return nil, false
	}
	// localHits/steals ARE the grant outcome counters (Granted is their
	// sum, derived in Stats): the grant path stays at two bumps.
	if steals == 0 {
		st.localHits.Add(1)
	} else {
		st.steals.Add(1)
	}
	st.probes.Add(1)
	if tid != 0 {
		rt.tracer.Record(captrace.KProbeGranted, tid, uint8(h), uint16(steals), uint32(id))
	}
	return &rt.ctxs[id], true
}

// Spawn consumes a reserved token and hands fn to the token's persistent
// worker. The worker's return is the kthr: the token goes back on its
// shard's LIFO stack and the death is recorded for the throttle. The
// hand-off is non-blocking by construction — a slot store + CAS when the
// worker is still spinning after its last job, a buffered channel send
// once it parked; either way no goroutine spawn and no allocation beyond
// fn's own closure (see worker.go).
func (rt *Runtime) Spawn(c *Context, fn func()) { rt.spawnOn(c, fn, nil, 0) }

// spawnOn is Spawn with an optional extra join group and trace identity:
// when g is non-nil the worker is also counted in g, so Group.Join can
// wait for exactly its own workers while Runtime.Join still covers
// everyone. The extra Done fires after the token release, so by the time
// a group join returns its workers' deaths are visible in the runtime's
// stats and pool. tid tags the context's handoff and eventual death in
// the tracer (0 = untraced); the ctxTrace store is unconditional so a
// context last used by a traced request never mis-attributes its next,
// untraced occupant. The store is safely ordered: only the token holder
// writes it, and the worker reads it after the handoff edge.
func (rt *Runtime) spawnOn(c *Context, fn func(), g *sync.WaitGroup, tid uint64) {
	if c == nil || c.rt != rt {
		panic("capsule: Spawn with foreign or nil context")
	}
	if fn == nil {
		panic("capsule: Spawn with nil fn")
	}
	rt.ctxTrace[c.id] = tid
	rt.stat().totalWorkers.Add(1)
	live := rt.live.Add(1)
	for {
		p := rt.peak.Load()
		if live <= p || rt.peak.CompareAndSwap(p, live) {
			break
		}
	}
	rt.wg.Add(1)
	if g != nil {
		g.Add(1)
	}
	rt.sendJob(c.id, job{fn: fn, g: g})
}

// stat returns the calling goroutine's home counter block — the same
// shard pick Probe uses for the pool.
func (rt *Runtime) stat() *statShard { return &rt.stats[affinityHint(rt.nshards)] }

// Release returns an unused token to the pool without running anything
// (a probe the caller decided not to act on). It does not count as a
// death. Lock-free and allocation-free: one CAS.
func (rt *Runtime) Release(c *Context) {
	if c == nil || c.rt != rt {
		panic("capsule: Release with foreign or nil context")
	}
	rt.pool.push(c.id, affinityHint(rt.nshards))
}

// release is the kthr path: the worker died, its context is free again.
// The death is recorded before the token is pushed, so a probe that wins
// the recycled token observes the throttle state its death produced. The
// token lands on the worker goroutine's own home shard — persistent
// workers have stable stacks, so a context that keeps dying on one core
// keeps being re-granted from that core's shard.
func (rt *Runtime) release(id int) {
	h := affinityHint(rt.nshards)
	rt.live.Add(-1)
	rt.stats[h].deaths.Add(1)
	if rt.cfg.Throttle {
		rt.ring.record(rt.now())
		if rt.tracer != nil {
			// The death this worker just recorded may have tripped the
			// throttle: the death path, not the probe path, is where open
			// edges are born, so check here while the ring line is hot.
			rt.traceThrottleEdge(rt.throttled())
		}
	}
	if tid := rt.ctxTrace[id]; tid != 0 {
		// Read is safe pre-push: the worker still owns the token here, and
		// the spawner's ctxTrace store happened-before the job arrived.
		rt.tracer.Record(captrace.KDeath, tid, uint8(h), 0, uint32(id))
	}
	rt.pool.push(id, h)
	rt.wg.Done()
}

// TryDivide probes and, on success, spawns fn as a worker and returns
// true. On refusal it does nothing and returns false — the caller's
// `else` branch, for programs (like the paper's LZW) that interleave a
// unit of inline work between probes rather than forfeiting the whole
// range.
func (rt *Runtime) TryDivide(fn func()) bool {
	c, ok := rt.Probe()
	if !ok {
		return false
	}
	rt.Spawn(c, fn)
	return true
}

// Divide is the fused protocol: probe, and either spawn fn on a fresh
// worker (true) or run it inline to completion on the caller (false).
// Either way fn's work is done or underway when Divide returns, which is
// the CapC `coworker f(...)` statement without an else clause.
func (rt *Runtime) Divide(fn func()) bool {
	if rt.TryDivide(fn) {
		return true
	}
	rt.stat().inlineRuns.Add(1)
	fn()
	return false
}

// Join blocks until every spawned worker has died. Mirrors the CapC
// join(): only the component that owns the group may call it, and it must
// not race with new top-level divisions (divisions *from live workers*
// are fine — the group cannot hit zero while the divider is alive).
func (rt *Runtime) Join() { rt.wg.Wait() }

// Lock acquires the table entry for key (mlock). Keys are arbitrary
// 64-bit addresses; the table is striped, so distinct keys may share an
// entry — coarser, never incorrect, exactly like the bounded hardware
// table.
func (rt *Runtime) Lock(key uint64) {
	rt.stat().lockAcquires.Add(1)
	rt.stripes[mix(key)&rt.lockMask].Lock()
}

// Unlock releases the table entry for key (munlock).
func (rt *Runtime) Unlock(key uint64) {
	rt.stripes[mix(key)&rt.lockMask].Unlock()
}

// mix is a 64-bit finaliser (splitmix64) so dense keys spread over
// stripes.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stats snapshots the counters, aggregating the per-shard blocks.
// Snapshots are tear-free in the accounting direction: every shard's
// probes counter is loaded before any shard's outcome counters (and
// Probe bumps its outcome before its probes, both in one shard block),
// so each shard contributes no more probes than outcomes and Probes <=
// Granted + NoCtxDenies + ThrottleDenies in every snapshot, with
// equality once probers quiesce (ResetStats racing live probers is the
// one documented exception).
func (rt *Runtime) Stats() Stats {
	var s Stats
	for i := range rt.stats {
		s.Probes += rt.stats[i].probes.Load() // first pass: see the invariant note above
	}
	for i := range rt.stats {
		st := &rt.stats[i]
		// Granted and the pool-empty denies are derived, not separately
		// counted: localHits/steals/fullSweeps are the outcome counters
		// the hot path actually bumps.
		localHits := st.localHits.Load()
		steals := st.steals.Load()
		sweeps := st.fullSweeps.Load()
		s.Granted += localHits + steals
		s.NoCtxDenies += st.closedDenies.Load() + sweeps
		s.ThrottleDenies += st.throttleDenies.Load()
		s.InlineRuns += st.inlineRuns.Load()
		s.Deaths += st.deaths.Load()
		s.TotalWorkers += st.totalWorkers.Load()
		s.LockAcquires += st.lockAcquires.Load()
		s.ShardLocalHits += localHits
		s.ShardSteals += steals
		s.ShardFullSweeps += sweeps
	}
	s.PeakWorkers = int(rt.peak.Load())
	return s
}

// ShardCounters is one stat shard's pool-behaviour counters, the
// per-shard breakdown behind Stats' ShardLocalHits/ShardSteals/
// ShardFullSweeps aggregates. Free is the matching pool shard's current
// free-token count (a peek, like FreeContexts).
type ShardCounters struct {
	LocalHits  uint64 `json:"local_hits"`
	Steals     uint64 `json:"steals"`
	FullSweeps uint64 `json:"full_sweeps"`
	Free       int    `json:"free"`
}

// ShardCounterSnapshot returns each shard's counters in shard order —
// the read-side aggregation point for the capsule_shard_* metrics
// series. Note the attribution: a shard's block counts probes *homed*
// there (the prober's affinity), so a shard's Steals are grants its
// probers took from elsewhere, not tokens taken from it.
func (rt *Runtime) ShardCounterSnapshot() []ShardCounters {
	out := make([]ShardCounters, rt.nshards)
	rt.ReadShardCounters(out)
	return out
}

// ReadShardCounters fills dst with up to nshards shards' counters in
// shard order and returns the runtime's shard count (which may exceed
// len(dst)). It is the allocation-free variant of ShardCounterSnapshot
// for periodic samplers (capwatch) that re-read the counters every tick
// into a preallocated slot: call once with nil to size the buffer, then
// reuse it forever.
func (rt *Runtime) ReadShardCounters(dst []ShardCounters) int {
	n := rt.nshards
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		st := &rt.stats[i]
		dst[i] = ShardCounters{
			LocalHits:  st.localHits.Load(),
			Steals:     st.steals.Load(),
			FullSweeps: st.fullSweeps.Load(),
			Free:       int(rt.pool.shards[i].free.Load()),
		}
		if dst[i].Free < 0 {
			dst[i].Free = 0
		}
	}
	return rt.nshards
}

// Tracer returns the tracer this runtime records into (nil when
// tracing is disabled) — the handle the serving tier snapshots for
// /debug/trace.
func (rt *Runtime) Tracer() *captrace.Tracer { return rt.tracer }

// ResetStats zeroes the counters (the context pool and death window are
// left alone: resource state is not statistics). The accounting
// invariant (Probes <= outcomes) is guaranteed since New or since a
// ResetStats made at quiescence; a reset racing a mid-flight Probe can
// strand that one probe's counters on opposite sides of the wipe and
// leave the totals off by one either way. Concurrent observers should
// use Stats().Delta snapshots instead of resetting (see Stats.Delta).
func (rt *Runtime) ResetStats() {
	for i := range rt.stats {
		st := &rt.stats[i]
		st.probes.Store(0)
		st.closedDenies.Store(0)
		st.throttleDenies.Store(0)
		st.inlineRuns.Store(0)
		st.deaths.Store(0)
		st.totalWorkers.Store(0)
		st.lockAcquires.Store(0)
		st.localHits.Store(0)
		st.steals.Store(0)
		st.fullSweeps.Store(0)
	}
	rt.peak.Store(rt.live.Load())
}
