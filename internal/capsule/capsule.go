// Package capsule is the native software port of the paper's probe/divide
// protocol: the conditional-division runtime that internal/cpu models at
// cycle level, re-implemented on real goroutines so component programs can
// run at hardware speed.
//
// The mapping from the SOMT hardware to this runtime:
//
//   - hardware contexts     → a bounded pool of context tokens (default
//     GOMAXPROCS), so a probe succeeds only when a "hardware context" is
//     free — exactly the paper's resource-aware division condition;
//   - nthr (probe+divide)   → Probe/Spawn, or the fused Divide/TryDivide;
//   - kthr (worker death)   → token release when the worker function
//     returns, recorded in the death-rate window;
//   - division throttling   → a rolling window of recent worker deaths;
//     when deaths in the window reach half the context count, further
//     probes are denied (Section 3.1's death-rate throttle);
//   - LIFO context stack    → freed tokens are reused most-recently-dead
//     first, keeping the working set on warm stacks/caches;
//   - fast lock table       → a striped lock table keyed by arbitrary
//      64-bit addresses (Lock/Unlock), mirroring mlock/munlock.
//
// The protocol is the paper's: a component *offers* parallelism at each
// division point; the runtime accepts only when resources are free, and on
// refusal the caller runs the same work inline (the sequential fallback
// path the CapC compiler emits after a failed nthr). Programs written this
// way never oversubscribe and never block waiting for a worker slot.
package capsule

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises a Runtime. The zero value is usable: every field
// has a documented default applied by New. Negative values are never
// meaningful and are rejected by Validate (New panics on them;
// NewValidated returns the error).
type Config struct {
	// Contexts is the context-token pool size — the software analogue of
	// the SOMT's hardware context count. Default: runtime.GOMAXPROCS(0).
	Contexts int

	// Throttle enables death-rate division throttling. Defaulted on by
	// NewDefault; New leaves the zero value (off) untouched so ablations
	// can measure the unthrottled runtime.
	Throttle bool

	// DeathWindow is the rolling window over which worker deaths are
	// counted for the throttle (the software port of the paper's 128-cycle
	// window). Default: 100µs.
	DeathWindow time.Duration

	// DeathThreshold is the death count within DeathWindow that trips the
	// throttle. Default: Contexts/2, the paper's threshold.
	DeathThreshold int

	// LockStripes is the lock-table size (rounded up to a power of two).
	// Default: 256 entries, mirroring the bounded fast lock table.
	LockStripes int
}

// Defaults returns the standard configuration: GOMAXPROCS contexts,
// throttling on, the paper-derived window and threshold.
func Defaults() Config {
	return Config{
		Contexts:    runtime.GOMAXPROCS(0),
		Throttle:    true,
		DeathWindow: 100 * time.Microsecond,
		LockStripes: 256,
	}
}

// Validate reports whether every field of c is meaningful. Zero fields
// are valid — they take the documented defaults — but negative counts,
// thresholds or windows have no sensible reading and were previously
// absorbed silently into the defaults; now they are errors.
func (c Config) Validate() error {
	if c.Contexts < 0 {
		return fmt.Errorf("capsule: Contexts must be >= 0 (0 means GOMAXPROCS), got %d", c.Contexts)
	}
	if c.DeathWindow < 0 {
		return fmt.Errorf("capsule: DeathWindow must be >= 0 (0 means 100µs default), got %v", c.DeathWindow)
	}
	if c.DeathThreshold < 0 {
		return fmt.Errorf("capsule: DeathThreshold must be >= 0 (0 means Contexts/2), got %d", c.DeathThreshold)
	}
	if c.LockStripes < 0 {
		return fmt.Errorf("capsule: LockStripes must be >= 0 (0 means 256), got %d", c.LockStripes)
	}
	return nil
}

// Stats is a snapshot of a Runtime's counters. All counts are cumulative
// since New (or the last ResetStats).
type Stats struct {
	Probes         uint64 `json:"probes"`          // division probes (nthr attempts)
	Granted        uint64 `json:"granted"`         // probes that reserved a context token
	NoCtxDenies    uint64 `json:"no_ctx_denies"`   // probes refused because the pool was empty
	ThrottleDenies uint64 `json:"throttle_denies"` // probes refused by the death-rate throttle
	InlineRuns     uint64 `json:"inline_runs"`     // Divide calls that ran the work inline
	Deaths         uint64 `json:"deaths"`          // worker terminations (kthr)
	TotalWorkers   uint64 `json:"total_workers"`   // workers ever spawned
	PeakWorkers    int    `json:"peak_workers"`    // maximum simultaneously live workers
	LockAcquires   uint64 `json:"lock_acquires"`   // lock-table acquisitions
}

// Delta returns the counters accumulated since prev, an earlier snapshot
// of the same Runtime: s - prev field by field. PeakWorkers is a
// high-water mark, not a cumulative count, so the later snapshot's value
// carries through unchanged. Snapshot-then-delta is how a shared runtime
// is observed without ResetStats (which would clobber concurrent
// observers): take Stats() before, Stats() after, and Delta the two.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Probes:         s.Probes - prev.Probes,
		Granted:        s.Granted - prev.Granted,
		NoCtxDenies:    s.NoCtxDenies - prev.NoCtxDenies,
		ThrottleDenies: s.ThrottleDenies - prev.ThrottleDenies,
		InlineRuns:     s.InlineRuns - prev.InlineRuns,
		Deaths:         s.Deaths - prev.Deaths,
		TotalWorkers:   s.TotalWorkers - prev.TotalWorkers,
		PeakWorkers:    s.PeakWorkers,
		LockAcquires:   s.LockAcquires - prev.LockAcquires,
	}
}

// GrantRate is the fraction of probes that succeeded (Table 3's
// "% divisions allowed"). It doubles as the steal-free work balance:
// CAPSULE distributes work purely by conditional division — there is no
// work stealing, and a refused probe always leaves the offered work with
// the offering worker (inline in Divide, or the caller's else-branch
// after TryDivide) — so the grant rate is exactly the fraction of
// division offers whose work moved to a fresh worker.
func (s Stats) GrantRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Granted) / float64(s.Probes)
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"probes=%d granted=%d (%.0f%%) denies[noctx=%d throttle=%d] inline=%d deaths=%d workers[total=%d peak=%d] locks=%d",
		s.Probes, s.Granted, 100*s.GrantRate(), s.NoCtxDenies, s.ThrottleDenies,
		s.InlineRuns, s.Deaths, s.TotalWorkers, s.PeakWorkers, s.LockAcquires)
}

// A Context is a reserved context token returned by a successful Probe.
// It must be consumed by exactly one Spawn or Release.
type Context struct {
	rt *Runtime
	id int
}

// ID is the hardware-context index this token reserves (stable across the
// runtime's lifetime; LIFO reuse means recently-died ids recur first).
func (c *Context) ID() int { return c.id }

// Runtime is one capsule execution domain: a context pool, a death window,
// a lock table and a join group. A Runtime is safe for concurrent use by
// any number of workers.
type Runtime struct {
	cfg Config

	mu     sync.Mutex
	free   []int   // LIFO stack of free context ids
	deaths []int64 // monotonic ns timestamps of recent deaths (ascending)

	probes         atomic.Uint64
	granted        atomic.Uint64
	noCtxDenies    atomic.Uint64
	throttleDenies atomic.Uint64
	inlineRuns     atomic.Uint64
	deathCount     atomic.Uint64
	totalWorkers   atomic.Uint64
	lockAcquires   atomic.Uint64

	live atomic.Int64
	peak atomic.Int64

	wg sync.WaitGroup

	stripes  []sync.Mutex
	lockMask uint64

	// now is the monotonic clock, injectable by tests to drive the death
	// window deterministically.
	now func() int64
}

// New builds a Runtime from cfg, applying defaults for zero fields. It
// panics if cfg fails Validate; use NewValidated to get the error
// instead.
func New(cfg Config) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Contexts <= 0 {
		cfg.Contexts = runtime.GOMAXPROCS(0)
	}
	if cfg.DeathWindow <= 0 {
		cfg.DeathWindow = 100 * time.Microsecond
	}
	if cfg.DeathThreshold <= 0 {
		cfg.DeathThreshold = cfg.Contexts / 2
		if cfg.DeathThreshold < 1 {
			cfg.DeathThreshold = 1
		}
	}
	if cfg.LockStripes <= 0 {
		cfg.LockStripes = 256
	}
	stripes := 1
	for stripes < cfg.LockStripes {
		stripes <<= 1
	}
	rt := &Runtime{
		cfg:      cfg,
		free:     make([]int, cfg.Contexts),
		stripes:  make([]sync.Mutex, stripes),
		lockMask: uint64(stripes - 1),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	// Push ids so context 0 is on top: the first probe takes the "lowest"
	// context, like the hardware allocator.
	for i := range rt.free {
		rt.free[i] = cfg.Contexts - 1 - i
	}
	return rt
}

// NewValidated is New for configurations built from external input (flags,
// requests): it returns cfg's validation error instead of panicking.
func NewValidated(cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// NewDefault is New(Defaults()).
func NewDefault() *Runtime { return New(Defaults()) }

// Contexts returns the context-pool size.
func (rt *Runtime) Contexts() int { return rt.cfg.Contexts }

// FreeContexts returns the number of currently unreserved context tokens.
// It is a point-in-time observation, not a reservation — a caller that
// needs the token must Probe — and it does not count as a probe, so
// admission-style peeks (is any parallelism even available?) don't
// distort the division grant rate.
func (rt *Runtime) FreeContexts() int {
	rt.mu.Lock()
	n := len(rt.free)
	rt.mu.Unlock()
	return n
}

// CanDivide reports whether a probe made now would succeed: a context
// token is free AND the death-rate throttle is quiescent. Like
// FreeContexts it is a non-counting peek, so admission checks that use
// it leave the grant rate to real offers — and unlike FreeContexts it
// agrees with Probe's full condition, so a caller that degrades on
// !CanDivide won't pour doomed offers into a throttled runtime.
func (rt *Runtime) CanDivide() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.cfg.Throttle && rt.deathsInWindowLocked() >= rt.cfg.DeathThreshold {
		return false
	}
	return len(rt.free) > 0
}

// Probe attempts to reserve a context token: the paper's nthr condition.
// It succeeds only when the pool has a free token and the death-rate
// throttle is quiescent. On success the returned Context MUST be consumed
// by Spawn or Release; on failure the caller takes its sequential path.
func (rt *Runtime) Probe() (*Context, bool) {
	rt.probes.Add(1)

	rt.mu.Lock()
	if rt.cfg.Throttle && rt.deathsInWindowLocked() >= rt.cfg.DeathThreshold {
		rt.mu.Unlock()
		rt.throttleDenies.Add(1)
		return nil, false
	}
	n := len(rt.free)
	if n == 0 {
		rt.mu.Unlock()
		rt.noCtxDenies.Add(1)
		return nil, false
	}
	id := rt.free[n-1] // LIFO: most recently freed context first
	rt.free = rt.free[:n-1]
	rt.mu.Unlock()

	rt.granted.Add(1)
	return &Context{rt: rt, id: id}, true
}

// deathsInWindowLocked prunes expired deaths and returns the live count.
// Caller holds rt.mu.
func (rt *Runtime) deathsInWindowLocked() int {
	cut := rt.now() - rt.cfg.DeathWindow.Nanoseconds()
	i := 0
	for i < len(rt.deaths) && rt.deaths[i] < cut {
		i++
	}
	if i > 0 {
		rt.deaths = rt.deaths[:copy(rt.deaths, rt.deaths[i:])]
	}
	return len(rt.deaths)
}

// Spawn consumes a reserved token and starts fn as a worker goroutine on
// it. The worker's return is the kthr: the token goes back on the LIFO
// stack and the death is recorded for the throttle.
func (rt *Runtime) Spawn(c *Context, fn func()) { rt.spawnOn(c, fn, nil) }

// spawnOn is Spawn with an optional extra join group: when g is non-nil
// the worker is also counted in g, so Group.Join can wait for exactly its
// own workers while Runtime.Join still covers everyone. The extra Done
// fires after the token release, so by the time a group join returns its
// workers' deaths are visible in the runtime's stats and pool.
func (rt *Runtime) spawnOn(c *Context, fn func(), g *sync.WaitGroup) {
	if c == nil || c.rt != rt {
		panic("capsule: Spawn with foreign or nil context")
	}
	rt.totalWorkers.Add(1)
	live := rt.live.Add(1)
	for {
		p := rt.peak.Load()
		if live <= p || rt.peak.CompareAndSwap(p, live) {
			break
		}
	}
	rt.wg.Add(1)
	if g != nil {
		g.Add(1)
	}
	go func() {
		defer func() {
			rt.release(c.id)
			if g != nil {
				g.Done()
			}
		}()
		fn()
	}()
}

// Release returns an unused token to the pool without running anything
// (a probe the caller decided not to act on). It does not count as a
// death.
func (rt *Runtime) Release(c *Context) {
	if c == nil || c.rt != rt {
		panic("capsule: Release with foreign or nil context")
	}
	rt.mu.Lock()
	rt.free = append(rt.free, c.id)
	rt.mu.Unlock()
}

// release is the kthr path: the worker died, its context is free again.
func (rt *Runtime) release(id int) {
	rt.live.Add(-1)
	rt.deathCount.Add(1)
	rt.mu.Lock()
	rt.free = append(rt.free, id)
	if rt.cfg.Throttle {
		rt.deaths = append(rt.deaths, rt.now())
		// Bound the ring: only counts ≥ threshold matter, so anything
		// past threshold+pool entries can be dropped after pruning.
		if len(rt.deaths) > rt.cfg.DeathThreshold+rt.cfg.Contexts {
			rt.deathsInWindowLocked()
		}
	}
	rt.mu.Unlock()
	rt.wg.Done()
}

// TryDivide probes and, on success, spawns fn as a worker and returns
// true. On refusal it does nothing and returns false — the caller's
// `else` branch, for programs (like the paper's LZW) that interleave a
// unit of inline work between probes rather than forfeiting the whole
// range.
func (rt *Runtime) TryDivide(fn func()) bool {
	c, ok := rt.Probe()
	if !ok {
		return false
	}
	rt.Spawn(c, fn)
	return true
}

// Divide is the fused protocol: probe, and either spawn fn on a fresh
// worker (true) or run it inline to completion on the caller (false).
// Either way fn's work is done or underway when Divide returns, which is
// the CapC `coworker f(...)` statement without an else clause.
func (rt *Runtime) Divide(fn func()) bool {
	if rt.TryDivide(fn) {
		return true
	}
	rt.inlineRuns.Add(1)
	fn()
	return false
}

// Join blocks until every spawned worker has died. Mirrors the CapC
// join(): only the component that owns the group may call it, and it must
// not race with new top-level divisions (divisions *from live workers*
// are fine — the group cannot hit zero while the divider is alive).
func (rt *Runtime) Join() { rt.wg.Wait() }

// Lock acquires the table entry for key (mlock). Keys are arbitrary
// 64-bit addresses; the table is striped, so distinct keys may share an
// entry — coarser, never incorrect, exactly like the bounded hardware
// table.
func (rt *Runtime) Lock(key uint64) {
	rt.lockAcquires.Add(1)
	rt.stripes[mix(key)&rt.lockMask].Lock()
}

// Unlock releases the table entry for key (munlock).
func (rt *Runtime) Unlock(key uint64) {
	rt.stripes[mix(key)&rt.lockMask].Unlock()
}

// mix is a 64-bit finaliser (splitmix64) so dense keys spread over
// stripes.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stats snapshots the counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Probes:         rt.probes.Load(),
		Granted:        rt.granted.Load(),
		NoCtxDenies:    rt.noCtxDenies.Load(),
		ThrottleDenies: rt.throttleDenies.Load(),
		InlineRuns:     rt.inlineRuns.Load(),
		Deaths:         rt.deathCount.Load(),
		TotalWorkers:   rt.totalWorkers.Load(),
		PeakWorkers:    int(rt.peak.Load()),
		LockAcquires:   rt.lockAcquires.Load(),
	}
}

// ResetStats zeroes the counters (the context pool and death window are
// left alone: resource state is not statistics).
func (rt *Runtime) ResetStats() {
	rt.probes.Store(0)
	rt.granted.Store(0)
	rt.noCtxDenies.Store(0)
	rt.throttleDenies.Store(0)
	rt.inlineRuns.Store(0)
	rt.deathCount.Store(0)
	rt.totalWorkers.Store(0)
	rt.peak.Store(rt.live.Load())
	rt.lockAcquires.Store(0)
}
