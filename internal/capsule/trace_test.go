package capsule

// Tests for the captrace instrumentation points: a traced group's
// division lifecycle lands in the tracer with the right kinds and
// payloads, untraced work records nothing, stale trace IDs never leak
// to the next occupant of a context, and the new shard counters satisfy
// their accounting identities.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/captrace"
)

func traceTestRuntime(t *testing.T, tr *captrace.Tracer, contexts int) *Runtime {
	t.Helper()
	rt := New(Config{Contexts: contexts, PoolShards: 1, Tracer: tr})
	t.Cleanup(rt.Close)
	return rt
}

func kindsByTID(tr *captrace.Tracer, tid uint64) map[captrace.Kind]int {
	got := map[captrace.Kind]int{}
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID == tid {
			got[ev.Kind]++
		}
	}
	return got
}

// TestTracedGroupLifecycle drives one traced division to completion and
// asserts the full event chain: probe granted → handoff → death, plus
// an inline event for a refused Divide.
func TestTracedGroupLifecycle(t *testing.T) {
	tr := captrace.New(2, 64)
	rt := traceTestRuntime(t, tr, 2)
	const tid = 0xfeed

	g := rt.NewGroupTraced(tid)
	ran := false
	if !g.Divide(func() { ran = true }) {
		t.Fatal("division refused with a free pool")
	}
	g.Join()
	if !ran {
		t.Fatal("divided work did not run")
	}

	got := kindsByTID(tr, tid)
	for _, k := range []captrace.Kind{captrace.KProbeGranted, captrace.KHandoff, captrace.KDeath} {
		if got[k] != 1 {
			t.Errorf("kind %v recorded %d times, want 1 (all: %v)", k, got[k], got)
		}
	}

	// Exhaust the pool: the traced refusal and inline run must be recorded.
	holds := make([]*Context, 0, rt.Contexts())
	for {
		c, ok := rt.Probe()
		if !ok {
			break
		}
		holds = append(holds, c)
	}
	if g.Divide(func() {}) {
		t.Fatal("division granted from an empty pool")
	}
	got = kindsByTID(tr, tid)
	if got[captrace.KProbeDenied] != 1 || got[captrace.KDivideInline] != 1 {
		t.Errorf("refusal events = %v, want one probe_denied and one divide_inline", got)
	}
	for _, c := range holds {
		rt.Release(c)
	}
}

// TestUntracedStaysSilent: Probe/Spawn and a tid-0 group must write no
// events even with a tracer armed — the sampling-off hot path.
func TestUntracedStaysSilent(t *testing.T) {
	tr := captrace.New(1, 64)
	rt := traceTestRuntime(t, tr, 2)
	g := rt.NewGroup()
	g.Divide(func() {})
	g.Join()
	c, ok := rt.Probe()
	if !ok {
		t.Fatal("probe refused")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	rt.Spawn(c, func() { wg.Done() })
	wg.Wait()
	rt.Join()
	if evs := tr.Snapshot("test", 0).Events; len(evs) != 0 {
		t.Fatalf("untraced work recorded %d events: %+v", len(evs), evs)
	}
}

// TestStaleTraceIDDoesNotLeak: after a traced division retires a
// context, an untraced division reusing the same context must not
// record a death against the old trace ID.
func TestStaleTraceIDDoesNotLeak(t *testing.T) {
	tr := captrace.New(1, 64)
	rt := traceTestRuntime(t, tr, 1) // one context: guaranteed reuse
	const tid = 0xabad

	g := rt.NewGroupTraced(tid)
	if !g.Divide(func() {}) {
		t.Fatal("traced division refused")
	}
	g.Join()
	before := kindsByTID(tr, tid)[captrace.KDeath]
	if before != 1 {
		t.Fatalf("traced death count = %d, want 1", before)
	}

	u := rt.NewGroup()
	if !u.Divide(func() {}) {
		t.Fatal("untraced division refused")
	}
	u.Join()
	if after := kindsByTID(tr, tid)[captrace.KDeath]; after != before {
		t.Fatalf("untraced reuse recorded a death against stale tid: %d -> %d", before, after)
	}
}

// TestThrottleTransitionEvents: tripping and draining the death-rate
// throttle records exactly one open and one close edge (tid 0).
func TestThrottleTransitionEvents(t *testing.T) {
	tr := captrace.New(1, 64)
	clock := int64(0)
	rt := New(Config{Contexts: 4, PoolShards: 1, Throttle: true,
		DeathWindow: time.Millisecond, DeathThreshold: 2, Tracer: tr})
	t.Cleanup(rt.Close)
	rt.now = func() int64 { return clock }

	g := rt.NewGroup()
	for i := 0; i < 2; i++ {
		if !g.Divide(func() {}) {
			t.Fatal("division refused")
		}
		g.Join()
	}
	if rt.CanDivide() {
		t.Fatal("throttle did not trip")
	}
	clock += (2 * time.Millisecond).Nanoseconds()
	if !rt.CanDivide() {
		t.Fatal("throttle did not drain")
	}

	counts := map[captrace.Kind]int{}
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID != 0 {
			continue
		}
		counts[ev.Kind]++
	}
	if counts[captrace.KThrottleOpen] != 1 || counts[captrace.KThrottleClose] != 1 {
		t.Fatalf("throttle edges = %v, want one open and one close", counts)
	}
}

// TestShardCounterAccounting: the per-shard counters aggregate to the
// Stats fields and satisfy local_hits + steals == granted, on a
// deterministic single-prober workload that must steal.
func TestShardCounterAccounting(t *testing.T) {
	rt := New(Config{Contexts: 4, PoolShards: 2})
	t.Cleanup(rt.Close)

	// Drain the whole pool from one goroutine: its home shard empties
	// first (local hits), then every further grant is a steal, then one
	// refusal after a full sweep.
	var holds []*Context
	for {
		c, ok := rt.Probe()
		if !ok {
			break
		}
		holds = append(holds, c)
	}
	if len(holds) != 4 {
		t.Fatalf("drained %d contexts, want 4", len(holds))
	}

	s := rt.Stats()
	if s.ShardLocalHits+s.ShardSteals != s.Granted {
		t.Errorf("local %d + steals %d != granted %d", s.ShardLocalHits, s.ShardSteals, s.Granted)
	}
	if s.ShardLocalHits != 2 || s.ShardSteals != 2 {
		t.Errorf("local=%d steals=%d, want 2 and 2 (one shard drained locally, one stolen)",
			s.ShardLocalHits, s.ShardSteals)
	}
	if s.ShardFullSweeps != 1 {
		t.Errorf("full sweeps = %d, want 1", s.ShardFullSweeps)
	}
	if s.ShardFullSweeps > s.NoCtxDenies {
		t.Errorf("full sweeps %d > no-ctx denies %d", s.ShardFullSweeps, s.NoCtxDenies)
	}

	var agg ShardCounters
	for _, sc := range rt.ShardCounterSnapshot() {
		agg.LocalHits += sc.LocalHits
		agg.Steals += sc.Steals
		agg.FullSweeps += sc.FullSweeps
		agg.Free += sc.Free
	}
	if agg.LocalHits != s.ShardLocalHits || agg.Steals != s.ShardSteals || agg.FullSweeps != s.ShardFullSweeps {
		t.Errorf("per-shard aggregate %+v disagrees with Stats %+v", agg, s)
	}
	if agg.Free != 0 {
		t.Errorf("free sum = %d with the pool drained, want 0", agg.Free)
	}
	for _, c := range holds {
		rt.Release(c)
	}

	// ResetStats clears the shard counters too.
	rt.ResetStats()
	s = rt.Stats()
	if s.ShardLocalHits != 0 || s.ShardSteals != 0 || s.ShardFullSweeps != 0 {
		t.Errorf("shard counters survived ResetStats: %+v", s)
	}
}
