package capsule

import "sync/atomic"

// This file holds the death-timestamp ring behind the division throttle
// (the free-token pool lives in shard.go). Like the pool, it is the
// software analogue of the paper's point that nthr is answerable "in a
// few cycles": the throttle check is one or two atomic loads, never a
// mutex, never an allocation.
//
//   - deathRing: a fixed-size ring of death timestamps, replacing the
//     slice-prune death window. "deaths in window >= threshold" collapses
//     to one load: the threshold-th most recent death is still inside the
//     window iff at least threshold deaths happened inside it.

// deathRing records worker-death timestamps for the division throttle.
// Slot i&mask holds the timestamp of death number i (0-based); seq is the
// count of deaths recorded so far. The ring holds at least threshold
// entries, so the timestamp of the threshold-th most recent death is
// always still present: it is overwritten only by death seq-threshold+size
// >= seq, which has not happened yet.
//
// Two benign races exist, in opposite directions, both bounded to the
// instruction window of one record call. An overwrite racing a read can
// only replace the slot with a newer timestamp, which errs toward
// throttling — the conservative direction, same as the paper's hardware
// monitor. And because record reserves its slot (seq.Add) before storing
// the timestamp, a reader that catches seq published but the store not
// yet landed sees the slot's previous (older, possibly zero) timestamp
// and may let one probe through as a death lands — a transient
// under-throttle of a single offer. The throttle is a rate heuristic,
// not a mutual-exclusion device, so neither direction affects
// correctness; precise counting is exactly the serialization the
// lock-free rewrite removed.
type deathRing struct {
	seq  atomic.Uint64
	mask uint64
	ts   []atomic.Int64
}

// init sizes the ring to the next power of two >= threshold (threshold >=
// 1 is guaranteed by New's defaulting).
func (r *deathRing) init(threshold int) {
	size := 1
	for size < threshold {
		size <<= 1
	}
	r.ts = make([]atomic.Int64, size)
	r.mask = uint64(size - 1)
}

// record logs one death at timestamp now.
func (r *deathRing) record(now int64) {
	i := r.seq.Add(1) - 1
	r.ts[i&r.mask].Store(now)
}

// atLeast reports whether at least k recorded deaths have timestamps at
// or after now()-windowNS: true iff the k-th most recent death is still
// inside the window. now is consulted only once k deaths exist at all,
// so a quiescent runtime (no deaths yet — every Probe/Release benchmark,
// and any pool that divides rarely) answers with one atomic load and no
// clock read. That laziness is most of the probe fast path: reading the
// OS clock costs more than the pool CAS itself.
func (r *deathRing) atLeast(k int, now func() int64, windowNS int64) bool {
	seq := r.seq.Load()
	if seq < uint64(k) {
		return false
	}
	ts := r.ts[(seq-uint64(k))&r.mask].Load()
	return ts >= now()-windowNS
}
