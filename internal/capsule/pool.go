package capsule

import "sync/atomic"

// This file holds the two lock-free structures behind the probe/divide hot
// path. Both are the software analogue of the paper's point that nthr is
// answerable "in a few cycles": a probe is a handful of atomic loads and
// one CAS, never a mutex, never an allocation.
//
//   - tokenStack: a Treiber stack over the fixed context-id set, replacing
//     the mutex-guarded `free []int` LIFO. LIFO order is preserved (the
//     most recently freed context is granted first, keeping the working
//     set on warm stacks), and an ABA tag in the head word makes the CAS
//     safe against the classic pop/push/pop reuse race.
//   - deathRing: a fixed-size ring of death timestamps, replacing the
//     slice-prune death window. "deaths in window >= threshold" collapses
//     to one load: the threshold-th most recent death is still inside the
//     window iff at least threshold deaths happened inside it.

// tokenStack is a lock-free LIFO over the ids [0, n). The head word packs
// {tag:32 | id+1:32}; a zero low half means empty. next[id] holds the
// id+1 of the element below id on the stack (0 = bottom). Each id is on
// the stack at most once — pushes only return ids handed out by pop — so
// next[id] is only ever written by the id's current owner; the stale read
// a concurrent pop can make of it is rejected by the tag CAS.
type tokenStack struct {
	head atomic.Uint64
	next []atomic.Int32
	n    atomic.Int64 // free count: a peek-only observable, updated post-CAS
}

const (
	stackIDMask  = uint64(0xFFFFFFFF)
	stackTagIncr = uint64(1) << 32
)

// init fills the stack with all n ids, id 0 on top: the first probe takes
// the "lowest" context, like the hardware allocator.
func (s *tokenStack) init(n int) {
	s.next = make([]atomic.Int32, n)
	for i := 0; i < n-1; i++ {
		s.next[i].Store(int32(i + 2)) // below id i sits id i+1
	}
	if n > 0 {
		s.head.Store(1) // tag 0, top id 0
	}
	s.n.Store(int64(n))
}

// pop removes and returns the top id, or ok=false when the stack is empty.
func (s *tokenStack) pop() (int, bool) {
	for {
		h := s.head.Load()
		top := uint32(h & stackIDMask)
		if top == 0 {
			return 0, false
		}
		below := uint32(s.next[top-1].Load())
		nh := ((h &^ stackIDMask) + stackTagIncr) | uint64(below)
		if s.head.CompareAndSwap(h, nh) {
			s.n.Add(-1)
			return int(top - 1), true
		}
	}
}

// push returns id to the stack, making it the next pop's result.
func (s *tokenStack) push(id int) {
	for {
		h := s.head.Load()
		s.next[id].Store(int32(uint32(h & stackIDMask)))
		nh := ((h &^ stackIDMask) + stackTagIncr) | uint64(id+1)
		if s.head.CompareAndSwap(h, nh) {
			s.n.Add(1)
			return
		}
	}
}

// free returns the current free count. It lags the head by at most the
// in-flight CAS winners, so it is a peek, not a reservation — exactly the
// contract FreeContexts documents.
func (s *tokenStack) free() int { return int(s.n.Load()) }

// deathRing records worker-death timestamps for the division throttle.
// Slot i&mask holds the timestamp of death number i (0-based); seq is the
// count of deaths recorded so far. The ring holds at least threshold
// entries, so the timestamp of the threshold-th most recent death is
// always still present: it is overwritten only by death seq-threshold+size
// >= seq, which has not happened yet.
//
// Two benign races exist, in opposite directions, both bounded to the
// instruction window of one record call. An overwrite racing a read can
// only replace the slot with a newer timestamp, which errs toward
// throttling — the conservative direction, same as the paper's hardware
// monitor. And because record reserves its slot (seq.Add) before storing
// the timestamp, a reader that catches seq published but the store not
// yet landed sees the slot's previous (older, possibly zero) timestamp
// and may let one probe through as a death lands — a transient
// under-throttle of a single offer. The throttle is a rate heuristic,
// not a mutual-exclusion device, so neither direction affects
// correctness; precise counting is exactly the serialization the
// lock-free rewrite removed.
type deathRing struct {
	seq  atomic.Uint64
	mask uint64
	ts   []atomic.Int64
}

// init sizes the ring to the next power of two >= threshold (threshold >=
// 1 is guaranteed by New's defaulting).
func (r *deathRing) init(threshold int) {
	size := 1
	for size < threshold {
		size <<= 1
	}
	r.ts = make([]atomic.Int64, size)
	r.mask = uint64(size - 1)
}

// record logs one death at timestamp now.
func (r *deathRing) record(now int64) {
	i := r.seq.Add(1) - 1
	r.ts[i&r.mask].Store(now)
}

// atLeast reports whether at least k recorded deaths have timestamps at
// or after now()-windowNS: true iff the k-th most recent death is still
// inside the window. now is consulted only once k deaths exist at all,
// so a quiescent runtime (no deaths yet — every Probe/Release benchmark,
// and any pool that divides rarely) answers with one atomic load and no
// clock read. That laziness is most of the probe fast path: reading the
// OS clock costs more than the pool CAS itself.
func (r *deathRing) atLeast(k int, now func() int64, windowNS int64) bool {
	seq := r.seq.Load()
	if seq < uint64(k) {
		return false
	}
	ts := r.ts[(seq-uint64(k))&r.mask].Load()
	return ts >= now()-windowNS
}
