// Package hotpath is the probe/divide contention benchmark suite, run
// against three pool implementations side by side:
//
//   - atomic: the live lock-free runtime (internal/capsule) — sharded
//     Treiber token stacks with ring-order stealing, padded per-shard
//     stats, atomic death ring, spin-then-park persistent workers;
//   - atomic1: the same runtime forced to PoolShards=1 — the PR-3
//     single global Treiber stack, so the report shows what sharding
//     itself buys on top of lock-freedom;
//   - mutex: the retained pre-rewrite pool (internal/capsule/baseline) —
//     global mutex LIFO, slice-pruned death window, goroutine-per-spawn.
//
// The cases cover the grant and refusal paths serially and across the
// SweepMultipliers GOMAXPROCS sweep (1×, 4× and 16× GOMAXPROCS probers),
// plus the fused divide with worker hand-off. The same bodies back both
// `go test -bench` (hotpath_test.go wrappers, run under -race in CI) and
// cmd/capstress, which runs them via testing.Benchmark and records ns/op
// and allocs/op in BENCH_capsule.json — so the speedup the rewrite
// bought is re-measured, not remembered.
package hotpath

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/capscope"
	"repro/internal/capsule"
	"repro/internal/capsule/baseline"
	"repro/internal/captrace"
	"repro/internal/capwatch"
)

// A Case is one named hot-path benchmark, runnable by go test or
// testing.Benchmark.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// SweepMultipliers is the GOMAXPROCS sweep: the parallel probe-granted
// cases run at each multiplier × GOMAXPROCS concurrent probers, for all
// three implementations. capstress records it in BENCH_capsule.json so
// numbers from different machines are comparable.
var SweepMultipliers = []int{1, 4, 16}

// Cases returns the full suite. Names are impl/path[_probers]: the
// "atomic/", "atomic1/" and "mutex/" families are exact mirrors on the
// shared paths, so any pair divides into a speedup. The "atomic/..."
// keys are the live runtime's tracked trajectory (stable across PRs for
// the CI regression gate); "atomic1/..." is the same runtime pinned to
// the PR-3 single-stack configuration.
func Cases() []Case {
	cases := []Case{
		{"atomic/probe_granted_serial", atomicProbeGranted(0, 0)},
		{"atomic1/probe_granted_serial", atomicProbeGranted(0, 1)},
		{"mutex/probe_granted_serial", mutexProbeGranted(0)},
	}
	for _, m := range SweepMultipliers {
		suffix := "_parallel_" + strconv.Itoa(m) + "x"
		cases = append(cases,
			Case{"atomic/probe_granted" + suffix, atomicProbeGranted(m, 0)},
			Case{"atomic1/probe_granted" + suffix, atomicProbeGranted(m, 1)},
			Case{"mutex/probe_granted" + suffix, mutexProbeGranted(m)},
		)
	}
	cases = append(cases,
		Case{"atomic/probe_refused_serial", atomicProbeRefused(0)},
		Case{"atomic/probe_refused_parallel_4x", atomicProbeRefused(4)},
		Case{"atomic/try_divide_refused", atomicTryDivideRefused},
		Case{"atomic/divide_granted", atomicDivideGranted},
		Case{"mutex/probe_refused_serial", mutexProbeRefused(0)},
		Case{"mutex/probe_refused_parallel_4x", mutexProbeRefused(4)},
		Case{"mutex/try_divide_refused", mutexTryDivideRefused},
		Case{"mutex/divide_granted", mutexDivideGranted},
	)
	for _, tm := range []struct {
		suffix string
		mode   traceMode
	}{{"_off", traceOff}, {"_armed", traceArmed}, {"_traced", traceTraced}} {
		cases = append(cases,
			Case{"trace/probe_granted_serial" + tm.suffix, traceProbeGranted(0, tm.mode)},
			Case{"trace/probe_granted_parallel_4x" + tm.suffix, traceProbeGranted(4, tm.mode)},
			Case{"trace/divide_granted" + tm.suffix, traceDivideGranted(tm.mode)},
		)
	}
	for _, armed := range []bool{false, true} {
		suffix := "_off"
		if armed {
			suffix = "_armed"
		}
		cases = append(cases,
			Case{"watch/probe_granted_serial" + suffix, watchProbeGranted(0, armed)},
			Case{"watch/probe_granted_parallel_4x" + suffix, watchProbeGranted(4, armed)},
			Case{"watch/divide_granted" + suffix, watchDivideGranted(armed)},
		)
	}
	for _, armed := range []bool{false, true} {
		suffix := "_off"
		if armed {
			suffix = "_armed"
		}
		cases = append(cases,
			Case{"incident/probe_granted_serial" + suffix, incidentProbeGranted(0, armed)},
			Case{"incident/probe_granted_parallel_4x" + suffix, incidentProbeGranted(4, armed)},
			Case{"incident/divide_granted" + suffix, incidentDivideGranted(armed)},
		)
	}
	return cases
}

// Find returns the named case for a go test wrapper.
func Find(name string) (Case, bool) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// nop is the spawned work: a static func value, so the divide benchmarks
// measure the runtime's own cost, not a per-iteration closure allocation.
func nop() {}

// benchWindow keeps both implementations' throttle configured alike. The
// probe benchmarks never record deaths (Probe/Release is not a kthr), so
// the throttle check is measured on its always-quiescent fast path.
const benchWindow = 100 * time.Microsecond

// probers turns a parallelism multiplier into the number of concurrent
// probers RunParallel will use (0 means a plain serial loop).
func probers(par int) int {
	if par == 0 {
		return 1
	}
	return par * runtime.GOMAXPROCS(0)
}

// divideContexts sizes the divide_granted pool: deep enough that the
// offering loop keeps granting while parked workers (or spawned
// goroutines, for the baseline) drain and refill it.
func divideContexts() int {
	n := 16 * runtime.GOMAXPROCS(0)
	if n < 64 {
		n = 64
	}
	return n
}

// ---- atomic: the live lock-free runtime ----

// atomicProbeGranted builds the granted-probe case at par×GOMAXPROCS
// probers (0 = serial) on a pool of one context per prober. shards pins
// Config.PoolShards: 0 is the live sharded default, 1 reproduces the
// PR-3 single global stack.
func atomicProbeGranted(par, shards int) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: probers(par), PoolShards: shards, Throttle: true, DeathWindow: benchWindow})
		defer rt.Close()
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
			return
		}
		b.SetParallelism(par)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
		})
	}
}

func atomicProbeRefused(par int) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: 1, Throttle: true, DeathWindow: benchWindow})
		hold, _ := rt.Probe() // empty the pool: every probe refuses
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if _, ok := rt.Probe(); ok {
					b.Fatal("probe granted from an empty pool")
				}
			}
		} else {
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, ok := rt.Probe(); ok {
						b.Fatal("probe granted from an empty pool")
					}
				}
			})
		}
		b.StopTimer()
		rt.Release(hold)
		rt.Close()
	}
}

func atomicTryDivideRefused(b *testing.B) {
	rt := capsule.New(capsule.Config{Contexts: 1, Throttle: false})
	hold, _ := rt.Probe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rt.TryDivide(nop) {
			b.Fatal("divide granted from an empty pool")
		}
	}
	b.StopTimer()
	rt.Release(hold)
	rt.Close()
}

func atomicDivideGranted(b *testing.B) {
	// Throttle off: nop workers die far faster than any real window, and
	// the point here is the grant + hand-off cost, not throttle stalls.
	rt := capsule.New(capsule.Config{Contexts: divideContexts(), Throttle: false})
	defer rt.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !rt.TryDivide(nop) {
			runtime.Gosched() // let parked workers drain and refill the pool
		}
	}
	b.StopTimer()
	rt.Join()
}

// ---- mutex: the retained pre-rewrite baseline ----

func mutexProbeGranted(par int) func(b *testing.B) {
	return func(b *testing.B) {
		p := baseline.New(probers(par), true, benchWindow, 0)
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if id, ok := p.Probe(); ok {
					p.Release(id)
				}
			}
			return
		}
		b.SetParallelism(par)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if id, ok := p.Probe(); ok {
					p.Release(id)
				}
			}
		})
	}
}

func mutexProbeRefused(par int) func(b *testing.B) {
	return func(b *testing.B) {
		p := baseline.New(1, true, benchWindow, 0)
		hold, _ := p.Probe()
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if _, ok := p.Probe(); ok {
					b.Fatal("probe granted from an empty pool")
				}
			}
		} else {
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, ok := p.Probe(); ok {
						b.Fatal("probe granted from an empty pool")
					}
				}
			})
		}
		b.StopTimer()
		p.Release(hold)
	}
}

func mutexTryDivideRefused(b *testing.B) {
	p := baseline.New(1, false, benchWindow, 0)
	hold, _ := p.Probe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.TryDivide(nop) {
			b.Fatal("divide granted from an empty pool")
		}
	}
	b.StopTimer()
	p.Release(hold)
}

func mutexDivideGranted(b *testing.B) {
	p := baseline.New(divideContexts(), false, benchWindow, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !p.TryDivide(nop) {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	p.Join()
}

// ---- trace: captrace overhead on the canonical hot paths ----
//
// Each path is measured in the three states the serving tiers put the
// runtime in:
//
//   - off:    Config.Tracer == nil — tracing disabled, the tracked
//     "atomic/..." configuration;
//   - armed:  tracer installed, request unsampled (trace ID 0) — the
//     state every request is in when -trace is on, since per-request
//     events are gated on a nonzero ID;
//   - traced: tracer installed, nonzero trace ID — the sampled
//     request's full cost: a 32-byte ring write per probe outcome, plus
//     the handoff and death events for a granted divide.
//
// cmd/capstress folds each off/armed/traced triple into the report's
// trace_overhead section, where CI budgets the armed overhead at ≤5%
// and pins the off cases to their atomic twins (the disabled ~0%
// check). All three states share one builder, so the only variable is
// the tracer/ID wiring under test.

// benchTID is the fixed trace identity the traced cases record under.
const benchTID = 0x00c0ffee00c0ffee

type traceMode int

const (
	traceOff traceMode = iota
	traceArmed
	traceTraced
)

func (m traceMode) tracer() *captrace.Tracer {
	if m == traceOff {
		return nil
	}
	return captrace.New(0, 0)
}

func (m traceMode) tid() uint64 {
	if m == traceTraced {
		return benchTID
	}
	return 0
}

// traceProbeGranted mirrors atomicProbeGranted (sharded pool, same
// sizing) through ProbeTraced — which is exactly Probe when the mode's
// trace ID is 0, so off and armed measure the identical call.
func traceProbeGranted(par int, m traceMode) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: probers(par), Throttle: true, DeathWindow: benchWindow, Tracer: m.tracer()})
		defer rt.Close()
		tid := m.tid()
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if c, ok := rt.ProbeTraced(tid); ok {
					rt.Release(c)
				}
			}
			return
		}
		b.SetParallelism(par)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if c, ok := rt.ProbeTraced(tid); ok {
					rt.Release(c)
				}
			}
		})
	}
}

// traceDivideGranted is atomicDivideGranted through a Group (the
// serving tiers' divide scope), so the traced mode exercises the whole
// per-division event chain: grant, worker handoff, death.
func traceDivideGranted(m traceMode) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: divideContexts(), Throttle: false, Tracer: m.tracer()})
		defer rt.Close()
		g := rt.NewGroupTraced(m.tid())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !g.TryDivide(nop) {
				runtime.Gosched()
			}
		}
		b.StopTimer()
		g.Join()
	}
}

// ---- watch: capwatch sampler overhead on the canonical hot paths ----
//
// The capwatch sampler is a pure reader: the probe/divide hot paths
// never touch it, so an armed sampler's only cost to them is the cache
// traffic of its once-per-tick sweep over the per-shard counters. Each
// path is measured with an inert 1s ticker (off) and with a sampler
// armed at the production DefaultInterval tick. The off case carries
// the ticker as an experimental control: on a single-P runtime, any
// pending timer taxes every pass through the scheduler — which the
// divide hand-off takes once per op — and a bare time.Ticker alone
// measures +15% on divide_granted at GOMAXPROCS=1. Every real
// deployment already owns such timers (HTTP server deadlines, the
// breaker windows), so the pair deliberately prices the sampler's own
// work, not the runtime's timer tax. cmd/capstress folds the pairs
// into the report's watch_overhead section, where CI budgets the armed
// overhead at ≤2% on the probe paths (≤5% on divide, whose
// scheduler-bound hand-off has a ±3% pair-noise floor) and separately
// pins the off case against the ticker-free atomic twins.

// watchSampler arms a live sampler over rt at the production tick, or —
// for the off control — an inert ticker at the same period. The
// returned stop func is the benchmark teardown.
func watchSampler(rt *capsule.Runtime, armed bool) (stop func()) {
	if !armed {
		t := time.NewTicker(capwatch.DefaultInterval)
		done := make(chan struct{})
		go func() {
			for {
				select {
				case <-t.C:
				case <-done:
					return
				}
			}
		}()
		return func() {
			t.Stop()
			close(done)
		}
	}
	s, err := capwatch.New(capwatch.Config{Runtime: rt})
	if err != nil {
		panic(err)
	}
	s.Start()
	return s.Stop
}

// watchProbeGranted mirrors atomicProbeGranted (sharded pool, same
// sizing) with a capwatch sampler ticking beside it.
func watchProbeGranted(par int, armed bool) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: probers(par), Throttle: true, DeathWindow: benchWindow})
		defer rt.Close()
		stop := watchSampler(rt, armed)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
			return
		}
		b.SetParallelism(par)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
		})
	}
}

// watchDivideGranted is atomicDivideGranted with a sampler armed.
func watchDivideGranted(armed bool) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: divideContexts(), Throttle: false})
		defer rt.Close()
		stop := watchSampler(rt, armed)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !rt.TryDivide(nop) {
				runtime.Gosched()
			}
		}
		b.StopTimer()
		rt.Join()
	}
}

// ---- incident: capscope recorder overhead on the canonical hot paths ----
//
// The capscope recorder never touches the probe/divide hot paths
// either: disarmed it does not exist to them, and armed its entire
// cost rides the capwatch sampling tick (one atomic hook load in
// SampleNow plus a per-tick sweep of counters the writers already
// maintain). Both states of each twin therefore carry a live sampler
// at the production tick — the off case is exactly the watch armed
// case — so the pair isolates what *arming the recorder* adds on top
// of telemetry that is already on, not the sampler's own cost (that is
// the watch family's job). The recorder's triggers cannot fire here:
// no deaths (throttle quiescent), no server (no sheds, empty SLO
// windows), no router. cmd/capstress folds the pairs into the report's
// incident_overhead section, where CI budgets the armed overhead at
// ≤2% on the probe paths and ≤5% on divide, the same ceilings as
// watch.

// incidentRecorder arms a live sampler over rt and, when armed, an
// incident recorder riding its tick with triggers that never fire.
// The returned stop func is the benchmark teardown.
func incidentRecorder(b *testing.B, rt *capsule.Runtime, armed bool) (stop func()) {
	s, err := capwatch.New(capwatch.Config{Runtime: rt})
	if err != nil {
		panic(err)
	}
	if !armed {
		s.Start()
		return s.Stop
	}
	dir, err := os.MkdirTemp("", "capscope-bench-")
	if err != nil {
		b.Fatal(err)
	}
	rec, err := capscope.New(capscope.Config{
		Dir:             dir,
		Runtime:         rt,
		ProfileDuration: -1,        // a capture here would be a bug, but never burn CPU for it
		Cooldown:        time.Hour, // and never twice
	})
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	rec.Arm(s)
	s.Start()
	return func() {
		s.Stop()
		rec.Close()
		os.RemoveAll(dir)
	}
}

// incidentProbeGranted mirrors watchProbeGranted(armed) with the
// recorder armed on top.
func incidentProbeGranted(par int, armed bool) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: probers(par), Throttle: true, DeathWindow: benchWindow})
		defer rt.Close()
		stop := incidentRecorder(b, rt, armed)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		if par == 0 {
			for i := 0; i < b.N; i++ {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
			return
		}
		b.SetParallelism(par)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
		})
	}
}

// incidentDivideGranted is watchDivideGranted(armed) with the recorder
// armed on top.
func incidentDivideGranted(armed bool) func(b *testing.B) {
	return func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: divideContexts(), Throttle: false})
		defer rt.Close()
		stop := incidentRecorder(b, rt, armed)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !rt.TryDivide(nop) {
				runtime.Gosched()
			}
		}
		b.StopTimer()
		rt.Join()
	}
}
