package hotpath

import (
	"sync"
	"testing"
	"time"

	"repro/internal/capsule/baseline"
)

func newBaselineForTest() *baseline.Pool {
	return baseline.New(2, false, 100*time.Microsecond, 0)
}

// bench runs the named case, so the Benchmark* identifiers CI greps for
// stay stable even if Cases() grows.
func bench(b *testing.B, name string) {
	c, ok := Find(name)
	if !ok {
		b.Fatalf("unknown hotpath case %q", name)
	}
	c.Bench(b)
}

// The atomic (live runtime) side. BenchmarkProbeGrantedParallel4x is the
// acceptance benchmark: ≥2× faster than BenchmarkMutexProbeGrantedParallel4x.
func BenchmarkProbeGrantedSerial(b *testing.B)     { bench(b, "atomic/probe_granted_serial") }
func BenchmarkProbeGrantedParallel(b *testing.B)   { bench(b, "atomic/probe_granted_parallel_1x") }
func BenchmarkProbeGrantedParallel4x(b *testing.B) { bench(b, "atomic/probe_granted_parallel_4x") }
func BenchmarkProbeGrantedParallel16x(b *testing.B) {
	bench(b, "atomic/probe_granted_parallel_16x")
}
func BenchmarkProbeRefusedSerial(b *testing.B)     { bench(b, "atomic/probe_refused_serial") }
func BenchmarkProbeRefusedParallel4x(b *testing.B) { bench(b, "atomic/probe_refused_parallel_4x") }
func BenchmarkTryDivideRefused(b *testing.B)       { bench(b, "atomic/try_divide_refused") }
func BenchmarkDivideGranted(b *testing.B)          { bench(b, "atomic/divide_granted") }

// The atomic1 side: the live runtime pinned to PoolShards=1, i.e. the
// PR-3 single global Treiber stack — what sharding is measured against.
func BenchmarkSingleStackProbeGrantedSerial(b *testing.B) {
	bench(b, "atomic1/probe_granted_serial")
}
func BenchmarkSingleStackProbeGrantedParallel4x(b *testing.B) {
	bench(b, "atomic1/probe_granted_parallel_4x")
}
func BenchmarkSingleStackProbeGrantedParallel16x(b *testing.B) {
	bench(b, "atomic1/probe_granted_parallel_16x")
}

// The mutex baseline side (internal/capsule/baseline).
func BenchmarkMutexProbeGrantedSerial(b *testing.B) { bench(b, "mutex/probe_granted_serial") }
func BenchmarkMutexProbeGrantedParallel(b *testing.B) {
	bench(b, "mutex/probe_granted_parallel_1x")
}
func BenchmarkMutexProbeGrantedParallel4x(b *testing.B) {
	bench(b, "mutex/probe_granted_parallel_4x")
}
func BenchmarkMutexProbeGrantedParallel16x(b *testing.B) {
	bench(b, "mutex/probe_granted_parallel_16x")
}
func BenchmarkMutexProbeRefusedSerial(b *testing.B) { bench(b, "mutex/probe_refused_serial") }
func BenchmarkMutexProbeRefusedParallel4x(b *testing.B) {
	bench(b, "mutex/probe_refused_parallel_4x")
}
func BenchmarkMutexTryDivideRefused(b *testing.B) { bench(b, "mutex/try_divide_refused") }
func BenchmarkMutexDivideGranted(b *testing.B)    { bench(b, "mutex/divide_granted") }

// The captrace overhead side (off = tracing disabled, armed = tracer on
// but the request unsampled, traced = full per-event ring writes). The
// traced cases double as -race coverage for concurrent ring writers on
// the real probe path.
func BenchmarkTraceProbeGrantedSerialOff(b *testing.B) {
	bench(b, "trace/probe_granted_serial_off")
}
func BenchmarkTraceProbeGrantedSerialArmed(b *testing.B) {
	bench(b, "trace/probe_granted_serial_armed")
}
func BenchmarkTraceProbeGrantedSerialTraced(b *testing.B) {
	bench(b, "trace/probe_granted_serial_traced")
}
func BenchmarkTraceProbeGrantedParallel4xOff(b *testing.B) {
	bench(b, "trace/probe_granted_parallel_4x_off")
}
func BenchmarkTraceProbeGrantedParallel4xArmed(b *testing.B) {
	bench(b, "trace/probe_granted_parallel_4x_armed")
}
func BenchmarkTraceProbeGrantedParallel4xTraced(b *testing.B) {
	bench(b, "trace/probe_granted_parallel_4x_traced")
}
func BenchmarkTraceDivideGrantedOff(b *testing.B)    { bench(b, "trace/divide_granted_off") }
func BenchmarkTraceDivideGrantedArmed(b *testing.B)  { bench(b, "trace/divide_granted_armed") }
func BenchmarkTraceDivideGrantedTraced(b *testing.B) { bench(b, "trace/divide_granted_traced") }

// The capwatch overhead side (off = no sampler, armed = sampler ticking
// at the production interval beside the hot path). The armed cases
// double as -race coverage for the sampler's counter sweep racing the
// live probe/divide paths.
func BenchmarkWatchProbeGrantedSerialOff(b *testing.B) {
	bench(b, "watch/probe_granted_serial_off")
}
func BenchmarkWatchProbeGrantedSerialArmed(b *testing.B) {
	bench(b, "watch/probe_granted_serial_armed")
}
func BenchmarkWatchProbeGrantedParallel4xOff(b *testing.B) {
	bench(b, "watch/probe_granted_parallel_4x_off")
}
func BenchmarkWatchProbeGrantedParallel4xArmed(b *testing.B) {
	bench(b, "watch/probe_granted_parallel_4x_armed")
}
func BenchmarkWatchDivideGrantedOff(b *testing.B)   { bench(b, "watch/divide_granted_off") }
func BenchmarkWatchDivideGrantedArmed(b *testing.B) { bench(b, "watch/divide_granted_armed") }

// The capscope overhead side (off = armed sampler only, armed = the
// incident recorder riding the sampler's tick with triggers that never
// fire). The armed cases double as -race coverage for the recorder's
// per-tick trigger evaluation racing the live probe/divide paths.
func BenchmarkIncidentProbeGrantedSerialOff(b *testing.B) {
	bench(b, "incident/probe_granted_serial_off")
}
func BenchmarkIncidentProbeGrantedSerialArmed(b *testing.B) {
	bench(b, "incident/probe_granted_serial_armed")
}
func BenchmarkIncidentProbeGrantedParallel4xOff(b *testing.B) {
	bench(b, "incident/probe_granted_parallel_4x_off")
}
func BenchmarkIncidentProbeGrantedParallel4xArmed(b *testing.B) {
	bench(b, "incident/probe_granted_parallel_4x_armed")
}
func BenchmarkIncidentDivideGrantedOff(b *testing.B)   { bench(b, "incident/divide_granted_off") }
func BenchmarkIncidentDivideGrantedArmed(b *testing.B) { bench(b, "incident/divide_granted_armed") }

// TestBaselineBehaves pins the foil to the old semantics, so the numbers
// it produces keep meaning something: bounded pool, LIFO reuse, work runs
// exactly once, Join covers spawns.
func TestBaselineBehaves(t *testing.T) {
	p := newBaselineForTest()
	a, ok := p.Probe()
	if !ok || a != 0 {
		t.Fatalf("first probe = (%d, %v), want (0, true)", a, ok)
	}
	bid, ok := p.Probe()
	if !ok || bid != 1 {
		t.Fatalf("second probe = (%d, %v), want (1, true)", bid, ok)
	}
	if _, ok := p.Probe(); ok {
		t.Fatal("probe granted beyond the pool")
	}
	p.Release(bid)
	p.Release(a)
	if id, _ := p.Probe(); id != a {
		t.Fatalf("LIFO reuse broken: got %d, want %d", id, a)
	}
	p.Release(a)

	var mu sync.Mutex
	ran := 0
	for i := 0; i < 50; i++ {
		if !p.TryDivide(func() { mu.Lock(); ran++; mu.Unlock() }) {
			mu.Lock()
			ran++
			mu.Unlock()
		}
	}
	p.Join()
	if ran != 50 {
		t.Fatalf("work ran %d times, want 50", ran)
	}
	if p.FreeContexts() != 2 {
		t.Fatalf("pool holds %d tokens after join, want 2", p.FreeContexts())
	}
}
