package capsule

import (
	"runtime"
	"sync"
	"time"
)

// Persistent per-context workers. Each of the Contexts tokens owns one
// long-lived goroutine parked on a single-slot mailbox; a granted division
// is a channel send to the token's worker instead of a fresh `go func()`.
// This is the software analogue of the paper's hardware contexts being
// *resident*: dividing hands work to an existing context, it does not
// construct one.
//
// The single-slot buffer makes Spawn's send non-blocking by construction:
// a token is only grantable while it sits in the free stack, the worker
// pushes it back only after finishing its previous job, and the stack
// hands each token to at most one holder — so when Spawn sends, the
// mailbox is empty.

// job is one unit handed to a parked worker. A nil fn is the quit
// sentinel Close uses to retire the worker.
type job struct {
	fn func()
	g  *sync.WaitGroup
}

// workerLoop is the body of one persistent worker: receive, run, repeat,
// until the quit sentinel arrives.
func (rt *Runtime) workerLoop(id int) {
	defer rt.workerWG.Done()
	for {
		j := <-rt.workers[id]
		if j.fn == nil {
			return
		}
		rt.runJob(id, j)
	}
}

// runJob executes one job with the kthr bookkeeping deferred, so a
// panicking fn still releases its token and fires its joins before the
// panic tears the process down (the same observable order the
// goroutine-per-spawn runtime had).
func (rt *Runtime) runJob(id int, j job) {
	defer func() {
		rt.release(id)
		if j.g != nil {
			j.g.Done()
		}
	}()
	j.fn()
}

// Close shuts the runtime down: it stops granting divisions, waits for
// in-flight workers to die and for outstanding tokens (Probe'd but not
// yet consumed) to come home, then retires the persistent workers. Close
// is idempotent and safe to race with Probe/Divide — offers that lose the
// race are refused and run inline, exactly like any other denied probe. A
// caller that holds a token across Close without ever Spawn-ing or
// Release-ing it will block Close forever; that is the same misuse as
// leaking a token, just louder.
//
// After Close: Probe always refuses, CanDivide is false, FreeContexts is
// 0, and Join returns immediately.
func (rt *Runtime) Close() {
	rt.closeOnce.Do(func() { rt.doClose() })
	<-rt.closedCh
}

// doClose runs once. Collecting every token out of the free stack is both
// the drain barrier and the permanent off switch: a token Close holds can
// never be granted again, and a token still out with a worker or holder
// lands back in the stack on release, where the collection loop picks it
// up.
func (rt *Runtime) doClose() {
	rt.closed.Store(true)
	for held, spins := 0, 0; held < rt.cfg.Contexts; {
		if _, ok := rt.pool.pop(); ok {
			held++
			continue
		}
		spins++
		if spins%256 == 0 {
			time.Sleep(50 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	rt.wg.Wait() // releases precede wg.Done; let the last Done land
	for i := range rt.workers {
		rt.workers[i] <- job{} // quit sentinel; mailboxes are empty and single-slot
	}
	rt.workerWG.Wait()
	close(rt.closedCh)
}
