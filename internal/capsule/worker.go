package capsule

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/captrace"
)

// Persistent per-context workers with a spin-then-park handoff. Each of
// the Contexts tokens owns one long-lived goroutine; a granted division
// hands work to it instead of spawning a fresh `go func()`. This is the
// software analogue of the paper's hardware contexts being *resident*:
// dividing hands work to an existing context, it does not construct one.
//
// The handoff has two gears. A worker that just finished a job first
// *spins* (bounded, yielding) on a padded per-context slot; a division
// granted while it spins is one plain store plus one CAS — no channel,
// no scheduler wakeup, which is what made the PR-3 channel-only handoff
// a regression against goroutine-per-spawn on the granted-divide path.
// Only when the spin budget runs out does the worker CAS itself to
// parked and block on its mailbox channel; a spawner that observes the
// parked state falls back to the channel send. The CAS arbitration makes
// the race between "worker gives up spinning" and "spawner hands off"
// lose-free: exactly one of the two transitions wins, and the loser takes
// the other path.
//
// The single-slot protocol is safe for the same reason the old mailbox
// was: a token is only grantable while it sits in the free pool, the
// worker returns it only after finishing its previous job (and after
// resetting its handoff state), and the pool hands each token to at most
// one holder — so at most one spawner ever touches a worker's slot at a
// time, and the slot/mailbox is empty whenever it does.

// Handoff states. The zero value is wsSpin: a freshly created worker is
// immediately handoff-able even before its goroutine first runs.
const (
	wsSpin   uint32 = iota // worker polls its slot; slot handoff allowed
	wsHanded               // slot holds a job for the worker
	wsParked               // worker blocks (or is about to) on its mailbox
)

// handoffSpins bounds the post-job spin: how many yields a worker waits
// for the next division before parking. High enough that a worker in a
// divide-heavy steady state never parks, low enough that an idle runtime
// quiesces to parked goroutines almost immediately.
const handoffSpins = 128

// workerHot is the live part of one handoff slot. slot is plain memory
// published by the state word: a spawner writes slot and then CASes
// wsSpin → wsHanded (release); the worker reads slot only after loading
// wsHanded (acquire).
type workerHot struct {
	state atomic.Uint32
	slot  job
}

// workerState pads workerHot to whole cache lines (derived from its real
// size, so the layout contract holds on any word size), keeping
// neighbouring workers' handoffs off each other's cache lines like the
// pool and stat shards.
type workerState struct {
	workerHot
	_ [(2*cacheLine - unsafe.Sizeof(workerHot{})%(2*cacheLine)) % (2 * cacheLine)]byte
}

// job is one unit handed to a parked worker. A nil fn is the quit
// sentinel Close uses to retire the worker.
type job struct {
	fn func()
	g  *sync.WaitGroup
}

// sendJob hands j to context id's worker: slot handoff if the worker is
// (or will be, on first schedule) spinning, channel send if it parked.
// Non-blocking by construction either way — the caller holds the token,
// so the slot is resettable only by us and the mailbox is empty.
//
// The handoff outcome (spin-hit vs park-wakeup) is the event the PR-5
// bench argued about, so it is traced per request. tid must be read
// before the handoff: the instant the job is visible the worker may run
// it, release the token, and a new spawner may overwrite ctxTrace[id].
// Quit sentinels (nil fn, sent by doClose) never read the — stale —
// entry and are never traced.
func (rt *Runtime) sendJob(id int, j job) {
	var tid uint64
	if j.fn != nil {
		tid = rt.ctxTrace[id]
	}
	w := &rt.wstate[id]
	if w.state.Load() == wsSpin {
		w.slot = j
		if w.state.CompareAndSwap(wsSpin, wsHanded) {
			if tid != 0 {
				rt.tracer.Record(captrace.KHandoff, tid, 0, captrace.HandoffSpin, uint32(id))
			}
			return
		}
		// The worker won the race and parked; the slot write is dead (a
		// parked worker never reads it). Drop the closure reference and
		// take the slow path.
		w.slot = job{}
	}
	rt.workers[id] <- j
	if tid != 0 {
		rt.tracer.Record(captrace.KHandoff, tid, 0, captrace.HandoffPark, uint32(id))
	}
}

// waitForJob is the worker side of the handoff: spin on the slot for a
// bounded number of yields, then park on the mailbox. The CAS to wsParked
// arbitrates against a concurrent sendJob — if the spawner already
// flipped the slot to wsHanded, the job is taken from there instead.
func (rt *Runtime) waitForJob(id int) job {
	w := &rt.wstate[id]
	for i := 0; i < handoffSpins; i++ {
		if w.state.Load() == wsHanded {
			return w.takeSlot()
		}
		yieldBackoff(i)
	}
	if !w.state.CompareAndSwap(wsSpin, wsParked) {
		return w.takeSlot() // a spawner handed off between poll and CAS
	}
	return <-rt.workers[id]
}

// takeSlot consumes the handed job. The worker owns the slot exclusively
// from observing wsHanded until it resets the state after the job runs.
func (w *workerState) takeSlot() job {
	j := w.slot
	w.slot = job{} // drop the closure reference for the GC
	return j
}

// yieldBackoff is the shared contended-wait step, used by the worker
// spin phase and doClose's drain loop: mostly Gosched (nearly free when
// the goroutine being waited for is ready to run), with a periodic sleep
// so a long spin on a loaded box cannot monopolise its P.
func yieldBackoff(i int) {
	if (i+1)%256 == 0 {
		time.Sleep(50 * time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// workerLoop is the body of one persistent worker: wait (spin, then
// park), run, repeat, until the quit sentinel arrives.
func (rt *Runtime) workerLoop(id int) {
	defer rt.workerWG.Done()
	for {
		j := rt.waitForJob(id)
		if j.fn == nil {
			return
		}
		rt.runJob(id, j)
	}
}

// runJob executes one job with the kthr bookkeeping deferred, so a
// panicking fn still releases its token and fires its joins before the
// panic tears the process down (the same observable order the
// goroutine-per-spawn runtime had). The handoff state is reset to
// spinning BEFORE the token release: once the token is visible in the
// pool a new spawner may pop it, and it must find the slot open.
func (rt *Runtime) runJob(id int, j job) {
	defer func() {
		rt.wstate[id].state.Store(wsSpin)
		rt.release(id)
		if j.g != nil {
			j.g.Done()
		}
	}()
	j.fn()
}

// Close shuts the runtime down: it stops granting divisions, waits for
// in-flight workers to die and for outstanding tokens (Probe'd but not
// yet consumed) to come home, then retires the persistent workers. Close
// is idempotent and safe to race with Probe/Divide — offers that lose the
// race are refused and run inline, exactly like any other denied probe. A
// caller that holds a token across Close without ever Spawn-ing or
// Release-ing it will block Close forever; that is the same misuse as
// leaking a token, just louder.
//
// After Close: Probe always refuses, CanDivide is false, FreeContexts is
// 0, and Join returns immediately.
func (rt *Runtime) Close() {
	rt.closeOnce.Do(func() { rt.doClose() })
	<-rt.closedCh
}

// doClose runs once. Collecting every token out of the free pool is both
// the drain barrier and the permanent off switch: a token Close holds can
// never be granted again, and a token still out with a worker or holder
// lands back in a shard on release, where the collection loop (which
// walks every shard, like any pop) picks it up.
func (rt *Runtime) doClose() {
	rt.closed.Store(true)
	for held, spins := 0, 0; held < rt.cfg.Contexts; {
		if _, ok := rt.pool.pop(0); ok {
			held++
			continue
		}
		yieldBackoff(spins)
		spins++
	}
	rt.wg.Wait() // releases precede wg.Done; let the last Done land
	for i := range rt.workers {
		// Quit sentinel, through the normal handoff: a still-spinning
		// worker takes it from the slot without ever parking.
		rt.sendJob(i, job{})
	}
	rt.workerWG.Wait()
	close(rt.closedCh)
}
