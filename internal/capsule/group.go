package capsule

import (
	"sync"
	"sync/atomic"

	"repro/internal/captrace"
)

// A Domain is a division-capable execution scope: the method set component
// programs are written against. Three implementations exist, all backed by
// the same Runtime (one context pool, one throttle, one lock table):
//
//   - *Runtime itself — the whole-process scope whose Join waits for every
//     worker, the right domain for one-program-at-a-time tools (caprun);
//   - *Group — a per-task join scope for servers running many component
//     programs concurrently on one runtime: divisions compete for the
//     shared pool, but Join waits only for the group's own workers;
//   - Sequential — the fully-degraded scope whose divisions always run
//     inline, for callers that decided (e.g. at request admission) not to
//     offer parallelism at all.
type Domain interface {
	// Divide offers fn at a division point: spawn on a fresh worker
	// (true) or run inline to completion (false).
	Divide(fn func()) bool
	// TryDivide offers fn and does nothing on refusal (the caller's
	// else-branch interleaves its own unit of work).
	TryDivide(fn func()) bool
	// Join blocks until every worker spawned through this domain has died.
	Join()
	// Lock/Unlock are the shared striped lock table (mlock/munlock).
	Lock(key uint64)
	Unlock(key uint64)
}

var (
	_ Domain = (*Runtime)(nil)
	_ Domain = (*Group)(nil)
	_ Domain = seqDomain{}
)

// GroupStats are a Group's own division counters — the per-task slice of
// the runtime-wide Stats, cheap enough to keep on every request.
type GroupStats struct {
	Probes     uint64 `json:"probes"`      // division offers made through the group
	Granted    uint64 `json:"granted"`     // offers that spawned a worker
	InlineRuns uint64 `json:"inline_runs"` // Divide offers run inline after refusal
}

// GrantRate is the fraction of the group's division offers that moved work
// to a fresh worker — the per-task "% divisions allowed".
func (s GroupStats) GrantRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Granted) / float64(s.Probes)
}

// A Group is a join scope on a shared Runtime. Its divisions draw from the
// runtime's context pool and are throttled and counted exactly like the
// runtime's own, but Join waits only for workers spawned through this
// group — so any number of component programs can run concurrently on one
// runtime without their joins entangling. The zero restriction carried
// over from Runtime.Join applies per group: only the task that owns the
// group may Join it, and not concurrently with its own new top-level
// divisions.
type Group struct {
	rt  *Runtime
	tid uint64 // trace ID tagging this group's runtime events (0 = untraced)
	wg  sync.WaitGroup

	probes  atomic.Uint64
	granted atomic.Uint64
	inline  atomic.Uint64
}

// NewGroup returns a fresh join scope on rt.
func (rt *Runtime) NewGroup() *Group { return &Group{rt: rt} }

// NewGroupTraced returns a join scope whose division offers, handoffs,
// worker deaths and inline fallbacks are recorded against tid — the
// serving tier's bridge from a request's X-Capsule-Trace-ID to the
// runtime events its Domain causes. tid 0 is exactly NewGroup.
func (rt *Runtime) NewGroupTraced(tid uint64) *Group { return &Group{rt: rt, tid: tid} }

// Runtime returns the runtime this group divides on.
func (g *Group) Runtime() *Runtime { return g.rt }

// TryDivide probes the shared runtime and, on success, spawns fn as a
// worker counted in this group. On refusal it does nothing and returns
// false.
func (g *Group) TryDivide(fn func()) bool {
	g.probes.Add(1)
	c, ok := g.rt.probe(g.tid)
	if !ok {
		return false
	}
	g.granted.Add(1)
	g.rt.spawnOn(c, fn, &g.wg, g.tid)
	return true
}

// Divide probes and either spawns fn on a group worker (true) or runs it
// inline on the caller (false).
func (g *Group) Divide(fn func()) bool {
	if g.TryDivide(fn) {
		return true
	}
	g.inline.Add(1)
	g.rt.stat().inlineRuns.Add(1)
	if g.tid != 0 {
		g.rt.tracer.Record(captrace.KDivideInline, g.tid, 0, 0, 0)
	}
	fn()
	return false
}

// Join blocks until every worker spawned through this group has died.
// Workers of other groups (or of the runtime directly) are not waited on.
func (g *Group) Join() { g.wg.Wait() }

// Lock acquires the shared lock-table entry for key.
func (g *Group) Lock(key uint64) { g.rt.Lock(key) }

// Unlock releases the shared lock-table entry for key.
func (g *Group) Unlock(key uint64) { g.rt.Unlock(key) }

// Stats snapshots the group's own division counters.
func (g *Group) Stats() GroupStats {
	return GroupStats{
		Probes:     g.probes.Load(),
		Granted:    g.granted.Load(),
		InlineRuns: g.inline.Load(),
	}
}

// Sequential returns the fully-degraded Domain on rt: every Divide runs
// its work inline, every TryDivide is refused, and Join is a no-op (there
// are never any workers). It touches no division counters — a sequential
// task makes no offers, so it must not dilute the grant rate — but still
// uses the shared lock table, so sequential and parallel tasks stay
// mutually correct. This is the request-admission analogue of the CapC
// compiler's sequential fallback path.
func (rt *Runtime) Sequential() Domain { return seqDomain{rt} }

type seqDomain struct{ rt *Runtime }

func (d seqDomain) Divide(fn func()) bool    { fn(); return false }
func (d seqDomain) TryDivide(fn func()) bool { return false }
func (d seqDomain) Join()                    {}
func (d seqDomain) Lock(key uint64)          { d.rt.Lock(key) }
func (d seqDomain) Unlock(key uint64)        { d.rt.Unlock(key) }
