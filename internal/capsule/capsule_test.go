package capsule

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// quiet returns a runtime with throttling off so pool behaviour can be
// tested in isolation.
func quiet(contexts int) *Runtime {
	return New(Config{Contexts: contexts, Throttle: false})
}

func TestDefaultsApplied(t *testing.T) {
	rt := New(Config{})
	if rt.Contexts() < 1 {
		t.Fatalf("Contexts = %d, want >= 1", rt.Contexts())
	}
	if rt.cfg.DeathWindow <= 0 || rt.cfg.DeathThreshold < 1 || rt.cfg.LockStripes < 1 {
		t.Fatalf("defaults not applied: %+v", rt.cfg)
	}
	if len(rt.stripes)&(len(rt.stripes)-1) != 0 {
		t.Fatalf("stripes = %d, want power of two", len(rt.stripes))
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value (defaults)", Config{}, true},
		{"defaults", Defaults(), true},
		{"explicit", Config{Contexts: 2, DeathThreshold: 1, LockStripes: 8, DeathWindow: time.Millisecond}, true},
		{"negative contexts", Config{Contexts: -1}, false},
		{"negative shards", Config{PoolShards: -2}, false},
		{"shards above contexts (clamped)", Config{Contexts: 2, PoolShards: 8}, true},
		{"negative window", Config{DeathWindow: -time.Microsecond}, false},
		{"negative threshold", Config{DeathThreshold: -3}, false},
		{"negative stripes", Config{LockStripes: -256}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
		rt, nerr := NewValidated(tc.cfg)
		if tc.ok && (nerr != nil || rt == nil) {
			t.Errorf("%s: NewValidated failed: %v", tc.name, nerr)
		}
		if !tc.ok && nerr == nil {
			t.Errorf("%s: NewValidated accepted an invalid config", tc.name)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted Contexts = -1 without panicking")
		}
	}()
	New(Config{Contexts: -1})
}

func TestStatsDelta(t *testing.T) {
	rt := quiet(2)
	rt.Divide(func() {})
	rt.Join()
	before := rt.Stats()
	a, _ := rt.Probe()
	b, _ := rt.Probe()
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted beyond the pool")
	}
	rt.Release(a)
	rt.Release(b)
	rt.Divide(func() {})
	rt.Join()
	d := rt.Stats().Delta(before)
	if d.Probes != 4 || d.Granted != 3 || d.NoCtxDenies != 1 {
		t.Fatalf("delta = %+v, want 4 probes / 3 granted / 1 deny since snapshot", d)
	}
	if d.Deaths != 1 || d.TotalWorkers != 1 {
		t.Fatalf("delta = %+v, want 1 death / 1 worker since snapshot", d)
	}
	// Deltas of two identical snapshots are all-zero counters.
	s := rt.Stats()
	z := s.Delta(s)
	if z.Probes != 0 || z.Granted != 0 || z.Deaths != 0 || z.LockAcquires != 0 {
		t.Fatalf("self-delta = %+v, want zero counters", z)
	}
	if z.PeakWorkers != s.PeakWorkers {
		t.Fatalf("self-delta peak = %d, want carried through as %d", z.PeakWorkers, s.PeakWorkers)
	}
}

func TestProbeBoundedByContexts(t *testing.T) {
	rt := quiet(3)
	var held []*Context
	for i := 0; i < 3; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused with free contexts", i)
		}
		held = append(held, c)
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted beyond the context pool")
	}
	s := rt.Stats()
	if s.Probes != 4 || s.Granted != 3 || s.NoCtxDenies != 1 {
		t.Fatalf("stats = %+v, want 4 probes / 3 granted / 1 no-ctx deny", s)
	}
	for _, c := range held {
		rt.Release(c)
	}
	if _, ok := rt.Probe(); !ok {
		t.Fatal("probe refused after releases refilled the pool")
	}
}

func TestFreeContextsPeeksWithoutProbing(t *testing.T) {
	rt := quiet(3)
	if got := rt.FreeContexts(); got != 3 {
		t.Fatalf("FreeContexts = %d, want 3", got)
	}
	c, _ := rt.Probe()
	if got := rt.FreeContexts(); got != 2 {
		t.Fatalf("FreeContexts after probe = %d, want 2", got)
	}
	rt.Release(c)
	if got := rt.FreeContexts(); got != 3 {
		t.Fatalf("FreeContexts after release = %d, want 3", got)
	}
	// Peeking is not probing: only the one real Probe is counted.
	if s := rt.Stats(); s.Probes != 1 {
		t.Fatalf("Probes = %d after peeks, want 1", s.Probes)
	}
}

func TestLIFOContextReuse(t *testing.T) {
	// Whole-pool LIFO is the single-shard configuration; the sharded
	// default keeps LIFO per shard (covered in shard_test.go).
	rt := New(Config{Contexts: 3, Throttle: false, PoolShards: 1})
	// Initial allocation order is 0, 1, 2 (context 0 on top).
	var cs []*Context
	for want := 0; want < 3; want++ {
		c, _ := rt.Probe()
		if c.ID() != want {
			t.Fatalf("initial probe got context %d, want %d", c.ID(), want)
		}
		cs = append(cs, c)
	}
	// Release 0, 1, 2: LIFO reuse must hand back 2, 1, 0.
	for _, c := range cs {
		rt.Release(c)
	}
	for _, want := range []int{2, 1, 0} {
		c, _ := rt.Probe()
		if c.ID() != want {
			t.Fatalf("LIFO probe got context %d, want %d", c.ID(), want)
		}
	}
}

func TestWorkerDeathRefillsLIFO(t *testing.T) {
	// Single shard: the dead worker's token must be the very next grant.
	// (Sharded, it lands on the worker goroutine's home shard, which may
	// differ from the prober's — per-shard LIFO, tested in shard_test.go.)
	rt := New(Config{Contexts: 2, Throttle: false, PoolShards: 1})
	c, _ := rt.Probe()
	id := c.ID()
	rt.Spawn(c, func() {})
	rt.Join()
	// The dead worker's context must be the next one granted.
	c2, ok := rt.Probe()
	if !ok || c2.ID() != id {
		t.Fatalf("probe after death got (%v, %v), want context %d", c2, ok, id)
	}
	s := rt.Stats()
	if s.Deaths != 1 || s.TotalWorkers != 1 {
		t.Fatalf("stats = %+v, want 1 death / 1 worker", s)
	}
}

func TestDeathRateThrottle(t *testing.T) {
	var clock atomic.Int64
	rt := New(Config{
		Contexts:    4, // threshold defaults to 2
		Throttle:    true,
		DeathWindow: time.Microsecond,
	})
	rt.now = func() int64 { return clock.Load() }

	// Two immediate worker deaths at t=0 trip the threshold.
	for i := 0; i < 2; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused before any deaths", i)
		}
		rt.Spawn(c, func() {})
		rt.Join()
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted while death rate is above threshold")
	}
	if s := rt.Stats(); s.ThrottleDenies != 1 {
		t.Fatalf("ThrottleDenies = %d, want 1", s.ThrottleDenies)
	}

	// Advancing past the window drains the death count.
	clock.Store(time.Microsecond.Nanoseconds() + 1)
	if _, ok := rt.Probe(); !ok {
		t.Fatal("probe refused after the death window expired")
	}
}

// TestCanDivideMatchesProbeCondition: the non-counting peek must agree
// with Probe on both refusal reasons — empty pool AND tripped throttle —
// and must not count as a probe.
func TestCanDivideMatchesProbeCondition(t *testing.T) {
	var clock atomic.Int64
	rt := New(Config{Contexts: 4, Throttle: true, DeathWindow: time.Microsecond})
	rt.now = func() int64 { return clock.Load() }

	if !rt.CanDivide() {
		t.Fatal("CanDivide false on a fresh runtime")
	}
	// Trip the throttle (threshold is 2) with tokens still free.
	for i := 0; i < 2; i++ {
		c, _ := rt.Probe()
		rt.Spawn(c, func() {})
		rt.Join()
	}
	if rt.FreeContexts() != 4 {
		t.Fatalf("FreeContexts = %d, want 4 (all workers dead)", rt.FreeContexts())
	}
	if rt.CanDivide() {
		t.Fatal("CanDivide true while the throttle is tripped")
	}
	clock.Store(time.Microsecond.Nanoseconds() + 1)
	if !rt.CanDivide() {
		t.Fatal("CanDivide false after the death window expired")
	}
	// Empty the pool: CanDivide must go false again.
	var held []*Context
	for i := 0; i < 4; i++ {
		c, _ := rt.Probe()
		held = append(held, c)
	}
	if rt.CanDivide() {
		t.Fatal("CanDivide true with an empty pool")
	}
	for _, c := range held {
		rt.Release(c)
	}
	// Peeks don't probe: 2 throttle-trip probes + 4 holds only.
	if s := rt.Stats(); s.Probes != 6 {
		t.Fatalf("Probes = %d after peeks, want 6", s.Probes)
	}
}

func TestDivideInlineOnRefusal(t *testing.T) {
	rt := quiet(1)
	hold, _ := rt.Probe() // exhaust the pool
	ran := false
	if rt.Divide(func() { ran = true }) {
		t.Fatal("Divide reported a spawn with an empty pool")
	}
	if !ran {
		t.Fatal("Divide did not run the work inline on refusal")
	}
	if s := rt.Stats(); s.InlineRuns != 1 {
		t.Fatalf("InlineRuns = %d, want 1", s.InlineRuns)
	}
	rt.Release(hold)

	done := make(chan struct{})
	if !rt.Divide(func() { close(done) }) {
		t.Fatal("Divide ran inline with a free context")
	}
	<-done
	rt.Join()
}

func TestTryDivideDoesNothingOnRefusal(t *testing.T) {
	rt := quiet(1)
	hold, _ := rt.Probe()
	ran := false
	if rt.TryDivide(func() { ran = true }) {
		t.Fatal("TryDivide reported a spawn with an empty pool")
	}
	if ran {
		t.Fatal("TryDivide ran the work despite refusal")
	}
	rt.Release(hold)
}

func TestJoinWaitsForNestedWorkers(t *testing.T) {
	rt := quiet(8)
	var count atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		count.Add(1)
		if depth > 0 {
			for i := 0; i < 2; i++ {
				d := depth - 1
				rt.Divide(func() { spawn(d) })
			}
		}
	}
	spawn(4) // 2^5 - 1 = 31 calls
	rt.Join()
	if got := count.Load(); got != 31 {
		t.Fatalf("count = %d, want 31", got)
	}
}

func TestPeakWorkers(t *testing.T) {
	rt := quiet(4)
	release := make(chan struct{})
	var up sync.WaitGroup
	for i := 0; i < 4; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused", i)
		}
		up.Add(1)
		rt.Spawn(c, func() {
			up.Done()
			<-release
		})
	}
	up.Wait()
	if s := rt.Stats(); s.PeakWorkers != 4 {
		t.Fatalf("PeakWorkers = %d, want 4", s.PeakWorkers)
	}
	close(release)
	rt.Join()
}

func TestLockTableMutualExclusion(t *testing.T) {
	rt := quiet(8)
	// Hammer a handful of keys; some will share a stripe, which must stay
	// correct (coarser, never incorrect).
	const keys, perKey, rounds = 5, 8, 200
	counters := make([]int64, keys)
	for w := 0; w < keys*perKey; w++ {
		key := uint64(w % keys)
		rt.Divide(func() {
			for r := 0; r < rounds; r++ {
				rt.Lock(key)
				counters[key]++
				rt.Unlock(key)
			}
		})
	}
	rt.Join()
	for k, got := range counters {
		if got != perKey*rounds {
			t.Fatalf("counters[%d] = %d, want %d", k, got, perKey*rounds)
		}
	}
	if s := rt.Stats(); s.LockAcquires != keys*perKey*rounds {
		t.Fatalf("LockAcquires = %d, want %d", s.LockAcquires, keys*perKey*rounds)
	}
}

func TestSpawnForeignContextPanics(t *testing.T) {
	rt1, rt2 := quiet(1), quiet(1)
	c, _ := rt1.Probe()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn accepted a foreign context")
		}
		rt1.Release(c)
	}()
	rt2.Spawn(c, func() {})
}

func TestResetStats(t *testing.T) {
	rt := quiet(2)
	rt.Divide(func() {})
	rt.Join()
	rt.ResetStats()
	s := rt.Stats()
	if s.Probes != 0 || s.Granted != 0 || s.Deaths != 0 || s.TotalWorkers != 0 {
		t.Fatalf("stats after reset = %+v, want zeroes", s)
	}
	// The pool must be intact: both contexts grantable.
	a, ok1 := rt.Probe()
	b, ok2 := rt.Probe()
	if !ok1 || !ok2 {
		t.Fatal("pool damaged by ResetStats")
	}
	rt.Release(a)
	rt.Release(b)
}

func TestStatsString(t *testing.T) {
	rt := quiet(2)
	rt.Divide(func() {})
	rt.Join()
	if s := rt.Stats().String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// TestProbeDivideContention is the race-detector workout: many goroutines
// hammer Probe/Spawn/Release, Divide, TryDivide and the lock table at
// once, with the throttle on so every deny path is exercised too.
func TestProbeDivideContention(t *testing.T) {
	rt := New(Config{Contexts: 8, Throttle: true, DeathWindow: 50 * time.Microsecond})
	var total atomic.Int64
	var outer sync.WaitGroup
	for g := 0; g < 16; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					rt.Divide(func() { total.Add(1) })
				case 1:
					if !rt.TryDivide(func() { total.Add(1) }) {
						total.Add(1) // else-branch: do the unit ourselves
					}
				default:
					if c, ok := rt.Probe(); ok {
						if i%2 == 0 {
							rt.Spawn(c, func() { total.Add(1) })
						} else {
							rt.Release(c)
							total.Add(1)
						}
					} else {
						total.Add(1)
					}
				}
				key := uint64(g*31 + i)
				rt.Lock(key)
				rt.Unlock(key)
			}
		}(g)
	}
	outer.Wait()
	rt.Join()
	if got := total.Load(); got != 16*50 {
		t.Fatalf("total = %d, want %d", got, 16*50)
	}
	s := rt.Stats()
	if s.Deaths != s.TotalWorkers {
		t.Fatalf("deaths (%d) != workers spawned (%d) after Join", s.Deaths, s.TotalWorkers)
	}
	if s.Granted < s.TotalWorkers {
		t.Fatalf("granted (%d) < workers spawned (%d)", s.Granted, s.TotalWorkers)
	}
}

// TestStormNeverExceedsContexts is the sustained-contention invariant: a
// Probe/Divide storm from many goroutines must never have more than
// Contexts workers alive at once, and the pool must come back whole (all
// ids present, none duplicated) when the storm ends.
func TestStormNeverExceedsContexts(t *testing.T) {
	const contexts, stormers, rounds = 4, 32, 300
	rt := quiet(contexts)
	var live, violations, spawned atomic.Int64
	work := func() {
		if cur := live.Add(1); cur > contexts {
			violations.Add(1)
		}
		spawned.Add(1)
		live.Add(-1)
	}
	var outer sync.WaitGroup
	for g := 0; g < stormers; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			for i := 0; i < rounds; i++ {
				switch (g + i) % 3 {
				case 0:
					rt.TryDivide(work)
				case 1:
					if c, ok := rt.Probe(); ok {
						rt.Spawn(c, work)
					}
				default:
					if c, ok := rt.Probe(); ok {
						rt.Release(c)
					}
				}
			}
		}(g)
	}
	outer.Wait()
	rt.Join()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d workers observed beyond the %d-context pool", v, contexts)
	}
	if spawned.Load() == 0 {
		t.Fatal("storm spawned no workers at all")
	}
	if s := rt.Stats(); s.PeakWorkers > contexts {
		t.Fatalf("PeakWorkers = %d, want <= %d", s.PeakWorkers, contexts)
	}
	// Pool integrity: exactly Contexts grantable, all ids distinct.
	seen := map[int]bool{}
	var held []*Context
	for i := 0; i < contexts; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("pool lost tokens: only %d of %d grantable", i, contexts)
		}
		if seen[c.ID()] {
			t.Fatalf("duplicate context id %d in the pool", c.ID())
		}
		seen[c.ID()] = true
		held = append(held, c)
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("pool gained tokens: granted beyond Contexts")
	}
	for _, c := range held {
		rt.Release(c)
	}
}

// TestResetStatsDuringStorm runs ResetStats concurrently with a
// Divide/Probe storm: it must stay race-free (the -race CI job is the
// real assertion) and must never damage the context pool.
func TestResetStatsDuringStorm(t *testing.T) {
	const contexts = 4
	rt := New(Config{Contexts: contexts, Throttle: true, DeathWindow: 20 * time.Microsecond})
	stop := make(chan struct{})
	var resets sync.WaitGroup
	for r := 0; r < 2; r++ {
		resets.Add(1)
		go func() {
			defer resets.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rt.ResetStats()
					_ = rt.Stats()
				}
			}
		}()
	}
	var outer sync.WaitGroup
	for g := 0; g < 16; g++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			for i := 0; i < 200; i++ {
				rt.Divide(func() {})
				rt.Lock(uint64(i))
				rt.Unlock(uint64(i))
			}
		}()
	}
	outer.Wait()
	close(stop)
	resets.Wait()
	rt.Join()
	time.Sleep(time.Millisecond) // let the 20µs death window drain
	// The pool must be intact after racing resets.
	var held []*Context
	for i := 0; i < contexts; i++ {
		if c, ok := rt.Probe(); ok {
			held = append(held, c)
		}
	}
	if len(held) != contexts {
		t.Fatalf("pool holds %d tokens after reset storm, want %d", len(held), contexts)
	}
	for _, c := range held {
		rt.Release(c)
	}
}
