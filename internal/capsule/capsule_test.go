package capsule

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// quiet returns a runtime with throttling off so pool behaviour can be
// tested in isolation.
func quiet(contexts int) *Runtime {
	return New(Config{Contexts: contexts, Throttle: false})
}

func TestDefaultsApplied(t *testing.T) {
	rt := New(Config{})
	if rt.Contexts() < 1 {
		t.Fatalf("Contexts = %d, want >= 1", rt.Contexts())
	}
	if rt.cfg.DeathWindow <= 0 || rt.cfg.DeathThreshold < 1 || rt.cfg.LockStripes < 1 {
		t.Fatalf("defaults not applied: %+v", rt.cfg)
	}
	if len(rt.stripes)&(len(rt.stripes)-1) != 0 {
		t.Fatalf("stripes = %d, want power of two", len(rt.stripes))
	}
}

func TestProbeBoundedByContexts(t *testing.T) {
	rt := quiet(3)
	var held []*Context
	for i := 0; i < 3; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused with free contexts", i)
		}
		held = append(held, c)
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted beyond the context pool")
	}
	s := rt.Stats()
	if s.Probes != 4 || s.Granted != 3 || s.NoCtxDenies != 1 {
		t.Fatalf("stats = %+v, want 4 probes / 3 granted / 1 no-ctx deny", s)
	}
	for _, c := range held {
		rt.Release(c)
	}
	if _, ok := rt.Probe(); !ok {
		t.Fatal("probe refused after releases refilled the pool")
	}
}

func TestLIFOContextReuse(t *testing.T) {
	rt := quiet(3)
	// Initial allocation order is 0, 1, 2 (context 0 on top).
	var cs []*Context
	for want := 0; want < 3; want++ {
		c, _ := rt.Probe()
		if c.ID() != want {
			t.Fatalf("initial probe got context %d, want %d", c.ID(), want)
		}
		cs = append(cs, c)
	}
	// Release 0, 1, 2: LIFO reuse must hand back 2, 1, 0.
	for _, c := range cs {
		rt.Release(c)
	}
	for _, want := range []int{2, 1, 0} {
		c, _ := rt.Probe()
		if c.ID() != want {
			t.Fatalf("LIFO probe got context %d, want %d", c.ID(), want)
		}
	}
}

func TestWorkerDeathRefillsLIFO(t *testing.T) {
	rt := quiet(2)
	c, _ := rt.Probe()
	id := c.ID()
	rt.Spawn(c, func() {})
	rt.Join()
	// The dead worker's context must be the next one granted.
	c2, ok := rt.Probe()
	if !ok || c2.ID() != id {
		t.Fatalf("probe after death got (%v, %v), want context %d", c2, ok, id)
	}
	s := rt.Stats()
	if s.Deaths != 1 || s.TotalWorkers != 1 {
		t.Fatalf("stats = %+v, want 1 death / 1 worker", s)
	}
}

func TestDeathRateThrottle(t *testing.T) {
	var clock atomic.Int64
	rt := New(Config{
		Contexts:    4, // threshold defaults to 2
		Throttle:    true,
		DeathWindow: time.Microsecond,
	})
	rt.now = func() int64 { return clock.Load() }

	// Two immediate worker deaths at t=0 trip the threshold.
	for i := 0; i < 2; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused before any deaths", i)
		}
		rt.Spawn(c, func() {})
		rt.Join()
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted while death rate is above threshold")
	}
	if s := rt.Stats(); s.ThrottleDenies != 1 {
		t.Fatalf("ThrottleDenies = %d, want 1", s.ThrottleDenies)
	}

	// Advancing past the window drains the death count.
	clock.Store(time.Microsecond.Nanoseconds() + 1)
	if _, ok := rt.Probe(); !ok {
		t.Fatal("probe refused after the death window expired")
	}
}

func TestDivideInlineOnRefusal(t *testing.T) {
	rt := quiet(1)
	hold, _ := rt.Probe() // exhaust the pool
	ran := false
	if rt.Divide(func() { ran = true }) {
		t.Fatal("Divide reported a spawn with an empty pool")
	}
	if !ran {
		t.Fatal("Divide did not run the work inline on refusal")
	}
	if s := rt.Stats(); s.InlineRuns != 1 {
		t.Fatalf("InlineRuns = %d, want 1", s.InlineRuns)
	}
	rt.Release(hold)

	done := make(chan struct{})
	if !rt.Divide(func() { close(done) }) {
		t.Fatal("Divide ran inline with a free context")
	}
	<-done
	rt.Join()
}

func TestTryDivideDoesNothingOnRefusal(t *testing.T) {
	rt := quiet(1)
	hold, _ := rt.Probe()
	ran := false
	if rt.TryDivide(func() { ran = true }) {
		t.Fatal("TryDivide reported a spawn with an empty pool")
	}
	if ran {
		t.Fatal("TryDivide ran the work despite refusal")
	}
	rt.Release(hold)
}

func TestJoinWaitsForNestedWorkers(t *testing.T) {
	rt := quiet(8)
	var count atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		count.Add(1)
		if depth > 0 {
			for i := 0; i < 2; i++ {
				d := depth - 1
				rt.Divide(func() { spawn(d) })
			}
		}
	}
	spawn(4) // 2^5 - 1 = 31 calls
	rt.Join()
	if got := count.Load(); got != 31 {
		t.Fatalf("count = %d, want 31", got)
	}
}

func TestPeakWorkers(t *testing.T) {
	rt := quiet(4)
	release := make(chan struct{})
	var up sync.WaitGroup
	for i := 0; i < 4; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused", i)
		}
		up.Add(1)
		rt.Spawn(c, func() {
			up.Done()
			<-release
		})
	}
	up.Wait()
	if s := rt.Stats(); s.PeakWorkers != 4 {
		t.Fatalf("PeakWorkers = %d, want 4", s.PeakWorkers)
	}
	close(release)
	rt.Join()
}

func TestLockTableMutualExclusion(t *testing.T) {
	rt := quiet(8)
	// Hammer a handful of keys; some will share a stripe, which must stay
	// correct (coarser, never incorrect).
	const keys, perKey, rounds = 5, 8, 200
	counters := make([]int64, keys)
	for w := 0; w < keys*perKey; w++ {
		key := uint64(w % keys)
		rt.Divide(func() {
			for r := 0; r < rounds; r++ {
				rt.Lock(key)
				counters[key]++
				rt.Unlock(key)
			}
		})
	}
	rt.Join()
	for k, got := range counters {
		if got != perKey*rounds {
			t.Fatalf("counters[%d] = %d, want %d", k, got, perKey*rounds)
		}
	}
	if s := rt.Stats(); s.LockAcquires != keys*perKey*rounds {
		t.Fatalf("LockAcquires = %d, want %d", s.LockAcquires, keys*perKey*rounds)
	}
}

func TestSpawnForeignContextPanics(t *testing.T) {
	rt1, rt2 := quiet(1), quiet(1)
	c, _ := rt1.Probe()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn accepted a foreign context")
		}
		rt1.Release(c)
	}()
	rt2.Spawn(c, func() {})
}

func TestResetStats(t *testing.T) {
	rt := quiet(2)
	rt.Divide(func() {})
	rt.Join()
	rt.ResetStats()
	s := rt.Stats()
	if s.Probes != 0 || s.Granted != 0 || s.Deaths != 0 || s.TotalWorkers != 0 {
		t.Fatalf("stats after reset = %+v, want zeroes", s)
	}
	// The pool must be intact: both contexts grantable.
	a, ok1 := rt.Probe()
	b, ok2 := rt.Probe()
	if !ok1 || !ok2 {
		t.Fatal("pool damaged by ResetStats")
	}
	rt.Release(a)
	rt.Release(b)
}

func TestStatsString(t *testing.T) {
	rt := quiet(2)
	rt.Divide(func() {})
	rt.Join()
	if s := rt.Stats().String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// TestProbeDivideContention is the race-detector workout: many goroutines
// hammer Probe/Spawn/Release, Divide, TryDivide and the lock table at
// once, with the throttle on so every deny path is exercised too.
func TestProbeDivideContention(t *testing.T) {
	rt := New(Config{Contexts: 8, Throttle: true, DeathWindow: 50 * time.Microsecond})
	var total atomic.Int64
	var outer sync.WaitGroup
	for g := 0; g < 16; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					rt.Divide(func() { total.Add(1) })
				case 1:
					if !rt.TryDivide(func() { total.Add(1) }) {
						total.Add(1) // else-branch: do the unit ourselves
					}
				default:
					if c, ok := rt.Probe(); ok {
						if i%2 == 0 {
							rt.Spawn(c, func() { total.Add(1) })
						} else {
							rt.Release(c)
							total.Add(1)
						}
					} else {
						total.Add(1)
					}
				}
				key := uint64(g*31 + i)
				rt.Lock(key)
				rt.Unlock(key)
			}
		}(g)
	}
	outer.Wait()
	rt.Join()
	if got := total.Load(); got != 16*50 {
		t.Fatalf("total = %d, want %d", got, 16*50)
	}
	s := rt.Stats()
	if s.Deaths != s.TotalWorkers {
		t.Fatalf("deaths (%d) != workers spawned (%d) after Join", s.Deaths, s.TotalWorkers)
	}
	if s.Granted < s.TotalWorkers {
		t.Fatalf("granted (%d) < workers spawned (%d)", s.Granted, s.TotalWorkers)
	}
}
