// Package baseline preserves the pre-lock-free capsule pool: the
// mutex-guarded LIFO free list, the slice-pruned death window, and
// goroutine-per-spawn workers that internal/capsule shipped before the
// hot path went atomic. It exists so the rewrite's win stays measurable
// forever — internal/capsule/hotpath benchmarks this implementation and
// the live one side by side, and cmd/capstress records both in
// BENCH_capsule.json. It is a benchmark foil, not an API: nothing
// outside benchmarks should use it.
//
// The code is a faithful port of the old Runtime.Probe/Release/Spawn/
// release, including the per-probe atomic counters (the live runtime
// pays them too, so the comparison isolates pool + spawn strategy).
package baseline

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the old mutex-serialized context pool.
type Pool struct {
	contexts  int
	throttle  bool
	window    time.Duration
	threshold int

	mu     sync.Mutex
	free   []int   // LIFO stack of free context ids
	deaths []int64 // monotonic ns timestamps of recent deaths (ascending)

	probes         atomic.Uint64
	granted        atomic.Uint64
	noCtxDenies    atomic.Uint64
	throttleDenies atomic.Uint64
	deathCount     atomic.Uint64
	totalWorkers   atomic.Uint64

	live atomic.Int64
	peak atomic.Int64

	wg sync.WaitGroup

	now func() int64
}

// New builds a pool with contexts tokens; threshold <= 0 takes the old
// default of contexts/2 (minimum 1).
func New(contexts int, throttle bool, window time.Duration, threshold int) *Pool {
	if threshold <= 0 {
		threshold = contexts / 2
		if threshold < 1 {
			threshold = 1
		}
	}
	p := &Pool{
		contexts:  contexts,
		throttle:  throttle,
		window:    window,
		threshold: threshold,
		free:      make([]int, contexts),
		now:       func() int64 { return time.Now().UnixNano() },
	}
	for i := range p.free {
		p.free[i] = contexts - 1 - i
	}
	return p
}

// Probe is the old mutex-guarded nthr: throttle check (with prune) and
// LIFO pop under one global lock.
func (p *Pool) Probe() (int, bool) {
	p.probes.Add(1)

	p.mu.Lock()
	if p.throttle && p.deathsInWindowLocked() >= p.threshold {
		p.mu.Unlock()
		p.throttleDenies.Add(1)
		return 0, false
	}
	n := len(p.free)
	if n == 0 {
		p.mu.Unlock()
		p.noCtxDenies.Add(1)
		return 0, false
	}
	id := p.free[n-1]
	p.free = p.free[:n-1]
	p.mu.Unlock()

	p.granted.Add(1)
	return id, true
}

func (p *Pool) deathsInWindowLocked() int {
	cut := p.now() - p.window.Nanoseconds()
	i := 0
	for i < len(p.deaths) && p.deaths[i] < cut {
		i++
	}
	if i > 0 {
		p.deaths = p.deaths[:copy(p.deaths, p.deaths[i:])]
	}
	return len(p.deaths)
}

// Release returns an unused token under the lock.
func (p *Pool) Release(id int) {
	p.mu.Lock()
	p.free = append(p.free, id)
	p.mu.Unlock()
}

// Spawn runs fn on a fresh goroutine — the old per-division spawn with
// its closure allocation and WaitGroup traffic.
func (p *Pool) Spawn(id int, fn func()) {
	p.totalWorkers.Add(1)
	live := p.live.Add(1)
	for {
		pk := p.peak.Load()
		if live <= pk || p.peak.CompareAndSwap(pk, live) {
			break
		}
	}
	p.wg.Add(1)
	go func() {
		defer p.release(id)
		fn()
	}()
}

func (p *Pool) release(id int) {
	p.live.Add(-1)
	p.deathCount.Add(1)
	p.mu.Lock()
	p.free = append(p.free, id)
	if p.throttle {
		p.deaths = append(p.deaths, p.now())
		if len(p.deaths) > p.threshold+p.contexts {
			p.deathsInWindowLocked()
		}
	}
	p.mu.Unlock()
	p.wg.Done()
}

// TryDivide is the old fused probe+spawn.
func (p *Pool) TryDivide(fn func()) bool {
	id, ok := p.Probe()
	if !ok {
		return false
	}
	p.Spawn(id, fn)
	return true
}

// Join waits for every spawned worker.
func (p *Pool) Join() { p.wg.Wait() }

// FreeContexts mirrors the old locked length read.
func (p *Pool) FreeContexts() int {
	p.mu.Lock()
	n := len(p.free)
	p.mu.Unlock()
	return n
}
