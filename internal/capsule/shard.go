package capsule

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This file is the sharded successor to the single Treiber token stack.
// One shared head word made every Probe and Release in the fleet CAS the
// same cache line, so parallel probers gained nothing over serial (the
// PR-3 BENCH numbers: 55.0 ns at 4×GOMAXPROCS vs 53.0 ns serial). The
// paper's premise is the opposite shape: nthr is a *per-hardware-context*
// resource check answered locally in a few cycles. The standard software
// escape (per-CPU sharding with stealing — McKenney's per-thread-increment
// pattern) is applied here twice:
//
//   - shardedPool: the free-token pool split into min(GOMAXPROCS,
//     Contexts) cache-line-padded Treiber sub-stacks. The fast path pops
//     from the shard picked by a cheap per-goroutine affinity hint — one
//     CAS on a line no other shard touches — and only on a local miss
//     walks the other shards in ring order (the steal path), so a probe
//     is refused only after every shard has been inspected and found
//     empty. Grant/deny semantics, the Stats invariant and Close's
//     drain-by-collecting-tokens contract are unchanged.
//   - statShard (capsule.go): the hot Stats counters split into padded
//     per-shard blocks aggregated on Stats() read, so Probe bumping
//     counters on one core no longer false-shares with Release on
//     another.
//
// LIFO reuse becomes per-shard LIFO: within a shard the most recently
// freed token is still granted first (the warm-stack property), but two
// goroutines homed to different shards recycle disjoint token sets until
// a steal migrates one.

// cacheLine is the assumed coherence-line size. Padding targets two
// lines so the adjacent-line prefetcher can't re-couple neighbours.
const cacheLine = 64

// tokenShard is one padded Treiber sub-stack. The head word packs
// {tag:32 | id+1:32}; a zero low half means empty. free is the shard's
// post-CAS count, a peek-only observable exactly like the old stack's.
type tokenShard struct {
	head atomic.Uint64
	free atomic.Int64
	_    [2*cacheLine - 16]byte
}

const (
	stackIDMask  = uint64(0xFFFFFFFF)
	stackTagIncr = uint64(1) << 32
)

// shardedPool is a lock-free pool of the ids [0, total), distributed over
// padded sub-stacks. next[id] holds the id+1 of the element below id in
// whichever shard id currently sits (0 = bottom); each id is on exactly
// one stack at most once — pushes only return ids handed out by pops — so
// next[id] is only ever written by the id's current owner, and the stale
// read a concurrent pop can make of it is rejected by the tag CAS.
type shardedPool struct {
	shards []tokenShard
	next   []atomic.Int32
	total  int
}

// poolShards is the default shard count for n tokens: one per P, but
// never more shards than tokens.
func poolShards(n int) int {
	k := runtime.GOMAXPROCS(0)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// init distributes the n ids over k sub-stacks in contiguous blocks,
// lowest id on top of each shard: with one shard this is exactly the old
// stack (first probe takes context 0, like the hardware allocator).
func (p *shardedPool) init(n, k int) {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	p.total = n
	p.shards = make([]tokenShard, k)
	p.next = make([]atomic.Int32, n)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k // shard s owns ids [lo, hi)
		if lo == hi {
			continue
		}
		for i := lo; i < hi-1; i++ {
			p.next[i].Store(int32(i + 2)) // below id i sits id i+1
		}
		p.shards[s].head.Store(uint64(lo + 1)) // tag 0, top id lo
		p.shards[s].free.Store(int64(hi - lo))
	}
}

// popFrom removes and returns the top id of one shard, or ok=false when
// that shard is empty.
func (p *shardedPool) popFrom(s *tokenShard) (int, bool) {
	for {
		h := s.head.Load()
		top := uint32(h & stackIDMask)
		if top == 0 {
			return 0, false
		}
		below := uint32(p.next[top-1].Load())
		nh := ((h &^ stackIDMask) + stackTagIncr) | uint64(below)
		if s.head.CompareAndSwap(h, nh) {
			s.free.Add(-1)
			return int(top - 1), true
		}
	}
}

// pop removes and returns a free id, preferring the hinted shard (the
// fast path: one local CAS) and stealing from the others in ring order on
// a local miss. It returns ok=false only after inspecting every shard —
// the refusal semantics of the single stack, preserved.
func (p *shardedPool) pop(hint int) (int, bool) {
	id, _, ok := p.popScan(hint)
	return id, ok
}

// popScan is pop with the walk distance exposed: steals is how many
// shards beyond the home shard were inspected before the grant (0 = the
// local hit, k-1 = the id came from the last shard of the sweep). A
// refusal implies the full sweep came up empty. The distance feeds the
// steal/local-hit shard counters and the KProbeGranted trace payload;
// pop remains the distance-blind wrapper for callers that don't care
// (Close's drain loop, the pool tests).
func (p *shardedPool) popScan(hint int) (id, steals int, ok bool) {
	k := len(p.shards)
	s := hint
	for i := 0; i < k; i++ {
		if id, ok := p.popFrom(&p.shards[s]); ok {
			return id, i, true
		}
		if s++; s == k {
			s = 0
		}
	}
	return 0, k, false
}

// push returns id to the hinted shard, making it that shard's next pop.
func (p *shardedPool) push(id, hint int) {
	s := &p.shards[hint]
	for {
		h := s.head.Load()
		p.next[id].Store(int32(uint32(h & stackIDMask)))
		nh := ((h &^ stackIDMask) + stackTagIncr) | uint64(id+1)
		if s.head.CompareAndSwap(h, nh) {
			s.free.Add(1)
			return
		}
	}
}

// free returns the current free count, summed over shards. Each shard's
// count lags its head by at most the in-flight CAS winners, so the sum is
// a peek, not a reservation — and a token observed mid-migration (popped
// from one shard, not yet pushed to another, or vice versa) can skew the
// instantaneous sum a hair either way, so it is clamped to the pool's
// actual range.
func (p *shardedPool) free() int {
	var n int64
	for i := range p.shards {
		n += p.shards[i].free.Load()
	}
	if n < 0 {
		return 0
	}
	if n > int64(p.total) {
		return p.total
	}
	return int(n)
}

// statHot is the live counter set of one stat block. localHits, steals
// and fullSweeps expose the sharded pool's internal behaviour: grants
// served by the home shard, grants that had to walk to another shard,
// and refusals reached only after sweeping every shard — the three
// numbers that say whether the shard count fits the offered load. They
// double as the grant/empty-pool outcome counters (Granted and the
// pool-empty share of NoCtxDenies are derived sums in Stats), so the
// per-shard breakdown costs the hot path nothing over the plain
// aggregates. closedDenies is the rare closed-runtime refusal, the only
// no-context deny that happens without a sweep.
type statHot struct {
	probes         atomic.Uint64
	closedDenies   atomic.Uint64
	throttleDenies atomic.Uint64
	inlineRuns     atomic.Uint64
	deaths         atomic.Uint64
	totalWorkers   atomic.Uint64
	lockAcquires   atomic.Uint64
	localHits      atomic.Uint64
	steals         atomic.Uint64
	fullSweeps     atomic.Uint64
}

// statShard pads statHot to whole cache lines (two-line granularity,
// derived from the real size like workerState), so every
// Probe/Release/death bumps a block no other shard's core touches and
// Stats()/ShardCounters() aggregate on read.
type statShard struct {
	statHot
	_ [(2*cacheLine - unsafe.Sizeof(statHot{})%(2*cacheLine)) % (2 * cacheLine)]byte
}

// hint returns the calling goroutine's shard affinity in [0, k): a mixed
// hash of a current stack address. Distinct goroutines live on distinct
// stacks, so concurrent probers spread across shards, while one goroutine
// probing in a loop hashes the same frame address every time and stays
// home. It is a hint, not an identity — a grown (moved) stack or a
// different call depth just re-homes the goroutine, which costs locality,
// never correctness. The uintptr conversion keeps b on the stack: the
// whole thing is a few ALU ops, no allocation, no atomics.
func affinityHint(k int) int {
	if k == 1 {
		return 0
	}
	var b byte
	return int(mix(uint64(uintptr(unsafe.Pointer(&b)))) % uint64(k))
}
