package capsule

// Tests for the sharded token pool: steal-path determinism, token
// conservation under a cross-shard storm with single-ownership asserted
// at every hold, refusal only when every shard is empty, and the
// per-shard Stats blocks still aggregating into the PR-3 snapshot
// invariant. Run under -race in CI.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// TestShardPadding pins the layout contract: every per-shard structure
// is padded to whole cache lines (at least two, to defeat the
// adjacent-line prefetcher), so shards can never false-share.
func TestShardPadding(t *testing.T) {
	sizes := map[string]uintptr{
		"tokenShard":  unsafe.Sizeof(tokenShard{}),
		"statShard":   unsafe.Sizeof(statShard{}),
		"workerState": unsafe.Sizeof(workerState{}),
	}
	for name, size := range sizes {
		if size%cacheLine != 0 || size < 2*cacheLine {
			t.Errorf("%s size = %d, want a multiple of %d and >= %d", name, size, cacheLine, 2*cacheLine)
		}
	}
}

// TestShardedPoolInitDistribution: ids are block-distributed with the
// lowest id on top of each shard, and a fixed hint drains its home shard
// first, then steals the others in ring order — fully deterministic
// single-threaded.
func TestShardedPoolInitDistribution(t *testing.T) {
	var p shardedPool
	p.init(6, 3) // shard 0: {0,1}, shard 1: {2,3}, shard 2: {4,5}
	if got := p.free(); got != 6 {
		t.Fatalf("free = %d after init, want 6", got)
	}
	want := []int{2, 3, 4, 5, 0, 1} // home shard 1 first, then ring order 2, 0
	for i, w := range want {
		id, ok := p.pop(1)
		if !ok || id != w {
			t.Fatalf("pop %d with hint 1 = (%d, %v), want (%d, true)", i, id, ok, w)
		}
	}
	if _, ok := p.pop(1); ok {
		t.Fatal("pop granted from a fully drained pool")
	}
	if got := p.free(); got != 0 {
		t.Fatalf("free = %d after drain, want 0", got)
	}
	// Pushed back to shard 0, a hint-0 pop gets it first (per-shard LIFO).
	p.push(4, 0)
	p.push(5, 0)
	if id, ok := p.pop(0); !ok || id != 5 {
		t.Fatalf("pop after pushes = (%d, %v), want (5, true)", id, ok)
	}
}

// TestShardStealConservationStorm is the race-mode token-conservation
// storm: goroutines homed to different shards pop locally, steal across
// shards and release to their own shard, with an owner word per id
// asserting that every token is held by at most one goroutine at every
// instant — local pop, steal and release alike.
func TestShardStealConservationStorm(t *testing.T) {
	const n, shards, stormers, rounds = 8, 4, 16, 2000
	var p shardedPool
	p.init(n, shards)
	owner := make([]atomic.Int32, n)
	var violations atomic.Int64
	var outer sync.WaitGroup
	for g := 0; g < stormers; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			me := int32(g + 1)
			home := g % shards
			for i := 0; i < rounds; i++ {
				// Alternate hints so local pops and forced steals mix.
				hint := home
				if i%3 == 0 {
					hint = (home + 1) % shards
				}
				id, ok := p.pop(hint)
				if !ok {
					continue
				}
				if !owner[id].CompareAndSwap(0, me) {
					violations.Add(1) // someone else already holds this id
				}
				if id < 0 || id >= n {
					violations.Add(1)
				}
				if !owner[id].CompareAndSwap(me, 0) {
					violations.Add(1)
				}
				p.push(id, home)
			}
		}(g)
	}
	outer.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d single-ownership violations across pops/steals/releases", v)
	}
	if got := p.free(); got != n {
		t.Fatalf("free = %d after storm, want %d", got, n)
	}
	// Conservation: every id poppable exactly once, from any hint.
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		id, ok := p.pop(i % shards)
		if !ok {
			t.Fatalf("pool lost ids: only %d of %d poppable", i, n)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if _, ok := p.pop(0); ok {
		t.Fatal("pool gained ids")
	}
}

// TestRefusalOnlyWhenAllShardsEmpty: a probe whose home shard is empty
// must steal rather than refuse — through the public API, a runtime
// forced to more shards than the machine has Ps grants exactly Contexts
// probes from any mix of hints, refuses the next, and grants again the
// moment any one token (in any shard) comes home.
func TestRefusalOnlyWhenAllShardsEmpty(t *testing.T) {
	const contexts = 4
	rt := New(Config{Contexts: contexts, Throttle: false, PoolShards: contexts})
	defer rt.Close()
	if rt.nshards != contexts {
		t.Fatalf("nshards = %d, want %d", rt.nshards, contexts)
	}
	var held []*Context
	for i := 0; i < contexts; i++ {
		c, ok := rt.Probe()
		if !ok {
			// The prober's hint is fixed (same goroutine, same frame), so
			// grants beyond the first REQUIRE the steal path to work.
			t.Fatalf("probe %d refused with %d shards still holding tokens", i, contexts-i)
		}
		held = append(held, c)
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted with every shard empty")
	}
	if got := rt.FreeContexts(); got != 0 {
		t.Fatalf("FreeContexts = %d with all tokens held, want 0", got)
	}
	// One release — into the releasing goroutine's home shard, wherever
	// that is — must make the very next probe grantable again.
	rt.Release(held[0])
	c2, ok := rt.Probe()
	if !ok {
		t.Fatal("probe refused with one token free in one shard")
	}
	s := rt.Stats()
	if s.NoCtxDenies != 1 {
		t.Fatalf("NoCtxDenies = %d, want exactly the one all-shards-empty refusal", s.NoCtxDenies)
	}
	for _, c := range held[1:] {
		rt.Release(c)
	}
	rt.Release(c2)
}

// TestShardedStatsInvariantStorm re-asserts the PR-3 snapshot invariant
// on a runtime forced to multiple stat shards: no snapshot taken during
// a divide storm may show more probes than outcomes even though both
// sides are now sums over padded per-shard blocks, and the sides must be
// equal at quiescence.
func TestShardedStatsInvariantStorm(t *testing.T) {
	rt := New(Config{Contexts: 4, PoolShards: 4, Throttle: true, DeathWindow: 20 * time.Microsecond})
	defer rt.Close()
	stop := make(chan struct{})
	var violations atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := rt.Stats()
					if s.Probes > s.Granted+s.NoCtxDenies+s.ThrottleDenies {
						violations.Add(1)
					}
				}
			}
		}()
	}
	var stormers sync.WaitGroup
	for g := 0; g < 8; g++ {
		stormers.Add(1)
		go func() {
			defer stormers.Done()
			for i := 0; i < 500; i++ {
				rt.Divide(func() {})
			}
		}()
	}
	stormers.Wait()
	close(stop)
	readers.Wait()
	rt.Join()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d snapshots showed probes without outcomes", v)
	}
	s := rt.Stats()
	if s.Probes != s.Granted+s.NoCtxDenies+s.ThrottleDenies {
		t.Fatalf("quiescent accounting broken: %+v", s)
	}
	if s.Probes != 8*500 {
		t.Fatalf("Probes = %d, want %d (every Divide is one probe)", s.Probes, 8*500)
	}
	if s.Deaths != s.TotalWorkers {
		t.Fatalf("deaths (%d) != workers (%d) after Join", s.Deaths, s.TotalWorkers)
	}
}

// TestRuntimeShardStealStorm drives the full runtime (probe, divide,
// spawn, release) on a forced multi-shard pool and checks pool integrity
// after: with workers releasing to their own home shards, every token
// must still be grantable exactly once at the end.
func TestRuntimeShardStealStorm(t *testing.T) {
	const contexts = 6
	rt := New(Config{Contexts: contexts, PoolShards: 3, Throttle: true, DeathWindow: 30 * time.Microsecond})
	var outer sync.WaitGroup
	for g := 0; g < 12; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			for i := 0; i < 400; i++ {
				switch g % 3 {
				case 0:
					if c, ok := rt.Probe(); ok {
						rt.Release(c)
					}
				case 1:
					rt.Divide(func() {})
				default:
					if c, ok := rt.Probe(); ok {
						rt.Spawn(c, func() {})
					}
				}
			}
		}(g)
	}
	outer.Wait()
	rt.Join()
	time.Sleep(time.Millisecond) // let the 30µs death window drain
	seen := map[int]bool{}
	var held []*Context
	for i := 0; i < contexts; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("pool lost tokens: %d of %d grantable (stats %+v)", i, contexts, rt.Stats())
		}
		if seen[c.ID()] {
			t.Fatalf("duplicate context id %d", c.ID())
		}
		seen[c.ID()] = true
		held = append(held, c)
	}
	for _, c := range held {
		rt.Release(c)
	}
	rt.Close()
}
