package capsule

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGroupJoinWaitsOnlyOwnWorkers(t *testing.T) {
	rt := quiet(4)
	g1, g2 := rt.NewGroup(), rt.NewGroup()

	block := make(chan struct{})
	started := make(chan struct{})
	if !g1.TryDivide(func() { close(started); <-block }) {
		t.Fatal("g1 division refused with a free pool")
	}
	<-started

	var n atomic.Int64
	for i := 0; i < 8; i++ {
		g2.Divide(func() { n.Add(1) })
	}
	// g2.Join must return while g1's worker is still blocked.
	g2.Join()
	if got := n.Load(); got != 8 {
		t.Fatalf("g2 work after Join = %d, want 8", got)
	}

	close(block)
	g1.Join()
	rt.Join() // runtime-wide join still covers both groups
	s := rt.Stats()
	if s.Deaths != s.TotalWorkers {
		t.Fatalf("deaths (%d) != workers (%d) after all joins", s.Deaths, s.TotalWorkers)
	}
}

func TestGroupStatsCountOwnDivisions(t *testing.T) {
	rt := quiet(1)
	g := rt.NewGroup()
	hold, _ := rt.Probe() // empty the pool: every offer is refused
	ran := 0
	if g.Divide(func() { ran++ }) {
		t.Fatal("Divide spawned with an empty pool")
	}
	if g.TryDivide(func() { ran++ }) {
		t.Fatal("TryDivide spawned with an empty pool")
	}
	rt.Release(hold)
	g.Divide(func() {})
	g.Join()

	gs := g.Stats()
	if gs.Probes != 3 || gs.Granted != 1 || gs.InlineRuns != 1 {
		t.Fatalf("group stats = %+v, want 3 probes / 1 granted / 1 inline", gs)
	}
	if got := gs.GrantRate(); got <= 0 || got >= 1 {
		t.Fatalf("grant rate = %v, want in (0,1)", got)
	}
	if ran != 1 {
		t.Fatalf("inline work ran %d times, want 1", ran)
	}
	// The group's offers are also visible runtime-wide.
	if s := rt.Stats(); s.Probes != 4 || s.InlineRuns != 1 { // +1 probe: the held token
		t.Fatalf("runtime stats = %+v, want the group's probes included", s)
	}
}

func TestSequentialDomainNeverDivides(t *testing.T) {
	rt := quiet(4)
	seq := rt.Sequential()
	ran := 0
	if seq.Divide(func() { ran++ }) {
		t.Fatal("sequential Divide claimed a spawn")
	}
	if seq.TryDivide(func() { ran++ }) {
		t.Fatal("sequential TryDivide claimed a spawn")
	}
	seq.Join() // no-op, must not block
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Divide inline only)", ran)
	}
	// A sequential task makes no offers: division counters untouched.
	if s := rt.Stats(); s.Probes != 0 || s.InlineRuns != 0 || s.TotalWorkers != 0 {
		t.Fatalf("stats = %+v, want untouched", s)
	}
	// But the lock table is shared and counted.
	seq.Lock(7)
	seq.Unlock(7)
	if s := rt.Stats(); s.LockAcquires != 1 {
		t.Fatalf("LockAcquires = %d, want 1", s.LockAcquires)
	}
}

// TestConcurrentGroupsShareThePool runs many groups at once and checks the
// shared pool bounds all of them together.
func TestConcurrentGroupsShareThePool(t *testing.T) {
	const contexts, groups, divisions = 4, 8, 200
	rt := quiet(contexts)
	var live, peak, total atomic.Int64
	var outer sync.WaitGroup
	for i := 0; i < groups; i++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			g := rt.NewGroup()
			for j := 0; j < divisions; j++ {
				g.Divide(func() {
					cur := live.Add(1)
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
					total.Add(1)
					live.Add(-1)
				})
			}
			g.Join()
		}()
	}
	outer.Wait()
	if got := total.Load(); got != groups*divisions {
		t.Fatalf("total work = %d, want %d", got, groups*divisions)
	}
	if p := peak.Load(); p > contexts+groups {
		// Spawned workers are capped by the pool; inline runs add at most
		// one live execution per group goroutine.
		t.Fatalf("peak live executions = %d, want <= %d", p, contexts+groups)
	}
	if s := rt.Stats(); s.PeakWorkers > contexts {
		t.Fatalf("PeakWorkers = %d, want <= %d (pool bound)", s.PeakWorkers, contexts)
	}
}
