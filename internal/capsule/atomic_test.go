package capsule

// Tests for the lock-free hot path: the Treiber token stack, the atomic
// death ring (including wraparound), Close racing in-flight divisions,
// the Stats accounting invariant, and the allocation-free guarantees.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// nopFn is a static func value: the alloc tests must not be charged for a
// per-call closure.
func nopFn() {}

// TestTokenStackStorm hammers pop/push on a single-shard pool (the
// PR-3 global Treiber stack configuration) from many goroutines and then
// checks conservation: every id still present exactly once. The
// multi-shard storms live in shard_test.go.
func TestTokenStackStorm(t *testing.T) {
	const n, stormers, rounds = 8, 16, 2000
	var s shardedPool
	s.init(n, 1)
	var outer sync.WaitGroup
	for g := 0; g < stormers; g++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			for i := 0; i < rounds; i++ {
				if id, ok := s.pop(0); ok {
					if id < 0 || id >= n {
						panic("id out of range")
					}
					s.push(id, 0)
				}
			}
		}()
	}
	outer.Wait()
	if got := s.free(); got != n {
		t.Fatalf("free count = %d after storm, want %d", got, n)
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		id, ok := s.pop(0)
		if !ok {
			t.Fatalf("stack lost ids: only %d of %d poppable", i, n)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if _, ok := s.pop(0); ok {
		t.Fatal("stack gained ids")
	}
}

// TestStatsAccountingInvariant is the probe/outcome tear fix: no snapshot
// taken during a probe storm may show more probes than outcomes
// (Probes <= Granted + NoCtxDenies + ThrottleDenies), and the two sides
// must be equal once the probers quiesce.
func TestStatsAccountingInvariant(t *testing.T) {
	rt := New(Config{Contexts: 4, Throttle: true, DeathWindow: 20 * time.Microsecond})
	stop := make(chan struct{})
	var violations atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := rt.Stats()
					if s.Probes > s.Granted+s.NoCtxDenies+s.ThrottleDenies {
						violations.Add(1)
					}
				}
			}
		}()
	}
	var stormers sync.WaitGroup
	for g := 0; g < 8; g++ {
		stormers.Add(1)
		go func() {
			defer stormers.Done()
			for i := 0; i < 500; i++ {
				rt.Divide(func() {})
			}
		}()
	}
	stormers.Wait()
	close(stop)
	readers.Wait()
	rt.Join()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d snapshots showed probes without outcomes", v)
	}
	s := rt.Stats()
	if s.Probes != s.Granted+s.NoCtxDenies+s.ThrottleDenies {
		t.Fatalf("quiescent accounting broken: %+v", s)
	}
}

// TestThrottleRingWraparound drives the death ring far past its capacity
// with an injected clock: slow deaths must never trip the throttle no
// matter how often the ring wraps, and a burst must still trip it after
// the wraparound.
func TestThrottleRingWraparound(t *testing.T) {
	var clock atomic.Int64
	rt := New(Config{Contexts: 8, Throttle: true, DeathWindow: time.Microsecond, DeathThreshold: 3})
	rt.now = clock.Load
	if len(rt.ring.ts) != 4 {
		t.Fatalf("ring size = %d for threshold 3, want 4", len(rt.ring.ts))
	}
	// 11 deaths spaced 10µs apart (10x the window): the ring wraps nearly
	// three times and the throttle must never trip.
	for i := 0; i < 11; i++ {
		clock.Add(10 * time.Microsecond.Nanoseconds())
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("probe %d refused with slow deaths only (stats %+v)", i, rt.Stats())
		}
		rt.Spawn(c, func() {})
		rt.Join()
	}
	if got := rt.ring.seq.Load(); got != 11 {
		t.Fatalf("ring recorded %d deaths, want 11", got)
	}
	// A burst of 3 deaths at one instant trips the threshold. Advance the
	// clock first so the last slow death is outside the window and only
	// the burst itself counts.
	clock.Add(10 * time.Microsecond.Nanoseconds())
	for i := 0; i < 3; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("burst probe %d refused", i)
		}
		rt.Spawn(c, func() {})
		rt.Join()
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted right after a threshold burst")
	}
	if s := rt.Stats(); s.ThrottleDenies != 1 {
		t.Fatalf("ThrottleDenies = %d, want 1", s.ThrottleDenies)
	}
	// Advancing past the window drains it again.
	clock.Add(2 * time.Microsecond.Nanoseconds())
	if _, ok := rt.Probe(); !ok {
		t.Fatal("probe refused after the window expired")
	}
}

// TestCloseDuringDivideStorm races Close against in-flight Divides: every
// offer's work must still run exactly once (spawned before the close wins,
// inline after), Close must return, and the runtime must end up fully
// shut: probes refused, peeks false, pool drained.
func TestCloseDuringDivideStorm(t *testing.T) {
	const stormers, rounds = 8, 300
	rt := New(Config{Contexts: 4, Throttle: true, DeathWindow: 50 * time.Microsecond})
	var total atomic.Int64
	var outer sync.WaitGroup
	for g := 0; g < stormers; g++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			for i := 0; i < rounds; i++ {
				rt.Divide(func() { total.Add(1) })
			}
		}()
	}
	rt.Close() // races the storm's first offers
	outer.Wait()
	if got := total.Load(); got != stormers*rounds {
		t.Fatalf("work ran %d times, want %d", got, stormers*rounds)
	}
	if _, ok := rt.Probe(); ok {
		t.Fatal("probe granted after Close")
	}
	if rt.CanDivide() {
		t.Fatal("CanDivide true after Close")
	}
	if got := rt.FreeContexts(); got != 0 {
		t.Fatalf("FreeContexts = %d after Close, want 0 (drained)", got)
	}
	s := rt.Stats()
	if s.Deaths != s.TotalWorkers {
		t.Fatalf("deaths (%d) != workers (%d) after Close", s.Deaths, s.TotalWorkers)
	}
	rt.Join()  // immediate: no workers left
	rt.Close() // idempotent
}

// TestCloseWaitsForHeldToken: a token probed before Close must be allowed
// to Spawn, and Close must wait for that worker's death.
func TestCloseWaitsForHeldToken(t *testing.T) {
	rt := quiet(2)
	c, ok := rt.Probe()
	if !ok {
		t.Fatal("probe refused on a fresh runtime")
	}
	ran := make(chan struct{})
	closed := make(chan struct{})
	go func() {
		rt.Close()
		close(closed)
	}()
	// Close cannot finish while we hold the token.
	select {
	case <-closed:
		t.Fatal("Close returned while a token was still held")
	case <-time.After(10 * time.Millisecond):
	}
	rt.Spawn(c, func() { close(ran) })
	<-ran
	<-closed
	if s := rt.Stats(); s.TotalWorkers != 1 || s.Deaths != 1 {
		t.Fatalf("stats = %+v, want the held token's worker spawned and dead", s)
	}
}

// TestHotPathZeroAllocs locks in the acceptance criterion: Probe, Release
// and a refused TryDivide allocate nothing.
func TestHotPathZeroAllocs(t *testing.T) {
	rt := New(Config{Contexts: 2, Throttle: true, DeathWindow: 100 * time.Microsecond})
	defer rt.Close()
	if got := testing.AllocsPerRun(1000, func() {
		c, ok := rt.Probe()
		if !ok {
			t.Fatal("probe refused with a free pool")
		}
		rt.Release(c)
	}); got != 0 {
		t.Fatalf("Probe+Release allocs/op = %v, want 0", got)
	}

	a, _ := rt.Probe()
	b, _ := rt.Probe() // pool empty: refusal paths
	if got := testing.AllocsPerRun(1000, func() {
		if _, ok := rt.Probe(); ok {
			t.Fatal("probe granted from an empty pool")
		}
	}); got != 0 {
		t.Fatalf("refused Probe allocs/op = %v, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		if rt.TryDivide(nopFn) {
			t.Fatal("divide granted from an empty pool")
		}
	}); got != 0 {
		t.Fatalf("refused TryDivide allocs/op = %v, want 0", got)
	}
	rt.Release(a)
	rt.Release(b)
}

// TestProbeReleaseInterleavingStorm is the dedicated pool race test:
// probers that only Probe/Release (no spawns, no deaths) interleaving
// with probers that Divide, while peeks run concurrently.
func TestProbeReleaseInterleavingStorm(t *testing.T) {
	const contexts = 4
	rt := New(Config{Contexts: contexts, Throttle: true, DeathWindow: 30 * time.Microsecond})
	stop := make(chan struct{})
	var peeks sync.WaitGroup
	peeks.Add(1)
	go func() {
		defer peeks.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if n := rt.FreeContexts(); n < 0 || n > contexts {
					panic("free count out of range")
				}
				rt.CanDivide()
			}
		}
	}()
	var outer sync.WaitGroup
	for g := 0; g < 12; g++ {
		outer.Add(1)
		go func(g int) {
			defer outer.Done()
			for i := 0; i < 400; i++ {
				if g%2 == 0 {
					if c, ok := rt.Probe(); ok {
						rt.Release(c)
					}
				} else {
					rt.Divide(func() {})
				}
			}
		}(g)
	}
	outer.Wait()
	close(stop)
	peeks.Wait()
	rt.Join()
	time.Sleep(time.Millisecond) // let the 30µs death window drain
	// Pool integrity: all tokens accounted for.
	var held []*Context
	for i := 0; i < contexts; i++ {
		c, ok := rt.Probe()
		if !ok {
			t.Fatalf("pool lost tokens: %d of %d grantable (stats %+v)", i, contexts, rt.Stats())
		}
		held = append(held, c)
	}
	for _, c := range held {
		rt.Release(c)
	}
}
