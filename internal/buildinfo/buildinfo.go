// Package buildinfo resolves the binary's own identity — module
// version or VCS revision, Go toolchain, GOMAXPROCS — from
// runtime/debug.ReadBuildInfo. Every server publishes it as a
// *_build_info gauge and every capwatch report embeds it, so a fleet
// operator can see at a glance which build each backend is running
// (the first question asked when one backend's p99 diverges).
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the identity triple, embedded in capwatch reports and captop
// headers.
type Info struct {
	Version  string `json:"version"`
	Go       string `json:"go"`
	MaxProcs int    `json:"gomaxprocs"`
}

var (
	once    sync.Once
	version string
)

// Version returns the best available build identity: the VCS revision
// (short, with a -dirty suffix for modified trees) when the binary was
// built inside a checkout, else the main module's version, else
// "devel". The result is computed once; ReadBuildInfo walks the whole
// build-settings table and is too slow to sit on a metrics scrape.
func Version() string {
	once.Do(func() {
		version = "devel"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			version = rev + dirty
		}
	})
	return version
}

// GoVersion returns the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// Get assembles the full identity triple. GOMAXPROCS is read live: it
// is the one field an operator can change under a running process.
func Get() Info {
	return Info{Version: Version(), Go: GoVersion(), MaxProcs: runtime.GOMAXPROCS(0)}
}
