// Package cpu implements the cycle-level timing model of the paper's three
// machines: an aggressive superscalar, a standard SMT, and the SOMT
// (self-organised multithreading) processor — the SMT augmented with thread
// division (nthr/kthr), division throttling, a LIFO context stack for
// thread activation/deactivation, and the fast lock table (Section 3.1).
//
// The model is execute-ahead: each hardware context owns a functional
// cursor (internal/emu) that architecturally executes an instruction when
// the fetch stage consumes it; the pipeline then charges fetch bandwidth
// (ICOUNT.4.4), RUU/LSQ occupancy, functional-unit and cache-port
// contention, cache and memory latencies, branch mispredict redirects,
// division register-copy latency, swap latency and lock stalls.
package cpu

import (
	"repro/internal/bpred"
	"repro/internal/mem"
)

// Policy selects how the architecture answers nthr probes.
type Policy uint8

const (
	// PolicyGreedy is the paper's strategy: grant whenever a hardware
	// context is free, unless the death-rate throttle trips.
	PolicyGreedy Policy = iota
	// PolicyStatic emulates the profile-derived static parallelisation of
	// Section 4: grants flow until the context count saturates once, then
	// every later probe is denied (no re-division when workers die).
	PolicyStatic
	// PolicyDeny refuses every division (an SMT/superscalar running the
	// component binary takes every sequential fallback path).
	PolicyDeny
)

func (p Policy) String() string {
	switch p {
	case PolicyGreedy:
		return "greedy"
	case PolicyStatic:
		return "static"
	default:
		return "deny"
	}
}

// Config is the machine configuration. Defaults (Table 1) come from
// SOMTConfig, SMTConfig and SuperscalarConfig.
type Config struct {
	Name string

	Contexts int // hardware contexts

	// Front end.
	FetchWidth          int // total instructions fetched per cycle
	FetchThreads        int // threads fetching per cycle (ICOUNT.t.i)
	FetchPerThread      int // instructions per selected thread
	MaxFetchPerThread   int // burst cap when fewer threads are eligible
	BranchPredsPerCycle int // conditional-branch predictions per cycle
	FetchQueue          int // fetch buffer entries (double 16-inst buffer)
	// RoundRobinFetch replaces the ICOUNT thread-selection policy with
	// simple rotation (an ablation; Tullsen's "Exploiting Choice" showed
	// ICOUNT's advantage, which the paper's Table 1 machine adopts).
	RoundRobinFetch bool

	// Core.
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	IALUs       int
	IMults      int
	FPALUs      int
	FPMults     int

	Hierarchy mem.HierarchyConfig
	Predictor bpred.Config

	// CAPSULE division support.
	EnableDivision bool // SOMT when true
	DivisionPolicy Policy
	ThrottleOn     bool // death-rate division throttling
	DeathWindow    int  // cycles (paper: 128)
	RegCopyCycles  int  // child activation delay after nthr commit
	DivExtraCycles int  // CMP-extrapolation experiment knob

	// Thread activation/deactivation (context stack).
	SwapOn        bool
	StackEntries  int // LIFO inactive-context stack depth (paper: 16)
	SwapCycles    int // register copy to/from the stack (paper: 200)
	LoadAvgWindow int // loads in the rolling latency average (paper: 1000)
	SwapThreshold int // thread counter threshold (paper: 256)

	// Rescue eviction: a context continuously blocked this many cycles may
	// be swapped out in favour of a ready stacked thread, preventing
	// priority inversion between a stacked lock owner and blocked waiters.
	RescueBlockedCycles int

	MaxCycles uint64 // simulation safety net
}

// SOMTConfig returns the paper's Table 1 SOMT machine.
func SOMTConfig() Config {
	return Config{
		Name:                "somt",
		Contexts:            8,
		FetchWidth:          16,
		FetchThreads:        4,
		FetchPerThread:      4,
		MaxFetchPerThread:   8,
		BranchPredsPerCycle: 2,
		FetchQueue:          32,
		DecodeWidth:         8,
		IssueWidth:          8,
		CommitWidth:         8,
		RUUSize:             256,
		LSQSize:             128,
		IALUs:               8,
		IMults:              4,
		FPALUs:              4,
		FPMults:             4,
		Hierarchy:           mem.DefaultHierarchy(),
		Predictor:           bpred.Default(),
		EnableDivision:      true,
		DivisionPolicy:      PolicyGreedy,
		ThrottleOn:          true,
		DeathWindow:         128,
		RegCopyCycles:       8,
		SwapOn:              true,
		StackEntries:        16,
		SwapCycles:          200,
		LoadAvgWindow:       1000,
		SwapThreshold:       256,
		RescueBlockedCycles: 800,
		MaxCycles:           2_000_000_000,
	}
}

// SMTConfig returns the standard SMT: identical resources, no division
// hardware (every nthr is denied, so component binaries run their
// sequential fallbacks unless a static schedule is imposed by the policy).
func SMTConfig() Config {
	c := SOMTConfig()
	c.Name = "smt"
	c.EnableDivision = false
	c.DivisionPolicy = PolicyDeny
	return c
}

// SMTStaticConfig returns the SMT running a statically parallelised
// component program: divisions are granted until saturation, then frozen
// (the Section 4 profile-derived static version).
func SMTStaticConfig() Config {
	c := SOMTConfig()
	c.Name = "smt-static"
	c.EnableDivision = true
	c.DivisionPolicy = PolicyStatic
	c.ThrottleOn = false
	return c
}

// SuperscalarConfig returns the aggressive superscalar with the same
// resources but a single context.
func SuperscalarConfig() Config {
	c := SOMTConfig()
	c.Name = "superscalar"
	c.Contexts = 1
	c.FetchThreads = 1
	c.FetchPerThread = 8
	c.MaxFetchPerThread = 8
	c.EnableDivision = false
	c.DivisionPolicy = PolicyDeny
	c.SwapOn = false
	return c
}

// Validate sanity-checks structural parameters.
func (c Config) Validate() error {
	if c.Contexts < 1 || c.FetchWidth < 1 || c.RUUSize < 1 || c.LSQSize < 1 {
		return errConfig("non-positive core geometry")
	}
	if c.FetchThreads < 1 || c.FetchPerThread < 1 {
		return errConfig("non-positive fetch policy")
	}
	if err := c.Hierarchy.L1I.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.L1D.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.L2.Validate(); err != nil {
		return err
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "cpu: bad config: " + string(e) }

// DivisionEvent records one granted division, for Fig. 6-style trees.
type DivisionEvent struct {
	Cycle  uint64
	Parent int
	Child  int
	PC     int32
}

// Stats aggregates one run's counters.
type Stats struct {
	Cycles uint64
	Insts  uint64 // committed instructions

	DivRequested uint64
	DivGranted   uint64
	Deaths       uint64

	SwapsOut       uint64
	SwapsIn        uint64
	Rescues        uint64
	ThrottleDenies uint64
	NoCtxDenies    uint64

	LockAcquires    uint64
	LockStallCycles uint64

	MispredictedBranches uint64
	BranchStats          bpred.Stats

	L1I, L1D, L2 mem.CacheStats

	FetchedInsts    uint64
	ActiveCtxCycles uint64 // sum over cycles of contexts in active state
	PeakLiveThreads int
	TotalThreads    int
	MaxStackDepth   int
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// AvgActiveContexts returns mean occupancy.
func (s Stats) AvgActiveContexts() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ActiveCtxCycles) / float64(s.Cycles)
}

// InstsPerDivision is Table 3's "# insts / division allowed".
func (s Stats) InstsPerDivision() float64 {
	if s.DivGranted == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.DivGranted)
}

// DivGrantRate is Table 3's "% divisions allowed".
func (s Stats) DivGrantRate() float64 {
	if s.DivRequested == 0 {
		return 0
	}
	return float64(s.DivGranted) / float64(s.DivRequested)
}
