package cpu

import (
	"repro/internal/emu"
)

// The Machine implements emu.Kernel: the execute-ahead engine consults the
// hardware's division, lock-table and group state when it architecturally
// executes nthr/kthr/mlock/munlock/tcnt/join.

var _ emu.Kernel = (*Machine)(nil)

// RequestDivision implements the paper's division strategy: an nthr is
// executed if a hardware context is free and (when throttling is on) the
// number of deaths in the last DeathWindow cycles stays below half the
// context count; otherwise it is treated as a nop and the probe fails.
func (m *Machine) RequestDivision(parent *emu.Thread) (*emu.Thread, bool) {
	m.stats.DivRequested++
	if !m.cfg.EnableDivision || m.cfg.DivisionPolicy == PolicyDeny {
		return nil, false
	}
	if m.cfg.DivisionPolicy == PolicyStatic && m.staticFrozen {
		return nil, false
	}
	var free *context
	occupied := 0
	for _, c := range m.contexts {
		if c.state == ctxFree {
			if free == nil {
				free = c
			}
		} else {
			occupied++
		}
	}
	if free == nil {
		m.stats.NoCtxDenies++
		return nil, false
	}
	if m.cfg.ThrottleOn && m.deathsInWindow() >= m.cfg.Contexts/2 {
		m.stats.ThrottleDenies++
		return nil, false
	}

	child := parent.Fork(m.nextTID)
	m.nextTID++
	m.stats.TotalThreads++
	m.groups[child.Group]++
	m.stats.DivGranted++

	// Seize the context now (decode-time reservation); it activates when
	// the parent's nthr commits and the register copy completes.
	free.state = ctxStall
	free.divPending = true
	free.thread = child
	free.ras = m.ctxOfThread(parent).ras.Clone()
	free.icount = 0

	if m.cfg.DivisionPolicy == PolicyStatic && occupied+1 >= m.cfg.Contexts {
		// Saturation reached once: freeze further divisions (the static
		// schedule never rebalances).
		m.staticFrozen = true
	}
	if m.TraceDivisions {
		m.Divisions = append(m.Divisions, DivisionEvent{
			Cycle:  m.cycle,
			Parent: parent.ID,
			Child:  child.ID,
			PC:     parent.PC,
		})
	}
	return child, true
}

// ThreadExit is called when a worker architecturally executes kthr. Context
// deallocation and death accounting happen later, at the kthr's commit.
func (m *Machine) ThreadExit(t *emu.Thread) {
	m.groups[t.Group]--
}

// TryLock implements the locking table (Section 3.1, after Tullsen's
// fine-grain synchronisation): idempotent for the owner; losers are queued
// and their thread stalls.
func (m *Machine) TryLock(t *emu.Thread, addr uint64) bool {
	ls := m.locks[addr]
	if ls == nil {
		m.locks[addr] = &lockEntry{owner: t}
		m.stats.LockAcquires++
		return true
	}
	if ls.owner == t {
		return true
	}
	for _, w := range ls.waiters {
		if w == t {
			return false
		}
	}
	ls.waiters = append(ls.waiters, t)
	return false
}

// Unlock releases the lock, transferring ownership to the oldest waiter and
// waking it.
func (m *Machine) Unlock(t *emu.Thread, addr uint64) {
	ls := m.locks[addr]
	if ls == nil || ls.owner != t {
		return // releasing an unheld lock: hardware finds no entry
	}
	if len(ls.waiters) == 0 {
		delete(m.locks, addr)
		return
	}
	next := ls.waiters[0]
	ls.waiters = ls.waiters[1:]
	ls.owner = next
	m.stats.LockAcquires++
	delete(m.lockBlocked, next.ID)
	// The woken thread's context resumes fetching and will re-execute its
	// mlock, which now finds itself the owner.
	if c := m.ctxOfThread(next); c != nil {
		c.blockedSince = 0
	}
}

// GroupLive returns the live worker count of t's group.
func (m *Machine) GroupLive(t *emu.Thread) int64 { return m.groups[t.Group] }

// Halt records the architectural halt; the machine stops when it commits.
func (m *Machine) Halt(*emu.Thread) {
	// haltSeen is set by the fetch stage, which also stops fetching; the
	// actual stop happens when the halt entry retires.
}

// Print accumulates debug output with its cycle stamp.
func (m *Machine) Print(_ *emu.Thread, v int64) {
	m.Output = append(m.Output, v)
	m.OutputCycles = append(m.OutputCycles, m.cycle)
}
