package cpu

import (
	"testing"
)

// The fetch-policy ablation: round-robin must preserve architectural
// results; ICOUNT is the paper's (Table 1) policy.
func TestRoundRobinFetchCorrect(t *testing.T) {
	p := assemble(t, fanoutProgram)
	cfg := SOMTConfig()
	cfg.RoundRobinFetch = true
	m := runOn(t, p, cfg)
	if len(m.Output) != 1 || m.Output[0] != 12 {
		t.Fatalf("round-robin output = %v", m.Output)
	}
}

func TestFetchPoliciesBothRunMixedLoad(t *testing.T) {
	// A mixed workload: one memory-bound worker (pointer-ish strides) and
	// compute-bound siblings. Both policies must complete and agree on
	// results; their cycle counts differ (reported for inspection).
	src := `
.data
acc:
	.word 0
.text
main:
	li s0, 3
spawn:
	nthr t0
	li t1, -1
	beq t0, t1, next
	bnez t0, child
	j next
child:
	li t2, 300
	li t3, 0x500000
cloop:
	ld t4, 0(t3)
	addi t3, t3, 256
	addi t2, t2, -1
	bnez t2, cloop
	la t5, acc
	mlock t5
	ld t6, 0(t5)
	addi t6, t6, 1
	sd t6, 0(t5)
	munlock t5
	kthr
next:
	addi s0, s0, -1
	bnez s0, spawn
	li s1, 2000
mloop:
	addi s1, s1, -1
	bnez s1, mloop
	join
	la a0, acc
	ld a1, 0(a0)
	print a1
	halt
`
	p := assemble(t, src)
	ic := SOMTConfig()
	rr := SOMTConfig()
	rr.RoundRobinFetch = true
	m1 := runOn(t, p, ic)
	m2 := runOn(t, p, rr)
	if m1.Output[0] != m2.Output[0] {
		t.Fatalf("policies disagree: %v vs %v", m1.Output, m2.Output)
	}
	t.Logf("icount: %d cycles; round-robin: %d cycles", m1.Stats().Cycles, m2.Stats().Cycles)
}
