package cpu

import (
	"fmt"
	"sort"

	"repro/internal/bpred"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// ctxState is a hardware context's state (Section 3.1: free, active, stall).
type ctxState uint8

const (
	ctxFree ctxState = iota
	ctxActive
	ctxStall
)

// context is one hardware thread context.
type context struct {
	id     int
	state  ctxState
	thread *emu.Thread
	ras    *bpred.RAS

	icount int // in-flight instructions (fetch queue + RUU), drives ICOUNT

	// Fetch blockers.
	fetchBlockedUntil uint64    // I-cache miss / register copy / swap-in
	blockedOnBranch   *ruuEntry // mispredict: resolve before refetch
	joinWaiting       bool      // stalled on join
	blockedSince      uint64    // first cycle of the current lock/join block

	// Lifecycle.
	dying      bool // kthr fetched; context frees when it commits
	divPending bool // seized by an in-flight nthr, activates at its commit
	evicting   bool // swap-out in progress (drain, then copy out)
	evictAt    uint64

	// Swap policy state.
	loadCounter int

	// In-order list of this context's in-flight entries (commit order).
	entries []*ruuEntry
}

// ruuEntry is one in-flight instruction in the register update unit.
type ruuEntry struct {
	seq  uint64
	ctx  *context
	info emu.StepInfo

	deps       int // outstanding register producers
	dependents []*ruuEntry

	inRUU     bool // dispatched (occupies an RUU slot; LSQ too if memory op)
	issued    bool
	completed bool
	latCycles int
	readyAt   uint64 // completion (writeback) cycle once issued

	isLoad, isStore bool
	mispredicted    bool

	// Division bookkeeping: the context seized for the child.
	childCtx *context
}

// stackEntry is a swapped-out thread on the LIFO context stack.
type stackEntry struct {
	thread  *emu.Thread
	ras     *bpred.RAS
	readyAt uint64 // approximate resolution of the miss that evicted it
}

type lockEntry struct {
	owner   *emu.Thread
	waiters []*emu.Thread // FIFO; head is the paper's "oldest stalled"
}

// Machine is the timing simulator.
type Machine struct {
	cfg  Config
	p    *prog.Program
	mem  *mem.Memory
	hier *mem.Hierarchy
	pred *bpred.Predictor

	cycle uint64
	seq   uint64

	contexts []*context
	stack    []stackEntry // LIFO

	fetchQ []*ruuEntry // fetched, awaiting dispatch (in fetch order)

	ruuCount int
	lsqCount int

	locks       map[uint64]*lockEntry
	lockBlocked map[int]bool // thread id -> blocked in the locking table

	groups map[int]int64

	nextTID int

	// Division policy state.
	deathTimes   []uint64 // recent death cycles (ring with amortised trim)
	deathHead    int
	staticFrozen bool

	// Load latency rolling average (paper: last 1000 loads).
	loadLatWindow []int
	loadLatHead   int
	loadLatSum    int64

	halted   bool
	haltSeen bool

	// Output accumulates print-instruction values; OutputCycles records the
	// cycle each value was produced (used for section timing markers).
	Output       []int64
	OutputCycles []uint64
	stats        Stats

	// TraceDivisions, when set before Run, records every granted division
	// in Divisions (Fig. 6 trees).
	TraceDivisions bool
	Divisions      []DivisionEvent

	issueBuf []*ruuEntry // scratch for the issue stage
}

// New builds a machine for program p with the ancestor thread on context 0.
func New(p *prog.Program, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:         cfg,
		p:           p,
		mem:         mem.NewMemory(),
		hier:        mem.NewHierarchy(cfg.Hierarchy),
		pred:        bpred.New(cfg.Predictor),
		locks:       make(map[uint64]*lockEntry),
		lockBlocked: make(map[int]bool),
		groups:      make(map[int]int64),
	}
	m.mem.StoreBytes(prog.DataBase, p.Data)
	m.contexts = make([]*context, cfg.Contexts)
	for i := range m.contexts {
		m.contexts[i] = &context{id: i, state: ctxFree, ras: bpred.NewRAS(cfg.Predictor.RASDepth)}
	}
	t := &emu.Thread{ID: 0, Group: 0, PC: p.Entry}
	t.Regs[isa.RegSP] = int64(prog.MainStackTop)
	m.nextTID = 1
	m.groups[0] = 1
	c0 := m.contexts[0]
	c0.state = ctxActive
	c0.thread = t
	m.stats.TotalThreads = 1
	m.stats.PeakLiveThreads = 1
	return m, nil
}

// Memory exposes the simulated memory (for loading inputs and reading
// results).
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Program returns the loaded program.
func (m *Machine) Program() *prog.Program { return m.p }

// Stats returns the counters (final after Run returns).
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Cycles = m.cycle
	s.BranchStats = m.pred.Stats()
	s.L1I, s.L1D, s.L2 = m.hier.Stats()
	return s
}

// Cycle returns the current cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Halted reports whether the program's halt committed.
func (m *Machine) Halted() bool { return m.halted }

// Run simulates until the program halts. It returns an error on deadlock,
// runaway simulation, or functional faults.
func (m *Machine) Run() error {
	lastCommit := uint64(0)
	lastInsts := uint64(0)
	horizon := m.deadlockHorizon()
	for !m.halted {
		if err := m.Step(); err != nil {
			return err
		}
		if m.stats.Insts != lastInsts {
			lastInsts = m.stats.Insts
			lastCommit = m.cycle
		} else if m.cycle-lastCommit > horizon {
			return fmt.Errorf("cpu: no commit progress for %d cycles at cycle %d (%s)",
				m.cycle-lastCommit, m.cycle, m.describeBlockage())
		}
		if m.cycle > m.cfg.MaxCycles {
			return fmt.Errorf("cpu: exceeded MaxCycles=%d", m.cfg.MaxCycles)
		}
	}
	m.drain()
	return nil
}

// drain lets in-flight work of other workers retire after halt committed
// (fetch stays disabled), so commit-time accounting — deaths, context
// deallocation — is complete. Work that cannot finish (e.g. a worker
// blocked on a lock whose owner halted) is abandoned after a bound.
func (m *Machine) drain() {
	bound := m.cycle + m.deadlockHorizon()
	for m.cycle < bound {
		busy := false
		for _, c := range m.contexts {
			if len(c.entries) > 0 {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		if err := m.Step(); err != nil {
			return
		}
	}
}

func (m *Machine) deadlockHorizon() uint64 {
	h := uint64(8*m.cfg.SwapCycles + 8*m.cfg.Hierarchy.MemoryCycles + 2*m.cfg.RescueBlockedCycles)
	if h < 50000 {
		h = 50000
	}
	return h
}

func (m *Machine) describeBlockage() string {
	s := ""
	for _, c := range m.contexts {
		if c.state == ctxFree {
			continue
		}
		why := "?"
		switch {
		case c.thread != nil && m.lockBlocked[c.thread.ID]:
			why = "lock"
		case c.joinWaiting:
			why = "join"
		case c.blockedOnBranch != nil:
			why = "branch"
		case c.fetchBlockedUntil > m.cycle:
			why = "latency"
		case c.dying:
			why = "dying"
		case c.evicting:
			why = "evicting"
		case c.divPending:
			why = "divpending"
		}
		pc := int32(-1)
		tid := -1
		if c.thread != nil {
			pc = c.thread.PC
			tid = c.thread.ID
		}
		s += fmt.Sprintf("[ctx%d t%d pc=%d inflight=%d %s] ", c.id, tid, pc, len(c.entries), why)
	}
	s += fmt.Sprintf("stack=%d fetchQ=%d", len(m.stack), len(m.fetchQ))
	return s
}

// Step advances one cycle: commit -> complete -> issue -> dispatch ->
// fetch -> housekeeping (reverse pipeline order).
func (m *Machine) Step() error {
	m.commit()
	m.complete()
	m.issue()
	m.dispatch()
	if err := m.fetch(); err != nil {
		return err
	}
	m.houseKeeping()
	for _, c := range m.contexts {
		if c.state == ctxActive {
			m.stats.ActiveCtxCycles++
			if c.thread != nil && m.lockBlocked[c.thread.ID] {
				m.stats.LockStallCycles++
			}
		}
	}
	m.cycle++
	return nil
}

// ---------------------------------------------------------------- commit --

func (m *Machine) commit() {
	width := m.cfg.CommitWidth
	storePorts := m.hier.DataPorts()
	for width > 0 {
		var oldest *ruuEntry
		for _, c := range m.contexts {
			if len(c.entries) == 0 {
				continue
			}
			e := c.entries[0]
			if !e.completed {
				continue
			}
			if oldest == nil || e.seq < oldest.seq {
				oldest = e
			}
		}
		if oldest == nil {
			return
		}
		if oldest.isStore {
			if storePorts == 0 {
				return
			}
			storePorts--
			// Write-allocate: a store miss occupies the remaining store
			// bandwidth this cycle (the line fill competes for ports), a
			// coarse model of miss-status-register pressure.
			if lat := m.hier.DataLatency(oldest.info.MemAddr); lat > m.cfg.Hierarchy.L1D.HitCycles {
				storePorts = 0
			}
		}
		m.retire(oldest)
		width--
	}
}

// retire removes e from the machine and applies commit-time side effects.
func (m *Machine) retire(e *ruuEntry) {
	c := e.ctx
	c.entries = c.entries[1:]
	c.icount--
	m.ruuCount--
	if e.isLoad || e.isStore {
		m.lsqCount--
	}
	m.stats.Insts++

	switch e.info.Inst.Op {
	case isa.OpNthr:
		if e.childCtx != nil {
			// Register copy at commit (Section 3.1): the parent stalls one
			// cycle; the child activates once its registers are written.
			delay := uint64(m.cfg.RegCopyCycles + m.cfg.DivExtraCycles)
			cc := e.childCtx
			cc.divPending = false
			cc.state = ctxActive
			cc.fetchBlockedUntil = m.cycle + 1 + delay
			if c.fetchBlockedUntil < m.cycle+1 {
				c.fetchBlockedUntil = m.cycle + 1
			}
		}
	case isa.OpKthr:
		m.recordDeath()
		m.freeContext(c)
	case isa.OpHalt:
		m.halted = true
	}
}

// freeContext releases c after kthr or eviction and considers a swap-in.
func (m *Machine) freeContext(c *context) {
	c.state = ctxFree
	c.thread = nil
	c.dying = false
	c.evicting = false
	c.evictAt = 0
	c.joinWaiting = false
	c.blockedOnBranch = nil
	c.blockedSince = 0
	c.loadCounter = 0
	c.fetchBlockedUntil = 0
	c.ras.Reset()
	m.trySwapIn(c)
}

// trySwapIn pops the LIFO stack into a free context once the top thread's
// eviction-causing miss has resolved.
func (m *Machine) trySwapIn(c *context) {
	if !m.cfg.SwapOn || len(m.stack) == 0 || c.state != ctxFree {
		return
	}
	top := m.stack[len(m.stack)-1]
	if top.readyAt > m.cycle {
		return
	}
	m.stack = m.stack[:len(m.stack)-1]
	c.state = ctxActive
	c.thread = top.thread
	c.ras = top.ras
	c.fetchBlockedUntil = m.cycle + uint64(m.cfg.SwapCycles)
	m.stats.SwapsIn++
}

func (m *Machine) recordDeath() {
	m.stats.Deaths++
	m.deathTimes = append(m.deathTimes, m.cycle)
	w := uint64(m.cfg.DeathWindow)
	for m.deathHead < len(m.deathTimes) && m.deathTimes[m.deathHead]+w < m.cycle {
		m.deathHead++
	}
	if m.deathHead > 1024 {
		m.deathTimes = append([]uint64(nil), m.deathTimes[m.deathHead:]...)
		m.deathHead = 0
	}
}

func (m *Machine) deathsInWindow() int {
	w := uint64(m.cfg.DeathWindow)
	n := 0
	for i := len(m.deathTimes) - 1; i >= m.deathHead; i-- {
		if m.deathTimes[i]+w >= m.cycle {
			n++
		} else {
			break
		}
	}
	return n
}

// -------------------------------------------------------------- complete --

// complete moves issued entries whose latency elapsed to the completed
// state, wakes dependents, and resolves mispredicted control flow.
func (m *Machine) complete() {
	for _, c := range m.contexts {
		for _, e := range c.entries {
			if !e.issued || e.completed || e.readyAt > m.cycle {
				continue
			}
			e.completed = true
			for _, d := range e.dependents {
				d.deps--
			}
			e.dependents = nil
			if e.mispredicted && c.blockedOnBranch == e {
				c.blockedOnBranch = nil
				if c.fetchBlockedUntil < m.cycle+1 {
					c.fetchBlockedUntil = m.cycle + 1
				}
			}
			if e.isLoad {
				m.noteLoadLatency(c, e.latCycles)
			}
		}
	}
}

// ----------------------------------------------------------------- issue --

func (m *Machine) issue() {
	cand := m.issueBuf[:0]
	for _, c := range m.contexts {
		for _, e := range c.entries {
			if e.inRUU && !e.issued && e.deps == 0 {
				cand = append(cand, e)
			}
		}
	}
	m.issueBuf = cand[:0]
	if len(cand) == 0 {
		return
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].seq < cand[j].seq })

	width := m.cfg.IssueWidth
	ialu := m.cfg.IALUs
	imult := m.cfg.IMults
	fpalu := m.cfg.FPALUs
	fpmult := m.cfg.FPMults
	ports := m.hier.DataPorts()

	for _, e := range cand {
		if width == 0 {
			break
		}
		lat := e.info.Inst.Op.Latency()
		switch e.info.Inst.Op.Class() {
		case isa.ClassIALU, isa.ClassCtrl, isa.ClassSys:
			if ialu == 0 {
				continue
			}
			ialu--
		case isa.ClassIMult:
			if imult == 0 {
				continue
			}
			imult--
		case isa.ClassFPALU:
			if fpalu == 0 {
				continue
			}
			fpalu--
		case isa.ClassFPMult:
			if fpmult == 0 {
				continue
			}
			fpmult--
		case isa.ClassMem:
			if e.isLoad {
				if ports == 0 {
					continue
				}
				ports--
				if m.olderStoreSameAddr(e) {
					lat = 1 // store-to-load forwarding from the LSQ
				} else {
					lat = m.hier.DataLatency(e.info.MemAddr)
				}
			} else {
				lat = 1 // stores complete into the store buffer
			}
		}
		e.issued = true
		e.latCycles = lat
		e.readyAt = m.cycle + uint64(lat)
		width--
	}
}

// olderStoreSameAddr reports whether an older in-flight store of the same
// context targets the same word (the value forwards from the store buffer).
func (m *Machine) olderStoreSameAddr(load *ruuEntry) bool {
	for _, e := range load.ctx.entries {
		if e.seq >= load.seq {
			return false
		}
		if e.isStore && e.info.MemAddr>>3 == load.info.MemAddr>>3 {
			return true
		}
	}
	return false
}

func (m *Machine) noteLoadLatency(c *context, lat int) {
	if !m.cfg.SwapOn || m.cfg.LoadAvgWindow <= 0 {
		return
	}
	if len(m.loadLatWindow) < m.cfg.LoadAvgWindow {
		m.loadLatWindow = append(m.loadLatWindow, lat)
		m.loadLatSum += int64(lat)
	} else {
		m.loadLatSum += int64(lat) - int64(m.loadLatWindow[m.loadLatHead])
		m.loadLatWindow[m.loadLatHead] = lat
		m.loadLatHead = (m.loadLatHead + 1) % m.cfg.LoadAvgWindow
	}
	avg := float64(m.loadLatSum) / float64(len(m.loadLatWindow))
	if float64(lat) > avg {
		c.loadCounter++
	} else if c.loadCounter > 0 {
		c.loadCounter--
	}
	if c.loadCounter >= m.cfg.SwapThreshold {
		m.maybeEvict(c)
	}
}

// maybeEvict swaps c out when no hardware context is free (the paper's
// condition) and the stack has room.
func (m *Machine) maybeEvict(c *context) {
	if !m.cfg.SwapOn || c.evicting || c.dying || c.state == ctxFree {
		return
	}
	if len(m.stack) >= m.cfg.StackEntries {
		return
	}
	for _, o := range m.contexts {
		if o.state == ctxFree {
			return // a free context exists; no need to evict
		}
	}
	c.evicting = true
	c.state = ctxStall
	c.loadCounter = 0
}

// -------------------------------------------------------------- dispatch --

func (m *Machine) dispatch() {
	width := m.cfg.DecodeWidth
	for width > 0 && len(m.fetchQ) > 0 {
		e := m.fetchQ[0]
		if m.ruuCount >= m.cfg.RUUSize {
			return
		}
		if (e.isLoad || e.isStore) && m.lsqCount >= m.cfg.LSQSize {
			return
		}
		m.fetchQ = m.fetchQ[1:]
		m.ruuCount++
		if e.isLoad || e.isStore {
			m.lsqCount++
		}
		e.inRUU = true
		width--
	}
}

// ----------------------------------------------------------------- fetch --

// canFetch reports whether c may fetch this cycle.
func (m *Machine) canFetch(c *context) bool {
	if c.state != ctxActive || c.thread == nil || c.dying || c.evicting {
		return false
	}
	if c.fetchBlockedUntil > m.cycle || c.blockedOnBranch != nil {
		return false
	}
	if m.lockBlocked[c.thread.ID] {
		return false
	}
	if c.joinWaiting {
		if m.groups[c.thread.Group] > 1 {
			return false
		}
		c.joinWaiting = false
		c.blockedSince = 0
	}
	return true
}

func (m *Machine) fetch() error {
	if m.haltSeen {
		return nil
	}
	var eligible []*context
	for _, c := range m.contexts {
		if m.canFetch(c) {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	if m.cfg.RoundRobinFetch {
		// Rotate the starting context by cycle (the ablation baseline).
		rot := int(m.cycle) % len(eligible)
		eligible = append(eligible[rot:], eligible[:rot]...)
	} else {
		// ICOUNT: prefer contexts with the fewest in-flight instructions.
		for i := 1; i < len(eligible); i++ {
			for j := i; j > 0 && eligible[j].icount < eligible[j-1].icount; j-- {
				eligible[j], eligible[j-1] = eligible[j-1], eligible[j]
			}
		}
	}
	nsel := m.cfg.FetchThreads
	if nsel > len(eligible) {
		nsel = len(eligible)
	}
	perThread := m.cfg.FetchPerThread
	if nsel < m.cfg.FetchThreads {
		perThread = m.cfg.MaxFetchPerThread
	}
	budget := m.cfg.FetchWidth
	preds := m.cfg.BranchPredsPerCycle

	for _, c := range eligible[:nsel] {
		if budget <= 0 {
			break
		}
		n, err := m.fetchThread(c, min(perThread, budget), &preds)
		if err != nil {
			return err
		}
		budget -= n
	}
	return nil
}

// fetchThread fetches up to maxN instructions for c, returning the count.
func (m *Machine) fetchThread(c *context, maxN int, preds *int) (int, error) {
	t := c.thread
	// One I-cache access per fetch block.
	lat := m.hier.InstLatency(prog.PCByteAddr(t.PC))
	if lat > m.cfg.Hierarchy.L1I.HitCycles {
		c.fetchBlockedUntil = m.cycle + uint64(lat)
		return 0, nil
	}
	// Fetch stops at the cache line boundary (8 instructions per line).
	lineEnd := (int(t.PC)/8 + 1) * 8
	fetched := 0
	for fetched < maxN && int(t.PC) < lineEnd {
		if len(m.fetchQ) >= m.cfg.FetchQueue {
			break
		}
		if int(t.PC) >= len(m.p.Insts) {
			return fetched, emu.ErrPC{Thread: t.ID, PC: t.PC}
		}
		nextOp := m.p.Insts[t.PC].Op
		if nextOp.IsBranch() && *preds == 0 {
			break // out of branch-prediction bandwidth this cycle
		}

		info, st, err := emu.Step(m.p, m.mem, m, t)
		if err != nil {
			return fetched, err
		}
		if st == emu.StatusBlocked {
			switch info.Inst.Op {
			case isa.OpMlock:
				m.lockBlocked[t.ID] = true
			case isa.OpJoin:
				c.joinWaiting = true
			}
			if c.blockedSince == 0 {
				c.blockedSince = m.cycle
			}
			break
		}

		e := &ruuEntry{seq: m.seq, ctx: c, info: info}
		m.seq++
		e.isLoad = info.Inst.Op.IsLoad()
		e.isStore = info.Inst.Op.IsStore()
		m.resolveDeps(c, e)
		c.entries = append(c.entries, e)
		m.fetchQ = append(m.fetchQ, e)
		c.icount++
		m.stats.FetchedInsts++
		fetched++

		redirect := false
		switch {
		case info.Inst.Op.IsBranch():
			*preds--
			correct := m.pred.Update(prog.PCByteAddr(info.PC), info.Taken)
			if !correct {
				e.mispredicted = true
				c.blockedOnBranch = e
				m.stats.MispredictedBranches++
				return fetched, nil
			}
			redirect = info.Taken
		case info.Inst.Op == isa.OpJal:
			c.ras.Push(uint64(info.PC + 1))
			redirect = true
		case info.Inst.Op == isa.OpJalr:
			predTarget, ok := c.ras.Pop()
			if !ok || predTarget != uint64(info.NextPC) {
				e.mispredicted = true
				c.blockedOnBranch = e
				m.stats.MispredictedBranches++
				return fetched, nil
			}
			redirect = true
		case info.Inst.Op == isa.OpJ:
			redirect = true
		}

		switch st {
		case emu.StatusDead:
			// kthr: active -> stall; the context frees when it commits.
			c.dying = true
			c.state = ctxStall
			return fetched, nil
		case emu.StatusHalt:
			m.haltSeen = true
			return fetched, nil
		}
		if info.DivGranted {
			e.childCtx = m.ctxOfThread(info.Child)
		}
		if redirect {
			// Taken control flow ends the fetch block; the thread resumes
			// at the target next cycle.
			break
		}
	}
	return fetched, nil
}

// resolveDeps wires register dependences: the youngest in-flight producer
// of each source feeds e.
func (m *Machine) resolveDeps(c *context, e *ruuEntry) {
	var buf [4]isa.RegRef
	for _, s := range e.info.Inst.Sources(buf[:0]) {
		if p := m.lastProducer(c, s); p != nil && !p.completed {
			p.dependents = append(p.dependents, e)
			e.deps++
		}
	}
}

// lastProducer scans c's in-flight entries youngest-first for a writer of r.
func (m *Machine) lastProducer(c *context, r isa.RegRef) *ruuEntry {
	for i := len(c.entries) - 1; i >= 0; i-- {
		e := c.entries[i]
		if d, ok := e.info.Inst.Dest(); ok && d == r {
			return e
		}
	}
	return nil
}

func (m *Machine) ctxOfThread(t *emu.Thread) *context {
	for _, c := range m.contexts {
		if c.thread == t {
			return c
		}
	}
	return nil
}

// ---------------------------------------------------------- housekeeping --

func (m *Machine) houseKeeping() {
	// Complete evictions whose pipelines drained.
	for _, c := range m.contexts {
		if c.evicting && len(c.entries) == 0 {
			if c.evictAt == 0 {
				c.evictAt = m.cycle + uint64(m.cfg.SwapCycles)
				continue
			}
			if m.cycle >= c.evictAt {
				m.stack = append(m.stack, stackEntry{
					thread:  c.thread,
					ras:     c.ras.Clone(),
					readyAt: m.cycle + uint64(m.cfg.Hierarchy.MemoryCycles),
				})
				if len(m.stack) > m.stats.MaxStackDepth {
					m.stats.MaxStackDepth = len(m.stack)
				}
				m.stats.SwapsOut++
				m.freeContext(c)
			}
		}
	}
	// Swap-in into free contexts whose stack top became ready.
	for _, c := range m.contexts {
		if c.state == ctxFree {
			m.trySwapIn(c)
		}
	}
	// Rescue: a context blocked on a lock/join for a long time yields to a
	// ready stacked thread (prevents priority inversion when the lock
	// owner itself sits on the stack).
	if m.cfg.SwapOn && len(m.stack) > 0 && len(m.stack) < m.cfg.StackEntries && m.cfg.RescueBlockedCycles > 0 {
		top := m.stack[len(m.stack)-1]
		if top.readyAt <= m.cycle {
			for _, c := range m.contexts {
				if c.state == ctxActive && c.thread != nil &&
					(m.lockBlocked[c.thread.ID] || c.joinWaiting) &&
					len(c.entries) == 0 && !c.evicting && !c.dying &&
					c.blockedSince > 0 && m.cycle-c.blockedSince > uint64(m.cfg.RescueBlockedCycles) {
					c.evicting = true
					c.state = ctxStall
					m.stats.Rescues++
					break
				}
			}
		}
	}
	// Track peak liveness.
	live := len(m.stack)
	for _, c := range m.contexts {
		if c.state != ctxFree && c.thread != nil {
			live++
		}
	}
	if live > m.stats.PeakLiveThreads {
		m.stats.PeakLiveThreads = live
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
