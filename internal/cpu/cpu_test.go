package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/prog"
)

func assemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(asm.Unit{Name: "t.s", Text: src})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func runOn(t *testing.T, p *prog.Program, cfg Config) *Machine {
	t.Helper()
	m, err := New(p, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run (%s): %v", cfg.Name, err)
	}
	return m
}

const sumLoop = `
main:
	li a0, 0
	li a1, 1
	li a2, 1000
loop:
	add a0, a0, a1
	addi a1, a1, 1
	ble a1, a2, loop
	print a0
	halt
`

func TestSuperscalarRunsSequentialCode(t *testing.T) {
	p := assemble(t, sumLoop)
	m := runOn(t, p, SuperscalarConfig())
	if len(m.Output) != 1 || m.Output[0] != 500500 {
		t.Fatalf("output = %v", m.Output)
	}
	s := m.Stats()
	if s.Cycles == 0 || s.Insts == 0 {
		t.Fatal("no cycles/insts recorded")
	}
	// ~3 insts per iteration with a predictable branch on a superscalar:
	// IPC should be well above 0.5 and cycles far below insts*10.
	if s.IPC() < 0.5 {
		t.Fatalf("suspiciously low IPC %.3f (cycles=%d insts=%d)", s.IPC(), s.Cycles, s.Insts)
	}
}

func TestConfigValidation(t *testing.T) {
	p := assemble(t, "main:\n\thalt\n")
	bad := SOMTConfig()
	bad.Contexts = 0
	if _, err := New(p, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

// divisionProgram divides once, both workers bump a locked counter, the
// parent joins and prints.
const divisionProgram = `
.data
counter:
	.word 0
.text
main:
	nthr t0
	li t1, -1
	beq t0, t1, seq
	bnez t0, child
	jal ra, bump
	join
	j report
child:
	jal ra, bump
	kthr
seq:
	jal ra, bump
	jal ra, bump
report:
	la a0, counter
	ld a1, 0(a0)
	print a1
	halt
bump:
	la t2, counter
	mlock t2
	ld t3, 0(t2)
	addi t3, t3, 1
	sd t3, 0(t2)
	munlock t2
	ret
`

func TestSOMTDivision(t *testing.T) {
	p := assemble(t, divisionProgram)
	m := runOn(t, p, SOMTConfig())
	if len(m.Output) != 1 || m.Output[0] != 2 {
		t.Fatalf("output = %v", m.Output)
	}
	s := m.Stats()
	if s.DivRequested != 1 || s.DivGranted != 1 {
		t.Fatalf("div stats: %+v", s)
	}
	if s.Deaths != 1 {
		t.Fatalf("deaths = %d", s.Deaths)
	}
}

func TestSMTDeniesDivision(t *testing.T) {
	p := assemble(t, divisionProgram)
	m := runOn(t, p, SMTConfig())
	if len(m.Output) != 1 || m.Output[0] != 2 {
		t.Fatalf("sequential fallback output = %v", m.Output)
	}
	s := m.Stats()
	if s.DivGranted != 0 || s.DivRequested != 1 {
		t.Fatalf("div stats: %+v", s)
	}
}

func TestSuperscalarSingleContextDeniesDivision(t *testing.T) {
	p := assemble(t, divisionProgram)
	m := runOn(t, p, SuperscalarConfig())
	if m.Output[0] != 2 {
		t.Fatalf("output = %v", m.Output)
	}
}

// fanout builds a wide group: main spawns children in a loop; each child
// spins then dies; main joins.
const fanoutProgram = `
.data
acc:
	.word 0
.text
main:
	li s0, 12          # spawn attempts
spawnloop:
	nthr t0
	li t1, -1
	beq t0, t1, nospawn
	bnez t0, child
	j next             # parent continues
child:
	li t2, 40          # busy work
spin:
	addi t2, t2, -1
	bnez t2, spin
	la t3, acc
	mlock t3
	ld t4, 0(t3)
	addi t4, t4, 1
	sd t4, 0(t3)
	munlock t3
	kthr
nospawn:
	la t3, acc
	mlock t3
	ld t4, 0(t3)
	addi t4, t4, 1
	sd t4, 0(t3)
	munlock t3
next:
	addi s0, s0, -1
	bnez s0, spawnloop
	join
	la a0, acc
	ld a1, 0(a0)
	print a1
	halt
`

func TestFanoutAllWorkersCounted(t *testing.T) {
	p := assemble(t, fanoutProgram)
	m := runOn(t, p, SOMTConfig())
	if len(m.Output) != 1 || m.Output[0] != 12 {
		t.Fatalf("output = %v", m.Output)
	}
	s := m.Stats()
	if s.DivGranted == 0 {
		t.Fatal("expected divisions on SOMT")
	}
	if s.DivGranted != s.Deaths {
		t.Fatalf("granted=%d deaths=%d should match", s.DivGranted, s.Deaths)
	}
	if s.PeakLiveThreads < 2 {
		t.Fatalf("peak live = %d", s.PeakLiveThreads)
	}
}

// TestGoldenModelEquivalence: the timing machine must produce the same
// architectural output as the functional machine for the same program.
func TestGoldenModelEquivalence(t *testing.T) {
	programs := []string{sumLoop, divisionProgram, fanoutProgram}
	for i, src := range programs {
		p := assemble(t, src)
		fm := emu.NewMachine(p, 8)
		if err := fm.Run(10_000_000); err != nil {
			t.Fatalf("prog %d functional: %v", i, err)
		}
		tm := runOn(t, p, SOMTConfig())
		if len(fm.Output) != len(tm.Output) {
			t.Fatalf("prog %d output lengths differ: functional %v vs timing %v", i, fm.Output, tm.Output)
		}
		for j := range fm.Output {
			if fm.Output[j] != tm.Output[j] {
				t.Fatalf("prog %d output[%d]: functional %d vs timing %d", i, j, fm.Output[j], tm.Output[j])
			}
		}
	}
}

func TestDivisionTrace(t *testing.T) {
	p := assemble(t, fanoutProgram)
	m, err := New(p, SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.TraceDivisions = true
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Divisions) == 0 {
		t.Fatal("no division events traced")
	}
	for _, d := range m.Divisions {
		if d.Child == d.Parent || d.Child == 0 {
			t.Fatalf("bad division event %+v", d)
		}
	}
	if uint64(len(m.Divisions)) != m.Stats().DivGranted {
		t.Fatalf("trace length %d != granted %d", len(m.Divisions), m.Stats().DivGranted)
	}
}

func TestThrottleDeniesRapidDeaths(t *testing.T) {
	// Tiny workers that die almost immediately: with throttling on, the
	// death window should deny a chunk of divisions.
	src := `
main:
	li s0, 200
loop:
	nthr t0
	li t1, -1
	beq t0, t1, next
	bnez t0, child
	j next
child:
	kthr
next:
	addi s0, s0, -1
	bnez s0, loop
	join
	halt
`
	p := assemble(t, src)
	on := SOMTConfig()
	m1 := runOn(t, p, on)
	off := SOMTConfig()
	off.ThrottleOn = false
	m2 := runOn(t, p, off)
	s1, s2 := m1.Stats(), m2.Stats()
	if s1.ThrottleDenies == 0 {
		t.Fatalf("expected throttle denies, got %+v", s1)
	}
	if s2.ThrottleDenies != 0 {
		t.Fatalf("throttle off must not deny: %+v", s2)
	}
	if s1.DivGranted >= s2.DivGranted {
		t.Fatalf("throttle should reduce grants: on=%d off=%d", s1.DivGranted, s2.DivGranted)
	}
}

func TestStaticPolicyFreezesAfterSaturation(t *testing.T) {
	p := assemble(t, fanoutProgram)
	cfg := SMTStaticConfig()
	m := runOn(t, p, cfg)
	if m.Output[0] != 12 {
		t.Fatalf("output = %v", m.Output)
	}
	s := m.Stats()
	// At most Contexts-1 grants (saturation) and then frozen.
	if s.DivGranted == 0 || s.DivGranted > uint64(cfg.Contexts) {
		t.Fatalf("static grants = %d", s.DivGranted)
	}
}

func TestLockContentionSerialises(t *testing.T) {
	// Two workers hammer the same locked counter; the total must be exact
	// (no lost updates), and lock stalls must be observed.
	src := `
.data
acc:
	.word 0
.text
main:
	nthr t0
	li t1, -1
	beq t0, t1, seq
	bnez t0, child
	jal ra, work
	join
	j report
child:
	jal ra, work
	kthr
seq:
	jal ra, work
	jal ra, work
report:
	la a0, acc
	ld a1, 0(a0)
	print a1
	halt
work:
	li s1, 100
	la s2, acc
wloop:
	mlock s2
	ld t3, 0(s2)
	addi t3, t3, 1
	sd t3, 0(s2)
	munlock s2
	addi s1, s1, -1
	bnez s1, wloop
	ret
`
	p := assemble(t, src)
	m := runOn(t, p, SOMTConfig())
	if m.Output[0] != 200 {
		t.Fatalf("acc = %v", m.Output)
	}
	s := m.Stats()
	if s.LockAcquires == 0 {
		t.Fatal("no lock acquires recorded")
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// A data-dependent unpredictable branch stream vs a fixed one: the
	// unpredictable version must take more cycles for the same inst count.
	predictable := `
main:
	li s0, 3000
	li s1, 0
loop:
	addi s0, s0, -1
	addi s1, s1, 1
	bnez s0, loop
	print s1
	halt
`
	// xorshift-ish branch direction flips pseudo-randomly.
	unpredictable := `
main:
	li s0, 3000
	li s1, 12345
	li s3, 0
loop:
	slli t0, s1, 13
	xor s1, s1, t0
	srli t0, s1, 7
	xor s1, s1, t0
	slli t0, s1, 17
	xor s1, s1, t0
	andi t1, s1, 1
	beqz t1, skip
	addi s3, s3, 1
skip:
	addi s0, s0, -1
	bnez s0, loop
	print s3
	halt
`
	p1 := assemble(t, predictable)
	p2 := assemble(t, unpredictable)
	m1 := runOn(t, p1, SuperscalarConfig())
	m2 := runOn(t, p2, SuperscalarConfig())
	s1, s2 := m1.Stats(), m2.Stats()
	if s2.MispredictedBranches < 500 {
		t.Fatalf("expected many mispredicts, got %d", s2.MispredictedBranches)
	}
	cpi1 := float64(s1.Cycles) / float64(s1.Insts)
	cpi2 := float64(s2.Cycles) / float64(s2.Insts)
	if cpi2 <= cpi1 {
		t.Fatalf("mispredicts should raise CPI: predictable %.3f vs random %.3f", cpi1, cpi2)
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	// Striding through a large array (cold misses) vs re-reading one word.
	cold := `
.data
base:
	.word 0
.text
main:
	li s0, 2000
	li s1, 0x400000
loop:
	ld t0, 0(s1)
	addi s1, s1, 512
	addi s0, s0, -1
	bnez s0, loop
	halt
`
	warm := `
.data
one:
	.word 7
.text
main:
	li s0, 2000
	la s1, one
loop:
	ld t0, 0(s1)
	addi s0, s0, -1
	bnez s0, loop
	halt
`
	mc := runOn(t, assemble(t, cold), SuperscalarConfig())
	mw := runOn(t, assemble(t, warm), SuperscalarConfig())
	if mc.Stats().Cycles <= 2*mw.Stats().Cycles {
		t.Fatalf("cold strides should be much slower: cold=%d warm=%d",
			mc.Stats().Cycles, mw.Stats().Cycles)
	}
	if mc.Stats().L1D.Misses < 1900 {
		t.Fatalf("expected ~2000 L1D misses, got %d", mc.Stats().L1D.Misses)
	}
}

func TestDivisionLatencyKnob(t *testing.T) {
	p := assemble(t, fanoutProgram)
	fast := SOMTConfig()
	slow := SOMTConfig()
	slow.DivExtraCycles = 200
	m1 := runOn(t, p, fast)
	m2 := runOn(t, p, slow)
	if m1.Output[0] != 12 || m2.Output[0] != 12 {
		t.Fatal("wrong results")
	}
	// Results must stay correct; cycle counts may differ but not wildly
	// (the paper reports <1% on real workloads; this tiny kernel just
	// checks the knob is wired).
	if m2.Stats().Cycles < m1.Stats().Cycles {
		t.Logf("note: slow-division run was faster (%d vs %d); acceptable on tiny kernels",
			m2.Stats().Cycles, m1.Stats().Cycles)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A thread locks an address twice without unlocking... mlock is
	// idempotent for the owner, so instead: two threads lock two addresses
	// in opposite orders -> classic deadlock; the simulator must report it
	// rather than hang.
	src := `
.data
la1:
	.word 0
la2:
	.word 0
.text
main:
	nthr t0
	li t1, -1
	beq t0, t1, give_up
	bnez t0, child
	la s0, la1
	la s1, la2
	mlock s0
	li t2, 200
d1:
	addi t2, t2, -1
	bnez t2, d1
	mlock s1
	munlock s1
	munlock s0
	join
	halt
child:
	la s0, la1
	la s1, la2
	mlock s1
	li t2, 200
d2:
	addi t2, t2, -1
	bnez t2, d2
	mlock s0
	munlock s0
	munlock s1
	kthr
give_up:
	halt
`
	p := assemble(t, src)
	cfg := SOMTConfig()
	cfg.SwapOn = false // keep the rescue path out of the picture
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Cycles: 100, Insts: 250, DivRequested: 10, DivGranted: 5}
	if s.IPC() != 2.5 {
		t.Fatalf("IPC = %v", s.IPC())
	}
	if s.DivGrantRate() != 0.5 {
		t.Fatalf("grant rate = %v", s.DivGrantRate())
	}
	if s.InstsPerDivision() != 50 {
		t.Fatalf("insts/div = %v", s.InstsPerDivision())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.DivGrantRate() != 0 || zero.InstsPerDivision() != 0 || zero.AvgActiveContexts() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}
