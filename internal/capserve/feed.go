package capserve

// The push plane: /debug/credits streams credit/health deltas to
// subscribed routers, inverting the pull paths (response headers, the
// /metrics scrape) that fed the cluster tier's credit gauges before.
// Headers and scrapes remain as degraded fallbacks — a router that
// cannot hold a subscription learns exactly what it learned before —
// but a live feed makes credit freshness an event, not a polling
// interval: every admission-queue transition publishes, and an idle
// server heartbeats, so a router's gauge is never staler than one
// heartbeat while the stream lives.
//
// The wire format is server-sent events: one `data: {json}` line per
// delta, flushed immediately. Each delta carries a sequence number
// drawn from one per-server atomic counter, so deltas are globally
// monotonic per backend — a subscriber (or two racing subscriber
// goroutines after a reconnect) can always discard the older of two
// deltas by comparing seq, never by guessing at clocks.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
)

// DefaultFeedHeartbeat is the idle republish interval of the
// /debug/credits stream: with no admissions to publish, subscribers
// still see a delta this often, which is what keeps a push-fed router's
// staleness TTL satisfied on a quiet fleet.
const DefaultFeedHeartbeat = 500 * time.Millisecond

// CreditDelta is one event on the /debug/credits push feed: the same
// headroom the response headers advertise, plus the health facts a
// router acts on (draining, build identity), stamped with a per-server
// monotonic sequence number.
type CreditDelta struct {
	// Seq is monotonically increasing per server process. A subscriber
	// must ignore any delta whose Seq is <= the last one it applied.
	Seq uint64 `json:"seq"`
	// QueueFree is the accept-queue headroom (HeaderQueueFree's value).
	QueueFree int `json:"queue_free"`
	// FreeContexts is the runtime's unreserved context-token count
	// (HeaderFreeContexts's value).
	FreeContexts int `json:"free_contexts"`
	// Draining is true once shutdown has begun: in-flight requests
	// finish, but a router should stop sending new ones now, not after
	// its next scrape.
	Draining bool `json:"draining"`
	// Version is the serving build, so a fleet dashboard can spot a
	// half-rolled deploy from the feed alone.
	Version string `json:"version,omitempty"`
}

// creditFeed is the Server's subscriber registry. The publish fast path
// — no subscribers, the overwhelmingly common case for a standalone
// capserve — is one atomic load.
type creditFeed struct {
	nsubs atomic.Int32
	seq   atomic.Uint64
	mu    sync.Mutex
	subs  map[chan struct{}]struct{}
}

// subscribe registers a wakeup channel. The channel has capacity 1 and
// publish sends are non-blocking: wakeups coalesce, and the subscriber
// reads the *current* state when it wakes, so a missed send never means
// a missed state.
func (f *creditFeed) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	f.mu.Lock()
	if f.subs == nil {
		f.subs = map[chan struct{}]struct{}{}
	}
	f.subs[ch] = struct{}{}
	f.mu.Unlock()
	f.nsubs.Add(1)
	return ch
}

func (f *creditFeed) unsubscribe(ch chan struct{}) {
	f.mu.Lock()
	delete(f.subs, ch)
	f.mu.Unlock()
	f.nsubs.Add(-1)
}

// publish wakes every subscriber. Called on the serving path (after a
// queue slot frees, on a shed, on SetDraining), so the no-subscriber
// cost had better be nothing: one atomic load.
func (f *creditFeed) publish() {
	if f.nsubs.Load() == 0 {
		return
	}
	f.mu.Lock()
	for ch := range f.subs {
		select {
		case ch <- struct{}{}:
		default: // a wakeup is already pending; it will read fresh state
		}
	}
	f.mu.Unlock()
}

// creditDelta composes the next delta from live state, allocating its
// sequence number at composition — two concurrent subscriber goroutines
// each get distinct, ordered seqs.
func (s *Server) creditDelta() CreditDelta {
	return CreditDelta{
		Seq:          s.feed.seq.Add(1),
		QueueFree:    cap(s.queue) - len(s.queue),
		FreeContexts: s.rt.FreeContexts(),
		Draining:     s.draining.Load(),
		Version:      buildinfo.Get().Version,
	}
}

// handleCredits is GET /debug/credits: a server-sent-event stream of
// CreditDeltas. The first delta is sent immediately (a subscription is
// also a snapshot), then one per publish or heartbeat. The stream ends
// when the client goes away or the server starts draining — a draining
// server must not hold subscriber connections open, or graceful
// Shutdown would wait on them; the final delta carries Draining=true so
// the subscriber learns why before the EOF.
func (s *Server) handleCredits(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func() (draining bool, err error) {
		d := s.creditDelta()
		raw, merr := json.Marshal(d)
		if merr != nil {
			return d.Draining, merr
		}
		if _, err = fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
			return d.Draining, err
		}
		fl.Flush()
		return d.Draining, nil
	}

	ch := s.feed.subscribe()
	defer s.feed.unsubscribe(ch)
	if draining, err := send(); draining || err != nil {
		return
	}
	hb := time.NewTicker(s.feedHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		case <-hb.C:
		}
		if draining, err := send(); draining || err != nil {
			return
		}
	}
}
