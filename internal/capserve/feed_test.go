package capserve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// readDelta scans the SSE stream to the next `data:` line and decodes
// it.
func readDelta(t *testing.T, sc *bufio.Scanner) CreditDelta {
	t.Helper()
	for sc.Scan() {
		raw, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var d CreditDelta
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			t.Fatalf("bad delta %q: %v", raw, err)
		}
		return d
	}
	t.Fatalf("stream ended without a delta: %v", sc.Err())
	return CreditDelta{}
}

// TestCreditFeedStream pins the push plane's wire contract: the first
// delta arrives immediately (a subscription is also a snapshot), idle
// heartbeats keep coming, sequence numbers are strictly increasing,
// and the advertised headroom matches the header path's view.
func TestCreditFeedStream(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, FeedHeartbeat: 20 * time.Millisecond})

	resp, err := http.Get(ts.URL + "/debug/credits")
	if err != nil {
		t.Fatalf("GET /debug/credits: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	first := readDelta(t, sc)
	if first.Seq == 0 {
		t.Fatal("first delta has seq 0; seqs must start at 1")
	}
	if first.QueueFree != 8 {
		t.Fatalf("initial QueueFree = %d on an idle server, want 8", first.QueueFree)
	}
	if first.FreeContexts != s.rt.FreeContexts() {
		t.Fatalf("initial FreeContexts = %d, want %d", first.FreeContexts, s.rt.FreeContexts())
	}
	if first.Draining {
		t.Fatal("initial delta claims draining on a live server")
	}

	// Heartbeats flow while idle, seqs strictly increase.
	prev := first.Seq
	for i := 0; i < 3; i++ {
		d := readDelta(t, sc)
		if d.Seq <= prev {
			t.Fatalf("seq regressed: %d after %d", d.Seq, prev)
		}
		prev = d.Seq
	}
}

// TestCreditFeedDraining pins the shutdown contract from both sides: an
// established stream ends with a Draining=true delta the moment drain
// begins (so graceful Shutdown never waits on subscribers), and a new
// subscription to a draining server is refused with 503.
func TestCreditFeedDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, FeedHeartbeat: time.Minute})

	resp, err := http.Get(ts.URL + "/debug/credits")
	if err != nil {
		t.Fatalf("GET /debug/credits: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	readDelta(t, sc) // the snapshot

	// Drain mid-stream. The heartbeat is a minute out, so the final
	// delta can only arrive via SetDraining's publish.
	s.SetDraining(true)
	final := readDelta(t, sc)
	if !final.Draining {
		t.Fatalf("delta after SetDraining has Draining=false: %+v", final)
	}
	// And the stream is over: the server closed it, not us. Only the
	// event separator may trail the final delta.
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			t.Fatalf("delta after the draining delta: %q", sc.Text())
		}
	}

	// A draining server refuses new subscriptions outright.
	resp2, err := http.Get(ts.URL + "/debug/credits")
	if err != nil {
		t.Fatalf("GET /debug/credits while draining: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("subscription while draining: status %d, want 503", resp2.StatusCode)
	}
}
