// Package capserve is the capsule-native serving layer: every native
// workload (QuickSort, Dijkstra, LZW, Perceptron) becomes an HTTP
// endpoint backed by one shared capsule.Runtime, and the paper's
// admission-control idea — components *offer* parallelism, the hardware
// accepts only when resources are free — becomes the server's load
// policy, applied at two levels:
//
//   - per request: a bounded accept queue caps in-flight requests; when
//     it is full the server sheds with 503 instead of queueing
//     unboundedly (the serving analogue of a refused division: the work
//     stays with the offerer, here the client);
//   - per division: an admitted request peeks at the context pool — if
//     a token is free it runs on a per-request Group and divides at the
//     workload's own probe sites; if not, it degrades to the Sequential
//     domain and runs inline on the handler goroutine, making no
//     further offers (the CapC sequential fallback path, lifted to
//     request granularity). The peek is not a probe, so
//     capsule_grant_rate reflects real division offers only.
//
// /metrics exports the runtime's Stats plus per-endpoint request counts
// and latency histograms in Prometheus text format, so the paper's
// "% divisions allowed" (Table 3) is a live serving observable:
// capsule_grant_rate.
package capserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/capsule"
	"repro/internal/captrace"
	"repro/internal/workloads"
)

// DefaultMaxN caps request input sizes for linear-cost workloads with no
// explicit entry in Config.MaxN. It bounds per-request memory (a
// quicksort request allocates ~2 slices of n int64s) and time without
// getting in honest traffic's way.
const DefaultMaxN = 1 << 20

// Headroom headers: every /run response advertises the server's
// instantaneous free capacity, so a routing tier (internal/capcluster)
// can keep a local credit gauge per backend and answer its remote probes
// without a network round-trip — the response traffic it already has IS
// the capacity feed.
const (
	// HeaderQueueFree is the number of accept-queue slots free at
	// response time (the responding request still holds its own slot, so
	// the value is conservative by exactly the in-flight requests).
	HeaderQueueFree = "X-Capserve-Queue-Free"
	// HeaderFreeContexts is the runtime's unreserved context-token count
	// — division headroom, not admission headroom.
	HeaderFreeContexts = "X-Capsule-Free-Contexts"
	// HeaderDegraded marks a 200 response whose run was admitted without
	// division headroom and executed on the Sequential domain. The
	// routing tier reads it off its local-fallback responses to tell the
	// two degradation tiers apart (local-runtime vs sequential).
	HeaderDegraded = "X-Capserve-Degraded"
)

// defaultCaps are the per-workload default input caps. They bound
// worst-case per-request *time*, not just memory, so they track each
// algorithm's cost curve: dijkstra's flooding exploration is superlinear
// in n (n=10000 is already seconds of CPU sequentially), so its cap is
// orders of magnitude below the linear workloads'. Config.MaxN overrides
// per workload.
var defaultCaps = map[string]int{
	"quicksort":  DefaultMaxN,
	"lzw":        DefaultMaxN,
	"perceptron": 1 << 17,
	"dijkstra":   10000,
}

// Config parameterises a Server.
type Config struct {
	// Runtime is the shared capsule runtime all endpoints divide on.
	// Required.
	Runtime *capsule.Runtime

	// QueueDepth bounds admitted (in-flight) requests; a request that
	// arrives with the queue full is shed with 503. Default: 4 × the
	// runtime's context count.
	QueueDepth int

	// MaxN caps the n parameter per workload. Keys must be native
	// workload names, values must be positive; missing workloads take
	// the per-workload defaults (defaultCaps). The caps are the server's
	// only bound on per-request cost — a run, once dispatched, is not
	// cancellable mid-flight — so raise them deliberately.
	MaxN map[string]int

	// Tracer receives the serving-tier lifecycle events and backs the
	// /debug/trace endpoint. Default (nil): inherit the Runtime's tracer,
	// so wiring a tracer into the runtime Config is the only step needed
	// to get both tiers recorded into one ring set. Explicitly leaving
	// both nil disables request tracing entirely.
	Tracer *captrace.Tracer

	// TraceSample is the 1-in-N sampling rate for server-generated trace
	// IDs (adopted client/router IDs are always traced). Default (0):
	// DefaultTraceSample. 1 traces every request — CI smoke territory,
	// not production.
	TraceSample int

	// TraceSource names this server in trace snapshots, so cmd/captrace
	// can tell router and backend events apart after merging. Default:
	// "capserve".
	TraceSource string

	// FeedHeartbeat is the idle republish interval of the /debug/credits
	// push feed: subscribed routers see a delta at least this often even
	// with no traffic, which is what keeps their staleness TTLs satisfied
	// on a quiet fleet. Default: DefaultFeedHeartbeat.
	FeedHeartbeat time.Duration
}

// Validate reports whether cfg can build a Server.
func (cfg Config) Validate() error {
	if cfg.Runtime == nil {
		return fmt.Errorf("capserve: Config.Runtime is required")
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("capserve: QueueDepth must be >= 0 (0 means 4x contexts), got %d", cfg.QueueDepth)
	}
	if cfg.TraceSample < 0 {
		return fmt.Errorf("capserve: TraceSample must be >= 0 (0 means %d), got %d", DefaultTraceSample, cfg.TraceSample)
	}
	if cfg.FeedHeartbeat < 0 {
		return fmt.Errorf("capserve: FeedHeartbeat must be >= 0 (0 means default), got %v", cfg.FeedHeartbeat)
	}
	known := map[string]bool{}
	for _, wl := range workloads.NativeNames() {
		known[wl] = true
	}
	for wl, n := range cfg.MaxN {
		if !known[wl] {
			return fmt.Errorf("capserve: MaxN names unknown workload %q (have %v)", wl, workloads.NativeNames())
		}
		if n <= 0 {
			return fmt.Errorf("capserve: MaxN[%q] must be > 0, got %d", wl, n)
		}
	}
	return nil
}

// Server serves the native workloads over HTTP. Build with New, mount
// anywhere (it implements http.Handler), and on shutdown call
// SetDraining(true) before http.Server.Shutdown so health checks fail
// fast while in-flight requests finish.
type Server struct {
	rt        *capsule.Runtime
	queue     chan struct{}
	maxN      map[string]int
	workloads []string // fixed endpoint order (NativeNames)
	eps       map[string]*endpoint
	mux       *http.ServeMux
	start     time.Time
	draining  atomic.Bool

	tracer      *captrace.Tracer
	sampler     *captrace.Sampler
	traceSource string

	// feed is the /debug/credits push plane (feed.go); feedHeartbeat is
	// its idle republish interval.
	feed          creditFeed
	feedHeartbeat time.Duration

	shed     atomic.Uint64
	notFound atomic.Uint64

	// extraMetrics are appended to /metrics after the server's own
	// series (AddMetrics) — how capwatch's capwatch_* series join the
	// exposition without capserve importing the sampler.
	extraMetrics []func(io.Writer)
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 4 * cfg.Runtime.Contexts()
	}
	sample := cfg.TraceSample
	if sample == 0 {
		sample = DefaultTraceSample
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = cfg.Runtime.Tracer()
	}
	source := cfg.TraceSource
	if source == "" {
		source = "capserve"
	}
	heartbeat := cfg.FeedHeartbeat
	if heartbeat == 0 {
		heartbeat = DefaultFeedHeartbeat
	}
	s := &Server{
		rt:          cfg.Runtime,
		queue:       make(chan struct{}, depth),
		maxN:        map[string]int{},
		workloads:   workloads.NativeNames(),
		eps:         map[string]*endpoint{},
		mux:         http.NewServeMux(),
		start:       time.Now(),
		tracer:        tracer,
		sampler:       captrace.NewSampler(sample),
		traceSource:   source,
		feedHeartbeat: heartbeat,
	}
	for _, wl := range s.workloads {
		s.eps[wl] = &endpoint{}
		if cap, ok := defaultCaps[wl]; ok {
			s.maxN[wl] = cap
		} else {
			s.maxN[wl] = DefaultMaxN // a workload added without a tuned cap
		}
	}
	for wl, n := range cfg.MaxN {
		s.maxN[wl] = n
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("GET /debug/credits", s.handleCredits)
	s.mux.HandleFunc("GET /run/{workload}", s.handleRun)
	s.mux.HandleFunc("POST /run/{workload}", s.handleRun)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Runtime returns the shared runtime (for shutdown joins and final
// stats).
func (s *Server) Runtime() *capsule.Runtime { return s.rt }

// QueueDepth returns the accept-queue capacity.
func (s *Server) QueueDepth() int { return cap(s.queue) }

// SetDraining flips the health endpoint: while draining, /healthz
// returns 503 so load balancers stop routing here before Shutdown cuts
// the listener. Push-fed routers learn immediately: the transition is
// published on the /debug/credits feed (with Draining=true as the
// stream's final delta), so they stop dispatching here without waiting
// for a health poll.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
	s.feed.publish()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"workloads":   s.workloads,
		"max_n":       s.maxN,
		"queue_depth": cap(s.queue),
		"contexts":    s.rt.Contexts(),
		"endpoints":   []string{"/run/{workload}?n=&seed=", "/healthz", "/metrics"},
	})
}

// runRequest is the body POST /run/{workload} accepts; fields override
// the query parameters.
type runRequest struct {
	N    *int   `json:"n"`
	Seed *int64 `json:"seed"`
}

// runResponse is the JSON a successful run returns: the workload result
// plus the serving-level admission outcome and the request's own
// division counters.
type runResponse struct {
	*workloads.ServeResult
	Degraded  bool               `json:"degraded"`
	Divisions capsule.GroupStats `json:"divisions"`
}

// setHeadroom stamps the credit-feed headers with the server's current
// free capacity. Called at admission (so sheds and errors carry it too)
// and again right before a 200 body, when the values are freshest.
func (s *Server) setHeadroom(h http.Header) {
	h.Set(HeaderQueueFree, strconv.Itoa(cap(s.queue)-len(s.queue)))
	h.Set(HeaderFreeContexts, strconv.Itoa(s.rt.FreeContexts()))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	wl := r.PathValue("workload")
	ep, ok := s.eps[wl]
	if !ok {
		s.notFound.Add(1)
		http.Error(w, fmt.Sprintf("unknown workload %q (have %v)", wl, s.workloads), http.StatusNotFound)
		return
	}
	s.setHeadroom(w.Header())

	// Trace identity before admission, so even a shed is attributable
	// to the ID the client (or router) stamped. The ID is echoed
	// whenever one exists — traced or merely sampled-out — so callers
	// always learn what to ask /debug/trace about.
	tid, traced := s.traceIdentity(r)
	if tid != 0 {
		w.Header().Set(captrace.HeaderTraceID, captrace.FormatID(tid))
	}

	// Bounded accept queue: full means shed now, not queue forever.
	// Each admission-queue transition is a credit event: the release
	// publishes on the push feed (one atomic load when nobody is
	// subscribed), so routers track headroom without a response in
	// flight to carry the header.
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue; s.feed.publish() }()
	default:
		s.shed.Add(1)
		s.feed.publish()
		ep.inc(http.StatusServiceUnavailable)
		s.trace(traced, captrace.KReqShed, tid, 0, 0)
		// Re-stamp: the admission-time stamp can predate the queue
		// filling, and a shed advertising stale positive headroom would
		// tell routers to keep sending to a saturated backend.
		s.setHeadroom(w.Header())
		w.Header().Set("Retry-After", "1")
		http.Error(w, "accept queue full, request shed", http.StatusServiceUnavailable)
		return
	}
	s.trace(traced, captrace.KReqAdmit, tid, 0, uint32(len(s.queue)))

	n, seed, err := s.parseParams(r)
	if err != nil {
		ep.inc(http.StatusBadRequest)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if maxN := s.maxN[wl]; n > maxN {
		ep.inc(http.StatusRequestEntityTooLarge)
		http.Error(w, fmt.Sprintf("n = %d exceeds the %q cap of %d", n, wl, maxN), http.StatusRequestEntityTooLarge)
		return
	}

	// The client may have hung up while the request waited its turn; a
	// dispatched run is not cancellable, so this is the last exit.
	if err := r.Context().Err(); err != nil {
		ep.inc(statusClientClosed)
		w.WriteHeader(statusClientClosed)
		return
	}

	// Request-level admission: peek at the runtime (free context AND
	// throttle quiescent — Probe's full condition). Divisible → run on a
	// per-request Group, offering parallelism at the workload's own
	// division points; not → degrade to the Sequential domain and stop
	// offering (the peek is not a probe, so the division grant rate
	// stays the paper's: real offers only).
	start := time.Now()
	var dom capsule.Domain
	var group *capsule.Group
	degraded := false
	if s.rt.CanDivide() {
		// A traced group tags the request's runtime events (probe
		// outcomes, handoffs, deaths) with its ID — the serving-tier →
		// shard-event link in the waterfall. Untraced requests get a
		// tid-0 group, which records nothing.
		var gtid uint64
		if traced {
			gtid = tid
		}
		group = s.rt.NewGroupTraced(gtid)
		dom = group
	} else {
		dom = s.rt.Sequential()
		degraded = true
		ep.degraded.Add(1)
		s.trace(traced, captrace.KReqDegraded, tid, 0, 0)
	}

	res, err := workloads.RunRequest(dom, wl, n, seed)
	if err != nil {
		// Parameters were validated above, so this is a server-side
		// failure, not a client one.
		ep.inc(http.StatusInternalServerError)
		s.trace(traced, captrace.KReqDone, tid, http.StatusInternalServerError, durUS(time.Since(start)))
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	resp := runResponse{ServeResult: res, Degraded: degraded}
	if group != nil {
		resp.Divisions = group.Stats()
	}
	ep.inc(http.StatusOK)
	elapsed := time.Since(start)
	ep.latency.Observe(elapsed)
	s.trace(traced, captrace.KReqDone, tid, http.StatusOK, durUS(elapsed))
	s.setHeadroom(w.Header()) // refresh: this is the value routers act on
	if degraded {
		w.Header().Set(HeaderDegraded, "1")
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// durUS packs a duration into the µs-resolution uint32 the trace event
// payload carries (saturating: ~71 minutes caps the field, far beyond
// any request this server dispatches).
func durUS(d time.Duration) uint32 {
	us := d.Microseconds()
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// parseParams reads n and seed from the query string, letting a JSON
// POST body override either. The body is read first so its fields truly
// override — a query value the body supersedes is never even parsed.
// Defaults: n=1000, seed=1.
func (s *Server) parseParams(r *http.Request) (n int, seed int64, err error) {
	n, seed = 1000, 1
	var body runRequest
	if r.Method == http.MethodPost && r.Body != nil && r.ContentLength != 0 {
		if derr := json.NewDecoder(r.Body).Decode(&body); derr != nil {
			return 0, 0, fmt.Errorf("bad JSON body: %v", derr)
		}
	}
	q := r.URL.Query()
	switch {
	case body.N != nil:
		n = *body.N
	default:
		if v := q.Get("n"); v != "" {
			n, err = strconv.Atoi(v)
			if err != nil {
				return 0, 0, fmt.Errorf("bad n %q: %v", v, err)
			}
		}
	}
	switch {
	case body.Seed != nil:
		seed = *body.Seed
	default:
		if v := q.Get("seed"); v != "" {
			seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("bad seed %q: %v", v, err)
			}
		}
	}
	if n <= 0 {
		return 0, 0, fmt.Errorf("n must be > 0 (got %d)", n)
	}
	return n, seed, nil
}
