package capserve

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"repro/internal/capsule"
)

// Backend is an in-process capserve instance on a real loopback
// listener: a separate capserve process in everything but pid. It is
// what `caprouter -spawn` boots, what the cluster tests front, and what
// capstress kills mid-run — real TCP, real HTTP, so a router talking to
// it exercises exactly the code path it uses against remote processes.
type Backend struct {
	// Server is the serving layer itself, for direct access to
	// SetDraining, Runtime and metrics.
	Server *Server
	// URL is the backend's base URL (http://127.0.0.1:port).
	URL string

	hs    *net.TCPListener
	srv   *http.Server
	rt    *capsule.Runtime
	ownRT bool
}

// StartBackend builds a Server from cfg and serves it on an ephemeral
// loopback port. A nil cfg.Runtime gets a fresh default runtime that the
// Backend owns (Close shuts it down); a caller-supplied runtime is left
// to its owner.
func StartBackend(cfg Config) (*Backend, error) {
	return StartBackendOn(cfg, "127.0.0.1:0", nil)
}

// StartBackendOn is StartBackend with two knobs churn and chaos
// harnesses need: an explicit listen address (so a "rejoining" backend
// can come back on the address its router already knows — pass
// "127.0.0.1:0" for the ephemeral default), and an optional handler
// wrap applied around the Server (capfault-style fault injection on the
// backend side of the wire). wrap receives the backend's host:port —
// assigned by the listener, so rules scoped by backend name match from
// either side — and the Server as an http.Handler.
func StartBackendOn(cfg Config, addr string, wrap func(name string, h http.Handler) http.Handler) (*Backend, error) {
	ownRT := false
	if cfg.Runtime == nil {
		cfg.Runtime = capsule.NewDefault()
		ownRT = true
	}
	s, err := New(cfg)
	if err != nil {
		if ownRT {
			cfg.Runtime.Close()
		}
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if ownRT {
			cfg.Runtime.Close()
		}
		return nil, fmt.Errorf("capserve: backend listen: %w", err)
	}
	var h http.Handler = s
	if wrap != nil {
		h = wrap(ln.Addr().String(), h)
	}
	b := &Backend{
		Server: s,
		URL:    "http://" + ln.Addr().String(),
		hs:     ln.(*net.TCPListener),
		srv:    &http.Server{Handler: h},
		rt:     cfg.Runtime,
		ownRT:  ownRT,
	}
	go b.srv.Serve(ln)
	return b, nil
}

// Runtime returns the backend's capsule runtime.
func (b *Backend) Runtime() *capsule.Runtime { return b.rt }

// Close drains the backend in the documented shutdown order — the same
// order cmd/capserve performs on SIGTERM, codified so every embedder
// gets it right:
//
//  1. SetDraining(true): /healthz flips to 503 while the listener is
//     still open, so a balancer polling it stops routing here first;
//  2. http.Server.Shutdown: the listener closes and in-flight requests
//     run to completion (bounded by ctx) — an already-admitted request
//     is never 503ed by the drain;
//  3. the runtime closes (only if this Backend created it), retiring the
//     parked per-context workers.
//
// Close is safe to call more than once.
func (b *Backend) Close(ctx context.Context) error {
	b.Server.SetDraining(true)
	err := b.srv.Shutdown(ctx)
	if b.ownRT && err == nil {
		// Handlers are done (Shutdown returned clean), so Close cannot
		// block on in-flight divisions.
		b.rt.Close()
	}
	return err
}

// Kill tears the backend down with no drain: the listener and every
// established connection close immediately, so in-flight requests die
// with transport errors — a crashed process, as its routers see it. The
// runtime is left running (a real crash doesn't run destructors either);
// tests that care call Runtime().Close themselves.
func (b *Backend) Kill() { b.srv.Close() }
