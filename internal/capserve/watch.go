package capserve

import (
	"io"
	"net/http"
)

// Read-side hooks for periodic samplers (internal/capwatch). The
// sampler's contract is McKenney's: writers touch only their own
// per-request atomic counters, and a snapshot is the reader paying the
// whole aggregation cost itself — so every hook here is allocation-free
// and takes only atomic loads, safe to call at any tick rate against a
// server under full load.

// NumLatencyBuckets is the fixed bucket count of every Histogram:
// len(latencyBuckets) finite bounds plus the +Inf overflow slot.
const NumLatencyBuckets = 16

// LatencyBucketBounds returns a copy of the histogram upper bounds in
// seconds (finite bounds only; the +Inf overflow is implied as bucket
// NumLatencyBuckets-1). Read-side code pairs it with ReadCounts
// snapshots for delta-quantile math (promtext.DeltaQuantile).
func LatencyBucketBounds() []float64 {
	out := make([]float64, len(latencyBuckets))
	copy(out, latencyBuckets)
	return out
}

// ReadCounts copies the histogram's per-bucket density counts (NOT
// cumulative; +Inf last) into dst and returns the sum of observed
// nanoseconds. Allocation-free: 17 atomic loads.
func (h *Histogram) ReadCounts(dst *[NumLatencyBuckets]uint64) (sumNS int64) {
	for i := range dst {
		dst[i] = h.counts[i].Load()
	}
	return h.sumNS.Load()
}

// EndpointCounters is one workload's cumulative serving counters as a
// sampler reads them, folded from the per-code split into the
// classes an SLO evaluator needs: successes, client faults (the
// request was wrong or abandoned: 400, 413, 499 — these spend no error
// budget) and server faults (the server refused or failed work it
// should have done: 500, and the 503 queue sheds).
type EndpointCounters struct {
	OK             uint64                    `json:"ok"`
	ClientErrs     uint64                    `json:"client_errs"`
	ServerErrs     uint64                    `json:"server_errs"`
	Degraded       uint64                    `json:"degraded"`
	LatencyBuckets [NumLatencyBuckets]uint64 `json:"latency_buckets"` // density, +Inf last
	LatencySumNS   int64                     `json:"latency_sum_ns"`
}

// Workloads returns the server's endpoint order — the order
// ReadEndpointCounters fills and the index space a sampler labels its
// per-endpoint series with. Callers must not modify the slice.
func (s *Server) Workloads() []string { return s.workloads }

// ReadEndpointCounters fills dst with up to len(Workloads()) endpoints'
// counters in Workloads order and returns the endpoint count.
// Allocation-free.
func (s *Server) ReadEndpointCounters(dst []EndpointCounters) int {
	n := len(s.workloads)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		ep := s.eps[s.workloads[i]]
		d := &dst[i]
		d.OK = ep.byCode[0].Load()                                                     // 200
		d.ClientErrs = ep.byCode[1].Load() + ep.byCode[2].Load() + ep.byCode[3].Load() // 400, 413, 499
		d.ServerErrs = ep.byCode[4].Load() + ep.byCode[5].Load()                       // 500, 503
		d.Degraded = ep.degraded.Load()
		d.LatencySumNS = ep.latency.ReadCounts(&d.LatencyBuckets)
	}
	return len(s.workloads)
}

// QueueOccupancy returns the requests currently holding an accept-queue
// slot (the instantaneous companion of QueueDepth).
func (s *Server) QueueOccupancy() int { return len(s.queue) }

// ShedCount returns the cumulative 503 queue sheds.
func (s *Server) ShedCount() uint64 { return s.shed.Load() }

// Mount registers an additional handler on the server's mux — the hook
// a post-construction subsystem (capwatch's /debug/watch) uses to
// appear on the same listener. Call before the server starts serving;
// the mux is not synchronized against in-flight requests.
func (s *Server) Mount(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// AddMetrics appends an extra exposition writer to /metrics, emitted
// after the server's own series. Same timing contract as Mount: wire it
// up before serving starts.
func (s *Server) AddMetrics(f func(io.Writer)) { s.extraMetrics = append(s.extraMetrics, f) }

// TraceHandler returns the /debug/trace handler as a mountable value,
// so a side debug listener (cmd/capserve -debug-addr) can serve traces
// next to pprof without reaching into the server's mux.
func (s *Server) TraceHandler() http.Handler { return http.HandlerFunc(s.handleTrace) }
