package capserve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/captrace"
)

// Request tracing: every /run request gets a trace identity — adopted,
// injected, or minted — and the serving-tier lifecycle (admit, shed,
// degrade, done) is recorded against it in the shared tracer, alongside
// the runtime events its Domain produces (see NewGroupTraced). The
// /debug/trace endpoint is the read side.

// DefaultTraceSample is the 1-in-N sampling rate for server-generated
// trace IDs when Config.TraceSample is 0: enough exemplars to always
// have a recent waterfall, cheap enough to leave on.
const DefaultTraceSample = 64

// traceIdentity decides a request's trace ID and whether its events are
// recorded, in precedence order:
//
//  1. an identity injected via captrace.WithRequest (the in-process
//     router fallback path) is authoritative — the router already
//     decided, and re-deciding here could disagree with its route span;
//  2. a parseable X-Capsule-Trace-ID header is adopted and always
//     traced: whoever stamped it (capload -trace, a curl repro, the
//     router's dispatch propagation) wants this request observable;
//  3. otherwise, with tracing armed, an ID is minted and traced for one
//     in TraceSample requests — steady background exemplars.
//
// With no tracer armed there is no identity at all: the header is not
// echoed and nothing is recorded, keeping the disabled path at zero
// added work beyond one nil check.
func (s *Server) traceIdentity(r *http.Request) (tid uint64, traced bool) {
	if id, tr, ok := captrace.RequestFrom(r.Context()); ok {
		return id, tr && s.tracer != nil
	}
	if s.tracer == nil {
		return 0, false
	}
	if h := r.Header.Get(captrace.HeaderTraceID); h != "" {
		if id, err := captrace.ParseID(h); err == nil {
			return id, true
		}
		// Malformed header: mint instead of adopting garbage, so the
		// response still tells the client what ID (if any) to look for.
	}
	return captrace.NewID(), s.sampler.Sample()
}

// trace records one serving-tier event against a traced request; a
// no-op for untraced ones. (tid may be nonzero while traced is false:
// identified-but-unsampled requests echo their ID but record nothing.)
func (s *Server) trace(traced bool, kind captrace.Kind, tid uint64, a uint16, b uint32) {
	if traced {
		s.tracer.Record(kind, tid, 0, a, b)
	}
}

// TraceSnapshot reads the server's tracer under its configured source
// name — what handleTrace serves, exposed so an embedder holding the
// server in-process (a router with spawned backends) can merge this
// server's rings into its own /debug/trace endpoint. Empty-armed or
// untraced servers return an empty snapshot.
func (s *Server) TraceSnapshot(n int) captrace.Snapshot {
	return s.tracer.Snapshot(s.traceSource, n)
}

// handleTrace serves GET /debug/trace?n= — a point-in-time snapshot of
// the tracer's rings as JSON, the ingestion format of cmd/captrace.
// Read-side aggregation only: safe to hit while the hot path writes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing disabled (start with -trace)", http.StatusNotFound)
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 {
			http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
			return
		}
		n = p
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.tracer.Snapshot(s.traceSource, n))
}
