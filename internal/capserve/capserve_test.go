package capserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capsule"
	"repro/internal/workloads"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Runtime == nil {
		cfg.Runtime = capsule.New(capsule.Config{Contexts: 4, Throttle: true})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp
}

func TestConfigValidate(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 2})
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("nil Runtime accepted")
	}
	if err := (Config{Runtime: rt, QueueDepth: -1}).Validate(); err == nil {
		t.Fatal("negative QueueDepth accepted")
	}
	if err := (Config{Runtime: rt, MaxN: map[string]int{"nosuch": 10}}).Validate(); err == nil {
		t.Fatal("unknown MaxN workload accepted")
	}
	if err := (Config{Runtime: rt, MaxN: map[string]int{"quicksort": 0}}).Validate(); err == nil {
		t.Fatal("zero MaxN cap accepted")
	}
	if err := (Config{Runtime: rt, MaxN: map[string]int{"quicksort": 10}}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRunAllWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, wl := range workloads.NativeNames() {
		url := fmt.Sprintf("%s/run/%s?n=300&seed=42", ts.URL, wl)
		var first runResponse
		if resp := getJSON(t, url, &first); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", wl, resp.StatusCode)
		}
		if first.Workload != wl || first.N != 300 || first.Seed != 42 {
			t.Fatalf("%s: echo mismatch: %+v", wl, first.ServeResult)
		}
		if first.Checksum == 0 || first.Output == "" {
			t.Fatalf("%s: empty result: %+v", wl, first.ServeResult)
		}
		// Same triple again → same checksum, any interleaving.
		var second runResponse
		getJSON(t, url, &second)
		if second.Checksum != first.Checksum {
			t.Fatalf("%s: nondeterministic checksum: %d then %d", wl, first.Checksum, second.Checksum)
		}
	}
}

func TestRunPOSTBodyOverridesQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var viaGet runResponse
	getJSON(t, ts.URL+"/run/quicksort?n=256&seed=9", &viaGet)

	body := bytes.NewBufferString(`{"n": 256, "seed": 9}`)
	resp, err := http.Post(ts.URL+"/run/quicksort?n=1&seed=1", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaPost runResponse
	if err := json.NewDecoder(resp.Body).Decode(&viaPost); err != nil {
		t.Fatal(err)
	}
	if viaPost.N != 256 || viaPost.Seed != 9 {
		t.Fatalf("body did not override query: %+v", viaPost.ServeResult)
	}
	if viaPost.Checksum != viaGet.Checksum {
		t.Fatalf("POST checksum %d != GET checksum %d", viaPost.Checksum, viaGet.Checksum)
	}

	// A body field overrides the query even when the query value is
	// malformed: the superseded value must never be parsed.
	resp, err = http.Post(ts.URL+"/run/quicksort?n=abc", "application/json",
		bytes.NewBufferString(`{"n": 256, "seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body override of malformed query: status %d, want 200", resp.StatusCode)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxN: map[string]int{"quicksort": 1000}})
	cases := []struct {
		path string
		want int
	}{
		{"/run/nosuch?n=10", http.StatusNotFound},
		{"/run/quicksort?n=abc", http.StatusBadRequest},
		{"/run/quicksort?n=-3", http.StatusBadRequest},
		{"/run/quicksort?n=0", http.StatusBadRequest},
		{"/run/quicksort?seed=zzz", http.StatusBadRequest},
		{"/run/quicksort?n=1001", http.StatusRequestEntityTooLarge},
		{"/run/quicksort?n=1000", http.StatusOK}, // cap is inclusive
	}
	for _, tc := range cases {
		if resp := getJSON(t, ts.URL+tc.path, nil); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2})
	// Occupy every queue slot so the next request must be shed.
	s.queue <- struct{}{}
	s.queue <- struct{}{}
	resp := getJSON(t, ts.URL+"/run/quicksort?n=100", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with a full queue, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	<-s.queue
	<-s.queue
	if resp := getJSON(t, ts.URL+"/run/quicksort?n=100", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after queue drained, want 200", resp.StatusCode)
	}
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	s.SetDraining(true)
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	s.SetDraining(false)
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain = %d, want 200", resp.StatusCode)
	}
}

func TestIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var idx struct {
		Workloads []string       `json:"workloads"`
		MaxN      map[string]int `json:"max_n"`
		Contexts  int            `json:"contexts"`
	}
	if resp := getJSON(t, ts.URL+"/", &idx); resp.StatusCode != http.StatusOK {
		t.Fatalf("index = %d, want 200", resp.StatusCode)
	}
	if len(idx.Workloads) != len(workloads.NativeNames()) || idx.Contexts != 4 {
		t.Fatalf("index = %+v", idx)
	}
	if idx.MaxN["quicksort"] != DefaultMaxN {
		t.Fatalf("default quicksort cap = %d, want %d", idx.MaxN["quicksort"], DefaultMaxN)
	}
	// Dijkstra's cost is superlinear in n, so its default cap is far
	// below the linear workloads'.
	if idx.MaxN["dijkstra"] >= idx.MaxN["quicksort"] {
		t.Fatalf("dijkstra cap %d not below quicksort cap %d", idx.MaxN["dijkstra"], idx.MaxN["quicksort"])
	}
}

func TestClientGoneBeforeDispatch(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client has already hung up
	req := httptest.NewRequest("GET", "/run/quicksort?n=100", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosed {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosed)
	}
	if got := s.eps["quicksort"].byCode[3].Load(); got != 1 { // index of 499
		t.Fatalf("499 count = %d, want 1", got)
	}
}

// metricLine matches one sample line of the Prometheus text format.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed metric line %q", line)
		}
		i := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

func TestMetrics(t *testing.T) {
	// Queue deeper than the burst: this test asserts exact 200 counts,
	// so nothing may be shed.
	_, ts := newTestServer(t, Config{QueueDepth: 64})
	// Drive every endpoint, plus one 404 and one 400.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, wl := range workloads.NativeNames() {
			wg.Add(1)
			go func(wl string, i int) {
				defer wg.Done()
				http.Get(fmt.Sprintf("%s/run/%s?n=400&seed=%d", ts.URL, wl, i))
			}(wl, i)
		}
	}
	wg.Wait()
	http.Get(ts.URL + "/run/nosuch")
	http.Get(ts.URL + "/run/lzw?n=bad")

	m := scrape(t, ts.URL)
	if m["capsule_probes_total"] <= 0 {
		t.Fatalf("capsule_probes_total = %v, want > 0", m["capsule_probes_total"])
	}
	if gr := m["capsule_grant_rate"]; gr <= 0 || gr > 1 {
		t.Fatalf("capsule_grant_rate = %v, want in (0,1]", gr)
	}
	if m["capsule_contexts"] != 4 {
		t.Fatalf("capsule_contexts = %v, want 4", m["capsule_contexts"])
	}
	if m["capserve_not_found_total"] != 1 {
		t.Fatalf("capserve_not_found_total = %v, want 1", m["capserve_not_found_total"])
	}
	if m[`capserve_requests_total{workload="lzw",code="400"}`] != 1 {
		t.Fatalf("lzw 400 count = %v, want 1", m[`capserve_requests_total{workload="lzw",code="400"}`])
	}
	for _, wl := range workloads.NativeNames() {
		ok := m[fmt.Sprintf(`capserve_requests_total{workload=%q,code="200"}`, wl)]
		if ok != 8 {
			t.Fatalf("%s 200 count = %v, want 8", wl, ok)
		}
		cnt := m[fmt.Sprintf(`capserve_request_duration_seconds_count{workload=%q}`, wl)]
		if cnt != 8 {
			t.Fatalf("%s histogram count = %v, want 8", wl, cnt)
		}
		inf := m[fmt.Sprintf(`capserve_request_duration_seconds_bucket{workload=%q,le="+Inf"}`, wl)]
		if inf != cnt {
			t.Fatalf("%s +Inf bucket = %v, want %v", wl, inf, cnt)
		}
		sum := m[fmt.Sprintf(`capserve_request_duration_seconds_sum{workload=%q}`, wl)]
		if sum <= 0 {
			t.Fatalf("%s histogram sum = %v, want > 0", wl, sum)
		}
	}
}

// TestHeadroomGauges asserts the instantaneous-capacity gauges a routing
// tier depends on: queue occupancy and free contexts, idle and mid-flight.
func TestHeadroomGauges(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8})
	m := scrape(t, ts.URL)
	if m["capserve_queue_occupancy"] != 0 {
		t.Fatalf("idle queue occupancy = %v, want 0", m["capserve_queue_occupancy"])
	}
	if m["capsule_free_contexts"] != 4 {
		t.Fatalf("idle free contexts = %v, want 4", m["capsule_free_contexts"])
	}
	if m["capserve_queue_in_flight"] != m["capserve_queue_occupancy"] {
		t.Fatalf("in_flight alias %v != occupancy %v", m["capserve_queue_in_flight"], m["capserve_queue_occupancy"])
	}
	// Hold two queue slots and two context tokens: both gauges must move.
	s.queue <- struct{}{}
	s.queue <- struct{}{}
	c1, _ := s.rt.Probe()
	c2, _ := s.rt.Probe()
	m = scrape(t, ts.URL)
	if m["capserve_queue_occupancy"] != 2 {
		t.Fatalf("occupancy = %v with 2 held slots, want 2", m["capserve_queue_occupancy"])
	}
	if m["capsule_free_contexts"] != 2 {
		t.Fatalf("free contexts = %v with 2 held tokens, want 2", m["capsule_free_contexts"])
	}
	s.rt.Release(c1)
	s.rt.Release(c2)
	<-s.queue
	<-s.queue
}

// TestHeadroomHeaders asserts every /run response advertises queue and
// context headroom — the credit feed the cluster router lives on.
func TestHeadroomHeaders(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8})
	resp := getJSON(t, ts.URL+"/run/quicksort?n=100", nil)
	free, err := strconv.Atoi(resp.Header.Get(HeaderQueueFree))
	if err != nil || free < 0 || free > 8 {
		t.Fatalf("%s = %q, want an int in [0,8]", HeaderQueueFree, resp.Header.Get(HeaderQueueFree))
	}
	if _, err := strconv.Atoi(resp.Header.Get(HeaderFreeContexts)); err != nil {
		t.Fatalf("%s = %q, want an int", HeaderFreeContexts, resp.Header.Get(HeaderFreeContexts))
	}
	// A shed carries the headers too (queue full → zero free slots): the
	// refusal itself tells the router to stop sending.
	for i := 0; i < 8; i++ {
		s.queue <- struct{}{}
	}
	resp = getJSON(t, ts.URL+"/run/quicksort?n=100", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with full queue, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderQueueFree); got != "0" {
		t.Fatalf("shed %s = %q, want 0", HeaderQueueFree, got)
	}
	for i := 0; i < 8; i++ {
		<-s.queue
	}
}

// TestDrainingNeverShedsAdmitted is the draining race: SetDraining
// flipped while requests are mid-flight must never turn an
// already-admitted request into a 503 — draining only gates /healthz,
// admission itself is the queue's job.
func TestDrainingNeverShedsAdmitted(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 2, Throttle: true})
	s, ts := newTestServer(t, Config{Runtime: rt, QueueDepth: 64})
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		var bad atomic.Int64
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Get(fmt.Sprintf("%s/run/dijkstra?n=1500&seed=%d", ts.URL, i))
				if err != nil {
					bad.Add(1)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}(i)
		}
		// Wait until at least one request holds a queue slot, then flip
		// draining mid-flight, both ways.
		for len(s.queue) == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		s.SetDraining(true)
		if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz = %d while draining, want 503", resp.StatusCode)
		}
		s.SetDraining(false)
		wg.Wait()
		if bad.Load() != 0 {
			t.Fatalf("round %d: %d admitted requests failed across a draining flip", round, bad.Load())
		}
	}
}

// TestBackendCloseDrains covers the in-process backend's shutdown order:
// an in-flight request admitted before Close completes with 200, Close
// returns clean, and the listener only refuses connections afterwards.
func TestBackendCloseDrains(t *testing.T) {
	b, err := StartBackend(Config{Runtime: capsule.New(capsule.Config{Contexts: 2, Throttle: true}), QueueDepth: 8})
	if err != nil {
		t.Fatalf("StartBackend: %v", err)
	}
	// /healthz flips to 503 the moment draining is set, while the
	// listener is still accepting: the balancer sees the drain first.
	b.Server.SetDraining(true)
	if resp := getJSON(t, b.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	b.Server.SetDraining(false)

	slow := make(chan int, 1)
	go func() {
		resp, err := http.Get(b.URL + "/run/dijkstra?n=2500&seed=1")
		if err != nil {
			slow <- 0
			return
		}
		resp.Body.Close()
		slow <- resp.StatusCode
	}()
	for len(b.Server.queue) == 0 { // admitted?
		time.Sleep(50 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if code := <-slow; code != http.StatusOK {
		t.Fatalf("request admitted before Close finished with %d, want 200", code)
	}
	if _, err := http.Get(b.URL + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Close")
	}
	if err := b.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentLoadSharesRuntime is the in-process smoke of the serving
// claim: many concurrent requests across all endpoints on one shared
// runtime, every response 200 or 503 (shed), never anything else, and the
// runtime's pool intact afterwards.
func TestConcurrentLoadSharesRuntime(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 4, Throttle: true})
	_, ts := newTestServer(t, Config{Runtime: rt, QueueDepth: 2})
	var wg sync.WaitGroup
	var ok200, shed503, other atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl := workloads.NativeNames()[i%4]
			resp, err := http.Get(fmt.Sprintf("%s/run/%s?n=500&seed=%d", ts.URL, wl, i%8))
			if err != nil {
				other.Add(1)
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusServiceUnavailable:
				shed503.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 503", other.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no successful responses under concurrent load")
	}
	rt.Join()
	time.Sleep(time.Millisecond) // let the 100µs death window drain
	// Pool integrity after the burst.
	var held []*capsule.Context
	for i := 0; i < 4; i++ {
		if c, ok := rt.Probe(); ok {
			held = append(held, c)
		}
	}
	if len(held) != 4 {
		t.Fatalf("pool holds %d tokens after load, want 4", len(held))
	}
	for _, c := range held {
		rt.Release(c)
	}
}
