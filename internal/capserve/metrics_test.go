package capserve

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le-inclusive bucketing of the
// integer-nanosecond observe path: an observation exactly on a bound
// lands in that bound's bucket, one past it spills to the next, and
// everything beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)          // == bucket 0 bound: le inclusive
	h.Observe(100*time.Microsecond + 1)        // just past: bucket 1
	h.Observe(time.Nanosecond)                 // far below: bucket 0
	h.Observe(5 * time.Second)                 // == last bound: bucket 14
	h.Observe(5*time.Second + time.Nanosecond) // beyond: +Inf slot
	want := map[int]uint64{0: 2, 1: 1, 14: 1, 15: 1}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	wantSum := int64(100*time.Microsecond) + int64(100*time.Microsecond+1) + 1 +
		int64(5*time.Second) + int64(5*time.Second+time.Nanosecond)
	if got := h.sumNS.Load(); got != wantSum {
		t.Fatalf("sumNS = %d, want %d", got, wantSum)
	}

	// The rendered exposition keeps the Prometheus invariant: _count
	// equals the +Inf cumulative.
	var sb strings.Builder
	h.Write(&sb, "x", `workload="w"`)
	out := sb.String()
	if !strings.Contains(out, `x_bucket{workload="w",le="+Inf"} 5`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `x_count{workload="w"} 5`) {
		t.Fatalf("_count wrong:\n%s", out)
	}
	if !strings.Contains(out, `x_bucket{workload="w",le="0.0001"} 2`) {
		t.Fatalf("first bucket cumulative wrong:\n%s", out)
	}
}

// TestHistogramObserveAllocFree locks in that recording a latency costs
// no allocation (and, by construction, no lock): the serving layer's
// measurement must not become the contention point the runtime rewrite
// just removed.
func TestHistogramObserveAllocFree(t *testing.T) {
	var h Histogram
	if got := testing.AllocsPerRun(1000, func() {
		h.Observe(314 * time.Microsecond)
	}); got != 0 {
		t.Fatalf("observe allocs/op = %v, want 0", got)
	}
}

// TestNSBoundsMatchSecondsBounds keeps the integer bounds in lockstep
// with the float bounds the exposition renders.
func TestNSBoundsMatchSecondsBounds(t *testing.T) {
	if len(latencyBucketsNS) != len(latencyBuckets) {
		t.Fatal("bucket bound arrays diverged in length")
	}
	for i, s := range latencyBuckets {
		if got, want := latencyBucketsNS[i], int64(s*1e9); got != want {
			t.Fatalf("bound %d: ns = %d, want %d", i, got, want)
		}
	}
}
