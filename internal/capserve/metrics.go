package capserve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
)

// Hand-rolled Prometheus text exposition (format version 0.0.4). The
// container forbids new dependencies, and the surface we need — counters,
// gauges and one fixed-bucket histogram family — is small enough that a
// client library would be mostly dead weight anyway.

// latencyBuckets are the histogram upper bounds in seconds, log-spaced
// from 100µs to 5s; observations beyond the last bound land in +Inf.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// latencyBucketsNS are the same bounds in integer nanoseconds: the
// observation path compares the duration directly against them, so
// recording a latency is pure integer work — no float conversion, no
// binary-search call, no lock — and cannot re-serialize the request path
// the runtime just de-serialized.
var latencyBucketsNS = func() [15]int64 {
	var ns [15]int64
	for i, s := range latencyBuckets {
		ns[i] = int64(s * 1e9)
	}
	return ns
}()

// Histogram is a fixed-bucket latency histogram with atomic counters.
// counts[i] is the number of observations in bucket i (NOT cumulative;
// cumulation happens at write time, as the text format requires), with
// the final slot holding the +Inf overflow. Observe is two atomic adds:
// safe for any number of concurrent request goroutines, allocation-free,
// and mutex-free. Exported because it is the repo's one histogram
// implementation: capcluster reuses it for its per-backend dispatch
// durations rather than growing a second copy of the bucket logic.
type Histogram struct {
	counts [16]atomic.Uint64 // len(latencyBuckets)+1
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < len(latencyBucketsNS) && ns > latencyBucketsNS[i] {
		i++ // first bound >= ns: le is inclusive, as Prometheus requires
	}
	h.counts[i].Add(1)
	h.sumNS.Add(ns)
}

// Write emits the _bucket/_sum/_count series for one labelled histogram.
// _count is the +Inf cumulative rather than a separate load of h.n, so a
// scrape racing live observations can never emit a _count that disagrees
// with the buckets (the Prometheus histogram invariant).
func (h *Histogram) Write(w io.Writer, name, labels string) {
	var cum uint64
	for i, le := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, le, cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
}

// statusClientClosed is nginx's convention for "client closed the
// request before the server dispatched it" — not in net/http's table,
// but the useful distinction here is between work the server refused
// (503) and work the client abandoned.
const statusClientClosed = 499

// statusCodes are the per-endpoint response codes the server can produce
// for a dispatched request (queue sheds are counted server-wide too).
var statusCodes = []int{200, 400, 413, 499, 500, 503}

// endpoint holds one workload's serving counters.
type endpoint struct {
	byCode   [6]atomic.Uint64 // parallel to statusCodes
	degraded atomic.Uint64    // requests run on the Sequential domain
	latency  Histogram        // 2xx request durations
}

func (e *endpoint) inc(code int) {
	for i, c := range statusCodes {
		if c == code {
			e.byCode[i].Add(1)
			return
		}
	}
	// Unknown codes fold into 500: the server only writes codes from
	// statusCodes, so this is a belt-and-braces path.
	e.byCode[4].Add(1)
}

// WriteMetrics renders the server's Prometheus exposition to w. It is
// what /metrics serves, exported for embedders (caprouter mounts a Server
// as its local fallback tier and publishes these series on its own
// /metrics next to the caprouter_* ones).
func (s *Server) WriteMetrics(w io.Writer) { s.writeMetrics(w) }

// writeMetrics renders the full exposition: the shared runtime's Stats
// (the paper's counters, now serving observables) followed by the
// per-endpoint serving counters and latency histograms.
func (s *Server) writeMetrics(w io.Writer) {
	st := s.rt.Stats()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counterHead := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	counter := func(name, help string, v uint64) {
		counterHead(name, help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}

	gauge("capsule_contexts", "Context-token pool size (the SOMT hardware context count).", float64(s.rt.Contexts()))
	counter("capsule_probes_total", "Division probes (nthr attempts).", st.Probes)
	counter("capsule_granted_total", "Probes that reserved a context token.", st.Granted)
	counterHead("capsule_denies_total", "Refused probes by reason.")
	fmt.Fprintf(w, "capsule_denies_total{reason=\"no_ctx\"} %d\n", st.NoCtxDenies)
	fmt.Fprintf(w, "capsule_denies_total{reason=\"throttle\"} %d\n", st.ThrottleDenies)
	counter("capsule_inline_runs_total", "Divide offers run inline after refusal.", st.InlineRuns)
	counter("capsule_deaths_total", "Worker terminations (kthr).", st.Deaths)
	counter("capsule_workers_total", "Workers ever spawned.", st.TotalWorkers)
	gauge("capsule_workers_peak", "Maximum simultaneously live workers.", float64(st.PeakWorkers))
	counter("capsule_lock_acquires_total", "Lock-table acquisitions (mlock).", st.LockAcquires)
	gauge("capsule_grant_rate", "Fraction of probes granted (the paper's \"% divisions allowed\").", st.GrantRate())

	// Headroom gauges: the instantaneous free capacity a routing tier
	// (caprouter) treats as this backend's credits. Cumulative counters
	// tell an operator what happened; these two say what the server could
	// absorb right now.
	gauge("capsule_free_contexts", "Currently unreserved context tokens (instantaneous division headroom).", float64(s.rt.FreeContexts()))

	// Sharded-pool internals (PR 5), per shard. Attribution is by the
	// prober's home shard: a shard's steals are grants its probers took
	// from elsewhere, so a hot shard here means probers homed there are
	// outrunning their local free list.
	shards := s.rt.ShardCounterSnapshot()
	counterHead("capsule_shard_local_hits_total", "Grants served by the prober's home shard.")
	for i := range shards {
		fmt.Fprintf(w, "capsule_shard_local_hits_total{shard=\"%d\"} %d\n", i, shards[i].LocalHits)
	}
	counterHead("capsule_shard_steals_total", "Grants that stole a token from another shard after a local miss.")
	for i := range shards {
		fmt.Fprintf(w, "capsule_shard_steals_total{shard=\"%d\"} %d\n", i, shards[i].Steals)
	}
	counterHead("capsule_shard_full_sweeps_total", "Refusals reached only after sweeping every shard empty.")
	for i := range shards {
		fmt.Fprintf(w, "capsule_shard_full_sweeps_total{shard=\"%d\"} %d\n", i, shards[i].FullSweeps)
	}
	fmt.Fprintf(w, "# HELP capsule_shard_free Free tokens currently in each pool shard.\n# TYPE capsule_shard_free gauge\n")
	for i := range shards {
		fmt.Fprintf(w, "capsule_shard_free{shard=\"%d\"} %d\n", i, shards[i].Free)
	}

	gauge("capserve_uptime_seconds", "Seconds since the server was built.", time.Since(s.start).Seconds())
	gauge("capserve_queue_depth", "Bounded accept-queue capacity.", float64(cap(s.queue)))
	gauge("capserve_queue_occupancy", "Requests currently holding an accept-queue slot.", float64(len(s.queue)))
	gauge("capserve_queue_in_flight", "Requests currently holding a queue slot (alias of capserve_queue_occupancy, kept for older dashboards).", float64(len(s.queue)))
	counter("capserve_shed_total", "Requests shed with 503 because the accept queue was full.", s.shed.Load())
	counter("capserve_not_found_total", "Requests for unknown workloads.", s.notFound.Load())

	counterHead("capserve_requests_total", "Completed requests by workload and status code.")
	for _, wl := range s.workloads {
		ep := s.eps[wl]
		for i, code := range statusCodes {
			fmt.Fprintf(w, "capserve_requests_total{workload=%q,code=\"%d\"} %d\n", wl, code, ep.byCode[i].Load())
		}
	}
	counterHead("capserve_degraded_total", "Requests admitted without a free context and run sequentially.")
	for _, wl := range s.workloads {
		fmt.Fprintf(w, "capserve_degraded_total{workload=%q} %d\n", wl, s.eps[wl].degraded.Load())
	}
	fmt.Fprintf(w, "# HELP capserve_request_duration_seconds Successful request duration.\n")
	fmt.Fprintf(w, "# TYPE capserve_request_duration_seconds histogram\n")
	for _, wl := range s.workloads {
		s.eps[wl].latency.Write(w, "capserve_request_duration_seconds", fmt.Sprintf("workload=%q", wl))
	}

	bi := buildinfo.Get()
	fmt.Fprintf(w, "# HELP capserve_build_info Build metadata; the value is always 1.\n# TYPE capserve_build_info gauge\n")
	fmt.Fprintf(w, "capserve_build_info{version=%q,go=%q,gomaxprocs=\"%d\"} 1\n", bi.Version, bi.Go, bi.MaxProcs)

	for _, f := range s.extraMetrics {
		f(w)
	}
}
