package capserve

// Tests for the serving-tier trace plumbing: a client-supplied
// X-Capsule-Trace-ID survives to the response and to the tracer's rings
// (the ISSUE's header-survival requirement), injected context identity
// wins over headers, sampling stays off the unsampled path, the
// /debug/trace endpoint round-trips snapshots, and the new
// capsule_shard_* series round-trip through promtext.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/capsule"
	"repro/internal/captrace"
	"repro/internal/promtext"
)

func newTracedServer(t *testing.T, sample int) (*Server, *httptest.Server, *captrace.Tracer) {
	t.Helper()
	// Rings big enough that one divide-heavy request (hundreds of probe
	// events) can't overwrite its own admit event mid-test.
	tr := captrace.New(2, 4096)
	rt := capsule.New(capsule.Config{Contexts: 4, Throttle: true, Tracer: tr})
	t.Cleanup(rt.Close)
	s, ts := newTestServer(t, Config{Runtime: rt, TraceSample: sample})
	return s, ts, tr
}

// TestTraceIDSurvivesToResponse: the exact ID a client stamps comes back
// on the response, and the request's full lifecycle — serving events AND
// the runtime events of its division group — lands in the tracer under
// that ID.
func TestTraceIDSurvivesToResponse(t *testing.T) {
	_, ts, tr := newTracedServer(t, 1<<30) // sampling ~never: only adoption can trace
	const id = "00c0ffee00c0ffee"

	req, _ := http.NewRequest("GET", ts.URL+"/run/quicksort?n=2000&seed=7", nil)
	req.Header.Set(captrace.HeaderTraceID, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(captrace.HeaderTraceID); got != id {
		t.Fatalf("response trace ID = %q, want %q", got, id)
	}

	tid, err := captrace.ParseID(id)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[captrace.Kind]int{}
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID == tid {
			kinds[ev.Kind]++
		}
	}
	if kinds[captrace.KReqAdmit] != 1 || kinds[captrace.KReqDone] != 1 {
		t.Fatalf("serving events = %v, want one admit and one done", kinds)
	}
	// The workload divides (or at least offers): the group must have
	// tagged runtime events with the same ID.
	runtime := kinds[captrace.KProbeGranted] + kinds[captrace.KProbeDenied] + kinds[captrace.KDivideInline]
	if runtime == 0 {
		t.Fatalf("no runtime events under the request's trace ID: %v", kinds)
	}
}

// TestTraceContextInjectionWins: an identity placed in the request
// context (the router's in-process fallback path) overrides the header.
func TestTraceContextInjectionWins(t *testing.T) {
	s, _, tr := newTracedServer(t, 1<<30)
	const injected, header = uint64(0x1111), "00000000deadbeef"

	req := httptest.NewRequest("GET", "/run/quicksort?n=500", nil)
	req.Header.Set(captrace.HeaderTraceID, header)
	req = req.WithContext(captrace.WithRequest(req.Context(), injected, true))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(captrace.HeaderTraceID); got != captrace.FormatID(injected) {
		t.Fatalf("response ID = %q, want the injected %q", got, captrace.FormatID(injected))
	}
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID == 0xdeadbeef {
			t.Fatalf("header ID was traced despite context injection: %+v", ev)
		}
	}

	// An injected identity with traced=false records nothing but still
	// echoes its ID.
	req = httptest.NewRequest("GET", "/run/quicksort?n=500", nil)
	req = req.WithContext(captrace.WithRequest(req.Context(), 0x2222, false))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get(captrace.HeaderTraceID); got != captrace.FormatID(0x2222) {
		t.Fatalf("unsampled injected ID not echoed: %q", got)
	}
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID == 0x2222 {
			t.Fatalf("untraced injected identity recorded an event: %+v", ev)
		}
	}
}

// TestTraceDisabled: with no tracer anywhere, no ID is minted, no header
// echoed, and /debug/trace 404s.
func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := getJSON(t, ts.URL+"/run/quicksort?n=500", nil)
	if got := resp.Header.Get(captrace.HeaderTraceID); got != "" {
		t.Fatalf("untraced server echoed an ID: %q", got)
	}
	resp = getJSON(t, ts.URL+"/debug/trace", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace on an untraced server = %d, want 404", resp.StatusCode)
	}
}

// TestDebugTraceEndpoint: the endpoint serves a decodable snapshot whose
// n cap works, with the configured source stamped on it.
func TestDebugTraceEndpoint(t *testing.T) {
	tr := captrace.New(1, 64)
	rt := capsule.New(capsule.Config{Contexts: 2, Tracer: tr})
	t.Cleanup(rt.Close)
	_, ts := newTestServer(t, Config{Runtime: rt, TraceSample: 1, TraceSource: "backend-7"})

	for i := 0; i < 3; i++ {
		getJSON(t, fmt.Sprintf("%s/run/quicksort?n=500&seed=%d", ts.URL, i), nil)
	}
	var snap captrace.Snapshot
	if resp := getJSON(t, ts.URL+"/debug/trace", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if snap.Source != "backend-7" {
		t.Fatalf("snapshot source = %q, want backend-7", snap.Source)
	}
	if len(snap.Events) == 0 || len(snap.Shards) != 1 {
		t.Fatalf("empty snapshot after traced requests: %d events, %d shards", len(snap.Events), len(snap.Shards))
	}
	for _, ev := range snap.Events {
		if ev.Source != "backend-7" {
			t.Fatalf("event source = %q", ev.Source)
		}
	}

	var capped captrace.Snapshot
	getJSON(t, ts.URL+"/debug/trace?n=2", &capped)
	if len(capped.Events) != 2 {
		t.Fatalf("n=2 returned %d events", len(capped.Events))
	}
	if resp := getJSON(t, ts.URL+"/debug/trace?n=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", resp.StatusCode)
	}
}

// TestShardSeriesPromtextRoundTrip: the capsule_shard_* series parse
// back through promtext and agree with the runtime's own accounting.
func TestShardSeriesPromtextRoundTrip(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 4, PoolShards: 2})
	t.Cleanup(rt.Close)
	s, ts := newTestServer(t, Config{Runtime: rt})

	getJSON(t, ts.URL+"/run/quicksort?n=5000", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := promtext.Parse(body)

	st := s.Runtime().Stats()
	sum := func(name string) (total float64) {
		found := false
		for i := 0; i < 2; i++ {
			v, ok := samples[fmt.Sprintf("%s{shard=\"%d\"}", name, i)]
			if ok {
				found = true
			}
			total += v
		}
		if !found {
			t.Fatalf("no %s series in exposition", name)
		}
		return total
	}
	if got := sum("capsule_shard_local_hits_total"); uint64(got) != st.ShardLocalHits {
		t.Errorf("local hits: exposition %v, stats %d", got, st.ShardLocalHits)
	}
	if got := sum("capsule_shard_steals_total"); uint64(got) != st.ShardSteals {
		t.Errorf("steals: exposition %v, stats %d", got, st.ShardSteals)
	}
	if got := sum("capsule_shard_full_sweeps_total"); uint64(got) != st.ShardFullSweeps {
		t.Errorf("full sweeps: exposition %v, stats %d", got, st.ShardFullSweeps)
	}
	if got := sum("capsule_shard_free"); int(got) != rt.FreeContexts() {
		t.Errorf("shard free sum %v != FreeContexts %d", got, rt.FreeContexts())
	}
	if st.ShardLocalHits+st.ShardSteals != st.Granted {
		t.Errorf("identity broken: local %d + steals %d != granted %d",
			st.ShardLocalHits, st.ShardSteals, st.Granted)
	}
	// LabelValue agrees on the label set promtext produced.
	for key := range samples {
		if v, ok := promtext.LabelValue(key, "capsule_shard_steals_total", "shard"); ok && v != "0" && v != "1" {
			t.Errorf("unexpected shard label %q in %q", v, key)
		}
	}
}

// TestShedTraced: a shed carries the client's trace ID on its 503 and
// records a KReqShed event.
func TestShedTraced(t *testing.T) {
	tr := captrace.New(1, 64)
	rt := capsule.New(capsule.Config{Contexts: 2, Tracer: tr})
	t.Cleanup(rt.Close)
	s, err := New(Config{Runtime: rt, QueueDepth: 1, TraceSample: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	s.queue <- struct{}{} // fill the queue by hand: the next request sheds

	const id = "0000000000005bed"
	req := httptest.NewRequest("GET", "/run/quicksort?n=100", nil)
	req.Header.Set(captrace.HeaderTraceID, id)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get(captrace.HeaderTraceID); got != id {
		t.Fatalf("shed response ID = %q, want %q", got, id)
	}
	tid, _ := captrace.ParseID(id)
	found := false
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID == tid && ev.Kind == captrace.KReqShed {
			found = true
		}
	}
	if !found {
		t.Fatal("shed not recorded against the client's trace ID")
	}
}

// TestTraceSnapshotBodyIsJSON pins the endpoint's content type and the
// decodability of its raw body (what cmd/captrace ingests).
func TestTraceSnapshotBodyIsJSON(t *testing.T) {
	_, ts, _ := newTracedServer(t, 1)
	getJSON(t, ts.URL+"/run/lzw?n=800", nil)
	resp, err := http.Get(ts.URL + "/debug/trace?n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var snap captrace.Snapshot
	if err := json.NewDecoder(bytes.NewReader(body)).Decode(&snap); err != nil {
		t.Fatalf("snapshot body undecodable: %v\n%s", err, body)
	}
}
