package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/emu"
)

// Cross-validation: randomly generated CapC programs must produce identical
// architectural output on the functional golden model, the superscalar
// timing machine and the SOMT timing machine. This is the simulator's
// equivalence safety net: the timing model may change *when* things happen
// but never *what* happens.

// genRandomProgram emits a random but well-defined CapC program: a chain of
// arithmetic on locals and a global array, a loop, a helper call and a
// locked worker accumulation.
func genRandomProgram(rng *rand.Rand) string {
	n := 4 + rng.Intn(12)
	ops := []string{"+", "-", "*", "|", "&", "^"}
	expr := "a"
	for i := 0; i < 3+rng.Intn(4); i++ {
		expr = fmt.Sprintf("(%s %s %d)", expr, ops[rng.Intn(len(ops))], rng.Intn(97)+1)
	}
	spawn := rng.Intn(3) + 1
	return fmt.Sprintf(`
var arr[%d];
var acc;

func mix(a) {
	return %s;
}

worker w(v) {
	lock(&acc);
	acc = acc + mix(v);
	unlock(&acc);
	return 0;
}

func main() {
	var i;
	for (i = 0; i < %d; i = i + 1) {
		arr[i] = mix(i * 3);
	}
	var s = 0;
	for (i = 0; i < %d; i = i + 1) {
		if (arr[i] %% 2 == 0) { s = s + arr[i]; } else { s = s - arr[i]; }
	}
	print(s);
	for (i = 0; i < %d; i = i + 1) {
		coworker w(i + 1);
	}
	join();
	print(acc);
}
`, n, expr, n, n, spawn)
}

func TestCrossValidationRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		src := genRandomProgram(rng)
		b, err := BuildCapC(fmt.Sprintf("xval%d", trial), src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		// Golden model.
		fm := emu.NewMachine(b.Program, 8)
		if err := fm.Run(100_000_000); err != nil {
			t.Fatalf("trial %d functional: %v", trial, err)
		}
		// Timing machines.
		for _, cfg := range []cpu.Config{cpu.SuperscalarConfig(), cpu.SOMTConfig(), cpu.SMTStaticConfig()} {
			res, err := RunTiming(b.Program, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.Name, err)
			}
			got := res.UserOutput()
			if len(got) != len(fm.Output) {
				t.Fatalf("trial %d %s: output %v vs golden %v", trial, cfg.Name, got, fm.Output)
			}
			for i := range got {
				if got[i] != fm.Output[i] {
					t.Fatalf("trial %d %s: output[%d]=%d vs golden %d",
						trial, cfg.Name, i, got[i], fm.Output[i])
				}
			}
		}
	}
}

// TestCrossValidationDeterminism: the timing simulator itself must be fully
// deterministic — identical runs produce identical cycle counts and stats.
func TestCrossValidationDeterminism(t *testing.T) {
	src := genRandomProgram(rand.New(rand.NewSource(7)))
	b, err := BuildCapC("det", src)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunTiming(b.Program, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTiming(b.Program, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("nondeterministic cycles: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Stats.DivGranted != r2.Stats.DivGranted || r1.Stats.Insts != r2.Stats.Insts {
		t.Fatalf("nondeterministic stats: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

// TestSectionMarkers exercises the section-cycle accounting used by Fig. 8.
func TestSectionMarkers(t *testing.T) {
	src := fmt.Sprintf(`
const START = %d;
const END = %d;
func spin(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
func main() {
	spin(50);
	print(START);
	spin(3000);
	print(END);
	spin(50);
	print(7);
}
`, MarkSectionStart, MarkSectionEnd)
	b, err := BuildCapC("sections", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTiming(b.Program, cpu.SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	sec, err := res.SectionCycles()
	if err != nil {
		t.Fatal(err)
	}
	if sec == 0 || sec >= res.Cycles {
		t.Fatalf("section = %d of %d", sec, res.Cycles)
	}
	// The 3000-iteration section should dominate the two 50-iteration tails.
	if float64(sec) < 0.5*float64(res.Cycles) {
		t.Fatalf("section %d suspiciously small of %d", sec, res.Cycles)
	}
	if got := res.UserOutput(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("user output = %v", got)
	}
}

// TestSectionMarkerErrors covers malformed marker sequences.
func TestSectionMarkerErrors(t *testing.T) {
	mk := func(vals ...int64) *RunResult {
		cycles := make([]uint64, len(vals))
		for i := range cycles {
			cycles[i] = uint64(i * 10)
		}
		return &RunResult{Output: vals, OutputCycles: cycles}
	}
	if _, err := mk(MarkSectionStart, MarkSectionStart).SectionCycles(); err == nil {
		t.Fatal("nested start accepted")
	}
	if _, err := mk(MarkSectionEnd).SectionCycles(); err == nil {
		t.Fatal("end without start accepted")
	}
	if _, err := mk(MarkSectionStart).SectionCycles(); err == nil {
		t.Fatal("unterminated section accepted")
	}
	if s, err := mk(MarkSectionStart, MarkSectionEnd, MarkSectionStart, MarkSectionEnd).SectionCycles(); err != nil || s != 20 {
		t.Fatalf("two sections: %d, %v", s, err)
	}
}

// TestImagePatchErrors covers input injection failure modes.
func TestImagePatchErrors(t *testing.T) {
	b, err := BuildCapC("img", `var a[2]; func main() { print(a[0]); }`)
	if err != nil {
		t.Fatal(err)
	}
	im := NewImage(b.Program)
	if err := im.SetWord("g_a", 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := im.SetWord("g_a", 99, 5); err == nil {
		t.Fatal("out-of-range patch accepted")
	}
	if err := im.SetWord("g_missing", 0, 5); err == nil {
		t.Fatal("unknown symbol accepted")
	}
	if err := im.SetByte("g_a", 3, 0xFF); err != nil {
		t.Fatal(err)
	}
	// Patching must not affect the original program's data.
	im2 := NewImage(b.Program)
	res, err := RunTiming(im2.Program(), cpu.SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.UserOutput()[0] != 0 {
		t.Fatalf("base image polluted: %v", res.UserOutput())
	}
}
