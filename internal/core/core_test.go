package core

import (
	"testing"

	"repro/internal/emu"
)

// runCapC builds a CapC program and runs it on the functional machine.
func runCapC(t *testing.T, src string, maxThreads int) *emu.Machine {
	t.Helper()
	b, err := BuildCapC("test", src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := emu.NewMachine(b.Program, maxThreads)
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestHelloArithmetic(t *testing.T) {
	m := runCapC(t, `
func main() {
	var x = 6;
	var y = 7;
	print(x * y);
}`, 1)
	if len(m.Output) != 1 || m.Output[0] != 42 {
		t.Fatalf("output = %v", m.Output)
	}
}

func TestControlFlow(t *testing.T) {
	m := runCapC(t, `
func main() {
	var sum = 0;
	var i;
	for (i = 1; i <= 10; i = i + 1) {
		if (i % 2 == 0) { sum = sum + i; }
	}
	while (sum > 25) { sum = sum - 1; }
	print(sum);
}`, 1)
	if m.Output[0] != 25 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	m := runCapC(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(12)); }`, 1)
	if m.Output[0] != 144 {
		t.Fatalf("fib(12) = %v", m.Output)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	m := runCapC(t, `
var total = 100;
var arr[8];
func main() {
	var i;
	for (i = 0; i < 8; i = i + 1) { arr[i] = i * i; }
	total = total + arr[7];
	print(total);
	print(arr[3]);
}`, 1)
	if m.Output[0] != 149 || m.Output[1] != 9 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestPointersAndAlloc(t *testing.T) {
	m := runCapC(t, `
func main() {
	var p = alloc(4);
	p[0] = 11;
	p[1] = 22;
	var q = alloc(2);
	q[0] = p[0] + p[1];
	print(*q);
	print(q > p);
}`, 1)
	if m.Output[0] != 33 || m.Output[1] != 1 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestAddressOfGlobal(t *testing.T) {
	m := runCapC(t, `
var g = 5;
func bump(p) { *p = *p + 1; }
func main() {
	bump(&g);
	bump(&g);
	print(g);
}`, 1)
	if m.Output[0] != 7 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestByteBuiltins(t *testing.T) {
	m := runCapC(t, `
func main() {
	var p = alloc(1);
	storeb(p, 65);
	storeb(p + 1, 66);
	print(loadb(p));
	print(loadb(p + 1));
}`, 1)
	if m.Output[0] != 65 || m.Output[1] != 66 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestFloatIntrinsics(t *testing.T) {
	m := runCapC(t, `
func main() {
	var a = itof(9);
	var b = fsqrt(a);
	print(ftoi(b));
	var c = fdiv(itof(1), itof(4));
	print(ftoi(fmul(c, itof(100))));
	print(fltf(c, itof(1)));
}`, 1)
	if m.Output[0] != 3 || m.Output[1] != 25 || m.Output[2] != 1 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestShortCircuit(t *testing.T) {
	m := runCapC(t, `
var calls = 0;
func side() { calls = calls + 1; return 1; }
func main() {
	var a = 0 && side();
	var b = 1 || side();
	print(calls);
	print(a);
	print(b);
	var c = 1 && side();
	print(calls);
	print(c);
}`, 1)
	want := []int64{0, 0, 1, 1, 1}
	for i, w := range want {
		if m.Output[i] != w {
			t.Fatalf("output = %v; want %v", m.Output, want)
		}
	}
}

func TestLogicalAndComparisons(t *testing.T) {
	m := runCapC(t, `
func main() {
	print(3 < 4);
	print(4 <= 4);
	print(5 > 6);
	print(6 >= 7);
	print(8 == 8);
	print(8 != 8);
	print(!0);
	print(!7);
	print(-(3 - 5));
	print(~0);
	print(1 << 4);
	print(-16 >> 2);
}`, 1)
	want := []int64{1, 1, 0, 0, 1, 0, 1, 0, 2, -1, 16, -4}
	for i, w := range want {
		if m.Output[i] != w {
			t.Fatalf("output[%d] = %d; want %d (all: %v)", i, m.Output[i], w, m.Output)
		}
	}
}

func TestCoworkerDivides(t *testing.T) {
	m := runCapC(t, `
var acc;
worker w(v) {
	lock(&acc);
	acc = acc + v;
	unlock(&acc);
}
func main() {
	coworker w(10);
	coworker w(20);
	w(3);
	join();
	print(acc);
}`, 8)
	if m.Output[0] != 33 {
		t.Fatalf("acc = %v", m.Output)
	}
	if m.DivGranted != 2 {
		t.Fatalf("granted = %d", m.DivGranted)
	}
}

func TestCoworkerSequentialFallback(t *testing.T) {
	// maxThreads=1 denies every division; the sequential path must produce
	// identical results.
	m := runCapC(t, `
var acc;
worker w(v) {
	lock(&acc);
	acc = acc + v;
	unlock(&acc);
}
func main() {
	coworker w(10);
	coworker w(20);
	join();
	print(acc);
}`, 1)
	if m.Output[0] != 30 {
		t.Fatalf("acc = %v", m.Output)
	}
	if m.DivGranted != 0 || m.DivDenied != 2 {
		t.Fatalf("granted=%d denied=%d", m.DivGranted, m.DivDenied)
	}
}

func TestRecursiveWorkerTree(t *testing.T) {
	// A divide-and-conquer sum over [lo,hi): workers divide at each split
	// when resources allow, with lock-protected accumulation.
	src := `
var acc;
worker sum(lo, hi) {
	if (hi - lo <= 4) {
		var s = 0;
		var i;
		for (i = lo; i < hi; i = i + 1) { s = s + i; }
		lock(&acc);
		acc = acc + s;
		unlock(&acc);
		return 0;
	}
	var mid = (lo + hi) / 2;
	coworker sum(lo, mid);
	sum(mid, hi);
	return 0;
}
func main() {
	sum(0, 100);
	join();
	print(acc);
}`
	for _, threads := range []int{1, 2, 8, 24} {
		m := runCapC(t, src, threads)
		if m.Output[0] != 4950 {
			t.Fatalf("threads=%d acc=%v", threads, m.Output)
		}
	}
}

func TestCoworkerElseCustomFallback(t *testing.T) {
	// The probe-failure branch is user-defined (paper: "the user writes
	// what happens if the probe fails"). Here failure takes a cheaper
	// approximation instead of the full work.
	src := `
var full;
var approx;
worker w(v) {
	lock(&full);
	full = full + v;
	unlock(&full);
}
func main() {
	coworker w(10) else { approx = approx + 1; }
	coworker w(10) else { approx = approx + 1; }
	join();
	print(full);
	print(approx);
}`
	granted := runCapC(t, src, 8)
	if granted.Output[0] != 20 || granted.Output[1] != 0 {
		t.Fatalf("granted run output = %v", granted.Output)
	}
	denied := runCapC(t, src, 1)
	if denied.Output[0] != 0 || denied.Output[1] != 2 {
		t.Fatalf("denied run output = %v", denied.Output)
	}
}

func TestTcntBuiltin(t *testing.T) {
	m := runCapC(t, `
worker w() {
	var spin = 0;
	while (spin < 50) { spin = spin + 1; }
}
func main() {
	print(tcnt());
	coworker w();
	join();
	print(tcnt());
}`, 8)
	if m.Output[0] != 1 || m.Output[len(m.Output)-1] != 1 {
		t.Fatalf("tcnt output = %v", m.Output)
	}
}

func TestStackPoolReuse(t *testing.T) {
	// Spawn far more workers over time than the pool holds; stacks must be
	// recycled via __cap_stack_put.
	m := runCapC(t, `
var acc;
worker w(v) {
	lock(&acc);
	acc = acc + v;
	unlock(&acc);
}
func main() {
	var i;
	for (i = 0; i < 200; i = i + 1) {
		coworker w(1);
	}
	join();
	print(acc);
}`, 6)
	if m.Output[0] != 200 {
		t.Fatalf("acc = %v", m.Output)
	}
	if m.DivGranted == 0 {
		t.Fatal("expected some divisions under 6 threads")
	}
}

func TestRuntimeHasNoDuplicateSymbols(t *testing.T) {
	if _, err := BuildCapC("t", `func main() {}`); err != nil {
		t.Fatalf("runtime should assemble cleanly: %v", err)
	}
}
