package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Image is a program with a private copy of its initialised data, used to
// inject per-run inputs into global arrays before simulation (the role the
// paper's benchmark input files played).
type Image struct {
	p *prog.Program
}

// NewImage clones base's data image so patches do not leak across runs.
func NewImage(base *prog.Program) *Image {
	clone := *base
	clone.Data = append([]byte(nil), base.Data...)
	return &Image{p: &clone}
}

// Program returns the patched program.
func (im *Image) Program() *prog.Program { return im.p }

func (im *Image) dataOffset(sym string, idx int, width int) (int, error) {
	addr, err := im.p.DataAddr(sym)
	if err != nil {
		return 0, err
	}
	off := int(addr-prog.DataBase) + idx*width
	if off < 0 || off+width > len(im.p.Data) {
		return 0, fmt.Errorf("core: %s[%d] outside data image", sym, idx)
	}
	return off, nil
}

// SetWord stores v into the idx-th word of the global sym.
func (im *Image) SetWord(sym string, idx int, v int64) error {
	off, err := im.dataOffset(sym, idx, 8)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		im.p.Data[off+i] = byte(uint64(v) >> (8 * i))
	}
	return nil
}

// SetByte stores b into the idx-th byte of the global sym.
func (im *Image) SetByte(sym string, idx int, b byte) error {
	off, err := im.dataOffset(sym, idx, 1)
	if err != nil {
		return err
	}
	im.p.Data[off] = b
	return nil
}

// ReadWord reads the idx-th word of global sym from a post-run memory.
func ReadWord(m *mem.Memory, p *prog.Program, sym string, idx int) (int64, error) {
	addr, err := p.DataAddr(sym)
	if err != nil {
		return 0, err
	}
	return m.ReadWord(addr + uint64(idx)*8), nil
}

// RunResult is one timing simulation outcome.
type RunResult struct {
	Cycles       uint64
	Stats        cpu.Stats
	Output       []int64
	OutputCycles []uint64
	Mem          *mem.Memory
	Divisions    []cpu.DivisionEvent
}

// RunTiming simulates p to completion on the given machine configuration.
func RunTiming(p *prog.Program, cfg cpu.Config) (*RunResult, error) {
	return runTiming(p, cfg, false)
}

// RunTimingTraced additionally records every division event.
func RunTimingTraced(p *prog.Program, cfg cpu.Config) (*RunResult, error) {
	return runTiming(p, cfg, true)
}

func runTiming(p *prog.Program, cfg cpu.Config, trace bool) (*RunResult, error) {
	m, err := cpu.New(p, cfg)
	if err != nil {
		return nil, err
	}
	m.TraceDivisions = trace
	if err := m.Run(); err != nil {
		return nil, err
	}
	return &RunResult{
		Cycles:       m.Stats().Cycles,
		Stats:        m.Stats(),
		Output:       m.Output,
		OutputCycles: m.OutputCycles,
		Mem:          m.Memory(),
		Divisions:    m.Divisions,
	}, nil
}

// RunFunctional runs p on the functional golden model with the given worker
// bound, returning the machine for result inspection.
func RunFunctional(p *prog.Program, maxThreads int, maxSteps uint64) (*emu.Machine, error) {
	m := emu.NewMachine(p, maxThreads)
	if err := m.Run(maxSteps); err != nil {
		return nil, err
	}
	return m, nil
}

// Section markers: workloads print these sentinels to timestamp the
// boundaries of their componentised sections, so experiments can report the
// paper's "component section" speedups separately from overall speedups.
const (
	MarkSectionStart int64 = -7_700_001
	MarkSectionEnd   int64 = -7_700_002
)

// SectionCycles sums the cycles between each start/end marker pair.
func (r *RunResult) SectionCycles() (uint64, error) {
	var total uint64
	var openAt uint64
	open := false
	for i, v := range r.Output {
		switch v {
		case MarkSectionStart:
			if open {
				return 0, fmt.Errorf("core: nested section markers")
			}
			open = true
			openAt = r.OutputCycles[i]
		case MarkSectionEnd:
			if !open {
				return 0, fmt.Errorf("core: section end without start")
			}
			open = false
			total += r.OutputCycles[i] - openAt
		}
	}
	if open {
		return 0, fmt.Errorf("core: unterminated section marker")
	}
	return total, nil
}

// UserOutput returns Output with section markers stripped.
func (r *RunResult) UserOutput() []int64 {
	out := make([]int64, 0, len(r.Output))
	for _, v := range r.Output {
		if v != MarkSectionStart && v != MarkSectionEnd {
			out = append(out, v)
		}
	}
	return out
}
