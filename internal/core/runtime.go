// Package core ties the CAPSULE pieces together: it owns the capsule
// runtime (the software half of the paper's contribution: _start, the
// pre-allocated worker stack pool, and the heap allocator), and the
// toolchain driver that compiles CapC, links the runtime, and produces a
// runnable program image.
package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/capc"
	"repro/internal/prog"
)

// stackSkew staggers stack tops by three cache lines so that the
// fixed-power-of-two stack pitch does not alias every worker frame onto the
// same L1 sets.
const stackSkew = 96

// RuntimeAsm returns the capsule runtime assembly: program entry, worker
// stack pool (a lock-protected LIFO free list threaded through the stacks
// themselves), and the heap bump allocator behind CapC's alloc().
//
// __cap_stack_get/__cap_stack_put are the "stack management code" of
// Section 3.2 whose measured overhead the paper reports as ~15 cycles per
// division; they deliberately use only t registers so a freshly divided
// child can call them before it owns a stack.
func RuntimeAsm() string {
	firstTop := prog.StackPoolLow + prog.StackSize
	stride := prog.StackSize + stackSkew
	return fmt.Sprintf(`# capsule runtime
.data
__cap_heap_ptr:
	.word %d
__cap_stack_head:
	.word 0

.text
_start:
	li sp, %d
	jal ra, __cap_init
	jal ra, main
	halt

# Build the worker stack free list: word at (top-8) links to the next free
# stack top; __cap_stack_head points at the most recently freed top.
__cap_init:
	li t0, %d                 # pool size
	li t1, %d                 # first stack top
	li t2, 0                  # list terminator
__cap_init_loop:
	sd t2, -8(t1)
	mv t2, t1
	li t3, %d                 # stack stride (size + skew)
	add t1, t1, t3
	addi t0, t0, -1
	bnez t0, __cap_init_loop
	la t4, __cap_stack_head
	sd t2, 0(t4)
	ret

# __cap_alloc: a0 = word count; returns the block address in a0.
__cap_alloc:
	la t0, __cap_heap_ptr
	mlock t0
	ld t1, 0(t0)
	slli t2, a0, 3
	add t2, t1, t2
	sd t2, 0(t0)
	munlock t0
	mv a0, t1
	ret

# __cap_stack_get: pop a stack from the pool; returns its top in t0.
# Clobbers only t registers (a freshly divided child has no stack yet).
__cap_stack_get:
	la t5, __cap_stack_head
	mlock t5
	ld t0, 0(t5)
	beqz t0, __cap_stack_empty
	ld t6, -8(t0)
	sd t6, 0(t5)
	munlock t5
	ret
__cap_stack_empty:
	li t1, 3735928559         # 0xDEADBEEF: worker stack pool exhausted
	print t1
	halt

# __cap_stack_put: t0 = stack top to return to the pool.
__cap_stack_put:
	la t5, __cap_stack_head
	mlock t5
	ld t6, 0(t5)
	sd t6, -8(t0)
	sd t0, 0(t5)
	munlock t5
	ret
`,
		prog.HeapBase,
		prog.MainStackTop,
		prog.StackPoolNum,
		firstTop,
		stride,
	)
}

// RuntimeUnit wraps RuntimeAsm as an assembler unit.
func RuntimeUnit() asm.Unit {
	return asm.Unit{Name: "capsule_rt.s", Text: RuntimeAsm()}
}

// Build is a linked CapC program plus its compilation artefacts.
type Build struct {
	Program  *prog.Program
	Compiled *capc.Compiled
}

// BuildCapC runs the full toolchain on one CapC unit: compile, link against
// the capsule runtime, and assemble.
func BuildCapC(name, src string) (*Build, error) {
	compiled, err := capc.Compile(name, src)
	if err != nil {
		return nil, fmt.Errorf("core: compile %s: %w", name, err)
	}
	p, err := asm.Assemble(RuntimeUnit(), asm.Unit{Name: name + ".s", Text: compiled.Asm})
	if err != nil {
		return nil, fmt.Errorf("core: assemble %s: %w", name, err)
	}
	return &Build{Program: p, Compiled: compiled}, nil
}

// BuildAsm assembles raw assembly units together with the capsule runtime.
func BuildAsm(units ...asm.Unit) (*prog.Program, error) {
	all := append([]asm.Unit{RuntimeUnit()}, units...)
	return asm.Assemble(all...)
}
