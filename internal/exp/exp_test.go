package exp

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

func tiny() Params { return Params{Scale: 0.01, Seed: 2} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablations", "crafty48", "divlat", "fig3", "fig5", "fig6", "fig7", "fig8", "table1", "table2", "table3", "vprcache"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1Static(t *testing.T) {
	r, err := Run("table1", tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Render()
	for _, want := range []string{"RUU size", "256", "8kB", "Icount 4.4", "200"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Static(t *testing.T) {
	r, err := Run("table2", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFig3Tiny(t *testing.T) {
	r, err := Run("fig3", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("fig3 rows = %v", r.Rows)
	}
	t.Logf("\n%s", r.Render())
}

func TestFig5Tiny(t *testing.T) {
	r, err := Run("fig5", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("fig5 rows = %v", r.Rows)
	}
	t.Logf("\n%s", r.Render())
}

func TestFig6Tiny(t *testing.T) {
	r, err := Run("fig6", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no division rows")
	}
}

func TestFig7Tiny(t *testing.T) {
	r, err := Run("fig7", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig7 rows = %v", r.Rows)
	}
	t.Logf("\n%s", r.Render())
}

func TestFig8Tiny(t *testing.T) {
	r, err := Run("fig8", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig8 rows = %v", r.Rows)
	}
	t.Logf("\n%s", r.Render())
}

func TestTable3Tiny(t *testing.T) {
	r, err := Run("table3", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("table3 rows = %v", r.Rows)
	}
	t.Logf("\n%s", r.Render())
}

func TestDivisionDOT(t *testing.T) {
	dot := DivisionDOT([]cpu.DivisionEvent{{Cycle: 5, Parent: 0, Child: 1}})
	if !strings.Contains(dot, "w0 -> w1") || !strings.Contains(dot, "digraph") {
		t.Fatalf("dot = %s", dot)
	}
}

func TestSummarise(t *testing.T) {
	s := summarise([]uint64{10, 20, 30})
	if s.mean != 20 || s.min != 10 || s.max != 30 {
		t.Fatalf("summary = %+v", s)
	}
	if s.stddev < 8 || s.stddev > 9 {
		t.Fatalf("stddev = %v", s.stddev)
	}
	if z := summarise(nil); z.mean != 0 {
		t.Fatal("empty summary")
	}
}

func TestSqrt(t *testing.T) {
	if v := sqrt(144); v < 11.999 || v > 12.001 {
		t.Fatalf("sqrt(144) = %v", v)
	}
	if sqrt(-1) != 0 || sqrt(0) != 0 {
		t.Fatal("non-positive sqrt")
	}
}

func TestScaledFloors(t *testing.T) {
	p := Params{Scale: 0.001}
	if p.scaled(1000, 50) != 50 {
		t.Fatal("floor not applied")
	}
	if Full().scaled(1000, 50) != 1000 {
		t.Fatal("full scale wrong")
	}
}
