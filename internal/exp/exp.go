// Package exp regenerates every table and figure of the paper's evaluation
// (Section 5) from the reproduction's simulator, plus the ablations called
// out in DESIGN.md. Each experiment is registered by the paper artefact id
// (fig3, fig5, fig6, fig7, fig8, table1, table2, table3, crafty48,
// vprcache, divlat, ablations) and renders a text table in the shape of
// the paper's artefact.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Params scales experiments. Scale 1.0 approximates paper-scale inputs;
// tests and quick benches run well below that.
type Params struct {
	Scale float64
	Seed  int64
}

// Quick returns the fast preset used by tests and `capbench` default runs.
func Quick() Params { return Params{Scale: 0.08, Seed: 1} }

// Full returns paper-scale parameters (minutes of simulation).
func Full() Params { return Params{Scale: 1.0, Seed: 1} }

// scaled returns max(lo, round(x*Scale)).
func (p Params) scaled(x, lo int) int {
	v := int(float64(x) * p.Scale)
	if v < lo {
		v = lo
	}
	return v
}

// Result is one rendered experiment.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment generator.
type Runner func(Params) (*Result, error)

var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs lists registered experiments in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, p Params) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r(p)
}

// helpers --------------------------------------------------------------------

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
func u(v uint64) string    { return fmt.Sprintf("%d", v) }

// distSummary summarises an execution-time distribution.
type distSummary struct {
	mean, min, max, stddev float64
}

func summarise(xs []uint64) distSummary {
	if len(xs) == 0 {
		return distSummary{}
	}
	var s distSummary
	s.min = float64(xs[0])
	s.max = float64(xs[0])
	var sum float64
	for _, x := range xs {
		v := float64(x)
		sum += v
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - s.mean
		ss += d * d
	}
	s.stddev = sqrt(ss / float64(len(xs)))
	return s
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}
