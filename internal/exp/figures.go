package exp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workloads"
)

// Fig. 3: distribution of execution time, Dijkstra (100 graphs of 1000
// nodes at full scale) on superscalar / statically parallelised SMT / SOMT.
func init() {
	register("fig3", func(p Params) (*Result, error) {
		graphs := p.scaled(100, 6)
		nodes := p.scaled(1000, 80)
		archs := workloads.PaperArchs()
		cycles := map[string][]uint64{}
		for g := 0; g < graphs; g++ {
			rng := rngFor(p.Seed, g)
			in := workloads.GenGraph(rng, nodes, 4, 9)
			for _, a := range archs {
				v := workloads.VariantComponent
				if a.Name == "superscalar" {
					v = workloads.VariantImperative
				}
				res, err := workloads.RunDijkstra(in, v, a.Cfg)
				if err != nil {
					return nil, fmt.Errorf("fig3 %s graph %d: %w", a.Name, g, err)
				}
				cycles[a.Name] = append(cycles[a.Name], res.Cycles)
			}
		}
		r := &Result{
			ID:     "fig3",
			Title:  fmt.Sprintf("Dijkstra execution-time distribution (%d graphs x %d nodes)", graphs, nodes),
			Header: []string{"machine", "mean cycles", "min", "max", "stddev", "stddev/mean", "speedup vs ss"},
		}
		ssMean := summarise(cycles["superscalar"]).mean
		for _, a := range archs {
			s := summarise(cycles[a.Name])
			r.Rows = append(r.Rows, []string{
				a.Name, f1(s.mean), f1(s.min), f1(s.max), f1(s.stddev),
				f2(s.stddev / s.mean), f2(ssMean / s.mean),
			})
		}
		r.Notes = append(r.Notes,
			"paper: SOMT outperforms both and is markedly more stable across data sets",
			"paper speedups at full scale: 1.23 vs static SMT, 2.51 vs superscalar")
		return r, nil
	})
}

// Fig. 5: distribution of execution time, QuickSort (500 lists of various
// distributions at full scale).
func init() {
	register("fig5", func(p Params) (*Result, error) {
		lists := p.scaled(500, 8)
		n := p.scaled(4096, 200)
		archs := workloads.PaperArchs()
		cycles := map[string][]uint64{}
		for l := 0; l < lists; l++ {
			rng := rngFor(p.Seed+1, l)
			kind := workloads.ListKind(l % 6)
			list := workloads.GenList(rng, kind, n)
			for _, a := range archs {
				v := workloads.VariantComponent
				if a.Name == "superscalar" {
					v = workloads.VariantImperative
				}
				res, err := workloads.RunQuickSort(list, v, a.Cfg)
				if err != nil {
					return nil, fmt.Errorf("fig5 %s list %d: %w", a.Name, l, err)
				}
				cycles[a.Name] = append(cycles[a.Name], res.Cycles)
			}
		}
		r := &Result{
			ID:     "fig5",
			Title:  fmt.Sprintf("QuickSort execution-time distribution (%d lists x %d elements)", lists, n),
			Header: []string{"machine", "mean cycles", "min", "max", "stddev", "stddev/mean", "speedup vs ss"},
		}
		ssMean := summarise(cycles["superscalar"]).mean
		for _, a := range archs {
			s := summarise(cycles[a.Name])
			r.Rows = append(r.Rows, []string{
				a.Name, f1(s.mean), f1(s.min), f1(s.max), f1(s.stddev),
				f2(s.stddev / s.mean), f2(ssMean / s.mean),
			})
		}
		r.Notes = append(r.Notes,
			"paper speedups at full scale: 2.51 vs static SMT, 2.93 vs superscalar")
		return r, nil
	})
}

// Fig. 6: the irregular division tree of one QuickSort run, as DOT.
func init() {
	register("fig6", func(p Params) (*Result, error) {
		n := p.scaled(4096, 400)
		rng := rngFor(p.Seed+2, 0)
		list := workloads.GenList(rng, workloads.ListUniform, n)
		res, err := workloads.RunQuickSortTraced(list, workloads.VariantComponent, cpu.SOMTConfig())
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:     "fig6",
			Title:  fmt.Sprintf("QuickSort division tree (n=%d): %d divisions", n, len(res.Divisions)),
			Header: []string{"cycle", "parent", "child", "pc"},
		}
		maxRows := 24
		for i, d := range res.Divisions {
			if i >= maxRows {
				r.Notes = append(r.Notes, fmt.Sprintf("(%d more divisions omitted)", len(res.Divisions)-maxRows))
				break
			}
			r.Rows = append(r.Rows, []string{
				u(d.Cycle), fmt.Sprintf("w%d", d.Parent), fmt.Sprintf("w%d", d.Child), fmt.Sprintf("%d", d.PC),
			})
		}
		r.Notes = append(r.Notes, "full DOT rendering: examples/quicksort or capbench -exp fig6 -dot")
		return r, nil
	})
}

// DivisionDOT renders division events as a GraphViz tree (Fig. 6 style).
func DivisionDOT(divs []cpu.DivisionEvent) string {
	var b []byte
	b = append(b, "digraph divisions {\n  node [shape=point];\n"...)
	for _, d := range divs {
		b = append(b, fmt.Sprintf("  w%d -> w%d; // cycle %d\n", d.Parent, d.Child, d.Cycle)...)
	}
	b = append(b, "}\n"...)
	return string(b)
}

// Fig. 7: division throttling of small parallel sections (LZW and
// Perceptron), throttle on vs off.
func init() {
	register("fig7", func(p Params) (*Result, error) {
		on := cpu.SOMTConfig()
		off := cpu.SOMTConfig()
		off.ThrottleOn = false

		rng := rngFor(p.Seed+3, 0)
		lzwIn := workloads.GenLZW(rng, p.scaled(4096, 512))
		l1, err := workloads.RunLZW(lzwIn, workloads.VariantComponent, on)
		if err != nil {
			return nil, err
		}
		l2, err := workloads.RunLZW(lzwIn, workloads.VariantComponent, off)
		if err != nil {
			return nil, err
		}
		neurons := p.scaled(10000, 512)
		pin := workloads.GenPerceptron(rng, neurons, 4, 1)
		p1, err := workloads.RunPerceptron(pin, workloads.VariantComponent, on)
		if err != nil {
			return nil, err
		}
		p2, err := workloads.RunPerceptron(pin, workloads.VariantComponent, off)
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:     "fig7",
			Title:  "division throttling of small parallel sections",
			Header: []string{"benchmark", "throttle", "cycles", "grants", "throttle denies", "deaths"},
			Rows: [][]string{
				{"LZW", "on", u(l1.Cycles), u(l1.Stats.DivGranted), u(l1.Stats.ThrottleDenies), u(l1.Stats.Deaths)},
				{"LZW", "off", u(l2.Cycles), u(l2.Stats.DivGranted), u(l2.Stats.ThrottleDenies), u(l2.Stats.Deaths)},
				{"Perceptron", "on", u(p1.Cycles), u(p1.Stats.DivGranted), u(p1.Stats.ThrottleDenies), u(p1.Stats.Deaths)},
				{"Perceptron", "off", u(p2.Cycles), u(p2.Stats.DivGranted), u(p2.Stats.ThrottleDenies), u(p2.Stats.Deaths)},
			},
			Notes: []string{
				"paper: both benchmarks benefit from throttling",
				"reproduction: the throttle curbs grant churn; its cycle benefit is within noise here",
				"because division overhead in this model lands mostly on otherwise-idle contexts (see EXPERIMENTS.md)",
			},
		}
		return r, nil
	})
}

// Fig. 8: re-engineered SPEC CINT2000: overall and component-section
// speedups of SOMT vs superscalar, with the section share of execution.
func init() {
	register("fig8", func(p Params) (*Result, error) {
		r := &Result{
			ID:     "fig8",
			Title:  "SPEC proxies: SOMT vs superscalar",
			Header: []string{"benchmark", "overall speedup", "section speedup", "% in section (ss)", "paper overall", "paper %"},
		}

		type secRes struct {
			overall, section, frac float64
		}
		measure := func(run func(v workloads.Variant, cfg cpu.Config) (uint64, uint64, error)) (secRes, error) {
			ssTotal, ssSec, err := run(workloads.VariantImperative, cpu.SuperscalarConfig())
			if err != nil {
				return secRes{}, err
			}
			soTotal, soSec, err := run(workloads.VariantComponent, cpu.SOMTConfig())
			if err != nil {
				return secRes{}, err
			}
			out := secRes{
				overall: float64(ssTotal) / float64(soTotal),
				frac:    float64(ssSec) / float64(ssTotal),
			}
			if soSec > 0 {
				out.section = float64(ssSec) / float64(soSec)
			}
			return out, nil
		}

		rng := rngFor(p.Seed+4, 0)
		mcfIn := workloads.GenMCF(rng, p.scaled(16384, 500), p.scaled(4096, 256), 3)
		mcf, err := measure(func(v workloads.Variant, cfg cpu.Config) (uint64, uint64, error) {
			res, err := workloads.RunMCF(mcfIn, v, cfg)
			if err != nil {
				return 0, 0, err
			}
			sec, err := res.SectionCycles()
			return res.Cycles, sec, err
		})
		if err != nil {
			return nil, fmt.Errorf("fig8 mcf: %w", err)
		}
		r.Rows = append(r.Rows, []string{"181.mcf", f2(mcf.overall), f2(mcf.section), pct(mcf.frac), "~1.2", "45%"})

		vprIn := workloads.GenVPR(rng, p.scaled(48, 10), p.scaled(48, 10), p.scaled(24, 4), 10)
		vpr, err := measure(func(v workloads.Variant, cfg cpu.Config) (uint64, uint64, error) {
			res, err := workloads.RunVPR(vprIn, v, cfg)
			if err != nil {
				return 0, 0, err
			}
			sec, err := res.Run.SectionCycles()
			return res.Run.Cycles, sec, err
		})
		if err != nil {
			return nil, fmt.Errorf("fig8 vpr: %w", err)
		}
		r.Rows = append(r.Rows, []string{"175.vpr", f2(vpr.overall), f2(vpr.section), pct(vpr.frac), "~2.5 (3.0 w/2x cache)", "93%"})

		bzIn := workloads.GenBzip2(rng, p.scaled(2048, 256), 4)
		bz, err := measure(func(v workloads.Variant, cfg cpu.Config) (uint64, uint64, error) {
			res, err := workloads.RunBzip2(bzIn, v, cfg)
			if err != nil {
				return 0, 0, err
			}
			sec, err := res.SectionCycles()
			return res.Cycles, sec, err
		})
		if err != nil {
			return nil, fmt.Errorf("fig8 bzip2: %w", err)
		}
		r.Rows = append(r.Rows, []string{"256.bzip2", f2(bz.overall), f2(bz.section), pct(bz.frac), "~1.1", "20%"})

		crIn := workloads.GenCrafty(rng, 4, p.scaled(12, 6), 7)
		ssC, err := workloads.RunCrafty(crIn, workloads.VariantImperative, cpu.SuperscalarConfig())
		if err != nil {
			return nil, fmt.Errorf("fig8 crafty: %w", err)
		}
		soC, err := workloads.RunCrafty(crIn, workloads.VariantComponent, cpu.SOMTConfig())
		if err != nil {
			return nil, fmt.Errorf("fig8 crafty: %w", err)
		}
		cs := float64(ssC.Cycles) / float64(soC.Cycles)
		r.Rows = append(r.Rows, []string{"186.crafty", f2(cs), f2(cs), "100%", "1.7 (8-ctx)", "100%"})
		r.Notes = append(r.Notes,
			"paper Fig. 8 bar heights are read off the plot; shapes to preserve: vpr highest, bzip2/mcf modest, all > 1",
			"crafty uses a software thread pool (pthread-style), so overall == section")
		return r, nil
	})
}
