package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// rngFor derives a deterministic generator for (seed, index).
func rngFor(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(idx)*7919 + 17))
}

// Table 1: baseline configuration of SOMT, SMT and superscalar processors.
func init() {
	register("table1", func(Params) (*Result, error) {
		c := cpu.SOMTConfig()
		h := c.Hierarchy
		kb := func(b int) string { return fmt.Sprintf("%dkB", b>>10) }
		r := &Result{
			ID:     "table1",
			Title:  "baseline configuration (paper Table 1)",
			Header: []string{"parameter", "value", "paper"},
			Rows: [][]string{
				{"fetch width", fmt.Sprintf("%d (ICOUNT.%d.%d)", c.FetchWidth, c.FetchThreads, c.FetchPerThread), "16, Icount 4.4"},
				{"issue/decode/commit width", fmt.Sprintf("%d/%d/%d", c.IssueWidth, c.DecodeWidth, c.CommitWidth), "8"},
				{"RUU size", fmt.Sprintf("%d", c.RUUSize), "256"},
				{"LSQ size", fmt.Sprintf("%d", c.LSQSize), "128"},
				{"FUs", fmt.Sprintf("%d IALU, %d IMULT, %d FPALU, %d FPMULT", c.IALUs, c.IMults, c.FPALUs, c.FPMults), "8,4,4,4"},
				{"branch prediction", fmt.Sprintf("combined, %d meta, %d bimodal, %d gAp", c.Predictor.MetaEntries, c.Predictor.BimodalEntries, c.Predictor.PatternEntries), "1K meta, 4K bimodal, 8K gAp"},
				{"memory latency", fmt.Sprintf("%d cycles", h.MemoryCycles), "200"},
				{"L1 DCache", fmt.Sprintf("%s, %d cycle", kb(h.L1D.SizeBytes), h.L1D.HitCycles), "8kB, 1 cycle"},
				{"L1 ICache", fmt.Sprintf("%s, %d cycle", kb(h.L1I.SizeBytes), h.L1I.HitCycles), "16kB, 1 cycle"},
				{"L2 unified", fmt.Sprintf("%s, %d cycles", kb(h.L2.SizeBytes), h.L2.HitCycles), "1MB, 12 cycles"},
				{"hardware contexts", fmt.Sprintf("%d", c.Contexts), "8"},
				{"context stack", fmt.Sprintf("%d entries, %d-cycle swap", c.StackEntries, c.SwapCycles), "16 entries, ~200 cycles"},
				{"death window", fmt.Sprintf("%d cycles, threshold %d", c.DeathWindow, c.Contexts/2), "128 cycles, contexts/2"},
			},
		}
		return r, nil
	})
}

// Table 2: the paper's componentisation statistics, alongside the
// reproduction proxies' own static data.
func init() {
	register("table2", func(Params) (*Result, error) {
		return &Result{
			ID:     "table2",
			Title:  "SPEC CINT2000 componentisation (paper data + proxy equivalents)",
			Header: []string{"benchmark", "paper lines", "paper funcs", "paper modified lines", "paper % exec", "proxy kernel"},
			Rows: [][]string{
				{"181.mcf", "2412", "2", "174", "45%", "parallel route-planning tree search"},
				{"175.vpr", "17729", "10", "624", "93%", "negotiated-congestion grid router"},
				{"256.bzip2", "4649", "3", "317", "20%", "BWT bounded-depth suffix sort"},
				{"186.crafty", "45000", "8", "201", "100%", "negamax with pthread-style pool"},
			},
			Notes: []string{"paper columns are Table 2 verbatim; proxies are documented substitutions (DESIGN.md)"},
		}, nil
	})
}

// Table 3: percentage and rate of successful divisions for mcf, vpr, bzip2.
func init() {
	register("table3", func(p Params) (*Result, error) {
		r := &Result{
			ID:     "table3",
			Title:  "division statistics (paper Table 3)",
			Header: []string{"benchmark", "# requested", "# allowed", "% allowed", "insts/division", "paper %", "paper insts/div"},
		}
		rng := rngFor(p.Seed+5, 0)

		mcfIn := workloads.GenMCF(rng, p.scaled(16384, 800), p.scaled(4096, 256), 2)
		mres, err := workloads.RunMCF(mcfIn, workloads.VariantComponent, cpu.SOMTConfig())
		if err != nil {
			return nil, err
		}
		add := func(name string, s cpu.Stats, paperPct, paperRate string) {
			r.Rows = append(r.Rows, []string{
				name, u(s.DivRequested), u(s.DivGranted), pct(s.DivGrantRate()),
				f1(s.InstsPerDivision()), paperPct, paperRate,
			})
		}
		add("mcf", mres.Stats, "40%", "3.7K")

		vprIn := workloads.GenVPR(rng, p.scaled(48, 12), p.scaled(48, 12), p.scaled(24, 5), 8)
		vres, err := workloads.RunVPR(vprIn, workloads.VariantComponent, cpu.SOMTConfig())
		if err != nil {
			return nil, err
		}
		add("vpr", vres.Run.Stats, "4%", "4.5M")

		bzIn := workloads.GenBzip2(rng, p.scaled(2048, 256), 2)
		bres, err := workloads.RunBzip2(bzIn, workloads.VariantComponent, cpu.SOMTConfig())
		if err != nil {
			return nil, err
		}
		add("bzip2", bres.Stats, "6%", "30M")
		r.Notes = append(r.Notes,
			"shape to preserve: mcf has by far the highest grant rate and lowest insts/division",
			"absolute insts/div scale with input size; paper inputs are SPEC reference sets")
		return r, nil
	})
}

// crafty48: the paper's observation that the pthread-pool crafty is faster
// on a 4-context SOMT than an 8-context one.
func init() {
	register("crafty48", func(p Params) (*Result, error) {
		rng := rngFor(p.Seed+6, 0)
		branch := p.scaled(16, 8)
		in := workloads.GenCrafty(rng, 4, branch, 0)
		ss, err := workloads.RunCrafty(in, workloads.VariantImperative, cpu.SuperscalarConfig())
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:     "crafty48",
			Title:  "crafty proxy: software pool on 4 vs 8 contexts",
			Header: []string{"machine", "pool", "cycles", "speedup vs ss", "paper"},
		}
		for _, contexts := range []int{4, 8} {
			cfg := cpu.SOMTConfig()
			cfg.Contexts = contexts
			inC := *in
			inC.PoolSize = contexts - 1
			res, err := workloads.RunCrafty(&inC, workloads.VariantComponent, cfg)
			if err != nil {
				return nil, err
			}
			paper := "2.3"
			if contexts == 8 {
				paper = "1.7"
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%d-context SOMT", contexts),
				fmt.Sprintf("%d threads", inC.PoolSize),
				u(res.Cycles),
				f2(float64(ss.Cycles) / float64(res.Cycles)),
				paper,
			})
		}
		r.Notes = append(r.Notes, "paper: active-wait pool threads degrade the 8-context machine below the 4-context one")
		return r, nil
	})
}

// vprcache: doubling cache size and ports improves the vpr section speedup
// (paper: 2.47 -> 3.5 for one iteration; overall to 3.0).
func init() {
	register("vprcache", func(p Params) (*Result, error) {
		rng := rngFor(p.Seed+7, 0)
		in := workloads.GenVPR(rng, p.scaled(48, 12), p.scaled(48, 12), p.scaled(24, 5), 8)
		r := &Result{
			ID:     "vprcache",
			Title:  "vpr proxy: default vs doubled caches+ports",
			Header: []string{"config", "machine", "cycles", "speedup vs ss(default)"},
		}
		ssRes, err := workloads.RunVPR(in, workloads.VariantImperative, cpu.SuperscalarConfig())
		if err != nil {
			return nil, err
		}
		base := float64(ssRes.Run.Cycles)
		r.Rows = append(r.Rows, []string{"default", "superscalar", u(ssRes.Run.Cycles), "1.00"})
		for _, double := range []bool{false, true} {
			cfg := cpu.SOMTConfig()
			name := "default"
			if double {
				cfg.Hierarchy = mem.DefaultHierarchy().Doubled()
				name = "2x cache+ports"
			}
			res, err := workloads.RunVPR(in, workloads.VariantComponent, cfg)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{name, "somt", u(res.Run.Cycles), f2(base / float64(res.Run.Cycles))})
		}
		r.Notes = append(r.Notes, "paper: doubling caches/ports lifts the section speedup from 2.47 to 3.5")
		return r, nil
	})
}

// divlat: the CMP extrapolation — division latencies up to 200 cycles
// change performance by less than 1% on average.
func init() {
	register("divlat", func(p Params) (*Result, error) {
		rng := rngFor(p.Seed+8, 0)
		gIn := workloads.GenGraph(rng, p.scaled(1000, 120), 4, 9)
		qIn := workloads.GenList(rng, workloads.ListUniform, p.scaled(4096, 300))
		r := &Result{
			ID:     "divlat",
			Title:  "division latency sweep (CMP extrapolation, Section 5)",
			Header: []string{"extra latency", "dijkstra cycles", "quicksort cycles", "dijkstra delta", "quicksort delta"},
		}
		var base [2]float64
		for _, lat := range []int{0, 50, 100, 200} {
			cfg := cpu.SOMTConfig()
			cfg.DivExtraCycles = lat
			d, err := workloads.RunDijkstra(gIn, workloads.VariantComponent, cfg)
			if err != nil {
				return nil, err
			}
			q, err := workloads.RunQuickSort(qIn, workloads.VariantComponent, cfg)
			if err != nil {
				return nil, err
			}
			if lat == 0 {
				base[0] = float64(d.Cycles)
				base[1] = float64(q.Cycles)
			}
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%d cycles", lat), u(d.Cycles), u(q.Cycles),
				pct(float64(d.Cycles)/base[0] - 1), pct(float64(q.Cycles)/base[1] - 1),
			})
		}
		r.Notes = append(r.Notes, "paper: <1% average variation up to 200 cycles (division rate is low)")
		return r, nil
	})
}

// ablations: the design-choice sweeps DESIGN.md calls out.
func init() {
	register("ablations", func(p Params) (*Result, error) {
		rng := rngFor(p.Seed+9, 0)
		in := workloads.GenGraph(rng, p.scaled(1000, 120), 4, 9)
		r := &Result{
			ID:     "ablations",
			Title:  "design-choice ablations (Dijkstra component workload)",
			Header: []string{"knob", "value", "cycles", "grants", "deaths"},
		}
		addRun := func(knob, val string, cfg cpu.Config) error {
			res, err := workloads.RunDijkstra(in, workloads.VariantComponent, cfg)
			if err != nil {
				return err
			}
			r.Rows = append(r.Rows, []string{knob, val, u(res.Cycles), u(res.Stats.DivGranted), u(res.Stats.Deaths)})
			return nil
		}
		for _, w := range []int{32, 128, 512} {
			cfg := cpu.SOMTConfig()
			cfg.DeathWindow = w
			if err := addRun("death window", fmt.Sprintf("%d", w), cfg); err != nil {
				return nil, err
			}
		}
		for _, d := range []int{8, 16, 32} {
			cfg := cpu.SOMTConfig()
			cfg.StackEntries = d
			if err := addRun("stack entries", fmt.Sprintf("%d", d), cfg); err != nil {
				return nil, err
			}
		}
		for _, pol := range []cpu.Policy{cpu.PolicyGreedy, cpu.PolicyStatic, cpu.PolicyDeny} {
			cfg := cpu.SOMTConfig()
			cfg.DivisionPolicy = pol
			if pol == cpu.PolicyDeny {
				cfg.EnableDivision = false
			}
			if err := addRun("policy", pol.String(), cfg); err != nil {
				return nil, err
			}
		}
		for _, rc := range []int{4, 8, 31} {
			cfg := cpu.SOMTConfig()
			cfg.RegCopyCycles = rc
			if err := addRun("regcopy cycles", fmt.Sprintf("%d", rc), cfg); err != nil {
				return nil, err
			}
		}
		for _, rr := range []bool{false, true} {
			cfg := cpu.SOMTConfig()
			cfg.RoundRobinFetch = rr
			name := "icount"
			if rr {
				name = "round-robin"
			}
			if err := addRun("fetch policy", name, cfg); err != nil {
				return nil, err
			}
		}
		return r, nil
	})
}
