// Package profparse is a minimal reader for pprof's profile.proto —
// just enough protobuf to turn the CPU/heap profiles inside a capscope
// incident bundle into "top functions" without importing a protobuf
// stack (the repo's no-new-dependencies rule). It hand-walks the wire
// format: a profile is samples (location-id stacks + values), a
// location table mapping ids to lines, a function table mapping ids to
// string-table names. Everything else (mappings, labels, comments) is
// skipped field-by-field, which is exactly what the wire format is
// designed to allow.
package profparse

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Profile is the decoded subset: sample types, raw samples, and the
// location→function name resolution tables.
type Profile struct {
	// SampleTypes are "type/unit" strings, one per value column
	// (e.g. "samples/count", "cpu/nanoseconds").
	SampleTypes []string

	// DurationNanos is the profile's wall-clock span (0 if unset).
	DurationNanos int64

	Samples []Sample

	locFuncs map[uint64][]uint64 // location id → function ids, leaf line first
	funcName map[uint64]string   // function id → name
}

// Sample is one stack with its value columns. LocationIDs run leaf
// first, per the pprof convention.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Entry is one function's aggregated weight.
type Entry struct {
	Name string
	Flat int64 // attributed to samples whose leaf is this function
	Cum  int64 // attributed to samples with this function anywhere on-stack
}

// Parse decodes a pprof profile, gzipped (the runtime/pprof default)
// or raw.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		data = raw
	}
	p := &Profile{
		locFuncs: make(map[uint64][]uint64),
		funcName: make(map[uint64]string),
	}
	var strtab []string
	var sampleTypeRefs [][2]uint64      // (type, unit) string indices
	funcNameIdx := make(map[uint64]uint64) // function id → string index
	err := walkFields(data, func(field uint64, wire int, v uint64, chunk []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			var typ, unit uint64
			if err := walkFields(chunk, func(f uint64, w int, vv uint64, _ []byte) error {
				switch f {
				case 1:
					typ = vv
				case 2:
					unit = vv
				}
				return nil
			}); err != nil {
				return err
			}
			sampleTypeRefs = append(sampleTypeRefs, [2]uint64{typ, unit})
		case 2: // sample
			var s Sample
			if err := walkFields(chunk, func(f uint64, w int, vv uint64, cc []byte) error {
				switch f {
				case 1: // location_id, packed or not
					if w == 2 {
						return walkVarints(cc, func(u uint64) {
							s.LocationIDs = append(s.LocationIDs, u)
						})
					}
					s.LocationIDs = append(s.LocationIDs, vv)
				case 2: // value, packed or not
					if w == 2 {
						return walkVarints(cc, func(u uint64) {
							s.Values = append(s.Values, int64(u))
						})
					}
					s.Values = append(s.Values, int64(vv))
				}
				return nil
			}); err != nil {
				return err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			var id uint64
			var funcs []uint64
			if err := walkFields(chunk, func(f uint64, w int, vv uint64, cc []byte) error {
				switch f {
				case 1:
					id = vv
				case 4: // line
					return walkFields(cc, func(lf uint64, _ int, lv uint64, _ []byte) error {
						if lf == 1 {
							funcs = append(funcs, lv)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			p.locFuncs[id] = funcs
		case 5: // function
			var id, name uint64
			if err := walkFields(chunk, func(f uint64, _ int, vv uint64, _ []byte) error {
				switch f {
				case 1:
					id = vv
				case 2:
					name = vv
				}
				return nil
			}); err != nil {
				return err
			}
			funcNameIdx[id] = name
		case 6: // string_table
			strtab = append(strtab, string(chunk))
		case 10: // duration_nanos
			p.DurationNanos = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("profparse: %w", err)
	}
	// Second pass: resolve string-table references now the table is
	// complete (function entries may precede it on the wire).
	for id, idx := range funcNameIdx {
		if idx < uint64(len(strtab)) {
			p.funcName[id] = strtab[idx]
		} else {
			p.funcName[id] = "?"
		}
	}
	for _, r := range sampleTypeRefs {
		typ, unit := "?", "?"
		if int(r[0]) < len(strtab) {
			typ = strtab[r[0]]
		}
		if int(r[1]) < len(strtab) {
			unit = strtab[r[1]]
		}
		p.SampleTypes = append(p.SampleTypes, typ+"/"+unit)
	}
	if len(p.Samples) > 0 && len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("profparse: no sample types")
	}
	return p, nil
}

// FuncName resolves a location id to its leaf function name.
func (p *Profile) FuncName(loc uint64) string {
	funcs := p.locFuncs[loc]
	if len(funcs) == 0 {
		return "?"
	}
	if name, ok := p.funcName[funcs[0]]; ok {
		return name
	}
	return "?"
}

// TotalValue sums one value column over all samples (-1: the last
// column, matching Top).
func (p *Profile) TotalValue(valueIndex int) int64 {
	if valueIndex < 0 {
		valueIndex = len(p.SampleTypes) - 1
	}
	var total int64
	for _, s := range p.Samples {
		if valueIndex >= 0 && valueIndex < len(s.Values) {
			total += s.Values[valueIndex]
		}
	}
	return total
}

// Top aggregates the profile into the n heaviest functions by flat
// weight of the given value column (-1: the last column, which is CPU
// nanoseconds for CPU profiles and inuse_space for heap profiles).
func (p *Profile) Top(n, valueIndex int) []Entry {
	if valueIndex < 0 {
		valueIndex = len(p.SampleTypes) - 1
	}
	flat := make(map[string]int64)
	cum := make(map[string]int64)
	seen := make(map[string]bool)
	for _, s := range p.Samples {
		if valueIndex < 0 || valueIndex >= len(s.Values) {
			continue
		}
		v := s.Values[valueIndex]
		if len(s.LocationIDs) == 0 {
			continue
		}
		flat[p.FuncName(s.LocationIDs[0])] += v
		clear(seen)
		for _, loc := range s.LocationIDs {
			for _, fid := range p.locFuncs[loc] {
				name := p.funcName[fid]
				if name == "" {
					name = "?"
				}
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	out := make([]Entry, 0, len(cum))
	for name, c := range cum {
		out = append(out, Entry{Name: name, Flat: flat[name], Cum: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		if out[i].Cum != out[j].Cum {
			return out[i].Cum > out[j].Cum
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// walkFields iterates a protobuf message's fields. For wire type 2 the
// callback gets the chunk; for varint fields it gets the value. Fixed
// 64/32-bit fields are delivered as values too (pprof uses none, but
// skipping them correctly keeps the walk aligned).
func walkFields(data []byte, fn func(field uint64, wire int, v uint64, chunk []byte) error) error {
	for len(data) > 0 {
		tag, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("bad field tag")
		}
		data = data[n:]
		field, wire := tag>>3, int(tag&7)
		switch wire {
		case 0:
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1:
			if len(data) < 8 {
				return fmt.Errorf("truncated fixed64 in field %d", field)
			}
			var v uint64
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(data[i])
			}
			data = data[8:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 2:
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("truncated chunk in field %d", field)
			}
			chunk := data[n : uint64(n)+l]
			data = data[uint64(n)+l:]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case 5:
			if len(data) < 4 {
				return fmt.Errorf("truncated fixed32 in field %d", field)
			}
			var v uint64
			for i := 3; i >= 0; i-- {
				v = v<<8 | uint64(data[i])
			}
			data = data[4:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// walkVarints iterates a packed varint chunk.
func walkVarints(data []byte, fn func(uint64)) error {
	for len(data) > 0 {
		v, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("bad packed varint")
		}
		fn(v)
		data = data[n:]
	}
	return nil
}

// uvarint decodes one base-128 varint; n <= 0 on malformed input.
func uvarint(data []byte) (v uint64, n int) {
	var shift uint
	for i, b := range data {
		if i == 10 {
			return 0, -1
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}
