package profparse

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// spin is the hot function the CPU-profile test expects to surface.
//
//go:noinline
func spin(until time.Time) uint64 {
	var x uint64 = 1
	for time.Now().Before(until) {
		for i := 0; i < 1_000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
	}
	return x
}

var sink uint64

// TestParseCPUProfile round-trips a real runtime/pprof CPU profile:
// the parser must find the sample-type schema, nonzero samples, and
// this package's spin function among the top entries.
func TestParseCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	sink = spin(time.Now().Add(300 * time.Millisecond))
	pprof.StopCPUProfile()

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Fatalf("no sample types")
	}
	// CPU profiles end with cpu/nanoseconds.
	last := p.SampleTypes[len(p.SampleTypes)-1]
	if !strings.Contains(last, "cpu") {
		t.Errorf("last sample type = %q, want cpu/nanoseconds", last)
	}
	if len(p.Samples) == 0 {
		t.Fatalf("no samples in a 300ms busy-loop profile")
	}
	if p.TotalValue(-1+len(p.SampleTypes)) <= 0 {
		t.Errorf("total cpu value not positive")
	}
	top := p.Top(10, -1)
	if len(top) == 0 {
		t.Fatalf("empty top")
	}
	found := false
	for _, e := range top {
		if strings.Contains(e.Name, "profparse.spin") {
			found = true
			if e.Flat <= 0 && e.Cum <= 0 {
				t.Errorf("spin has no weight: %+v", e)
			}
		}
		if e.Cum < e.Flat {
			t.Errorf("cum < flat for %q: %+v", e.Name, e)
		}
	}
	if !found {
		names := make([]string, 0, len(top))
		for _, e := range top {
			names = append(names, e.Name)
		}
		t.Errorf("spin not in top 10: %v", names)
	}
}

// TestParseHeapProfile parses a real heap profile; it must decode with
// a sample-type schema (inuse_space last) and resolvable names.
func TestParseHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Fatalf("no sample types")
	}
	if last := p.SampleTypes[len(p.SampleTypes)-1]; !strings.Contains(last, "inuse_space") {
		t.Errorf("last sample type = %q, want inuse_space/bytes", last)
	}
	for _, e := range p.Top(5, -1) {
		if e.Name == "" {
			t.Errorf("empty function name in top")
		}
	}
}

// TestParseGarbage rejects torn input instead of panicking.
func TestParseGarbage(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("not a profile"),
		{0x1f, 0x8b, 0x00}, // truncated gzip
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // varint overflow
	} {
		if _, err := Parse(data); err == nil {
			t.Errorf("Parse(%v): wanted error", data[:min(4, len(data))])
		}
	}
	// Empty input is an empty (valid) profile.
	if _, err := Parse(nil); err != nil {
		t.Errorf("Parse(nil): %v", err)
	}
}
