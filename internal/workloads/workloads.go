// Package workloads implements the paper's benchmark suite: the four core
// algorithms written as component (CapC) programs — Dijkstra, QuickSort,
// LZW and Perceptron — and synthetic proxies for the four re-engineered
// SPEC CINT2000 programs (181.mcf, 175.vpr, 256.bzip2, 186.crafty), each
// with input generators, Go reference implementations for validation, and
// baseline (imperative) variants for the superscalar comparison.
package workloads

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// Variant selects which program text a workload compiles.
type Variant uint8

const (
	// VariantComponent is the CapC component version (coworker divisions).
	VariantComponent Variant = iota
	// VariantImperative is the baseline sequential implementation the
	// paper runs on the superscalar.
	VariantImperative
	// VariantNative is the same component algorithm running natively on
	// goroutines via internal/capsule instead of the cycle-level
	// simulator (see native.go).
	VariantNative
)

func (v Variant) String() string {
	switch v {
	case VariantComponent:
		return "component"
	case VariantNative:
		return "native"
	default:
		return "imperative"
	}
}

// buildCache memoises compiled programs by (workload, variant, size key):
// experiments run hundreds of data sets against the same binary.
var buildCache sync.Map

func cachedBuild(variant Variant, key string, src func() string) (*prog.Program, error) {
	if variant == VariantNative {
		// The native variant has no CapC program: it runs on goroutines
		// via the Native* functions (native.go), never the simulator.
		return nil, fmt.Errorf("workloads: %s: VariantNative cannot be simulated; use the Native* functions on a capsule.Runtime", key)
	}
	if p, ok := buildCache.Load(key); ok {
		return p.(*prog.Program), nil
	}
	b, err := core.BuildCapC(key, src())
	if err != nil {
		return nil, fmt.Errorf("workloads: build %s: %w", key, err)
	}
	buildCache.Store(key, b.Program)
	return b.Program, nil
}

// Arch bundles a named machine configuration for experiments.
type Arch struct {
	Name string
	Cfg  cpu.Config
}

// PaperArchs returns the paper's three machines: superscalar (imperative
// baseline), statically parallelised SMT, and SOMT with dynamic division.
func PaperArchs() []Arch {
	return []Arch{
		{Name: "superscalar", Cfg: cpu.SuperscalarConfig()},
		{Name: "smt-static", Cfg: cpu.SMTStaticConfig()},
		{Name: "somt", Cfg: cpu.SOMTConfig()},
	}
}

// rngFor derives a deterministic generator for (experiment, index).
func rngFor(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(idx)*7919 + 17))
}
