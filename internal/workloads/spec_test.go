package workloads

import (
	"testing"

	"repro/internal/cpu"
)

func TestMCFRefAndTiming(t *testing.T) {
	rng := rngFor(30, 0)
	in := GenMCF(rng, 127, 64, 2)
	best, sum := RefMCF(in)
	if best <= 0 {
		t.Fatalf("best = %d", best)
	}
	_ = sum
	for _, a := range PaperArchs() {
		v := VariantComponent
		if a.Name == "superscalar" {
			v = VariantImperative
		}
		res, err := RunMCF(in, v, a.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		sec, err := res.SectionCycles()
		if err != nil {
			t.Fatalf("%s: section: %v", a.Name, err)
		}
		if sec == 0 || sec >= res.Cycles {
			t.Fatalf("%s: section cycles %d of %d", a.Name, sec, res.Cycles)
		}
	}
}

func TestMCFDivisionAtEveryNode(t *testing.T) {
	rng := rngFor(30, 1)
	in := GenMCF(rng, 255, 32, 1)
	res, err := RunMCF(in, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Probes happen at every two-child node; with 255 slots and sparse
	// pruning there are many.
	if res.Stats.DivRequested < 20 {
		t.Fatalf("mcf should probe at every internal node, got %d", res.Stats.DivRequested)
	}
}

func TestBzip2RefDeterministic(t *testing.T) {
	rng := rngFor(31, 0)
	in := GenBzip2(rng, 200, 1)
	f1, s1 := RefBzip2(in)
	f2, s2 := RefBzip2(in)
	if f1 != f2 || s1 != s2 {
		t.Fatal("reference must be deterministic")
	}
}

func TestBzip2SuffixOrderTotal(t *testing.T) {
	block := []byte{1, 1, 2, 1, 1, 2, 3}
	for a := 0; a < len(block); a++ {
		for b := 0; b < len(block); b++ {
			if a == b {
				continue
			}
			x, y := refSuffixLess(block, a, b), refSuffixLess(block, b, a)
			if x == y {
				t.Fatalf("order not strict/total at (%d,%d)", a, b)
			}
		}
	}
}

func TestBzip2Timing(t *testing.T) {
	rng := rngFor(31, 1)
	in := GenBzip2(rng, 192, 2)
	for _, a := range PaperArchs() {
		v := VariantComponent
		if a.Name == "superscalar" {
			v = VariantImperative
		}
		res, err := RunBzip2(in, v, a.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		sec, err := res.SectionCycles()
		if err != nil {
			t.Fatal(err)
		}
		frac := float64(sec) / float64(res.Cycles)
		t.Logf("%s: %d cycles, sort section %.0f%%", a.Name, res.Cycles, 100*frac)
	}
}

func TestCraftyRefNegamax(t *testing.T) {
	rng := rngFor(32, 0)
	in := GenCrafty(rng, 3, 4, 4)
	v1 := RefCrafty(in)
	v2 := RefCrafty(in)
	if v1 != v2 {
		t.Fatal("negamax must be deterministic")
	}
	if v1 < -1000 || v1 > 1000 {
		t.Fatalf("score %d outside leaf range", v1)
	}
}

func TestCraftyImperative(t *testing.T) {
	rng := rngFor(32, 1)
	in := GenCrafty(rng, 4, 4, 0)
	res, err := RunCrafty(in, VariantImperative, cpu.SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DivRequested != 0 {
		t.Fatal("imperative crafty must not probe")
	}
}

func TestCraftyPoolRunsAndInhibitsDivision(t *testing.T) {
	rng := rngFor(32, 2)
	in := GenCrafty(rng, 4, 5, 3)
	res, err := RunCrafty(in, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	// The pool spawns once at start (poolsize grants) and then manages
	// work in software: no further division traffic.
	if s.DivGranted != uint64(in.PoolSize) {
		t.Fatalf("pool grants = %d, want %d", s.DivGranted, in.PoolSize)
	}
	if s.DivRequested != uint64(in.PoolSize) {
		t.Fatalf("requests = %d: the pool should inhibit further probes", s.DivRequested)
	}
}

func TestCrafty4ContextsBeat8(t *testing.T) {
	// The paper's observation: the busy-wait pool makes the 8-context
	// machine SLOWER than the 4-context one (2.3x vs 1.7x speedup).
	rng := rngFor(32, 3)
	cfg4 := cpu.SOMTConfig()
	cfg4.Contexts = 4
	cfg8 := cpu.SOMTConfig()
	in4 := GenCrafty(rng, 4, 6, 3) // pool sized to contexts-1
	in8 := GenCrafty(rng, 4, 6, 7)
	in8.Seed = in4.Seed
	r4, err := RunCrafty(in4, VariantComponent, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunCrafty(in8, VariantComponent, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4-ctx: %d cycles; 8-ctx: %d cycles", r4.Cycles, r8.Cycles)
	if r4.Cycles > 2*r8.Cycles {
		t.Fatalf("4-context run should be competitive: 4ctx=%d 8ctx=%d", r4.Cycles, r8.Cycles)
	}
}

func TestVPRSmallConverges(t *testing.T) {
	rng := rngFor(33, 0)
	in := GenVPR(rng, 12, 12, 4, 12)
	for _, variant := range []Variant{VariantImperative, VariantComponent} {
		cfg := cpu.SOMTConfig()
		if variant == VariantImperative {
			cfg = cpu.SuperscalarConfig()
		}
		r, err := RunVPR(in, variant, cfg)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if r.Iterations < 1 || r.Iterations > int64(in.MaxIters) {
			t.Fatalf("%v: iterations = %d", variant, r.Iterations)
		}
		t.Logf("%v: %d cycles, %d iterations, converged=%v",
			variant, r.Run.Cycles, r.Iterations, r.Converged)
	}
}

func TestVPRGridAdjacency(t *testing.T) {
	if !gridAdjacent(8, 0, 1) || !gridAdjacent(8, 0, 8) {
		t.Fatal("adjacent cells rejected")
	}
	if gridAdjacent(8, 7, 8) {
		t.Fatal("row wrap accepted")
	}
	if gridAdjacent(8, 0, 2) || gridAdjacent(8, 0, 16) {
		t.Fatal("distant cells accepted")
	}
}

func TestVPRComponentUsesDivisions(t *testing.T) {
	rng := rngFor(33, 1)
	in := GenVPR(rng, 14, 14, 5, 12)
	r, err := RunVPR(in, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Run.Stats.DivGranted == 0 {
		t.Fatal("vpr exploration should divide")
	}
}
