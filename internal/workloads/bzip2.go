package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// Bzip2 is the 256.bzip2 proxy: "the component targets the string sorting
// process" of the block-sorting compressor, which the paper componentised
// for ~20% of execution time.
//
// The proxy performs a bounded-depth suffix sort of a text block (the BWT
// kernel) with a componentised quicksort over suffix indices — string
// comparisons bounded at CmpDepth with the index as tiebreak, giving a
// deterministic total order — and spends the remaining ~80% in a
// sequential entropy-coding-style pass (rolling checksum with shifts and
// table lookups, like bzip2's Huffman/CRC phases).

// Bzip2CmpDepth bounds suffix comparisons.
const Bzip2CmpDepth = 12

// Bzip2Input is one block instance.
type Bzip2Input struct {
	Block     []byte // symbols in [0, 16)
	SeqRounds int    // sequential-phase passes over the block
}

// GenBzip2 generates a compressible block.
func GenBzip2(rng *rand.Rand, n, seqRounds int) *Bzip2Input {
	b := make([]byte, n)
	// Runs of repeated symbols (post-RLE bzip2 blocks still have heavy
	// local structure).
	i := 0
	for i < n {
		sym := byte(rng.Intn(16))
		run := 1 + rng.Intn(6)
		for r := 0; r < run && i < n; r++ {
			b[i] = sym
			i++
		}
	}
	return &Bzip2Input{Block: b, SeqRounds: seqRounds}
}

// refSuffixLess is the bounded-depth circular suffix order with index
// tiebreak (a strict total order).
func refSuffixLess(block []byte, a, b int) bool {
	n := len(block)
	for k := 0; k < Bzip2CmpDepth; k++ {
		ca, cb := block[(a+k)%n], block[(b+k)%n]
		if ca != cb {
			return ca < cb
		}
	}
	return a < b
}

// RefBzip2 returns (sorted suffix order fingerprint, sequential checksum).
func RefBzip2(in *Bzip2Input) (int64, int64) {
	n := len(in.Block)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return refSuffixLess(in.Block, idx[i], idx[j]) })
	var fp int64
	for i, v := range idx {
		fp = fp*1000003 + int64(v)*31 + int64(i)
		fp ^= fp >> 7
	}

	var sum int64
	for r := 0; r < in.SeqRounds; r++ {
		for _, c := range in.Block {
			sum = sum + int64(c)
			sum = sum ^ (sum << 5)
			sum = sum ^ (sum >> 11)
		}
	}
	return fp, sum
}

func bzip2Src(variant Variant, maxN int) string {
	common := fmt.Sprintf(`
const MAXN = %d;
const DEPTH = %d;
var block[MAXN];
var idx[MAXN];
var n;
var seqrounds;
var checksum;
const MARKSTART = %d;
const MARKEND = %d;

// sufless: bounded-depth circular suffix compare with index tiebreak.
func sufless(a, b) {
	var k;
	for (k = 0; k < DEPTH; k = k + 1) {
		var pa = a + k;
		if (pa >= n) { pa = pa - n; }
		var pb = b + k;
		if (pb >= n) { pb = pb - n; }
		var ca = block[pa];
		var cb = block[pb];
		if (ca != cb) { return ca < cb; }
	}
	return a < b;
}

func seqphase() {
	var sum = 0;
	var r;
	for (r = 0; r < seqrounds; r = r + 1) {
		var i;
		for (i = 0; i < n; i = i + 1) {
			sum = sum + block[i];
			sum = sum ^ (sum << 5);
			sum = sum ^ (sum >> 11);
		}
	}
	checksum = sum;
	return 0;
}
`, maxN, Bzip2CmpDepth, core.MarkSectionStart, core.MarkSectionEnd)

	sortBody := `
%[1]s ssort(lo, hi) {
	while (hi - lo > 6) {
		var p = idx[(lo + hi) / 2];
		var i = lo;
		var j = hi - 1;
		while (i <= j) {
			while (sufless(idx[i], p)) { i = i + 1; }
			while (sufless(p, idx[j])) { j = j - 1; }
			if (i <= j) {
				var tmp = idx[i];
				idx[i] = idx[j];
				idx[j] = tmp;
				i = i + 1;
				j = j - 1;
			}
		}
		%[2]s
		lo = i;
	}
	var k;
	for (k = lo + 1; k < hi; k = k + 1) {
		var v = idx[k];
		var m = k - 1;
		while (m >= lo) {
			if (sufless(idx[m], v)) { break; }
			idx[m + 1] = idx[m];
			m = m - 1;
		}
		idx[m + 1] = v;
	}
	return 0;
}

func main() {
	var i;
	for (i = 0; i < n; i = i + 1) { idx[i] = i; }
	print(MARKSTART);
	ssort(0, n);
	%[3]s
	print(MARKEND);
	seqphase();
	var fp = 0;
	for (i = 0; i < n; i = i + 1) {
		fp = fp * 1000003 + idx[i] * 31 + i;
		fp = fp ^ (fp >> 7);
	}
	print(fp);
	print(checksum);
}
`
	if variant == VariantComponent {
		return common + fmt.Sprintf(sortBody, "worker", "coworker ssort(lo, j + 1);", "join();")
	}
	return common + fmt.Sprintf(sortBody, "func", "ssort(lo, j + 1);", "")
}

// Bzip2Program compiles (cached) the requested variant.
func Bzip2Program(variant Variant, maxN int) (*prog.Program, error) {
	key := fmt.Sprintf("bzip2-%s-%d", variant, maxN)
	return cachedBuild(variant, key, func() string { return bzip2Src(variant, maxN) })
}

// PatchBzip2 writes the block into a fresh image.
func PatchBzip2(p *prog.Program, in *Bzip2Input) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_n", 0, int64(len(in.Block))); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_seqrounds", 0, int64(in.SeqRounds)); err != nil {
		return nil, err
	}
	for i, c := range in.Block {
		if err := im.SetWord("g_block", i, int64(c)); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunBzip2 simulates and validates one block.
func RunBzip2(in *Bzip2Input, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	base, err := Bzip2Program(variant, capRound(len(in.Block)))
	if err != nil {
		return nil, err
	}
	p, err := PatchBzip2(base, in)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	wantFP, wantSum := RefBzip2(in)
	out := res.UserOutput()
	if len(out) != 2 || out[0] != wantFP || out[1] != wantSum {
		return nil, fmt.Errorf("bzip2: output = %v, want [%d %d]", out, wantFP, wantSum)
	}
	return res, nil
}
