package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

func TestGenGraphShape(t *testing.T) {
	rng := rngFor(1, 0)
	in := GenGraph(rng, 100, 4, 10)
	if in.N != 100 || len(in.EOff) != 101 {
		t.Fatalf("bad shape: N=%d len(EOff)=%d", in.N, len(in.EOff))
	}
	if int(in.EOff[100]) != len(in.EDst) || len(in.EDst) != len(in.EWgt) {
		t.Fatal("CSR arrays inconsistent")
	}
	for u := 0; u < in.N; u++ {
		if in.EOff[u+1] < in.EOff[u] {
			t.Fatal("offsets not monotone")
		}
		for e := in.EOff[u]; e < in.EOff[u+1]; e++ {
			if in.EDst[e] < 0 || int(in.EDst[e]) >= in.N {
				t.Fatalf("edge target out of range: %d", in.EDst[e])
			}
			if in.EWgt[e] < 1 {
				t.Fatal("non-positive weight")
			}
		}
	}
}

func TestRefDijkstraSmall(t *testing.T) {
	// 0 -> 1 (w=2), 0 -> 2 (w=10), 1 -> 2 (w=3): dist = [0, 2, 5].
	in := &DijkstraInput{
		N:      3,
		Source: 0,
		EOff:   []int32{0, 2, 3, 3},
		EDst:   []int32{1, 2, 2},
		EWgt:   []int32{2, 10, 3},
	}
	d := RefDijkstra(in)
	if d[0] != 0 || d[1] != 2 || d[2] != 5 {
		t.Fatalf("dist = %v", d)
	}
}

func TestDijkstraFunctionalMatchesReference(t *testing.T) {
	// Run the component program on the functional machine across thread
	// bounds; the relaxation must converge to the reference distances.
	rng := rngFor(2, 7)
	in := GenGraph(rng, 60, 3, 9)
	base, err := DijkstraProgram(VariantComponent, capRound(in.N), capRound(len(in.EDst)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatchDijkstra(base, in)
	if err != nil {
		t.Fatal(err)
	}
	want := RefDijkstra(in)
	for _, threads := range []int{1, 4, 16} {
		m, err := core.RunFunctional(p, threads, 200_000_000)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		for v := 0; v < in.N; v++ {
			got, err := core.ReadWord(m.Mem, p, "g_dist", v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[v] {
				t.Fatalf("threads=%d dist[%d]=%d want %d", threads, v, got, want[v])
			}
		}
	}
}

func TestDijkstraTimingAllArchs(t *testing.T) {
	rng := rngFor(3, 1)
	in := GenGraph(rng, 50, 3, 9)
	variants := map[string]Variant{
		"superscalar": VariantImperative,
		"smt-static":  VariantComponent,
		"somt":        VariantComponent,
	}
	cycles := map[string]uint64{}
	for _, a := range PaperArchs() {
		res, err := RunDijkstra(in, variants[a.Name], a.Cfg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		cycles[a.Name] = res.Cycles
		if res.Cycles == 0 {
			t.Fatalf("%s: zero cycles", a.Name)
		}
	}
	t.Logf("cycles: %v", cycles)
}

func TestDijkstraSOMTUsesDivisions(t *testing.T) {
	rng := rngFor(4, 2)
	in := GenGraph(rng, 80, 4, 9)
	res, err := RunDijkstra(in, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.DivRequested == 0 {
		t.Fatal("component Dijkstra should probe the architecture")
	}
	if s.DivGranted == 0 {
		t.Fatal("SOMT should grant divisions")
	}
	if s.Deaths == 0 {
		t.Fatal("sub-optimal path workers should die")
	}
}

func TestCapRound(t *testing.T) {
	if capRound(1) != 64 || capRound(65) != 128 || capRound(1024) != 1024 || capRound(100_000) != 100_000 {
		t.Fatal("capRound wrong")
	}
}
