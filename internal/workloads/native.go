package workloads

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/capsule"
)

// This file implements VariantNative: the paper's four core component
// algorithms — QuickSort, Dijkstra, LZW and Perceptron — running on real
// goroutines via the internal/capsule probe/divide runtime instead of the
// cycle-level simulator. Each function mirrors the CapC component source
// in the sibling file statement for statement (the division points are the
// same `coworker` sites), and each is written so the result is a pure
// function of the input regardless of worker interleaving: QuickSort
// divides disjoint sub-ranges, Dijkstra's relaxation is monotone under
// per-node locks, LZW sums per-chunk code counts, and Perceptron's
// reductions are exact integer sums.
//
// All four return results validated against the Go references
// (sort order, RefDijkstra, RefLZWMatch, RefPerceptron) by native_test.go
// and by the Run* wrappers used from cmd/caprun.

// qsNativeCutoff matches the CapC program's insertion-sort cutoff.
const qsNativeCutoff = 8

// NativeQuickSort sorts a copy of list on dom and returns it. Division
// points mirror quickSortSrc: after each Hoare partition the left
// sub-range is offered to a co-worker while the caller keeps the right.
func NativeQuickSort(dom capsule.Domain, list []int64) []int64 {
	out := append([]int64(nil), list...)
	nativeQSort(dom, out, 0, len(out))
	dom.Join()
	return out
}

func nativeQSort(dom capsule.Domain, arr []int64, lo, hi int) {
	for hi-lo > qsNativeCutoff {
		// Middle-element pivot, Hoare partition.
		p := arr[(lo+hi)/2]
		i, j := lo, hi-1
		for i <= j {
			for arr[i] < p {
				i++
			}
			for arr[j] > p {
				j--
			}
			if i <= j {
				arr[i], arr[j] = arr[j], arr[i]
				i++
				j--
			}
		}
		// Divide: a co-worker takes the left part [lo, j+1); we keep
		// [i, hi). The ranges are disjoint (j < i), so parent and child
		// never touch the same element.
		left, right := lo, j+1
		dom.Divide(func() { nativeQSort(dom, arr, left, right) })
		lo = i
	}
	// Insertion sort for small runs.
	for k := lo + 1; k < hi; k++ {
		v := arr[k]
		m := k - 1
		for m >= lo && arr[m] > v {
			arr[m+1] = arr[m]
			m--
		}
		arr[m+1] = v
	}
}

// NativeDijkstra runs the Fig. 1 worker algorithm on dom: each worker
// carries its path length, improves the locked per-node distance or dies,
// and probes the runtime at every child edge. The monotone relaxation
// makes the returned distances equal to RefDijkstra under any
// interleaving.
func NativeDijkstra(dom capsule.Domain, in *DijkstraInput) []int64 {
	dist := make([]int64, in.N)
	for i := range dist {
		dist[i] = DijkstraInf
	}
	var explore func(node int32, d int64)
	explore = func(node int32, d int64) {
		dom.Lock(uint64(node))
		if d >= dist[node] {
			// Sub-optimal path: this worker dies (Fig. 1, path A.C.E).
			dom.Unlock(uint64(node))
			return
		}
		dist[node] = d
		dom.Unlock(uint64(node))
		for e := in.EOff[node]; e < in.EOff[node+1]; e++ {
			// Probe the architecture at every child path (Fig. 2).
			v, nd := in.EDst[e], d+int64(in.EWgt[e])
			dom.Divide(func() { explore(v, nd) })
		}
	}
	explore(int32(in.Source), 0)
	dom.Join()
	return dist
}

// NativeLZW matches in.Text against the frozen trie in chunk-aligned
// pieces and returns the emitted code count, equal to
// RefLZWMatch(in, LZWChunk). The worker constantly offers the upper half
// of its remaining range; on probe failure it matches one chunk itself
// and probes again — the paper's throttle-motivating pattern.
func NativeLZW(dom capsule.Domain, in *LZWInput) int64 {
	var total atomic.Int64
	var worker func(lo, hi int)
	worker = func(lo, hi int) {
		for hi-lo > LZWChunk {
			// Offer the upper half (chunk-aligned) to a co-worker.
			mid := lo + ((hi-lo)/2+LZWChunk-1)/LZWChunk*LZWChunk
			if mid >= hi {
				break
			}
			m, h := mid, hi
			if dom.TryDivide(func() { worker(m, h) }) {
				hi = mid
			} else {
				// Probe failed: match one chunk ourselves, probe again.
				total.Add(lzwMatchRange(in, lo, lo+LZWChunk))
				lo += LZWChunk
			}
		}
		if lo < hi {
			total.Add(lzwMatchRange(in, lo, hi))
		}
	}
	worker(0, len(in.Text))
	dom.Join()
	return total.Load()
}

// lzwMatchRange greedily matches [lo, hi) against the trie and returns
// the number of codes emitted — the native matchChunk.
func lzwMatchRange(in *LZWInput, lo, hi int) int64 {
	var codes int64
	p := lo
	for p < hi {
		node := int32(0)
		for p < hi {
			c := in.Next[node*lzwAlpha+int32(in.Text[p])]
			if c < 0 {
				break
			}
			node = c
			p++
		}
		if node == 0 {
			p++ // unknown symbol: emit a literal
		}
		codes++
	}
	return codes
}

// NativePerceptron trains the perceptron on dom and returns the final
// weights and mistake count, equal to RefPerceptron(in). The forward dot
// product and the weight update halve their neuron range at every probe,
// the paper's Fig. 7 pattern; partial sums are exact integer adds and
// update ranges are disjoint, so the result is interleaving-independent.
func NativePerceptron(dom capsule.Domain, in *PerceptronInput) (w []int64, mistakes int64) {
	w = append([]int64(nil), in.W0...)
	var acc atomic.Int64

	var forward func(lo, hi int, x []int64)
	forward = func(lo, hi int, x []int64) {
		for hi-lo > PerceptronChunk {
			mid := (lo + hi) / 2
			m, h := mid, hi
			if dom.TryDivide(func() { forward(m, h, x) }) {
				hi = mid
			} else {
				acc.Add(dotQ8(w, x, lo, lo+PerceptronChunk))
				lo += PerceptronChunk
			}
		}
		if lo < hi {
			acc.Add(dotQ8(w, x, lo, hi))
		}
	}
	var update func(lo, hi int, x []int64, t int64)
	update = func(lo, hi int, x []int64, t int64) {
		for hi-lo > PerceptronChunk {
			mid := (lo + hi) / 2
			m, h := mid, hi
			if dom.TryDivide(func() { update(m, h, x, t) }) {
				hi = mid
			} else {
				updQ8(w, x, t, lo, lo+PerceptronChunk)
				lo += PerceptronChunk
			}
		}
		if lo < hi {
			updQ8(w, x, t, lo, hi)
		}
	}

	for e := 0; e < in.Epochs; e++ {
		for p := 0; p < in.Patterns; p++ {
			acc.Store(0)
			forward(0, in.Neurons, in.X[p])
			dom.Join()
			pred := int64(1)
			if acc.Load() < 0 {
				pred = -1
			}
			if pred != in.Y[p] {
				mistakes++
				update(0, in.Neurons, in.X[p], in.Y[p])
				dom.Join()
			}
		}
	}
	return w, mistakes
}

func dotQ8(w, x []int64, lo, hi int) int64 {
	var s int64
	for i := lo; i < hi; i++ {
		s += (w[i] * x[i]) >> 8
	}
	return s
}

func updQ8(w, x []int64, t int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		w[i] += (t * x[i]) >> 4
	}
}

// NativeNames lists the workloads with a native implementation, in the
// order cmd/caprun documents them.
func NativeNames() []string {
	return []string{"quicksort", "dijkstra", "lzw", "perceptron"}
}

// NativeResult is one native run: the headline output value, the wall
// time of the native execution alone (input generation and reference
// validation excluded), and the runtime statistics accumulated during
// the run.
type NativeResult struct {
	Workload string
	Output   string // human-readable headline (checksum, code count, ...)
	Elapsed  time.Duration
	Stats    capsule.Stats
}

// RunNative executes one native workload on rt with inputs generated the
// same way cmd/capsim generates them (same generator, same meaning of n
// and seed), validates the result against the Go reference, and reports
// the stats delta across the run — so a shared runtime's cumulative
// counters are left untouched and the result still covers only this run.
func RunNative(rt *capsule.Runtime, workload string, n int, seed int64) (*NativeResult, error) {
	// Seed exactly like cmd/capsim (rand.NewSource(seed), not rngFor) so
	// the same -workload/-n/-seed triple names the same input in both
	// tools and their outputs are directly comparable.
	rng := rand.New(rand.NewSource(seed))
	before := rt.Stats()
	res := &NativeResult{Workload: workload}
	timed := func(fn func()) {
		start := time.Now()
		fn()
		res.Elapsed = time.Since(start)
	}
	switch workload {
	case "quicksort":
		list := GenList(rng, ListUniform, n)
		var got []int64
		timed(func() { got = NativeQuickSort(rt, list) })
		want := append([]int64(nil), list...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("native quicksort: arr[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		res.Output = fmt.Sprintf("sorted %d elements (checksum %d)", len(got), checksum(got))
	case "dijkstra":
		in := GenGraph(rng, n, GenDijkstraMaxDeg, GenDijkstraMaxW)
		var got []int64
		timed(func() { got = NativeDijkstra(rt, in) })
		want := RefDijkstra(in)
		for v := range want {
			if got[v] != want[v] {
				return nil, fmt.Errorf("native dijkstra: dist[%d] = %d, want %d", v, got[v], want[v])
			}
		}
		res.Output = fmt.Sprintf("distances over %d nodes (checksum %d)", in.N, checksum(got))
	case "lzw":
		in := GenLZW(rng, n)
		var got int64
		timed(func() { got = NativeLZW(rt, in) })
		if want := RefLZWMatch(in, LZWChunk); got != want {
			return nil, fmt.Errorf("native lzw: total codes = %d, want %d", got, want)
		}
		res.Output = fmt.Sprintf("emitted %d codes for %d symbols", got, len(in.Text))
	case "perceptron":
		in := GenPerceptron(rng, n, GenPerceptronPats, GenPerceptronEpochs)
		var gotW []int64
		var gotM int64
		timed(func() { gotW, gotM = NativePerceptron(rt, in) })
		wantW, wantM := RefPerceptron(in)
		if gotM != wantM {
			return nil, fmt.Errorf("native perceptron: mistakes = %d, want %d", gotM, wantM)
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				return nil, fmt.Errorf("native perceptron: w[%d] = %d, want %d", i, gotW[i], wantW[i])
			}
		}
		res.Output = fmt.Sprintf("trained %d neurons, %d mistakes (weight checksum %d)", in.Neurons, gotM, checksum(gotW))
	default:
		return nil, fmt.Errorf("unknown native workload %q (have %v)", workload, NativeNames())
	}
	res.Stats = rt.Stats().Delta(before)
	return res, nil
}

// checksum is an order-sensitive 64-bit digest for compact output
// comparison.
func checksum(xs []int64) uint64 {
	var h uint64 = 1469598103934665603
	for _, x := range xs {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}
