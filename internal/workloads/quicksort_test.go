package workloads

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cpu"
)

func TestGenListKinds(t *testing.T) {
	rng := rngFor(10, 0)
	for k := ListKind(0); k < numListKinds; k++ {
		l := GenList(rng, k, 100)
		if len(l) != 100 {
			t.Fatalf("%v: wrong length", k)
		}
	}
	// Sorted really is sorted; reverse really descends.
	s := GenList(rng, ListSorted, 50)
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatal("sorted kind not sorted")
	}
	r := GenList(rng, ListReverse, 50)
	if !sort.SliceIsSorted(r, func(i, j int) bool { return r[i] > r[j] }) {
		t.Fatal("reverse kind not descending")
	}
	// Few-unique has few uniques.
	f := GenList(rng, ListFewUnique, 200)
	uniq := map[int64]bool{}
	for _, v := range f {
		uniq[v] = true
	}
	if len(uniq) > 8 {
		t.Fatalf("few-unique has %d distinct values", len(uniq))
	}
}

func TestQuickSortFunctionalProperty(t *testing.T) {
	// Property test: the component program sorts arbitrary small arrays on
	// the functional machine.
	base, err := QuickSortProgram(VariantComponent, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []int16) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		list := make([]int64, len(raw))
		for i, v := range raw {
			list[i] = int64(v)
		}
		if len(list) == 0 {
			return true
		}
		p, err := PatchQuickSort(base, list)
		if err != nil {
			return false
		}
		m, err := core.RunFunctional(p, 8, 100_000_000)
		if err != nil {
			return false
		}
		want := append([]int64(nil), list...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			got, err := core.ReadWord(m.Mem, p, "g_arr", i)
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortTimingAllKinds(t *testing.T) {
	rng := rngFor(11, 3)
	for k := ListKind(0); k < numListKinds; k++ {
		list := GenList(rng, k, 120)
		if _, err := RunQuickSort(list, VariantComponent, cpu.SOMTConfig()); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestQuickSortImperativeOnSuperscalar(t *testing.T) {
	rng := rngFor(12, 0)
	list := GenList(rng, ListUniform, 200)
	res, err := RunQuickSort(list, VariantImperative, cpu.SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DivRequested != 0 {
		t.Fatal("imperative variant must not probe")
	}
}

func TestQuickSortDivisionTreeIrregular(t *testing.T) {
	rng := rngFor(13, 1)
	list := GenList(rng, ListUniform, 400)
	res, err := RunQuickSortTraced(list, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divisions) < 3 {
		t.Fatalf("expected several divisions, got %d", len(res.Divisions))
	}
	// The tree must be a tree: every child appears exactly once, parents
	// precede children.
	seen := map[int]bool{0: true}
	for _, d := range res.Divisions {
		if seen[d.Child] {
			t.Fatalf("child %d created twice", d.Child)
		}
		if !seen[d.Parent] {
			t.Fatalf("parent %d unseen before child %d", d.Parent, d.Child)
		}
		seen[d.Child] = true
	}
}

func TestQuickSortSOMTBeatsSuperscalarOnUniform(t *testing.T) {
	rng := rngFor(14, 2)
	list := GenList(rng, ListUniform, 600)
	ss, err := RunQuickSort(list, VariantImperative, cpu.SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	so, err := RunQuickSort(list, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if so.Cycles >= ss.Cycles {
		t.Fatalf("SOMT (%d cycles) should beat superscalar (%d cycles) on n=600", so.Cycles, ss.Cycles)
	}
	t.Logf("speedup %.2f", float64(ss.Cycles)/float64(so.Cycles))
}
