package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// Perceptron is the second Fig. 7 workload: a single-layer perceptron whose
// component version "constantly attempts to split its initial group of
// neurons into two child components with half the number of neurons". The
// dot product per split is tiny, so throttling is what keeps division
// overhead from eating the parallel gain.
//
// Arithmetic is fixed-point (Q8) so results are exact and independent of
// worker interleaving (the locked accumulation is an integer sum).

// PerceptronInput is one training problem.
type PerceptronInput struct {
	Neurons  int // weight vector length (paper: 10000)
	Patterns int // training patterns
	Epochs   int
	X        [][]int64 // inputs, Q8 fixed point
	Y        []int64   // targets: +1/-1
	W0       []int64   // initial weights, Q8
}

// GenPerceptron generates a linearly-separable-ish problem.
func GenPerceptron(rng *rand.Rand, neurons, patterns, epochs int) *PerceptronInput {
	in := &PerceptronInput{Neurons: neurons, Patterns: patterns, Epochs: epochs}
	trueW := make([]int64, neurons)
	for i := range trueW {
		trueW[i] = int64(rng.Intn(513) - 256) // [-1, 1] in Q8
	}
	in.W0 = make([]int64, neurons)
	for i := range in.W0 {
		in.W0[i] = int64(rng.Intn(65) - 32)
	}
	in.X = make([][]int64, patterns)
	in.Y = make([]int64, patterns)
	for p := 0; p < patterns; p++ {
		in.X[p] = make([]int64, neurons)
		var dot int64
		for i := 0; i < neurons; i++ {
			in.X[p][i] = int64(rng.Intn(513) - 256)
			dot += trueW[i] * in.X[p][i] >> 8
		}
		if dot >= 0 {
			in.Y[p] = 1
		} else {
			in.Y[p] = -1
		}
	}
	return in
}

// RefPerceptron trains the reference model and returns final weights and
// the total mistake count, using the same fixed-point updates as the CapC
// program.
func RefPerceptron(in *PerceptronInput) (w []int64, mistakes int64) {
	w = append([]int64(nil), in.W0...)
	for e := 0; e < in.Epochs; e++ {
		for p := 0; p < in.Patterns; p++ {
			var acc int64
			for i := 0; i < in.Neurons; i++ {
				acc += w[i] * in.X[p][i] >> 8
			}
			pred := int64(1)
			if acc < 0 {
				pred = -1
			}
			if pred != in.Y[p] {
				mistakes++
				for i := 0; i < in.Neurons; i++ {
					w[i] += in.Y[p] * in.X[p][i] >> 4
				}
			}
		}
	}
	return w, mistakes
}

// PerceptronChunk is the leaf range size for the component version. Tiny on
// purpose: the paper's group of 10000 neurons halves down to components
// that "perform little processing on their data" (Fig. 7).
const PerceptronChunk = 4

// perceptronSrc emits CapC. The forward dot product and the weight update
// are componentised the paper's way: the worker constantly offers the
// upper half of its remaining neuron range to a co-worker; on probe
// failure it computes one chunk itself and probes again.
func perceptronSrc(variant Variant, maxNeurons, maxPatterns int) string {
	common := fmt.Sprintf(`
const MAXNEU = %d;
const MAXPAT = %d;
const CHUNK = %d;
var neurons;
var patterns;
var epochs;
var w[MAXNEU];
var x[MAXNEU * MAXPAT];
var y[MAXPAT];
var acc;
var mistakes;

func dot(lo, hi, pat) {
	var base = pat * neurons;
	var s = 0;
	var i;
	for (i = lo; i < hi; i = i + 1) {
		s = s + ((w[i] * x[base + i]) >> 8);
	}
	lock(&acc);
	acc = acc + s;
	unlock(&acc);
	return 0;
}

func upd(lo, hi, pat) {
	var base = pat * neurons;
	var t = y[pat];
	var i;
	for (i = lo; i < hi; i = i + 1) {
		w[i] = w[i] + ((t * x[base + i]) >> 4);
	}
	return 0;
}
`, maxNeurons, maxPatterns, PerceptronChunk)

	if variant == VariantImperative {
		return common + `
func main() {
	var e;
	for (e = 0; e < epochs; e = e + 1) {
		var p;
		for (p = 0; p < patterns; p = p + 1) {
			acc = 0;
			dot(0, neurons, p);
			var pred = 1;
			if (acc < 0) { pred = 0 - 1; }
			if (pred != y[p]) {
				mistakes = mistakes + 1;
				upd(0, neurons, p);
			}
		}
	}
	print(mistakes);
}
`
	}
	return common + `
worker forward(lo, hi, pat) {
	while (hi - lo > CHUNK) {
		var mid = (lo + hi) / 2;
		var denied = 0;
		coworker forward(mid, hi, pat) else { denied = 1; }
		if (denied) {
			dot(lo, lo + CHUNK, pat);
			lo = lo + CHUNK;
		} else {
			hi = mid;
		}
	}
	if (lo < hi) { dot(lo, hi, pat); }
	return 0;
}

worker update(lo, hi, pat) {
	while (hi - lo > CHUNK) {
		var mid = (lo + hi) / 2;
		var denied = 0;
		coworker update(mid, hi, pat) else { denied = 1; }
		if (denied) {
			upd(lo, lo + CHUNK, pat);
			lo = lo + CHUNK;
		} else {
			hi = mid;
		}
	}
	if (lo < hi) { upd(lo, hi, pat); }
	return 0;
}

func main() {
	var e;
	for (e = 0; e < epochs; e = e + 1) {
		var p;
		for (p = 0; p < patterns; p = p + 1) {
			acc = 0;
			forward(0, neurons, p);
			join();
			var pred = 1;
			if (acc < 0) { pred = 0 - 1; }
			if (pred != y[p]) {
				mistakes = mistakes + 1;
				update(0, neurons, p);
				join();
			}
		}
	}
	print(mistakes);
}
`
}

// PerceptronProgram compiles (cached) the requested variant.
func PerceptronProgram(variant Variant, maxNeurons, maxPatterns int) (*prog.Program, error) {
	key := fmt.Sprintf("perceptron-%s-%d-%d", variant, maxNeurons, maxPatterns)
	return cachedBuild(variant, key, func() string { return perceptronSrc(variant, maxNeurons, maxPatterns) })
}

// PatchPerceptron writes the problem into a fresh image.
func PatchPerceptron(p *prog.Program, in *PerceptronInput, maxNeurons int) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_neurons", 0, int64(in.Neurons)); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_patterns", 0, int64(in.Patterns)); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_epochs", 0, int64(in.Epochs)); err != nil {
		return nil, err
	}
	for i, v := range in.W0 {
		if err := im.SetWord("g_w", i, v); err != nil {
			return nil, err
		}
	}
	for pat := range in.X {
		for i, v := range in.X[pat] {
			if err := im.SetWord("g_x", pat*in.Neurons+i, v); err != nil {
				return nil, err
			}
		}
	}
	for pat, v := range in.Y {
		if err := im.SetWord("g_y", pat, v); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunPerceptron simulates and validates one training problem.
//
// Note the componentised update phase writes disjoint weight ranges and the
// forward phase accumulates under a lock, so the result is exact.
func RunPerceptron(in *PerceptronInput, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	base, err := PerceptronProgram(variant, capRound(in.Neurons), in.Patterns)
	if err != nil {
		return nil, err
	}
	p, err := PatchPerceptron(base, in, capRound(in.Neurons))
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	wantW, wantM := RefPerceptron(in)
	out := res.UserOutput()
	if len(out) != 1 || out[0] != wantM {
		return nil, fmt.Errorf("perceptron: mistakes = %v, want %d", out, wantM)
	}
	for i := 0; i < in.Neurons; i += 97 { // spot-check weights
		got, err := core.ReadWord(res.Mem, p, "g_w", i)
		if err != nil {
			return nil, err
		}
		if got != wantW[i] {
			return nil, fmt.Errorf("perceptron: w[%d] = %d, want %d", i, got, wantW[i])
		}
	}
	return res, nil
}
