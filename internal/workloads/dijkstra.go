package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// Dijkstra is the paper's running example (Figs. 1-3): single-source
// shortest paths over a random directed graph with weighted edges.
//
// The component version is the Fig. 1 algorithm: a worker walks the graph
// carrying its path length; at each node it either improves the recorded
// distance (and keeps exploring the children, dividing when the probe
// succeeds) or dies because it is on a sub-optimal path. The monotone
// relaxation makes the result independent of worker interleaving.
//
// The imperative version is the "Normal" central-selection algorithm the
// superscalar baseline runs.

// DijkstraInput is one generated data set.
type DijkstraInput struct {
	N      int // nodes
	Source int
	EOff   []int32 // CSR offsets, len N+1
	EDst   []int32
	EWgt   []int32
}

// GenGraph generates a random connected-ish directed graph with out-degree
// in [1,maxDeg] and weights in [1,maxW].
func GenGraph(rng *rand.Rand, n, maxDeg, maxW int) *DijkstraInput {
	in := &DijkstraInput{N: n, Source: 0, EOff: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		in.EOff[u] = int32(len(in.EDst))
		deg := 1 + rng.Intn(maxDeg)
		for d := 0; d < deg; d++ {
			v := rng.Intn(n)
			// A forward bias keeps most of the graph reachable from 0.
			if rng.Intn(4) != 0 && u+1 < n {
				v = u + 1 + rng.Intn(n-u-1)
			}
			in.EDst = append(in.EDst, int32(v))
			in.EWgt = append(in.EWgt, int32(1+rng.Intn(maxW)))
		}
	}
	in.EOff[n] = int32(len(in.EDst))
	return in
}

// DijkstraInf is the distance sentinel (matches the CapC INF constant).
const DijkstraInf = int64(1) << 40

// RefDijkstra computes reference distances.
func RefDijkstra(in *DijkstraInput) []int64 {
	dist := make([]int64, in.N)
	for i := range dist {
		dist[i] = DijkstraInf
	}
	dist[in.Source] = 0
	visited := make([]bool, in.N)
	for {
		u, best := -1, DijkstraInf
		for v := 0; v < in.N; v++ {
			if !visited[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		visited[u] = true
		for e := in.EOff[u]; e < in.EOff[u+1]; e++ {
			v, w := in.EDst[e], int64(in.EWgt[e])
			if dist[u]+w < dist[v] {
				dist[v] = dist[u] + w
			}
		}
	}
}

// dijkstraSrc emits the CapC source sized for capacity (maxN nodes, maxE
// edges). The component variant divides at each child edge; the imperative
// variant is the central-selection loop.
func dijkstraSrc(variant Variant, maxN, maxE int) string {
	common := fmt.Sprintf(`
const MAXN = %d;
const MAXE = %d;
const INF = %d;
var n;
var src;
var dist[MAXN];
var eoff[MAXN + 1];
var edst[MAXE];
var ewgt[MAXE];
`, maxN, maxE, DijkstraInf)

	if variant == VariantImperative {
		return common + `
var visited[MAXN];

func main() {
	var i;
	for (i = 0; i < n; i = i + 1) { dist[i] = INF; visited[i] = 0; }
	dist[src] = 0;
	while (1) {
		var u = 0 - 1;
		var best = INF;
		var v;
		for (v = 0; v < n; v = v + 1) {
			if (visited[v] == 0) {
				if (dist[v] < best) { u = v; best = dist[v]; }
			}
		}
		if (u < 0) { break; }
		visited[u] = 1;
		var e;
		var lo = eoff[u];
		var hi = eoff[u + 1];
		for (e = lo; e < hi; e = e + 1) {
			var nd = best + ewgt[e];
			var w = edst[e];
			if (nd < dist[w]) { dist[w] = nd; }
		}
	}
}
`
	}
	return common + `
worker explore(node, d) {
	lock(dist + node * 8);
	if (d >= dist[node]) {
		// Sub-optimal path: this worker dies (Fig. 1, path A.C.E).
		unlock(dist + node * 8);
		return 0;
	}
	dist[node] = d;
	unlock(dist + node * 8);
	var e;
	var lo = eoff[node];
	var hi = eoff[node + 1];
	for (e = lo; e < hi; e = e + 1) {
		// Probe the architecture at every child path (Fig. 2).
		coworker explore(edst[e], d + ewgt[e]);
	}
	return 0;
}

func main() {
	var i;
	for (i = 0; i < n; i = i + 1) { dist[i] = INF; }
	explore(src, 0);
	join();
}
`
}

// DijkstraProgram compiles (cached) the requested variant with capacity for
// in.
func DijkstraProgram(variant Variant, maxN, maxE int) (*prog.Program, error) {
	key := fmt.Sprintf("dijkstra-%s-%d-%d", variant, maxN, maxE)
	return cachedBuild(variant, key, func() string { return dijkstraSrc(variant, maxN, maxE) })
}

// PatchDijkstra writes in into a fresh image of p.
func PatchDijkstra(p *prog.Program, in *DijkstraInput) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_n", 0, int64(in.N)); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_src", 0, int64(in.Source)); err != nil {
		return nil, err
	}
	for i := 0; i <= in.N; i++ {
		if err := im.SetWord("g_eoff", i, int64(in.EOff[i])); err != nil {
			return nil, err
		}
	}
	for i := range in.EDst {
		if err := im.SetWord("g_edst", i, int64(in.EDst[i])); err != nil {
			return nil, err
		}
		if err := im.SetWord("g_ewgt", i, int64(in.EWgt[i])); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunDijkstra simulates one data set on one machine and validates the
// distances against the Go reference.
func RunDijkstra(in *DijkstraInput, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	maxN, maxE := capRound(in.N), capRound(len(in.EDst))
	base, err := DijkstraProgram(variant, maxN, maxE)
	if err != nil {
		return nil, err
	}
	p, err := PatchDijkstra(base, in)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	if err := CheckDijkstra(res, p, in); err != nil {
		return nil, err
	}
	return res, nil
}

// CheckDijkstra validates simulated distances against the reference.
func CheckDijkstra(res *core.RunResult, p *prog.Program, in *DijkstraInput) error {
	want := RefDijkstra(in)
	for v := 0; v < in.N; v++ {
		got, err := core.ReadWord(res.Mem, p, "g_dist", v)
		if err != nil {
			return err
		}
		if got != want[v] {
			return fmt.Errorf("dijkstra: dist[%d] = %d, want %d", v, got, want[v])
		}
	}
	return nil
}

// capRound rounds a capacity up to a small set of sizes so the build cache
// stays effective across data sets of similar size.
func capRound(n int) int {
	for _, c := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		if n <= c {
			return c
		}
	}
	return n
}
