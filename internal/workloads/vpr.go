package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// VPR is the 175.vpr proxy: "the component implements FPGA routing and
// placement by simultaneously exploring many circuit graph paths". The
// proxy is a negotiated-congestion (Pathfinder-style) maze router on a
// 4-connected grid: each iteration re-routes every net by a cost-directed
// wavefront exploration (the componentised part: path exploration divides
// exactly like the Dijkstra worker), then overused cells accumulate
// history cost; the router converges when no cell is overused.
//
// Like the paper's vpr, the parallel version can converge in a different
// number of iterations than the sequential one (path choice under equal
// costs depends on exploration order); validation is by invariants: all
// paths connected and, on convergence, no overuse. The working set
// (dist/pred/stamp/hist/usage over the grid) thrashes the 8 kB L1D, which
// is why the paper's cache-doubling experiment helps this workload.

// VPRInput is one routing instance.
type VPRInput struct {
	W, H     int
	Nets     [][2]int32 // (src, dst) cell ids
	MaxIters int
	Capacity int // cell capacity (paper-style unit capacity)
}

// GenVPR builds a grid and random nets with distinct-ish endpoints pushed
// through a congested centre.
func GenVPR(rng *rand.Rand, w, h, nets, maxIters int) *VPRInput {
	in := &VPRInput{W: w, H: h, MaxIters: maxIters, Capacity: 2}
	for len(in.Nets) < nets {
		// Force crossings: sources on the left edge region, sinks right.
		sx, sy := rng.Intn(w/4), rng.Intn(h)
		dx, dy := w-1-rng.Intn(w/4), rng.Intn(h)
		src := int32(sy*w + sx)
		dst := int32(dy*w + dx)
		if src != dst {
			in.Nets = append(in.Nets, [2]int32{src, dst})
		}
	}
	return in
}

func vprSrc(variant Variant, maxCells, maxNets, maxPath int) string {
	common := fmt.Sprintf(`
const MAXC = %d;
const MAXNET = %d;
const MAXPATH = %d;
const INF = %d;
const OVERPEN = 8;      // present-congestion penalty per unit of usage
const HISTINC = 2;      // history increment for overused cells
var width;
var height;
var ncells;
var nnets;
var capacity;
var maxiter;
var nsrc[MAXNET];
var ndst[MAXNET];
var dist[MAXC];
var pred[MAXC];
var stamp[MAXC];
var gen;
var hist[MAXC];
var usage[MAXC];
var pathlen[MAXNET];
var pathbuf[MAXNET * MAXPATH];
var iters;
var converged;
var placecost;
const MARKSTART = %d;
const MARKEND = %d;

// cellcost: negotiated congestion cost of entering a cell.
func cellcost(c) {
	return 1 + hist[c] + usage[c] * OVERPEN;
}
`, maxCells, maxNets, maxPath, DijkstraInf, core.MarkSectionStart, core.MarkSectionEnd)

	explore := `
%[1]s explore(cell, d, from) {
	lock(dist + cell * 8);
	var known = INF;
	if (stamp[cell] == gen) { known = dist[cell]; }
	if (d >= known) {
		unlock(dist + cell * 8);
		return 0;
	}
	dist[cell] = d;
	pred[cell] = from;
	stamp[cell] = gen;
	unlock(dist + cell * 8);
	var x = cell %% width;
	var y = cell / width;
	if (y > 0) {
		var nb = cell - width;
		%[2]s
	}
	if (y < height - 1) {
		var nb = cell + width;
		%[2]s
	}
	if (x > 0) {
		var nb = cell - 1;
		%[2]s
	}
	if (x < width - 1) {
		var nb = cell + 1;
		%[2]s
	}
	return 0;
}
`
	spawn := "coworker explore(nb, d + cellcost(nb), cell);"
	kw := "worker"
	joinStmt := "join();"
	if variant == VariantImperative {
		spawn = "explore(nb, d + cellcost(nb), cell);"
		kw = "func"
		joinStmt = ""
	}

	mainBody := fmt.Sprintf(`
func routenet(net) {
	gen = gen + 1;
	var s = nsrc[net];
	explore(s, 0, s);
	%s
	// Walk the path back from the sink, marking usage.
	var p = ndst[net];
	var k = 0;
	while (k < MAXPATH) {
		pathbuf[net * MAXPATH + k] = p;
		k = k + 1;
		usage[p] = usage[p] + 1;
		if (p == s) { break; }
		p = pred[p];
	}
	pathlen[net] = k;
	return 0;
}

func main() {
	iters = 0;
	converged = 0;
	gen = 0;
	print(MARKSTART);
	while (iters < maxiter) {
		iters = iters + 1;
		var c;
		for (c = 0; c < ncells; c = c + 1) { usage[c] = 0; }
		var net;
		for (net = 0; net < nnets; net = net + 1) {
			routenet(net);
		}
		var over = 0;
		for (c = 0; c < ncells; c = c + 1) {
			if (usage[c] > capacity) {
				over = over + 1;
				hist[c] = hist[c] + HISTINC;
			}
		}
		if (over == 0) {
			converged = 1;
			break;
		}
	}
	print(MARKEND);
	// The small non-componentised remainder: a placement-cost style scan.
	var i;
	var pc = 0;
	for (i = 0; i < nnets; i = i + 1) {
		var s = nsrc[i];
		var d = ndst[i];
		var dx = s %% width - d %% width;
		if (dx < 0) { dx = 0 - dx; }
		var dy = s / width - d / width;
		if (dy < 0) { dy = 0 - dy; }
		pc = pc + dx + dy;
	}
	placecost = pc;
	print(iters);
	print(converged);
}
`, joinStmt)

	return common + fmt.Sprintf(explore, kw, spawn) + mainBody
}

// VPRProgram compiles (cached) the requested variant.
func VPRProgram(variant Variant, maxCells, maxNets, maxPath int) (*prog.Program, error) {
	key := fmt.Sprintf("vpr-%s-%d-%d-%d", variant, maxCells, maxNets, maxPath)
	return cachedBuild(variant, key, func() string { return vprSrc(variant, maxCells, maxNets, maxPath) })
}

// vprMaxPath bounds stored path length.
func vprMaxPath(in *VPRInput) int { return capRound(4 * (in.W + in.H)) }

// PatchVPR writes the instance into a fresh image.
func PatchVPR(p *prog.Program, in *VPRInput) (*prog.Program, error) {
	im := core.NewImage(p)
	fields := map[string]int64{
		"g_width":    int64(in.W),
		"g_height":   int64(in.H),
		"g_ncells":   int64(in.W * in.H),
		"g_nnets":    int64(len(in.Nets)),
		"g_capacity": int64(in.Capacity),
		"g_maxiter":  int64(in.MaxIters),
	}
	for sym, v := range fields {
		if err := im.SetWord(sym, 0, v); err != nil {
			return nil, err
		}
	}
	for i, net := range in.Nets {
		if err := im.SetWord("g_nsrc", i, int64(net[0])); err != nil {
			return nil, err
		}
		if err := im.SetWord("g_ndst", i, int64(net[1])); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// VPRResult summarises a validated routing run.
type VPRResult struct {
	Run        *core.RunResult
	Iterations int64
	Converged  bool
}

// RunVPR simulates one instance and validates routing invariants: every
// net's stored path walks adjacent cells from sink to source, and if the
// router claims convergence, no cell exceeds capacity.
func RunVPR(in *VPRInput, variant Variant, cfg cpu.Config) (*VPRResult, error) {
	maxPath := vprMaxPath(in)
	base, err := VPRProgram(variant, capRound(in.W*in.H), capRound(len(in.Nets)), maxPath)
	if err != nil {
		return nil, err
	}
	p, err := PatchVPR(base, in)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	out := res.UserOutput()
	if len(out) != 2 {
		return nil, fmt.Errorf("vpr: output = %v", out)
	}
	iters, converged := out[0], out[1] == 1

	usage := make([]int, in.W*in.H)
	for net := range in.Nets {
		plen, err := core.ReadWord(res.Mem, p, "g_pathlen", net)
		if err != nil {
			return nil, err
		}
		if plen <= 0 || plen > int64(maxPath) {
			return nil, fmt.Errorf("vpr: net %d path length %d", net, plen)
		}
		prev := int64(-1)
		for k := int64(0); k < plen; k++ {
			cell, err := core.ReadWord(res.Mem, p, "g_pathbuf", net*maxPath+int(k))
			if err != nil {
				return nil, err
			}
			if k == 0 && cell != int64(in.Nets[net][1]) {
				return nil, fmt.Errorf("vpr: net %d path does not start at sink", net)
			}
			if prev >= 0 && !gridAdjacent(in.W, prev, cell) {
				return nil, fmt.Errorf("vpr: net %d: %d -> %d not adjacent", net, prev, cell)
			}
			usage[cell]++
			prev = cell
		}
		if prev != int64(in.Nets[net][0]) {
			return nil, fmt.Errorf("vpr: net %d path does not reach source", net)
		}
	}
	if converged {
		for c, u := range usage {
			if u > in.Capacity {
				return nil, fmt.Errorf("vpr: claims convergence but cell %d used %d > %d", c, u, in.Capacity)
			}
		}
	}
	return &VPRResult{Run: res, Iterations: iters, Converged: converged}, nil
}

func gridAdjacent(w int, a, b int64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d == int64(w) {
		return true
	}
	if d == 1 {
		return a/int64(w) == b/int64(w)
	}
	return false
}
