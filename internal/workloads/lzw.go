package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// LZW is one of the two Fig. 7 workloads. The paper's component version
// "recursively splits the initial sequence of N = 4096 characters it must
// match into two sequences of N/2 characters in order to parallelize the
// search": many tiny workers, each matching a small piece of the sequence
// against the dictionary, with frequent division opportunities — the
// workload that motivates division throttling.
//
// Substitution detail (documented in DESIGN.md): the dictionary here is a
// static trie built by the input generator (an LZ78-style dictionary frozen
// after a warm-up pass). Matching a chunk against a read-only trie is
// deterministic under any worker interleaving, which lets every run be
// validated exactly against the Go reference; the dynamic behaviour Fig. 7
// measures (tiny workers + constant probing) is unchanged.

// LZWChunk is the match-work quantum in characters. Deliberately tiny: the
// paper's point is that components this small need the throttle.
const LZWChunk = 8

// lzwAlpha is the symbol alphabet size.
const lzwAlpha = 8

// LZWInput is one matching problem: symbols plus a static dictionary trie.
type LZWInput struct {
	Text []byte // symbols in [0, lzwAlpha)
	// Trie: node 0 is the root; Next[node*lzwAlpha+sym] is the child node
	// id or -1. Every node is a dictionary entry.
	Next []int32
}

// GenLZW generates a skewed random symbol text and builds an LZ78-style
// dictionary trie from a warm-up prefix, then freezes it.
func GenLZW(rng *rand.Rand, n int) *LZWInput {
	text := make([]byte, n)
	for i := range text {
		// Skewed distribution: symbol 0 most common.
		r := rng.Intn(16)
		switch {
		case r < 7:
			text[i] = 0
		case r < 11:
			text[i] = 1
		case r < 13:
			text[i] = 2
		default:
			text[i] = byte(3 + rng.Intn(lzwAlpha-3))
		}
	}
	in := &LZWInput{Text: text}
	in.Next = []int32{}
	newNode := func() int32 {
		id := int32(len(in.Next) / lzwAlpha)
		for i := 0; i < lzwAlpha; i++ {
			in.Next = append(in.Next, -1)
		}
		return id
	}
	root := newNode()
	_ = root
	// LZ78 warm-up over the first half: insert each phrase.
	limit := n / 2
	node := int32(0)
	for p := 0; p < limit; p++ {
		s := int32(text[p])
		if c := in.Next[node*lzwAlpha+s]; c >= 0 {
			node = c
			continue
		}
		if len(in.Next)/lzwAlpha < 2048 {
			in.Next[node*lzwAlpha+s] = newNode()
		}
		node = 0
	}
	return in
}

// RefLZWMatch counts the codes emitted when greedily matching text against
// the trie in independent chunks of the given size (matches do not cross
// chunk boundaries), exactly like the CapC program.
func RefLZWMatch(in *LZWInput, chunk int) int64 {
	var codes int64
	n := len(in.Text)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p := lo
		for p < hi {
			node := int32(0)
			for p < hi {
				c := in.Next[node*lzwAlpha+int32(in.Text[p])]
				if c < 0 {
					break
				}
				node = c
				p++
			}
			if node == 0 {
				p++ // unknown symbol: emit a literal
			}
			codes++
		}
	}
	return codes
}

// lzwSrc emits the CapC source. The component worker constantly offers the
// upper half of its remaining range to a co-worker (one probe per chunk of
// work when saturated); on probe failure it matches one chunk itself.
func lzwSrc(variant Variant, maxN, maxTrie int) string {
	common := fmt.Sprintf(`
const MAXN = %d;
const MAXTRIE = %d;
const ALPHA = %d;
const CHUNK = %d;
var text[MAXN];
var trie[MAXTRIE];
var n;
var total;

func matchChunk(lo, hi) {
	var codes = 0;
	var p = lo;
	while (p < hi) {
		var node = 0;
		while (p < hi) {
			var c = trie[node * ALPHA + text[p]];
			if (c < 0) { break; }
			node = c;
			p = p + 1;
		}
		if (node == 0) { p = p + 1; }
		codes = codes + 1;
	}
	lock(&total);
	total = total + codes;
	unlock(&total);
	return 0;
}
`, maxN, maxTrie, lzwAlpha, LZWChunk)

	if variant == VariantImperative {
		return common + `
func main() {
	var lo = 0;
	while (lo < n) {
		var hi = lo + CHUNK;
		if (hi > n) { hi = n; }
		matchChunk(lo, hi);
		lo = hi;
	}
	print(total);
}
`
	}
	return common + `
worker lzw(lo, hi) {
	while (hi - lo > CHUNK) {
		// Offer the upper half (chunk-aligned) to a co-worker.
		var mid = lo + (((hi - lo) / 2 + CHUNK - 1) / CHUNK) * CHUNK;
		if (mid >= hi) { break; }
		var denied = 0;
		coworker lzw(mid, hi) else { denied = 1; }
		if (denied) {
			// Probe failed: match one chunk ourselves, probe again.
			matchChunk(lo, lo + CHUNK);
			lo = lo + CHUNK;
		} else {
			hi = mid;
		}
	}
	if (lo < hi) { matchChunk(lo, hi); }
	return 0;
}

func main() {
	lzw(0, n);
	join();
	print(total);
}
`
}

// LZWProgram compiles (cached) the requested variant.
func LZWProgram(variant Variant, maxN, maxTrie int) (*prog.Program, error) {
	key := fmt.Sprintf("lzw-%s-%d-%d", variant, maxN, maxTrie)
	return cachedBuild(variant, key, func() string { return lzwSrc(variant, maxN, maxTrie) })
}

// PatchLZW writes the problem into a fresh image.
func PatchLZW(p *prog.Program, in *LZWInput) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_n", 0, int64(len(in.Text))); err != nil {
		return nil, err
	}
	for i, c := range in.Text {
		if err := im.SetWord("g_text", i, int64(c)); err != nil {
			return nil, err
		}
	}
	for i, v := range in.Next {
		if err := im.SetWord("g_trie", i, int64(v)); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunLZW simulates and validates one matching problem.
func RunLZW(in *LZWInput, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	base, err := LZWProgram(variant, capRound(len(in.Text)), capRound(len(in.Next)))
	if err != nil {
		return nil, err
	}
	p, err := PatchLZW(base, in)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	want := RefLZWMatch(in, LZWChunk)
	out := res.UserOutput()
	if len(out) != 1 || out[0] != want {
		return nil, fmt.Errorf("lzw: total codes = %v, want %d", out, want)
	}
	return res, nil
}
