package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// MCF is the 181.mcf proxy. In the paper "the component replaces a
// sequential tree traversal (for route planning) with a parallel tree
// search", with division tested at every tree node (the highest division
// rate in Table 3), and the componentised section covers ~45% of execution.
//
// The proxy searches a binary cost tree for the cheapest root-to-leaf path
// (the route-planning kernel) and embeds it in a pointer-chasing sequential
// remainder (mcf is memory-latency-bound), sized so the component section
// is roughly the paper's share of superscalar execution time.

// MCFInput is one instance.
type MCFInput struct {
	// Binary tree in arrays; Left/Right are child ids or -1.
	Left, Right []int32
	Cost        []int64
	// Sequential part: a shuffled singly linked list walked SeqRounds
	// times.
	ListNext  []int32
	ListVal   []int64
	SeqRounds int
}

// GenMCF generates a random tree with the given number of internal levels
// (not necessarily complete) and a shuffled list for the sequential phase.
func GenMCF(rng *rand.Rand, nodes, listLen, seqRounds int) *MCFInput {
	in := &MCFInput{SeqRounds: seqRounds}
	in.Left = make([]int32, nodes)
	in.Right = make([]int32, nodes)
	in.Cost = make([]int64, nodes)
	for i := 0; i < nodes; i++ {
		in.Cost[i] = int64(1 + rng.Intn(100))
		l, r := 2*i+1, 2*i+2
		if l < nodes && rng.Intn(8) != 0 {
			in.Left[i] = int32(l)
		} else {
			in.Left[i] = -1
		}
		if r < nodes && in.Left[i] >= 0 && rng.Intn(8) != 0 {
			in.Right[i] = int32(r)
		} else {
			in.Right[i] = -1
		}
		if in.Left[i] < 0 {
			in.Right[i] = -1 // leaves have no children at all
		}
	}
	// Shuffled circular-ish list.
	perm := rng.Perm(listLen)
	in.ListNext = make([]int32, listLen)
	in.ListVal = make([]int64, listLen)
	for i := 0; i < listLen; i++ {
		in.ListNext[perm[i]] = int32(perm[(i+1)%listLen])
		in.ListVal[i] = int64(rng.Intn(1000))
	}
	return in
}

// RefMCF returns (best path cost, sequential checksum).
func RefMCF(in *MCFInput) (int64, int64) {
	var walk func(n int32, acc int64) int64
	walk = func(n int32, acc int64) int64 {
		acc += in.Cost[n]
		if in.Left[n] < 0 {
			return acc
		}
		best := walk(in.Left[n], acc)
		if in.Right[n] >= 0 {
			if r := walk(in.Right[n], acc); r < best {
				best = r
			}
		}
		return best
	}
	best := walk(0, 0)

	var sum int64
	p := int32(0)
	for r := 0; r < in.SeqRounds*len(in.ListNext); r++ {
		sum += in.ListVal[p]
		sum ^= sum << 3
		p = in.ListNext[p]
	}
	return best, sum
}

func mcfSrc(variant Variant, maxNodes, maxList int) string {
	common := fmt.Sprintf(`
const MAXN = %d;
const MAXL = %d;
const INF = %d;
var nnodes;
var left[MAXN];
var right[MAXN];
var cost[MAXN];
var best;
var listlen;
var seqrounds;
var lnext[MAXL];
var lval[MAXL];
var checksum;
const MARKSTART = %d;
const MARKEND = %d;

func seqphase() {
	var sum = 0;
	var p = 0;
	var r = seqrounds * listlen;
	while (r > 0) {
		sum = sum + lval[p];
		sum = sum ^ (sum << 3);
		p = lnext[p];
		r = r - 1;
	}
	checksum = sum;
	return 0;
}
`, maxNodes, maxList, DijkstraInf, core.MarkSectionStart, core.MarkSectionEnd)

	tree := `
%[1]s tmin(node, acc) {
	while (1) {
		acc = acc + cost[node];
		var l = left[node];
		if (l < 0) {
			lock(&best);
			if (acc < best) { best = acc; }
			unlock(&best);
			return 0;
		}
		var r = right[node];
		if (r >= 0) {
			%[2]s
		}
		node = l;
	}
	return 0;
}

func main() {
	best = INF;
	seqphase();
	print(MARKSTART);
	tmin(0, 0);
	%[3]s
	print(MARKEND);
	print(best);
	print(checksum);
}
`
	if variant == VariantComponent {
		return common + fmt.Sprintf(tree, "worker",
			"coworker tmin(r, acc);", // division tested at every tree node
			"join();")
	}
	return common + fmt.Sprintf(tree, "func", "tmin(r, acc);", "")
}

// MCFProgram compiles (cached) the requested variant.
func MCFProgram(variant Variant, maxNodes, maxList int) (*prog.Program, error) {
	key := fmt.Sprintf("mcf-%s-%d-%d", variant, maxNodes, maxList)
	return cachedBuild(variant, key, func() string { return mcfSrc(variant, maxNodes, maxList) })
}

// PatchMCF writes the instance into a fresh image.
func PatchMCF(p *prog.Program, in *MCFInput) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_nnodes", 0, int64(len(in.Left))); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_listlen", 0, int64(len(in.ListNext))); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_seqrounds", 0, int64(in.SeqRounds)); err != nil {
		return nil, err
	}
	for i := range in.Left {
		if err := im.SetWord("g_left", i, int64(in.Left[i])); err != nil {
			return nil, err
		}
		if err := im.SetWord("g_right", i, int64(in.Right[i])); err != nil {
			return nil, err
		}
		if err := im.SetWord("g_cost", i, in.Cost[i]); err != nil {
			return nil, err
		}
	}
	for i := range in.ListNext {
		if err := im.SetWord("g_lnext", i, int64(in.ListNext[i])); err != nil {
			return nil, err
		}
		if err := im.SetWord("g_lval", i, in.ListVal[i]); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunMCF simulates and validates one instance.
func RunMCF(in *MCFInput, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	base, err := MCFProgram(variant, capRound(len(in.Left)), capRound(len(in.ListNext)))
	if err != nil {
		return nil, err
	}
	p, err := PatchMCF(base, in)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	wantBest, wantSum := RefMCF(in)
	out := res.UserOutput()
	if len(out) != 2 || out[0] != wantBest || out[1] != wantSum {
		return nil, fmt.Errorf("mcf: output = %v, want [%d %d]", out, wantBest, wantSum)
	}
	return res, nil
}
