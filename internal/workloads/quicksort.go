package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// QuickSort is the paper's second distribution experiment (Fig. 5) and the
// source of the irregular division tree in Fig. 6. The component version
// partitions, spawns a co-worker on the left sub-list (probing the
// architecture) and keeps the right sub-list itself — an irregular division
// pattern because the pivot rarely splits evenly.

// ListKind enumerates the paper's "various distributions" of input lists.
type ListKind uint8

const (
	ListUniform ListKind = iota
	ListSorted
	ListReverse
	ListNearlySorted
	ListFewUnique
	ListGaussian
	numListKinds
)

func (k ListKind) String() string {
	switch k {
	case ListUniform:
		return "uniform"
	case ListSorted:
		return "sorted"
	case ListReverse:
		return "reverse"
	case ListNearlySorted:
		return "nearly-sorted"
	case ListFewUnique:
		return "few-unique"
	default:
		return "gaussian"
	}
}

// GenList generates one input list of the given kind.
func GenList(rng *rand.Rand, kind ListKind, n int) []int64 {
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	switch kind {
	case ListUniform:
		for i := range out {
			out[i] = rng.Int63n(1 << 30)
		}
	case ListSorted:
		for i := range out {
			out[i] = int64(i) * 3
		}
	case ListReverse:
		for i := range out {
			out[i] = int64(n-i) * 3
		}
	case ListNearlySorted:
		for i := range out {
			out[i] = int64(i) * 3
		}
		for s := 0; s < n/20+1; s++ {
			i, j := rng.Intn(n), rng.Intn(n)
			out[i], out[j] = out[j], out[i]
		}
	case ListFewUnique:
		for i := range out {
			out[i] = int64(rng.Intn(8))
		}
	default: // gaussian
		for i := range out {
			out[i] = int64(rng.NormFloat64()*1000) + (1 << 20)
		}
	}
	return out
}

// quickSortSrc emits CapC for either variant. Both use middle-element
// pivoting with a small insertion-sort cutoff; the component variant turns
// the left-half recursion into a conditional division.
func quickSortSrc(variant Variant, maxN int) string {
	header := fmt.Sprintf(`
const MAXN = %d;
var arr[MAXN];
var n;
`, maxN)

	body := `
%[1]s qsort(lo, hi) {
	while (hi - lo > 8) {
		// Middle-element pivot, Hoare partition.
		var p = arr[(lo + hi) / 2];
		var i = lo;
		var j = hi - 1;
		while (i <= j) {
			while (arr[i] < p) { i = i + 1; }
			while (arr[j] > p) { j = j - 1; }
			if (i <= j) {
				var tmp = arr[i];
				arr[i] = arr[j];
				arr[j] = tmp;
				i = i + 1;
				j = j - 1;
			}
		}
		%[2]s
		lo = i;
	}
	// Insertion sort for small runs.
	var k;
	for (k = lo + 1; k < hi; k = k + 1) {
		var v = arr[k];
		var m = k - 1;
		while (m >= lo) {
			if (arr[m] <= v) { break; }
			arr[m + 1] = arr[m];
			m = m - 1;
		}
		arr[m + 1] = v;
	}
	return 0;
}

func main() {
	qsort(0, n);
	%[3]s
}
`
	if variant == VariantComponent {
		return header + fmt.Sprintf(body,
			"worker",
			"coworker qsort(lo, j + 1);", // divide: a co-worker takes the left part
			"join();")
	}
	return header + fmt.Sprintf(body,
		"func",
		"qsort(lo, j + 1);",
		"")
}

// QuickSortProgram compiles (cached) the requested variant.
func QuickSortProgram(variant Variant, maxN int) (*prog.Program, error) {
	key := fmt.Sprintf("quicksort-%s-%d", variant, maxN)
	return cachedBuild(variant, key, func() string { return quickSortSrc(variant, maxN) })
}

// PatchQuickSort writes the list into a fresh image.
func PatchQuickSort(p *prog.Program, list []int64) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_n", 0, int64(len(list))); err != nil {
		return nil, err
	}
	for i, v := range list {
		if err := im.SetWord("g_arr", i, v); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunQuickSort simulates one list on one machine and validates the result.
func RunQuickSort(list []int64, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	return runQuickSort(list, variant, cfg, false)
}

// RunQuickSortTraced also records division events (Fig. 6).
func RunQuickSortTraced(list []int64, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	return runQuickSort(list, variant, cfg, true)
}

func runQuickSort(list []int64, variant Variant, cfg cpu.Config, trace bool) (*core.RunResult, error) {
	base, err := QuickSortProgram(variant, capRound(len(list)))
	if err != nil {
		return nil, err
	}
	p, err := PatchQuickSort(base, list)
	if err != nil {
		return nil, err
	}
	var res *core.RunResult
	if trace {
		res, err = core.RunTimingTraced(p, cfg)
	} else {
		res, err = core.RunTiming(p, cfg)
	}
	if err != nil {
		return nil, err
	}
	if err := CheckSorted(res, p, list); err != nil {
		return nil, err
	}
	return res, nil
}

// CheckSorted verifies the simulated array is the sorted permutation of the
// input.
func CheckSorted(res *core.RunResult, p *prog.Program, input []int64) error {
	want := append([]int64(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		got, err := core.ReadWord(res.Mem, p, "g_arr", i)
		if err != nil {
			return err
		}
		if got != want[i] {
			return fmt.Errorf("quicksort: arr[%d] = %d, want %d", i, got, want[i])
		}
	}
	return nil
}
