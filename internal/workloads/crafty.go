package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/prog"
)

// Crafty is the 186.crafty proxy. The paper's crafty component version was
// derived from an existing pthread parallel implementation that keeps "a
// pool of threads in active wait" and "manages thread contexts by
// software", which "mostly inhibits dynamic component division" — and,
// notably, ran FASTER on a 4-context SOMT (2.3x) than on an 8-context one
// (1.7x) because the busy-waiting pool threads burn shared resources.
//
// The proxy searches a synthetic deterministic game tree (children and leaf
// scores derived from a xorshift of the node id) with fixed-window negamax.
// The component version spawns PoolSize pool workers once at start; they
// spin on a lock-protected task queue of root moves (active wait), each
// searching its subtree sequentially and merging the best score under a
// lock. The imperative version searches the root moves in a loop.

// CraftyInput is one search instance.
type CraftyInput struct {
	Depth    int // search depth below the root
	Branch   int // branching factor
	Seed     int64
	PoolSize int // software pool threads (component variant)
}

// GenCrafty builds an instance.
func GenCrafty(rng *rand.Rand, depth, branch, poolSize int) *CraftyInput {
	return &CraftyInput{
		Depth:    depth,
		Branch:   branch,
		Seed:     rng.Int63n(1 << 30),
		PoolSize: poolSize,
	}
}

// craftyHash is the shared node-id hash (must match the CapC code).
func craftyHash(x int64) int64 {
	x ^= x << 13
	x &= (1 << 62) - 1 // CapC has no unsigned shifts at 63 bits; keep positive
	x ^= x >> 7
	x ^= x << 17
	x &= (1 << 62) - 1
	return x
}

// RefCrafty computes the reference negamax value.
func RefCrafty(in *CraftyInput) int64 {
	var nega func(id int64, depth int) int64
	nega = func(id int64, depth int) int64 {
		if depth == 0 {
			return craftyHash(id)%2001 - 1000
		}
		best := int64(-1 << 40)
		for c := 0; c < in.Branch; c++ {
			child := id*int64(in.Branch) + int64(c) + 1
			v := -nega(child, depth-1)
			if v > best {
				best = v
			}
		}
		return best
	}
	best := int64(-1 << 40)
	for c := 0; c < in.Branch; c++ {
		child := in.Seed*int64(in.Branch) + int64(c) + 1
		v := -nega(child, in.Depth-1)
		if v > best {
			best = v
		}
	}
	return best
}

func craftySrc(variant Variant) string {
	common := `
const NEGINF = 0 - (1 << 40);
const MASK62 = (1 << 62) - 1;
var branch;
var depth;
var seed;
var best;
var taskNext;   // next root move to claim
var tasksDone;  // completed root moves
var quit;       // pool shutdown flag

func hash(x) {
	x = x ^ (x << 13);
	x = x & MASK62;
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	x = x & MASK62;
	return x;
}

func nega(id, d) {
	if (d == 0) {
		return hash(id) % 2001 - 1000;
	}
	var b = NEGINF;
	var c;
	for (c = 0; c < branch; c = c + 1) {
		var v = 0 - nega(id * branch + c + 1, d - 1);
		if (v > b) { b = v; }
	}
	return b;
}

func rootMove(c) {
	var v = 0 - nega(seed * branch + c + 1, depth - 1);
	lock(&best);
	if (v > best) { best = v; }
	unlock(&best);
	return 0;
}
`
	if variant == VariantImperative {
		return common + `
func main() {
	best = NEGINF;
	var c;
	for (c = 0; c < branch; c = c + 1) {
		rootMove(c);
	}
	print(best);
}
`
	}
	return common + `
// poolWorker: the pthread-style pool thread. It claims root moves from the
// shared queue and otherwise busy-waits (active wait) until quit is set.
worker poolWorker() {
	while (1) {
		if (quit != 0) { return 0; }
		var t = 0 - 1;
		lock(&taskNext);
		if (taskNext < branch) {
			t = taskNext;
			taskNext = taskNext + 1;
		}
		unlock(&taskNext);
		if (t < 0) {
			// Active wait: burn a few cycles and poll again.
			var spin = 8;
			while (spin > 0) { spin = spin - 1; }
			continue;
		}
		rootMove(t);
		lock(&tasksDone);
		tasksDone = tasksDone + 1;
		unlock(&tasksDone);
	}
	return 0;
}

var poolsize;

func main() {
	best = NEGINF;
	taskNext = 0;
	tasksDone = 0;
	quit = 0;
	// Spawn the pool once at start; software thread management from here
	// on (divisions are inhibited for the rest of the run).
	var w;
	for (w = 0; w < poolsize; w = w + 1) {
		coworker poolWorker() else { };
	}
	// The main thread participates too, like crafty's master.
	while (1) {
		var t = 0 - 1;
		lock(&taskNext);
		if (taskNext < branch) {
			t = taskNext;
			taskNext = taskNext + 1;
		}
		unlock(&taskNext);
		if (t < 0) { break; }
		rootMove(t);
		lock(&tasksDone);
		tasksDone = tasksDone + 1;
		unlock(&tasksDone);
	}
	// Wait for the pool to finish outstanding moves (active wait).
	while (1) {
		var done;
		lock(&tasksDone);
		done = tasksDone;
		unlock(&tasksDone);
		if (done >= branch) { break; }
		var spin = 16;
		while (spin > 0) { spin = spin - 1; }
	}
	quit = 1;
	join();
	print(best);
}
`
}

// CraftyProgram compiles (cached) the requested variant.
func CraftyProgram(variant Variant) (*prog.Program, error) {
	key := fmt.Sprintf("crafty-%s", variant)
	return cachedBuild(variant, key, func() string { return craftySrc(variant) })
}

// PatchCrafty writes the instance into a fresh image.
func PatchCrafty(p *prog.Program, in *CraftyInput, variant Variant) (*prog.Program, error) {
	im := core.NewImage(p)
	if err := im.SetWord("g_branch", 0, int64(in.Branch)); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_depth", 0, int64(in.Depth)); err != nil {
		return nil, err
	}
	if err := im.SetWord("g_seed", 0, in.Seed); err != nil {
		return nil, err
	}
	if variant == VariantComponent {
		if err := im.SetWord("g_poolsize", 0, int64(in.PoolSize)); err != nil {
			return nil, err
		}
	}
	return im.Program(), nil
}

// RunCrafty simulates and validates one search.
func RunCrafty(in *CraftyInput, variant Variant, cfg cpu.Config) (*core.RunResult, error) {
	base, err := CraftyProgram(variant)
	if err != nil {
		return nil, err
	}
	p, err := PatchCrafty(base, in, variant)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTiming(p, cfg)
	if err != nil {
		return nil, err
	}
	want := RefCrafty(in)
	out := res.UserOutput()
	if len(out) != 1 || out[0] != want {
		return nil, fmt.Errorf("crafty: best = %v, want %d", out, want)
	}
	return res, nil
}
