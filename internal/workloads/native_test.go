package workloads

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/capsule"
)

// nativeRT returns a runtime that exercises real division even on a
// single-CPU machine: an explicit multi-token pool forces workers to
// interleave.
func nativeRT(contexts int) *capsule.Runtime {
	return capsule.New(capsule.Config{Contexts: contexts, Throttle: true})
}

func TestNativeQuickSortCrossVal(t *testing.T) {
	for kind := ListKind(0); kind < numListKinds; kind++ {
		for _, n := range []int{0, 1, 7, 50, 2000} {
			rng := rngFor(11, int(kind)*100+n)
			list := GenList(rng, kind, n)
			got := NativeQuickSort(nativeRT(4), list)
			want := append([]int64(nil), list...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/n=%d: arr[%d] = %d, want %d", kind, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNativeDijkstraCrossVal(t *testing.T) {
	for _, n := range []int{1, 10, 100, 600} {
		for seed := int64(1); seed <= 3; seed++ {
			in := GenGraph(rngFor(seed, n), n, 4, 9)
			got := NativeDijkstra(nativeRT(4), in)
			want := RefDijkstra(in)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("n=%d seed=%d: dist[%d] = %d, want %d", n, seed, v, got[v], want[v])
				}
			}
		}
	}
}

func TestNativeLZWCrossVal(t *testing.T) {
	for _, n := range []int{0, 8, 9, 64, 4096} {
		for seed := int64(1); seed <= 3; seed++ {
			in := GenLZW(rngFor(seed, n), n)
			got := NativeLZW(nativeRT(4), in)
			if want := RefLZWMatch(in, LZWChunk); got != want {
				t.Fatalf("n=%d seed=%d: codes = %d, want %d", n, seed, got, want)
			}
		}
	}
}

func TestNativePerceptronCrossVal(t *testing.T) {
	for _, neurons := range []int{4, 16, 257, 1024} {
		in := GenPerceptron(rngFor(7, neurons), neurons, 3, 2)
		gotW, gotM := NativePerceptron(nativeRT(4), in)
		wantW, wantM := RefPerceptron(in)
		if gotM != wantM {
			t.Fatalf("neurons=%d: mistakes = %d, want %d", neurons, gotM, wantM)
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("neurons=%d: w[%d] = %d, want %d", neurons, i, gotW[i], wantW[i])
			}
		}
	}
}

// TestNativeDeterminism checks the contract the native implementations
// promise: the result is a pure function of the input — identical across
// repeated runs, context-pool sizes, and throttle settings, no matter how
// the workers interleave.
func TestNativeDeterminism(t *testing.T) {
	configs := []capsule.Config{
		{Contexts: 1},
		{Contexts: 2, Throttle: true},
		{Contexts: 8},
		{Contexts: 8, Throttle: true},
	}
	for _, name := range NativeNames() {
		t.Run(name, func(t *testing.T) {
			var want string
			for i, cfg := range configs {
				for rep := 0; rep < 3; rep++ {
					res, err := RunNative(capsule.New(cfg), name, 300, 42)
					if err != nil {
						t.Fatal(err)
					}
					if i == 0 && rep == 0 {
						want = res.Output
						continue
					}
					if res.Output != want {
						t.Fatalf("config %d rep %d: output %q, want %q", i, rep, res.Output, want)
					}
				}
			}
		})
	}
}

// TestNativeContention runs all four workloads concurrently on one shared
// pool of runtimes under load — primarily a race-detector target.
func TestNativeContention(t *testing.T) {
	done := make(chan error, len(NativeNames()))
	for _, name := range NativeNames() {
		go func(name string) {
			_, err := RunNative(nativeRT(8), name, 500, 3)
			done <- err
		}(name)
	}
	for range NativeNames() {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunNativeStatsAndErrors(t *testing.T) {
	rt := nativeRT(4)
	res, err := RunNative(rt, "dijkstra", 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Probes == 0 {
		t.Fatal("no probes recorded: division sites not exercised")
	}
	if s.Granted+s.NoCtxDenies+s.ThrottleDenies != s.Probes {
		t.Fatalf("probe accounting broken: %+v", s)
	}
	if s.Deaths != s.TotalWorkers {
		t.Fatalf("deaths (%d) != workers (%d) after a completed run", s.Deaths, s.TotalWorkers)
	}

	if _, err := RunNative(rt, "nosuch", 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	} else {
		for _, name := range NativeNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q does not list known workload %q", err, name)
			}
		}
	}
}

// TestVariantNativeRejectedBySimulator pins that the native variant can
// never be handed to the CapC build path: it has no simulator program.
func TestVariantNativeRejectedBySimulator(t *testing.T) {
	if _, err := QuickSortProgram(VariantNative, 64); err == nil {
		t.Fatal("QuickSortProgram accepted VariantNative")
	}
	if _, err := DijkstraProgram(VariantNative, 64, 64); err == nil {
		t.Fatal("DijkstraProgram accepted VariantNative")
	}
	if _, err := LZWProgram(VariantNative, 64, 64); err == nil {
		t.Fatal("LZWProgram accepted VariantNative")
	}
	if _, err := PerceptronProgram(VariantNative, 64, 4); err == nil {
		t.Fatal("PerceptronProgram accepted VariantNative")
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantComponent:  "component",
		VariantImperative: "imperative",
		VariantNative:     "native",
	} {
		if got := v.String(); got != want {
			t.Fatalf("Variant(%d).String() = %q, want %q", v, got, want)
		}
	}
}
