package workloads

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/capsule"
)

// This file is the serving-shaped entry point into the native workloads:
// a request names a workload and its input (n, seed), RunRequest executes
// it on whatever capsule.Domain the server admitted it to — a per-request
// Group when a context was free at admission, the Sequential domain when
// the request was degraded — and the result serialises straight to JSON.
//
// Unlike RunNative, the hot path does not re-validate against the Go
// references on every call (native_test.go owns cross-validation); it
// returns a deterministic checksum instead, so clients can assert that
// the same (workload, n, seed) always yields the same answer regardless
// of load, degradation or worker interleaving.

// Input-generation parameters shared by RunNative, RunRequest and
// cmd/capsim: the single source of each generator's shape, so the
// "same (workload, n, seed) names the same input everywhere" contract
// cannot drift between the serving and validation paths.
const (
	GenDijkstraMaxDeg   = 4
	GenDijkstraMaxW     = 9
	GenPerceptronPats   = 3
	GenPerceptronEpochs = 1
)

// ServeResult is one served workload execution, shaped for JSON.
type ServeResult struct {
	Workload  string `json:"workload"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	Output    string `json:"output"`
	Checksum  uint64 `json:"checksum"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// RunRequest executes one native workload on dom with inputs generated
// exactly like RunNative and cmd/capsim (same generators, same meaning of
// n and seed). Input generation is excluded from ElapsedNS; the checksum
// is a pure function of (workload, n, seed).
func RunRequest(dom capsule.Domain, workload string, n int, seed int64) (*ServeResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("n must be > 0 (got %d)", n)
	}
	rng := rand.New(rand.NewSource(seed))
	res := &ServeResult{Workload: workload, N: n, Seed: seed}
	switch workload {
	case "quicksort":
		list := GenList(rng, ListUniform, n)
		start := time.Now()
		got := NativeQuickSort(dom, list)
		res.ElapsedNS = time.Since(start).Nanoseconds()
		res.Checksum = checksum(got)
		res.Output = fmt.Sprintf("sorted %d elements", len(got))
	case "dijkstra":
		in := GenGraph(rng, n, GenDijkstraMaxDeg, GenDijkstraMaxW)
		start := time.Now()
		got := NativeDijkstra(dom, in)
		res.ElapsedNS = time.Since(start).Nanoseconds()
		res.Checksum = checksum(got)
		res.Output = fmt.Sprintf("distances over %d nodes", in.N)
	case "lzw":
		in := GenLZW(rng, n)
		start := time.Now()
		got := NativeLZW(dom, in)
		res.ElapsedNS = time.Since(start).Nanoseconds()
		res.Checksum = uint64(got)
		res.Output = fmt.Sprintf("emitted %d codes for %d symbols", got, len(in.Text))
	case "perceptron":
		in := GenPerceptron(rng, n, GenPerceptronPats, GenPerceptronEpochs)
		start := time.Now()
		gotW, gotM := NativePerceptron(dom, in)
		res.ElapsedNS = time.Since(start).Nanoseconds()
		res.Checksum = checksum(gotW)*1099511628211 ^ uint64(gotM)
		res.Output = fmt.Sprintf("trained %d neurons, %d mistakes", in.Neurons, gotM)
	default:
		return nil, fmt.Errorf("unknown native workload %q (have %v)", workload, NativeNames())
	}
	return res, nil
}
