package workloads

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/capsule"
)

// BenchmarkNative* compare the goroutine capsule runtime against the
// sequential Go reference implementation of the same algorithm, across
// input sizes. Every native iteration validates its output against the
// reference (so even `-benchtime 1x` doubles as a correctness check) and
// reports the division-refusal statistics per op.

func reportDivisionStats(b *testing.B, rt *capsule.Runtime) {
	b.Helper()
	s := rt.Stats()
	n := float64(b.N)
	b.ReportMetric(float64(s.Probes)/n, "probes/op")
	b.ReportMetric(float64(s.NoCtxDenies+s.ThrottleDenies)/n, "refusals/op")
	b.ReportMetric(100*s.GrantRate(), "grant_%")
	b.ReportMetric(float64(s.PeakWorkers), "peak_workers")
}

func BenchmarkNativeQuickSort(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 17} {
		list := GenList(rngFor(201, n), ListUniform, n)
		want := append([]int64(nil), list...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp := append([]int64(nil), list...)
				sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
			}
		})
		b.Run(fmt.Sprintf("native/n=%d", n), func(b *testing.B) {
			rt := capsule.NewDefault()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := NativeQuickSort(rt, list)
				for j := range want {
					if got[j] != want[j] {
						b.Fatalf("arr[%d] = %d, want %d", j, got[j], want[j])
					}
				}
			}
			b.StopTimer()
			reportDivisionStats(b, rt)
		})
	}
}

func BenchmarkNativeDijkstra(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		in := GenGraph(rngFor(202, n), n, 4, 9)
		want := RefDijkstra(in)

		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RefDijkstra(in)
			}
		})
		b.Run(fmt.Sprintf("native/n=%d", n), func(b *testing.B) {
			rt := capsule.NewDefault()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := NativeDijkstra(rt, in)
				for v := range want {
					if got[v] != want[v] {
						b.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
					}
				}
			}
			b.StopTimer()
			reportDivisionStats(b, rt)
		})
	}
}

func BenchmarkNativeLZW(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		in := GenLZW(rngFor(203, n), n)
		want := RefLZWMatch(in, LZWChunk)

		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RefLZWMatch(in, LZWChunk)
			}
		})
		b.Run(fmt.Sprintf("native/n=%d", n), func(b *testing.B) {
			rt := capsule.NewDefault()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := NativeLZW(rt, in); got != want {
					b.Fatalf("codes = %d, want %d", got, want)
				}
			}
			b.StopTimer()
			reportDivisionStats(b, rt)
		})
	}
}

func BenchmarkNativePerceptron(b *testing.B) {
	for _, neurons := range []int{1 << 10, 1 << 13} {
		in := GenPerceptron(rngFor(204, neurons), neurons, 3, 1)
		wantW, wantM := RefPerceptron(in)

		b.Run(fmt.Sprintf("sequential/n=%d", neurons), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RefPerceptron(in)
			}
		})
		b.Run(fmt.Sprintf("native/n=%d", neurons), func(b *testing.B) {
			rt := capsule.NewDefault()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gotW, gotM := NativePerceptron(rt, in)
				if gotM != wantM {
					b.Fatalf("mistakes = %d, want %d", gotM, wantM)
				}
				for j := range wantW {
					if gotW[j] != wantW[j] {
						b.Fatalf("w[%d] = %d, want %d", j, gotW[j], wantW[j])
					}
				}
			}
			b.StopTimer()
			reportDivisionStats(b, rt)
		})
	}
}

// BenchmarkNativeRuntimeOverhead measures the raw probe/divide round trip:
// the cost a division site pays when the pool is exhausted (the common
// case in saturated runs) and when a spawn is granted.
func BenchmarkNativeRuntimeOverhead(b *testing.B) {
	b.Run("probe-refused", func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: 1, Throttle: false})
		hold, _ := rt.Probe()
		defer rt.Release(hold)
		for i := 0; i < b.N; i++ {
			if _, ok := rt.Probe(); ok {
				b.Fatal("unexpected grant")
			}
		}
	})
	b.Run("spawn-join", func(b *testing.B) {
		rt := capsule.New(capsule.Config{Contexts: 2, Throttle: false})
		for i := 0; i < b.N; i++ {
			rt.TryDivide(func() {})
			rt.Join()
		}
	})
}
