package workloads

import (
	"sync"
	"testing"

	"repro/internal/capsule"
)

// TestRunRequestDeterministicAcrossDomains checks the serving contract:
// the same (workload, n, seed) yields the same checksum on the parallel
// runtime, on a per-request Group and on the degraded Sequential domain.
func TestRunRequestDeterministicAcrossDomains(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 4, Throttle: true})
	for _, wl := range NativeNames() {
		want, err := RunRequest(rt.Sequential(), wl, 300, 42)
		if err != nil {
			t.Fatalf("%s sequential: %v", wl, err)
		}
		if want.Checksum == 0 {
			t.Fatalf("%s: zero checksum (suspicious for n=300)", wl)
		}
		for i := 0; i < 3; i++ {
			got, err := RunRequest(rt.NewGroup(), wl, 300, 42)
			if err != nil {
				t.Fatalf("%s group run %d: %v", wl, i, err)
			}
			if got.Checksum != want.Checksum {
				t.Fatalf("%s: group checksum %d != sequential %d", wl, got.Checksum, want.Checksum)
			}
		}
		got, err := RunRequest(rt, wl, 300, 42)
		if err != nil {
			t.Fatalf("%s runtime: %v", wl, err)
		}
		if got.Checksum != want.Checksum {
			t.Fatalf("%s: runtime checksum %d != sequential %d", wl, got.Checksum, want.Checksum)
		}
	}
}

// TestRunRequestMatchesRunNative ties the serving checksums to the
// validated path: RunNative (which cross-checks against the Go
// references) must agree with RunRequest for the same triple.
func TestRunRequestMatchesRunNative(t *testing.T) {
	for _, wl := range NativeNames() {
		rt := capsule.New(capsule.Config{Contexts: 4, Throttle: true})
		if _, err := RunNative(rt, wl, 200, 7); err != nil {
			t.Fatalf("%s: RunNative failed validation: %v", wl, err)
		}
		rt.Join()
		if _, err := RunRequest(rt.NewGroup(), wl, 200, 7); err != nil {
			t.Fatalf("%s: RunRequest: %v", wl, err)
		}
	}
}

func TestRunRequestErrors(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 2})
	if _, err := RunRequest(rt.NewGroup(), "nosuch", 100, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := RunRequest(rt.NewGroup(), "quicksort", 0, 1); err == nil {
		t.Fatal("n = 0 accepted")
	}
	if _, err := RunRequest(rt.NewGroup(), "quicksort", -5, 1); err == nil {
		t.Fatal("negative n accepted")
	}
}

// TestRunRequestConcurrentGroups is the serving pattern in miniature:
// many concurrent requests, each with its own Group, one shared runtime.
func TestRunRequestConcurrentGroups(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 4, Throttle: true})
	names := NativeNames()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	sums := make([]uint64, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunRequest(rt.NewGroup(), names[i%len(names)], 200, 9)
			if err != nil {
				errs <- err
				return
			}
			sums[i] = res.Checksum
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := i + len(names); j < 16; j += len(names) {
			if sums[i] != sums[j] {
				t.Fatalf("request %d and %d (same workload/n/seed) disagree: %d != %d", i, j, sums[i], sums[j])
			}
		}
	}
	rt.Join()
}
