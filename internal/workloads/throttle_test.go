package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

func TestGenLZWShape(t *testing.T) {
	rng := rngFor(20, 9)
	in := GenLZW(rng, 300)
	if len(in.Text) != 300 {
		t.Fatal("bad text length")
	}
	if len(in.Next)%lzwAlpha != 0 || len(in.Next) == 0 {
		t.Fatal("trie arity broken")
	}
	for _, v := range in.Next {
		if v >= 0 && int(v) >= len(in.Next)/lzwAlpha {
			t.Fatalf("trie edge out of range: %d", v)
		}
	}
	for _, c := range in.Text {
		if int(c) >= lzwAlpha {
			t.Fatalf("symbol out of alphabet: %d", c)
		}
	}
}

func TestRefLZWMatchBasics(t *testing.T) {
	// Trie with only the root: every symbol is a literal.
	in := &LZWInput{Text: []byte{0, 1, 2, 3}, Next: make([]int32, lzwAlpha)}
	for i := range in.Next {
		in.Next[i] = -1
	}
	if got := RefLZWMatch(in, 4); got != 4 {
		t.Fatalf("all-literal codes = %d", got)
	}
	// Trie knowing "0" and "00": "0000" in one chunk -> two codes.
	in2 := &LZWInput{Text: []byte{0, 0, 0, 0}, Next: make([]int32, 3*lzwAlpha)}
	for i := range in2.Next {
		in2.Next[i] = -1
	}
	in2.Next[0] = 1        // root --0--> node1 (phrase "0")
	in2.Next[lzwAlpha] = 2 // node1 --0--> node2 (phrase "00")
	if got := RefLZWMatch(in2, 4); got != 2 {
		t.Fatalf("00|00 codes = %d", got)
	}
	// Chunk boundaries split matches: chunks of 2 still give two codes.
	if got := RefLZWMatch(in2, 2); got != 2 {
		t.Fatalf("chunked codes = %d", got)
	}
	// Chunks of 3 split a "00" match: 00|0 0 -> three codes.
	if got := RefLZWMatch(in2, 3); got != 3 {
		t.Fatalf("ragged chunk codes = %d", got)
	}
	// Empty text.
	if got := RefLZWMatch(&LZWInput{Next: in.Next}, 4); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestLZWFunctionalMatchesReference(t *testing.T) {
	rng := rngFor(20, 0)
	in := GenLZW(rng, 256)
	base, err := LZWProgram(VariantComponent, capRound(len(in.Text)), capRound(len(in.Next)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatchLZW(base, in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.RunFunctional(p, 8, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := RefLZWMatch(in, LZWChunk)
	if len(m.Output) != 1 || m.Output[0] != want {
		t.Fatalf("output = %v, want %d", m.Output, want)
	}
}

func TestLZWTimingValidated(t *testing.T) {
	rng := rngFor(21, 1)
	in := GenLZW(rng, 512)
	res, err := RunLZW(in, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DivRequested == 0 {
		t.Fatal("LZW component version should probe")
	}
}

func TestThrottleTripsOnTinyWorkers(t *testing.T) {
	// The perceptron's multi-pass structure produces death bursts at each
	// pattern's end-game; the window monitor must trip there.
	rng := rngFor(22, 2)
	in := GenPerceptron(rng, 1024, 6, 1)
	on := cpu.SOMTConfig()
	r1, err := RunPerceptron(in, VariantComponent, on)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("throttle on: %d cycles, %d grants, %d throttle-denies",
		r1.Cycles, r1.Stats.DivGranted, r1.Stats.ThrottleDenies)
	if r1.Stats.ThrottleDenies == 0 {
		t.Fatalf("throttle never tripped: %+v", r1.Stats)
	}
}

func TestGenPerceptronShape(t *testing.T) {
	rng := rngFor(23, 0)
	in := GenPerceptron(rng, 100, 3, 2)
	if len(in.W0) != 100 || len(in.X) != 3 || len(in.X[0]) != 100 || len(in.Y) != 3 {
		t.Fatal("bad shapes")
	}
	for _, y := range in.Y {
		if y != 1 && y != -1 {
			t.Fatalf("bad target %d", y)
		}
	}
}

func TestRefPerceptronBounded(t *testing.T) {
	rng := rngFor(24, 1)
	in := GenPerceptron(rng, 64, 6, 3)
	_, m1 := RefPerceptron(in)
	if m1 < 0 || m1 > int64(in.Patterns*in.Epochs) {
		t.Fatalf("mistakes = %d", m1)
	}
}

func TestPerceptronFunctionalMatchesReference(t *testing.T) {
	rng := rngFor(25, 2)
	in := GenPerceptron(rng, 256, 2, 1)
	base, err := PerceptronProgram(VariantComponent, capRound(in.Neurons), in.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatchPerceptron(base, in, capRound(in.Neurons))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.RunFunctional(p, 8, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wantW, wantM := RefPerceptron(in)
	if len(m.Output) != 1 || m.Output[0] != wantM {
		t.Fatalf("mistakes = %v, want %d", m.Output, wantM)
	}
	for i := 0; i < in.Neurons; i++ {
		got, err := core.ReadWord(m.Mem, p, "g_w", i)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantW[i] {
			t.Fatalf("w[%d] = %d, want %d", i, got, wantW[i])
		}
	}
}

func TestPerceptronTimingValidated(t *testing.T) {
	rng := rngFor(26, 3)
	in := GenPerceptron(rng, 512, 2, 1)
	res, err := RunPerceptron(in, VariantComponent, cpu.SOMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DivRequested == 0 {
		t.Fatal("perceptron should probe")
	}
}

func TestFig7ShapeThrottleHelps(t *testing.T) {
	// The Fig. 7 claim: with tiny workers, throttled SOMT beats (or at
	// least matches) unthrottled SOMT on both LZW and Perceptron.
	rng := rngFor(27, 4)
	on := cpu.SOMTConfig()
	off := cpu.SOMTConfig()
	off.ThrottleOn = false

	lzwIn := GenLZW(rng, 4096) // the paper's N = 4096 characters
	l1, err := RunLZW(lzwIn, VariantComponent, on)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := RunLZW(lzwIn, VariantComponent, off)
	if err != nil {
		t.Fatal(err)
	}
	pin := GenPerceptron(rng, 2048, 2, 1)
	p1, err := RunPerceptron(pin, VariantComponent, on)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RunPerceptron(pin, VariantComponent, off)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LZW: throttle on %d vs off %d cycles (grants %d vs %d); Perceptron: on %d vs off %d (grants %d vs %d)",
		l1.Cycles, l2.Cycles, l1.Stats.DivGranted, l2.Stats.DivGranted,
		p1.Cycles, p2.Cycles, p1.Stats.DivGranted, p2.Stats.DivGranted)
	if float64(l1.Cycles) > 1.05*float64(l2.Cycles) {
		t.Errorf("LZW throttling hurt: on=%d off=%d", l1.Cycles, l2.Cycles)
	}
	if float64(p1.Cycles) > 1.05*float64(p2.Cycles) {
		t.Errorf("Perceptron throttling hurt: on=%d off=%d", p1.Cycles, p2.Cycles)
	}
}
