// Package prog defines the linked program image shared by the assembler,
// the CapC compiler, the loader and the simulators: an instruction sequence,
// an initialised data image, and a symbol table.
package prog

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Memory layout constants. Text occupies instruction indices (byte address =
// TextBase + 4*index, used only by the I-cache model); data, heap and stacks
// share the byte-addressed data memory.
const (
	TextBase uint64 = 0x0000_1000
	DataBase uint64 = 0x0010_0000 // 1 MiB: initialised globals
	HeapBase uint64 = 0x0200_0000 // 32 MiB: runtime bump allocator
	HeapTop  uint64 = 0x4000_0000
	// Worker stacks: a pool of fixed-size stacks below the main stack.
	StackSize    uint64 = 64 << 10
	StackPoolNum        = 64
	StackPoolLow uint64 = 0x6000_0000
	MainStackTop uint64 = 0x7000_0000
)

// SymKind distinguishes text from data symbols.
type SymKind uint8

const (
	SymText SymKind = iota // Value is an instruction index
	SymData                // Value is an absolute data address
)

// Symbol is one entry of the symbol table.
type Symbol struct {
	Kind  SymKind
	Value int64
}

// Program is a fully linked executable image.
type Program struct {
	Insts   []isa.Inst
	Data    []byte // initialised image, loaded at DataBase
	Symbols map[string]Symbol
	Entry   int32 // instruction index of _start
}

// PCByteAddr converts an instruction index to its I-cache byte address.
func PCByteAddr(pc int32) uint64 { return TextBase + uint64(pc)*isa.InstBytes }

// Sym looks a symbol up, returning an error naming the symbol when missing.
func (p *Program) Sym(name string) (Symbol, error) {
	s, ok := p.Symbols[name]
	if !ok {
		return Symbol{}, fmt.Errorf("prog: unknown symbol %q", name)
	}
	return s, nil
}

// DataAddr returns the absolute address of a data symbol.
func (p *Program) DataAddr(name string) (uint64, error) {
	s, err := p.Sym(name)
	if err != nil {
		return 0, err
	}
	if s.Kind != SymData {
		return 0, fmt.Errorf("prog: symbol %q is not a data symbol", name)
	}
	return uint64(s.Value), nil
}

// TextAddr returns the instruction index of a text symbol.
func (p *Program) TextAddr(name string) (int32, error) {
	s, err := p.Sym(name)
	if err != nil {
		return 0, err
	}
	if s.Kind != SymText {
		return 0, fmt.Errorf("prog: symbol %q is not a text symbol", name)
	}
	return int32(s.Value), nil
}

// FuncAt returns the name of the text symbol covering instruction index pc,
// for traces and disassembly. Returns "" when no symbol precedes pc.
func (p *Program) FuncAt(pc int32) string {
	type ts struct {
		name string
		at   int32
	}
	var syms []ts
	for n, s := range p.Symbols {
		if s.Kind == SymText {
			syms = append(syms, ts{n, int32(s.Value)})
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].at < syms[j].at })
	name := ""
	for _, s := range syms {
		if s.at > pc {
			break
		}
		name = s.name
	}
	return name
}

// Disassemble renders instructions lo..hi (clamped) with addresses, for
// debugging output and the capc -S tool.
func (p *Program) Disassemble(lo, hi int) string {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.Insts) {
		hi = len(p.Insts)
	}
	byIdx := make(map[int32][]string)
	for n, s := range p.Symbols {
		if s.Kind == SymText {
			byIdx[int32(s.Value)] = append(byIdx[int32(s.Value)], n)
		}
	}
	out := ""
	for i := lo; i < hi; i++ {
		for _, n := range byIdx[int32(i)] {
			out += n + ":\n"
		}
		out += fmt.Sprintf("%6d\t%s\n", i, p.Insts[i].String())
	}
	return out
}
