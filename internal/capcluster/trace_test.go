package capcluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/capserve"
	"repro/internal/capsule"
	"repro/internal/captrace"
	"repro/internal/promtext"
)

// Tests for the cluster-tier trace plumbing: a client-stamped
// X-Capsule-Trace-ID produces a route span in the router's tracer AND
// (via header propagation) a serving span in the backend's — the
// cross-process half of the ISSUE's waterfall — the fallback path
// classifies its tier from the degraded marker, sampling decisions are
// not leaked downstream, and the new dispatch histogram and tier
// counter appear on /metrics.

func routeKinds(tr *captrace.Tracer, tid uint64) map[captrace.Kind]int {
	got := map[captrace.Kind]int{}
	for _, ev := range tr.Snapshot("test", 0).Events {
		if ev.TID == tid {
			got[ev.Kind]++
		}
	}
	return got
}

// TestRouteSpanWaterfall drives one traced request through a real
// backend and asserts both halves of the waterfall: the router's
// recv → dispatch → served span, and the backend's admit span under
// the same ID (proving the header crossed the process boundary).
func TestRouteSpanWaterfall(t *testing.T) {
	backendTracer := captrace.New(2, 4096)
	b, err := capserve.StartBackend(capserve.Config{
		Runtime:    capsule.New(capsule.Config{Contexts: 2, Throttle: true, Tracer: backendTracer}),
		QueueDepth: 16,
	})
	if err != nil {
		t.Fatalf("StartBackend: %v", err)
	}
	t.Cleanup(func() { b.Kill(); b.Runtime().Close() })

	routerTracer := captrace.New(1, 256)
	r, ts := newRouter(t, Config{
		Backends: []string{b.URL},
		Tracer:   routerTracer,
	})

	const id = "00000000cafe0001"
	req, _ := http.NewRequest("GET", ts.URL+"/run/quicksort?n=500&seed=3", nil)
	req.Header.Set(captrace.HeaderTraceID, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(captrace.HeaderTraceID); got != id {
		t.Fatalf("response trace ID = %q, want %q", got, id)
	}
	if got := resp.Header.Get(HeaderRoute); got != "remote" {
		t.Fatalf("route %q, want remote", got)
	}

	tid, _ := captrace.ParseID(id)
	span := routeKinds(routerTracer, tid)
	for _, k := range []captrace.Kind{captrace.KRouteRecv, captrace.KRouteDispatch, captrace.KRouteServed} {
		if span[k] != 1 {
			t.Errorf("router span: kind %v recorded %d times, want 1 (all: %v)", k, span[k], span)
		}
	}
	// The dispatch span carries the routing decision: backend 0, with
	// the credit snapshot that justified the grant.
	for _, ev := range routerTracer.Snapshot("router", 0).Events {
		if ev.Kind == captrace.KRouteDispatch && ev.TID == tid {
			if ev.A != 0 {
				t.Errorf("dispatch backend index = %d, want 0", ev.A)
			}
			if ev.B == 0 {
				t.Error("dispatch credit snapshot = 0: a grant with no credits")
			}
		}
	}

	// The backend adopted the propagated header: its serving span hangs
	// off the same ID in its own rings.
	back := routeKinds(backendTracer, tid)
	if back[captrace.KReqAdmit] != 1 || back[captrace.KReqDone] != 1 {
		t.Fatalf("backend span = %v, want one admit and one done under the routed ID", back)
	}

	// The satellite series: one observation in the backend's dispatch
	// histogram, one remote-tier outcome.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples := promtext.Parse(rec.Body.Bytes())
	histKey := `capcluster_dispatch_duration_seconds_count{backend="` + r.Backends()[0].Name() + `"}`
	if samples[histKey] != 1 {
		t.Errorf("%s = %v, want 1", histKey, samples[histKey])
	}
	if samples[`caprouter_fallback_tier_total{tier="remote"}`] != 1 {
		t.Errorf("remote tier count = %v, want 1", samples[`caprouter_fallback_tier_total{tier="remote"}`])
	}
}

// TestFallbackTierClassification: with the fleet refusing, the local
// tier serves and the router classifies which rung did the work —
// local_runtime while the local pool has headroom, sequential once the
// request degrades (sniffed from X-Capserve-Degraded).
func TestFallbackTierClassification(t *testing.T) {
	// Throttle off: with it on, the first request's token release counts
	// as a death and throttle-refuses the drain loop's probes for a
	// DeathWindow, leaving the pool full and the second request granted.
	rt := capsule.New(capsule.Config{Contexts: 2})
	t.Cleanup(rt.Close)
	local, err := capserve.New(capserve.Config{Runtime: rt, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := captrace.New(1, 256)
	r, ts := newRouter(t, Config{Local: local, Tracer: tr})

	const id1 = "00000000cafe0002"
	req, _ := http.NewRequest("GET", ts.URL+"/run/quicksort?n=300&seed=1", nil)
	req.Header.Set(captrace.HeaderTraceID, id1)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(capserve.HeaderDegraded) != "" {
		t.Fatal("undrained runtime served degraded")
	}
	if got := r.tierLocalRuntime.Load(); got != 1 {
		t.Fatalf("local_runtime tier count = %d, want 1", got)
	}

	// Drain the pool: the next fallback must degrade to sequential.
	var holds []*capsule.Context
	for {
		c, ok := rt.Probe()
		if !ok {
			break
		}
		holds = append(holds, c)
	}
	const id2 = "00000000cafe0003"
	req, _ = http.NewRequest("GET", ts.URL+"/run/quicksort?n=300&seed=2", nil)
	req.Header.Set(captrace.HeaderTraceID, id2)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	for _, c := range holds {
		rt.Release(c)
	}
	if resp.Header.Get(capserve.HeaderDegraded) != "1" {
		t.Fatal("drained runtime did not mark the response degraded")
	}
	if got := r.tierSequential.Load(); got != 1 {
		t.Fatalf("sequential tier count = %d, want 1", got)
	}

	// Each fallback span carries its tier.
	wantTier := map[string]uint16{id1: captrace.TierLocalRuntime, id2: captrace.TierSequential}
	for idStr, tier := range wantTier {
		tid, _ := captrace.ParseID(idStr)
		found := false
		for _, ev := range tr.Snapshot("router", 0).Events {
			if ev.TID == tid && ev.Kind == captrace.KRouteFallback {
				found = true
				if ev.A != tier {
					t.Errorf("fallback tier for %s = %d, want %d", idStr, ev.A, tier)
				}
			}
		}
		if !found {
			t.Errorf("no fallback span recorded for %s", idStr)
		}
	}
}

// TestSampledOutNotPropagated: a router-minted ID that lost the
// sampling draw is echoed to the client but NOT forwarded to the
// backend — a backend adopting a header always traces, which would
// override the router's sampling decision.
func TestSampledOutNotPropagated(t *testing.T) {
	var sawHeader atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(captrace.HeaderTraceID) != "" {
			sawHeader.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{}")
	}))
	defer backend.Close()

	_, ts := newRouter(t, Config{
		Backends:    []string{backend.URL},
		Tracer:      captrace.New(1, 64),
		TraceSample: 1 << 30, // minted IDs ~never sampled
	})
	resp, _ := get(t, ts.URL+"/run/quicksort?n=100&seed=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(captrace.HeaderTraceID) == "" {
		t.Fatal("minted ID not echoed to the client")
	}
	if sawHeader.Load() != 0 {
		t.Fatal("sampled-out ID was propagated to the backend")
	}

	// An adopted (client-stamped) ID IS propagated, regardless of the
	// sampling rate.
	req, _ := http.NewRequest("GET", ts.URL+"/run/quicksort?n=100&seed=2", nil)
	req.Header.Set(captrace.HeaderTraceID, "00000000cafe0004")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if sawHeader.Load() != 1 {
		t.Fatal("adopted ID was not propagated to the backend")
	}
}

// TestRouterDebugTrace: the router serves its own snapshot with its
// configured source, and 404s with tracing disabled.
func TestRouterDebugTrace(t *testing.T) {
	_, ts := newRouter(t, Config{Tracer: captrace.New(1, 64), TraceSample: 1, TraceSource: "edge-1"})
	get(t, ts.URL+"/run/quicksort?n=200&seed=1")

	var snap captrace.Snapshot
	resp, body := get(t, ts.URL+"/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot body: %v", err)
	}
	if snap.Source != "edge-1" {
		t.Fatalf("snapshot source = %q, want edge-1", snap.Source)
	}
	if len(snap.Events) == 0 {
		t.Fatal("empty snapshot after a traced request")
	}

	_, ts2 := newRouter(t, Config{})
	if resp, _ := get(t, ts2.URL+"/debug/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced router /debug/trace = %d, want 404", resp.StatusCode)
	}
}

// TestRouterDebugTraceMergesLocals pins the -spawn topology's one-stop
// endpoint: a router given its in-process backend as a TraceLocals
// provider serves an ARRAY of snapshots from /debug/trace — its own
// route span plus the backend's serving/runtime events — so one fetch
// of the router URL reconstructs the full three-tier waterfall even
// though the spawned backend lives on an ephemeral port nobody else
// knows. captrace.DecodeSnapshots must read the array shape, and both
// halves of the traced request must be present under one ID.
func TestRouterDebugTraceMergesLocals(t *testing.T) {
	backendTracer := captrace.New(2, 4096)
	b, err := capserve.StartBackend(capserve.Config{
		Runtime:     capsule.New(capsule.Config{Contexts: 2, Tracer: backendTracer}),
		QueueDepth:  16,
		TraceSource: "backend-0",
	})
	if err != nil {
		t.Fatalf("StartBackend: %v", err)
	}
	t.Cleanup(func() { b.Kill(); b.Runtime().Close() })

	_, ts := newRouter(t, Config{
		Backends:    []string{b.URL},
		Tracer:      captrace.New(1, 256),
		TraceLocals: []TraceSnapshotter{b.Server},
	})

	const id = "00000000cafe0004"
	req, _ := http.NewRequest("GET", ts.URL+"/run/quicksort?n=500&seed=5", nil)
	req.Header.Set(captrace.HeaderTraceID, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	httpResp, body := get(t, ts.URL+"/debug/trace")
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", httpResp.StatusCode)
	}
	snaps, err := captrace.DecodeSnapshots(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("DecodeSnapshots: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2 (router + spawned backend)", len(snaps))
	}
	if snaps[0].Source != "caprouter" || snaps[1].Source != "backend-0" {
		t.Fatalf("sources = %q, %q; want caprouter, backend-0", snaps[0].Source, snaps[1].Source)
	}

	tid, _ := captrace.ParseID(id)
	bySource := map[string]map[captrace.Kind]bool{}
	for _, ev := range captrace.MergeEvents(snaps...) {
		if ev.TID != tid {
			continue
		}
		if bySource[ev.Source] == nil {
			bySource[ev.Source] = map[captrace.Kind]bool{}
		}
		bySource[ev.Source][ev.Kind] = true
	}
	if !bySource["caprouter"][captrace.KRouteRecv] || !bySource["caprouter"][captrace.KRouteServed] {
		t.Fatalf("router span incomplete: %v", bySource["caprouter"])
	}
	if !bySource["backend-0"][captrace.KReqAdmit] || !bySource["backend-0"][captrace.KReqDone] {
		t.Fatalf("backend span incomplete: %v", bySource["backend-0"])
	}
}
