package capcluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capserve"
	"repro/internal/capsule"
)

// TestApplyDeltaSeqRegression pins the reordering guard: a delta whose
// sequence number is not strictly newer than the last applied one must
// be dropped — a stale subscriber goroutine racing its post-reconnect
// replacement can never roll the gauge backwards.
func TestApplyDeltaSeqRegression(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 4, 1024, 2, time.Second, 0)

	if !b.applyDelta(5, 7, false) {
		t.Fatal("first delta (seq 5) not applied")
	}
	if got := b.Credits(); got != 7 {
		t.Fatalf("credits = %d after delta free=7, want 7", got)
	}
	// An older delta (the stale goroutine's late read) must not land.
	if b.applyDelta(3, 1, false) {
		t.Fatal("seq 3 applied after seq 5")
	}
	if got := b.Credits(); got != 7 {
		t.Fatalf("credits = %d after stale delta, want 7 (unchanged)", got)
	}
	// Equal seq is a replay, also dropped.
	if b.applyDelta(5, 1, false) {
		t.Fatal("seq 5 replay applied")
	}
	if got := b.feedDrops.Load(); got != 2 {
		t.Fatalf("feedDrops = %d, want 2", got)
	}
	if got := b.feedDeltas.Load(); got != 1 {
		t.Fatalf("feedDeltas = %d, want 1", got)
	}
	// Newer delta still lands, and a draining delta parks the gauge.
	if !b.applyDelta(6, 3, false) {
		t.Fatal("seq 6 not applied")
	}
	if !b.applyDelta(7, 99, true) {
		t.Fatal("draining delta (seq 7) not applied")
	}
	if got := b.Credits(); got != 0 {
		t.Fatalf("credits = %d after draining delta, want 0", got)
	}
}

// TestCreditGaugeConcurrentSources races every writer the gauge has —
// header learns, push deltas, scrape-style setCredits, and the
// probe/release pairs in between — under -race. The invariants: no
// torn state (credits within [0, max], inflight drains to zero) and
// the seq guard holds (the highest seq wins, drops+deltas add up).
func TestCreditGaugeConcurrentSources(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 4, 64, 1000, time.Second, 0)

	const writers = 4
	const rounds = 500
	var wg sync.WaitGroup
	var seq atomic.Uint64
	start := make(chan struct{})

	// Push-delta writers, each applying globally increasing seqs.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				b.applyDelta(seq.Add(1), i%16, false)
			}
		}()
	}
	// Header-learn writers (the response-header path).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				b.learn((w + i) % 16)
				b.markFresh()
			}
		}(w)
	}
	// Scrape writers (Refresh's setCredits-shaped learn) and probers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			b.setCredits(i % 16)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			if b.probe() {
				b.release()
			}
		}
	}()

	close(start)
	wg.Wait()

	if c := b.Credits(); c < 0 || c > 64 {
		t.Fatalf("credits = %d, want within [0, 64]", c)
	}
	if inf := b.Inflight(); inf != 0 {
		t.Fatalf("inflight = %d after all probes released, want 0", inf)
	}
	if got := b.feedSeq.Load(); got != seq.Load() {
		t.Fatalf("feedSeq = %d, want the highest issued seq %d", got, seq.Load())
	}
	if applied, dropped := b.feedDeltas.Load(), b.feedDrops.Load(); applied+dropped != writers*rounds {
		t.Fatalf("deltas applied (%d) + dropped (%d) = %d, want %d", applied, dropped, applied+dropped, writers*rounds)
	}
}

// TestStaleDecayToDefault drives the TTL machinery with an injected
// clock: a backend whose every source goes quiet decays toward
// DefaultCredits — halving the distance per step, snapping when
// adjacent — and a single live delta makes it fresh again.
func TestStaleDecayToDefault(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, DefaultCredits, 1024, 2, time.Second, 0)
	var clock atomic.Int64
	clock.Store(1) // feedNS treats 0 as "never connected"
	b.now = func() int64 { return clock.Load() }
	ttl := (3 * time.Second).Nanoseconds()

	// Feed teaches the gauge high, then goes silent.
	b.applyDelta(1, 100, false)
	if b.stale(ttl) {
		t.Fatal("stale immediately after a delta")
	}
	if !b.feedFresh(ttl) {
		t.Fatal("feed not fresh immediately after a delta")
	}

	clock.Store(ttl + 2) // the delta landed at t=1: now past 1+ttl
	if !b.stale(ttl) {
		t.Fatal("not stale after TTL of silence")
	}
	if b.feedFresh(ttl) {
		t.Fatal("feed still fresh after TTL of silence")
	}

	// Decay converges: 100 → 52 → 28 → 16 → 10 → 7 → 5 → 4 (snap),
	// monotonically, and stops at the default.
	prev := b.Credits()
	for i := 0; i < 20 && b.Credits() != DefaultCredits; i++ {
		b.decayStale(DefaultCredits)
		cur := b.Credits()
		if cur >= prev {
			t.Fatalf("decay step %d: credits %d -> %d, want strictly decreasing", i, prev, cur)
		}
		prev = cur
	}
	if got := b.Credits(); got != DefaultCredits {
		t.Fatalf("credits = %d after decay, want DefaultCredits (%d)", got, DefaultCredits)
	}
	decays := b.staleDecays.Load()
	b.decayStale(DefaultCredits) // at the floor: a no-op, not a counted decay
	if b.staleDecays.Load() != decays {
		t.Fatal("decayStale counted a step at the default floor")
	}

	// Decay also converges upward from a stale-zero gauge.
	b.setCredits(0)
	for i := 0; i < 20 && b.Credits() != DefaultCredits; i++ {
		b.decayStale(DefaultCredits)
	}
	if got := b.Credits(); got != DefaultCredits {
		t.Fatalf("credits = %d after upward decay, want %d", got, DefaultCredits)
	}

	// One live delta ends staleness.
	b.applyDelta(2, 8, false)
	if b.stale(ttl) {
		t.Fatal("stale right after a live delta")
	}
}

// TestRefreshSkipsFreshFeed pins satellite (a): a backend whose push
// feed updated within StaleTTL is not scraped by Refresh — the skip is
// counted — while a feed-silent backend still gets the fallback scrape.
func TestRefreshSkipsFreshFeed(t *testing.T) {
	var scrapes atomic.Int64
	backend := capserveMetricsStub(t, &scrapes)

	r, _ := newRouter(t, Config{Backends: []string{backend.URL}, StaleTTL: time.Hour})
	b := r.Backends()[0]

	// Feed-silent: Refresh scrapes.
	r.Refresh()
	if scrapes.Load() != 1 {
		t.Fatalf("scrapes = %d with no feed, want 1", scrapes.Load())
	}
	if got := r.RefreshSkipped(); got != 0 {
		t.Fatalf("RefreshSkipped = %d with no feed, want 0", got)
	}

	// Fresh feed: Refresh skips the wire entirely.
	b.applyDelta(1, 8, false)
	r.Refresh()
	r.Refresh()
	if scrapes.Load() != 1 {
		t.Fatalf("scrapes = %d with a fresh feed, want still 1", scrapes.Load())
	}
	if got := r.RefreshSkipped(); got != 2 {
		t.Fatalf("RefreshSkipped = %d, want 2", got)
	}
}

// capserveMetricsStub serves just enough /metrics for refreshBackend,
// counting scrapes.
func capserveMetricsStub(t *testing.T, scrapes *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/metrics" {
			scrapes.Add(1)
		}
		w.Write([]byte("capserve_queue_depth 8\ncapserve_queue_occupancy 0\n"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFeedEndToEnd subscribes a real router to a real capserve backend:
// deltas must flow (the initial snapshot at least), Refresh must start
// skipping, and when the feed is severed mid-stream the watchdog must
// cancel the subscription and hand the backend back to the scrape path
// without the gauge going stale — the capfault-blackhole contract, here
// driven by a transport that silently parks instead.
func TestFeedEndToEnd(t *testing.T) {
	rt := capsule.New(capsule.Config{Contexts: 2, Throttle: true})
	t.Cleanup(rt.Close)
	backend, err := capserve.StartBackend(capserve.Config{
		Runtime:       rt,
		QueueDepth:    8,
		FeedHeartbeat: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartBackend: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		backend.Close(ctx)
	})

	park := &parkingTransport{next: http.DefaultTransport}
	r, _ := newRouter(t, Config{
		Backends:      []string{backend.URL},
		StaleTTL:      200 * time.Millisecond,
		FeedBackoff:   10 * time.Millisecond,
		FeedTransport: park,
	})
	b := r.Backends()[0]

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	r.StartFeeds(ctx)

	// The subscription's initial delta plus heartbeats must land.
	deadline := time.Now().Add(5 * time.Second)
	for b.feedDeltas.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.feedDeltas.Load(); got < 2 {
		t.Fatalf("feedDeltas = %d after 5s, want >= 2 (initial + heartbeat)", got)
	}
	if !b.feedConnected.Load() {
		t.Fatal("feedConnected = false with a live stream")
	}

	// Steady state: the push plane makes scrapes unnecessary.
	r.Refresh()
	if got := r.RefreshSkipped(); got != 1 {
		t.Fatalf("RefreshSkipped = %d with a live feed, want 1", got)
	}

	// Sever the push plane: new reads (and new dials) park forever.
	// The per-event watchdog must cancel the stream within StaleTTL, and
	// once feedFresh expires Refresh must scrape again — the fallback.
	park.blackhole.Store(true)
	deadline = time.Now().Add(5 * time.Second)
	for b.feedConnected.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.feedConnected.Load() {
		t.Fatal("subscription still connected 5s after the feed was blackholed")
	}
	deadline = time.Now().Add(5 * time.Second)
	for b.feedFresh(r.cfg.StaleTTL.Nanoseconds()) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	skipped := r.RefreshSkipped()
	r.Refresh() // must scrape (feed stale), not skip
	if got := r.RefreshSkipped(); got != skipped {
		t.Fatalf("Refresh skipped a feed-dead backend (skips %d -> %d)", skipped, got)
	}
	if b.stale(r.cfg.StaleTTL.Nanoseconds()) {
		t.Fatal("backend stale right after a fallback scrape")
	}
}

// parkingTransport passes requests through until blackhole is set, then
// parks reads (and new dials) until the caller's context gives up —
// the shape of capfault's feed blackhole, without the import.
type parkingTransport struct {
	next      http.RoundTripper
	blackhole atomic.Bool
}

func (p *parkingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.blackhole.Load() {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	resp, err := p.next.RoundTrip(req)
	if err == nil {
		resp.Body = &parkingBody{ReadCloser: resp.Body, p: p, ctx: req.Context()}
	}
	return resp, err
}

type parkingBody struct {
	io.ReadCloser
	p   *parkingTransport
	ctx context.Context
}

func (b *parkingBody) Read(buf []byte) (int, error) {
	if b.p.blackhole.Load() {
		<-b.ctx.Done()
		return 0, b.ctx.Err()
	}
	return b.ReadCloser.Read(buf)
}
