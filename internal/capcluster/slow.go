package capcluster

import (
	"time"

	"repro/internal/capserve"
	"repro/internal/promtext"
)

// mix64 is the splitmix64 finalizer — the repo-standard cheap mixer,
// here deriving the deterministic per-backend trial jitter.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CheckSlow runs one round of slow-backend ejection and returns how many
// backends it ejected. The error breaker never trips on a backend that
// answers 2xx — slowly; this is the signal that does. Over the interval
// since the previous call it estimates each backend's dispatch-latency
// p99 from the dispatchLatency histogram (relayed responses only, so
// deaths and timeouts cannot double-trip it), and ejects every backend
// whose p99 is both an outlier (> SlowFactor × the median of its
// *peers'* p99s — excluding the candidate, so in a small fleet the
// outlier cannot drag its own threshold up) and absolutely slow
// (> SlowMinP99). Eligibility needs SlowMinSamples dispatches in the
// interval and at least two eligible backends — a fleet of one has no
// peers to be an outlier against.
//
// Ejection feeds the same machinery a dead backend trips: failThreshold
// entries in the failure ring open the breaker, probation arms, and
// re-admission is the ordinary half-open trial with jittered backoff. A
// backend that is still slow on re-admission simply gets ejected again
// next interval; one that recovered serves its trial fast and is back.
//
// Single-threaded by contract: call it from one goroutine (cmd/caprouter
// uses the refresh ticker; tests call it directly). The per-backend
// interval snapshot is plain state.
func (r *Router) CheckSlow() int {
	bounds := capserve.LatencyBucketBounds()
	type est struct {
		b   *Backend
		p99 float64
	}
	var eligible []est
	for _, b := range r.backends {
		var counts [capserve.NumLatencyBuckets]uint64
		b.dispatchLatency.ReadCounts(&counts)

		// The histogram stores per-bucket densities; DeltaQuantile wants
		// cumulative snapshots.
		var cum [capserve.NumLatencyBuckets]float64
		var run float64
		for i, c := range counts {
			run += float64(c)
			cum[i] = run
		}
		prev := b.slowPrev
		b.slowPrev = cum

		samples := cum[len(cum)-1] - prev[len(prev)-1]
		if samples < float64(r.cfg.SlowMinSamples) {
			continue
		}
		p99, ok := promtext.DeltaQuantile(bounds, prev[:], cum[:], 0.99)
		if !ok {
			continue
		}
		eligible = append(eligible, est{b: b, p99: p99})
	}
	if len(eligible) < 2 {
		return 0
	}

	minP99 := r.cfg.SlowMinP99.Seconds()
	peers := make([]float64, 0, len(eligible)-1)
	ejected := 0
	for i, e := range eligible {
		peers = peers[:0]
		for j, o := range eligible {
			if j != i {
				peers = append(peers, o.p99)
			}
		}
		if med := median(peers); e.p99 > r.cfg.SlowFactor*med && e.p99 > minP99 {
			e.b.eject()
			ejected++
		}
	}
	return ejected
}

// eject opens the backend's breaker as if failThreshold deaths landed
// this instant, and arms probation — "too slow" becomes "broken" through
// the exact path "dead" uses, so every re-admission rule (quiet window,
// single trial, jittered backoff) applies unchanged. Deliberately not a
// death: deaths count backend failures, ejections count router policy.
func (b *Backend) eject() {
	now := b.now()
	for i := 0; i < b.failThreshold; i++ {
		b.ring.record(now)
	}
	b.probation.Store(probationWait)
	b.ejections.Add(1)
}

// median of xs (insertion-sorted in place; fleets are small).
func median(xs []float64) float64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// SlowCheckInterval is the suggested cadence for CheckSlow callers —
// cmd/caprouter aligns it with the credit-refresh ticker.
const SlowCheckInterval = time.Second
