package capcluster

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capserve"
)

// A Backend is one remote capserve instance as the router sees it: a URL
// plus the purely local bookkeeping that makes a remote probe a memory
// operation. Two structures carry the probe/divide protocol across the
// process boundary:
//
//   - a credit gauge — advertised capacity vs. in-flight dispatches,
//     packed into one atomic word so the probe is a load and a CAS, the
//     exact shape of the runtime's token-stack probe. Credits are the
//     cluster's context tokens: the router grants a dispatch only while
//     it holds headroom the backend has advertised, so the deny path
//     never touches the network;
//   - a failure ring — the breaker described on failRing: backend
//     errors/timeouts are cluster-scope deaths, and enough of them
//     inside the window deny further probes until it drains.
//
// Counters are cumulative since construction and exported on the
// router's /metrics per backend.
type Backend struct {
	url      string
	name     string // host:port, the metrics label
	id       int    // index in this router's fleet (NOT stable across configs)
	nameHash uint64 // FNV of url: the identity rendezvous hashing keys on

	// gauge packs {credits:32 | inflight:32}: the credit ceiling in the
	// high half, current in-flight dispatches in the low half. One word
	// means probe (CAS +1 on the low half), release (subtract 1) and
	// learn (replace the high half) can never tear against each other.
	gauge atomic.Uint64

	ring          failRing
	failThreshold int
	failWindowNS  int64
	maxCredits    uint32
	now           func() int64 // injectable monotonic clock, as in capsule

	// probation is the half-open gate: after a breaker trip, re-admission
	// is one trial dispatch at a time, not a stampede. Without it a
	// black-holing backend (timeouts, not connection-refused) would stall
	// every concurrent request for a full dispatch Timeout each drain
	// cycle; with it the exposure is bounded to one in-flight trial per
	// quiet window.
	probation atomic.Uint32

	// Failed half-open trials back off exponentially with deterministic
	// per-backend jitter (see scheduleTrial): trialFails counts
	// consecutive trial failures, nextTrialNS is the earliest instant the
	// next trial may run. Both reset the moment any response arrives.
	trialFails     atomic.Uint32
	nextTrialNS    atomic.Int64
	trialBackoffNS int64

	// Push-plane state (feed.go). feedMu serializes delta application so
	// the seq check and the gauge write cannot interleave across two
	// deltas — an old delta must never overwrite a newer one, even when
	// a reconnect leaves two subscriber goroutines briefly racing.
	// Deltas arrive at heartbeat rate, so a mutex here costs nothing;
	// the probe path never touches it.
	feedMu        sync.Mutex
	feedSeq       atomic.Uint64 // highest applied delta sequence number
	feedNS        atomic.Int64  // last instant a feed delta was applied (0 = never)
	freshNS       atomic.Int64  // last instant ANY live source updated the gauge
	feedConnected atomic.Bool   // a subscription stream is currently open
	feedDeltas    atomic.Uint64 // deltas applied to the gauge
	feedDrops     atomic.Uint64 // deltas discarded by the seq regression guard
	feedConnects  atomic.Uint64 // subscription streams opened (reconnects after the first)
	staleDecays   atomic.Uint64 // TTL decays toward the default credit ceiling

	dispatches    atomic.Uint64 // granted probes that went to the wire
	served        atomic.Uint64 // responses proxied back to a client
	sheds         atomic.Uint64 // backend 503s (stale credits, not deaths)
	deaths        atomic.Uint64 // transport errors, timeouts, 5xx
	creditDenies  atomic.Uint64 // probes refused for lack of credit
	breakerDenies atomic.Uint64 // probes refused by the failure breaker
	ejections     atomic.Uint64 // slow-backend ejections (CheckSlow)
	badHeaders    atomic.Uint64 // rejected credit advertisements (headers or feed deltas)

	// slowPrev is CheckSlow's cumulative dispatch-latency snapshot from
	// the previous interval. Owned by the single CheckSlow caller (the
	// refresh ticker); not for concurrent use.
	slowPrev [capserve.NumLatencyBuckets]float64

	// dispatchLatency is the duration distribution of dispatches that
	// relayed a response (capcluster_dispatch_duration_seconds on
	// /metrics). Deaths and timeouts are excluded — they have their own
	// counter, and folding a 10 s timeout into the latency signal would
	// bury the p99 the histogram exists to show. capserve's Histogram,
	// reused rather than reimplemented.
	dispatchLatency capserve.Histogram
}

const gaugeLowMask = uint64(0xFFFFFFFF)

// probation states.
const (
	probationOff   uint32 = iota // normal operation
	probationWait                // breaker tripped: admit one trial once the window is quiet
	probationTrial               // the trial dispatch is in flight
)

func newBackend(url, name string, id, credits, maxCredits, failThreshold int, failWindow, trialBackoff time.Duration) *Backend {
	b := &Backend{
		url:            url,
		name:           name,
		id:             id,
		nameHash:       fnv64(url),
		failThreshold:  failThreshold,
		failWindowNS:   failWindow.Nanoseconds(),
		maxCredits:     uint32(maxCredits),
		trialBackoffNS: trialBackoff.Nanoseconds(),
		now:            func() int64 { return time.Now().UnixNano() },
	}
	b.ring.init(failThreshold)
	b.setCredits(credits)
	return b
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Name returns the backend's metrics label (host:port).
func (b *Backend) Name() string { return b.name }

// Credits returns the current credit ceiling (a peek, like FreeContexts).
func (b *Backend) Credits() int { return int(uint32(b.gauge.Load() >> 32)) }

// Inflight returns the dispatches currently holding a credit.
func (b *Backend) Inflight() int { return int(uint32(b.gauge.Load())) }

// Broken reports whether the failure breaker is currently denying
// probes: at least failThreshold failures inside the trailing window.
func (b *Backend) Broken() bool {
	return b.ring.atLeast(b.failThreshold, b.now, b.failWindowNS)
}

// probe is ProbeRemote for this backend: reserve one credit, or refuse.
// The deny path is allocation-free and network-free — a breaker check
// (one or two atomic loads, clock only if failures exist), a probation
// load, and one gauge load — so the router can afford a probe per
// backend per request, the same economics the paper demands of nthr. On
// success the caller owes exactly one release.
func (b *Backend) probe() bool {
	if b.ring.atLeast(b.failThreshold, b.now, b.failWindowNS) {
		b.breakerDenies.Add(1)
		return false
	}
	switch b.probation.Load() {
	case probationWait:
		// Re-admission after a trip is gated three ways: the window must
		// be fully quiet (not one failure in it — so failed trials retry
		// at most once per window), the jittered backoff from previous
		// failed trials must have elapsed (so recovering backends aren't
		// re-tripped by a synchronized trial herd), and only one prober
		// wins the trial slot.
		if b.ring.atLeast(1, b.now, b.failWindowNS) ||
			b.now() < b.nextTrialNS.Load() ||
			!b.probation.CompareAndSwap(probationWait, probationTrial) {
			b.breakerDenies.Add(1)
			return false
		}
		// This probe is the half-open trial; fall through to the credits.
	case probationTrial:
		b.breakerDenies.Add(1)
		return false
	}
	for {
		g := b.gauge.Load()
		if uint32(g) >= uint32(g>>32) { // inflight >= credits
			// A trial that cannot dispatch has nothing to resolve it:
			// hand the slot back. (Swapping a concurrent winner's slot is
			// possible and benign — one extra trial, still bounded.)
			b.probation.CompareAndSwap(probationTrial, probationWait)
			b.creditDenies.Add(1)
			return false
		}
		if b.gauge.CompareAndSwap(g, g+1) {
			return true
		}
	}
}

// release returns one credit. Subtracting 1 from the packed word cannot
// borrow into the credits half: inflight > 0 whenever a release is owed,
// because each release pairs with exactly one granted probe.
func (b *Backend) release() { b.gauge.Add(^uint64(0)) }

// fail records one cluster-scope death (error, timeout, 5xx) in the
// breaker ring, and arms (or re-arms, for a failed trial) the half-open
// probation gate. A failed *trial* additionally pushes the next trial
// out by a jittered exponential backoff.
func (b *Backend) fail() {
	b.deaths.Add(1)
	b.ring.record(b.now())
	if b.probation.Load() == probationTrial {
		b.scheduleTrial(b.trialFails.Add(1))
		b.probation.Store(probationWait)
		return
	}
	if b.ring.atLeast(b.failThreshold, b.now, b.failWindowNS) {
		b.probation.Store(probationWait)
	}
}

// scheduleTrial sets the earliest instant of the next half-open trial
// after the fails-th consecutive trial failure: trialBackoff·2^(fails-1)
// (capped at 2^6) jittered deterministically into [0.5×, 1.5×). The
// jitter is a pure function of (backend identity, fails), so it is
// reproducible in tests yet decorrelated across backends and across
// routers probing the same backend fleet.
func (b *Backend) scheduleTrial(fails uint32) {
	if b.trialBackoffNS <= 0 {
		return
	}
	shift := fails - 1
	if shift > 6 {
		shift = 6
	}
	base := b.trialBackoffNS << shift
	h := mix64(b.nameHash ^ uint64(fails)*0x9e3779b97f4a7c15)
	d := base/2 + int64(h%uint64(base))
	b.nextTrialNS.Store(b.now() + d)
}

// recover marks the backend alive: any received response (2xx, 4xx,
// even a shed) closes probation, clears the trial backoff and restores
// full probing.
func (b *Backend) recover() {
	if b.probation.Load() != probationOff {
		b.probation.Store(probationOff)
		b.trialFails.Store(0)
		b.nextTrialNS.Store(0)
	}
}

// abortTrial hands an unresolvable trial slot back (the routed client
// hung up mid-dispatch, so neither fail nor recover will run).
func (b *Backend) abortTrial() {
	b.probation.CompareAndSwap(probationTrial, probationWait)
}

// setCredits replaces the credit ceiling outright, preserving inflight.
func (b *Backend) setCredits(c int) {
	if c < 0 {
		c = 0
	}
	if uint32(c) > b.maxCredits {
		c = int(b.maxCredits)
	}
	for {
		g := b.gauge.Load()
		ng := uint64(c)<<32 | g&gaugeLowMask
		if g == ng || b.gauge.CompareAndSwap(g, ng) {
			return
		}
	}
}

// applyDelta folds one push-feed delta into the gauge, guarded by the
// delta's sequence number: a delta whose seq is not strictly newer than
// the last applied one is dropped (counted in feedDrops), so reordered
// or replayed deltas — a stale subscriber goroutine racing its
// replacement after a reconnect — can never roll the gauge backwards.
// A draining backend zeroes its credits instead of learning: in-flight
// dispatches finish, but no new ones start. Returns whether the delta
// was applied.
func (b *Backend) applyDelta(seq uint64, free int, draining bool) bool {
	b.feedMu.Lock()
	defer b.feedMu.Unlock()
	if seq <= b.feedSeq.Load() {
		b.feedDrops.Add(1)
		return false
	}
	b.feedSeq.Store(seq)
	if draining {
		b.setCredits(0)
	} else {
		b.learn(free)
	}
	now := b.now()
	b.feedNS.Store(now)
	b.freshNS.Store(now)
	b.feedDeltas.Add(1)
	return true
}

// markFresh records that a live source (a response header or a
// successful scrape) just taught the gauge — the staleness TTL's other
// input besides the feed.
func (b *Backend) markFresh() { b.freshNS.Store(b.now()) }

// feedFresh reports whether the push feed updated this gauge within
// ttlNS — the Refresh skip condition: a backend the push plane holds
// does not need its /metrics scraped.
func (b *Backend) feedFresh(ttlNS int64) bool {
	last := b.feedNS.Load()
	return last != 0 && b.now()-last <= ttlNS
}

// stale reports whether EVERY live source (feed, headers, scrape) has
// been quiet past ttlNS — the explicit staleness the gauge used to hide.
func (b *Backend) stale(ttlNS int64) bool {
	return b.now()-b.freshNS.Load() > ttlNS
}

// decayStale moves the credit ceiling halfway toward def (snapping when
// one step away), the gauge's answer to total signal loss: a stale-high
// gauge would keep over-committing a backend nobody has heard from, a
// stale-zero gauge would starve one that recovered silently. Converging
// on the conservative default bounds both errors, and the breaker plus
// the half-open trial machinery resolve which one it was.
func (b *Backend) decayStale(def int) {
	cur := b.Credits()
	if cur == def {
		return
	}
	next := cur + (def-cur)/2
	if next == cur {
		next = def
	}
	b.setCredits(next)
	b.staleDecays.Add(1)
}

// learn folds one advertised headroom reading (a response header or a
// /metrics scrape) into the gauge: the backend can absorb everything
// this router already has in flight plus the free slots it just
// advertised, capped at maxCredits. Stale advertisements self-correct —
// a backend whose queue other tenants filled advertises less, and the
// gauge shrinks with it. learn(0) with zero in flight parks the backend
// at zero credits; the periodic Refresh scrape is the recovery path.
func (b *Backend) learn(free int) {
	if free < 0 {
		return
	}
	for {
		g := b.gauge.Load()
		inf := g & gaugeLowMask
		c := inf + uint64(free)
		if c > uint64(b.maxCredits) {
			c = uint64(b.maxCredits)
		}
		ng := c<<32 | inf
		if g == ng || b.gauge.CompareAndSwap(g, ng) {
			return
		}
	}
}
