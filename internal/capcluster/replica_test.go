package capcluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startReplicaServer serves a router on a plain net/http server so the
// test can kill it without drain: http.Server.Close tears down the
// listener and every live connection, the in-process kill -9.
func startReplicaServer(t *testing.T, backends []string) (*Router, *http.Server, string) {
	t.Helper()
	place, err := NewPlacement("rendezvous")
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	r, err := New(Config{
		Backends:      backends,
		Local:         newLocal(t, 2, 256),
		Placement:     place,
		FailThreshold: 2,
		FailWindow:    400 * time.Millisecond,
		Timeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.Refresh()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	srv := &http.Server{Handler: r}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return r, srv, "http://" + ln.Addr().String()
}

// TestReplicaFailoverZeroFailedRequests is the tentpole's -race gate:
// two full caprouter replicas front the same three backends, clients
// walk the replica list with failover, and one replica is killed
// without drain mid-storm. Every client request must still succeed —
// a dead replica costs one extra attempt, never a failed request — and
// before the kill, rendezvous placement must agree across replicas:
// the same key routed through either replica names the same backend.
func TestReplicaFailoverZeroFailedRequests(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, startBackend(t, 2, 8).URL)
	}
	_, srv0, target0 := startReplicaServer(t, urls)
	_, _, target1 := startReplicaServer(t, urls)
	targets := []string{target0, target1}

	// Placement agreement, while the fleet is idle: keys that dispatch
	// remotely through both replicas must land on the same backend.
	client := &http.Client{Timeout: 5 * time.Second}
	checked := 0
	for s := 0; s < 8; s++ {
		var names []string
		remote := true
		for _, target := range targets {
			resp, err := client.Get(fmt.Sprintf("%s/run/quicksort?n=64&seed=%d", target, 9000+s))
			if err != nil {
				t.Fatalf("placement probe via %s: %v", target, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.Header.Get(HeaderRoute) != "remote" {
				remote = false
				break
			}
			names = append(names, resp.Header.Get(HeaderBackend))
		}
		if !remote {
			continue
		}
		checked++
		if names[0] != names[1] {
			t.Fatalf("placement disagreement for seed %d: %q via replica 0, %q via replica 1", 9000+s, names[0], names[1])
		}
	}
	if checked == 0 {
		t.Fatal("no key dispatched remotely via both replicas; placement agreement unchecked")
	}

	// The storm: every client prefers a replica and fails over on
	// transport error. Replica 0 dies hard at halftime.
	const d = time.Second
	clients := 8
	var failed, succeeded, failovers atomic.Int64
	kill := time.AfterFunc(d/2, func() { srv0.Close() })
	defer kill.Stop()

	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				path := fmt.Sprintf("/run/quicksort?n=64&seed=%d", c*1000+i%64)
				var resp *http.Response
				for a := 0; a < len(targets); a++ {
					r, err := client.Get(targets[(c+a)%len(targets)] + path)
					if err != nil {
						continue
					}
					if a > 0 {
						failovers.Add(1)
					}
					resp = r
					break
				}
				if resp == nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					succeeded.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d client requests failed across the replica kill (%d succeeded), want 0", failed.Load(), succeeded.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("storm made no requests")
	}
	// The kill must have been observable: half the clients preferred the
	// dead replica, so failovers must have happened.
	if failovers.Load() == 0 {
		t.Fatal("no failovers recorded across a replica kill — the kill was not exercised")
	}
}
