package capcluster

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/captrace"
)

// Cluster-tier tracing: the router gives every /run request a trace
// identity — adopted from the client's X-Capsule-Trace-ID or minted and
// sampled — and records its route span against it: received, each
// dispatch attempt with the credit-gauge snapshot that justified it,
// the per-backend outcome (served / shed / death), and the fallback
// tier when the whole fleet refused. The same ID is re-propagated on
// the outbound dispatch header and injected into the local tier's
// request context, so one ID stitches router span → backend span →
// pool-shard events into a single waterfall (cmd/captrace draws it).

// traceIdentity decides the request's trace ID and whether its route
// span is recorded. A parseable client header is adopted and always
// traced — whoever stamped it wants this request observable end to
// end; otherwise an ID is minted and traced for one in TraceSample
// requests. No tracer, no identity: the header is not echoed and the
// hot path pays one nil check.
func (r *Router) traceIdentity(req *http.Request) (tid uint64, traced bool) {
	if r.tracer == nil {
		return 0, false
	}
	if h := req.Header.Get(captrace.HeaderTraceID); h != "" {
		if id, err := captrace.ParseID(h); err == nil {
			return id, true
		}
		// Malformed header: mint a fresh ID rather than adopting garbage.
	}
	return captrace.NewID(), r.sampler.Sample()
}

// trace records one route-span event for a traced request; a no-op for
// untraced ones.
func (r *Router) trace(traced bool, kind captrace.Kind, tid uint64, a uint16, b uint32) {
	if traced {
		r.tracer.Record(kind, tid, 0, a, b)
	}
}

// handleTrace serves GET /debug/trace?n= — the router's own snapshot
// (same shape and semantics as capserve's), plus one snapshot per
// TraceLocals provider when in-process backends exist, so the router's
// URL alone yields the full route-span → backend-span → shard-event
// timeline for the -spawn topology.
func (r *Router) handleTrace(w http.ResponseWriter, req *http.Request) {
	if r.tracer == nil {
		http.Error(w, "tracing disabled (start with -trace)", http.StatusNotFound)
		return
	}
	n := 0
	if v := req.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 {
			http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
			return
		}
		n = p
	}
	w.Header().Set("Content-Type", "application/json")
	if len(r.cfg.TraceLocals) == 0 {
		json.NewEncoder(w).Encode(r.tracer.Snapshot(r.traceSource, n))
		return
	}
	// With in-process backends the router is the only party that knows
	// every ring, so one fetch returns them all: an array of snapshots,
	// the router's own first.
	snaps := make([]captrace.Snapshot, 0, 1+len(r.cfg.TraceLocals))
	snaps = append(snaps, r.tracer.Snapshot(r.traceSource, n))
	for _, ts := range r.cfg.TraceLocals {
		snaps = append(snaps, ts.TraceSnapshot(n))
	}
	json.NewEncoder(w).Encode(snaps)
}

// statusWriter captures the status code the local tier wrote, so the
// fallback path can classify its tier after ServeHTTP returns.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// durUS packs a duration into the µs-resolution uint32 a trace event's
// B field carries (saturating; same shape as capserve's).
func durUS(d time.Duration) uint32 {
	us := d.Microseconds()
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}
