package capcluster

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/buildinfo"
)

// Stats is a snapshot of the router's cluster-scope counters: the
// paper's probe/grant/deny/death accounting, one tier up. Per-backend
// counters are aggregated in; BackendStats has the split.
type Stats struct {
	Requests       uint64 `json:"requests"`        // /run requests received
	RemoteProbes   uint64 `json:"remote_probes"`   // ProbeRemote attempts (incl. denies)
	RemoteGrants   uint64 `json:"remote_grants"`   // probes that reserved a credit
	CreditDenies   uint64 `json:"credit_denies"`   // probes refused: no credit
	BreakerDenies  uint64 `json:"breaker_denies"`  // probes refused: breaker open
	RemoteServed   uint64 `json:"remote_served"`   // responses proxied from a backend
	RemoteSheds    uint64 `json:"remote_sheds"`    // backend 503s (stale credits)
	Deaths         uint64 `json:"deaths"`          // backend errors/timeouts/5xx
	LocalFallbacks uint64 `json:"local_fallbacks"` // requests degraded to the local tier
	ClientGone     uint64 `json:"client_gone"`     // clients that hung up mid-route
}

// RemoteGrantRate is the fraction of remote probes granted — the
// cluster-scope "% divisions allowed".
func (s Stats) RemoteGrantRate() float64 {
	if s.RemoteProbes == 0 {
		return 0
	}
	return float64(s.RemoteGrants) / float64(s.RemoteProbes)
}

// FallbackRate is the fraction of requests the fleet could not take —
// the cluster analogue of the degraded-request rate.
func (s Stats) FallbackRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LocalFallbacks) / float64(s.Requests)
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d probes=%d granted=%d (%.0f%%) denies[credit=%d breaker=%d] served=%d sheds=%d deaths=%d fallbacks=%d (%.0f%%)",
		s.Requests, s.RemoteProbes, s.RemoteGrants, 100*s.RemoteGrantRate(),
		s.CreditDenies, s.BreakerDenies, s.RemoteServed, s.RemoteSheds,
		s.Deaths, s.LocalFallbacks, 100*s.FallbackRate())
}

// BackendStats is one backend's snapshot.
type BackendStats struct {
	URL           string `json:"url"`
	Credits       int    `json:"credits"`
	Inflight      int    `json:"inflight"`
	Broken        bool   `json:"broken"`
	Dispatches    uint64 `json:"dispatches"`
	Served        uint64 `json:"served"`
	Sheds         uint64 `json:"sheds"`
	Deaths        uint64 `json:"deaths"`
	CreditDenies  uint64 `json:"credit_denies"`
	BreakerDenies uint64 `json:"breaker_denies"`
	Ejections     uint64 `json:"ejections"`
	BadHeaders    uint64 `json:"bad_headers"`
	FeedConnected bool   `json:"feed_connected"` // a push-feed subscription is open now
	FeedDeltas    uint64 `json:"feed_deltas"`    // push deltas applied to the gauge
	FeedDrops     uint64 `json:"feed_drops"`     // deltas dropped by the seq regression guard
	FeedConnects  uint64 `json:"feed_connects"`  // feed subscriptions opened (reconnects after the first)
	StaleDecays   uint64 `json:"stale_decays"`   // TTL decays toward the default credit ceiling
}

// Stats snapshots the backend's counters and gauges.
func (b *Backend) Stats() BackendStats {
	return BackendStats{
		URL:           b.url,
		Credits:       b.Credits(),
		Inflight:      b.Inflight(),
		Broken:        b.Broken(),
		Dispatches:    b.dispatches.Load(),
		Served:        b.served.Load(),
		Sheds:         b.sheds.Load(),
		Deaths:        b.deaths.Load(),
		CreditDenies:  b.creditDenies.Load(),
		BreakerDenies: b.breakerDenies.Load(),
		Ejections:     b.ejections.Load(),
		BadHeaders:    b.badHeaders.Load(),
		FeedConnected: b.feedConnected.Load(),
		FeedDeltas:    b.feedDeltas.Load(),
		FeedDrops:     b.feedDrops.Load(),
		FeedConnects:  b.feedConnects.Load(),
		StaleDecays:   b.staleDecays.Load(),
	}
}

// Stats snapshots the router's counters, aggregating the per-backend
// deny/shed/death counts.
func (r *Router) Stats() Stats {
	s := Stats{
		Requests:       r.requests.Load(),
		RemoteProbes:   r.remoteProbes.Load(),
		RemoteGrants:   r.remoteGrants.Load(),
		LocalFallbacks: r.localFallbacks.Load(),
		ClientGone:     r.clientGone.Load(),
	}
	for _, b := range r.backends {
		s.CreditDenies += b.creditDenies.Load()
		s.BreakerDenies += b.breakerDenies.Load()
		s.RemoteServed += b.served.Load()
		s.RemoteSheds += b.sheds.Load()
		s.Deaths += b.deaths.Load()
	}
	return s
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.writeMetrics(w)
}

// writeMetrics renders the router's caprouter_* series followed by the
// local fallback tier's full capserve exposition — one scrape shows the
// whole degradation ladder: remote credits, local contexts, sequential
// runs.
func (r *Router) writeMetrics(w io.Writer) {
	s := r.Stats()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counterHead := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	counter := func(name, help string, v uint64) {
		counterHead(name, help)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}

	gauge("caprouter_backends", "Configured backend count.", float64(len(r.backends)))
	gauge("caprouter_uptime_seconds", "Seconds since the router was built.", time.Since(r.start).Seconds())
	counter("caprouter_requests_total", "Run requests received.", s.Requests)
	counter("caprouter_remote_probes_total", "Remote probes (cluster nthr attempts).", s.RemoteProbes)
	counter("caprouter_remote_granted_total", "Remote probes that reserved a backend credit.", s.RemoteGrants)
	counterHead("caprouter_remote_denies_total", "Refused remote probes by reason.")
	fmt.Fprintf(w, "caprouter_remote_denies_total{reason=\"credit\"} %d\n", s.CreditDenies)
	fmt.Fprintf(w, "caprouter_remote_denies_total{reason=\"breaker\"} %d\n", s.BreakerDenies)
	counter("caprouter_remote_served_total", "Responses proxied back from backends.", s.RemoteServed)
	counter("caprouter_remote_sheds_total", "Backend 503s absorbed by retry/fallback.", s.RemoteSheds)
	counter("caprouter_deaths_total", "Backend failures (cluster kthr).", s.Deaths)
	counter("caprouter_local_fallbacks_total", "Requests degraded to the local runtime.", s.LocalFallbacks)
	counter("caprouter_client_gone_total", "Clients that hung up mid-route.", s.ClientGone)
	counter("caprouter_refresh_errors_total", "Failed /metrics credit refreshes.", r.refreshErrs.Load())
	counter("caprouter_refresh_skipped_total", "Credit scrapes skipped because the push feed was fresh.", r.refreshSkipped.Load())
	gauge("caprouter_remote_grant_rate", "Fraction of remote probes granted (cluster \"% divisions allowed\").", s.RemoteGrantRate())
	gauge("caprouter_fallback_rate", "Fraction of requests the fleet could not take.", s.FallbackRate())

	perBackend := func(name, help, typ string, get func(*Backend) float64, format string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, b := range r.backends {
			fmt.Fprintf(w, "%s{backend=%q} "+format+"\n", name, b.name, get(b))
		}
	}
	perBackend("caprouter_backend_credits", "Current credit ceiling.", "gauge",
		func(b *Backend) float64 { return float64(b.Credits()) }, "%g")
	perBackend("caprouter_backend_inflight", "Dispatches currently holding a credit.", "gauge",
		func(b *Backend) float64 { return float64(b.Inflight()) }, "%g")
	perBackend("caprouter_backend_broken", "1 while the failure breaker denies probes.", "gauge",
		func(b *Backend) float64 {
			if b.Broken() {
				return 1
			}
			return 0
		}, "%g")
	perBackend("caprouter_backend_dispatches_total", "Granted probes sent to the wire.", "counter",
		func(b *Backend) float64 { return float64(b.dispatches.Load()) }, "%.0f")
	perBackend("caprouter_backend_served_total", "Responses proxied from this backend.", "counter",
		func(b *Backend) float64 { return float64(b.served.Load()) }, "%.0f")
	perBackend("caprouter_backend_deaths_total", "Failures charged to this backend.", "counter",
		func(b *Backend) float64 { return float64(b.deaths.Load()) }, "%.0f")
	perBackend("caprouter_backend_sheds_total", "503 sheds from this backend.", "counter",
		func(b *Backend) float64 { return float64(b.sheds.Load()) }, "%.0f")
	perBackend("caprouter_backend_ejections_total", "Slow-backend ejections (p99 outlier vs fleet median).", "counter",
		func(b *Backend) float64 { return float64(b.ejections.Load()) }, "%.0f")
	perBackend("caprouter_backend_bad_headers_total", "Rejected credit advertisements (headers or feed deltas).", "counter",
		func(b *Backend) float64 { return float64(b.badHeaders.Load()) }, "%.0f")
	perBackend("caprouter_backend_feed_connected", "1 while a credit-feed subscription is open.", "gauge",
		func(b *Backend) float64 {
			if b.feedConnected.Load() {
				return 1
			}
			return 0
		}, "%g")
	perBackend("caprouter_backend_feed_deltas_total", "Push credit deltas applied to the gauge.", "counter",
		func(b *Backend) float64 { return float64(b.feedDeltas.Load()) }, "%.0f")
	perBackend("caprouter_backend_feed_reconnects_total", "Credit-feed subscriptions opened.", "counter",
		func(b *Backend) float64 { return float64(b.feedConnects.Load()) }, "%.0f")
	perBackend("caprouter_backend_stale_decays_total", "Gauge decays toward the default after every credit source went quiet.", "counter",
		func(b *Backend) float64 { return float64(b.staleDecays.Load()) }, "%.0f")

	if len(r.backends) > 0 {
		fmt.Fprintf(w, "# HELP capcluster_dispatch_duration_seconds Remote dispatch duration, relayed responses only (deaths/timeouts excluded).\n")
		fmt.Fprintf(w, "# TYPE capcluster_dispatch_duration_seconds histogram\n")
		for _, b := range r.backends {
			b.dispatchLatency.Write(w, "capcluster_dispatch_duration_seconds", fmt.Sprintf("backend=%q", b.name))
		}
	}

	// The degradation-ladder outcome split: which tier finally produced
	// each 2xx. remote + local_runtime + sequential can trail
	// caprouter_requests_total by the requests that failed on every rung.
	counterHead("caprouter_fallback_tier_total", "Successful requests by the tier that served them.")
	fmt.Fprintf(w, "caprouter_fallback_tier_total{tier=\"remote\"} %d\n", r.tierRemote.Load())
	fmt.Fprintf(w, "caprouter_fallback_tier_total{tier=\"local_runtime\"} %d\n", r.tierLocalRuntime.Load())
	fmt.Fprintf(w, "caprouter_fallback_tier_total{tier=\"sequential\"} %d\n", r.tierSequential.Load())

	bi := buildinfo.Get()
	fmt.Fprintf(w, "# HELP caprouter_build_info Build metadata; the value is always 1.\n# TYPE caprouter_build_info gauge\n")
	fmt.Fprintf(w, "caprouter_build_info{version=%q,go=%q,gomaxprocs=\"%d\"} 1\n", bi.Version, bi.Go, bi.MaxProcs)

	// The local tier's own exposition (capsule_* and capserve_* series):
	// the same names a standalone capserve exports, because that is
	// exactly what the fallback tier is.
	r.local.WriteMetrics(w)

	for _, f := range r.extraMetrics {
		f(w)
	}
}
