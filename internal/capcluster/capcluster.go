// Package capcluster carries the probe/divide protocol across the
// process boundary: a routing front end that treats a fleet of capserve
// backends' free capacity as a pool of *remote contexts* and applies the
// paper's admission discipline to it, one resource tier above
// internal/capsule.
//
// The layering is the point. The simulator's SOMT answers nthr from a
// hardware context table; the native runtime answers it from an atomic
// token stack; this package answers it from a per-backend credit gauge —
// in every tier the probe is a local memory operation, cheap enough to
// make at every division point, and a refusal degrades to the tier
// below:
//
//	remote probe granted → dispatch to the chosen backend
//	remote probe refused → the router's own capsule.Runtime (capserve)
//	local context busy   → the request runs sequentially
//
// The mapping from the runtime's mechanisms to the cluster's:
//
//   - context tokens   → backend credits: in-flight dispatches vs. the
//     capacity the backend advertises (response headers on every reply,
//     /metrics on Refresh). ProbeRemote is a breaker check plus one CAS —
//     the deny path touches no network and allocates nothing;
//   - kthr / deaths    → backend errors, timeouts and 5xx responses,
//     recorded in a per-backend failure ring;
//   - death throttling → the breaker: enough failures inside the window
//     deny that backend's probes until the window drains, and the first
//     probe after the drain is the half-open trial;
//   - LIFO warm reuse  → placement policy: least-loaded credits (default),
//     rendezvous hashing for affinity, round-robin as the control.
//
// A dispatch that dies retries the next backend (requests are pure
// functions of (workload, n, seed), so retries are safe) and falls back
// to the local tier only when every remote probe refused or failed —
// which is how a killed backend redistributes with zero failed client
// requests.
package capcluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capserve"
	"repro/internal/captrace"
	"repro/internal/promtext"
)

// Response headers the router stamps so clients and load generators can
// see where a request actually ran.
const (
	// HeaderRoute is "remote" or "local" (the fallback tier).
	HeaderRoute = "X-Capcluster-Route"
	// HeaderBackend is the serving backend's name (host:port), remote
	// routes only.
	HeaderBackend = "X-Capcluster-Backend"
)

// statusClientClosed mirrors capserve's 499: the client hung up before
// the router could finish.
const statusClientClosed = 499

// Defaults applied by New for zero Config fields.
const (
	// DefaultCredits is the initial per-backend credit ceiling, spent
	// before the first header or scrape teaches the real capacity.
	DefaultCredits = 4
	// DefaultMaxCredits caps learned credits so a corrupt header cannot
	// open the floodgates.
	DefaultMaxCredits = 1024
	// DefaultFailThreshold failures inside DefaultFailWindow trip a
	// backend's breaker.
	DefaultFailThreshold = 3
	// DefaultFailWindow is the breaker's trailing window.
	DefaultFailWindow = 2 * time.Second
	// DefaultTimeout bounds one remote dispatch end to end.
	DefaultTimeout = 10 * time.Second
	// DefaultAttemptTimeout bounds one dispatch *attempt* — the slice of
	// the request budget a single backend may consume before the ladder
	// moves on. A black-holing backend costs one attempt, not the
	// request.
	DefaultAttemptTimeout = 2 * time.Second
	// DefaultRefreshTimeout bounds one credit-refresh scrape. Deliberately
	// much shorter than DefaultTimeout: the recovery feed exists to work
	// around sick backends, so it must never wait on one.
	DefaultRefreshTimeout = 1 * time.Second
	// DefaultTrialBackoff is the base delay of the jittered exponential
	// backoff between failed half-open trials.
	DefaultTrialBackoff = 100 * time.Millisecond
	// DefaultStaleTTL is how long a backend's credit gauge stays trusted
	// after its last live signal (push delta, response header, or scrape).
	// Within the TTL a push-fed backend skips the Refresh scrape; past it
	// with *every* source quiet, the gauge decays toward Config.Credits
	// instead of serving stale capacity forever. Several push heartbeats
	// (DefaultFeedHeartbeat) fit inside, so one dropped event never marks
	// a healthy feed stale.
	DefaultStaleTTL = 3 * time.Second
	// DefaultFeedBackoff is the base delay of the jittered exponential
	// backoff between credit-feed reconnect attempts (StartFeeds).
	DefaultFeedBackoff = 100 * time.Millisecond
	// DefaultSlowFactor: a backend is ejected when its dispatch p99
	// exceeds the fleet median p99 by this factor (and the floors below).
	DefaultSlowFactor = 4.0
	// DefaultSlowMinP99 is the absolute p99 floor below which a backend
	// is never ejected, however its peers perform — sub-floor latency is
	// healthy by definition.
	DefaultSlowMinP99 = 25 * time.Millisecond
	// DefaultSlowMinSamples is the minimum relayed dispatches a backend
	// needs inside one CheckSlow interval before its p99 is trusted.
	DefaultSlowMinSamples = 16
	// DefaultMaxBody caps buffered POST bodies (they are replayed on
	// retry and fallback, so they must be held in memory).
	DefaultMaxBody = 1 << 20
)

// Config parameterises a Router.
type Config struct {
	// Backends are the capserve base URLs the router shards over. May be
	// empty: a router with no fleet is just its local tier.
	Backends []string

	// Local is the fallback tier — a capserve.Server on the router's own
	// runtime — and the handler for everything the fleet refuses.
	// Required.
	Local *capserve.Server

	// Placement picks each request's preferred backend. Default:
	// LeastLoaded.
	Placement Placement

	// Credits is the initial per-backend credit ceiling. Default:
	// DefaultCredits.
	Credits int

	// MaxCredits caps credits learned from headers and scrapes. Default:
	// DefaultMaxCredits.
	MaxCredits int

	// FailThreshold failures within FailWindow trip a backend's breaker.
	// Defaults: DefaultFailThreshold, DefaultFailWindow.
	FailThreshold int
	FailWindow    time.Duration

	// Timeout bounds one remote dispatch. Default: DefaultTimeout.
	Timeout time.Duration

	// AttemptTimeout bounds one dispatch attempt, carved from the
	// remaining Timeout budget: each attempt runs under
	// min(AttemptTimeout, budget left), so a stalled backend costs one
	// attempt and the walk across the fleet still finishes inside
	// Timeout. Default: DefaultAttemptTimeout; set >= Timeout to
	// effectively disable the per-attempt slice.
	AttemptTimeout time.Duration

	// RefreshTimeout bounds one Refresh scrape of a backend's /metrics.
	// The scrape client is separate from the dispatch client precisely
	// so a black-holed backend cannot hold the recovery feed hostage for
	// a full dispatch Timeout. Default: DefaultRefreshTimeout.
	RefreshTimeout time.Duration

	// StaleTTL bounds credit-gauge trust: a backend whose push feed is
	// fresh within the TTL skips the Refresh scrape, and a backend whose
	// every live source (feed, headers, scrape) has been quiet past it
	// decays toward Credits on each Refresh tick. Default:
	// DefaultStaleTTL.
	StaleTTL time.Duration

	// FeedBackoff is the base of the jittered exponential backoff between
	// credit-feed reconnect attempts — same shape as TrialBackoff, same
	// deterministic per-backend jitter, so a fleet of routers losing the
	// same backend doesn't resubscribe in lockstep. Default:
	// DefaultFeedBackoff.
	FeedBackoff time.Duration

	// FeedTransport overrides the transport of the credit-feed
	// subscriptions only — the hook capfault's feed scope plugs into, so
	// the push stream can be blackholed without touching dispatches.
	// Default (nil): the dispatch transport.
	FeedTransport http.RoundTripper

	// TrialBackoff is the base of the jittered exponential backoff
	// applied between *failed* half-open trials: after the k-th
	// consecutive trial failure the next trial also waits
	// ~TrialBackoff·2^(k-1), jittered ±50% deterministically per
	// backend, on top of the quiet-window gate — so a fleet of routers
	// re-probing a struggling backend doesn't line its trials up into a
	// thundering herd. Default: DefaultTrialBackoff.
	TrialBackoff time.Duration

	// SlowFactor, SlowMinP99 and SlowMinSamples parameterise slow-backend
	// ejection (Router.CheckSlow): a backend whose dispatch p99 over the
	// interval exceeds SlowFactor × the fleet-median p99 — while p99 >
	// SlowMinP99 and at least SlowMinSamples dispatches back the estimate
	// — is ejected into the same breaker/probation machinery a dead
	// backend trips. Defaults: DefaultSlowFactor, DefaultSlowMinP99,
	// DefaultSlowMinSamples.
	SlowFactor     float64
	SlowMinP99     time.Duration
	SlowMinSamples int

	// MaxBody caps buffered POST bodies. Default: DefaultMaxBody.
	MaxBody int64

	// Transport overrides the dispatch transport (tests). Default: a
	// clone of http.DefaultTransport with the per-backend idle-connection
	// pool widened (see defaultTransport in client.go) so sustained
	// routing reuses connections instead of re-dialing through the
	// default idle cap of 2.
	Transport http.RoundTripper

	// Tracer receives the route-span events (KRoute*) and backs the
	// router's /debug/trace endpoint. cmd/caprouter passes the same
	// tracer here and to the local tier's capserve.Config, so the
	// router's spans and the fallback tier's land in one ring set.
	// Default (nil): cluster-tier tracing disabled.
	Tracer *captrace.Tracer

	// TraceSample is the 1-in-N sampling rate for router-minted trace
	// IDs (adopted client IDs are always traced). Default (0):
	// capserve.DefaultTraceSample.
	TraceSample int

	// TraceSource names this router in trace snapshots, so cmd/captrace
	// can tell router spans from backend spans after merging. Default:
	// "caprouter".
	TraceSource string

	// TraceLocals are co-process snapshot providers — the spawned
	// in-process backends of `caprouter -spawn`, each with its own
	// tracer — whose rings the router's /debug/trace merges alongside
	// its own (the response becomes a JSON array of snapshots;
	// captrace.DecodeSnapshots reads either shape). Remote backends
	// are not listed here: their /debug/trace is reachable at their
	// own URL, and only the router knows where an ephemeral spawned
	// backend lives. Default (nil): the router serves only its own
	// snapshot.
	TraceLocals []TraceSnapshotter
}

// TraceSnapshotter is anything that can contribute a trace snapshot to
// the router's /debug/trace — satisfied by *capserve.Server.
type TraceSnapshotter interface {
	TraceSnapshot(n int) captrace.Snapshot
}

// Validate reports whether cfg can build a Router.
func (cfg Config) Validate() error {
	if cfg.Local == nil {
		return fmt.Errorf("capcluster: Config.Local (the fallback capserve.Server) is required")
	}
	for _, b := range cfg.Backends {
		u, err := url.Parse(b)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("capcluster: backend %q is not an http(s) base URL", b)
		}
	}
	if cfg.Credits < 0 || cfg.MaxCredits < 0 || cfg.FailThreshold < 0 {
		return fmt.Errorf("capcluster: Credits, MaxCredits and FailThreshold must be >= 0 (0 means default)")
	}
	// The gauge packs credits into 32 bits; anything near that is a typo,
	// and letting it through would silently truncate — a fleet parked at
	// zero credits with no error.
	const creditCeiling = 1 << 30
	if cfg.Credits > creditCeiling || cfg.MaxCredits > creditCeiling {
		return fmt.Errorf("capcluster: Credits and MaxCredits must be <= %d, got %d/%d", creditCeiling, cfg.Credits, cfg.MaxCredits)
	}
	// The failure ring allocates next-pow2(threshold) slots per backend;
	// a huge threshold is a typo that would OOM at startup.
	const thresholdCeiling = 1 << 20
	if cfg.FailThreshold > thresholdCeiling {
		return fmt.Errorf("capcluster: FailThreshold must be <= %d, got %d", thresholdCeiling, cfg.FailThreshold)
	}
	if cfg.FailWindow < 0 || cfg.Timeout < 0 || cfg.MaxBody < 0 {
		return fmt.Errorf("capcluster: FailWindow, Timeout and MaxBody must be >= 0 (0 means default)")
	}
	if cfg.AttemptTimeout < 0 || cfg.RefreshTimeout < 0 || cfg.TrialBackoff < 0 {
		return fmt.Errorf("capcluster: AttemptTimeout, RefreshTimeout and TrialBackoff must be >= 0 (0 means default)")
	}
	if cfg.StaleTTL < 0 || cfg.FeedBackoff < 0 {
		return fmt.Errorf("capcluster: StaleTTL and FeedBackoff must be >= 0 (0 means default)")
	}
	if cfg.SlowFactor < 0 || cfg.SlowMinP99 < 0 || cfg.SlowMinSamples < 0 {
		return fmt.Errorf("capcluster: SlowFactor, SlowMinP99 and SlowMinSamples must be >= 0 (0 means default)")
	}
	if cfg.TraceSample < 0 {
		return fmt.Errorf("capcluster: TraceSample must be >= 0 (0 means %d), got %d", capserve.DefaultTraceSample, cfg.TraceSample)
	}
	return nil
}

// Router is the cluster front end: an http.Handler serving the same
// /run/{workload} API as capserve, with /healthz, /metrics and an index
// at /. Build with New, mount anywhere; on shutdown call
// SetDraining(true) before http.Server.Shutdown, exactly like capserve.
type Router struct {
	cfg      Config
	backends []*Backend
	local    *capserve.Server
	place    Placement
	client   *http.Client
	scrape   *http.Client // Refresh's own client: short timeout, never waits a dispatch Timeout on a sick backend
	feed     *http.Client // credit-feed subscriptions: no client timeout (streams live forever), watchdogged per event
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool

	tracer      *captrace.Tracer
	sampler     *captrace.Sampler
	traceSource string

	requests       atomic.Uint64
	remoteProbes   atomic.Uint64
	remoteGrants   atomic.Uint64
	localFallbacks atomic.Uint64
	clientGone     atomic.Uint64
	refreshErrs    atomic.Uint64
	refreshSkipped atomic.Uint64 // scrapes skipped because the push feed was fresh

	// Serving-tier outcome counters: which rung of the degradation
	// ladder finally produced each 2xx response (the
	// caprouter_fallback_tier_total series).
	tierRemote       atomic.Uint64 // dispatched to a backend
	tierLocalRuntime atomic.Uint64 // local fallback, divisions offered
	tierSequential   atomic.Uint64 // local fallback, degraded to sequential

	// extraMetrics are appended to /metrics after the router's own
	// series (AddMetrics) — capwatch's hook into the exposition.
	extraMetrics []func(io.Writer)
}

// New builds a Router from cfg, applying defaults for zero fields.
func New(cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Placement == nil {
		cfg.Placement = LeastLoaded{}
	}
	if cfg.Credits == 0 {
		cfg.Credits = DefaultCredits
	}
	if cfg.MaxCredits == 0 {
		cfg.MaxCredits = DefaultMaxCredits
	}
	if cfg.FailThreshold == 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.FailWindow == 0 {
		cfg.FailWindow = DefaultFailWindow
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.RefreshTimeout == 0 {
		cfg.RefreshTimeout = DefaultRefreshTimeout
	}
	if cfg.TrialBackoff == 0 {
		cfg.TrialBackoff = DefaultTrialBackoff
	}
	if cfg.SlowFactor == 0 {
		cfg.SlowFactor = DefaultSlowFactor
	}
	if cfg.SlowMinP99 == 0 {
		cfg.SlowMinP99 = DefaultSlowMinP99
	}
	if cfg.SlowMinSamples == 0 {
		cfg.SlowMinSamples = DefaultSlowMinSamples
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.StaleTTL == 0 {
		cfg.StaleTTL = DefaultStaleTTL
	}
	if cfg.FeedBackoff == 0 {
		cfg.FeedBackoff = DefaultFeedBackoff
	}
	transport := cfg.Transport
	if transport == nil {
		transport = defaultTransport(cfg.MaxCredits)
	}
	feedTransport := cfg.FeedTransport
	if feedTransport == nil {
		feedTransport = transport
	}
	sample := cfg.TraceSample
	if sample == 0 {
		sample = capserve.DefaultTraceSample
	}
	source := cfg.TraceSource
	if source == "" {
		source = "caprouter"
	}
	r := &Router{
		cfg:         cfg,
		local:       cfg.Local,
		place:       cfg.Placement,
		client:      &http.Client{Transport: transport, Timeout: cfg.Timeout},
		scrape:      &http.Client{Transport: transport, Timeout: cfg.RefreshTimeout},
		feed:        &http.Client{Transport: feedTransport},
		mux:         http.NewServeMux(),
		start:       time.Now(),
		tracer:      cfg.Tracer,
		sampler:     captrace.NewSampler(sample),
		traceSource: source,
	}
	for i, base := range cfg.Backends {
		u, _ := url.Parse(base) // validated above
		r.backends = append(r.backends, newBackend(
			base, u.Host, i, cfg.Credits, cfg.MaxCredits, cfg.FailThreshold, cfg.FailWindow, cfg.TrialBackoff))
	}
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /debug/trace", r.handleTrace)
	r.mux.HandleFunc("GET /run/{workload}", r.handleRun)
	r.mux.HandleFunc("POST /run/{workload}", r.handleRun)
	r.mux.HandleFunc("GET /{$}", r.handleIndex)
	return r, nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Backends returns the fleet in configuration order.
func (r *Router) Backends() []*Backend { return r.backends }

// Local returns the fallback tier.
func (r *Router) Local() *capserve.Server { return r.local }

// SetDraining flips /healthz to 503 so balancers stop routing here
// before shutdown cuts the listener. Draining never refuses an admitted
// request — same contract as capserve.
func (r *Router) SetDraining(v bool) { r.draining.Store(v) }

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (r *Router) handleIndex(w http.ResponseWriter, req *http.Request) {
	type backendInfo struct {
		URL      string `json:"url"`
		Credits  int    `json:"credits"`
		Inflight int    `json:"inflight"`
		Broken   bool   `json:"broken"`
	}
	infos := make([]backendInfo, len(r.backends))
	for i, b := range r.backends {
		infos[i] = backendInfo{URL: b.url, Credits: b.Credits(), Inflight: b.Inflight(), Broken: b.Broken()}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"placement": r.place.Name(),
		"backends":  infos,
		"local": map[string]any{
			"contexts":    r.local.Runtime().Contexts(),
			"queue_depth": r.local.QueueDepth(),
		},
		"endpoints": []string{"/run/{workload}?n=&seed=", "/healthz", "/metrics"},
	})
}

// handleRun is the cluster-scope division point. Remote probes walk the
// fleet in placement order; the first grant dispatches. A shed or death
// moves on to the next backend (each probed at most once), and when the
// whole fleet has refused or failed the request degrades to the local
// tier — capserve, which may degrade it once more to sequential. The
// request itself never fails on a backend's account.
func (r *Router) handleRun(w http.ResponseWriter, req *http.Request) {
	r.requests.Add(1)

	// Trace identity first, so every outcome — even a 400 on a bad body
	// — carries the ID the client stamped. The route span opens here.
	tid, traced := r.traceIdentity(req)
	if tid != 0 {
		w.Header().Set(captrace.HeaderTraceID, captrace.FormatID(tid))
	}
	r.trace(traced, captrace.KRouteRecv, tid, 0, uint32(len(r.backends)))

	// Buffer the body up front: it is replayed on retry and fallback.
	var body []byte
	if req.Method == http.MethodPost && req.Body != nil && req.ContentLength != 0 {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, r.cfg.MaxBody+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > r.cfg.MaxBody {
			http.Error(w, fmt.Sprintf("body exceeds the %d-byte cap", r.cfg.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
	}

	if n := len(r.backends); n > 0 {
		first := r.place.Pick(placeKey(req.PathValue("workload"), req.URL.RawQuery), r.backends)
		// The whole remote walk shares one budget: each attempt runs
		// under min(AttemptTimeout, budget left), so retries after a
		// stalled backend shrink, never extend, the request's bound.
		deadline := time.Now().Add(r.cfg.Timeout)
		for i := 0; i < n; i++ {
			b := r.backends[(first+i)%n]
			r.remoteProbes.Add(1)
			if !b.probe() {
				continue
			}
			r.remoteGrants.Add(1)
			// The dispatch span records which backend won and the credit
			// snapshot that justified it — the router's routing decision,
			// reconstructable per request.
			r.trace(traced, captrace.KRouteDispatch, tid, uint16(b.id), uint32(b.Credits()))
			start := time.Now()
			switch r.dispatch(w, req, b, body, deadline, tid, traced) {
			case dispatched:
				elapsed := time.Since(start)
				b.dispatchLatency.Observe(elapsed)
				r.trace(traced, captrace.KRouteServed, tid, uint16(b.id), durUS(elapsed))
				r.tierRemote.Add(1)
				return
			case clientGone:
				r.clientGone.Add(1)
				w.WriteHeader(statusClientClosed)
				return
			case shed:
				r.trace(traced, captrace.KRouteShed, tid, uint16(b.id), 0)
			case died:
				r.trace(traced, captrace.KRouteDeath, tid, uint16(b.id), durUS(time.Since(start)))
			}
			// shed or died: probe the next backend.
		}
	}

	// Every remote tier refused or failed: degrade to the local runtime.
	// The identity rides the request context, not the header, so the
	// local capserve reuses it verbatim (and respects this tier's
	// sampling decision) instead of re-deciding.
	r.localFallbacks.Add(1)
	if body != nil {
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	if tid != 0 {
		req = req.WithContext(captrace.WithRequest(req.Context(), tid, traced))
	}
	w.Header().Set(HeaderRoute, "local")
	sw := &statusWriter{ResponseWriter: w}
	lstart := time.Now()
	r.local.ServeHTTP(sw, req)

	// Classify which rung of the ladder actually served the request:
	// capserve marks sequential-degraded 200s with X-Capserve-Degraded.
	// Tier 0 in the fallback span means the local tier failed too (shed
	// or error) — the request died on the bottom rung.
	var tier uint16
	if sw.status >= 200 && sw.status < 300 {
		if w.Header().Get(capserve.HeaderDegraded) == "1" {
			tier = captrace.TierSequential
			r.tierSequential.Add(1)
		} else {
			tier = captrace.TierLocalRuntime
			r.tierLocalRuntime.Add(1)
		}
	}
	r.trace(traced, captrace.KRouteFallback, tid, tier, durUS(time.Since(lstart)))
}

// Refresh re-learns every backend's credit headroom from its /metrics
// (capserve_queue_depth minus capserve_queue_occupancy). It is the slow
// capacity feed — response headers are the fast one — and the recovery
// path for a backend parked at zero credits with no traffic to advertise
// through. Backends are scraped concurrently and with the dedicated
// short-timeout scrape client (Config.RefreshTimeout, not the dispatch
// Timeout), so one black-holed backend costs the fleet at most one
// RefreshTimeout, not a 10 s dispatch budget — the recovery feed must
// not be starved by exactly the sick backend it exists to work around.
// cmd/caprouter runs it on a ticker; tests call it directly.
//
// With the push plane live (StartFeeds), Refresh only pays for backends
// the push plane has lost: a backend whose feed is fresh within
// Config.StaleTTL skips its scrape (counted in refreshSkipped, the
// caprouter_refresh_skipped_total series — steady-state proof the feed
// is carrying the fleet). A backend whose every live source is quiet
// past the TTL *and* whose scrape just failed decays toward
// Config.Credits instead of serving a stale gauge forever.
func (r *Router) Refresh() {
	ttl := r.cfg.StaleTTL.Nanoseconds()
	var wg sync.WaitGroup
	for _, b := range r.backends {
		if b.feedFresh(ttl) {
			r.refreshSkipped.Add(1)
			continue
		}
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			if err := r.refreshBackend(b); err != nil {
				r.refreshErrs.Add(1)
				if b.stale(ttl) {
					b.decayStale(r.cfg.Credits)
				}
			}
		}(b)
	}
	wg.Wait()
}

func (r *Router) refreshBackend(b *Backend) error {
	resp, err := r.scrape.Get(b.url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	samples := promtext.Parse(raw)
	depth, dok := promtext.Value(samples, "capserve_queue_depth")
	occ, ook := promtext.Value(samples, "capserve_queue_occupancy")
	if !dok || !ook {
		return fmt.Errorf("capcluster: %s/metrics missing queue gauges", b.name)
	}
	b.learn(int(depth - occ))
	b.markFresh()
	return nil
}
