package capcluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/capserve"
	"repro/internal/captrace"
	"repro/internal/httptune"
)

// dispatchIdleConnsFloor is the minimum per-backend idle-connection
// pool, for fleets configured with tiny credit ceilings.
const dispatchIdleConnsFloor = 64

// defaultTransport is the dispatch transport when Config.Transport is
// nil: http.DefaultTransport's dialer and timeouts, with an idle pool
// sized to the fleet's real concurrency bound. Every concurrently
// admitted request holds one connection to its backend, and admissions
// per backend are capped by the credit gauge — whose ceiling is
// maxCredits — so an idle pool at least that wide means a release never
// closes a connection the next dispatch burst will want (net/http's
// default of 2 idle conns per host re-dials on nearly every dispatch,
// measured as the server being slow when it is really the router
// churning TCP).
func defaultTransport(maxCredits int) http.RoundTripper {
	perHost := maxCredits
	if perHost < dispatchIdleConnsFloor {
		perHost = dispatchIdleConnsFloor
	}
	return httptune.Transport(perHost)
}

// DefaultTransport returns the dispatch transport New builds when
// Config.Transport is nil, sized for maxCredits concurrent dispatches
// per backend (0 = the default ceiling). Callers that need to interpose
// on the wire — cmd/caprouter wrapping dispatches in a capfault
// injector — start from this so wrapping does not change pooling
// behavior.
func DefaultTransport(maxCredits int) http.RoundTripper {
	if maxCredits == 0 {
		maxCredits = DefaultMaxCredits
	}
	return defaultTransport(maxCredits)
}

// outcome classifies one remote dispatch attempt.
type outcome int

const (
	// dispatched: a response (2xx or proxied 4xx) was written to the
	// client. The request is done.
	dispatched outcome = iota
	// shed: the backend 503ed — our credit estimate was stale, the
	// backend is alive and said so. Not a death; try the next backend.
	shed
	// died: transport error, timeout or 5xx — a cluster-scope kthr,
	// recorded in the backend's failure ring. Try the next backend.
	died
	// clientGone: our own client hung up mid-dispatch. Nobody is waiting;
	// stop routing.
	clientGone
)

// dispatch forwards one admitted (probe-granted) request to b and relays
// the response. It owns the granted credit: every path releases exactly
// once, after the response — and its headroom header, the fast credit
// feed — has been consumed. A traced request's ID is re-stamped on the
// outbound header, so the backend adopts the same identity and its
// serving/runtime events join the router's route span in one waterfall.
//
// The attempt runs under min(Config.AttemptTimeout, time left until
// deadline) — the hardening capfault's black-hole forced: a backend
// that accepts and stalls costs the request one attempt slice, not the
// whole budget, and the walk moves on. Responses up to MaxBody are
// buffered before anything is written to the client, so a backend dying
// mid-body is a retryable death (the next backend gets the request)
// instead of a truncated 200.
func (r *Router) dispatch(w http.ResponseWriter, req *http.Request, b *Backend, body []byte, deadline time.Time, tid uint64, traced bool) outcome {
	defer b.release()
	b.dispatches.Add(1)

	attempt := r.cfg.AttemptTimeout
	if rem := time.Until(deadline); rem < attempt {
		attempt = rem
	}
	if attempt <= 0 {
		// Budget exhausted before this attempt started: charge the walk,
		// not the backend.
		return died
	}
	ctx, cancel := context.WithTimeout(req.Context(), attempt)
	defer cancel()

	target := b.url + req.URL.Path
	if req.URL.RawQuery != "" {
		target += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, target, rd)
	if err != nil {
		b.fail()
		return died
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	// Propagate only traced identities: a backend adopting a header
	// always traces it, so forwarding a sampled-out ID would defeat the
	// router's sampling decision one tier down.
	if traced && tid != 0 {
		out.Header.Set(captrace.HeaderTraceID, captrace.FormatID(tid))
	}

	resp, err := r.client.Do(out)
	if err != nil {
		if req.Context().Err() != nil {
			// The abort was ours, not the backend's: no death — but a
			// trial dispatch must not leave its probation slot dangling.
			b.abortTrial()
			return clientGone
		}
		// The parent context is fine, so the error is the backend's —
		// including the attempt deadline firing: a black-hole is a death.
		b.fail()
		return died
	}
	defer resp.Body.Close()

	// Any response at all means the backend is alive: close probation
	// before classifying the status.
	b.recover()

	// The fast credit feed: every capserve response advertises its queue
	// headroom at the instant it answered. The header crosses a process
	// boundary, so it is clamped like any other untrusted input — a
	// corrupted or injected value must not inflate the gauge (learn caps
	// at MaxCredits, but pinning a backend *at* the cap is still
	// inflation, so garbage is dropped at the parse).
	if hdr := resp.Header.Get(capserve.HeaderQueueFree); hdr != "" {
		if free, ok := parseHeadroom(hdr); ok {
			b.learn(free)
			b.markFresh()
		} else {
			b.badHeaders.Add(1)
		}
	}

	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		b.sheds.Add(1)
		return shed
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		b.fail()
		return died
	}

	// 2xx and 4xx proxy through. Bodies up to MaxBody are buffered
	// first — the client has seen nothing yet, so a mid-body death stays
	// retryable — and the attempt deadline covers the read, so a
	// trickling body slower than the slice is a death too, not a stall.
	if resp.ContentLength <= r.cfg.MaxBody {
		var buf bytes.Buffer
		if n, err := io.Copy(&buf, io.LimitReader(resp.Body, r.cfg.MaxBody+1)); err == nil && n <= r.cfg.MaxBody {
			h := w.Header()
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				h.Set("Content-Type", ct)
			}
			h.Set(HeaderRoute, "remote")
			h.Set(HeaderBackend, b.name)
			h.Set("Content-Length", strconv.Itoa(buf.Len()))
			w.WriteHeader(resp.StatusCode)
			w.Write(buf.Bytes())
			b.served.Add(1)
			return dispatched
		} else if err != nil {
			if req.Context().Err() != nil {
				// Our client hung up while we buffered; the backend is
				// blameless and nobody is waiting.
				return clientGone
			}
			b.fail()
			return died
		}
		// n > MaxBody with a lying/absent Content-Length: fall through to
		// streaming what was buffered plus the rest.
		resp.Body = &prefixedBody{head: buf.Bytes(), tail: resp.Body}
	}

	// Oversized body: stream it. The client sees bytes as they arrive,
	// so a mid-body death here is unrecoverable — headers are gone; all
	// that's left is the accounting.
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set(HeaderRoute, "remote")
	h.Set(HeaderBackend, b.name)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		if req.Context().Err() == nil {
			b.fail()
		}
		return dispatched
	}
	b.served.Add(1)
	return dispatched
}

// headroomCeiling bounds a believable X-Capserve-Queue-Free value. The
// largest honest headroom is the backend's queue depth; anything beyond
// this is a corrupted or hostile header, not a big queue.
const headroomCeiling = 1 << 20

// parseHeadroom validates the fast credit feed's header value: a
// non-negative integer no larger than headroomCeiling. Anything else —
// unparseable, negative, absurd — is rejected (counted per backend as
// caprouter_backend_bad_headers_total) so the gauge only ever learns
// plausible capacity.
func parseHeadroom(s string) (int, bool) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v > headroomCeiling {
		return 0, false
	}
	return v, true
}

// prefixedBody replays an already-buffered head before the unread tail
// of the response body — the hand-off from buffered to streaming relay
// when a body outgrows MaxBody mid-read.
type prefixedBody struct {
	head []byte
	tail io.ReadCloser
}

func (p *prefixedBody) Read(b []byte) (int, error) {
	if len(p.head) > 0 {
		n := copy(b, p.head)
		p.head = p.head[n:]
		return n, nil
	}
	return p.tail.Read(b)
}

func (p *prefixedBody) Close() error { return p.tail.Close() }
