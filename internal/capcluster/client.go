package capcluster

import (
	"bytes"
	"io"
	"net/http"
	"strconv"

	"repro/internal/capserve"
	"repro/internal/captrace"
	"repro/internal/httptune"
)

// dispatchIdleConnsFloor is the minimum per-backend idle-connection
// pool, for fleets configured with tiny credit ceilings.
const dispatchIdleConnsFloor = 64

// defaultTransport is the dispatch transport when Config.Transport is
// nil: http.DefaultTransport's dialer and timeouts, with an idle pool
// sized to the fleet's real concurrency bound. Every concurrently
// admitted request holds one connection to its backend, and admissions
// per backend are capped by the credit gauge — whose ceiling is
// maxCredits — so an idle pool at least that wide means a release never
// closes a connection the next dispatch burst will want (net/http's
// default of 2 idle conns per host re-dials on nearly every dispatch,
// measured as the server being slow when it is really the router
// churning TCP).
func defaultTransport(maxCredits int) http.RoundTripper {
	perHost := maxCredits
	if perHost < dispatchIdleConnsFloor {
		perHost = dispatchIdleConnsFloor
	}
	return httptune.Transport(perHost)
}

// outcome classifies one remote dispatch attempt.
type outcome int

const (
	// dispatched: a response (2xx or proxied 4xx) was written to the
	// client. The request is done.
	dispatched outcome = iota
	// shed: the backend 503ed — our credit estimate was stale, the
	// backend is alive and said so. Not a death; try the next backend.
	shed
	// died: transport error, timeout or 5xx — a cluster-scope kthr,
	// recorded in the backend's failure ring. Try the next backend.
	died
	// clientGone: our own client hung up mid-dispatch. Nobody is waiting;
	// stop routing.
	clientGone
)

// dispatch forwards one admitted (probe-granted) request to b and relays
// the response. It owns the granted credit: every path releases exactly
// once, after the response — and its headroom header, the fast credit
// feed — has been consumed. A traced request's ID is re-stamped on the
// outbound header, so the backend adopts the same identity and its
// serving/runtime events join the router's route span in one waterfall.
func (r *Router) dispatch(w http.ResponseWriter, req *http.Request, b *Backend, body []byte, tid uint64, traced bool) outcome {
	defer b.release()
	b.dispatches.Add(1)

	target := b.url + req.URL.Path
	if req.URL.RawQuery != "" {
		target += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, target, rd)
	if err != nil {
		b.fail()
		return died
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	// Propagate only traced identities: a backend adopting a header
	// always traces it, so forwarding a sampled-out ID would defeat the
	// router's sampling decision one tier down.
	if traced && tid != 0 {
		out.Header.Set(captrace.HeaderTraceID, captrace.FormatID(tid))
	}

	resp, err := r.client.Do(out)
	if err != nil {
		if req.Context().Err() != nil {
			// The abort was ours, not the backend's: no death — but a
			// trial dispatch must not leave its probation slot dangling.
			b.abortTrial()
			return clientGone
		}
		b.fail()
		return died
	}
	defer resp.Body.Close()

	// Any response at all means the backend is alive: close probation
	// before classifying the status.
	b.recover()

	// The fast credit feed: every capserve response advertises its queue
	// headroom at the instant it answered.
	if free, aerr := strconv.Atoi(resp.Header.Get(capserve.HeaderQueueFree)); aerr == nil {
		b.learn(free)
	}

	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		b.sheds.Add(1)
		return shed
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		b.fail()
		return died
	}

	// 2xx and 4xx proxy through verbatim: a 400/404/413 is the client's
	// conversation with the API, not a backend health event.
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set(HeaderRoute, "remote")
	h.Set(HeaderBackend, b.name)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// Headers are gone; all that's left is the accounting. A backend
		// dying mid-body is a death even though the status was fine.
		if req.Context().Err() == nil {
			b.fail()
		}
		return dispatched
	}
	b.served.Add(1)
	return dispatched
}
