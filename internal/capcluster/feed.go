package capcluster

// The subscriber half of the push plane: one goroutine per backend
// holds a long-lived GET /debug/credits stream (capserve/feed.go) and
// folds each delta into that backend's credit gauge, demoting the
// response-header and /metrics-scrape paths to degraded fallbacks.
//
// Liveness is watchdogged, not assumed: a timer armed *before* the
// subscription dial fires after Config.StaleTTL of silence and cancels
// the stream, so a black-holed feed — at connect time or mid-stream —
// costs one TTL, never a hung goroutine. Reconnects back off
// exponentially with the same deterministic per-backend jitter the
// half-open trial gate uses, so a fleet of routers losing the same
// backend does not resubscribe in lockstep.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/capserve"
)

// StartFeeds subscribes to every backend's credit feed, one goroutine
// per backend, each reconnecting with jittered backoff until ctx is
// cancelled. Optional: a router without it behaves exactly as before
// (headers + Refresh scrapes). cmd/caprouter calls it under the signal
// context; tests pass their own.
func (r *Router) StartFeeds(ctx context.Context) {
	for _, b := range r.backends {
		go r.feedLoop(ctx, b)
	}
}

// RefreshSkipped returns the scrapes Refresh has skipped because the
// push feed was fresh — the steady-state proof the push plane is live.
func (r *Router) RefreshSkipped() uint64 { return r.refreshSkipped.Load() }

func (r *Router) feedLoop(ctx context.Context, b *Backend) {
	var fails uint32
	for {
		err := r.feedOnce(ctx, b)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			fails++
		} else {
			// A clean end (the backend announced draining) still retries
			// — the replacement process will serve the same URL — but
			// from the base backoff, not wherever the failure ladder was.
			fails = 0
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(feedBackoff(b.nameHash, fails, r.cfg.FeedBackoff.Nanoseconds())):
		}
	}
}

// feedOnce runs one subscription: dial, then apply deltas until the
// stream ends. Returns nil only for a clean end (the backend's final
// Draining delta); everything else — connect failure, non-200, decode
// trouble ending the scan, watchdog cancellation — is an error that
// advances the reconnect backoff.
func (r *Router) feedOnce(ctx context.Context, b *Backend) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ttl := r.cfg.StaleTTL

	// The watchdog is armed before the dial on purpose: a backend that
	// black-holes the *connect* (capfault's feed blackhole, a silent
	// firewall) must cost one TTL, not an indefinitely parked goroutine.
	// Every event received rearms it.
	wd := time.AfterFunc(ttl, cancel)
	defer wd.Stop()

	req, err := http.NewRequestWithContext(sctx, http.MethodGet, b.url+"/debug/credits", nil)
	if err != nil {
		return err
	}
	resp, err := r.feed.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("capcluster: %s/debug/credits: %s", b.name, resp.Status)
	}
	b.feedConnects.Add(1)
	b.feedConnected.Store(true)
	defer b.feedConnected.Store(false)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 512), 1<<16)
	clean := false
	for sc.Scan() {
		wd.Reset(ttl)
		raw, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // event separators and comments
		}
		var d capserve.CreditDelta
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			b.badHeaders.Add(1)
			continue
		}
		// Same sanity window the header path applies (parseHeadroom): a
		// corrupt or hostile advertisement must not open the floodgates.
		if d.QueueFree < 0 || d.QueueFree > headroomCeiling {
			b.badHeaders.Add(1)
			continue
		}
		b.applyDelta(d.Seq, d.QueueFree, d.Draining)
		if d.Draining {
			// The stream's announced final event: the backend is going
			// away gracefully, and its gauge is already parked at zero.
			clean = true
			break
		}
	}
	if clean {
		return nil
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("capcluster: %s credit feed closed", b.name)
}

// feedBackoff is the reconnect delay after the fails-th consecutive
// subscription failure: FeedBackoff·2^min(fails,6), jittered
// deterministically into [0.5×, 1.5×) per (backend, fails) — the
// scheduleTrial recipe, reused so the two backoff ladders stay
// reproducible in tests and decorrelated across a router fleet.
func feedBackoff(nameHash uint64, fails uint32, baseNS int64) time.Duration {
	if baseNS <= 0 {
		return 0
	}
	shift := fails
	if shift > 6 {
		shift = 6
	}
	base := baseNS << shift
	h := mix64(nameHash ^ (uint64(fails)+1)*0x9e3779b97f4a7c15)
	return time.Duration(base/2 + int64(h%uint64(base)))
}
