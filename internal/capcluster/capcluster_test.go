package capcluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capserve"
	"repro/internal/capsule"
)

// newLocal builds the fallback tier every router needs.
func newLocal(t *testing.T, contexts, queue int) *capserve.Server {
	t.Helper()
	rt := capsule.New(capsule.Config{Contexts: contexts, Throttle: true})
	t.Cleanup(rt.Close)
	s, err := capserve.New(capserve.Config{Runtime: rt, QueueDepth: queue})
	if err != nil {
		t.Fatalf("capserve.New: %v", err)
	}
	return s
}

// startBackend boots a real in-process capserve backend and tears it
// down (drained) at cleanup.
func startBackend(t *testing.T, contexts, queue int) *capserve.Backend {
	t.Helper()
	b, err := capserve.StartBackend(capserve.Config{
		Runtime:    capsule.New(capsule.Config{Contexts: contexts, Throttle: true}),
		QueueDepth: queue,
	})
	if err != nil {
		t.Fatalf("StartBackend: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Close(ctx)
		b.Runtime().Close()
	})
	return b
}

func newRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Local == nil {
		cfg.Local = newLocal(t, 2, 32)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(r)
	t.Cleanup(ts.Close)
	return r, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func TestConfigValidate(t *testing.T) {
	local := newLocal(t, 2, 8)
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("nil Local accepted")
	}
	if err := (Config{Local: local, Backends: []string{"not a url"}}).Validate(); err == nil {
		t.Fatal("garbage backend URL accepted")
	}
	if err := (Config{Local: local, Backends: []string{"ftp://x"}}).Validate(); err == nil {
		t.Fatal("non-http backend URL accepted")
	}
	if err := (Config{Local: local, Credits: -1}).Validate(); err == nil {
		t.Fatal("negative Credits accepted")
	}
	if err := (Config{Local: local, MaxCredits: 1 << 31}).Validate(); err == nil {
		t.Fatal("uint32-truncating MaxCredits accepted")
	}
	if err := (Config{Local: local, FailWindow: -time.Second}).Validate(); err == nil {
		t.Fatal("negative FailWindow accepted")
	}
	if err := (Config{Local: local, Backends: []string{"http://127.0.0.1:1"}}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestProbeDenyAllocFree pins the PR 3 discipline at cluster scope: both
// remote-probe refusal reasons are allocation-free.
func TestProbeDenyAllocFree(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 4, 1024, 2, time.Second, 0)

	b.setCredits(0) // every probe refuses on credit
	if allocs := testing.AllocsPerRun(1000, func() {
		if b.probe() {
			t.Fatal("probe granted with zero credits")
		}
	}); allocs != 0 {
		t.Fatalf("credit-deny path allocates %.1f/op, want 0", allocs)
	}

	b.setCredits(4)
	b.fail()
	b.fail() // threshold 2: breaker open
	if !b.Broken() {
		t.Fatal("breaker not open after threshold failures")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if b.probe() {
			t.Fatal("probe granted through an open breaker")
		}
	}); allocs != 0 {
		t.Fatalf("breaker-deny path allocates %.1f/op, want 0", allocs)
	}
}

// TestProbeDenyNetworkFree asserts a denied remote probe costs the
// backend nothing: with credits at zero the router degrades locally and
// the backend never sees a connection.
func TestProbeDenyNetworkFree(t *testing.T) {
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "should never be reached", http.StatusTeapot)
	}))
	defer backend.Close()

	r, ts := newRouter(t, Config{Backends: []string{backend.URL}})
	r.Backends()[0].setCredits(0)

	resp, _ := get(t, ts.URL+"/run/quicksort?n=200&seed=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via local fallback", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRoute); got != "local" {
		t.Fatalf("%s = %q, want local", HeaderRoute, got)
	}
	if hits.Load() != 0 {
		t.Fatalf("backend saw %d requests across a credit-denied probe, want 0", hits.Load())
	}
	s := r.Stats()
	if s.CreditDenies == 0 || s.LocalFallbacks != 1 || s.RemoteGrants != 0 {
		t.Fatalf("stats after denied probe: %+v", s)
	}
}

// TestBreakerTripsAndReadmits drives the failure ring with an injected
// clock: threshold failures deny probes, and the probes flow again once
// the window slides past them.
func TestBreakerTripsAndReadmits(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 4, 1024, 3, time.Second, 0)
	var clock atomic.Int64
	b.now = func() int64 { return clock.Load() }

	for i := 0; i < 3; i++ {
		if !b.probe() {
			t.Fatalf("probe %d refused before any failures", i)
		}
		b.release()
		b.fail()
	}
	if !b.Broken() {
		t.Fatal("breaker closed after 3 failures inside the window")
	}
	if b.probe() {
		t.Fatal("probe granted through an open breaker")
	}
	if b.breakerDenies.Load() != 1 {
		t.Fatalf("breakerDenies = %d, want 1", b.breakerDenies.Load())
	}

	clock.Store(2 * time.Second.Nanoseconds()) // the window has drained
	if b.Broken() {
		t.Fatal("breaker still open after the window drained")
	}
	if !b.probe() {
		t.Fatal("half-open trial refused after re-admission")
	}
	// Re-admission is one request wide: while the trial is unresolved,
	// every other probe keeps getting denied — a black-holing backend
	// stalls at most one request per quiet window, not a stampede.
	if b.probe() {
		t.Fatal("second probe granted while the trial is in flight")
	}

	// A failed trial re-arms probation AND dirties the window: no new
	// trial until it is quiet again.
	b.release()
	b.fail()
	clock.Store(clock.Load() + (500 * time.Millisecond).Nanoseconds())
	if b.Broken() {
		t.Fatal("one failed trial tripped the threshold-3 breaker")
	}
	if b.probe() {
		t.Fatal("trial granted with a failure still inside the window")
	}
	clock.Store(clock.Load() + time.Second.Nanoseconds())
	if !b.probe() {
		t.Fatal("trial refused after the failed trial aged out")
	}

	// A response of any kind closes probation: full probing resumes.
	b.release()
	b.recover()
	if !b.probe() {
		t.Fatal("probe refused after a successful trial closed probation")
	}
	if !b.probe() {
		t.Fatal("second concurrent probe refused after probation closed")
	}
	b.release()
	b.release()

	// A fresh failure burst re-trips it.
	for i := 0; i < 3; i++ {
		b.fail()
	}
	if !b.Broken() {
		t.Fatal("breaker did not re-trip on a fresh burst")
	}
}

// TestCreditGauge covers the packed gauge's protocol: grants stop at the
// ceiling, release restores, learn folds advertised headroom in on top
// of in-flight, setCredits clamps.
func TestCreditGauge(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 3, 8, 4, time.Second, 0)
	for i := 0; i < 3; i++ {
		if !b.probe() {
			t.Fatalf("probe %d refused with credits free", i)
		}
	}
	if b.probe() {
		t.Fatal("probe granted beyond the ceiling")
	}
	if b.Inflight() != 3 || b.Credits() != 3 {
		t.Fatalf("gauge = %d/%d, want 3/3", b.Inflight(), b.Credits())
	}
	b.release()
	if !b.probe() {
		t.Fatal("probe refused after a release")
	}

	// 3 in flight, backend advertises 2 free → ceiling 5.
	b.learn(2)
	if b.Credits() != 5 || b.Inflight() != 3 {
		t.Fatalf("after learn(2): %d/%d, want 3/5", b.Inflight(), b.Credits())
	}
	b.learn(100) // clamped at maxCredits
	if b.Credits() != 8 {
		t.Fatalf("learn over max: credits %d, want 8", b.Credits())
	}
	b.learn(-1) // negative headroom readings are ignored
	if b.Credits() != 8 {
		t.Fatalf("learn(-1) changed credits to %d", b.Credits())
	}
	b.setCredits(-5)
	if b.Credits() != 0 {
		t.Fatalf("setCredits(-5): credits %d, want 0", b.Credits())
	}
	for i := 0; i < 3; i++ {
		b.release()
	}
	if b.Inflight() != 0 {
		t.Fatalf("inflight %d after all releases, want 0", b.Inflight())
	}
}

// TestCreditGaugeStorm races probes, releases and learns; the invariant
// is no lost releases (final inflight zero) and no grant beyond the
// ceiling at snapshot time.
func TestCreditGaugeStorm(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 8, 64, 4, time.Second, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if b.probe() {
					if g == 0 && i%7 == 0 {
						b.learn(8)
					}
					b.release()
				}
			}
		}(g)
	}
	wg.Wait()
	if b.Inflight() != 0 {
		t.Fatalf("inflight %d after storm, want 0", b.Inflight())
	}
	if c := b.Credits(); c < 8 || c > 64 {
		t.Fatalf("credits %d after storm, want within [8,64]", c)
	}
}

func TestPlacementPolicies(t *testing.T) {
	mk := func(credits ...int) []*Backend {
		bs := make([]*Backend, len(credits))
		for i, c := range credits {
			bs[i] = newBackend(fmt.Sprintf("http://127.0.0.1:%d", i+1), fmt.Sprintf("b%d", i), i, c, 1024, 4, time.Second, 0)
		}
		return bs
	}

	rr := &RoundRobin{}
	bs := mk(4, 4, 4)
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		seen[rr.Pick(0, bs)]++
	}
	if seen[0] != 3 || seen[1] != 3 || seen[2] != 3 {
		t.Fatalf("round-robin spread %v, want 3/3/3", seen)
	}

	ll := LeastLoaded{}
	bs = mk(2, 8, 4)
	if got := ll.Pick(0, bs); got != 1 {
		t.Fatalf("least-loaded picked %d, want 1 (most free credits)", got)
	}
	bs[1].probe()
	bs[1].probe()
	bs[1].probe()
	bs[1].probe()
	bs[1].probe() // b1 free: 3; b2 free: 4
	if got := ll.Pick(0, bs); got != 2 {
		t.Fatalf("least-loaded picked %d after load shift, want 2", got)
	}

	rv := Rendezvous{}
	bs = mk(4, 4, 4)
	spread := map[int]bool{}
	for key := uint64(0); key < 64; key++ {
		p := rv.Pick(key, bs)
		if q := rv.Pick(key, bs); q != p {
			t.Fatalf("rendezvous unstable for key %d: %d then %d", key, p, q)
		}
		spread[p] = true
	}
	if len(spread) < 2 {
		t.Fatalf("rendezvous sent 64 keys to %d backend(s), want spread", len(spread))
	}
	// Minimal remap: weights key on backend identity (URL), not fleet
	// index, so removing one backend moves only the keys it owned.
	reduced := []*Backend{bs[0], bs[2]}
	for key := uint64(0); key < 64; key++ {
		home := bs[rv.Pick(key, bs)]
		if home == bs[1] {
			continue // this key's home left; it may land anywhere
		}
		if moved := reduced[rv.Pick(key, reduced)]; moved != home {
			t.Fatalf("key %d moved %s → %s when an unrelated backend left", key, home.name, moved.name)
		}
	}

	if _, err := NewPlacement("nosuch"); err == nil {
		t.Fatal("unknown placement accepted")
	}
	for _, name := range []string{"", "least-loaded", "round-robin", "rendezvous"} {
		if _, err := NewPlacement(name); err != nil {
			t.Fatalf("NewPlacement(%q): %v", name, err)
		}
	}
}

// TestRouterProxiesRemote is the happy path: a routed request matches a
// direct one bit for bit (checksum), carries the route headers, and 4xx
// conversations proxy through without counting as backend health events.
func TestRouterProxiesRemote(t *testing.T) {
	b := startBackend(t, 2, 16)
	r, ts := newRouter(t, Config{Backends: []string{b.URL}})

	_, direct := get(t, b.URL+"/run/quicksort?n=300&seed=42")
	resp, routed := get(t, ts.URL+"/run/quicksort?n=300&seed=42")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed status %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderRoute) != "remote" {
		t.Fatalf("%s = %q, want remote", HeaderRoute, resp.Header.Get(HeaderRoute))
	}
	if got := resp.Header.Get(HeaderBackend); got != r.Backends()[0].Name() {
		t.Fatalf("%s = %q, want %q", HeaderBackend, got, r.Backends()[0].Name())
	}
	var dr, rr struct {
		Checksum uint64 `json:"checksum"`
	}
	if json.Unmarshal(direct, &dr) != nil || json.Unmarshal(routed, &rr) != nil {
		t.Fatalf("unparseable bodies: %q %q", direct, routed)
	}
	if dr.Checksum == 0 || dr.Checksum != rr.Checksum {
		t.Fatalf("routed checksum %d != direct %d", rr.Checksum, dr.Checksum)
	}

	// POST body override rides through the proxy.
	resp2, err := http.Post(ts.URL+"/run/quicksort?n=1&seed=1", "application/json",
		bytes.NewBufferString(`{"n": 300, "seed": 42}`))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var pr struct {
		N        int    `json:"n"`
		Seed     int64  `json:"seed"`
		Checksum uint64 `json:"checksum"`
	}
	if err := json.Unmarshal(body2, &pr); err != nil {
		t.Fatalf("POST body %q: %v", body2, err)
	}
	if pr.N != 300 || pr.Seed != 42 || pr.Checksum != dr.Checksum {
		t.Fatalf("POST through router = %+v, want n=300 seed=42 checksum=%d", pr, dr.Checksum)
	}

	// 4xx proxies verbatim and is not a death.
	if resp, _ := get(t, ts.URL+"/run/nosuch?n=10"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload via router = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/run/quicksort?n=abc"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n via router = %d, want 400", resp.StatusCode)
	}
	if d := r.Backends()[0].Stats().Deaths; d != 0 {
		t.Fatalf("4xx counted as %d deaths", d)
	}
	if s := r.Stats(); s.LocalFallbacks != 0 {
		t.Fatalf("happy path fell back locally %d times: %+v", s.LocalFallbacks, s)
	}
}

// TestNoBackendsServesLocally: a fleetless router is just its local tier.
func TestNoBackendsServesLocally(t *testing.T) {
	r, ts := newRouter(t, Config{})
	resp, _ := get(t, ts.URL+"/run/lzw?n=500&seed=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderRoute) != "local" {
		t.Fatalf("%s = %q, want local", HeaderRoute, resp.Header.Get(HeaderRoute))
	}
	if s := r.Stats(); s.LocalFallbacks != 1 || s.RemoteProbes != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestShedRetriesNextBackend: a backend 503 is a stale credit, not a
// death — the router moves to the next backend and the client never
// sees the shed.
func TestShedRetriesNextBackend(t *testing.T) {
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(capserve.HeaderQueueFree, "0")
		http.Error(w, "full", http.StatusServiceUnavailable)
	}))
	defer shedder.Close()
	real := startBackend(t, 2, 16)

	r, ts := newRouter(t, Config{
		Backends:  []string{shedder.URL, real.URL},
		Placement: &RoundRobin{}, // first pick is backends[0], the shedder
	})
	resp, _ := get(t, ts.URL+"/run/quicksort?n=200&seed=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via the second backend", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderBackend); got != r.Backends()[1].Name() {
		t.Fatalf("served by %q, want %q", got, r.Backends()[1].Name())
	}
	bs := r.Backends()[0].Stats()
	if bs.Sheds != 1 || bs.Deaths != 0 {
		t.Fatalf("shedder stats: %+v, want 1 shed and 0 deaths", bs)
	}
	// The shed's headroom header (0 free) collapsed the stale credits to
	// exactly the dispatch that was in flight when it was learned: the
	// default ceiling (4) is gone, and once that dispatch released, the
	// gauge reads 1 — one retry allowed after the current batch drains,
	// nothing more.
	if c := r.Backends()[0].Credits(); c != 1 {
		t.Fatalf("shedder credits %d after learn(0) with one dispatch in flight, want 1", c)
	}
}

// TestServerErrorIsDeath: a 5xx is charged to the backend's ring and the
// request completes elsewhere.
func TestServerErrorIsDeath(t *testing.T) {
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer sick.Close()

	r, ts := newRouter(t, Config{
		Backends:  []string{sick.URL},
		Placement: &RoundRobin{},
	})
	resp, _ := get(t, ts.URL+"/run/quicksort?n=200&seed=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via local fallback", resp.StatusCode)
	}
	if resp.Header.Get(HeaderRoute) != "local" {
		t.Fatalf("route %q, want local", resp.Header.Get(HeaderRoute))
	}
	bs := r.Backends()[0].Stats()
	if bs.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", bs.Deaths)
	}
}

// TestKilledBackendRedistributes is the cluster acceptance test: kill
// one of three live backends under concurrent load — every client
// request still succeeds, the dead backend's ring trips its breaker, and
// the survivors absorb the traffic.
func TestKilledBackendRedistributes(t *testing.T) {
	var backends []*capserve.Backend
	var urls []string
	for i := 0; i < 3; i++ {
		b := startBackend(t, 2, 16)
		backends = append(backends, b)
		urls = append(urls, b.URL)
	}
	r, ts := newRouter(t, Config{
		Backends:      urls,
		Local:         newLocal(t, 2, 64),
		FailThreshold: 2,
		FailWindow:    30 * time.Second, // stays broken for the whole test
		Timeout:       5 * time.Second,
	})

	run := func(requests, conc int) (ok, bad int) {
		var wg sync.WaitGroup
		var okN, badN atomic.Int64
		sem := make(chan struct{}, conc)
		for i := 0; i < requests; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				resp, err := http.Get(fmt.Sprintf("%s/run/quicksort?n=300&seed=%d", ts.URL, i%8))
				if err != nil {
					badN.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					okN.Add(1)
				} else {
					badN.Add(1)
				}
			}(i)
		}
		wg.Wait()
		return int(okN.Load()), int(badN.Load())
	}

	if ok, bad := run(30, 8); bad != 0 || ok != 30 {
		t.Fatalf("healthy fleet: %d ok, %d failed", ok, bad)
	}

	victim := r.Backends()[0]
	backends[0].Kill()
	servedBefore := make([]uint64, 3)
	for i, b := range r.Backends() {
		servedBefore[i] = b.Stats().Served
	}

	if ok, bad := run(80, 8); bad != 0 || ok != 80 {
		t.Fatalf("after kill: %d ok, %d failed — clients must never see a dead backend", ok, bad)
	}

	vs := victim.Stats()
	if vs.Deaths < uint64(r.cfg.FailThreshold) {
		t.Fatalf("victim deaths = %d, want >= %d (breaker food)", vs.Deaths, r.cfg.FailThreshold)
	}
	if !victim.Broken() {
		t.Fatal("victim's breaker never tripped")
	}
	if vs.BreakerDenies == 0 {
		t.Fatal("no probes were refused by the open breaker")
	}
	redistributed := uint64(0)
	for i, b := range r.Backends()[1:] {
		redistributed += b.Stats().Served - servedBefore[i+1]
	}
	if redistributed == 0 {
		t.Fatal("survivors served nothing after the kill")
	}
	backends[0].Runtime().Close()
}

// TestRefreshLearnsCredits: the /metrics scrape raises the default
// ceiling to the backend's real queue depth.
func TestRefreshLearnsCredits(t *testing.T) {
	b := startBackend(t, 2, 24)
	r, _ := newRouter(t, Config{Backends: []string{b.URL}})
	if c := r.Backends()[0].Credits(); c != DefaultCredits {
		t.Fatalf("pre-refresh credits %d, want %d", c, DefaultCredits)
	}
	r.Refresh()
	if c := r.Backends()[0].Credits(); c != 24 {
		t.Fatalf("post-refresh credits %d, want 24 (the backend's queue depth)", c)
	}
	// A dead backend's refresh fails without disturbing the gauge.
	dead, _ := newRouter(t, Config{Backends: []string{"http://127.0.0.1:1"}, Timeout: 200 * time.Millisecond})
	dead.Refresh()
	if c := dead.Backends()[0].Credits(); c != DefaultCredits {
		t.Fatalf("failed refresh changed credits to %d", c)
	}
	if dead.refreshErrs.Load() != 1 {
		t.Fatalf("refreshErrs = %d, want 1", dead.refreshErrs.Load())
	}
}

var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// TestMetricsExposition: well-formed text format carrying the router's
// caprouter_* series AND the local tier's capsule_*/capserve_* ones.
func TestMetricsExposition(t *testing.T) {
	b := startBackend(t, 2, 16)
	r, ts := newRouter(t, Config{Backends: []string{b.URL}})
	get(t, ts.URL+"/run/quicksort?n=200&seed=1") // one remote grant
	r.Backends()[0].setCredits(0)
	get(t, ts.URL+"/run/quicksort?n=200&seed=2") // one local fallback

	resp, body := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed metric line %q", line)
		}
		i := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		samples[line[:i]] = v
	}
	for series, want := range map[string]float64{
		"caprouter_backends":              1,
		"caprouter_requests_total":        2,
		"caprouter_remote_granted_total":  1,
		"caprouter_local_fallbacks_total": 1,
	} {
		if samples[series] != want {
			t.Fatalf("%s = %v, want %v", series, samples[series], want)
		}
	}
	label := fmt.Sprintf("{backend=%q}", r.Backends()[0].Name())
	if samples["caprouter_backend_dispatches_total"+label] != 1 {
		t.Fatalf("per-backend dispatches = %v, want 1", samples["caprouter_backend_dispatches_total"+label])
	}
	// The local tier's series ride along on the same scrape.
	if _, ok := samples["capsule_probes_total"]; !ok {
		t.Fatal("local capsule_* series missing from router exposition")
	}
	if _, ok := samples["capsule_free_contexts"]; !ok {
		t.Fatal("capsule_free_contexts missing from router exposition")
	}
}

// TestRouterHealthzAndIndex covers the operational endpoints.
func TestRouterHealthzAndIndex(t *testing.T) {
	b := startBackend(t, 2, 8)
	r, ts := newRouter(t, Config{Backends: []string{b.URL}})
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	r.SetDraining(true)
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	r.SetDraining(false)

	var idx struct {
		Placement string `json:"placement"`
		Backends  []struct {
			URL     string `json:"url"`
			Credits int    `json:"credits"`
		} `json:"backends"`
		Local struct {
			Contexts int `json:"contexts"`
		} `json:"local"`
	}
	resp, body := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("index body %q: %v", body, err)
	}
	if idx.Placement != "least-loaded" || len(idx.Backends) != 1 || idx.Local.Contexts != 2 {
		t.Fatalf("index = %+v", idx)
	}
}
