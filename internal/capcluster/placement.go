package capcluster

import (
	"fmt"
	"sync/atomic"
)

// A Placement picks the backend a request's first remote probe targets.
// The router walks the fleet in ring order from that index until a probe
// grants, so placement chooses preference, not exclusivity — a sick or
// credit-dry favourite costs one refused (local, memory-only) probe, not
// a failed request. Pick must be safe for concurrent use and should not
// allocate: it sits on the request hot path.
type Placement interface {
	// Name is the policy's flag/metrics name.
	Name() string
	// Pick returns the preferred index into backends for key. backends is
	// never empty.
	Pick(key uint64, backends []*Backend) int
}

// NewPlacement resolves a policy by name: "least-loaded" (default),
// "round-robin", or "rendezvous".
func NewPlacement(name string) (Placement, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "rendezvous":
		return Rendezvous{}, nil
	}
	return nil, fmt.Errorf("capcluster: unknown placement %q (have least-loaded, round-robin, rendezvous)", name)
}

// LeastLoaded prefers the backend with the most free credits — the
// cluster analogue of granting the context at the top of the free stack:
// send work where headroom is, as the gauges see it right now.
type LeastLoaded struct{}

// Name implements Placement.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick scans the fleet once for the widest credits-minus-inflight gap.
// Ties go to the lowest index; a fleet with no headroom anywhere returns
// 0 and lets the probes refuse.
func (LeastLoaded) Pick(_ uint64, backends []*Backend) int {
	best, bestFree := 0, int(-1)<<31
	for i, b := range backends {
		g := b.gauge.Load()
		free := int(uint32(g>>32)) - int(uint32(g))
		if free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// RoundRobin rotates through the fleet regardless of load — the control
// policy the other two are measured against, and the right one when
// backends are identical and traffic is uniform.
type RoundRobin struct{ next atomic.Uint64 }

// Name implements Placement.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Placement.
func (p *RoundRobin) Pick(_ uint64, backends []*Backend) int {
	return int((p.next.Add(1) - 1) % uint64(len(backends)))
}

// Rendezvous is highest-random-weight hashing on the request key (the
// workload and its parameters, so a given (workload, n, seed) always
// lands on the same backend while the fleet is stable — cache and
// working-set affinity). Weights key on each backend's URL hash, not its
// fleet index, so removing a backend moves only that backend's keys; the
// rest keep their homes across config changes and restarts.
type Rendezvous struct{}

// Name implements Placement.
func (Rendezvous) Name() string { return "rendezvous" }

// Pick implements Placement.
func (Rendezvous) Pick(key uint64, backends []*Backend) int {
	best, bestW := 0, uint64(0)
	for i, b := range backends {
		w := mix(key ^ b.nameHash)
		if i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// mix is the splitmix64 finaliser (the same one the capsule lock table
// uses) so adjacent keys and backend ids spread uniformly.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// placeKey hashes a request's routing identity (workload + raw query,
// which carries n and seed) with FNV-1a, allocation-free. POST bodies
// are deliberately not hashed: the query is the common case, and a body
// duplicate merely picks a different (still valid) preferred backend.
func placeKey(workload, rawQuery string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(workload); i++ {
		h ^= uint64(workload[i])
		h *= fnvPrime64
	}
	h ^= '?'
	h *= fnvPrime64
	for i := 0; i < len(rawQuery); i++ {
		h ^= uint64(rawQuery[i])
		h *= fnvPrime64
	}
	return h
}

const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = 1099511628211
)

// fnv64 is FNV-1a over one string — the stable backend identity hash.
func fnv64(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}
