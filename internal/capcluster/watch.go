package capcluster

import (
	"io"
	"net/http"

	"repro/internal/capserve"
)

// Read-side hooks for periodic samplers (internal/capwatch), the
// cluster tier's counterpart of capserve's: allocation-free snapshot
// reads over the router's atomic counters and the per-backend credit
// gauges, so a sampler tick never contends with the dispatch path.

// BackendCounters is one backend's gauges and cumulative counters as a
// sampler reads them. Credits/Inflight/Broken are instantaneous (the
// credit gauge and breaker the next probe would see); the rest are
// cumulative since construction, delta-able across samples.
type BackendCounters struct {
	Credits       int    `json:"credits"`
	Inflight      int    `json:"inflight"`
	Broken        bool   `json:"broken"`
	Dispatches    uint64 `json:"dispatches"`
	Served        uint64 `json:"served"`
	Sheds         uint64 `json:"sheds"`
	Deaths        uint64 `json:"deaths"`
	CreditDenies  uint64 `json:"credit_denies"`
	BreakerDenies uint64 `json:"breaker_denies"`
	Ejections     uint64 `json:"ejections"`
	BadHeaders    uint64 `json:"bad_headers"`

	// DispatchBuckets is the dispatch-latency density histogram
	// (relayed responses only), +Inf last — the router-side view of the
	// backend's serving latency, delta-able into windowed quantiles.
	DispatchBuckets [capserve.NumLatencyBuckets]uint64 `json:"dispatch_buckets"`
	DispatchSumNS   int64                              `json:"dispatch_sum_ns"`
}

// BackendNames returns the fleet's metrics labels (host:port) in the
// order ReadBackendCounters fills. Callers must not modify the slice's
// backing order assumptions: it is fixed at construction.
func (r *Router) BackendNames() []string {
	names := make([]string, len(r.backends))
	for i, b := range r.backends {
		names[i] = b.name
	}
	return names
}

// ReadBackendCounters fills dst with up to len(Backends()) backends'
// counters in fleet order and returns the backend count.
// Allocation-free.
func (r *Router) ReadBackendCounters(dst []BackendCounters) int {
	n := len(r.backends)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		b := r.backends[i]
		d := &dst[i]
		d.Credits = b.Credits()
		d.Inflight = b.Inflight()
		d.Broken = b.Broken()
		d.Dispatches = b.dispatches.Load()
		d.Served = b.served.Load()
		d.Sheds = b.sheds.Load()
		d.Deaths = b.deaths.Load()
		d.CreditDenies = b.creditDenies.Load()
		d.BreakerDenies = b.breakerDenies.Load()
		d.Ejections = b.ejections.Load()
		d.BadHeaders = b.badHeaders.Load()
		d.DispatchSumNS = b.dispatchLatency.ReadCounts(&d.DispatchBuckets)
	}
	return len(r.backends)
}

// RouterCounters is the router's own cumulative request accounting as
// a sampler reads it — the client-visible side (what came in, which
// tier answered) rather than the per-backend split.
type RouterCounters struct {
	Requests       uint64 `json:"requests"`
	RemoteProbes   uint64 `json:"remote_probes"`
	RemoteGrants   uint64 `json:"remote_grants"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
	ClientGone     uint64 `json:"client_gone"`
	TierRemote     uint64 `json:"tier_remote"`
	TierLocal      uint64 `json:"tier_local_runtime"`
	TierSequential uint64 `json:"tier_sequential"`
}

// ReadCounters snapshots the router-scope counters. Allocation-free.
func (r *Router) ReadCounters() RouterCounters {
	return RouterCounters{
		Requests:       r.requests.Load(),
		RemoteProbes:   r.remoteProbes.Load(),
		RemoteGrants:   r.remoteGrants.Load(),
		LocalFallbacks: r.localFallbacks.Load(),
		ClientGone:     r.clientGone.Load(),
		TierRemote:     r.tierRemote.Load(),
		TierLocal:      r.tierLocalRuntime.Load(),
		TierSequential: r.tierSequential.Load(),
	}
}

// Mount registers an additional handler on the router's mux (capwatch's
// /debug/watch). Call before serving starts; the mux is not
// synchronized against in-flight requests.
func (r *Router) Mount(pattern string, h http.Handler) { r.mux.Handle(pattern, h) }

// AddMetrics appends an extra exposition writer to the router's
// /metrics, emitted after the caprouter_* series and the local tier's
// exposition. Wire before serving starts.
func (r *Router) AddMetrics(f func(io.Writer)) { r.extraMetrics = append(r.extraMetrics, f) }

// TraceHandler returns the /debug/trace handler as a mountable value
// for a side debug listener (cmd/caprouter -debug-addr).
func (r *Router) TraceHandler() http.Handler { return http.HandlerFunc(r.handleTrace) }
