package capcluster

import "sync/atomic"

// failRing is the cluster-scope analogue of internal/capsule's death
// ring: a fixed atomic ring of backend-failure timestamps. A backend
// error or timeout is the cluster's kthr — a remote worker died — and
// "at least threshold failures inside the trailing window" is the
// circuit-breaker condition, answered with one or two atomic loads and a
// lazy clock read, exactly like the runtime's division throttle.
//
// The same two benign races the capsule ring documents apply here, with
// the same conclusions: an overwrite racing a read can only substitute a
// newer timestamp (errs toward breaking — the conservative direction for
// a health check), and a reader catching seq published before the store
// lands sees the slot's older value and may let one probe through as a
// failure lands. The breaker is a rate heuristic, not mutual exclusion;
// a single leaked probe costs one retried dispatch, never correctness.
//
// Re-admission is implicit: when the window slides past the old
// failures, atLeast goes false and probes flow again. The first probe
// after the drain is the half-open trial — if the backend is still dead
// it fails fast, refills the ring, and the breaker re-trips.
type failRing struct {
	seq  atomic.Uint64
	mask uint64
	ts   []atomic.Int64
}

// init sizes the ring to the next power of two >= threshold, so the
// timestamp of the threshold-th most recent failure is always resident.
func (r *failRing) init(threshold int) {
	size := 1
	for size < threshold {
		size <<= 1
	}
	r.ts = make([]atomic.Int64, size)
	r.mask = uint64(size - 1)
}

// record logs one backend failure at timestamp now.
func (r *failRing) record(now int64) {
	i := r.seq.Add(1) - 1
	r.ts[i&r.mask].Store(now)
}

// atLeast reports whether at least k failures have timestamps at or
// after now()-windowNS. The clock is read only once k failures exist at
// all, so a healthy backend's probe never pays for it.
func (r *failRing) atLeast(k int, now func() int64, windowNS int64) bool {
	seq := r.seq.Load()
	if seq < uint64(k) {
		return false
	}
	ts := r.ts[(seq-uint64(k))&r.mask].Load()
	return ts >= now()-windowNS
}
