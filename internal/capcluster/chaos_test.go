package capcluster

// Hardening tests: the failure modes capfault exists to reproduce —
// black holes, trickles, mid-body deaths, corrupt headers, stalled
// scrapes — and the dispatch-ladder machinery that contains each one.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capfault"
	"repro/internal/capserve"
)

// okBackend is a fake capserve backend answering 200 with a fixed body
// and an honest headroom header.
func okBackend(t *testing.T, body string, free int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(capserve.HeaderQueueFree, fmt.Sprint(free))
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestAttemptDeadlineBoundsBlackhole is the acceptance criterion for the
// per-attempt deadline: with one backend black-holed by capfault, every
// client request still completes successfully, and the black hole costs
// at most one AttemptTimeout before the ladder moves on — not the full
// request Timeout. Run with -race.
func TestAttemptDeadlineBoundsBlackhole(t *testing.T) {
	inj := capfault.New(1)
	victim := okBackend(t, "victim", 4)
	healthy := okBackend(t, "healthy", 4)
	victimHost := strings.TrimPrefix(victim.URL, "http://")
	if _, err := inj.Set(capfault.Rule{Kind: capfault.KindBlackhole, Backend: victimHost}); err != nil {
		t.Fatalf("Set: %v", err)
	}

	const attempt = 150 * time.Millisecond
	r, ts := newRouter(t, Config{
		Backends:       []string{victim.URL, healthy.URL},
		Transport:      inj.Transport(http.DefaultTransport),
		Timeout:        5 * time.Second,
		AttemptTimeout: attempt,
		FailThreshold:  100, // keep the breaker out of it: every request may eat the black hole
	})

	var wg sync.WaitGroup
	var worst atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				start := time.Now()
				resp, body := get(t, ts.URL+"/run/quicksort?n=64&seed=1")
				el := time.Since(start)
				for {
					w := worst.Load()
					if int64(el) <= w || worst.CompareAndSwap(w, int64(el)) {
						break
					}
				}
				if resp.StatusCode != 200 {
					t.Errorf("status %d body %q with a black-holed backend", resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Wait()

	// Even a request that drew the victim first pays one attempt slice
	// plus the healthy dispatch — far under the 5 s total budget. The
	// bound is generous (3×attempt) for scheduler noise; what it must
	// never approach is Timeout.
	if w := time.Duration(worst.Load()); w > 3*attempt {
		t.Fatalf("worst request took %v; a black hole must cost ~one %v attempt", w, attempt)
	}
	if r.Backends()[0].deaths.Load() == 0 {
		t.Fatalf("black-holed backend recorded no deaths; the attempt deadline never fired")
	}
}

// TestSlowBackendEjectsAndReadmits covers the latency-outlier ejection:
// a trickling-but-2xx backend trips CheckSlow into the ordinary
// breaker/probation machinery, and a recovered backend re-admits through
// the half-open trial.
func TestSlowBackendEjectsAndReadmits(t *testing.T) {
	r, _ := newRouter(t, Config{
		Backends:       []string{"http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3"},
		SlowFactor:     4,
		SlowMinP99:     10 * time.Millisecond,
		SlowMinSamples: 16,
		FailWindow:     time.Second,
	})
	victim, h1, h2 := r.Backends()[0], r.Backends()[1], r.Backends()[2]
	var clock atomic.Int64
	victim.now = func() int64 { return clock.Load() }

	// Interval 1: victim answers 2xx at 200 ms p99, peers at 1 ms.
	for i := 0; i < 32; i++ {
		victim.dispatchLatency.Observe(200 * time.Millisecond)
		h1.dispatchLatency.Observe(time.Millisecond)
		h2.dispatchLatency.Observe(time.Millisecond)
	}
	if n := r.CheckSlow(); n != 1 {
		t.Fatalf("CheckSlow ejected %d backends, want 1 (the victim)", n)
	}
	if victim.ejections.Load() != 1 || !victim.Broken() {
		t.Fatalf("victim ejections=%d broken=%v; want 1, true", victim.ejections.Load(), victim.Broken())
	}
	if h1.Broken() || h2.Broken() {
		t.Fatalf("healthy peers ejected alongside the victim")
	}
	if victim.probe() {
		t.Fatal("probe granted on an ejected backend")
	}
	// Deaths are backend failures; ejection is router policy, not a death.
	if victim.deaths.Load() != 0 {
		t.Fatalf("ejection recorded %d deaths; want 0", victim.deaths.Load())
	}

	// A second interval with no new samples must not re-eject anyone
	// (deltas, not cumulative totals).
	if n := r.CheckSlow(); n != 0 {
		t.Fatalf("CheckSlow with no new samples ejected %d", n)
	}

	// Re-admission: once the ejection's ring entries age out, the next
	// probe is the half-open trial, and a response closes probation.
	clock.Store(2 * time.Second.Nanoseconds())
	if victim.Broken() {
		t.Fatal("still broken after the window drained")
	}
	if !victim.probe() {
		t.Fatal("half-open trial refused after ejection aged out")
	}
	victim.release()
	victim.recover()
	if !victim.probe() {
		t.Fatal("probe refused after recovery closed probation")
	}
	victim.release()
}

// TestTrialBackoffJitter pins the jittered exponential backoff between
// failed half-open trials: each consecutive failure pushes the next
// trial out ~2× further, the jitter stays inside [0.5×, 1.5×) of the
// exponential base, and distinct backends jitter differently.
func TestTrialBackoffJitter(t *testing.T) {
	const base = 100 * time.Millisecond
	mk := func(url string) (*Backend, *atomic.Int64) {
		b := newBackend(url, "b", 0, 4, 1024, 2, time.Second, base)
		var clock atomic.Int64
		b.now = func() int64 { return clock.Load() }
		return b, &clock
	}
	b, clock := mk("http://127.0.0.1:1")

	// Trip the breaker.
	b.fail()
	b.fail()
	if !b.Broken() {
		t.Fatal("not broken after threshold failures")
	}

	var delays []time.Duration
	for trial := 1; trial <= 4; trial++ {
		// Age the window out and clear any pending backoff.
		clock.Store(clock.Load() + 10*time.Second.Nanoseconds())
		if next := b.nextTrialNS.Load(); next > clock.Load() {
			clock.Store(next)
		}
		if !b.probe() {
			t.Fatalf("trial %d refused with window quiet and backoff elapsed", trial)
		}
		before := clock.Load()
		b.release()
		b.fail() // failed trial: schedules the next backoff
		delays = append(delays, time.Duration(b.nextTrialNS.Load()-before))

		// Before the backoff elapses the trial is refused even though the
		// ring is quiet.
		clock.Store(before + 10*time.Second.Nanoseconds())
		if b.nextTrialNS.Load() > clock.Load() {
			t.Fatalf("trial %d: backoff %v not elapsed after 10s?", trial, delays[trial-1])
		}
	}
	for i, d := range delays {
		expBase := base << i
		if d < expBase/2 || d >= expBase*3/2 {
			t.Fatalf("trial-fail %d backoff %v outside [%v, %v)", i+1, d, expBase/2, expBase*3/2)
		}
	}
	if !(delays[3] > delays[1] && delays[1] > delays[0]/2) {
		t.Fatalf("backoffs not growing: %v", delays)
	}

	// The backoff gate alone refuses a trial: quiet ring, pending jitter.
	b2, clock2 := mk("http://127.0.0.1:2")
	b2.fail()
	b2.fail()
	clock2.Store(10 * time.Second.Nanoseconds())
	if !b2.probe() {
		t.Fatal("b2 first trial refused")
	}
	b2.release()
	b2.fail()
	clock2.Store(clock2.Load() + 5*time.Second.Nanoseconds()) // ring quiet again
	save := b2.nextTrialNS.Load()
	b2.nextTrialNS.Store(clock2.Load() + time.Hour.Nanoseconds())
	if b2.probe() {
		t.Fatal("trial granted before the jittered backoff elapsed")
	}
	b2.nextTrialNS.Store(save)

	// Different backend identities draw different jitter for the same
	// failure count (decorrelated trials across routers/backends).
	b3, clock3 := mk("http://127.0.0.1:3")
	b3.fail()
	b3.fail()
	clock3.Store(10 * time.Second.Nanoseconds())
	if !b3.probe() {
		t.Fatal("b3 trial refused")
	}
	b3.release()
	b3.fail()
	d2 := b2.nextTrialNS.Load() - clock2.Load()
	d3 := b3.nextTrialNS.Load() - clock3.Load()
	if d2 == d3 {
		t.Fatalf("backends b2 and b3 drew identical jitter %v — trials would synchronize", time.Duration(d2))
	}

	// recover resets the backoff entirely.
	b.recover()
	if b.trialFails.Load() != 0 || b.nextTrialNS.Load() != 0 {
		t.Fatalf("recover left backoff state: fails=%d next=%d", b.trialFails.Load(), b.nextTrialNS.Load())
	}
}

// TestRefreshNotStalledBySickBackend is the credit-refresh-stall fix: a
// black-holed backend's scrape times out on the dedicated short
// RefreshTimeout instead of holding the recovery feed for a dispatch
// Timeout, so the healthy backend still learns its credits promptly.
func TestRefreshNotStalledBySickBackend(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Black hole: accepted, never answered (until the scraper's own
		// timeout tears the connection down).
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer sick.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "capserve_queue_depth 24\ncapserve_queue_occupancy 4\n")
	}))
	defer healthy.Close()

	r, _ := newRouter(t, Config{
		Backends:       []string{sick.URL, healthy.URL},
		Timeout:        10 * time.Second, // the dispatch budget the scrape must NOT inherit
		RefreshTimeout: 200 * time.Millisecond,
	})
	hb := r.Backends()[1]
	hb.setCredits(0) // parked: exactly the state Refresh exists to recover

	start := time.Now()
	r.Refresh()
	elapsed := time.Since(start)

	if elapsed > 2*time.Second {
		t.Fatalf("Refresh took %v; the sick backend stalled the feed past its %v scrape timeout", elapsed, 200*time.Millisecond)
	}
	if got := hb.Credits(); got != 20 {
		t.Fatalf("healthy credits = %d after Refresh, want 24-4=20", got)
	}
	if r.refreshErrs.Load() == 0 {
		t.Fatal("sick backend's scrape failure not counted")
	}
}

// TestLearnRejectsCorruptHeader is the fast-credit-feed clamp: garbage
// X-Capserve-Queue-Free values are dropped and counted, never learned.
func TestLearnRejectsCorruptHeader(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"0", 0, true},
		{"17", 17, true},
		{"1048576", 1 << 20, true},
		{"-3", 0, false},
		{"1048577", 0, false},    // above headroomCeiling: absurd, not big
		{"99999999999", 0, false},
		{"banana", 0, false},
		{"12.5", 0, false},
		{"", 0, false},
	} {
		got, ok := parseHeadroom(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseHeadroom(%q) = %d,%v; want %d,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}

	// Through the wire: a backend advertising garbage serves fine but
	// teaches nothing, and the rejection is counted per backend.
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(capserve.HeaderQueueFree, "99999999999")
		io.WriteString(w, "ok")
	}))
	defer evil.Close()
	r, ts := newRouter(t, Config{Backends: []string{evil.URL}, Credits: 4})
	resp, body := get(t, ts.URL+"/run/quicksort?n=64&seed=1")
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("resp %d %q", resp.StatusCode, body)
	}
	b := r.Backends()[0]
	if b.badHeaders.Load() != 1 {
		t.Fatalf("badHeaders = %d, want 1", b.badHeaders.Load())
	}
	if c := b.Credits(); c != 4 {
		t.Fatalf("credits = %d after corrupt header, want the untouched initial 4", c)
	}
}

// TestMidBodyDeathRetries: with the buffered relay, a backend dying
// mid-body is a retryable death — the client sees a complete response
// from another backend, never a truncated 200.
func TestMidBodyDeathRetries(t *testing.T) {
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Promise 64 bytes, deliver 10, abort: the classic mid-body death.
		w.Header().Set("Content-Length", "64")
		w.WriteHeader(200)
		io.WriteString(w, "partial...")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer victim.Close()
	healthy := okBackend(t, "complete response body", 4)

	r, ts := newRouter(t, Config{
		Backends:      []string{victim.URL, healthy.URL},
		FailThreshold: 100, // keep retries flowing to the victim
	})
	for i := 0; i < 12; i++ {
		resp, body := get(t, ts.URL+"/run/quicksort?n=64&seed=1")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if string(body) != "complete response body" {
			t.Fatalf("request %d: body %q leaked a truncated relay", i, body)
		}
	}
	if r.Backends()[0].deaths.Load() == 0 {
		t.Fatal("victim never probed — test proved nothing; placement changed?")
	}
	if got := r.Backends()[0].served.Load(); got != 0 {
		t.Fatalf("victim credited with %d served responses despite truncating all of them", got)
	}
}

// TestOversizedBodyStreams covers the buffered→streaming hand-off: a
// body past MaxBody (with a lying Content-Length) still relays intact
// through prefixedBody.
func TestOversizedBodyStreams(t *testing.T) {
	big := strings.Repeat("x", 300)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// No Content-Length: chunked, so the relay starts buffering and
		// discovers the overflow mid-read.
		w.(http.Flusher).Flush()
		io.WriteString(w, big)
	}))
	defer backend.Close()
	r, ts := newRouter(t, Config{Backends: []string{backend.URL}, MaxBody: 100})
	resp, body := get(t, ts.URL+"/run/quicksort?n=64&seed=1")
	if resp.StatusCode != 200 || string(body) != big {
		t.Fatalf("oversized relay: status %d, %d bytes (want 200, %d)", resp.StatusCode, len(body), len(big))
	}
	if r.Backends()[0].served.Load() != 1 {
		t.Fatalf("served = %d, want 1", r.Backends()[0].served.Load())
	}
}

// TestClientGoneDuringTrial: a half-open trial whose routed client hangs
// up resolves via abortTrial back to probationWait — the slot is not
// leaked in probationTrial, and a later trial can still run.
func TestClientGoneDuringTrial(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	var mode atomic.Int32 // 0: fail with 500; 1: block
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			http.Error(w, "boom", 500)
			return
		}
		entered <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer backend.Close()

	r, ts := newRouter(t, Config{
		Backends:      []string{backend.URL},
		FailThreshold: 2,
		FailWindow:    100 * time.Millisecond,
		TrialBackoff:  time.Nanosecond, // the jitter gate is not under test here
	})
	b := r.Backends()[0]

	// Trip the breaker with two 5xxs (requests fall back locally, fine).
	for i := 0; i < 2; i++ {
		resp, _ := get(t, ts.URL+"/run/quicksort?n=64&seed=1")
		if resp.StatusCode != 200 {
			t.Fatalf("fallback status %d", resp.StatusCode)
		}
	}
	if !b.Broken() {
		t.Fatal("breaker not tripped")
	}

	// Let the window drain, then send the trial request with a client
	// context we cancel once the backend holds it.
	mode.Store(1)
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/run/quicksort?n=64&seed=1", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("trial request never reached the backend")
	}
	if b.probation.Load() != probationTrial {
		t.Fatalf("probation = %d mid-trial, want probationTrial", b.probation.Load())
	}
	cancel()
	<-done

	// abortTrial must hand the slot back: Wait, not a stuck Trial.
	deadline := time.Now().Add(2 * time.Second)
	for b.probation.Load() != probationWait {
		if time.Now().After(deadline) {
			t.Fatalf("probation = %d after clientGone trial, want probationWait", b.probation.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b.deaths.Load() != 2 {
		t.Fatalf("deaths = %d; the aborted trial must not be charged to the backend", b.deaths.Load())
	}

	// And the machinery still works: the aborted trial recorded no
	// failure, so once the original trip ages out the slot is claimable
	// by the next probe.
	time.Sleep(150 * time.Millisecond)
	if !b.probe() {
		t.Fatal("trial slot not claimable after abortTrial")
	}
	b.release()
	b.abortTrial()
}

// TestFailRingStormRace hammers the failRing's documented benign
// overwrite races (concurrent record vs record and record vs atLeast)
// together with probe/fail/recover/eject from many goroutines. Its
// value is under -race: the "benign" claim is only benign if the race
// detector agrees the accesses are synchronized atomics.
func TestFailRingStormRace(t *testing.T) {
	b := newBackend("http://127.0.0.1:1", "b0", 0, 64, 1024, 4, 50*time.Millisecond, time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (g + i) % 5 {
				case 0:
					if b.probe() {
						b.release()
					}
				case 1:
					b.fail()
				case 2:
					b.recover()
				case 3:
					b.Broken()
				case 4:
					b.eject()
				}
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Invariant, not crash-freedom alone: the gauge never leaks inflight.
	if inf := b.Inflight(); inf != 0 {
		t.Fatalf("inflight = %d after the storm, want 0", inf)
	}
}
