package capwatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// /debug/watch and the capwatch_* exposition. The handler follows
// /debug/trace's merge convention exactly: one sampler serves a single
// Report object; a router that also owns its spawned backends' samplers
// serves a JSON array, its own report first, so one URL yields the
// whole fleet's telemetry. DecodeReports reads either shape, so captop
// and the smoke scripts don't care which they hit.

// Handler serves GET /debug/watch?window= over the given samplers.
// The window parameter is a Go duration ("30s", "5m"); absent means
// DefaultWindow.
func Handler(samplers ...*Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var window time.Duration
		if v := req.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				http.Error(w, "bad window: want a positive Go duration like 30s", http.StatusBadRequest)
				return
			}
			window = d
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if len(samplers) == 1 {
			enc.Encode(samplers[0].Report(window))
			return
		}
		reps := make([]Report, 0, len(samplers))
		for _, s := range samplers {
			reps = append(reps, s.Report(window))
		}
		enc.Encode(reps)
	})
}

// DecodeReports parses a /debug/watch response body in either shape —
// a single Report object or an array — always returning a slice.
func DecodeReports(data []byte) ([]Report, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("capwatch: empty watch response")
	}
	if trimmed[0] == '[' {
		var reps []Report
		if err := json.Unmarshal(trimmed, &reps); err != nil {
			return nil, fmt.Errorf("capwatch: decoding watch array: %w", err)
		}
		return reps, nil
	}
	var rep Report
	if err := json.Unmarshal(trimmed, &rep); err != nil {
		return nil, fmt.Errorf("capwatch: decoding watch report: %w", err)
	}
	return []Report{rep}, nil
}

// EncodeReports is DecodeReports' inverse for tooling output: it always
// writes the array shape, so captop -json consumers see one schema
// regardless of whether the polled endpoint was a lone capserve or a
// fleet-merging router.
func EncodeReports(reps []Report) ([]byte, error) {
	return json.MarshalIndent(reps, "", "  ")
}

// WriteMetrics emits the sampler's capwatch_* series — the burn rates
// and window aggregates as scrapeable gauges. Wire it into a server's
// exposition with (*capserve.Server).AddMetrics or
// (*capcluster.Router).AddMetrics. The burn windows are evaluated at
// scrape time against the ring, so a scrape costs two window walks and
// no locks beyond the sampler's read-lock.
func (s *Sampler) WriteMetrics(w io.Writer) {
	slo := s.evalSLO()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP capwatch_samples_total Snapshots taken since the sampler was built.\n# TYPE capwatch_samples_total counter\ncapwatch_samples_total %d\n", s.cursor.Load())
	gauge("capwatch_ring_slots", "Snapshot ring capacity.", float64(len(s.ring)))
	gauge("capwatch_interval_seconds", "Sampling tick interval.", s.interval.Seconds())
	gauge("capwatch_slo_target_p99_seconds", "Latency objective the p99 must stay under.", float64(s.slo.TargetP99)/1e9)
	gauge("capwatch_slo_availability_objective", "Success-ratio objective.", s.slo.Availability)

	fmt.Fprintf(w, "# HELP capwatch_slo_burn_rate Error-budget burn rate by window and objective (1 = on pace to exhaust).\n# TYPE capwatch_slo_burn_rate gauge\n")
	for _, wv := range []struct {
		name string
		w    SLOWindow
	}{{"fast", slo.Fast}, {"slow", slo.Slow}} {
		fmt.Fprintf(w, "capwatch_slo_burn_rate{window=%q,slo=\"availability\"} %g\n", wv.name, wv.w.AvailabilityBurn)
		fmt.Fprintf(w, "capwatch_slo_burn_rate{window=%q,slo=\"latency\"} %g\n", wv.name, wv.w.LatencyBurn)
	}
	exhausted := 0.0
	if slo.Exhausted {
		exhausted = 1
	}
	gauge("capwatch_slo_budget_exhausted", "1 while both burn windows are at or above 1.", exhausted)

	fmt.Fprintf(w, "# HELP capwatch_window_p99_seconds Histogram-delta p99 over each burn window.\n# TYPE capwatch_window_p99_seconds gauge\n")
	fmt.Fprintf(w, "capwatch_window_p99_seconds{window=\"fast\"} %g\n", slo.Fast.P99MS/1e3)
	fmt.Fprintf(w, "capwatch_window_p99_seconds{window=\"slow\"} %g\n", slo.Slow.P99MS/1e3)
	fmt.Fprintf(w, "# HELP capwatch_window_availability Success ratio over each burn window.\n# TYPE capwatch_window_availability gauge\n")
	fmt.Fprintf(w, "capwatch_window_availability{window=\"fast\"} %g\n", slo.Fast.Availability)
	fmt.Fprintf(w, "capwatch_window_availability{window=\"slow\"} %g\n", slo.Slow.Availability)

	// Go runtime health from the newest snapshot (zero before the
	// first tick).
	var g GoStats
	if samples := s.Snapshot(1); len(samples) == 1 {
		g = samples[0].Go
	}
	gauge("capwatch_go_goroutines", "Goroutine count at the last tick.", float64(g.Goroutines))
	gauge("capwatch_go_heap_live_bytes", "Live heap at the last tick.", float64(g.HeapLiveBytes))
	gauge("capwatch_go_gc_pause_p99_seconds", "GC pause p99 (since process start) at the last tick.", g.GCPauseP99NS/1e9)
	gauge("capwatch_go_sched_latency_p99_seconds", "Scheduler latency p99 (since process start) at the last tick.", g.SchedLatP99NS/1e9)
}
