// Package capwatch is the continuous-telemetry leg of the repo's
// observability story: where /metrics is a point-in-time scrape and
// captrace is per-request, capwatch keeps *history* — a fixed-size ring
// of periodic snapshots over every tier's counters, rolled up on demand
// into rates, windowed latency quantiles and SLO error-budget burn.
// It is the signal plane the ROADMAP's SLO-driven adaptive admission
// item needs: a controller cannot act on point-in-time counters, it
// needs p99-over-the-last-5-minutes and budget burn, and those require
// exactly this ring.
//
// The design is McKenney's statistical-counter discipline, third
// application in this repo (pool shards in PR 5, trace rings in PR 6):
// the write side — every probe, divide, request, dispatch — only ever
// touches its own per-shard or per-endpoint atomic counters and never
// knows the sampler exists; the sampler is a *reader* of those
// counters that pays the full aggregation cost itself, once a second,
// on its own goroutine. Arming a sampler therefore costs the
// probe/divide hot path nothing (the watch_overhead benchmark pairs
// hold the probe paths to ≤2%), and a tick is allocation-free after the first
// one warms the runtime/metrics buffers.
//
// Ring protocol: one writer (the tick loop), slots overwritten in claim
// order, a single atomic cursor bump publishing each snapshot. Readers
// (the /debug/watch handler, /metrics) take a read-lock that only the
// once-a-second writer ever holds exclusively — the lock serializes
// sampler readers against slot reuse, never the serving hot path.
package capwatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capcluster"
	"repro/internal/capserve"
	"repro/internal/capsule"
)

// DefaultInterval is the sampling tick.
const DefaultInterval = time.Second

// Ring sizing limits. The default ring is auto-sized so the SLO's slow
// window fits in retained history with slack; maxRing caps the memory
// an extreme interval/window combination could demand (a slot is a
// couple of KB — 16384 slots is tens of MB, past which an operator
// should lengthen the interval instead).
const (
	minRing = 64
	maxRing = 16384
)

// Config parameterises a Sampler. Runtime is required; Server and
// Router widen the snapshot to the serving and cluster tiers.
type Config struct {
	// Source names this sampler's reports, so merged /debug/watch
	// responses (router + spawned backends) stay attributable.
	// Default: "capwatch".
	Source string

	// Interval is the sampling tick. Default: DefaultInterval.
	Interval time.Duration

	// Ring is the snapshot ring's slot count, rounded up to a power of
	// two. Default (0): sized so the SLO slow window fits (clamped to
	// [minRing, maxRing]).
	Ring int

	// Runtime is the capsule runtime to sample. Required.
	Runtime *capsule.Runtime

	// Server, when set, adds queue occupancy and per-endpoint serving
	// counters (requests, sheds, latency buckets) to each snapshot.
	Server *capserve.Server

	// Router, when set, adds the cluster tier: per-backend credit
	// gauges, breaker state, dispatch latencies and the fallback-tier
	// counters.
	Router *capcluster.Router

	// SLO configures the burn-rate evaluator (zero fields take
	// defaults; see SLOConfig).
	SLO SLOConfig
}

// Validate reports whether cfg can build a Sampler.
func (cfg Config) Validate() error {
	if cfg.Runtime == nil {
		return fmt.Errorf("capwatch: Config.Runtime is required")
	}
	if cfg.Interval < 0 {
		return fmt.Errorf("capwatch: Interval must be >= 0 (0 means %v), got %v", DefaultInterval, cfg.Interval)
	}
	if cfg.Ring < 0 {
		return fmt.Errorf("capwatch: Ring must be >= 0 (0 means auto), got %d", cfg.Ring)
	}
	return cfg.SLO.validate()
}

// Sample is one snapshot: every tier's cumulative counters plus the
// instantaneous gauges, stamped once per tick. Slices are preallocated
// per ring slot and rewritten in place, so a tick allocates nothing.
type Sample struct {
	// TS is the snapshot time (UnixNano).
	TS int64 `json:"ts"`

	// Capsule tier.
	Capsule      capsule.Stats           `json:"capsule"`
	FreeContexts int                     `json:"free_contexts"`
	Shards       []capsule.ShardCounters `json:"shards,omitempty"`

	// Serving tier (zero unless Config.Server was set).
	QueueDepth     int                         `json:"queue_depth"`
	QueueOccupancy int                         `json:"queue_occupancy"`
	Endpoints      []capserve.EndpointCounters `json:"endpoints,omitempty"`

	// Cluster tier (zero unless Config.Router was set).
	Router   capcluster.RouterCounters    `json:"router"`
	Backends []capcluster.BackendCounters `json:"backends,omitempty"`

	// Go runtime health.
	Go GoStats `json:"go"`
}

// Sampler owns the snapshot ring. Build with New, arm with Start, read
// with Report / Snapshot / the Handler it backs.
type Sampler struct {
	cfg      Config
	source   string
	interval time.Duration
	slo      SLOConfig

	workloads    []string
	backendNames []string
	bounds       []float64 // latency bucket bounds, seconds

	// mu serializes ring readers against slot reuse: the tick holds it
	// exclusively for the microseconds one collect takes, once per
	// interval; readers share it. Nothing on the probe/divide or
	// request path ever touches it.
	mu     sync.RWMutex
	ring   []Sample
	mask   uint64
	cursor atomic.Uint64 // snapshots published; next claim

	rm rmReader // preallocated runtime/metrics buffers

	// hook is the capscope attachment point: a copy-on-write function
	// pointer run after every published snapshot, outside the ring lock.
	// Disarmed cost is one nil atomic load per tick — the hot paths
	// never see it at all (the tick goroutine pays it).
	hook atomic.Pointer[func()]

	// incidents supplies the capscope_incidents_total count for
	// Report/WriteMetrics; nil until a recorder registers itself.
	incidents atomic.Pointer[func() uint64]

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
}

// New builds a Sampler from cfg. The ring and every slot's slices are
// allocated here, up front, so SampleNow never allocates.
func New(cfg Config) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sampler{
		cfg:      cfg,
		source:   cfg.Source,
		interval: cfg.Interval,
		slo:      cfg.SLO.withDefaults(),
		bounds:   capserve.LatencyBucketBounds(),
		stop:     make(chan struct{}),
	}
	if s.source == "" {
		s.source = "capwatch"
	}
	if s.interval == 0 {
		s.interval = DefaultInterval
	}
	nshards := cfg.Runtime.ReadShardCounters(nil)
	if cfg.Server != nil {
		s.workloads = cfg.Server.Workloads()
	}
	if cfg.Router != nil {
		s.backendNames = cfg.Router.BackendNames()
	}

	size := cfg.Ring
	if size == 0 {
		// Auto-size: the slow SLO window plus slack must stay resident,
		// or the evaluator would silently judge a shorter period.
		size = int(s.slo.SlowWindow/s.interval) + 2
	}
	size = clampPow2(size)
	s.ring = make([]Sample, size)
	s.mask = uint64(size - 1)
	for i := range s.ring {
		s.ring[i].Shards = make([]capsule.ShardCounters, nshards)
		if len(s.workloads) > 0 {
			s.ring[i].Endpoints = make([]capserve.EndpointCounters, len(s.workloads))
		}
		if len(s.backendNames) > 0 {
			s.ring[i].Backends = make([]capcluster.BackendCounters, len(s.backendNames))
		}
	}
	s.rm.init()
	return s, nil
}

// clampPow2 rounds n up to a power of two inside [minRing, maxRing].
func clampPow2(n int) int {
	if n < minRing {
		n = minRing
	}
	if n > maxRing {
		n = maxRing
	}
	p := minRing
	for p < n {
		p <<= 1
	}
	return p
}

// Source returns the sampler's report label.
func (s *Sampler) Source() string { return s.source }

// Interval returns the sampling tick.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Samples returns the number of snapshots taken since construction
// (not capped at the ring size).
func (s *Sampler) Samples() uint64 { return s.cursor.Load() }

// RingSize returns the ring's slot count.
func (s *Sampler) RingSize() int { return len(s.ring) }

// Start arms the sampler: a goroutine takes one snapshot immediately
// and then one per interval until Stop. Idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() { go s.loop() })
}

// Stop halts the tick goroutine. The ring stays readable. Idempotent.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

func (s *Sampler) loop() {
	s.SampleNow() // an armed sampler is never empty
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.SampleNow()
		}
	}
}

// SampleNow takes one snapshot immediately: collect into the next ring
// slot under the write lock, publish with one cursor bump. The tick
// loop calls it; tests and on-demand callers may too (the lock
// serializes concurrent writers). Allocation-free after the first call
// warms the runtime/metrics buffers.
func (s *Sampler) SampleNow() {
	s.mu.Lock()
	c := s.cursor.Load()
	s.collect(&s.ring[c&s.mask])
	s.cursor.Store(c + 1)
	s.mu.Unlock()
	// The hook runs after the unlock: it reads the ring back through
	// Report/SLO, which take the read lock.
	if f := s.hook.Load(); f != nil {
		(*f)()
	}
}

// OnSample installs f to run on the sampling goroutine after each
// published snapshot (nil uninstalls). Copy-on-write: the disarmed
// check in SampleNow is a single atomic pointer load. f may read the
// ring (Report, SLO, Snapshot) but must not call SampleNow.
func (s *Sampler) OnSample(f func()) {
	if f == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&f)
}

// SetIncidents registers a supplier for the incident count carried in
// Report.Incidents and the capwatch exposition (capscope wires its
// recorder's counter here so captop can show an `inc` column without a
// second fetch).
func (s *Sampler) SetIncidents(f func() uint64) {
	if f == nil {
		s.incidents.Store(nil)
		return
	}
	s.incidents.Store(&f)
}

// SLO evaluates the burn-rate objectives against the ring right now.
// This is the same evaluator /debug/watch embeds in every Report,
// exported so trigger logic (capscope) can poll it per tick.
func (s *Sampler) SLO() SLOReport { return s.evalSLO() }

// collect fills one slot in place. Every read here is an atomic load
// against counters the hot paths own — the whole aggregation cost of
// the McKenney split, paid on this side.
func (s *Sampler) collect(slot *Sample) {
	slot.TS = time.Now().UnixNano()
	slot.Capsule = s.cfg.Runtime.Stats()
	slot.FreeContexts = s.cfg.Runtime.FreeContexts()
	s.cfg.Runtime.ReadShardCounters(slot.Shards)
	if srv := s.cfg.Server; srv != nil {
		slot.QueueDepth = srv.QueueDepth()
		slot.QueueOccupancy = srv.QueueOccupancy()
		srv.ReadEndpointCounters(slot.Endpoints)
	}
	if rt := s.cfg.Router; rt != nil {
		slot.Router = rt.ReadCounters()
		rt.ReadBackendCounters(slot.Backends)
	}
	s.rm.read(&slot.Go)
}

// Snapshot deep-copies the newest n snapshots (0 or more than
// resident: all resident), oldest first. The copies share nothing with
// the ring, so callers may hold them across ticks.
func (s *Sampler) Snapshot(n int) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur := s.cursor.Load()
	resident := cur
	if resident > uint64(len(s.ring)) {
		resident = uint64(len(s.ring))
	}
	if n <= 0 || uint64(n) > resident {
		n = int(resident)
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		claim := cur - uint64(n-i)
		cloneSample(&out[i], &s.ring[claim&s.mask])
	}
	return out
}

// window locates the newest snapshot and the oldest one still inside
// the requested window, deep-copied; n is the snapshot count spanned
// (inclusive). ok is false while the ring is empty.
func (s *Sampler) window(d time.Duration) (from, to Sample, n int, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur := s.cursor.Load()
	if cur == 0 {
		return Sample{}, Sample{}, 0, false
	}
	newest := cur - 1
	cloneSample(&to, &s.ring[newest&s.mask])
	cutoff := to.TS - d.Nanoseconds()
	oldest := newest
	lowest := uint64(0)
	if cur > uint64(len(s.ring)) {
		lowest = cur - uint64(len(s.ring))
	}
	for oldest > lowest && s.ring[(oldest-1)&s.mask].TS >= cutoff {
		oldest--
	}
	cloneSample(&from, &s.ring[oldest&s.mask])
	return from, to, int(newest-oldest) + 1, true
}

// cloneSample copies src into dst with fresh slice backing, sized to
// src (dst is reused across reads where possible).
func cloneSample(dst *Sample, src *Sample) {
	shards, eps, bks := dst.Shards, dst.Endpoints, dst.Backends
	*dst = *src
	if cap(shards) < len(src.Shards) {
		shards = make([]capsule.ShardCounters, len(src.Shards))
	}
	dst.Shards = shards[:len(src.Shards)]
	copy(dst.Shards, src.Shards)
	if cap(eps) < len(src.Endpoints) {
		eps = make([]capserve.EndpointCounters, len(src.Endpoints))
	}
	dst.Endpoints = eps[:len(src.Endpoints)]
	copy(dst.Endpoints, src.Endpoints)
	if cap(bks) < len(src.Backends) {
		bks = make([]capcluster.BackendCounters, len(src.Backends))
	}
	dst.Backends = bks[:len(src.Backends)]
	copy(dst.Backends, src.Backends)
}
