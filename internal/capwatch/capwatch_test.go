package capwatch

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capsule"
)

func newRuntime(t *testing.T, contexts int) *capsule.Runtime {
	t.Helper()
	rt, err := capsule.NewValidated(capsule.Config{Contexts: contexts, Throttle: true})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil Runtime")
	}
	rt := newRuntime(t, 2)
	if _, err := New(Config{Runtime: rt, Interval: -time.Second}); err == nil {
		t.Fatal("New accepted a negative interval")
	}
	if _, err := New(Config{Runtime: rt, SLO: SLOConfig{Availability: 1.5}}); err == nil {
		t.Fatal("New accepted Availability > 1")
	}
	if _, err := New(Config{Runtime: rt, SLO: SLOConfig{FastWindow: time.Hour, SlowWindow: time.Minute}}); err == nil {
		t.Fatal("New accepted fast window > slow window")
	}
}

func TestRingAutoSize(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{
		Runtime:  rt,
		Interval: time.Second,
		SLO:      SLOConfig{FastWindow: 5 * time.Minute, SlowWindow: time.Hour},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 3600 samples must be resident for the slow window to be judged.
	if s.RingSize() < 3600 {
		t.Fatalf("auto ring %d cannot hold the 1h slow window at a 1s tick", s.RingSize())
	}
	if s.RingSize() > maxRing {
		t.Fatalf("auto ring %d exceeds maxRing", s.RingSize())
	}
}

// TestRingWraparound storms SampleNow past several full ring
// revolutions while concurrent readers snapshot and roll up — the
// -race proof that slot reuse and reader copies cannot tear. The
// snapshots must always be time-ordered and bounded by the ring size.
func TestRingWraparound(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Ring: minRing, Interval: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const revolutions = 4
	total := revolutions * s.RingSize()

	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				samples := s.Snapshot(0)
				if len(samples) > s.RingSize() {
					t.Errorf("Snapshot returned %d > ring %d", len(samples), s.RingSize())
					return
				}
				for i := 1; i < len(samples); i++ {
					if samples[i].TS < samples[i-1].TS {
						t.Errorf("snapshot %d out of order: %d < %d", i, samples[i].TS, samples[i-1].TS)
						return
					}
				}
				_ = s.Report(time.Second)
			}
		}()
	}
	for i := 0; i < total; i++ {
		s.SampleNow()
	}
	done.Store(true)
	wg.Wait()

	if got := s.Samples(); got != uint64(total) {
		t.Fatalf("Samples() = %d, want %d", got, total)
	}
	if got := len(s.Snapshot(0)); got != s.RingSize() {
		t.Fatalf("after wraparound Snapshot(0) returned %d, want full ring %d", got, s.RingSize())
	}
}

// TestDeltaMonotonicity checks the paper's accounting invariant
// survives sampling: across any pair of consecutive snapshots taken
// during a live probe storm, counter deltas are non-negative and
// Probes ≤ Granted + NoCtxDenies + ThrottleDenies.
func TestDeltaMonotonicity(t *testing.T) {
	rt := newRuntime(t, 4)
	s, err := New(Config{Runtime: rt, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if c, ok := rt.Probe(); ok {
					rt.Release(c)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s.SampleNow()
	}
	done.Store(true)
	wg.Wait()

	samples := s.Snapshot(0)
	if len(samples) < 2 {
		t.Fatalf("want >= 2 samples, got %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		d := samples[i].Capsule.Delta(samples[i-1].Capsule)
		outcomes := d.Granted + d.NoCtxDenies + d.ThrottleDenies
		if d.Probes > outcomes {
			t.Fatalf("sample %d: Probes %d > outcomes %d (invariant broken across sampled delta)", i, d.Probes, outcomes)
		}
		// uint64 wraparound would make any of these astronomically large.
		const sane = uint64(1) << 60
		if d.Probes > sane || d.Granted > sane || d.NoCtxDenies > sane || d.ThrottleDenies > sane {
			t.Fatalf("sample %d: negative delta wrapped: %+v", i, d)
		}
	}
}

// TestSampleNowAllocs is the zero-alloc tick contract: after the first
// call warms the runtime/metrics buffers, a snapshot performs no
// allocations.
func TestSampleNowAllocs(t *testing.T) {
	rt := newRuntime(t, 4)
	s, err := New(Config{Runtime: rt, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SampleNow() // warmup
	if n := testing.AllocsPerRun(100, s.SampleNow); n != 0 {
		t.Fatalf("SampleNow allocates %v per tick, want 0", n)
	}
}

func TestStartStop(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Ring: minRing, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Samples() < 3 {
		t.Fatalf("armed sampler took %d samples in 2s, want >= 3", s.Samples())
	}
	s.Stop()
	s.Stop() // idempotent
	n := s.Samples()
	time.Sleep(20 * time.Millisecond)
	if got := s.Samples(); got != n {
		t.Fatalf("sampler still ticking after Stop: %d -> %d", n, got)
	}
}

func TestReportEmptyRing(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Report(0)
	if rep.WindowSamples != 0 || rep.Samples != 0 {
		t.Fatalf("empty ring report claims samples: %+v", rep)
	}
	if rep.Rates.Availability != 1 || rep.SLO.Fast.Availability != 1 {
		t.Fatalf("empty ring must report availability 1, got %g / %g",
			rep.Rates.Availability, rep.SLO.Fast.Availability)
	}
	if rep.SLO.BurnRate != 0 || rep.SLO.Exhausted {
		t.Fatalf("empty ring must not burn budget: %+v", rep.SLO)
	}
}

func TestHandlerShapes(t *testing.T) {
	rt := newRuntime(t, 2)
	a, _ := New(Config{Runtime: rt, Ring: minRing, Source: "a"})
	b, _ := New(Config{Runtime: rt, Ring: minRing, Source: "b"})
	a.SampleNow()
	b.SampleNow()

	// Single sampler: an object.
	rec := httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watch?window=10s", nil))
	var obj Report
	if err := json.Unmarshal(rec.Body.Bytes(), &obj); err != nil {
		t.Fatalf("single-sampler body is not one Report: %v", err)
	}
	if obj.Source != "a" || obj.WindowS != 10 {
		t.Fatalf("report = source %q window %g, want a/10", obj.Source, obj.WindowS)
	}

	// Two samplers: an array, order preserved.
	rec = httptest.NewRecorder()
	Handler(a, b).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watch", nil))
	reps, err := DecodeReports(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeReports: %v", err)
	}
	if len(reps) != 2 || reps[0].Source != "a" || reps[1].Source != "b" {
		t.Fatalf("merged reports = %+v, want [a b]", reps)
	}

	// DecodeReports accepts the single-object shape too.
	single, err := DecodeReports([]byte(`{"source":"x"}`))
	if err != nil || len(single) != 1 || single[0].Source != "x" {
		t.Fatalf("DecodeReports(object) = %v, %v", single, err)
	}

	// Bad window: 400.
	rec = httptest.NewRecorder()
	Handler(a).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watch?window=yes", nil))
	if rec.Code != 400 {
		t.Fatalf("bad window returned %d, want 400", rec.Code)
	}
}

func TestWriteMetrics(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SampleNow()
	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"capwatch_samples_total 1",
		`capwatch_slo_burn_rate{window="fast",slo="availability"}`,
		`capwatch_slo_burn_rate{window="slow",slo="latency"}`,
		"capwatch_slo_budget_exhausted 0",
		"capwatch_go_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestZeroWidthWindowClamp is the regression test for sub-tick rollup
// windows: two snapshots taken microseconds apart used to divide the
// counter deltas by the near-zero elapsed span, inflating rates toward
// Inf. Rates must now divide by at least one tick, with the effective
// divisor surfaced as window_clamped_s.
func TestZeroWidthWindowClamp(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Interval: time.Second, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SampleNow()
	const probes = 100
	for i := 0; i < probes; i++ {
		if c, ok := rt.Probe(); ok {
			rt.Release(c)
		}
	}
	s.SampleNow() // microseconds after the first

	// A ?window= smaller than one tick must clamp, not divide by ~0.
	rep := s.Report(time.Millisecond)
	if rep.WindowClampedS < s.Interval().Seconds() {
		t.Fatalf("window_clamped_s = %g, want >= the %gs tick", rep.WindowClampedS, s.Interval().Seconds())
	}
	if rep.Rates.ProbesPerSec > probes+1 {
		t.Fatalf("probes_per_s = %g for %d probes over a clamped 1s window — the divisor was not clamped", rep.Rates.ProbesPerSec, probes)
	}
	// The delta reconstructs exactly from the effective divisor.
	if got := rep.Rates.ProbesPerSec * rep.WindowClampedS; got < probes-1 || got > probes+1 {
		t.Fatalf("rate %g x clamp %g = %g, want ~%d", rep.Rates.ProbesPerSec, rep.WindowClampedS, got, probes)
	}
	for name, v := range map[string]float64{
		"probes_per_s":   rep.Rates.ProbesPerSec,
		"grants_per_s":   rep.Rates.GrantsPerSec,
		"requests_per_s": rep.Rates.RequestsPerSec,
		"errors_per_s":   rep.Rates.ErrorsPerSec,
	} {
		if !finite(v) || v < 0 {
			t.Fatalf("%s = %g not finite/non-negative under a zero-width window", name, v)
		}
	}

	// A window wider than the covered span but >= one tick is honest:
	// no clamp marker.
	wide := s.Report(time.Minute)
	if wide.WindowClampedS != 0 && wide.WindowActualS >= s.Interval().Seconds() {
		t.Fatalf("wide window marked clamped: %+v", wide.WindowClampedS)
	}
}

// TestOnSampleHook pins the capscope attachment point: the hook runs
// once per published snapshot, outside the ring lock (it can read the
// ring back), and uninstalls cleanly.
func TestOnSampleHook(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var calls atomic.Int32
	s.OnSample(func() {
		calls.Add(1)
		// Reading the ring from the hook must not deadlock.
		if slo := s.SLO(); slo.TargetP99MS <= 0 {
			t.Errorf("SLO from hook: %+v", slo)
		}
		_ = s.Report(0)
	})
	s.SampleNow()
	s.SampleNow()
	if got := calls.Load(); got != 2 {
		t.Fatalf("hook ran %d times for 2 snapshots", got)
	}
	s.OnSample(nil)
	s.SampleNow()
	if got := calls.Load(); got != 2 {
		t.Fatalf("uninstalled hook still ran (%d calls)", got)
	}
}

// TestIncidentsPlumbing: a registered supplier shows up in Report and
// survives round-tripping through the handler shapes.
func TestIncidentsPlumbing(t *testing.T) {
	rt := newRuntime(t, 2)
	s, err := New(Config{Runtime: rt, Ring: minRing})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SampleNow()
	if got := s.Report(0).Incidents; got != 0 {
		t.Fatalf("unregistered incidents = %d", got)
	}
	s.SetIncidents(func() uint64 { return 7 })
	if got := s.Report(0).Incidents; got != 7 {
		t.Fatalf("incidents = %d, want 7", got)
	}
	rec := httptest.NewRecorder()
	Handler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watch", nil))
	reps, err := DecodeReports(rec.Body.Bytes())
	if err != nil || len(reps) != 1 {
		t.Fatalf("decode: %v", err)
	}
	if reps[0].Incidents != 7 {
		t.Fatalf("handler incidents = %d, want 7", reps[0].Incidents)
	}
	s.SetIncidents(nil)
	if got := s.Report(0).Incidents; got != 0 {
		t.Fatalf("unregistered again, incidents = %d", got)
	}
}
