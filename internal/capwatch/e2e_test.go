package capwatch

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/capcluster"
	"repro/internal/capserve"
	"repro/internal/capsule"
)

// TestRouterWatchCoversFleet is the E2E contract the -spawn topology
// relies on: one GET against the router's /debug/watch returns the
// router's report plus one per spawned backend — every backend
// attributable by source, every report carrying a finite burn rate,
// and (after traffic) a per-backend p99.
func TestRouterWatchCoversFleet(t *testing.T) {
	const nBackends = 3

	var backends []*capserve.Backend
	var urls []string
	samplers := make([]*Sampler, 0, nBackends+1)
	for i := 0; i < nBackends; i++ {
		rt, err := capsule.NewValidated(capsule.Config{Contexts: 2, Throttle: true})
		if err != nil {
			t.Fatalf("backend %d runtime: %v", i, err)
		}
		b, err := capserve.StartBackend(capserve.Config{Runtime: rt})
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			b.Close(ctx)
			rt.Close()
		})
		backends = append(backends, b)
		urls = append(urls, b.URL)
	}

	localRT, err := capsule.NewValidated(capsule.Config{Contexts: 2, Throttle: true})
	if err != nil {
		t.Fatalf("local runtime: %v", err)
	}
	t.Cleanup(localRT.Close)
	local, err := capserve.New(capserve.Config{Runtime: localRT})
	if err != nil {
		t.Fatalf("local server: %v", err)
	}
	router, err := capcluster.New(capcluster.Config{Backends: urls, Local: local})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	router.Refresh()

	// One sampler per backend, named by the backend's host:port — the
	// same label the router's per-backend gauges use, so captop can
	// join the two views — plus the router's own.
	for i, b := range backends {
		u, err := url.Parse(b.URL)
		if err != nil {
			t.Fatalf("backend %d URL: %v", i, err)
		}
		s, err := New(Config{
			Source:  u.Host,
			Runtime: b.Server.Runtime(),
			Server:  b.Server,
			Ring:    minRing,
		})
		if err != nil {
			t.Fatalf("backend %d sampler: %v", i, err)
		}
		samplers = append(samplers, s)
	}
	routerSampler, err := New(Config{
		Source:  "caprouter",
		Runtime: localRT,
		Server:  local,
		Router:  router,
		Ring:    minRing,
	})
	if err != nil {
		t.Fatalf("router sampler: %v", err)
	}
	all := append([]*Sampler{routerSampler}, samplers...)

	// Baseline tick, traffic, closing tick: the watch window needs a
	// delta to roll up.
	for _, s := range all {
		s.SampleNow()
	}
	front := httptest.NewServer(router)
	defer front.Close()
	for i := 0; i < 60; i++ {
		resp, err := http.Get(front.URL + "/run/quicksort?n=500&seed=1")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	for _, s := range all {
		s.SampleNow()
	}

	// The merged endpoint, as cmd/caprouter mounts it.
	rec := httptest.NewRecorder()
	Handler(all...).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watch?window=1m", nil))
	reps, err := DecodeReports(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeReports: %v", err)
	}
	if len(reps) != nBackends+1 {
		t.Fatalf("router watch returned %d reports, want %d (router + every spawned backend)", len(reps), nBackends+1)
	}
	if reps[0].Source != "caprouter" || reps[0].Tier != "router" {
		t.Fatalf("first report = %s/%s, want the router's own", reps[0].Source, reps[0].Tier)
	}

	// Every backend must be covered, by the same host:port name the
	// router's backend table uses.
	sources := map[string]Report{}
	for _, r := range reps {
		sources[r.Source] = r
	}
	routerBackends := map[string]bool{}
	for _, br := range reps[0].Backends {
		routerBackends[br.Name] = true
	}
	var totalBackendReqs float64
	for i, b := range backends {
		u, _ := url.Parse(b.URL)
		rep, ok := sources[u.Host]
		if !ok {
			t.Fatalf("backend %d (%s) missing from router watch; sources: %v", i, u.Host, keys(sources))
		}
		if rep.Tier != "server" {
			t.Fatalf("backend %s tier = %q", u.Host, rep.Tier)
		}
		if !finite(rep.SLO.BurnRate) || !finite(rep.SLO.Fast.Burn) || !finite(rep.SLO.Slow.Burn) {
			t.Fatalf("backend %s burn rates not finite: %+v", u.Host, rep.SLO)
		}
		if !routerBackends[u.Host] {
			t.Fatalf("router report's backend table missing %s: %+v", u.Host, reps[0].Backends)
		}
		// Rates divide by at least one tick (WindowClampedS), so the
		// delta reconstructs from the effective divisor, not the raw
		// sub-tick span between the two manual snapshots above.
		eff := rep.WindowActualS
		if rep.WindowClampedS > 0 {
			eff = rep.WindowClampedS
		}
		totalBackendReqs += rep.Rates.RequestsPerSec * eff
	}
	// The fleet served the traffic (least-loaded placement spreads 60
	// requests over 3 idle backends; all of it lands remotely).
	if totalBackendReqs < 50 {
		t.Fatalf("backend reports account for %.0f requests, want most of 60", totalBackendReqs)
	}
	// Traffic happened, so the merged distribution has a p99.
	if reps[0].Latency.Count == 0 || reps[0].Latency.P99MS <= 0 {
		t.Fatalf("router latency rollup empty after traffic: %+v", reps[0].Latency)
	}
	for _, br := range reps[0].Backends {
		if br.DispatchesPerSec > 0 && br.P99MS <= 0 {
			t.Fatalf("backend %s dispatched but reports no p99: %+v", br.Name, br)
		}
	}
}

func finite(f float64) bool { return f == f && f < 1e308 && f > -1e308 }

func keys(m map[string]Report) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWatchOnServerMux exercises the Mount + AddMetrics wiring end to
// end on a standalone capserve: /debug/watch serves the report and
// /metrics carries the capwatch_* series next to the server's own.
func TestWatchOnServerMux(t *testing.T) {
	rt, err := capsule.NewValidated(capsule.Config{Contexts: 2, Throttle: true})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	t.Cleanup(rt.Close)
	srv, err := capserve.New(capserve.Config{Runtime: rt})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	s, err := New(Config{Runtime: rt, Server: srv, Ring: minRing})
	if err != nil {
		t.Fatalf("sampler: %v", err)
	}
	srv.Mount("GET /debug/watch", Handler(s))
	srv.AddMetrics(s.WriteMetrics)
	s.SampleNow()

	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := get(t, ts.URL+"/debug/watch?window=30s")
	reps, err := DecodeReports(body)
	if err != nil || len(reps) != 1 {
		t.Fatalf("watch on server mux: %v, %v", reps, err)
	}
	metrics := string(get(t, ts.URL+"/metrics"))
	for _, want := range []string{"capwatch_slo_burn_rate", "capserve_build_info{", "capsule_probes_total"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}
