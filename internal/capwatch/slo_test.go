package capwatch

import (
	"math"
	"testing"
	"time"

	"repro/internal/capcluster"
	"repro/internal/capserve"
)

// Fixtures below are hand-computed against the repo's latency bucket
// table (100µs–5s log-spaced, +Inf last): bucket index 6 has upper
// bound 10ms, index 9 has 100ms, index 10 has 250ms.

func testBounds() []float64 { return capserve.LatencyBucketBounds() }

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestBurnRatesFixture(t *testing.T) {
	cfg := SLOConfig{Availability: 0.99}.withDefaults()

	// 1000 valid requests, 20 server errors: error ratio 0.02 against a
	// 0.01 budget = burn 2. 3% over the latency target against the p99's
	// 1% allowance = burn 3.
	availBurn, latBurn := burnRates(cfg, 1000, 20, 0.03)
	if !almost(availBurn, 2) || !almost(latBurn, 3) {
		t.Fatalf("burnRates = %g, %g, want 2, 3", availBurn, latBurn)
	}

	// Zero traffic burns nothing.
	availBurn, latBurn = burnRates(cfg, 0, 0, 0.5)
	if availBurn != 0 || latBurn != 0 {
		t.Fatalf("idle burnRates = %g, %g, want 0, 0", availBurn, latBurn)
	}

	// Total outage: every request an error = burn 1/budget.
	availBurn, _ = burnRates(cfg, 100, 100, 0)
	if !almost(availBurn, 100) {
		t.Fatalf("outage availBurn = %g, want 100", availBurn)
	}
}

func TestSLOWindowServerFixture(t *testing.T) {
	cfg := SLOConfig{
		TargetP99:    100 * time.Millisecond,
		Availability: 0.99,
	}.withDefaults()

	// One endpoint, window delta: 900 OK + 100 server errors = 1000
	// valid requests, availability 0.9 → availability burn
	// 0.1/0.01 = 10. Latency: 950 observations in the 10ms bucket, 50
	// in the 250ms bucket → 5% over the 100ms target → latency burn
	// 0.05/0.01 = 5. p99: rank 990 lands 80% into the 100–250ms bucket
	// → 220ms.
	from := Sample{TS: 0, Endpoints: make([]capserve.EndpointCounters, 1)}
	to := Sample{TS: 10 * int64(time.Second), Endpoints: make([]capserve.EndpointCounters, 1)}
	to.Endpoints[0].OK = 900
	to.Endpoints[0].ServerErrs = 100
	to.Endpoints[0].LatencyBuckets[6] = 950
	to.Endpoints[0].LatencyBuckets[10] = 50

	w := sloWindow(cfg, testBounds(), &from, &to, false, 10*time.Second)
	if w.ActualS != 10 {
		t.Fatalf("ActualS = %g, want 10", w.ActualS)
	}
	if w.Requests != 1000 || !almost(w.Availability, 0.9) {
		t.Fatalf("requests/availability = %g/%g, want 1000/0.9", w.Requests, w.Availability)
	}
	if !almost(w.AvailabilityBurn, 10) {
		t.Fatalf("AvailabilityBurn = %g, want 10", w.AvailabilityBurn)
	}
	if !almost(w.FracOverTarget, 0.05) || !almost(w.LatencyBurn, 5) {
		t.Fatalf("FracOverTarget/LatencyBurn = %g/%g, want 0.05/5", w.FracOverTarget, w.LatencyBurn)
	}
	if !almost(w.P99MS, 220) {
		t.Fatalf("P99MS = %g, want 220", w.P99MS)
	}
	if !almost(w.Burn, 10) {
		t.Fatalf("Burn = %g, want max(10,5) = 10", w.Burn)
	}
}

func TestSLOWindowRouterFixture(t *testing.T) {
	cfg := SLOConfig{Availability: 0.99}.withDefaults()

	// Router accounting: 1000 received, 10 client hangups → 990 valid;
	// 950 served across the tiers → 40 errors. Availability
	// 1 − 40/990; burn = (40/990)/0.01.
	from := Sample{TS: 0}
	to := Sample{TS: 5 * int64(time.Second)}
	to.Router = capcluster.RouterCounters{
		Requests:       1000,
		ClientGone:     10,
		TierRemote:     900,
		TierLocal:      30,
		TierSequential: 20,
	}
	w := sloWindow(cfg, testBounds(), &from, &to, true, 5*time.Second)
	if w.Requests != 990 {
		t.Fatalf("Requests = %g, want 990", w.Requests)
	}
	wantAvail := 1 - 40.0/990
	if !almost(w.Availability, wantAvail) {
		t.Fatalf("Availability = %g, want %g", w.Availability, wantAvail)
	}
	wantBurn := (40.0 / 990) / 0.01
	if !almost(w.AvailabilityBurn, wantBurn) {
		t.Fatalf("AvailabilityBurn = %g, want %g", w.AvailabilityBurn, wantBurn)
	}
}

func TestSLOWindowIdle(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	from := Sample{TS: 0}
	to := Sample{TS: int64(time.Second)}
	w := sloWindow(cfg, testBounds(), &from, &to, false, time.Second)
	if w.Availability != 1 || w.Burn != 0 || w.P99MS != 0 {
		t.Fatalf("idle window = %+v, want availability 1, burn 0", w)
	}
}

func TestSLODefaultsClamp(t *testing.T) {
	c := SLOConfig{Availability: 0.999999}.withDefaults()
	if c.Availability > 0.9999 {
		t.Fatalf("Availability %g not clamped; burn rates would overflow", c.Availability)
	}
	c = SLOConfig{}.withDefaults()
	if c.TargetP99 != DefaultTargetP99 || c.Availability != DefaultAvailability ||
		c.FastWindow != DefaultFastWindow || c.SlowWindow != DefaultSlowWindow {
		t.Fatalf("defaults = %+v", c)
	}
}
