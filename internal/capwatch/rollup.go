package capwatch

import (
	"time"

	"repro/internal/buildinfo"
	"repro/internal/capcluster"
	"repro/internal/capserve"
	"repro/internal/capsule"
	"repro/internal/promtext"
)

// Windowed rollups: a Report is the difference of two ring snapshots
// turned into what an operator (or the future admission controller)
// actually asks — rates of change, windowed grant rate and
// availability, histogram-delta latency quantiles, and the SLO burn
// verdict. All division happens here, on the read path; the ring only
// ever stores raw cumulative counters.

// DefaultWindow is the rollup window when a /debug/watch request names
// none.
const DefaultWindow = time.Minute

// Report is the JSON document /debug/watch serves and captop renders.
type Report struct {
	Source string         `json:"source"`
	Tier   string         `json:"tier"` // "server" or "router"
	Build  buildinfo.Info `json:"build"`

	NowUnixMS int64   `json:"now_unix_ms"`
	IntervalS float64 `json:"interval_s"`
	RingSlots int     `json:"ring_slots"`
	Samples   uint64  `json:"samples"` // taken since construction

	WindowS       float64 `json:"window_s"`        // requested
	WindowActualS float64 `json:"window_actual_s"` // covered by resident samples
	WindowSamples int     `json:"window_samples"`

	// WindowClampedS is set (to the effective divisor, seconds) when the
	// requested window or the actual covered span was narrower than one
	// sampling tick: rates are divided by at least one tick so that two
	// near-simultaneous snapshots can't inflate deltas into Inf.
	WindowClampedS float64 `json:"window_clamped_s,omitempty"`

	// Incidents is the capscope bundle count since process start (0
	// unless an incident recorder registered via SetIncidents).
	Incidents uint64 `json:"incidents"`

	// Instantaneous gauges (newest sample).
	FreeContexts   int     `json:"free_contexts"`
	QueueDepth     int     `json:"queue_depth"`
	QueueOccupancy int     `json:"queue_occupancy"`
	Go             GoStats `json:"go"`

	Rates   RateReport `json:"rates"`
	Latency Quantiles  `json:"latency"`

	Endpoints []EndpointReport `json:"endpoints,omitempty"`
	Shards    []ShardReport    `json:"shards,omitempty"`
	Backends  []BackendReport  `json:"backends,omitempty"`
	Router    *RouterReport    `json:"router,omitempty"`

	SLO SLOReport `json:"slo"`
}

// RateReport is the windowed rate-of-change block.
type RateReport struct {
	ProbesPerSec float64 `json:"probes_per_s"`
	GrantsPerSec float64 `json:"grants_per_s"`
	GrantRate    float64 `json:"grant_rate"` // windowed "% divisions allowed"
	DeniesPerSec float64 `json:"denies_per_s"`
	DeathsPerSec float64 `json:"deaths_per_s"`

	RequestsPerSec float64 `json:"requests_per_s"` // valid request completions
	ErrorsPerSec   float64 `json:"errors_per_s"`   // server faults
	DegradedPerSec float64 `json:"degraded_per_s"`
	Availability   float64 `json:"availability"` // windowed; 1 with no traffic

	LocalHitRate float64 `json:"local_hit_rate"` // grants served by the prober's home shard
	StealsPerSec float64 `json:"steals_per_s"`
}

// Quantiles is a histogram-delta latency summary in milliseconds.
type Quantiles struct {
	Count float64 `json:"count"` // observations in window
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// EndpointReport is one workload's windowed serving rates.
type EndpointReport struct {
	Workload       string  `json:"workload"`
	RequestsPerSec float64 `json:"requests_per_s"`
	ErrorsPerSec   float64 `json:"errors_per_s"`
	DegradedPerSec float64 `json:"degraded_per_s"`
	P99MS          float64 `json:"p99_ms"`
}

// ShardReport is one pool shard's windowed behaviour.
type ShardReport struct {
	Shard            int     `json:"shard"`
	LocalHitsPerSec  float64 `json:"local_hits_per_s"`
	StealsPerSec     float64 `json:"steals_per_s"`
	FullSweepsPerSec float64 `json:"full_sweeps_per_s"`
	Free             int     `json:"free"`
}

// BackendReport is one backend's gauges and windowed dispatch rates as
// the router sees them.
type BackendReport struct {
	Name             string  `json:"name"`
	Credits          int     `json:"credits"`
	Inflight         int     `json:"inflight"`
	Broken           bool    `json:"broken"`
	DispatchesPerSec float64 `json:"dispatches_per_s"`
	ServedPerSec     float64 `json:"served_per_s"`
	ShedsPerSec      float64 `json:"sheds_per_s"`
	DeathsPerSec     float64 `json:"deaths_per_s"`
	P99MS            float64 `json:"p99_ms"` // dispatch latency
}

// RouterReport is the cluster tier's windowed request accounting.
type RouterReport struct {
	RequestsPerSec       float64 `json:"requests_per_s"`
	RemoteGrantRate      float64 `json:"remote_grant_rate"`
	FallbackRate         float64 `json:"fallback_rate"`
	TierRemotePerSec     float64 `json:"tier_remote_per_s"`
	TierLocalPerSec      float64 `json:"tier_local_per_s"`
	TierSequentialPerSec float64 `json:"tier_sequential_per_s"`
	ClientGonePerSec     float64 `json:"client_gone_per_s"`
}

// Report rolls the ring up over the trailing window (0: DefaultWindow).
// The SLO block always judges its own configured fast/slow windows,
// independent of the rollup window asked for here.
func (s *Sampler) Report(window time.Duration) Report {
	if window <= 0 {
		window = DefaultWindow
	}
	// A window narrower than one tick cannot span two distinct
	// snapshots; widen it so the rollup judges at least one interval.
	clamped := false
	if window < s.interval {
		window = s.interval
		clamped = true
	}
	tier := "server"
	if s.cfg.Router != nil {
		tier = "router"
	}
	rep := Report{
		Source:    s.source,
		Tier:      tier,
		Build:     buildinfo.Get(),
		NowUnixMS: time.Now().UnixMilli(),
		IntervalS: s.interval.Seconds(),
		RingSlots: len(s.ring),
		Samples:   s.cursor.Load(),
		WindowS:   window.Seconds(),
		SLO:       s.evalSLO(),
	}
	if f := s.incidents.Load(); f != nil {
		rep.Incidents = (*f)()
	}
	from, to, n, ok := s.window(window)
	if !ok {
		rep.Rates.Availability = 1
		return rep
	}
	rep.WindowSamples = n
	rep.WindowActualS = float64(to.TS-from.TS) / 1e9
	rep.FreeContexts = to.FreeContexts
	rep.QueueDepth = to.QueueDepth
	rep.QueueOccupancy = to.QueueOccupancy
	rep.Go = to.Go

	// Rates divide by at least one tick: back-to-back SampleNow calls
	// (tests, on-demand pokes) land snapshots microseconds apart, and a
	// raw delta/elapsed would explode toward Inf.
	sec := rep.WindowActualS
	if minSec := s.interval.Seconds(); sec < minSec {
		sec = minSec
		clamped = true
	}
	if clamped {
		rep.WindowClampedS = sec
	}
	rate := func(delta uint64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(delta) / sec
	}

	// Capsule tier: Stats.Delta keeps the Probes ≤ outcomes invariant
	// across the subtraction (both snapshots were taken with the
	// outcome-first ordering Stats documents).
	d := to.Capsule.Delta(from.Capsule)
	rep.Rates.ProbesPerSec = rate(d.Probes)
	rep.Rates.GrantsPerSec = rate(d.Granted)
	rep.Rates.GrantRate = d.GrantRate()
	rep.Rates.DeniesPerSec = rate(d.NoCtxDenies + d.ThrottleDenies)
	rep.Rates.DeathsPerSec = rate(d.Deaths)

	requests, errors := trafficTotals(&from, &to, s.cfg.Router != nil)
	if sec > 0 {
		rep.Rates.RequestsPerSec = requests / sec
		rep.Rates.ErrorsPerSec = errors / sec
	}
	rep.Rates.Availability = 1
	if requests > 0 {
		rep.Rates.Availability = 1 - errors/requests
	}

	// Shards.
	var localHits, steals uint64
	rep.Shards = make([]ShardReport, len(to.Shards))
	for i := range to.Shards {
		ts := to.Shards[i]
		var fs capsule.ShardCounters
		if i < len(from.Shards) {
			fs = from.Shards[i]
		}
		lh := ts.LocalHits - fs.LocalHits
		st := ts.Steals - fs.Steals
		localHits += lh
		steals += st
		rep.Shards[i] = ShardReport{
			Shard:            i,
			LocalHitsPerSec:  rate(lh),
			StealsPerSec:     rate(st),
			FullSweepsPerSec: rate(ts.FullSweeps - fs.FullSweeps),
			Free:             ts.Free,
		}
	}
	rep.Rates.StealsPerSec = rate(steals)
	if localHits+steals > 0 {
		rep.Rates.LocalHitRate = float64(localHits) / float64(localHits+steals)
	}

	// Serving tier.
	var degraded uint64
	for i := range to.Endpoints {
		te := &to.Endpoints[i]
		var fe capserve.EndpointCounters
		if i < len(from.Endpoints) {
			fe = from.Endpoints[i]
		}
		dOK := te.OK - fe.OK
		dErr := te.ServerErrs - fe.ServerErrs
		dDeg := te.Degraded - fe.Degraded
		degraded += dDeg
		er := EndpointReport{
			RequestsPerSec: rate(dOK + dErr),
			ErrorsPerSec:   rate(dErr),
			DegradedPerSec: rate(dDeg),
		}
		if i < len(s.workloads) {
			er.Workload = s.workloads[i]
		}
		before := bucketCum(fe.LatencyBuckets[:])
		after := bucketCum(te.LatencyBuckets[:])
		if p99, ok := promtext.DeltaQuantile(s.bounds, before, after, 0.99); ok {
			er.P99MS = p99 * 1e3
		}
		rep.Endpoints = append(rep.Endpoints, er)
	}
	rep.Rates.DegradedPerSec = rate(degraded)

	// Whole-tier latency quantiles from the merged distribution.
	before := latencyCum(&from)
	after := latencyCum(&to)
	rep.Latency.Count = after[len(after)-1] - before[len(before)-1]
	if p, ok := promtext.DeltaQuantile(s.bounds, before, after, 0.50); ok {
		rep.Latency.P50MS = p * 1e3
	}
	if p, ok := promtext.DeltaQuantile(s.bounds, before, after, 0.95); ok {
		rep.Latency.P95MS = p * 1e3
	}
	if p, ok := promtext.DeltaQuantile(s.bounds, before, after, 0.99); ok {
		rep.Latency.P99MS = p * 1e3
	}

	// Cluster tier.
	if s.cfg.Router != nil {
		fr, tr := from.Router, to.Router
		rr := &RouterReport{
			RequestsPerSec:       rate(tr.Requests - fr.Requests),
			TierRemotePerSec:     rate(tr.TierRemote - fr.TierRemote),
			TierLocalPerSec:      rate(tr.TierLocal - fr.TierLocal),
			TierSequentialPerSec: rate(tr.TierSequential - fr.TierSequential),
			ClientGonePerSec:     rate(tr.ClientGone - fr.ClientGone),
		}
		if probes := tr.RemoteProbes - fr.RemoteProbes; probes > 0 {
			rr.RemoteGrantRate = float64(tr.RemoteGrants-fr.RemoteGrants) / float64(probes)
		}
		if reqs := tr.Requests - fr.Requests; reqs > 0 {
			rr.FallbackRate = float64(tr.LocalFallbacks-fr.LocalFallbacks) / float64(reqs)
		}
		rep.Router = rr

		for i := range to.Backends {
			tb := &to.Backends[i]
			var fb capcluster.BackendCounters
			if i < len(from.Backends) {
				fb = from.Backends[i]
			}
			br := BackendReport{
				Credits:          tb.Credits,
				Inflight:         tb.Inflight,
				Broken:           tb.Broken,
				DispatchesPerSec: rate(tb.Dispatches - fb.Dispatches),
				ServedPerSec:     rate(tb.Served - fb.Served),
				ShedsPerSec:      rate(tb.Sheds - fb.Sheds),
				DeathsPerSec:     rate(tb.Deaths - fb.Deaths),
			}
			if i < len(s.backendNames) {
				br.Name = s.backendNames[i]
			}
			bBefore := bucketCum(fb.DispatchBuckets[:])
			bAfter := bucketCum(tb.DispatchBuckets[:])
			if p99, ok := promtext.DeltaQuantile(s.bounds, bBefore, bAfter, 0.99); ok {
				br.P99MS = p99 * 1e3
			}
			rep.Backends = append(rep.Backends, br)
		}
	}
	return rep
}

// bucketCum cumulates a density bucket array into the []float64 shape
// the promtext delta helpers take.
func bucketCum(density []uint64) []float64 {
	cum := make([]float64, len(density))
	var run float64
	for i, c := range density {
		run += float64(c)
		cum[i] = run
	}
	return cum
}
