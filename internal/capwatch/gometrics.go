package capwatch

import (
	"math"
	"runtime/metrics"
)

// Go runtime health via runtime/metrics, the sampler's fourth signal
// source: a division storm that looks fine from the capsule counters
// can still be drowning the scheduler or the GC, and those pathologies
// show up here first (sched latencies climb before queue occupancy
// does — the workers are runnable but not running).

// GoStats is the runtime slice of one snapshot. The p99s are computed
// from the runtime's *cumulative* since-process-start histograms at
// collect time — scalar per tick, because the runtime's bucket tables
// run to hundreds of entries and storing them per slot would dominate
// the ring. They move slowly by construction; treat them as health
// gauges, not windowed quantiles.
type GoStats struct {
	Goroutines    int64   `json:"goroutines"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseP99NS  float64 `json:"gc_pause_p99_ns"`
	SchedLatP99NS float64 `json:"sched_lat_p99_ns"`
}

// Indices into rmReader.samples; keep in step with rmNames.
const (
	rmGCPauses = iota
	rmSchedLat
	rmGoroutines
	rmHeapLive
	rmGCCycles
)

var rmNames = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/sched/goroutines:goroutines",
	"/gc/heap/live:bytes",
	"/gc/cycles/total:gc-cycles",
}

// rmReader owns the preallocated metrics.Sample buffer. metrics.Read
// reuses a Float64Histogram already present in a sample's Value, so
// after the first read (which allocates the bucket tables) every
// subsequent read is allocation-free — the property the sampler's
// zero-alloc tick contract rests on, asserted by TestSampleNowAllocs.
type rmReader struct {
	samples []metrics.Sample
}

func (r *rmReader) init() {
	r.samples = make([]metrics.Sample, len(rmNames))
	for i, n := range rmNames {
		r.samples[i].Name = n
	}
	metrics.Read(r.samples) // warm the histogram buffers
}

func (r *rmReader) read(dst *GoStats) {
	metrics.Read(r.samples)
	dst.Goroutines = int64(r.samples[rmGoroutines].Value.Uint64())
	dst.HeapLiveBytes = r.samples[rmHeapLive].Value.Uint64()
	dst.GCCycles = r.samples[rmGCCycles].Value.Uint64()
	dst.GCPauseP99NS = histQuantileNS(r.samples[rmGCPauses].Value.Float64Histogram(), 0.99)
	dst.SchedLatP99NS = histQuantileNS(r.samples[rmSchedLat].Value.Float64Histogram(), 0.99)
}

// histQuantileNS estimates the q-quantile of a runtime histogram in
// nanoseconds (the runtime reports seconds). The estimate is the upper
// bound of the bucket the rank lands in — conservative, like the
// promtext clamp — with ±Inf boundary buckets clamped to their finite
// neighbour.
func histQuantileNS(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, -1) {
				hi = 0
			}
			return hi * 1e9
		}
	}
	return h.Buckets[len(h.Buckets)-1] * 1e9
}
