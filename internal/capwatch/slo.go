package capwatch

import (
	"fmt"
	"time"

	"repro/internal/capserve"
	"repro/internal/promtext"
)

// SLO evaluation in the Google-SRE multi-window shape: an availability
// objective and a latency objective (a target the p99 must stay
// under), each tracked as *error-budget burn rate* — the ratio of the
// budget-spend rate inside a window to the rate that would exactly
// exhaust the budget. Burn 1.0 means "on pace to spend the whole
// budget"; a fast 5m window catches cliffs while a slow 1h window
// keeps one noisy minute from paging, and only both burning hot at
// once (Exhausted) is actionable. Windows scale down for tests and
// smoke runs (-slo-fast/-slo-slow flags).

// latencyBudget is the tolerated fraction of requests over the latency
// target: the target is a p99, so 1% may exceed it by definition.
const latencyBudget = 0.01

// SLO defaults.
const (
	DefaultTargetP99    = 150 * time.Millisecond
	DefaultAvailability = 0.99
	DefaultFastWindow   = 5 * time.Minute
	DefaultSlowWindow   = time.Hour
)

// SLOConfig states the objectives. Zero fields take the defaults.
type SLOConfig struct {
	// TargetP99 is the latency objective: at most 1% of requests in a
	// window may take longer.
	TargetP99 time.Duration

	// Availability is the success-ratio objective in (0, 1), e.g. 0.99
	// allows a 1% error budget. Values above 0.9999 are clamped: a
	// histogram-window evaluator cannot resolve tighter budgets, and an
	// infinite burn rate helps nobody.
	Availability float64

	// FastWindow and SlowWindow are the two burn windows.
	FastWindow, SlowWindow time.Duration
}

func (c SLOConfig) validate() error {
	if c.TargetP99 < 0 || c.FastWindow < 0 || c.SlowWindow < 0 {
		return fmt.Errorf("capwatch: SLO durations must be >= 0 (0 means default)")
	}
	if c.Availability < 0 || c.Availability >= 1 {
		if c.Availability != 0 {
			return fmt.Errorf("capwatch: SLO Availability must be in (0,1), got %g", c.Availability)
		}
	}
	if c.FastWindow != 0 && c.SlowWindow != 0 && c.FastWindow > c.SlowWindow {
		return fmt.Errorf("capwatch: SLO FastWindow %v exceeds SlowWindow %v", c.FastWindow, c.SlowWindow)
	}
	return nil
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.TargetP99 == 0 {
		c.TargetP99 = DefaultTargetP99
	}
	if c.Availability == 0 {
		c.Availability = DefaultAvailability
	}
	if c.Availability > 0.9999 {
		c.Availability = 0.9999
	}
	if c.Availability < 0.5 {
		c.Availability = 0.5
	}
	if c.FastWindow == 0 {
		c.FastWindow = DefaultFastWindow
	}
	if c.SlowWindow == 0 {
		c.SlowWindow = DefaultSlowWindow
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	return c
}

// SLOWindow is one window's verdict.
type SLOWindow struct {
	WindowS float64 `json:"window_s"` // requested
	ActualS float64 `json:"actual_s"` // covered by resident samples

	Requests     float64 `json:"requests"`     // valid (non-client-fault) requests in window
	Availability float64 `json:"availability"` // 1 when no traffic
	P99MS        float64 `json:"p99_ms"`       // 0 when no latency observations

	// FracOverTarget is the estimated fraction of requests slower than
	// TargetP99.
	FracOverTarget float64 `json:"frac_over_target"`

	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
	Burn             float64 `json:"burn"` // max of the two
}

// SLOReport is the evaluator's full output, embedded in every Report.
type SLOReport struct {
	TargetP99MS  float64   `json:"target_p99_ms"`
	Availability float64   `json:"availability_objective"`
	Fast         SLOWindow `json:"fast"`
	Slow         SLOWindow `json:"slow"`

	// BurnRate is the headline number (the fast window's burn): how
	// many budgets per budget-period the current behaviour spends.
	BurnRate float64 `json:"burn_rate"`

	// Exhausted is the page condition: both windows burning at >= 1.
	Exhausted bool `json:"exhausted"`
}

// evalSLO runs the evaluator against the ring's current contents.
func (s *Sampler) evalSLO() SLOReport {
	rep := SLOReport{
		TargetP99MS:  float64(s.slo.TargetP99) / 1e6,
		Availability: s.slo.Availability,
		Fast:         s.evalWindow(s.slo.FastWindow),
		Slow:         s.evalWindow(s.slo.SlowWindow),
	}
	rep.BurnRate = rep.Fast.Burn
	rep.Exhausted = rep.Fast.Burn >= 1 && rep.Slow.Burn >= 1
	return rep
}

func (s *Sampler) evalWindow(d time.Duration) SLOWindow {
	from, to, _, ok := s.window(d)
	if !ok {
		return SLOWindow{WindowS: d.Seconds(), Availability: 1}
	}
	return sloWindow(s.slo, s.bounds, &from, &to, s.cfg.Router != nil, d)
}

// sloWindow judges one window from a pair of snapshots. Pure — the
// fixture tests drive it with hand-built samples.
func sloWindow(cfg SLOConfig, bounds []float64, from, to *Sample, isRouter bool, want time.Duration) SLOWindow {
	w := SLOWindow{
		WindowS:      want.Seconds(),
		ActualS:      float64(to.TS-from.TS) / 1e9,
		Availability: 1,
	}
	requests, errors := trafficTotals(from, to, isRouter)
	w.Requests = requests
	if requests > 0 {
		w.Availability = 1 - errors/requests
	}
	before := latencyCum(from)
	after := latencyCum(to)
	if p99, ok := promtext.DeltaQuantile(bounds, before, after, 0.99); ok {
		w.P99MS = p99 * 1e3
	}
	if frac, ok := promtext.DeltaFractionAbove(bounds, before, after, cfg.TargetP99.Seconds()); ok {
		w.FracOverTarget = frac
	}
	w.AvailabilityBurn, w.LatencyBurn = burnRates(cfg, requests, errors, w.FracOverTarget)
	w.Burn = w.AvailabilityBurn
	if w.LatencyBurn > w.Burn {
		w.Burn = w.LatencyBurn
	}
	return w
}

// burnRates is the budget arithmetic, isolated for fixture tests:
// burn = (bad fraction in window) / (bad fraction the objective
// tolerates). Zero traffic burns nothing.
func burnRates(cfg SLOConfig, requests, errors, fracOver float64) (availBurn, latencyBurn float64) {
	if requests <= 0 {
		return 0, 0
	}
	availBurn = (errors / requests) / (1 - cfg.Availability)
	latencyBurn = fracOver / latencyBudget
	return availBurn, latencyBurn
}

// trafficTotals extracts the window's valid-request and server-error
// deltas. The denominator is *valid* requests — client faults (bad
// parameters, oversize n, hangups) spend no error budget, per the
// usual SLI discipline.
//
// A router's counters are request-scoped rather than response-coded:
// errors are the requests that failed every rung of the degradation
// ladder (received minus tier-served minus client hangups). Requests
// still in flight at snapshot time count as errors for one window —
// negligible against windows of seconds and bounded by the queue
// depth, but the reason sub-second smoke windows should drain before
// judging.
func trafficTotals(from, to *Sample, isRouter bool) (requests, errors float64) {
	if isRouter {
		dReq := float64(to.Router.Requests - from.Router.Requests)
		dGone := float64(to.Router.ClientGone - from.Router.ClientGone)
		served := float64((to.Router.TierRemote + to.Router.TierLocal + to.Router.TierSequential) -
			(from.Router.TierRemote + from.Router.TierLocal + from.Router.TierSequential))
		requests = dReq - dGone
		errors = requests - served
		if errors < 0 {
			errors = 0
		}
		return requests, errors
	}
	for i := range to.Endpoints {
		te := &to.Endpoints[i]
		var ok, serr uint64
		if i < len(from.Endpoints) {
			fe := &from.Endpoints[i]
			ok = te.OK - fe.OK
			serr = te.ServerErrs - fe.ServerErrs
		} else {
			ok, serr = te.OK, te.ServerErrs
		}
		requests += float64(ok + serr)
		errors += float64(serr)
	}
	return requests, errors
}

// latencyCum builds one sample's cumulative client-latency
// distribution: endpoint histograms summed, plus per-backend dispatch
// histograms for a router (remote-served requests never touch the
// local endpoints). Allocates — report path only.
func latencyCum(sm *Sample) []float64 {
	nb := capserve.NumLatencyBuckets
	cum := make([]float64, nb)
	var run float64
	for i := 0; i < nb; i++ {
		for j := range sm.Endpoints {
			run += float64(sm.Endpoints[j].LatencyBuckets[i])
		}
		for j := range sm.Backends {
			run += float64(sm.Backends[j].DispatchBuckets[i])
		}
		cum[i] = run
	}
	return cum
}
