package capfault

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustSet(t *testing.T, inj *Injector, r Rule) uint64 {
	t.Helper()
	id, err := inj.Set(r)
	if err != nil {
		t.Fatalf("Set(%+v): %v", r, err)
	}
	return id
}

// okHandler is the unfaulted backend every wrap test delegates to.
var okHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "hello from backend")
})

func TestDeterministicDecisions(t *testing.T) {
	run := func(seed uint64) []bool {
		inj := New(seed)
		id := mustSet(t, inj, Rule{Kind: KindError, P: 0.5})
		rules := *inj.rules.Load()
		var ar *armedRule
		for _, r := range rules {
			if r.id == id {
				ar = r
			}
		}
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = ar.fires(seed)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 64-decision streams")
	}
	fired := 0
	for _, ok := range a {
		if ok {
			fired++
		}
	}
	if fired < 16 || fired > 48 {
		t.Fatalf("P=0.5 fired %d/64 — hash badly skewed", fired)
	}
}

func TestDisarmedPassesThrough(t *testing.T) {
	inj := New(1)
	srv := httptest.NewServer(inj.Handler("b0", okHandler))
	defer srv.Close()
	client := &http.Client{Transport: inj.Transport(http.DefaultTransport)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("disarmed get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "hello from backend" {
		t.Fatalf("disarmed get = %d %q", resp.StatusCode, body)
	}
	if inj.Armed() {
		t.Fatalf("Armed() true with no rules")
	}
}

func TestDisarmedTransportAllocFree(t *testing.T) {
	inj := New(1)
	// Both sides go through an http.RoundTripper interface so escape
	// analysis treats them identically; the delta is the wrap's cost.
	var next http.RoundTripper = rtFunc(func(req *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: http.NoBody, Request: req}, nil
	})
	rt := inj.Transport(next)
	req := httptest.NewRequest("GET", "http://b0:1/x", nil)
	base := testing.AllocsPerRun(1000, func() {
		resp, _ := next.RoundTrip(req)
		resp.Body.Close()
	})
	wrapped := testing.AllocsPerRun(1000, func() {
		resp, _ := rt.RoundTrip(req)
		resp.Body.Close()
	})
	if wrapped > base {
		t.Fatalf("disarmed RoundTrip allocates %.1f/op vs %.1f unwrapped; want no extra", wrapped, base)
	}
}

type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestBackendScoping(t *testing.T) {
	inj := New(7)
	mustSet(t, inj, Rule{Kind: KindError, Backend: "victim:80"})
	rt := inj.Transport(rtFunc(func(req *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: http.NoBody, Request: req}, nil
	}))
	resp, err := rt.RoundTrip(httptest.NewRequest("GET", "http://victim:80/x", nil))
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("scoped rule on victim: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()
	resp, err = rt.RoundTrip(httptest.NewRequest("GET", "http://healthy:80/x", nil))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("scoped rule leaked to healthy backend: resp=%v err=%v", resp, err)
	}
}

func TestLatencyTransport(t *testing.T) {
	inj := New(3)
	mustSet(t, inj, Rule{Kind: KindLatency, Delay: 40 * time.Millisecond, Jitter: 20 * time.Millisecond})
	rt := inj.Transport(rtFunc(func(req *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: http.NoBody, Request: req}, nil
	}))
	start := time.Now()
	resp, err := rt.RoundTrip(httptest.NewRequest("GET", "http://b0:1/x", nil))
	if err != nil {
		t.Fatalf("latency roundtrip: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 40*time.Millisecond || d > 500*time.Millisecond {
		t.Fatalf("latency rule delayed %v; want [40ms, 60ms+slack]", d)
	}
}

func TestBlackholeHonorsContext(t *testing.T) {
	inj := New(3)
	mustSet(t, inj, Rule{Kind: KindBlackhole})
	dialed := false
	rt := inj.Transport(rtFunc(func(req *http.Request) (*http.Response, error) {
		dialed = true
		return nil, errors.New("should not dial")
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "http://b0:1/x", nil).WithContext(ctx)
	start := time.Now()
	_, err := rt.RoundTrip(req)
	if err == nil {
		t.Fatalf("blackhole returned a response")
	}
	if dialed {
		t.Fatalf("blackhole dialed the underlying transport")
	}
	var fe *faultErr
	if !errors.As(err, &fe) || !fe.Timeout() {
		t.Fatalf("blackhole error %v; want timeout-flagged faultErr", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("blackhole gave up after %v; should stall to the deadline", d)
	}
}

func TestResetAndDown(t *testing.T) {
	inj := New(3)
	id := mustSet(t, inj, Rule{Kind: KindReset})
	rt := inj.Transport(rtFunc(func(req *http.Request) (*http.Response, error) {
		t.Fatal("dialed through a reset rule")
		return nil, nil
	}))
	if _, err := rt.RoundTrip(httptest.NewRequest("GET", "http://b0:1/x", nil)); err == nil ||
		!strings.Contains(err.Error(), "reset") {
		t.Fatalf("reset rule: err=%v", err)
	}
	inj.Clear(id)
	mustSet(t, inj, Rule{Kind: KindDown})
	if _, err := rt.RoundTrip(httptest.NewRequest("GET", "http://b0:1/x", nil)); err == nil ||
		!strings.Contains(err.Error(), "down") {
		t.Fatalf("down rule: err=%v", err)
	}
}

func TestTrickleHandler(t *testing.T) {
	inj := New(3)
	mustSet(t, inj, Rule{Kind: KindTrickle, Chunk: 4, ChunkDelay: 5 * time.Millisecond})
	srv := httptest.NewServer(inj.Handler("b0", okHandler))
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("trickle get: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != "hello from backend" {
		t.Fatalf("trickle body = %q err=%v; body must arrive intact", body, err)
	}
	// 18 bytes at 4/chunk = 5 chunks × 5ms.
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("trickle served in %v; want >= 25ms of dribble", d)
	}
}

func TestErrorHandlerAndExpiry(t *testing.T) {
	inj := New(3)
	mustSet(t, inj, Rule{Kind: KindError, Status: 503, For: 80 * time.Millisecond})
	srv := httptest.NewServer(inj.Handler("b0", okHandler))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("error rule: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()
	time.Sleep(120 * time.Millisecond)
	resp, err = http.Get(srv.URL)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("expired rule still firing: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()
}

func TestResetHandlerTearsConnection(t *testing.T) {
	inj := New(3)
	mustSet(t, inj, Rule{Kind: KindReset})
	srv := httptest.NewServer(inj.Handler("b0", okHandler))
	defer srv.Close()
	_, err := http.Get(srv.URL)
	if err == nil {
		t.Fatalf("reset handler returned a clean response")
	}
}

func TestDebugHandlerRoundTrip(t *testing.T) {
	inj := New(99)
	srv := httptest.NewServer(inj.DebugHandler())
	defer srv.Close()

	post := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s = %d %s", body, resp.StatusCode, b)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}

	post(`{"kind":"latency","backend":"b1:80","delay_ms":100,"jitter_ms":50,"for_ms":60000}`)
	post(`{"kind":"trickle","chunk":2,"chunk_delay_ms":3}`)

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	var listing struct {
		Seed  uint64     `json:"seed"`
		Rules []wireInfo `json:"rules"`
	}
	json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if listing.Seed != 99 || len(listing.Rules) != 2 {
		t.Fatalf("listing = seed %d, %d rules; want 99, 2", listing.Seed, len(listing.Rules))
	}
	if listing.Rules[0].Kind != "latency" || listing.Rules[0].DelayMS != 100 || listing.Rules[0].Backend != "b1:80" {
		t.Fatalf("rule 0 round-tripped wrong: %+v", listing.Rules[0])
	}
	if listing.Rules[0].ExpiresInMS <= 0 || listing.Rules[0].ExpiresInMS > 60000 {
		t.Fatalf("rule 0 expires_in_ms = %d", listing.Rules[0].ExpiresInMS)
	}

	// Bad kind and bad JSON are rejected.
	for _, bad := range []string{`{"kind":"nope"}`, `{{{`} {
		r2, err := http.Post(srv.URL, "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST bad: %v", err)
		}
		r2.Body.Close()
		if r2.StatusCode != 400 {
			t.Fatalf("POST %s = %d; want 400", bad, r2.StatusCode)
		}
	}

	// DELETE one, then all.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"?id=1", nil)
	if r2, err := http.DefaultClient.Do(req); err != nil || r2.StatusCode != 204 {
		t.Fatalf("DELETE id=1: %v %v", r2, err)
	}
	if got := len(inj.Rules()); got != 1 {
		t.Fatalf("after DELETE id=1: %d rules; want 1", got)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL, nil)
	if r2, err := http.DefaultClient.Do(req); err != nil || r2.StatusCode != 204 {
		t.Fatalf("DELETE all: %v %v", r2, err)
	}
	if inj.Armed() {
		t.Fatalf("Armed() after DELETE all")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	inj := New(1)
	for _, r := range []Rule{
		{Kind: "bogus"},
		{Kind: KindError, P: 1.5},
		{Kind: KindError, Status: 200},
		{Kind: KindLatency, Delay: -time.Second},
		{Kind: KindTrickle, Chunk: -1},
	} {
		if _, err := inj.Set(r); err == nil {
			t.Fatalf("Set(%+v) accepted garbage", r)
		}
	}
	if inj.Armed() {
		t.Fatalf("rejected rules left the injector armed")
	}
}

// TestConcurrentSetClearStorm pins the copy-on-write rule set under
// -race: evaluations never block on or tear against Set/Clear.
func TestConcurrentSetClearStorm(t *testing.T) {
	inj := New(5)
	rt := inj.Transport(rtFunc(func(req *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: http.NoBody, Request: req}, nil
	}))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", "http://b0:1/x", nil)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := rt.RoundTrip(req)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		id := mustSet(t, inj, Rule{Kind: KindError, P: 0.1})
		mustSet(t, inj, Rule{Kind: KindLatency, Delay: time.Microsecond})
		inj.Clear(id)
		if i%10 == 0 {
			inj.ClearAll()
		}
	}
	close(stop)
	wg.Wait()
}
