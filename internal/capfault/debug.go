package capfault

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// wireRule is the JSON shape the debug API speaks: durations as integer
// milliseconds so curl scripts don't fight Go duration encoding.
//
//	POST /debug/fault {"kind":"latency","backend":"127.0.0.1:9001","delay_ms":200,"for_ms":5000}
//	GET  /debug/fault                      → {"seed":…,"rules":[…]}
//	DELETE /debug/fault?id=3               → clears rule 3
//	DELETE /debug/fault                    → clears everything
type wireRule struct {
	Kind         string  `json:"kind"`
	Backend      string  `json:"backend,omitempty"`
	P            float64 `json:"p,omitempty"`
	DelayMS      int64   `json:"delay_ms,omitempty"`
	JitterMS     int64   `json:"jitter_ms,omitempty"`
	Status       int     `json:"status,omitempty"`
	Chunk        int     `json:"chunk,omitempty"`
	ChunkDelayMS int64   `json:"chunk_delay_ms,omitempty"`
	ForMS        int64   `json:"for_ms,omitempty"`
}

type wireInfo struct {
	ID uint64 `json:"id"`
	wireRule
	ExpiresInMS int64  `json:"expires_in_ms,omitempty"`
	Decided     uint64 `json:"decided"`
	Fired       uint64 `json:"fired"`
}

func toWire(r Rule) wireRule {
	return wireRule{
		Kind:         string(r.Kind),
		Backend:      r.Backend,
		P:            r.P,
		DelayMS:      r.Delay.Milliseconds(),
		JitterMS:     r.Jitter.Milliseconds(),
		Status:       r.Status,
		Chunk:        r.Chunk,
		ChunkDelayMS: r.ChunkDelay.Milliseconds(),
		ForMS:        r.For.Milliseconds(),
	}
}

func fromWire(w wireRule) Rule {
	return Rule{
		Kind:       Kind(w.Kind),
		Backend:    w.Backend,
		P:          w.P,
		Delay:      time.Duration(w.DelayMS) * time.Millisecond,
		Jitter:     time.Duration(w.JitterMS) * time.Millisecond,
		Status:     w.Status,
		Chunk:      w.Chunk,
		ChunkDelay: time.Duration(w.ChunkDelayMS) * time.Millisecond,
		For:        time.Duration(w.ForMS) * time.Millisecond,
	}
}

// DebugHandler exposes the injector over HTTP for scripted storms.
// caprouter mounts it at /debug/fault on -debug-addr when -fault is
// set; it must never be mounted on a serving address.
func (inj *Injector) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			rules := inj.Rules()
			out := struct {
				Seed  uint64     `json:"seed"`
				Rules []wireInfo `json:"rules"`
			}{Seed: inj.seed, Rules: make([]wireInfo, 0, len(rules))}
			for _, ri := range rules {
				out.Rules = append(out.Rules, wireInfo{
					ID:          ri.ID,
					wireRule:    toWire(ri.Rule),
					ExpiresInMS: ri.ExpiresIn.Milliseconds(),
					Decided:     ri.Decided,
					Fired:       ri.Fired,
				})
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(out)
		case http.MethodPost:
			var spec wireRule
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				http.Error(w, "capfault: bad rule JSON: "+err.Error(), http.StatusBadRequest)
				return
			}
			id, err := inj.Set(fromWire(spec))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				ID uint64 `json:"id"`
			}{ID: id})
		case http.MethodDelete:
			if q := r.URL.Query().Get("id"); q != "" {
				id, err := strconv.ParseUint(q, 10, 64)
				if err != nil {
					http.Error(w, "capfault: bad id", http.StatusBadRequest)
					return
				}
				inj.Clear(id)
			} else {
				inj.ClearAll()
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, POST, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
