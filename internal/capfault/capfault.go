// Package capfault is the repo's deterministic fault-injection layer:
// the chaos counterpart of the probe/divide ladder's graceful-degradation
// claim. Every tier below promises that scarcity and failure degrade by
// local decision — refused probes run sequentially, dead backends
// circuit-break, stale credits self-correct — and capfault exists to make
// the *hard* failure modes reproducible enough to gate in CI: backends
// that are slow rather than dead, partitions that black-hole one
// router↔backend edge while everything else stays healthy, bodies that
// trickle a byte at a time, resets and 5xx bursts.
//
// Two wrap points cover both sides of the process boundary:
//
//   - Transport wraps any http.RoundTripper — the router side. Faults
//     fire before the dial (partition, down, error) or around the
//     response (latency, trickle), so a router under test exercises
//     exactly the code path a misbehaving network or peer would force;
//   - Handler wraps any http.Handler — the backend side, matching the
//     in-process capserve.Backend that caprouter -spawn boots. Faults
//     fire inside the serving process, so admission, draining and
//     header stamping all run before the fault lands.
//
// Faults are composable rules scoped by backend name, probability and a
// time window, togglable at runtime — programmatically via Set/Clear, or
// over HTTP via DebugHandler (mounted as /debug/fault on -debug-addr) so
// shell scripts and CI jobs can storm a live fleet.
//
// Determinism: every probabilistic decision (does rule r fire on its
// i-th evaluation? how much jitter?) is a pure function of (seed, rule
// id, i) via a splitmix64 mix — no global rand, no clock in the roll.
// Two runs that evaluate the same rules in the same per-rule order make
// identical decisions; concurrency can interleave *which* request gets
// decision i, but the decision stream itself is fixed by the seed.
//
// The disarmed path is the contract the serving tiers depend on: with no
// rules installed a wrapped transport or handler costs one atomic
// pointer load over its unwrapped twin — cheap enough to leave the wrap
// in place permanently, which is what makes scripted storms against live
// fleets possible. cmd/capstress measures the wrapped-but-inert path
// against the unwrapped one every run (the fault_overhead block in
// BENCH_capsule.json), and CI gates it within noise.
package capfault

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one fault behaviour.
type Kind string

// The fault taxonomy. Transport-side and handler-side wraps interpret
// each kind as the same failure observed from their side of the wire.
const (
	// KindLatency delays the request by Delay plus a deterministic
	// uniform jitter in [0, Jitter), then proceeds. Composable: a
	// latency rule and a terminal rule can both fire on one request.
	KindLatency Kind = "latency"
	// KindBlackhole accepts the request and stalls until the caller's
	// context deadline: the TCP-accepted-but-unanswered failure that a
	// shared client timeout turns into a whole-budget loss. On a
	// transport the dial never happens; on a handler the goroutine
	// parks until the client gives up.
	KindBlackhole Kind = "blackhole"
	// KindPartition is a directional router↔backend partition: the
	// transport behaves exactly like a black hole for the scoped
	// backend (packets vanish, no dial, stall to deadline) while every
	// other edge stays healthy. Transport-side only; a handler treats
	// it as blackhole.
	KindPartition Kind = "partition"
	// KindTrickle lets the request through but dribbles the response
	// body Chunk bytes per ChunkDelay: alive, 2xx, and far too slow —
	// the failure mode an error-only breaker never trips on.
	KindTrickle Kind = "trickle"
	// KindReset tears the connection down abruptly: a transport returns
	// a connection-reset error without dialing; a handler panics with
	// http.ErrAbortHandler so the server closes the socket mid-stream.
	KindReset Kind = "reset"
	// KindError answers with a Status (default 500) without doing the
	// work — the 5xx burst.
	KindError Kind = "error"
	// KindDown refuses instantly, like connect-to-closed-port: the fast
	// failure, used to script churn (a backend "leaves" while its rule
	// is active and "rejoins" when it clears).
	KindDown Kind = "down"
)

// MatchAll is the Backend scope that matches every backend.
const MatchAll = "*"

// Rule scopes: which traffic class consults a rule.
const (
	// ScopeRequest rules fire on Transport and Handler traffic — the
	// dispatch/serving path. The default.
	ScopeRequest = "request"
	// ScopeFeed rules fire on FeedTransport traffic — the credit-feed
	// subscriptions — including, for the terminal kinds, per-read on
	// streams that were already established when the rule was armed. The
	// split exists so a chaos script can cut the push plane while every
	// dispatch stays healthy: the fallback paths under test are only
	// reachable when the failure is *selective*.
	ScopeFeed = "feed"
)

// Rule is one fault: what fires (Kind and its parameters), where
// (Backend scope), how often (P) and for how long (For).
type Rule struct {
	// Kind selects the behaviour. Required.
	Kind Kind `json:"kind"`
	// Backend scopes the rule to one backend — the request URL's
	// host:port on a transport, the wrap's name on a handler — or every
	// backend with MatchAll. Default: MatchAll.
	Backend string `json:"backend,omitempty"`
	// Scope selects the traffic class: ScopeRequest (dispatch/serving,
	// via Transport and Handler) or ScopeFeed (credit-feed
	// subscriptions, via FeedTransport). Default: ScopeRequest.
	Scope string `json:"scope,omitempty"`
	// P is the per-evaluation probability the rule fires, in (0, 1].
	// Default (0): 1, always.
	P float64 `json:"p,omitempty"`
	// Delay and Jitter parameterise KindLatency: the fixed delay plus a
	// deterministic uniform jitter in [0, Jitter).
	Delay  time.Duration `json:"delay,omitempty"`
	Jitter time.Duration `json:"jitter,omitempty"`
	// Status is KindError's response code. Default (0): 500.
	Status int `json:"status,omitempty"`
	// Chunk and ChunkDelay parameterise KindTrickle: Chunk bytes
	// released per ChunkDelay. Defaults: 1 byte per 10ms.
	Chunk      int           `json:"chunk,omitempty"`
	ChunkDelay time.Duration `json:"chunk_delay,omitempty"`
	// For bounds the rule's lifetime from the moment it is Set; an
	// expired rule stops firing and is pruned lazily. Default (0):
	// active until cleared.
	For time.Duration `json:"for,omitempty"`
}

// validKinds guards Set and the debug API against typo'd kinds that
// would silently never fire.
var validKinds = map[Kind]bool{
	KindLatency: true, KindBlackhole: true, KindPartition: true,
	KindTrickle: true, KindReset: true, KindError: true, KindDown: true,
}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if !validKinds[r.Kind] {
		return fmt.Errorf("capfault: unknown kind %q", r.Kind)
	}
	if r.Scope != "" && r.Scope != ScopeRequest && r.Scope != ScopeFeed {
		return fmt.Errorf("capfault: unknown scope %q (want %q or %q)", r.Scope, ScopeRequest, ScopeFeed)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("capfault: P must be in [0,1], got %g", r.P)
	}
	if r.Delay < 0 || r.Jitter < 0 || r.ChunkDelay < 0 || r.For < 0 {
		return fmt.Errorf("capfault: durations must be >= 0")
	}
	if r.Chunk < 0 {
		return fmt.Errorf("capfault: Chunk must be >= 0, got %d", r.Chunk)
	}
	if r.Status != 0 && (r.Status < 500 || r.Status > 599) {
		return fmt.Errorf("capfault: Status must be a 5xx, got %d", r.Status)
	}
	return nil
}

// armedRule is a Rule installed in an Injector: identity for the
// deterministic roll, expiry deadline, and the per-rule decision
// counter.
type armedRule struct {
	Rule
	id       uint64
	untilNS  int64         // 0 = no expiry
	decided  atomic.Uint64 // decision index allocator
	fired    atomic.Uint64 // decisions where the rule actually fired
}

// Injector owns a rule set and mints wrapped transports and handlers
// that consult it. One Injector can back any number of wraps — the
// intended shape is one per process, shared by the router's dispatch
// transport and every spawned backend's handler, all scripted through
// one /debug/fault.
type Injector struct {
	seed uint64
	now  func() int64 // injectable for expiry tests

	mu     sync.Mutex // serializes Set/Clear; readers never take it
	nextID uint64
	rules  atomic.Pointer[[]*armedRule] // nil ⇔ disarmed fast path
}

// New builds an Injector whose probabilistic decisions are a pure
// function of seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, now: func() int64 { return time.Now().UnixNano() }}
}

// Set installs one rule and returns its id (for Clear). Rules are
// copy-on-write: installing never blocks in-flight evaluations.
func (inj *Injector) Set(r Rule) (uint64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if r.Backend == "" {
		r.Backend = MatchAll
	}
	if r.Scope == "" {
		r.Scope = ScopeRequest
	}
	if r.P == 0 {
		r.P = 1
	}
	if r.Kind == KindError && r.Status == 0 {
		r.Status = http.StatusInternalServerError
	}
	if r.Kind == KindTrickle {
		if r.Chunk == 0 {
			r.Chunk = 1
		}
		if r.ChunkDelay == 0 {
			r.ChunkDelay = 10 * time.Millisecond
		}
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.nextID++
	ar := &armedRule{Rule: r, id: inj.nextID}
	if r.For > 0 {
		ar.untilNS = inj.now() + r.For.Nanoseconds()
	}
	next := inj.liveLocked()
	next = append(next, ar)
	inj.rules.Store(&next)
	return ar.id, nil
}

// Clear removes one rule by id; a stale id is a no-op.
func (inj *Injector) Clear(id uint64) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	live := inj.liveLocked()
	next := live[:0:0]
	for _, ar := range live {
		if ar.id != id {
			next = append(next, ar)
		}
	}
	inj.storeLocked(next)
}

// ClearAll removes every rule, returning the injector to the disarmed
// fast path.
func (inj *Injector) ClearAll() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules.Store(nil)
}

// liveLocked snapshots the unexpired rules (pruning expired ones from
// the returned copy). Callers hold mu.
func (inj *Injector) liveLocked() []*armedRule {
	cur := inj.rules.Load()
	if cur == nil {
		return nil
	}
	now := inj.now()
	live := make([]*armedRule, 0, len(*cur))
	for _, ar := range *cur {
		if ar.untilNS == 0 || now <= ar.untilNS {
			live = append(live, ar)
		}
	}
	return live
}

func (inj *Injector) storeLocked(rules []*armedRule) {
	if len(rules) == 0 {
		inj.rules.Store(nil)
		return
	}
	inj.rules.Store(&rules)
}

// Armed reports whether any rule is installed (expired-but-unpruned
// rules count until the next Set/Clear prunes them; they no longer
// fire).
func (inj *Injector) Armed() bool { return inj.rules.Load() != nil }

// RuleInfo is one installed rule as the debug API reports it.
type RuleInfo struct {
	ID uint64 `json:"id"`
	Rule
	ExpiresIn time.Duration `json:"expires_in,omitempty"`
	Decided   uint64        `json:"decided"`
	Fired     uint64        `json:"fired"`
}

// Rules snapshots the installed, unexpired rules.
func (inj *Injector) Rules() []RuleInfo {
	inj.mu.Lock()
	live := inj.liveLocked()
	now := inj.now()
	inj.mu.Unlock()
	out := make([]RuleInfo, 0, len(live))
	for _, ar := range live {
		ri := RuleInfo{ID: ar.id, Rule: ar.Rule, Decided: ar.decided.Load(), Fired: ar.fired.Load()}
		if ar.untilNS != 0 {
			ri.ExpiresIn = time.Duration(ar.untilNS - now)
		}
		out = append(out, ri)
	}
	return out
}

// splitmix64's finalizer: the repo-standard cheap mixer (the capsule
// pool's shard hash uses the same construction).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll allocates the rule's next decision index and returns the
// deterministic 64-bit hash for it — the (seed, rule, i) pure function
// every probabilistic choice derives from.
func (ar *armedRule) roll(seed uint64) uint64 {
	i := ar.decided.Add(1) - 1
	return mix(seed ^ ar.id*0x9e3779b97f4a7c15 ^ i*0x2545f4914f6cdd1d)
}

// fires decides whether the rule fires this evaluation. Always consumes
// exactly one decision index, so the stream stays aligned across runs
// regardless of P.
func (ar *armedRule) fires(seed uint64) (h uint64, ok bool) {
	h = ar.roll(seed)
	if ar.P >= 1 || float64(h>>11)/(1<<53) < ar.P {
		ar.fired.Add(1)
		return h, true
	}
	return h, false
}

// jitterFrom maps the decision hash to the rule's latency: Delay plus a
// uniform jitter in [0, Jitter) drawn from a re-mix of the hash (so the
// fire decision and the jitter are independent bits).
func (ar *armedRule) jitterFrom(h uint64) time.Duration {
	d := ar.Delay
	if ar.Jitter > 0 {
		d += time.Duration(mix(h) % uint64(ar.Jitter))
	}
	return d
}

// active reports whether the rule's window is still open.
func (ar *armedRule) active(nowNS int64) bool {
	return ar.untilNS == 0 || nowNS <= ar.untilNS
}

// matching iterates the installed rules matching (scope, backend) and
// calls f for each that fires, stopping early when f returns false.
// Returns false only on the disarmed fast path, so callers can skip
// their per-request setup entirely.
func (inj *Injector) matching(scope, backend string, f func(*armedRule, uint64) bool) bool {
	rules := inj.rules.Load()
	if rules == nil {
		return false
	}
	now := inj.now()
	for _, ar := range *rules {
		if ar.Scope != scope {
			continue
		}
		if ar.Backend != MatchAll && ar.Backend != backend {
			continue
		}
		if !ar.active(now) {
			continue
		}
		if h, ok := ar.fires(inj.seed); ok {
			if !f(ar, h) {
				break
			}
		}
	}
	return true
}

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// faultErr is the transport-side injected failure, distinguishable in
// logs from organic transport errors.
type faultErr struct {
	kind Kind
	err  error
}

func (e *faultErr) Error() string {
	if e.err != nil {
		return fmt.Sprintf("capfault: injected %s: %v", e.kind, e.err)
	}
	return fmt.Sprintf("capfault: injected %s", e.kind)
}

func (e *faultErr) Unwrap() error { return e.err }

// Timeout marks blackhole/partition faults as timeouts, matching what a
// real stalled peer produces through net/http.
func (e *faultErr) Timeout() bool {
	return e.kind == KindBlackhole || e.kind == KindPartition
}

// slowReader dribbles an underlying reader chunk bytes per delay — the
// transport-side view of a trickling backend.
type slowReader struct {
	io.ReadCloser
	ctx   context.Context
	chunk int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if err := sleepCtx(s.ctx, s.delay); err != nil {
		return 0, err
	}
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.ReadCloser.Read(p)
}
