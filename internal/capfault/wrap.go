package capfault

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// Transport wraps next so requests consult the injector's
// request-scoped rules before (and around) the real round trip. The
// backend scope a rule matches is the request URL's Host (host:port) —
// the same identity capcluster names its backends by. Disarmed cost:
// one atomic pointer load.
func (inj *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{inj: inj, next: next, scope: ScopeRequest}
}

// FeedTransport wraps next for the credit-feed subscription client:
// only ScopeFeed rules are consulted, so the push plane can be
// blackholed, partitioned or reset without a single dispatch noticing.
// Unlike the request-scoped wrap, terminal rules armed *after* a stream
// is established still land — the response body re-checks the live rule
// set on every read (see feedBody) — because a subscription dials once
// and then lives for minutes: connect-time-only faults would miss
// exactly the streams a chaos script wants to cut.
func (inj *Injector) FeedTransport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{inj: inj, next: next, scope: ScopeFeed}
}

type transport struct {
	inj   *Injector
	next  http.RoundTripper
	scope string
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.roundTrip(req)
	if t.scope == ScopeFeed && err == nil {
		// Interpose on the stream even while disarmed: the wrap decision
		// happens at dial time, the chaos script arms rules mid-stream.
		resp.Body = &feedBody{
			ReadCloser: resp.Body,
			inj:        t.inj,
			ctx:        req.Context(),
			backend:    req.URL.Host,
		}
	}
	return resp, err
}

func (t *transport) roundTrip(req *http.Request) (*http.Response, error) {
	if t.inj.rules.Load() == nil {
		// Disarmed fast path: one pointer load, no closure, no allocs.
		return t.next.RoundTrip(req)
	}
	var trickle *armedRule
	var termErr error
	var synth *http.Response
	armed := t.inj.matching(t.scope, req.URL.Host, func(ar *armedRule, h uint64) bool {
		switch ar.Kind {
		case KindLatency:
			if err := sleepCtx(req.Context(), ar.jitterFrom(h)); err != nil {
				termErr = &faultErr{kind: ar.Kind, err: err}
				return false
			}
			return true
		case KindBlackhole, KindPartition:
			// Packets vanish: never dial, stall until the caller's
			// context gives up. This is the failure the per-attempt
			// deadline exists for.
			<-req.Context().Done()
			termErr = &faultErr{kind: ar.Kind, err: req.Context().Err()}
			return false
		case KindReset:
			termErr = &faultErr{kind: ar.Kind, err: syscall.ECONNRESET}
			return false
		case KindDown:
			termErr = &faultErr{kind: ar.Kind, err: syscall.ECONNREFUSED}
			return false
		case KindError:
			synth = &http.Response{
				Status:     fmt.Sprintf("%d %s", ar.Status, http.StatusText(ar.Status)),
				StatusCode: ar.Status,
				Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
				Header:  http.Header{"X-Capfault": []string{string(ar.Kind)}},
				Body:    io.NopCloser(strings.NewReader("capfault: injected error\n")),
				Request: req,
			}
			return false
		case KindTrickle:
			trickle = ar
			return true
		}
		return true
	})
	if !armed {
		return t.next.RoundTrip(req)
	}
	if termErr != nil {
		return nil, termErr
	}
	if synth != nil {
		return synth, nil
	}
	resp, err := t.next.RoundTrip(req)
	if err == nil && trickle != nil {
		resp.Body = &slowReader{
			ReadCloser: resp.Body,
			ctx:        req.Context(),
			chunk:      trickle.Chunk,
			delay:      trickle.ChunkDelay,
		}
	}
	return resp, err
}

// Handler wraps next so requests consult the injector's rules inside
// the serving process — the capserve.Backend side of the wire. name is
// the backend identity rules are scoped by (caprouter uses the
// listener's host:port so one rule spec addresses a backend from either
// side). Disarmed cost: one atomic pointer load.
func (inj *Injector) Handler(name string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inj.rules.Load() == nil {
			next.ServeHTTP(w, r)
			return
		}
		var trickle *armedRule
		done := false
		armed := inj.matching(ScopeRequest, name, func(ar *armedRule, h uint64) bool {
			switch ar.Kind {
			case KindLatency:
				if err := sleepCtx(r.Context(), ar.jitterFrom(h)); err != nil {
					done = true
					return false
				}
				return true
			case KindBlackhole, KindPartition:
				// Park until the client gives up; write nothing.
				<-r.Context().Done()
				done = true
				return false
			case KindReset, KindDown:
				// Abort the handler so net/http tears the connection
				// down without a response — the in-process equivalent
				// of a reset / vanished listener.
				panic(http.ErrAbortHandler)
			case KindError:
				http.Error(w, "capfault: injected error", ar.Status)
				done = true
				return false
			case KindTrickle:
				trickle = ar
				return true
			}
			return true
		})
		if done {
			return
		}
		if armed && trickle != nil {
			w = &trickleWriter{ResponseWriter: w, r: r, chunk: trickle.Chunk, delay: trickle.ChunkDelay}
		}
		next.ServeHTTP(w, r)
	})
}

// feedBody interposes the live rule set between a credit-feed stream
// and its reader: every Read first consults the armed ScopeFeed rules,
// so a blackhole/partition/reset installed mid-stream cuts the
// established subscription at its next event instead of waiting for the
// next dial. These are existence checks, not probability rolls — a
// per-read roll would burn one decision index per heartbeat and make
// "cut this stream" a coin flip per event, when a mid-stream cut is
// scripted, deterministic chaos. Connect-time faults (including
// probabilistic ones) already ran in roundTrip.
type feedBody struct {
	io.ReadCloser
	inj     *Injector
	ctx     context.Context
	backend string
}

func (f *feedBody) Read(p []byte) (int, error) {
	if rules := f.inj.rules.Load(); rules != nil {
		now := f.inj.now()
		for _, ar := range *rules {
			if ar.Scope != ScopeFeed || !ar.active(now) {
				continue
			}
			if ar.Backend != MatchAll && ar.Backend != f.backend {
				continue
			}
			switch ar.Kind {
			case KindBlackhole, KindPartition:
				// The stream goes silent: park until the subscriber's
				// watchdog cancels the request context.
				<-f.ctx.Done()
				return 0, &faultErr{kind: ar.Kind, err: f.ctx.Err()}
			case KindReset:
				return 0, &faultErr{kind: ar.Kind, err: syscall.ECONNRESET}
			}
		}
	}
	return f.ReadCloser.Read(p)
}

// trickleWriter dribbles the response body chunk bytes per delay,
// flushing each chunk so the bytes actually hit the wire — the
// handler-side view of a trickling backend: headers and status land
// promptly, the body takes forever.
type trickleWriter struct {
	http.ResponseWriter
	r     *http.Request
	chunk int
	delay time.Duration
}

func (t *trickleWriter) Write(p []byte) (int, error) {
	f, _ := t.ResponseWriter.(http.Flusher)
	n := 0
	for len(p) > 0 {
		if err := sleepCtx(t.r.Context(), t.delay); err != nil {
			return n, err
		}
		c := t.chunk
		if c > len(p) {
			c = len(p)
		}
		w, err := t.ResponseWriter.Write(p[:c])
		n += w
		if err != nil {
			return n, err
		}
		if f != nil {
			f.Flush()
		}
		p = p[c:]
	}
	return n, nil
}
