package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if m.ReadWord(0x12345) != 0 {
		t.Fatal("fresh memory should read zero")
	}
	if m.LoadByte(0xFFFF_FFFF_FFFF) != 0 {
		t.Fatal("fresh memory should read zero bytes")
	}
	if m.Footprint() != 0 {
		t.Fatal("reads must not allocate pages")
	}
}

func TestMemoryWordRoundTrip(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1000, -42)
	if got := m.ReadWord(0x1000); got != -42 {
		t.Fatalf("got %d", got)
	}
	m.WriteWord(0x1008, 1<<62)
	if got := m.ReadWord(0x1008); got != 1<<62 {
		t.Fatalf("got %d", got)
	}
	// Little-endian byte layout.
	m.WriteWord(0x2000, 0x0102030405060708)
	if m.LoadByte(0x2000) != 0x08 || m.LoadByte(0x2007) != 0x01 {
		t.Fatal("not little-endian")
	}
}

func TestMemoryCrossPageWord(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	m.WriteWord(addr, 0x1122334455667788)
	if got := m.ReadWord(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page word: got %#x", got)
	}
}

func TestMemoryFloatRoundTrip(t *testing.T) {
	m := NewMemory()
	m.WriteFloat(0x3000, 3.25)
	if got := m.ReadFloat(0x3000); got != 3.25 {
		t.Fatalf("got %v", got)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := NewMemory()
	src := []byte("hello capsule")
	m.StoreBytes(0x4000, src)
	if got := string(m.LoadBytes(0x4000, len(src))); got != string(src) {
		t.Fatalf("got %q", got)
	}
}

func TestQuickMemoryWordRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v int64) bool {
		a := uint64(addr)
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "x", SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2, HitCycles: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.LineBytes = 33
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two line accepted")
	}
	bad = good
	bad.SizeBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitCycles: 1})
	if c.Access(0x100) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0x100) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x11F) {
		t.Fatal("same line should hit")
	}
	if c.Access(0x120) {
		t.Fatal("next line should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, 32B lines, 2 sets => set stride is 64 bytes.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 128, LineBytes: 32, Assoc: 2, HitCycles: 1})
	a, b, d := uint64(0), uint64(64), uint64(128) // all map to set 0
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b (LRU)
	if !c.Access(a) {
		t.Fatal("a should still be resident")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitCycles: 1})
	c.Access(0x40)
	c.Flush()
	if c.Access(0x40) {
		t.Fatal("flush should invalidate")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cfg := h.Config()
	// Cold: miss everywhere -> memory latency.
	if got := h.DataLatency(0x1_0000); got != cfg.MemoryCycles {
		t.Fatalf("cold access latency = %d; want %d", got, cfg.MemoryCycles)
	}
	// Warm: L1 hit.
	if got := h.DataLatency(0x1_0000); got != cfg.L1D.HitCycles {
		t.Fatalf("warm access latency = %d; want %d", got, cfg.L1D.HitCycles)
	}
	// Evict from tiny L1 by touching many lines; the line should still hit L2.
	for i := 0; i < 4096; i++ {
		h.DataLatency(0x8_0000 + uint64(i)*32)
	}
	if got := h.DataLatency(0x1_0000); got != cfg.L2.HitCycles {
		t.Fatalf("L2 hit latency = %d; want %d", got, cfg.L2.HitCycles)
	}
	// Instruction path independent of data path.
	if got := h.InstLatency(0x2_0000); got != cfg.MemoryCycles {
		t.Fatalf("cold fetch latency = %d", got)
	}
	if got := h.InstLatency(0x2_0000); got != cfg.L1I.HitCycles {
		t.Fatalf("warm fetch latency = %d", got)
	}
}

func TestHierarchyDoubled(t *testing.T) {
	base := DefaultHierarchy()
	d := base.Doubled()
	if d.L1D.SizeBytes != 2*base.L1D.SizeBytes || d.L2.SizeBytes != 2*base.L2.SizeBytes {
		t.Fatal("doubling sizes failed")
	}
	if d.DataPorts != 2*base.DataPorts {
		t.Fatal("doubling ports failed")
	}
	if !d.DoubledCaches {
		t.Fatal("flag not set")
	}
	// Geometry must remain valid.
	if err := d.L1D.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.L2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1DefaultsMatchPaper(t *testing.T) {
	h := DefaultHierarchy()
	if h.L1D.SizeBytes != 8<<10 {
		t.Errorf("L1D = %d; paper says 8kB", h.L1D.SizeBytes)
	}
	if h.L1I.SizeBytes != 16<<10 {
		t.Errorf("L1I = %d; paper says 16kB", h.L1I.SizeBytes)
	}
	if h.L2.SizeBytes != 1<<20 {
		t.Errorf("L2 = %d; paper says 1MB", h.L2.SizeBytes)
	}
	if h.L2.HitCycles != 12 {
		t.Errorf("L2 latency = %d; paper says 12", h.L2.HitCycles)
	}
	if h.MemoryCycles != 200 {
		t.Errorf("memory latency = %d; paper says 200", h.MemoryCycles)
	}
}
