// Package mem implements the simulated memory system: a sparse
// byte-addressed main memory holding architectural state, and a
// latency-only cache hierarchy (L1I, L1D, unified L2, main memory) matching
// the paper's Table 1 configuration.
//
// Data always lives in Memory; the caches model timing only (tag arrays with
// LRU replacement). This mirrors how SimpleScalar's sim-outorder keeps
// functional state separate from its cache timing model.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse, byte-addressable, little-endian memory.
// It is not safe for concurrent use; the simulator is single-goroutine.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory. All addresses read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// ReadWord returns the 64-bit little-endian word at addr. Unaligned access
// is permitted (it spans pages transparently) but generated code always
// aligns words.
func (m *Memory) ReadWord(addr uint64) int64 {
	off := addr & (pageSize - 1)
	if off <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return int64(binary.LittleEndian.Uint64(p[off : off+8]))
	}
	var buf [8]byte
	for i := range buf {
		buf[i] = m.LoadByte(addr + uint64(i))
	}
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// WriteWord stores a 64-bit little-endian word at addr.
func (m *Memory) WriteWord(addr uint64, v int64) {
	off := addr & (pageSize - 1)
	if off <= pageSize-8 {
		p := m.page(addr, true)
		binary.LittleEndian.PutUint64(p[off:off+8], uint64(v))
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	for i := range buf {
		m.StoreByte(addr+uint64(i), buf[i])
	}
}

// ReadFloat returns the float64 stored at addr.
func (m *Memory) ReadFloat(addr uint64) float64 {
	return math.Float64frombits(uint64(m.ReadWord(addr)))
}

// WriteFloat stores a float64 at addr.
func (m *Memory) WriteFloat(addr uint64, v float64) {
	m.WriteWord(addr, int64(math.Float64bits(v)))
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.StoreByte(addr+uint64(i), c)
	}
}

// LoadBytes copies n bytes starting at addr.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// Footprint returns the number of resident pages (for tests and stats).
func (m *Memory) Footprint() int { return len(m.pages) }

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	HitCycles int
}

// Validate checks structural sanity.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// CacheStats aggregates accesses to one cache.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch tick
}

// Cache is a set-associative, LRU, latency-only cache model.
type Cache struct {
	cfg       CacheConfig
	sets      [][]cacheLine
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     CacheStats
}

// NewCache builds a cache from cfg; it panics on invalid geometry because
// configurations are static and validated at machine construction.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]cacheLine, nsets)
	for i := range sets {
		sets[i] = make([]cacheLine, cfg.Assoc)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), lineShift: shift}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Access touches addr and reports whether it hit. On a miss the line is
// filled (allocate-on-miss for both reads and writes).
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stats.Accesses++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(len64(c.setMask))
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.stats.Misses++
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.tick}
	return false
}

// Flush invalidates all lines (used between benchmark phases).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// HierarchyConfig is the full memory-system configuration (Table 1 defaults
// via DefaultHierarchy).
type HierarchyConfig struct {
	L1I           CacheConfig
	L1D           CacheConfig
	L2            CacheConfig
	MemoryCycles  int
	DataPorts     int  // D-cache ports usable per cycle
	DoubledCaches bool // the vpr experiment: double size and ports
}

// DefaultHierarchy returns the paper's Table 1 memory system: 16 kB L1I,
// 8 kB L1D (1 cycle), 1 MB unified L2 (12 cycles), 200-cycle memory.
//
// DataPorts is 4 rather than SimpleScalar's usual 2: CapC keeps locals in
// the frame (-O0 style) and so emits roughly twice the memory operations of
// the paper's `cc -O3` Alpha binaries; four ports restore the Table 1
// machine's port-to-memory-op ratio (substitution documented in DESIGN.md).
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:          CacheConfig{Name: "L1I", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 2, HitCycles: 1},
		L1D:          CacheConfig{Name: "L1D", SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2, HitCycles: 1},
		L2:           CacheConfig{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8, HitCycles: 12},
		MemoryCycles: 200,
		DataPorts:    4,
	}
}

// Doubled returns a copy with doubled L1D/L2 capacity and data ports, the
// configuration used in the paper's 175.vpr cache experiment.
func (h HierarchyConfig) Doubled() HierarchyConfig {
	h.L1D.SizeBytes *= 2
	h.L1I.SizeBytes *= 2
	h.L2.SizeBytes *= 2
	h.DataPorts *= 2
	h.DoubledCaches = true
	return h
}

// Hierarchy bundles the cache levels and answers latency queries.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache
}

// NewHierarchy builds the cache hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1i: NewCache(cfg.L1I),
		l1d: NewCache(cfg.L1D),
		l2:  NewCache(cfg.L2),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// InstLatency returns the fetch latency for an instruction address.
func (h *Hierarchy) InstLatency(addr uint64) int {
	if h.l1i.Access(addr) {
		return h.cfg.L1I.HitCycles
	}
	if h.l2.Access(addr) {
		return h.cfg.L2.HitCycles
	}
	return h.cfg.MemoryCycles
}

// DataLatency returns the access latency for a data address.
func (h *Hierarchy) DataLatency(addr uint64) int {
	if h.l1d.Access(addr) {
		return h.cfg.L1D.HitCycles
	}
	if h.l2.Access(addr) {
		return h.cfg.L2.HitCycles
	}
	return h.cfg.MemoryCycles
}

// DataPorts returns the number of D-cache ports per cycle.
func (h *Hierarchy) DataPorts() int { return h.cfg.DataPorts }

// Stats returns (L1I, L1D, L2) counters.
func (h *Hierarchy) Stats() (CacheStats, CacheStats, CacheStats) {
	return h.l1i.Stats(), h.l1d.Stats(), h.l2.Stats()
}

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	h.l1i.Flush()
	h.l1d.Flush()
	h.l2.Flush()
}
