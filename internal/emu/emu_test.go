package emu

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// mini builds a program directly from instructions (entry at index 0).
func mini(insts ...isa.Inst) *prog.Program {
	return &prog.Program{Insts: insts, Symbols: map[string]prog.Symbol{}, Entry: 0}
}

func TestForkCopiesState(t *testing.T) {
	parent := &Thread{ID: 1, Group: 3, PC: 42}
	parent.Regs[5] = 77
	parent.FRegs[2] = 2.5
	child := parent.Fork(9)
	if child.ID != 9 || child.Group != 3 || child.PC != 42 {
		t.Fatalf("child header wrong: %+v", child)
	}
	if child.Regs[5] != 77 || child.FRegs[2] != 2.5 {
		t.Fatal("registers not copied")
	}
	if child.Parent != parent {
		t.Fatal("parent link missing")
	}
	child.Regs[5] = 1
	if parent.Regs[5] != 77 {
		t.Fatal("fork must deep-copy registers")
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := mini(isa.Inst{Op: isa.OpHalt})
	m := NewMachine(p, 1)
	m.threads[0].PC = 99
	err := m.Run(100)
	if err == nil {
		t.Fatal("runaway PC not detected")
	}
	if !strings.Contains(err.Error(), "PC 99") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestStepBudgetExceeded(t *testing.T) {
	// Infinite loop.
	p := mini(isa.Inst{Op: isa.OpJ, Targ: 0})
	m := NewMachine(p, 1)
	if err := m.Run(50); err == nil {
		t.Fatal("step budget not enforced")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	p := mini(
		isa.Inst{Op: isa.OpAddi, Rd: isa.RegZero, Rs1: isa.RegZero, Imm: 55},
		isa.Inst{Op: isa.OpPrint, Rs1: isa.RegZero},
		isa.Inst{Op: isa.OpHalt},
	)
	m := NewMachine(p, 1)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 0 {
		t.Fatalf("zero register wrote %d", m.Output[0])
	}
}

func TestDivRemByZeroDefined(t *testing.T) {
	p := mini(
		isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RegZero, Imm: 9},
		isa.Inst{Op: isa.OpDiv, Rd: 2, Rs1: 1, Rs2: isa.RegZero},
		isa.Inst{Op: isa.OpRem, Rd: 3, Rs1: 1, Rs2: isa.RegZero},
		isa.Inst{Op: isa.OpPrint, Rs1: 2},
		isa.Inst{Op: isa.OpPrint, Rs1: 3},
		isa.Inst{Op: isa.OpHalt},
	)
	m := NewMachine(p, 1)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != -1 || m.Output[1] != 9 {
		t.Fatalf("div/rem by zero = %v", m.Output)
	}
}

func TestLockTransferOrderFIFO(t *testing.T) {
	m := NewMachine(mini(isa.Inst{Op: isa.OpHalt}), 4)
	a := &Thread{ID: 10}
	b := &Thread{ID: 11}
	c := &Thread{ID: 12}
	if !m.TryLock(a, 0x100) {
		t.Fatal("fresh lock refused")
	}
	if m.TryLock(b, 0x100) || m.TryLock(c, 0x100) {
		t.Fatal("held lock granted")
	}
	// Re-attempt must not duplicate the waiter entry.
	m.TryLock(b, 0x100)
	m.Unlock(a, 0x100)
	if !m.TryLock(b, 0x100) {
		t.Fatal("oldest waiter should own the lock after release")
	}
	if m.TryLock(c, 0x100) {
		t.Fatal("lock should still be held by b")
	}
	m.Unlock(b, 0x100)
	if !m.TryLock(c, 0x100) {
		t.Fatal("c should own the lock now")
	}
}

func TestUnlockNotOwnedIsNoop(t *testing.T) {
	m := NewMachine(mini(isa.Inst{Op: isa.OpHalt}), 2)
	a := &Thread{ID: 1}
	b := &Thread{ID: 2}
	m.TryLock(a, 0x40)
	m.Unlock(b, 0x40) // b does not own it
	if m.TryLock(b, 0x40) {
		t.Fatal("lock should still belong to a")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Thread A locks X then wants Y; we simulate the partner holding Y by
	// pre-acquiring it for a phantom thread that never runs.
	p := mini(
		// mlock X (addr in r1), mlock Y (addr in r2)
		isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RegZero, Imm: 0x100},
		isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: isa.RegZero, Imm: 0x200},
		isa.Inst{Op: isa.OpMlock, Rs1: 1},
		isa.Inst{Op: isa.OpMlock, Rs1: 2},
		isa.Inst{Op: isa.OpHalt},
	)
	m := NewMachine(p, 1)
	phantom := &Thread{ID: 99}
	m.TryLock(phantom, 0x200)
	err := m.Run(10_000)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestGroupCountsAcrossDivision(t *testing.T) {
	// main forks; child kthrs; group count returns to 1.
	p := mini(
		isa.Inst{Op: isa.OpNthr, Rd: 1},
		isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: isa.RegZero, Targ: 4}, // child/denied to 4
		isa.Inst{Op: isa.OpJoin},
		isa.Inst{Op: isa.OpHalt},
		isa.Inst{Op: isa.OpKthr},
	)
	m := NewMachine(p, 4)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.groups[0] != 1 {
		t.Fatalf("group live = %d", m.groups[0])
	}
	if m.DivGranted != 1 {
		t.Fatalf("granted = %d", m.DivGranted)
	}
}

func TestMaxThreadsBoundsDivision(t *testing.T) {
	// Two nthr in a row under maxThreads=2: first grants, second denies
	// (parent + child alive).
	p := mini(
		isa.Inst{Op: isa.OpNthr, Rd: 1},
		isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: isa.RegZero, Targ: 5},
		isa.Inst{Op: isa.OpNthr, Rd: 2},
		isa.Inst{Op: isa.OpJoin},
		isa.Inst{Op: isa.OpHalt},
		// child: spin forever until... actually kthr immediately.
		isa.Inst{Op: isa.OpKthr},
	)
	m := NewMachine(p, 2)
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if m.DivGranted < 1 || m.DivDenied < 1 {
		t.Fatalf("granted=%d denied=%d", m.DivGranted, m.DivDenied)
	}
}

func TestLiveThreadsAndHalted(t *testing.T) {
	p := mini(isa.Inst{Op: isa.OpHalt})
	m := NewMachine(p, 1)
	if m.LiveThreads() != 1 || m.Halted() {
		t.Fatal("initial state wrong")
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("not halted")
	}
}
