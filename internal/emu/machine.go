package emu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/prog"
)

// Machine is the pure-functional multi-worker runner: no timing, division
// always granted while fewer than MaxThreads workers are live, round-robin
// interleaving at instruction granularity. It is the golden model the
// timing simulator is checked against, and a fast way to validate CapC
// programs.
type Machine struct {
	Prog *prog.Program
	Mem  *mem.Memory
	// MaxThreads bounds concurrently live workers (division is denied at
	// the bound, exactly like running out of hardware contexts).
	MaxThreads int

	threads []*Thread
	nextID  int
	groups  map[int]int64
	locks   map[uint64]*lockState
	halted  bool

	// Output accumulates values from the print instruction, in execution
	// order.
	Output []int64

	// Statistics.
	Steps       uint64
	DivGranted  uint64
	DivDenied   uint64
	ThreadsMade int
}

type lockState struct {
	owner   int
	waiters []int // FIFO; the paper's table wakes the oldest waiter
}

// NewMachine loads p's data image into a fresh memory and creates the
// ancestor thread at the entry point with the main stack.
func NewMachine(p *prog.Program, maxThreads int) *Machine {
	m := mem.NewMemory()
	m.StoreBytes(prog.DataBase, p.Data)
	mach := &Machine{
		Prog:       p,
		Mem:        m,
		MaxThreads: maxThreads,
		groups:     make(map[int]int64),
		locks:      make(map[uint64]*lockState),
	}
	t := &Thread{ID: 0, Group: 0, PC: p.Entry}
	t.Regs[30] = int64(prog.MainStackTop) // sp
	mach.threads = []*Thread{t}
	mach.nextID = 1
	mach.ThreadsMade = 1
	mach.groups[0] = 1
	return mach
}

// Kernel implementation -----------------------------------------------------

// RequestDivision grants while fewer than MaxThreads workers are live.
func (ma *Machine) RequestDivision(parent *Thread) (*Thread, bool) {
	live := 0
	for _, t := range ma.threads {
		if !t.Dead {
			live++
		}
	}
	if live >= ma.MaxThreads {
		ma.DivDenied++
		return nil, false
	}
	child := parent.Fork(ma.nextID)
	ma.nextID++
	ma.ThreadsMade++
	ma.threads = append(ma.threads, child)
	ma.groups[child.Group]++
	ma.DivGranted++
	return child, true
}

// ThreadExit removes t from its group's live count.
func (ma *Machine) ThreadExit(t *Thread) {
	ma.groups[t.Group]--
}

// TryLock implements the locking table functionally.
func (ma *Machine) TryLock(t *Thread, addr uint64) bool {
	ls := ma.locks[addr]
	if ls == nil {
		ma.locks[addr] = &lockState{owner: t.ID}
		return true
	}
	if ls.owner == t.ID {
		return true
	}
	for _, w := range ls.waiters {
		if w == t.ID {
			return false
		}
	}
	ls.waiters = append(ls.waiters, t.ID)
	return false
}

// Unlock transfers ownership to the oldest waiter, or frees the entry.
func (ma *Machine) Unlock(t *Thread, addr uint64) {
	ls := ma.locks[addr]
	if ls == nil || ls.owner != t.ID {
		// Releasing a lock you do not hold is a program bug; treat as
		// no-op (the hardware would also find no matching entry).
		return
	}
	if len(ls.waiters) == 0 {
		delete(ma.locks, addr)
		return
	}
	ls.owner = ls.waiters[0]
	ls.waiters = ls.waiters[1:]
}

// GroupLive returns the live count of t's group.
func (ma *Machine) GroupLive(t *Thread) int64 { return ma.groups[t.Group] }

// Halt stops the machine.
func (ma *Machine) Halt(*Thread) { ma.halted = true }

// Print appends to Output.
func (ma *Machine) Print(_ *Thread, v int64) { ma.Output = append(ma.Output, v) }

// ----------------------------------------------------------------------------

// Halted reports whether the program executed halt.
func (ma *Machine) Halted() bool { return ma.halted }

// LiveThreads returns the current number of live workers.
func (ma *Machine) LiveThreads() int {
	n := 0
	for _, t := range ma.threads {
		if !t.Dead {
			n++
		}
	}
	return n
}

// Run interleaves all live workers round-robin, one instruction each per
// round, until halt. It fails if maxSteps is exceeded or if every live
// worker is blocked (deadlock).
func (ma *Machine) Run(maxSteps uint64) error {
	for !ma.halted {
		progress := false
		// Iterate over a snapshot: divisions append new threads which
		// start running next round.
		snapshot := ma.threads
		for _, t := range snapshot {
			if t.Dead || ma.halted {
				continue
			}
			_, st, err := Step(ma.Prog, ma.Mem, ma, t)
			if err != nil {
				return err
			}
			if st != StatusBlocked {
				progress = true
				ma.Steps++
			}
			if ma.Steps > maxSteps {
				return fmt.Errorf("emu: exceeded step budget %d (live=%d)", maxSteps, ma.LiveThreads())
			}
		}
		if !progress && !ma.halted {
			return fmt.Errorf("emu: deadlock: %d live workers all blocked", ma.LiveThreads())
		}
		ma.compact()
	}
	return nil
}

func (ma *Machine) compact() {
	alive := ma.threads[:0]
	for _, t := range ma.threads {
		if !t.Dead {
			alive = append(alive, t)
		}
	}
	ma.threads = alive
}
