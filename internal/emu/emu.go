// Package emu implements the functional (architectural) execution engine.
//
// Both simulators are built on it:
//
//   - the timing model (internal/cpu) is execute-ahead: it calls Step when
//     it fetches an instruction and uses the returned oracle (branch
//     outcome, memory address, division result) to charge cycles;
//   - the pure-functional Machine in this package runs whole programs
//     without timing and serves as the golden model in tests.
//
// Threads are the paper's "workers": they divide with nthr (subject to the
// Kernel's decision), die with kthr, and synchronise with the mlock/munlock
// lock table and the tcnt/join group-count extension.
package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Thread is one worker's architectural state.
type Thread struct {
	ID    int
	Group int // worker group (single common ancestor)
	PC    int32
	Regs  [isa.NumIntRegs]int64
	FRegs [isa.NumFPRegs]float64

	Dead      bool
	InstCount uint64

	// Parent is the thread this one divided from (nil for the ancestor).
	Parent *Thread
}

// Fork returns a child thread with copied register state, as performed by
// the nthr register-copy at commit. The caller assigns ID and fixes the
// destination register / PC.
func (t *Thread) Fork(id int) *Thread {
	c := &Thread{ID: id, Group: t.Group, PC: t.PC, Parent: t}
	c.Regs = t.Regs
	c.FRegs = t.FRegs
	return c
}

func (t *Thread) setReg(r isa.Reg, v int64) {
	if r != isa.RegZero {
		t.Regs[r] = v
	}
}

// Kernel is the authority for the CAPSULE system operations. The timing CPU
// implements it with the hardware policies of Section 3.1; the functional
// Machine implements it with simple always-grant-up-to-N semantics.
type Kernel interface {
	// RequestDivision decides an nthr. When granted it returns a fresh
	// child thread (register state already copied from parent).
	RequestDivision(parent *Thread) (child *Thread, granted bool)
	// ThreadExit is called when t executes kthr.
	ThreadExit(t *Thread)
	// TryLock attempts to take the hardware lock on addr; it must be
	// idempotent for the current owner. A false return blocks the thread;
	// the kernel must remember it as a waiter and wake it on transfer.
	TryLock(t *Thread, addr uint64) bool
	// Unlock releases the lock on addr, transferring it to the oldest
	// waiter per the paper's locking table.
	Unlock(t *Thread, addr uint64)
	// GroupLive returns the number of live threads in t's group.
	GroupLive(t *Thread) int64
	// Halt stops the whole machine (executed by the ancestor).
	Halt(t *Thread)
	// Print receives debug output from the print instruction.
	Print(t *Thread, v int64)
}

// Status reports the outcome of one Step.
type Status uint8

const (
	// StatusOK: the instruction executed; StepInfo is valid.
	StatusOK Status = iota
	// StatusBlocked: the instruction could not execute (lock held by
	// another thread, or join with live siblings). No state changed; the
	// same instruction must be retried.
	StatusBlocked
	// StatusDead: the thread executed kthr and is gone. StepInfo is valid.
	StatusDead
	// StatusHalt: the thread executed halt. StepInfo is valid.
	StatusHalt
)

// StepInfo is the oracle record of one executed instruction.
type StepInfo struct {
	Inst   isa.Inst
	PC     int32
	NextPC int32
	Taken  bool // conditional branches only

	MemAddr uint64 // loads/stores/mlock/munlock

	DivGranted bool
	DivDenied  bool
	Child      *Thread // non-nil when DivGranted
}

// ErrPC is returned (via panic-free error) when a thread runs off the text.
type ErrPC struct {
	Thread int
	PC     int32
}

func (e ErrPC) Error() string {
	return fmt.Sprintf("emu: thread %d: PC %d outside program text", e.Thread, e.PC)
}

// Step architecturally executes the next instruction of t.
func Step(p *prog.Program, m *mem.Memory, k Kernel, t *Thread) (StepInfo, Status, error) {
	if t.PC < 0 || int(t.PC) >= len(p.Insts) {
		return StepInfo{}, StatusOK, ErrPC{Thread: t.ID, PC: t.PC}
	}
	in := p.Insts[t.PC]
	info := StepInfo{Inst: in, PC: t.PC, NextPC: t.PC + 1}
	r := &t.Regs
	f := &t.FRegs

	switch in.Op {
	case isa.OpAdd:
		t.setReg(in.Rd, r[in.Rs1]+r[in.Rs2])
	case isa.OpSub:
		t.setReg(in.Rd, r[in.Rs1]-r[in.Rs2])
	case isa.OpMul:
		t.setReg(in.Rd, r[in.Rs1]*r[in.Rs2])
	case isa.OpDiv:
		if r[in.Rs2] == 0 {
			t.setReg(in.Rd, -1)
		} else {
			t.setReg(in.Rd, r[in.Rs1]/r[in.Rs2])
		}
	case isa.OpRem:
		if r[in.Rs2] == 0 {
			t.setReg(in.Rd, r[in.Rs1])
		} else {
			t.setReg(in.Rd, r[in.Rs1]%r[in.Rs2])
		}
	case isa.OpAnd:
		t.setReg(in.Rd, r[in.Rs1]&r[in.Rs2])
	case isa.OpOr:
		t.setReg(in.Rd, r[in.Rs1]|r[in.Rs2])
	case isa.OpXor:
		t.setReg(in.Rd, r[in.Rs1]^r[in.Rs2])
	case isa.OpSll:
		t.setReg(in.Rd, r[in.Rs1]<<(uint64(r[in.Rs2])&63))
	case isa.OpSrl:
		t.setReg(in.Rd, int64(uint64(r[in.Rs1])>>(uint64(r[in.Rs2])&63)))
	case isa.OpSra:
		t.setReg(in.Rd, r[in.Rs1]>>(uint64(r[in.Rs2])&63))
	case isa.OpSlt:
		t.setReg(in.Rd, b2i(r[in.Rs1] < r[in.Rs2]))
	case isa.OpSltu:
		t.setReg(in.Rd, b2i(uint64(r[in.Rs1]) < uint64(r[in.Rs2])))

	case isa.OpAddi:
		t.setReg(in.Rd, r[in.Rs1]+in.Imm)
	case isa.OpAndi:
		t.setReg(in.Rd, r[in.Rs1]&in.Imm)
	case isa.OpOri:
		t.setReg(in.Rd, r[in.Rs1]|in.Imm)
	case isa.OpXori:
		t.setReg(in.Rd, r[in.Rs1]^in.Imm)
	case isa.OpSlli:
		t.setReg(in.Rd, r[in.Rs1]<<(uint64(in.Imm)&63))
	case isa.OpSrli:
		t.setReg(in.Rd, int64(uint64(r[in.Rs1])>>(uint64(in.Imm)&63)))
	case isa.OpSrai:
		t.setReg(in.Rd, r[in.Rs1]>>(uint64(in.Imm)&63))
	case isa.OpSlti:
		t.setReg(in.Rd, b2i(r[in.Rs1] < in.Imm))
	case isa.OpLui:
		t.setReg(in.Rd, in.Imm<<16)

	case isa.OpLd:
		info.MemAddr = uint64(r[in.Rs1] + in.Imm)
		t.setReg(in.Rd, m.ReadWord(info.MemAddr))
	case isa.OpSd:
		info.MemAddr = uint64(r[in.Rs1] + in.Imm)
		m.WriteWord(info.MemAddr, r[in.Rs2])
	case isa.OpLb:
		info.MemAddr = uint64(r[in.Rs1] + in.Imm)
		t.setReg(in.Rd, int64(m.LoadByte(info.MemAddr)))
	case isa.OpSb:
		info.MemAddr = uint64(r[in.Rs1] + in.Imm)
		m.StoreByte(info.MemAddr, byte(r[in.Rs2]))
	case isa.OpFld:
		info.MemAddr = uint64(r[in.Rs1] + in.Imm)
		f[in.Rd] = m.ReadFloat(info.MemAddr)
	case isa.OpFsd:
		info.MemAddr = uint64(r[in.Rs1] + in.Imm)
		m.WriteFloat(info.MemAddr, f[in.Rs2])

	case isa.OpBeq:
		info.Taken = r[in.Rs1] == r[in.Rs2]
	case isa.OpBne:
		info.Taken = r[in.Rs1] != r[in.Rs2]
	case isa.OpBlt:
		info.Taken = r[in.Rs1] < r[in.Rs2]
	case isa.OpBge:
		info.Taken = r[in.Rs1] >= r[in.Rs2]
	case isa.OpBltu:
		info.Taken = uint64(r[in.Rs1]) < uint64(r[in.Rs2])
	case isa.OpBgeu:
		info.Taken = uint64(r[in.Rs1]) >= uint64(r[in.Rs2])
	case isa.OpJ:
		info.NextPC = in.Targ
	case isa.OpJal:
		t.setReg(in.Rd, int64(t.PC+1))
		info.NextPC = in.Targ
	case isa.OpJalr:
		target := int32(r[in.Rs1] + in.Imm)
		t.setReg(in.Rd, int64(t.PC+1))
		info.NextPC = target

	case isa.OpFadd:
		f[in.Rd] = f[in.Rs1] + f[in.Rs2]
	case isa.OpFsub:
		f[in.Rd] = f[in.Rs1] - f[in.Rs2]
	case isa.OpFmul:
		f[in.Rd] = f[in.Rs1] * f[in.Rs2]
	case isa.OpFdiv:
		f[in.Rd] = f[in.Rs1] / f[in.Rs2]
	case isa.OpFsqrt:
		f[in.Rd] = math.Sqrt(f[in.Rs1])
	case isa.OpFneg:
		f[in.Rd] = -f[in.Rs1]
	case isa.OpFlt:
		t.setReg(in.Rd, b2i(f[in.Rs1] < f[in.Rs2]))
	case isa.OpFle:
		t.setReg(in.Rd, b2i(f[in.Rs1] <= f[in.Rs2]))
	case isa.OpFeq:
		t.setReg(in.Rd, b2i(f[in.Rs1] == f[in.Rs2]))
	case isa.OpFcvtIF:
		f[in.Rd] = float64(r[in.Rs1])
	case isa.OpFcvtFI:
		t.setReg(in.Rd, int64(f[in.Rs1]))
	case isa.OpFmvIF:
		f[in.Rd] = math.Float64frombits(uint64(r[in.Rs1]))
	case isa.OpFmvFI:
		t.setReg(in.Rd, int64(math.Float64bits(f[in.Rs1])))

	case isa.OpNthr:
		child, granted := k.RequestDivision(t)
		if granted {
			// Child state is a copy of the parent taken by the kernel
			// via Fork; both continue after the nthr, distinguished by
			// the destination register (0 = parent, 1 = child; -1 would
			// have meant the probe failed).
			child.PC = t.PC + 1
			child.setReg(in.Rd, 1)
			t.setReg(in.Rd, 0)
			info.DivGranted = true
			info.Child = child
		} else {
			t.setReg(in.Rd, -1)
			info.DivDenied = true
		}
	case isa.OpKthr:
		t.Dead = true
		t.PC++
		t.InstCount++
		k.ThreadExit(t)
		return info, StatusDead, nil
	case isa.OpMlock:
		info.MemAddr = uint64(r[in.Rs1])
		if !k.TryLock(t, info.MemAddr) {
			return info, StatusBlocked, nil
		}
	case isa.OpMunlock:
		info.MemAddr = uint64(r[in.Rs1])
		k.Unlock(t, info.MemAddr)
	case isa.OpTcnt:
		t.setReg(in.Rd, k.GroupLive(t))
	case isa.OpJoin:
		if k.GroupLive(t) > 1 {
			return info, StatusBlocked, nil
		}

	case isa.OpHalt:
		t.PC++
		t.InstCount++
		k.Halt(t)
		return info, StatusHalt, nil
	case isa.OpPrint:
		k.Print(t, r[in.Rs1])
	case isa.OpNop:
		// nothing
	default:
		return info, StatusOK, fmt.Errorf("emu: thread %d: unimplemented op %v at PC %d", t.ID, in.Op, t.PC)
	}

	if in.Op.IsBranch() && info.Taken {
		info.NextPC = in.Targ
	}
	t.PC = info.NextPC
	t.InstCount++
	return info, StatusOK, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
