package capscope

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/capcluster"
	"repro/internal/capfault"
	"repro/internal/capwatch"
)

// Bundle layout: one directory per incident, named after the manifest
// ID (inc-<seq>-<trigger>-<unixms>), containing
//
//	manifest.json   — identity, trigger, reason, SLO verdict, file list
//	watch.json      — capwatch Report at capture time
//	trace.json      — captrace Snapshot (merged ring, newest TraceEvents)
//	cpu.pprof       — bounded CPU profile burst (ProfileDuration)
//	heap.pprof      — heap profile
//	goroutines.txt  — full goroutine dump (pprof debug=2)
//	fault.json      — live capfault rule set (when an injector is wired)
//	backends.json   — per-backend credit/breaker/ejection table (router)
//
// The capture writes into a dot-prefixed temp dir and renames it into
// place, so a bundle either exists completely or not at all — a crash
// mid-capture leaves only a temp dir the next New sweeps away.

// Standard bundle file names.
const (
	FileManifest   = "manifest.json"
	FileWatch      = "watch.json"
	FileTrace      = "trace.json"
	FileCPU        = "cpu.pprof"
	FileHeap       = "heap.pprof"
	FileGoroutines = "goroutines.txt"
	FileFault      = "fault.json"
	FileBackends   = "backends.json"
)

// Manifest identifies one incident bundle: what fired, why, and what
// the SLO evaluator saw at that instant. It is written last inside the
// temp dir, so its presence marks a complete capture.
type Manifest struct {
	ID            string  `json:"id"`
	Seq           uint64  `json:"seq"`
	Source        string  `json:"source"`
	Trigger       string  `json:"trigger"`
	Reason        string  `json:"reason"`
	TakenAtUnixMS int64   `json:"taken_at_unix_ms"`
	CooldownS     float64 `json:"cooldown_s"`

	Build buildinfo.Info     `json:"build"`
	SLO   capwatch.SLOReport `json:"slo"`
	Files []string           `json:"files"`
	Notes []string           `json:"notes,omitempty"`
}

// FaultDoc is fault.json: whether the injector was armed and the live
// rules — a bundle caused by a staged storm says so in the artifact.
type FaultDoc struct {
	Armed bool                `json:"armed"`
	Rules []capfault.RuleInfo `json:"rules"`
}

// BackendsDoc is backends.json: the router's view of its fleet at
// capture time, raw cumulative counters plus gauges.
type BackendsDoc struct {
	Names    []string                     `json:"names"`
	Router   capcluster.RouterCounters    `json:"router"`
	Backends []capcluster.BackendCounters `json:"backends"`
}

// capture assembles one bundle. It runs on its own goroutine; the
// in-flight guard in observe keeps captures from overlapping within a
// recorder, and cpuProfMu keeps CPU profiling exclusive process-wide.
func (r *Recorder) capture(trigger, reason string, slo capwatch.SLOReport, now time.Time) {
	r.mu.Lock()
	seq := r.seq
	r.seq++
	r.mu.Unlock()

	id := fmt.Sprintf("inc-%06d-%s-%d", seq, trigger, now.UnixMilli())
	tmp := filepath.Join(r.dir, ".tmp-"+id)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		r.errors.Add(1)
		return
	}
	m := Manifest{
		ID:            id,
		Seq:           seq,
		Source:        r.source,
		Trigger:       trigger,
		Reason:        reason,
		TakenAtUnixMS: now.UnixMilli(),
		CooldownS:     r.cooldown.Seconds(),
		Build:         buildinfo.Get(),
		SLO:           slo,
	}
	writeJSON := func(name string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(tmp, name), data, 0o644)
		}
		if err != nil {
			m.Notes = append(m.Notes, fmt.Sprintf("%s: %v", name, err))
			return
		}
		m.Files = append(m.Files, name)
	}

	if r.sampler != nil {
		writeJSON(FileWatch, r.sampler.Report(0))
	}
	writeJSON(FileTrace, r.tracer.Snapshot(r.source, r.traceN))
	if r.cfg.Fault != nil {
		rules := r.cfg.Fault.Rules()
		if rules == nil {
			rules = []capfault.RuleInfo{}
		}
		writeJSON(FileFault, FaultDoc{Armed: r.cfg.Fault.Armed(), Rules: rules})
	}
	if rt := r.cfg.Router; rt != nil {
		doc := BackendsDoc{
			Names:    rt.BackendNames(),
			Router:   rt.ReadCounters(),
			Backends: make([]capcluster.BackendCounters, len(r.curBackends)),
		}
		rt.ReadBackendCounters(doc.Backends)
		writeJSON(FileBackends, doc)
	}

	// CPU profile burst: bounded, exclusive, skipped (with a note)
	// rather than queued when another profile is running.
	switch {
	case r.profDur <= 0:
		m.Notes = append(m.Notes, "cpu profile disabled (ProfileDuration < 0)")
	case !cpuProfMu.TryLock():
		m.Notes = append(m.Notes, "cpu profile skipped: another profile in flight")
	default:
		func() {
			defer cpuProfMu.Unlock()
			f, err := os.Create(filepath.Join(tmp, FileCPU))
			if err != nil {
				m.Notes = append(m.Notes, fmt.Sprintf("%s: %v", FileCPU, err))
				return
			}
			defer f.Close()
			if err := pprof.StartCPUProfile(f); err != nil {
				m.Notes = append(m.Notes, fmt.Sprintf("%s: %v", FileCPU, err))
				return
			}
			time.Sleep(r.profDur)
			pprof.StopCPUProfile()
			m.Files = append(m.Files, FileCPU)
		}()
	}

	if f, err := os.Create(filepath.Join(tmp, FileHeap)); err == nil {
		if err := pprof.Lookup("heap").WriteTo(f, 0); err == nil {
			m.Files = append(m.Files, FileHeap)
		} else {
			m.Notes = append(m.Notes, fmt.Sprintf("%s: %v", FileHeap, err))
		}
		f.Close()
	}
	if f, err := os.Create(filepath.Join(tmp, FileGoroutines)); err == nil {
		if err := pprof.Lookup("goroutine").WriteTo(f, 2); err == nil {
			m.Files = append(m.Files, FileGoroutines)
		} else {
			m.Notes = append(m.Notes, fmt.Sprintf("%s: %v", FileGoroutines, err))
		}
		f.Close()
	}

	// Manifest last: a temp dir without one is a torn capture.
	data, err := json.MarshalIndent(m, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(tmp, FileManifest), data, 0o644)
	}
	if err != nil {
		os.RemoveAll(tmp)
		r.errors.Add(1)
		return
	}

	r.mu.Lock()
	err = os.Rename(tmp, filepath.Join(r.dir, id))
	if err == nil {
		r.pruneLocked()
	}
	r.mu.Unlock()
	if err != nil {
		os.RemoveAll(tmp)
		r.errors.Add(1)
		return
	}
	r.incidents.Add(1)
}

// Clear removes one bundle by ID; ClearAll removes every bundle. Both
// return the number removed.
func (r *Recorder) Clear(id string) int {
	if !validBundleID(id) {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := os.Stat(filepath.Join(r.dir, id, FileManifest)); err != nil {
		return 0
	}
	if os.RemoveAll(filepath.Join(r.dir, id)) != nil {
		return 0
	}
	return 1
}

// ClearAll removes every complete bundle in the recorder's dir.
func (r *Recorder) ClearAll() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range LoadManifests(r.dir) {
		if os.RemoveAll(filepath.Join(r.dir, m.ID)) == nil {
			n++
		}
	}
	return n
}

// validBundleID rejects anything that could escape the bundle dir.
func validBundleID(id string) bool {
	return strings.HasPrefix(id, "inc-") && !strings.ContainsAny(id, "/\\") && id != "" &&
		filepath.Base(id) == id
}

// LoadManifests indexes a bundle directory: every inc-* subdir with a
// readable manifest, oldest (lowest sequence) first. Torn or foreign
// dirs are skipped. Shared by the recorder, the HTTP handler and the
// capscope CLI's directory mode.
func LoadManifests(dir string) []Manifest {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []Manifest
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "inc-") {
			continue
		}
		m, err := LoadManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// LoadManifest reads one bundle dir's manifest.
func LoadManifest(bundleDir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(bundleDir, FileManifest))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("capscope: %s: %w", bundleDir, err)
	}
	if m.ID == "" {
		m.ID = filepath.Base(bundleDir)
	}
	return m, nil
}

// Bundle is one incident with every artifact inline — the JSON shape
// GET /debug/incident?id= serves. Profiles ride as base64 ([]byte's
// encoding/json default); JSON artifacts ride raw.
type Bundle struct {
	Manifest   Manifest        `json:"manifest"`
	Watch      json.RawMessage `json:"watch,omitempty"`
	Trace      json.RawMessage `json:"trace,omitempty"`
	Fault      json.RawMessage `json:"fault,omitempty"`
	Backends   json.RawMessage `json:"backends,omitempty"`
	CPUProfile []byte          `json:"cpu_pprof,omitempty"`
	HeapProfile []byte         `json:"heap_pprof,omitempty"`
	Goroutines string          `json:"goroutines,omitempty"`
}

// LoadBundle reads one bundle dir in full.
func LoadBundle(bundleDir string) (*Bundle, error) {
	m, err := LoadManifest(bundleDir)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Manifest: m}
	read := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join(bundleDir, name))
		if err != nil {
			return nil
		}
		return data
	}
	b.Watch = read(FileWatch)
	b.Trace = read(FileTrace)
	b.Fault = read(FileFault)
	b.Backends = read(FileBackends)
	b.CPUProfile = read(FileCPU)
	b.HeapProfile = read(FileHeap)
	b.Goroutines = string(read(FileGoroutines))
	return b, nil
}
