package capscope

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// /debug/incident follows /debug/trace's merge convention exactly: a
// lone capserve serves a single List object; a router that also owns
// its spawned backends' recorders serves a JSON array, its own list
// first, so one URL yields the whole fleet's incidents. ?id= fetches
// one bundle in full (searched across every recorder); DELETE clears
// (?id= for one bundle, bare for everything).

// List is one recorder's incident index — the GET /debug/incident
// response shape.
type List struct {
	Source         string     `json:"source"`
	Dir            string     `json:"dir"`
	IncidentsTotal uint64     `json:"incidents_total"` // captured this process lifetime
	Bundles        []Manifest `json:"bundles"`         // resident on disk, oldest first
}

// listOf builds the recorder's current index.
func (r *Recorder) listOf() List {
	ms := LoadManifests(r.dir)
	if ms == nil {
		ms = []Manifest{}
	}
	return List{Source: r.source, Dir: r.dir, IncidentsTotal: r.incidents.Load(), Bundles: ms}
}

// Handler serves GET/DELETE /debug/incident over the given recorders
// (a router passes itself first, then its spawned backends').
func Handler(recs ...*Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		switch req.Method {
		case http.MethodGet:
			if id != "" {
				for _, r := range recs {
					m, err := LoadManifest(bundlePath(r, id))
					if err != nil || m.ID != id {
						continue
					}
					b, err := LoadBundle(bundlePath(r, id))
					if err != nil {
						continue
					}
					w.Header().Set("Content-Type", "application/json")
					json.NewEncoder(w).Encode(b)
					return
				}
				http.Error(w, fmt.Sprintf("no bundle %q", id), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			if len(recs) == 1 {
				enc.Encode(recs[0].listOf())
				return
			}
			lists := make([]List, 0, len(recs))
			for _, r := range recs {
				lists = append(lists, r.listOf())
			}
			enc.Encode(lists)
		case http.MethodDelete:
			n := 0
			for _, r := range recs {
				if id != "" {
					n += r.Clear(id)
				} else {
					n += r.ClearAll()
				}
			}
			if id != "" && n == 0 {
				http.Error(w, fmt.Sprintf("no bundle %q", id), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"cleared\":%d}\n", n)
		default:
			w.Header().Set("Allow", "GET, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func bundlePath(r *Recorder, id string) string {
	if !validBundleID(id) {
		return ""
	}
	return r.dir + "/" + id
}

// DecodeLists parses a GET /debug/incident body in either shape — a
// single List object or an array — always returning a slice, so the
// capscope CLI and smoke scripts don't care which topology they hit.
func DecodeLists(data []byte) ([]List, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("capscope: empty incident response")
	}
	if trimmed[0] == '[' {
		var lists []List
		if err := json.Unmarshal(trimmed, &lists); err != nil {
			return nil, fmt.Errorf("capscope: decoding incident array: %w", err)
		}
		return lists, nil
	}
	var l List
	if err := json.Unmarshal(trimmed, &l); err != nil {
		return nil, fmt.Errorf("capscope: decoding incident list: %w", err)
	}
	return []List{l}, nil
}
