package capscope

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/capsule"
	"repro/internal/captrace"
	"repro/internal/capwatch"
)

// newThrottledRuntime builds a runtime whose death-rate throttle trips
// on the first worker death and stays tripped for an hour — so every
// subsequent TryDivide is a throttle deny, giving tests a sustained
// trigger condition they can produce on demand.
func newThrottledRuntime(t *testing.T) *capsule.Runtime {
	t.Helper()
	rt, err := capsule.NewValidated(capsule.Config{
		Contexts:       2,
		Throttle:       true,
		DeathWindow:    time.Hour,
		DeathThreshold: 1,
	})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func tripThrottle(t *testing.T, rt *capsule.Runtime) {
	t.Helper()
	for i := 0; i < 4; i++ {
		rt.TryDivide(func() {})
	}
	rt.Join()
	deadline := time.Now().Add(2 * time.Second)
	for rt.Stats().ThrottleDenies == 0 {
		rt.TryDivide(func() {})
		if time.Now().After(deadline) {
			t.Fatalf("throttle did not trip: %+v", rt.Stats())
		}
	}
}

// testRecorder wires a recorder to a manually-ticked sampler with a
// fake clock and CPU profiling disabled (captures land synchronously
// via wg.Wait, and cooldowns are driven by the clock, not sleeps).
func testRecorder(t *testing.T, rt *capsule.Runtime, cfg Config) (*Recorder, *capwatch.Sampler, *time.Time) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.Runtime = rt
	if cfg.ProfileDuration == 0 {
		cfg.ProfileDuration = -1
	}
	s, err := capwatch.New(capwatch.Config{Runtime: rt, Interval: 50 * time.Millisecond, Source: "test"})
	if err != nil {
		t.Fatalf("sampler: %v", err)
	}
	rec, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	clock := time.Now()
	rec.now = func() time.Time { return clock }
	rec.Arm(s)
	t.Cleanup(rec.Close)
	return rec, s, &clock
}

func TestNewValidates(t *testing.T) {
	rt := newThrottledRuntime(t)
	if _, err := New(Config{Runtime: rt}); err == nil {
		t.Error("New accepted an empty Dir")
	}
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Error("New accepted a nil Runtime")
	}
	if _, err := New(Config{Dir: t.TempDir(), Runtime: rt, Cooldown: -time.Second}); err == nil {
		t.Error("New accepted a negative cooldown")
	}
}

// TestArmDoesNotFireOnHistory: counters that were already nonzero when
// the recorder armed must not produce a bundle — the first tick primes.
func TestArmDoesNotFireOnHistory(t *testing.T) {
	rt := newThrottledRuntime(t)
	tripThrottle(t, rt) // denies exist before arming
	rec, s, clock := testRecorder(t, rt, Config{})
	s.SampleNow() // prime
	*clock = clock.Add(time.Second)
	s.SampleNow() // no new denies since prime
	rec.wg.Wait()
	if got := len(LoadManifests(rec.Dir())); got != 0 {
		t.Fatalf("armed recorder fired on pre-existing counters: %d bundles", got)
	}
	if rec.Incidents() != 0 {
		t.Fatalf("incidents = %d, want 0", rec.Incidents())
	}
}

// TestDebounce is the acceptance-criteria test: a sustained trigger
// condition yields one bundle per cooldown, not one per tick.
func TestDebounce(t *testing.T) {
	rt := newThrottledRuntime(t)
	rec, s, clock := testRecorder(t, rt, Config{Cooldown: time.Minute})
	tripThrottle(t, rt)
	s.SampleNow() // prime tick

	// 20 ticks of sustained throttle denies inside one cooldown.
	for i := 0; i < 20; i++ {
		rt.TryDivide(func() {}) // denied: the condition holds every tick
		*clock = clock.Add(time.Second)
		s.SampleNow()
	}
	rec.wg.Wait()
	if got := rec.Incidents(); got != 1 {
		t.Fatalf("sustained burn inside one cooldown: %d bundles, want exactly 1", got)
	}

	// Crossing the cooldown boundary allows exactly one more.
	*clock = clock.Add(2 * time.Minute)
	rt.TryDivide(func() {})
	s.SampleNow()
	rec.wg.Wait()
	if got := rec.Incidents(); got != 2 {
		t.Fatalf("after cooldown expiry: %d bundles, want 2", got)
	}
	ms := LoadManifests(rec.Dir())
	if len(ms) != 2 {
		t.Fatalf("resident bundles = %d, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Trigger != TriggerThrottleEdge {
			t.Errorf("trigger = %q, want %q", m.Trigger, TriggerThrottleEdge)
		}
		if m.Reason == "" {
			t.Errorf("bundle %s has no reason", m.ID)
		}
		if m.CooldownS != 60 {
			t.Errorf("cooldown_s = %g, want 60", m.CooldownS)
		}
	}
	if ms[0].Seq >= ms[1].Seq {
		t.Errorf("sequence not monotonic: %d then %d", ms[0].Seq, ms[1].Seq)
	}
}

// TestBundleContents checks a captured bundle is self-contained:
// manifest + rollup + trace + heap profile + goroutine dump (CPU
// profile disabled here; the capstress staged-burn scenario and the CI
// smoke cover the real burst).
func TestBundleContents(t *testing.T) {
	tr := captrace.New(4, 1024)
	rt, err := capsule.NewValidated(capsule.Config{
		Contexts: 2, Throttle: true, DeathWindow: time.Hour, DeathThreshold: 1,
		Tracer: tr,
	})
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	t.Cleanup(rt.Close)
	rec, s, clock := testRecorder(t, rt, Config{Source: "unit"})
	tripThrottle(t, rt)
	s.SampleNow()
	rt.TryDivide(func() {})
	*clock = clock.Add(time.Second)
	s.SampleNow()
	rec.wg.Wait()

	ms := LoadManifests(rec.Dir())
	if len(ms) != 1 {
		t.Fatalf("bundles = %d, want 1", len(ms))
	}
	m := ms[0]
	if m.Source != "unit" {
		t.Errorf("source = %q", m.Source)
	}
	for _, want := range []string{FileWatch, FileTrace, FileHeap, FileGoroutines} {
		found := false
		for _, f := range m.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest files %v missing %s", m.Files, want)
		}
	}
	b, err := LoadBundle(filepath.Join(rec.Dir(), m.ID))
	if err != nil {
		t.Fatalf("LoadBundle: %v", err)
	}
	var rep capwatch.Report
	if err := json.Unmarshal(b.Watch, &rep); err != nil {
		t.Fatalf("watch.json: %v", err)
	}
	if rep.Source != "test" {
		t.Errorf("rollup source = %q", rep.Source)
	}
	snaps, err := captrace.DecodeSnapshots(strings.NewReader(string(b.Trace)))
	if err != nil {
		t.Fatalf("trace.json: %v", err)
	}
	if len(snaps) != 1 || len(snaps[0].Events) == 0 {
		t.Errorf("trace snapshot empty (the divisions above were traced)")
	}
	if len(b.HeapProfile) == 0 {
		t.Errorf("no heap profile")
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Errorf("goroutine dump looks empty: %q", b.Goroutines[:min(80, len(b.Goroutines))])
	}
	if b.Manifest.SLO.TargetP99MS <= 0 {
		t.Errorf("manifest SLO block missing: %+v", b.Manifest.SLO)
	}
}

// TestPruneAndRestart: the on-disk ring holds MaxBundles, survives a
// recorder restart, and the sequence keeps climbing past pruned ids.
func TestPruneAndRestart(t *testing.T) {
	rt := newThrottledRuntime(t)
	dir := t.TempDir()
	rec, s, clock := testRecorder(t, rt, Config{Dir: dir, MaxBundles: 2, Cooldown: time.Second})
	tripThrottle(t, rt)
	s.SampleNow()
	for i := 0; i < 4; i++ {
		rt.TryDivide(func() {})
		*clock = clock.Add(2 * time.Second)
		s.SampleNow()
		rec.wg.Wait()
	}
	if got := rec.Incidents(); got != 4 {
		t.Fatalf("incidents = %d, want 4", got)
	}
	ms := LoadManifests(dir)
	if len(ms) != 2 {
		t.Fatalf("resident = %d, want 2 after prune", len(ms))
	}
	if ms[0].Seq != 2 || ms[1].Seq != 3 {
		t.Fatalf("pruned wrong end: kept seqs %d,%d want 2,3", ms[0].Seq, ms[1].Seq)
	}
	rec.Close()

	// A new recorder over the same dir indexes the survivors and
	// continues the sequence — restarts don't recycle bundle ids.
	rec2, err := New(Config{Dir: dir, Runtime: rt, MaxBundles: 2})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if rec2.seq != 4 {
		t.Fatalf("restart seq = %d, want 4", rec2.seq)
	}
	if got := len(LoadManifests(dir)); got != 2 {
		t.Fatalf("restart lost bundles: %d", got)
	}
	// Torn temp dirs from a crash are swept.
	os.MkdirAll(filepath.Join(dir, ".tmp-inc-000099-x-1"), 0o755)
	if _, err := New(Config{Dir: dir, Runtime: rt}); err != nil {
		t.Fatalf("New over torn dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-inc-000099-x-1")); !os.IsNotExist(err) {
		t.Errorf("torn temp dir not swept")
	}
}

// TestHandler pins the /debug/incident contract: object for one
// recorder, array for a fleet, ?id= fetch, DELETE semantics, and
// DecodeLists reading both shapes.
func TestHandler(t *testing.T) {
	rt := newThrottledRuntime(t)
	rec, s, clock := testRecorder(t, rt, Config{Source: "alpha", Cooldown: time.Second})
	tripThrottle(t, rt)
	s.SampleNow()
	rt.TryDivide(func() {})
	*clock = clock.Add(2 * time.Second)
	s.SampleNow()
	rec.wg.Wait()
	if rec.Incidents() != 1 {
		t.Fatalf("want 1 incident, got %d", rec.Incidents())
	}

	other, err := New(Config{Dir: t.TempDir(), Runtime: rt, Source: "beta"})
	if err != nil {
		t.Fatalf("second recorder: %v", err)
	}

	// Single recorder: object shape.
	w := httptest.NewRecorder()
	Handler(rec).ServeHTTP(w, httptest.NewRequest("GET", "/debug/incident", nil))
	body := w.Body.Bytes()
	if body[0] == '[' {
		t.Fatalf("single recorder served an array")
	}
	lists, err := DecodeLists(body)
	if err != nil {
		t.Fatalf("DecodeLists(object): %v", err)
	}
	if len(lists) != 1 || lists[0].Source != "alpha" || len(lists[0].Bundles) != 1 {
		t.Fatalf("bad list: %+v", lists)
	}
	id := lists[0].Bundles[0].ID

	// Fleet: array shape, own list first.
	w = httptest.NewRecorder()
	Handler(rec, other).ServeHTTP(w, httptest.NewRequest("GET", "/debug/incident", nil))
	if w.Body.Bytes()[0] != '[' {
		t.Fatalf("fleet handler did not serve an array")
	}
	lists, err = DecodeLists(w.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeLists(array): %v", err)
	}
	if len(lists) != 2 || lists[0].Source != "alpha" || lists[1].Source != "beta" {
		t.Fatalf("bad fleet lists: %+v", lists)
	}

	// Fetch one bundle by id through the merged handler.
	w = httptest.NewRecorder()
	Handler(other, rec).ServeHTTP(w, httptest.NewRequest("GET", "/debug/incident?id="+id, nil))
	if w.Code != 200 {
		t.Fatalf("fetch %s: %d %s", id, w.Code, w.Body.String())
	}
	var b Bundle
	if err := json.Unmarshal(w.Body.Bytes(), &b); err != nil {
		t.Fatalf("bundle decode: %v", err)
	}
	if b.Manifest.ID != id || len(b.Trace) == 0 {
		t.Fatalf("bundle incomplete: %+v", b.Manifest)
	}

	// Unknown id: 404. Path escapes: rejected.
	w = httptest.NewRecorder()
	Handler(rec).ServeHTTP(w, httptest.NewRequest("GET", "/debug/incident?id=inc-nope", nil))
	if w.Code != 404 {
		t.Fatalf("unknown id: %d", w.Code)
	}
	w = httptest.NewRecorder()
	Handler(rec).ServeHTTP(w, httptest.NewRequest("GET", "/debug/incident?id=../../etc", nil))
	if w.Code != 404 {
		t.Fatalf("traversal id: %d", w.Code)
	}

	// DELETE clears; list is then empty but incidents_total persists.
	w = httptest.NewRecorder()
	Handler(rec, other).ServeHTTP(w, httptest.NewRequest("DELETE", "/debug/incident", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "\"cleared\":1") {
		t.Fatalf("delete: %d %s", w.Code, w.Body.String())
	}
	if got := len(LoadManifests(rec.Dir())); got != 0 {
		t.Fatalf("bundles survive DELETE: %d", got)
	}
	if rec.Incidents() != 1 {
		t.Fatalf("incident counter reset by DELETE")
	}
}
