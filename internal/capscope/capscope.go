// Package capscope is the incident-capture leg of the observability
// story — a black-box flight recorder for the fleet. The other three
// legs are ephemeral by design: /metrics is a point-in-time scrape,
// captrace rings rotate, capwatch windows slide. By the time an
// operator opens captop, the interesting 30 seconds are usually gone.
// capscope arms *triggers* on the signals those layers already compute
// and, the moment one fires, atomically captures a self-contained
// incident bundle — the capwatch rollup (burn rates, p99s), a captrace
// ring snapshot, a short CPU profile burst, heap profile, goroutine
// dump, build identity, the live capfault rule set and (on a router)
// the per-backend credit/breaker table — into a bounded on-disk ring
// of bundles that survives process restarts and graceful drains.
//
// The steady-state cost discipline matches captrace and capfault: a
// recorder that is not armed costs the process nothing, and an armed
// recorder costs the *sampling tick* (not any hot path) one atomic
// pointer load plus a handful of counter reads per second — the
// capwatch hook it rides on is copy-on-write, and every signal it
// evaluates is a read of counters the hot paths already maintain
// (McKenney's split, fourth application in this repo: writers never
// know the reader exists). The incident_overhead twins in capstress
// hold the probe paths to the same ≤2% ceiling as trace/watch/fault.
//
// Debounce: triggers are level- or edge-evaluated once per tick, and
// each trigger carries a cooldown — a sustained burn yields one bundle
// per cooldown, not one per tick. Captures run asynchronously (a CPU
// profile burst takes ProfileDuration); an in-flight capture causes
// concurrent trigger firings to be skipped, never queued.
package capscope

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capcluster"
	"repro/internal/capfault"
	"repro/internal/capserve"
	"repro/internal/capsule"
	"repro/internal/captrace"
	"repro/internal/capwatch"
)

// Defaults.
const (
	DefaultMaxBundles      = 8
	DefaultCooldown        = time.Minute
	DefaultProfileDuration = 250 * time.Millisecond
	DefaultTraceEvents     = 4096
	DefaultShedStormPerSec = 5.0
)

// Trigger names, recorded in every bundle manifest. One per anomaly
// class across the three tiers.
const (
	TriggerSLOExhausted = "slo_budget_exhausted" // capwatch: fast ∧ slow burn ≥ 1
	TriggerThrottleEdge = "throttle_edge"        // capsule: death-rate throttle denying divisions
	TriggerShedStorm    = "shed_storm"           // capserve: queue-full 503 rate over threshold
	TriggerBreakerTrip  = "breaker_trip"         // capcluster: a backend's breaker opened
	TriggerSlowEjection = "slow_ejection"        // capcluster: latency-based backend ejection
)

// Config parameterises a Recorder. Dir and Runtime are required;
// Server, Router and Fault widen both the trigger set and the bundle.
type Config struct {
	// Source names this recorder's bundles (manifest + merged
	// /debug/incident responses). Default: "capscope".
	Source string

	// Dir is the bundle directory. Created if absent; existing bundles
	// are indexed so the ring survives restarts. Required.
	Dir string

	// MaxBundles bounds the on-disk ring: when a capture would exceed
	// it, the oldest bundles are pruned. Default: DefaultMaxBundles.
	MaxBundles int

	// Cooldown is the per-trigger debounce: after a trigger fires, it
	// cannot fire again for this long. Default: DefaultCooldown.
	Cooldown time.Duration

	// ProfileDuration bounds the CPU profile burst inside a capture.
	// 0 means DefaultProfileDuration; negative disables the CPU
	// profile (tests, and any process that cannot spare the burst).
	ProfileDuration time.Duration

	// TraceEvents caps the captrace events snapshotted into a bundle.
	// Default: DefaultTraceEvents.
	TraceEvents int

	// ShedStormPerSec is the queue-full 503 rate (per second, measured
	// tick-over-tick) at or above which the shed_storm trigger fires.
	// Default: DefaultShedStormPerSec. Negative disables the trigger.
	ShedStormPerSec float64

	// Runtime is the capsule runtime: throttle-edge trigger plus the
	// default Tracer. Required.
	Runtime *capsule.Runtime

	// Server, when set, arms the shed_storm trigger.
	Server *capserve.Server

	// Router, when set, arms breaker_trip / slow_ejection and adds the
	// per-backend table to every bundle.
	Router *capcluster.Router

	// Tracer overrides the ring snapshotted into bundles. Default:
	// Runtime.Tracer().
	Tracer *captrace.Tracer

	// Fault, when set, records the live rule set in every bundle — an
	// incident caused by a staged storm says so in the artifact.
	Fault *capfault.Injector
}

// Validate reports whether cfg can build a Recorder.
func (cfg Config) Validate() error {
	if cfg.Dir == "" {
		return fmt.Errorf("capscope: Config.Dir is required")
	}
	if cfg.Runtime == nil {
		return fmt.Errorf("capscope: Config.Runtime is required")
	}
	if cfg.MaxBundles < 0 {
		return fmt.Errorf("capscope: MaxBundles must be >= 0 (0 means %d), got %d", DefaultMaxBundles, cfg.MaxBundles)
	}
	if cfg.Cooldown < 0 {
		return fmt.Errorf("capscope: Cooldown must be >= 0 (0 means %v), got %v", DefaultCooldown, cfg.Cooldown)
	}
	return nil
}

// Recorder owns the trigger loop and the on-disk bundle ring. Build
// with New, attach to a sampler with Arm, detach with Close.
type Recorder struct {
	cfg      Config
	source   string
	dir      string
	max      int
	cooldown time.Duration
	profDur  time.Duration
	traceN   int
	shedRate float64
	tracer   *captrace.Tracer

	sampler *capwatch.Sampler

	// now is the clock, swappable in tests so cooldown semantics are
	// provable without sleeping.
	now func() time.Time

	// Trigger state. Only the observe goroutine (the sampler tick)
	// touches it, so it needs no lock.
	primed       bool
	lastObserve  time.Time
	lastFire     map[string]time.Time
	prevThrottle uint64
	prevSheds    uint64
	prevBackends []capcluster.BackendCounters
	curBackends  []capcluster.BackendCounters

	// mu serializes disk mutation: capture-rename + prune vs DELETE.
	mu  sync.Mutex
	seq uint64 // next bundle sequence (monotonic across restarts)

	inflight  atomic.Bool
	incidents atomic.Uint64 // captures completed since process start
	errors    atomic.Uint64 // captures that failed to land

	wg sync.WaitGroup // outstanding capture goroutines
}

// cpuProfMu serializes CPU profiling process-wide: the runtime allows
// one CPU profile at a time, and a router plus its spawned backends'
// recorders share one process.
var cpuProfMu sync.Mutex

// New builds a Recorder: creates Dir, sweeps torn temp dirs from a
// previous crash, indexes surviving bundles (the sequence continues
// past them) and prunes down to MaxBundles.
func New(cfg Config) (*Recorder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Recorder{
		cfg:      cfg,
		source:   cfg.Source,
		dir:      cfg.Dir,
		max:      cfg.MaxBundles,
		cooldown: cfg.Cooldown,
		profDur:  cfg.ProfileDuration,
		traceN:   cfg.TraceEvents,
		shedRate: cfg.ShedStormPerSec,
		tracer:   cfg.Tracer,
		now:      time.Now,
		lastFire: make(map[string]time.Time),
	}
	if r.source == "" {
		r.source = "capscope"
	}
	if r.max == 0 {
		r.max = DefaultMaxBundles
	}
	if r.cooldown == 0 {
		r.cooldown = DefaultCooldown
	}
	if r.profDur == 0 {
		r.profDur = DefaultProfileDuration
	}
	if r.traceN == 0 {
		r.traceN = DefaultTraceEvents
	}
	if r.shedRate == 0 {
		r.shedRate = DefaultShedStormPerSec
	}
	if r.tracer == nil {
		r.tracer = cfg.Runtime.Tracer()
	}
	if cfg.Router != nil {
		n := len(cfg.Router.BackendNames())
		r.prevBackends = make([]capcluster.BackendCounters, n)
		r.curBackends = make([]capcluster.BackendCounters, n)
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return nil, fmt.Errorf("capscope: creating bundle dir: %w", err)
	}
	sweepTemp(r.dir)
	for _, m := range LoadManifests(r.dir) {
		if m.Seq >= r.seq {
			r.seq = m.Seq + 1
		}
	}
	r.mu.Lock()
	r.pruneLocked()
	r.mu.Unlock()
	return r, nil
}

// Source returns the recorder's bundle label.
func (r *Recorder) Source() string { return r.source }

// Dir returns the bundle directory.
func (r *Recorder) Dir() string { return r.dir }

// Incidents returns the number of bundles captured since process
// start (survivors from earlier runs are listed but not counted here —
// this is the counter behind capscope_incidents_total).
func (r *Recorder) Incidents() uint64 { return r.incidents.Load() }

// Arm attaches the recorder to a sampler: the trigger loop runs after
// every published snapshot, and the sampler's reports carry the
// incident count. Call Close before arming on another sampler.
func (r *Recorder) Arm(s *capwatch.Sampler) {
	r.sampler = s
	s.SetIncidents(r.Incidents)
	s.OnSample(r.observe)
}

// Close detaches the recorder from its sampler and waits for any
// in-flight capture to land. The bundle directory stays readable.
func (r *Recorder) Close() {
	if s := r.sampler; s != nil {
		s.OnSample(nil)
	}
	r.wg.Wait()
}

// observe is the trigger loop, run once per sampler tick. The first
// tick only primes the previous-counter state: cumulative counters
// predate the recorder, and arming must not fire on history.
func (r *Recorder) observe() {
	now := r.now()
	stats := r.cfg.Runtime.Stats()
	var sheds uint64
	if r.cfg.Server != nil {
		sheds = r.cfg.Server.ShedCount()
	}
	if r.cfg.Router != nil {
		r.cfg.Router.ReadBackendCounters(r.curBackends)
	}
	if !r.primed {
		r.primed = true
		r.lastObserve = now
		r.prevThrottle = stats.ThrottleDenies
		r.prevSheds = sheds
		copy(r.prevBackends, r.curBackends)
		return
	}
	elapsed := now.Sub(r.lastObserve).Seconds()

	trigger, reason := "", ""
	var slo capwatch.SLOReport
	if r.sampler != nil {
		slo = r.sampler.SLO()
	}
	switch {
	case slo.Exhausted:
		trigger = TriggerSLOExhausted
		reason = fmt.Sprintf("error budget exhausted: fast burn %.2f and slow burn %.2f both >= 1 (availability %.4f, p99 %.1fms vs target %.0fms)",
			slo.Fast.Burn, slo.Slow.Burn, slo.Fast.Availability, slo.Fast.P99MS, slo.TargetP99MS)
	case r.brokeBackend() >= 0:
		i := r.brokeBackend()
		trigger = TriggerBreakerTrip
		reason = fmt.Sprintf("backend %s circuit breaker opened", r.backendName(i))
	case r.ejectedBackend() >= 0:
		i := r.ejectedBackend()
		trigger = TriggerSlowEjection
		d := r.curBackends[i].Ejections - r.prevBackends[i].Ejections
		reason = fmt.Sprintf("backend %s ejected as slow (%d ejection(s) this tick)", r.backendName(i), d)
	case r.shedRate >= 0 && elapsed > 0 && float64(sheds-r.prevSheds)/elapsed >= r.shedRate:
		trigger = TriggerShedStorm
		reason = fmt.Sprintf("queue-full 503s at %.1f/s >= %.1f/s threshold", float64(sheds-r.prevSheds)/elapsed, r.shedRate)
	case stats.ThrottleDenies > r.prevThrottle:
		trigger = TriggerThrottleEdge
		reason = fmt.Sprintf("death-rate throttle denied %d division(s) this tick (%d deaths total)",
			stats.ThrottleDenies-r.prevThrottle, stats.Deaths)
	}

	if trigger != "" {
		if last, ok := r.lastFire[trigger]; !ok || now.Sub(last) >= r.cooldown {
			if r.inflight.CompareAndSwap(false, true) {
				r.lastFire[trigger] = now
				r.wg.Add(1)
				go func() {
					defer r.wg.Done()
					defer r.inflight.Store(false)
					r.capture(trigger, reason, slo, now)
				}()
			}
		}
	}

	r.lastObserve = now
	r.prevThrottle = stats.ThrottleDenies
	r.prevSheds = sheds
	copy(r.prevBackends, r.curBackends)
}

// brokeBackend returns the index of a backend whose breaker opened
// this tick, or -1.
func (r *Recorder) brokeBackend() int {
	for i := range r.curBackends {
		if r.curBackends[i].Broken && !r.prevBackends[i].Broken {
			return i
		}
	}
	return -1
}

// ejectedBackend returns the index of a backend ejected as slow this
// tick, or -1.
func (r *Recorder) ejectedBackend() int {
	for i := range r.curBackends {
		if r.curBackends[i].Ejections > r.prevBackends[i].Ejections {
			return i
		}
	}
	return -1
}

func (r *Recorder) backendName(i int) string {
	if r.cfg.Router == nil {
		return fmt.Sprintf("#%d", i)
	}
	names := r.cfg.Router.BackendNames()
	if i < 0 || i >= len(names) {
		return fmt.Sprintf("#%d", i)
	}
	return names[i]
}

// WriteMetrics emits the capscope_* exposition; wire it into a
// server's /metrics with AddMetrics. capscope_incidents_total is the
// gauge captop's inc column rides on.
func (r *Recorder) WriteMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP capscope_incidents_total Incident bundles captured since process start.\n# TYPE capscope_incidents_total counter\ncapscope_incidents_total %d\n", r.incidents.Load())
	fmt.Fprintf(w, "# HELP capscope_capture_errors_total Incident captures that failed to land on disk.\n# TYPE capscope_capture_errors_total counter\ncapscope_capture_errors_total %d\n", r.errors.Load())
	fmt.Fprintf(w, "# HELP capscope_bundles Incident bundles resident in the on-disk ring.\n# TYPE capscope_bundles gauge\ncapscope_bundles %d\n", len(LoadManifests(r.dir)))
}

// pruneLocked removes the oldest bundles past MaxBundles. Callers
// hold r.mu.
func (r *Recorder) pruneLocked() {
	ms := LoadManifests(r.dir)
	for len(ms) > r.max {
		os.RemoveAll(filepath.Join(r.dir, ms[0].ID))
		ms = ms[1:]
	}
}

// sweepTemp removes half-written capture dirs left by a crash.
func sweepTemp(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
}
