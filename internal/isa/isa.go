// Package isa defines the instruction set of the CAPSULE reproduction: a
// 64-bit RISC-style ISA augmented with the paper's component instructions
// (nthr, kthr, mlock, munlock) and the group-count extension (tcnt, join).
//
// The ISA is deliberately close to the Alpha subset the paper's GCC-based
// toolchain would have emitted: 31 general integer registers plus a zero
// register, 31 floating-point registers, fixed 4-byte instruction slots for
// I-cache purposes, and simple reg/reg and reg/imm operations. Instructions
// are represented structurally (no binary encoding) because the simulator
// consumes decoded instructions directly.
package isa

import "fmt"

// InstBytes is the architectural size of one instruction slot. The
// instruction cache models fetch in terms of this size (8 instructions per
// 32-byte line, as in the paper's fetch description).
const InstBytes = 4

// WordBytes is the architectural word size.
const WordBytes = 8

// NumIntRegs and NumFPRegs give the architectural register file sizes.
// Register 0 of the integer file is hardwired to zero, so there are 31
// writable integer registers and 31 writable FP registers plus the PC — the
// 62 registers + PC that the paper copies on division and swaps to the
// context stack.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Reg is an architectural register number. Integer registers are 0..31;
// floating-point registers are also numbered 0..31 but live in a separate
// file (the instruction opcode determines which file an operand names).
type Reg uint8

// ABI register assignments. CapC-generated code and the capsule runtime
// follow this convention.
const (
	RegZero Reg = 0 // hardwired zero
	RegA0   Reg = 1 // first argument / return value
	RegA1   Reg = 2
	RegA2   Reg = 3
	RegA3   Reg = 4
	RegA4   Reg = 5
	RegA5   Reg = 6
	RegA6   Reg = 7
	RegA7   Reg = 8 // last argument register
	RegT0   Reg = 9 // caller-saved temporaries t0..t11 = r9..r20
	RegT11  Reg = 20
	RegS0   Reg = 21 // callee-saved s0..s6 = r21..r27
	RegS6   Reg = 27
	RegGP   Reg = 28 // global pointer (reserved, currently unused)
	RegRA   Reg = 29 // return address
	RegSP   Reg = 30 // stack pointer
	RegTP   Reg = 31 // thread pointer (capsule runtime scratch)
)

// intRegNames maps integer registers to their ABI names.
var intRegNames = [NumIntRegs]string{
	"zero", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6",
	"gp", "ra", "sp", "tp",
}

// IntRegName returns the ABI name of integer register r.
func IntRegName(r Reg) string {
	if int(r) < len(intRegNames) {
		return intRegNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// FPRegName returns the name of floating-point register r.
func FPRegName(r Reg) string { return fmt.Sprintf("f%d", r) }

// IntRegByName resolves an ABI register name ("a0", "sp", "r17", ...) to a
// register number. The second result reports whether the name is known.
func IntRegByName(name string) (Reg, bool) {
	for i, n := range intRegNames {
		if n == name {
			return Reg(i), true
		}
	}
	var r int
	if _, err := fmt.Sscanf(name, "r%d", &r); err == nil && r >= 0 && r < NumIntRegs {
		return Reg(r), true
	}
	return 0, false
}

// FPRegByName resolves "f0".."f31".
func FPRegByName(name string) (Reg, bool) {
	var r int
	if _, err := fmt.Sscanf(name, "f%d", &r); err == nil && r >= 0 && r < NumFPRegs {
		return Reg(r), true
	}
	return 0, false
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The groups matter to the timing model: it maps each opcode
// to a functional-unit class and latency via Class().
const (
	OpInvalid Op = iota

	// Integer register-register ALU.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Integer register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui // rd = imm << 16 (used with Ori to build constants)

	// Memory.
	OpLd // load 64-bit word
	OpSd // store 64-bit word
	OpLb // load byte (zero-extended)
	OpSb // store byte
	OpFld
	OpFsd

	// Control flow. Target is an instruction index (resolved by the linker).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJ    // unconditional jump
	OpJal  // jump and link (rd = return PC), direct target
	OpJalr // jump and link register (target = rs1 + imm)

	// Floating point (operands in the FP file).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFneg
	OpFlt // rd(int) = fs1 < fs2
	OpFle
	OpFeq
	OpFcvtIF // fd = float64(rs1)
	OpFcvtFI // rd = int64(fs1), truncating
	OpFmvIF  // fd = bits(rs1)  (raw move int file -> fp file)
	OpFmvFI  // rd = bits(fs1)  (raw move fp file -> int file)

	// CAPSULE component instructions (Section 3.1 of the paper).
	OpNthr    // rd = -1 denied, 0 parent, 1 child; child resumes after nthr
	OpKthr    // terminate this worker thread
	OpMlock   // acquire hardware lock on address in rs1 (stalls if held)
	OpMunlock // release hardware lock on address in rs1
	OpTcnt    // rd = live thread count of this worker's group (extension)
	OpJoin    // stall until this worker's group live count == 1 (extension)

	// Simulator services.
	OpHalt  // stop the whole machine (program exit)
	OpPrint // debug print of rs1 (written to the machine's output buffer)
	OpNop

	opMax
)

// Class is the functional-unit class an instruction executes on.
type Class uint8

const (
	ClassIALU Class = iota
	ClassIMult
	ClassFPALU
	ClassFPMult
	ClassMem
	ClassCtrl // branches and jumps execute on the IALU pool
	ClassSys  // nthr/kthr/locks/halt: single-issue system class
)

// instMeta captures static properties of an opcode.
type instMeta struct {
	name    string
	class   Class
	latency int  // execution latency in cycles (memory ops: address gen only)
	branch  bool // conditional branch
	jump    bool // unconditional control transfer
	load    bool
	store   bool
	fp      bool // results/operands in the FP file (see opFPOperands)
}

var meta = [opMax]instMeta{
	OpInvalid: {name: "invalid", class: ClassIALU, latency: 1},

	OpAdd:  {name: "add", class: ClassIALU, latency: 1},
	OpSub:  {name: "sub", class: ClassIALU, latency: 1},
	OpMul:  {name: "mul", class: ClassIMult, latency: 3},
	OpDiv:  {name: "div", class: ClassIMult, latency: 12},
	OpRem:  {name: "rem", class: ClassIMult, latency: 12},
	OpAnd:  {name: "and", class: ClassIALU, latency: 1},
	OpOr:   {name: "or", class: ClassIALU, latency: 1},
	OpXor:  {name: "xor", class: ClassIALU, latency: 1},
	OpSll:  {name: "sll", class: ClassIALU, latency: 1},
	OpSrl:  {name: "srl", class: ClassIALU, latency: 1},
	OpSra:  {name: "sra", class: ClassIALU, latency: 1},
	OpSlt:  {name: "slt", class: ClassIALU, latency: 1},
	OpSltu: {name: "sltu", class: ClassIALU, latency: 1},

	OpAddi: {name: "addi", class: ClassIALU, latency: 1},
	OpAndi: {name: "andi", class: ClassIALU, latency: 1},
	OpOri:  {name: "ori", class: ClassIALU, latency: 1},
	OpXori: {name: "xori", class: ClassIALU, latency: 1},
	OpSlli: {name: "slli", class: ClassIALU, latency: 1},
	OpSrli: {name: "srli", class: ClassIALU, latency: 1},
	OpSrai: {name: "srai", class: ClassIALU, latency: 1},
	OpSlti: {name: "slti", class: ClassIALU, latency: 1},
	OpLui:  {name: "lui", class: ClassIALU, latency: 1},

	OpLd:  {name: "ld", class: ClassMem, latency: 1, load: true},
	OpSd:  {name: "sd", class: ClassMem, latency: 1, store: true},
	OpLb:  {name: "lb", class: ClassMem, latency: 1, load: true},
	OpSb:  {name: "sb", class: ClassMem, latency: 1, store: true},
	OpFld: {name: "fld", class: ClassMem, latency: 1, load: true, fp: true},
	OpFsd: {name: "fsd", class: ClassMem, latency: 1, store: true, fp: true},

	OpBeq:  {name: "beq", class: ClassCtrl, latency: 1, branch: true},
	OpBne:  {name: "bne", class: ClassCtrl, latency: 1, branch: true},
	OpBlt:  {name: "blt", class: ClassCtrl, latency: 1, branch: true},
	OpBge:  {name: "bge", class: ClassCtrl, latency: 1, branch: true},
	OpBltu: {name: "bltu", class: ClassCtrl, latency: 1, branch: true},
	OpBgeu: {name: "bgeu", class: ClassCtrl, latency: 1, branch: true},
	OpJ:    {name: "j", class: ClassCtrl, latency: 1, jump: true},
	OpJal:  {name: "jal", class: ClassCtrl, latency: 1, jump: true},
	OpJalr: {name: "jalr", class: ClassCtrl, latency: 1, jump: true},

	OpFadd:   {name: "fadd", class: ClassFPALU, latency: 2, fp: true},
	OpFsub:   {name: "fsub", class: ClassFPALU, latency: 2, fp: true},
	OpFmul:   {name: "fmul", class: ClassFPMult, latency: 4, fp: true},
	OpFdiv:   {name: "fdiv", class: ClassFPMult, latency: 12, fp: true},
	OpFsqrt:  {name: "fsqrt", class: ClassFPMult, latency: 18, fp: true},
	OpFneg:   {name: "fneg", class: ClassFPALU, latency: 1, fp: true},
	OpFlt:    {name: "flt", class: ClassFPALU, latency: 2, fp: true},
	OpFle:    {name: "fle", class: ClassFPALU, latency: 2, fp: true},
	OpFeq:    {name: "feq", class: ClassFPALU, latency: 2, fp: true},
	OpFcvtIF: {name: "fcvt.d.l", class: ClassFPALU, latency: 2, fp: true},
	OpFcvtFI: {name: "fcvt.l.d", class: ClassFPALU, latency: 2, fp: true},
	OpFmvIF:  {name: "fmv.d.x", class: ClassFPALU, latency: 1, fp: true},
	OpFmvFI:  {name: "fmv.x.d", class: ClassFPALU, latency: 1, fp: true},

	OpNthr:    {name: "nthr", class: ClassSys, latency: 1},
	OpKthr:    {name: "kthr", class: ClassSys, latency: 1},
	OpMlock:   {name: "mlock", class: ClassSys, latency: 1},
	OpMunlock: {name: "munlock", class: ClassSys, latency: 1},
	OpTcnt:    {name: "tcnt", class: ClassSys, latency: 1},
	OpJoin:    {name: "join", class: ClassSys, latency: 1},

	OpHalt:  {name: "halt", class: ClassSys, latency: 1},
	OpPrint: {name: "print", class: ClassSys, latency: 1},
	OpNop:   {name: "nop", class: ClassIALU, latency: 1},
}

// Name returns the assembler mnemonic for op.
func (op Op) Name() string { return meta[op].name }

// Class returns the functional-unit class.
func (op Op) Class() Class { return meta[op].class }

// Latency returns the execution latency in cycles. Loads add cache latency
// on top.
func (op Op) Latency() int { return meta[op].latency }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return meta[op].branch }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return meta[op].jump }

// IsControl reports whether op redirects the PC (branch or jump).
func (op Op) IsControl() bool { return meta[op].branch || meta[op].jump }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return meta[op].load }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return meta[op].store }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return meta[op].load || meta[op].store }

// IsFP reports whether op touches the floating-point register file.
func (op Op) IsFP() bool { return meta[op].fp }

// Inst is one decoded instruction. PCs and branch targets are instruction
// indices into the program text (multiply by InstBytes for a byte address).
type Inst struct {
	Op   Op
	Rd   Reg   // destination register (int or fp file depending on Op)
	Rs1  Reg   // first source
	Rs2  Reg   // second source
	Imm  int64 // immediate / memory displacement
	Targ int32 // control-flow target (instruction index), -1 when unused

	// Sym is the unresolved symbol for Targ or Imm, used by the assembler
	// and linker; it is empty in fully linked programs.
	Sym string
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	t := func() string {
		if in.Sym != "" {
			return in.Sym
		}
		return fmt.Sprintf("%d", in.Targ)
	}
	ir, fr := IntRegName, FPRegName
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu:
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), ir(in.Rd), ir(in.Rs1), ir(in.Rs2))
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
		return fmt.Sprintf("%s %s, %s, %d", in.Op.Name(), ir(in.Rd), ir(in.Rs1), in.Imm)
	case OpLui:
		return fmt.Sprintf("lui %s, %d", ir(in.Rd), in.Imm)
	case OpLd, OpLb:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op.Name(), ir(in.Rd), in.Imm, ir(in.Rs1))
	case OpSd, OpSb:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op.Name(), ir(in.Rs2), in.Imm, ir(in.Rs1))
	case OpFld:
		return fmt.Sprintf("fld %s, %d(%s)", fr(in.Rd), in.Imm, ir(in.Rs1))
	case OpFsd:
		return fmt.Sprintf("fsd %s, %d(%s)", fr(in.Rs2), in.Imm, ir(in.Rs1))
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), ir(in.Rs1), ir(in.Rs2), t())
	case OpJ:
		return fmt.Sprintf("j %s", t())
	case OpJal:
		return fmt.Sprintf("jal %s, %s", ir(in.Rd), t())
	case OpJalr:
		return fmt.Sprintf("jalr %s, %s, %d", ir(in.Rd), ir(in.Rs1), in.Imm)
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), fr(in.Rd), fr(in.Rs1), fr(in.Rs2))
	case OpFsqrt, OpFneg:
		return fmt.Sprintf("%s %s, %s", in.Op.Name(), fr(in.Rd), fr(in.Rs1))
	case OpFlt, OpFle, OpFeq:
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), ir(in.Rd), fr(in.Rs1), fr(in.Rs2))
	case OpFcvtIF, OpFmvIF:
		return fmt.Sprintf("%s %s, %s", in.Op.Name(), fr(in.Rd), ir(in.Rs1))
	case OpFcvtFI, OpFmvFI:
		return fmt.Sprintf("%s %s, %s", in.Op.Name(), ir(in.Rd), fr(in.Rs1))
	case OpNthr, OpTcnt:
		return fmt.Sprintf("%s %s", in.Op.Name(), ir(in.Rd))
	case OpMlock, OpMunlock, OpPrint:
		return fmt.Sprintf("%s %s", in.Op.Name(), ir(in.Rs1))
	case OpKthr, OpJoin, OpHalt, OpNop:
		return in.Op.Name()
	default:
		return fmt.Sprintf("%s ?", in.Op.Name())
	}
}

// OpByName resolves an assembler mnemonic to an opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, opMax)
	for op := Op(1); op < opMax; op++ {
		m[meta[op].name] = op
	}
	return m
}()
