package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNamesRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumIntRegs; r++ {
		name := IntRegName(r)
		got, ok := IntRegByName(name)
		if !ok || got != r {
			t.Fatalf("IntRegByName(%q) = %v, %v; want %v", name, got, ok, r)
		}
	}
	for r := Reg(0); r < NumFPRegs; r++ {
		name := FPRegName(r)
		got, ok := FPRegByName(name)
		if !ok || got != r {
			t.Fatalf("FPRegByName(%q) = %v, %v; want %v", name, got, ok, r)
		}
	}
}

func TestRegByNameNumeric(t *testing.T) {
	if r, ok := IntRegByName("r17"); !ok || r != 17 {
		t.Fatalf("r17 -> %v, %v", r, ok)
	}
	if _, ok := IntRegByName("r99"); ok {
		t.Fatal("r99 should be invalid")
	}
	if _, ok := IntRegByName("bogus"); ok {
		t.Fatal("bogus should be invalid")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		got, ok := OpByName(op.Name())
		if !ok || got != op {
			t.Fatalf("OpByName(%q) = %v, %v; want %v", op.Name(), got, ok, op)
		}
	}
}

func TestOpClassesCoverAllOps(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		if op.Name() == "" {
			t.Fatalf("op %d has no name", op)
		}
		if op.Latency() <= 0 {
			t.Fatalf("op %v has non-positive latency", op)
		}
	}
}

func TestBranchJumpPredicates(t *testing.T) {
	branches := []Op{OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu}
	for _, op := range branches {
		if !op.IsBranch() || op.IsJump() || !op.IsControl() {
			t.Fatalf("%v should be a conditional branch", op)
		}
	}
	jumps := []Op{OpJ, OpJal, OpJalr}
	for _, op := range jumps {
		if op.IsBranch() || !op.IsJump() || !op.IsControl() {
			t.Fatalf("%v should be an unconditional jump", op)
		}
	}
	if OpAdd.IsControl() || OpLd.IsControl() {
		t.Fatal("ALU/memory ops are not control")
	}
}

func TestMemPredicates(t *testing.T) {
	if !OpLd.IsLoad() || OpLd.IsStore() {
		t.Fatal("ld predicates wrong")
	}
	if !OpSd.IsStore() || OpSd.IsLoad() {
		t.Fatal("sd predicates wrong")
	}
	if !OpFld.IsMem() || !OpFsd.IsMem() || OpAdd.IsMem() {
		t.Fatal("IsMem wrong")
	}
}

func TestSourcesSkipZeroReg(t *testing.T) {
	in := Inst{Op: OpAdd, Rd: RegA0, Rs1: RegZero, Rs2: RegA1}
	srcs := in.Sources(nil)
	if len(srcs) != 1 || srcs[0] != IntRef(RegA1) {
		t.Fatalf("sources = %v; want just a1", srcs)
	}
}

func TestDestZeroRegSuppressed(t *testing.T) {
	in := Inst{Op: OpAddi, Rd: RegZero, Rs1: RegA0}
	if _, ok := in.Dest(); ok {
		t.Fatal("write to zero register should report no destination")
	}
	in = Inst{Op: OpJalr, Rd: RegZero, Rs1: RegRA} // ret
	if _, ok := in.Dest(); ok {
		t.Fatal("ret should report no destination")
	}
}

func TestStoreSourcesIncludeValue(t *testing.T) {
	in := Inst{Op: OpSd, Rs1: RegSP, Rs2: RegA0, Imm: 8}
	srcs := in.Sources(nil)
	if len(srcs) != 2 {
		t.Fatalf("store should have 2 sources, got %v", srcs)
	}
}

func TestFPSourcesUseFPFile(t *testing.T) {
	in := Inst{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3}
	srcs := in.Sources(nil)
	for _, s := range srcs {
		if !s.FP {
			t.Fatalf("fadd source %v should be FP", s)
		}
	}
	d, ok := in.Dest()
	if !ok || !d.FP {
		t.Fatalf("fadd dest should be FP, got %v %v", d, ok)
	}
	cmp := Inst{Op: OpFlt, Rd: RegA0, Rs1: 2, Rs2: 3}
	d, ok = cmp.Dest()
	if !ok || d.FP {
		t.Fatalf("flt dest should be integer, got %v %v", d, ok)
	}
}

func TestInstStringStable(t *testing.T) {
	cases := map[string]Inst{
		"add a0, a1, a2":   {Op: OpAdd, Rd: RegA0, Rs1: RegA1, Rs2: RegA2},
		"addi sp, sp, -16": {Op: OpAddi, Rd: RegSP, Rs1: RegSP, Imm: -16},
		"ld a0, 8(sp)":     {Op: OpLd, Rd: RegA0, Rs1: RegSP, Imm: 8},
		"sd a0, 8(sp)":     {Op: OpSd, Rs2: RegA0, Rs1: RegSP, Imm: 8},
		"beq a0, a1, 42":   {Op: OpBeq, Rs1: RegA0, Rs2: RegA1, Targ: 42},
		"nthr t0":          {Op: OpNthr, Rd: RegT0},
		"kthr":             {Op: OpKthr},
		"mlock a0":         {Op: OpMlock, Rs1: RegA0},
		"halt":             {Op: OpHalt},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q; want %q", got, want)
		}
	}
}

// Property: every opcode's Sources/Dest never include the integer zero
// register, for arbitrary register assignments.
func TestQuickNoZeroRegDeps(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8) bool {
		op := Op(opRaw%uint8(opMax-1)) + 1
		in := Inst{Op: op, Rd: Reg(rd % NumIntRegs), Rs1: Reg(rs1 % NumIntRegs), Rs2: Reg(rs2 % NumIntRegs)}
		for _, s := range in.Sources(nil) {
			if !s.FP && s.Reg == RegZero {
				return false
			}
		}
		if d, ok := in.Dest(); ok && !d.FP && d.Reg == RegZero {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
