package isa

// RegRef identifies one register operand: the file it lives in and its
// number. The timing model keys dependence tracking on RegRef.
type RegRef struct {
	FP  bool
	Reg Reg
}

// IntRef and FPRef are convenience constructors.
func IntRef(r Reg) RegRef { return RegRef{FP: false, Reg: r} }
func FPRef(r Reg) RegRef  { return RegRef{FP: true, Reg: r} }

// Sources appends the architectural source registers of in to dst and
// returns the extended slice. The integer zero register is skipped (it is
// never a real dependence).
func (in Inst) Sources(dst []RegRef) []RegRef {
	addInt := func(r Reg) {
		if r != RegZero {
			dst = append(dst, IntRef(r))
		}
	}
	addFP := func(r Reg) { dst = append(dst, FPRef(r)) }
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu:
		addInt(in.Rs1)
		addInt(in.Rs2)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
		addInt(in.Rs1)
	case OpLui, OpNthr, OpTcnt, OpNop, OpKthr, OpJoin, OpHalt, OpJ:
		// no register sources
	case OpLd, OpLb, OpFld:
		addInt(in.Rs1)
	case OpSd, OpSb:
		addInt(in.Rs1)
		addInt(in.Rs2)
	case OpFsd:
		addInt(in.Rs1)
		addFP(in.Rs2)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		addInt(in.Rs1)
		addInt(in.Rs2)
	case OpJal:
		// direct call: no sources
	case OpJalr:
		addInt(in.Rs1)
	case OpFadd, OpFsub, OpFmul, OpFdiv, OpFlt, OpFle, OpFeq:
		addFP(in.Rs1)
		addFP(in.Rs2)
	case OpFsqrt, OpFneg, OpFcvtFI, OpFmvFI:
		addFP(in.Rs1)
	case OpFcvtIF, OpFmvIF:
		addInt(in.Rs1)
	case OpMlock, OpMunlock, OpPrint:
		addInt(in.Rs1)
	}
	return dst
}

// Dest returns the architectural destination register of in, if any.
func (in Inst) Dest() (RegRef, bool) {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpLui,
		OpLd, OpLb, OpNthr, OpTcnt,
		OpFlt, OpFle, OpFeq, OpFcvtFI, OpFmvFI:
		if in.Rd == RegZero {
			return RegRef{}, false
		}
		return IntRef(in.Rd), true
	case OpJal, OpJalr:
		if in.Rd == RegZero {
			return RegRef{}, false
		}
		return IntRef(in.Rd), true
	case OpFld, OpFadd, OpFsub, OpFmul, OpFdiv, OpFsqrt, OpFneg, OpFcvtIF, OpFmvIF:
		return FPRef(in.Rd), true
	}
	return RegRef{}, false
}
