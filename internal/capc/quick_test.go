package capc

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: the compiler never crashes on structurally valid programs with
// randomised constant expressions, and the generated assembly always
// contains the function labels.
func TestQuickConstExpressions(t *testing.T) {
	f := func(a, b int16, c uint8) bool {
		shift := int(c % 24)
		src := fmt.Sprintf(`
const A = %d;
const B = %d;
const C = A * B + (A << %d) - B;
var arr[(C & 1023) + 1];
func main() { return C; }
`, a, b, shift)
		compiled, err := Compile("quick.capc", src)
		if err != nil {
			return false
		}
		// Evaluate the same expression in Go and compare the const value.
		av, bv := int64(a), int64(b)
		want := av*bv + (av << shift) - bv
		for _, cd := range compiled.File.Consts {
			if cd.Name == "C" && cd.Value != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: operator precedence in CapC matches Go for random operand
// values, validated end-to-end through codegen and the functional machine
// (via the core package is not importable here, so this checks the parse
// tree shape instead: parenthesisation in the pre-processed listing).
func TestQuickPrecedenceShape(t *testing.T) {
	cases := map[string]string{
		"a + b * c":     "(a + (b * c))",
		"a * b + c":     "((a * b) + c)",
		"a + b << c":    "((a + b) << c)",
		"a < b == c":    "((a < b) == c)",
		"a & b | c":     "((a & b) | c)",
		"a && b || c":   "((a && b) || c)",
		"a ^ b & c":     "(a ^ (b & c))",
		"-a + b":        "(-a + b)",
		"!a && b":       "(!a && b)",
		"a % b - c / d": "((a % b) - (c / d))",
	}
	for src, want := range cases {
		f, err := Parse("prec.capc", fmt.Sprintf(
			"func main() { var a; var b; var c; var d; var x = %s; }", src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		body := f.Funcs[0].Body.Stmts
		vs := body[len(body)-1].(*VarStmt)
		if got := exprString(vs.Init); got != want {
			t.Errorf("%s parsed as %s; want %s", src, got, want)
		}
	}
}

// Property: every generated label in the assembly is referenced or defined
// exactly once as a definition (no duplicate label emissions).
func TestQuickNoDuplicateLabels(t *testing.T) {
	src := `
worker w(a) {
	var i;
	for (i = 0; i < a; i = i + 1) {
		if (i % 2 == 0) { coworker w(i); } else { w(i); }
		while (i > 10) { i = i - 1; break; }
	}
	return 0;
}
func main() { w(5); join(); }
`
	c := mustCompile(t, src)
	seen := map[string]bool{}
	for _, line := range splitLines(c.Asm) {
		if len(line) > 1 && line[len(line)-1] == ':' {
			label := line[:len(line)-1]
			if seen[label] {
				t.Fatalf("duplicate label %q", label)
			}
			seen[label] = true
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
