package capc

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile("test.capc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestCompileMinimal(t *testing.T) {
	c := mustCompile(t, `func main() { return 0; }`)
	if !strings.Contains(c.Asm, "main:") {
		t.Fatal("asm missing main label")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main() {`,                // unterminated block
		`func main() { x = ; }`,        // bad expression
		`func main() { if x { } }`,     // missing parens
		`const X = 1 / 0;`,             // const div by zero
		`func main() { return 0 }`,     // missing semicolon
		`var a[0]; func main() {}`,     // zero-size array
		`var a[4] = 3; func main() {}`, // array initialiser
		`1 + 2;`,                       // junk at top level
		`func f(a, b, c, d, e, f, g, h, i) {} func main() {}`, // >8 params
	}
	for _, src := range cases {
		if _, err := Compile("bad.capc", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []string{
		`func main() { return nope; }`,                 // undefined name
		`func main() { nope(); }`,                      // undefined function
		`func main() { break; }`,                       // break outside loop
		`func main() { continue; }`,                    // continue outside loop
		`func f() {} func main() { coworker f(); }`,    // coworker on non-worker
		`worker w(a) {} func main() { coworker w(); }`, // arity mismatch
		`worker w() {} func main() { coworker w(1); }`, // arity mismatch
		`func main() { var x; var x; }`,                // duplicate local
		`func f() {} func f() {} func main() {}`,       // duplicate func
		`const X = 1; var X; func main() {}`,           // duplicate top-level
		`func print(x) {} func main() {}`,              // builtin shadowing
		`func main() { var y = print(1); }`,            // valueless in value ctx
		`func main() { 3 = 4; }`,                       // bad lvalue
		`const K = 2; func main() { K = 3; }`,          // assign to const
		`var a[4]; func main() { a = 1; }`,             // assign to array name
		`func main() { var l; var p = &l; }`,           // & of local
		`func main(x) { var t = tcnt(1); }`,            // builtin arity
		`func main() { coworker main(); }`,             // main is not a worker
	}
	for _, src := range cases {
		if _, err := Compile("bad.capc", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestNoMainRejected(t *testing.T) {
	if _, err := Compile("x.capc", `func helper() {}`); err == nil {
		t.Fatal("missing main should be an error")
	}
}

func TestConstChain(t *testing.T) {
	c := mustCompile(t, `
const A = 4;
const B = A * 2 + 1;
var arr[B];
func main() { return B; }
`)
	if c.File.Consts[1].Value != 9 {
		t.Fatalf("B = %d", c.File.Consts[1].Value)
	}
	if c.File.Globals[0].Words != 9 {
		t.Fatalf("arr words = %d", c.File.Globals[0].Words)
	}
}

func TestWorkersListed(t *testing.T) {
	c := mustCompile(t, `
worker w1(a) { }
worker w2() { }
func helper() { }
func main() { }
`)
	if len(c.Workers) != 2 || c.Workers[0] != "w1" || c.Workers[1] != "w2" {
		t.Fatalf("workers = %v", c.Workers)
	}
}

func TestCoworkerExpansionInAsm(t *testing.T) {
	c := mustCompile(t, `
worker w(a) { print(a); }
func main() { coworker w(5); join(); }
`)
	for _, want := range []string{"nthr t0", "__cap_stack_get", "__cap_stack_put", "kthr", "jal ra, w"} {
		if !strings.Contains(c.Asm, want) {
			t.Errorf("asm missing %q:\n%s", want, c.Asm)
		}
	}
}

func TestCoworkerElseBranch(t *testing.T) {
	c := mustCompile(t, `
var fallback;
worker w(a) { print(a); }
func main() {
	coworker w(5) else { fallback = 1; }
}
`)
	// The else body replaces the sequential call: there must be exactly one
	// direct call to w (the child path).
	if n := strings.Count(c.Asm, "jal ra, w\n"); n != 1 {
		t.Errorf("want exactly 1 direct call to w (child path), got %d:\n%s", n, c.Asm)
	}
}

func TestPreProcessedListing(t *testing.T) {
	c := mustCompile(t, `
worker explore(node, dist) {
	coworker explore(node, dist);
}
func main() { }
`)
	pp := c.PreProcessed
	for _, want := range []string{"switch (nthr())", "case -1:", "case 0:", "case 1:", "__capsule_new_stack()", "kthr()"} {
		if !strings.Contains(pp, want) {
			t.Errorf("pre-processed listing missing %q:\n%s", want, pp)
		}
	}
}

func TestGlobalsEmitted(t *testing.T) {
	c := mustCompile(t, `
var scalar = 7;
var arr[3];
func main() { return scalar + arr[0]; }
`)
	for _, want := range []string{"g_scalar:", ".word 7", "g_arr:", ".space 24"} {
		if !strings.Contains(c.Asm, want) {
			t.Errorf("asm missing %q", want)
		}
	}
}

func TestExpressionDepthLimit(t *testing.T) {
	// Build a pathologically nested expression: ((((1+1)+1)... is fine
	// (left-assoc keeps depth 2); right-nesting forces depth growth.
	deep := "1"
	for i := 0; i < 20; i++ {
		deep = "(1 + " + deep + ")"
	}
	// Right-leaning additions stack one temp per level.
	src := `func main() { return ` + deep + `; }`
	if _, err := Compile("deep.capc", src); err == nil {
		t.Skip("depth accepted (codegen kept depth shallow); acceptable")
	}
}
