package capc

import "fmt"

// parser is a recursive-descent parser for CapC with one token of lookahead.
type parser struct {
	lx   *lexer
	tok  token
	file string

	// pendingConsts accumulates const values during parsing so later
	// consts and array sizes can reference earlier ones.
	pendingConsts map[string]int64
}

// Parse parses a CapC compilation unit.
func Parse(file, src string) (*File, error) {
	p := &parser{lx: newLexer(file, src), file: file}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{Name: file}
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokConst:
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, d)
		case tokVar:
			d, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, d)
		case tokFunc, tokWorker:
			d, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, d)
		default:
			return nil, p.errf("expected declaration, got %v", p.tok.kind)
		}
	}
	return f, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %v, got %v", k, p.tok.kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) accept(k tokKind) (bool, error) {
	if p.tok.kind != k {
		return false, nil
	}
	return true, p.advance()
}

// constExpr evaluates a compile-time constant expression. consts may
// reference earlier consts in the same file (resolved via the env).
func (p *parser) constExpr(env map[string]int64) (int64, error) {
	return p.constBinary(env, 0)
}

var constPrec = map[tokKind]int{
	tokPipe: 1, tokCaret: 2, tokAmp: 3,
	tokShl: 4, tokShr: 4,
	tokPlus: 5, tokMinus: 5,
	tokStar: 6, tokSlash: 6, tokPercent: 6,
}

func (p *parser) constBinary(env map[string]int64, minPrec int) (int64, error) {
	lhs, err := p.constUnary(env)
	if err != nil {
		return 0, err
	}
	for {
		prec, ok := constPrec[p.tok.kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return 0, err
		}
		rhs, err := p.constBinary(env, prec+1)
		if err != nil {
			return 0, err
		}
		switch op {
		case tokPlus:
			lhs += rhs
		case tokMinus:
			lhs -= rhs
		case tokStar:
			lhs *= rhs
		case tokSlash:
			if rhs == 0 {
				return 0, p.errf("constant division by zero")
			}
			lhs /= rhs
		case tokPercent:
			if rhs == 0 {
				return 0, p.errf("constant modulo by zero")
			}
			lhs %= rhs
		case tokShl:
			lhs <<= uint64(rhs) & 63
		case tokShr:
			lhs >>= uint64(rhs) & 63
		case tokPipe:
			lhs |= rhs
		case tokCaret:
			lhs ^= rhs
		case tokAmp:
			lhs &= rhs
		}
	}
}

func (p *parser) constUnary(env map[string]int64) (int64, error) {
	switch p.tok.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return 0, err
		}
		v, err := p.constUnary(env)
		return -v, err
	case tokNumber, tokChar:
		v := p.tok.val
		return v, p.advance()
	case tokIdent:
		v, ok := env[p.tok.text]
		if !ok {
			return 0, p.errf("unknown constant %q", p.tok.text)
		}
		return v, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return 0, err
		}
		v, err := p.constBinary(env, 0)
		if err != nil {
			return 0, err
		}
		_, err = p.expect(tokRParen)
		return v, err
	}
	return 0, p.errf("bad constant expression at %v", p.tok.kind)
}

func (p *parser) constDecl() (*ConstDecl, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	// Allow references to previously declared consts in this unit. The
	// caller threads them through a fresh env per declaration.
	v, err := p.constExpr(p.pendingConsts)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	d := &ConstDecl{Name: name.text, Value: v, Line: line}
	if p.pendingConsts == nil {
		p.pendingConsts = make(map[string]int64)
	}
	p.pendingConsts[name.text] = v
	return d, nil
}

func (p *parser) globalDecl() (*GlobalDecl, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d := &GlobalDecl{Name: name.text, Words: 1, Line: line}
	if ok, err := p.accept(tokLBracket); err != nil {
		return nil, err
	} else if ok {
		n, err := p.constExpr(p.pendingConsts)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, p.errf("array %q must have positive size", d.Name)
		}
		d.Words = int(n)
		d.Array = true
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	if ok, err := p.accept(tokAssign); err != nil {
		return nil, err
	} else if ok {
		if d.Array {
			return nil, p.errf("array %q cannot have an initialiser", d.Name)
		}
		v, err := p.constExpr(p.pendingConsts)
		if err != nil {
			return nil, err
		}
		d.Init = v
	}
	_, err = p.expect(tokSemi)
	return d, err
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.tok.line
	worker := p.tok.kind == tokWorker
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var params []string
	for p.tok.kind != tokRParen {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
		if ok, err := p.accept(tokComma); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.text, Params: params, Body: body, Worker: worker, Line: line}, nil
}

func (p *parser) block() (*BlockStmt, error) {
	line := p.tok.line
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: line}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, p.advance()
}

func (p *parser) stmt() (Stmt, error) {
	line := p.tok.line
	switch p.tok.kind {
	case tokSemi:
		return nil, p.advance()
	case tokLBrace:
		return p.block()
	case tokVar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		s := &VarStmt{Name: name.text, Line: line}
		if ok, err := p.accept(tokAssign); err != nil {
			return nil, err
		} else if ok {
			s.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		_, err = p.expect(tokSemi)
		return s, err
	case tokIf:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, Line: line}
		if ok, err := p.accept(tokElse); err != nil {
			return nil, err
		} else if ok {
			s.Else, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case tokWhile:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case tokFor:
		return p.forStmt()
	case tokReturn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &ReturnStmt{Line: line}
		if p.tok.kind != tokSemi {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		_, err := p.expect(tokSemi)
		return s, err
	case tokBreak:
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(tokSemi)
		return &BreakStmt{Line: line}, err
	case tokContinue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(tokSemi)
		return &ContinueStmt{Line: line}, err
	case tokLock, tokUnlock:
		unlock := p.tok.kind == tokUnlock
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		addr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		_, err = p.expect(tokSemi)
		return &LockStmt{Addr: addr, Unlock: unlock, Line: line}, err
	case tokCoworker:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var args []Expr
		for p.tok.kind != tokRParen {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if ok, err := p.accept(tokComma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		s := &CoworkerStmt{Callee: name.text, Args: args, Line: line}
		if ok, err := p.accept(tokElse); err != nil {
			return nil, err
		} else if ok {
			s.Else, err = p.block()
			if err != nil {
				return nil, err
			}
			return s, nil
		}
		_, err = p.expect(tokSemi)
		return s, err
	}
	return p.simpleStmt(true)
}

// forStmt parses `for (init; cond; post) body`.
func (p *parser) forStmt() (Stmt, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: line}
	if p.tok.kind != tokSemi {
		init, err := p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	if p.tok.kind != tokSemi {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRParen {
		post, err := p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// simpleStmt parses an assignment or expression statement. When semi is
// true, a trailing ';' is consumed.
func (p *parser) simpleStmt(semi bool) (Stmt, error) {
	line := p.tok.line
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	var s Stmt
	if ok, err := p.accept(tokAssign); err != nil {
		return nil, err
	} else if ok {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		s = &AssignStmt{LHS: x, RHS: rhs, Line: line}
	} else {
		s = &ExprStmt{X: x, Line: line}
	}
	if semi {
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Expression precedence (loosest to tightest):
// || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / %
var binPrec = map[tokKind]int{
	tokOrOr: 1, tokAndAnd: 2,
	tokPipe: 3, tokCaret: 4, tokAmp: 5,
	tokEq: 6, tokNe: 6,
	tokLt: 7, tokLe: 7, tokGt: 7, tokGe: 7,
	tokShl: 8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(0) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.tok.kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.kind
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, X: lhs, Y: rhs, Line: line}
	}
}

func (p *parser) unary() (Expr, error) {
	line := p.tok.line
	switch p.tok.kind {
	case tokMinus, tokBang, tokTilde, tokStar, tokAmp:
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Line: line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokLBracket:
			line := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Base: x, Idx: idx, Line: line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	line := p.tok.line
	switch p.tok.kind {
	case tokNumber, tokChar:
		v := p.tok.val
		return &NumExpr{Val: v, Line: line}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokRParen)
		return x, err
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return &IdentExpr{Name: name, Line: line}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		call := &CallExpr{Callee: name, Line: line}
		for p.tok.kind != tokRParen {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if ok, err := p.accept(tokComma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		_, err := p.expect(tokRParen)
		return call, err
	}
	return nil, p.errf("unexpected %v in expression", p.tok.kind)
}
