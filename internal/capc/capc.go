// Package capc implements the CapC compiler: the reproduction of the
// paper's component toolchain. CapC is a small component-C dialect (Section
// 3.2): ordinary functions plus `worker` functions that may be spawned
// conditionally with `coworker`, which the compiler expands into the
// probe+spawn switch of Fig. 2 and lowers to the nthr instruction.
//
// The pipeline is Parse -> Check -> Gen, packaged behind Compile. The
// generated assembly links against the capsule runtime (internal/core),
// which provides _start, the worker stack pool and the heap allocator.
package capc

// Compiled is the result of compiling one CapC unit.
type Compiled struct {
	// Asm is the generated assembly, ready for asm.Assemble together with
	// the capsule runtime unit.
	Asm string
	// PreProcessed is the Fig. 2(b)-style listing showing the coworker
	// switch expansion performed by the pre-processor.
	PreProcessed string
	// File is the resolved AST.
	File *File
	// Workers lists the worker functions in declaration order.
	Workers []string
}

// Compile parses, checks and lowers a CapC source unit.
func Compile(name, src string) (*Compiled, error) {
	f, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	asmText, err := Gen(f)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Asm:          asmText,
		PreProcessed: PreProcess(f),
		File:         f,
	}
	for _, fn := range f.Funcs {
		if fn.Worker {
			c.Workers = append(c.Workers, fn.Name)
		}
	}
	return c, nil
}
