package capc

// The CapC abstract syntax tree. Every value is a 64-bit word; arrays are
// word-addressed regions named by globals; floating point is reached through
// intrinsics operating on raw float64 bit patterns.

// File is a parsed compilation unit.
type File struct {
	Name    string
	Consts  []*ConstDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// ConstDecl is `const NAME = <const expr>;`.
type ConstDecl struct {
	Name  string
	Value int64
	Line  int
}

// GlobalDecl is `var name;`, `var name = k;` or `var name[k];`.
type GlobalDecl struct {
	Name  string
	Init  int64
	Words int  // 1 for scalars
	Array bool // arrays denote their address when named
	Line  int
}

// FuncDecl is a `func` or `worker` definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Worker bool
	Line   int

	// Filled by sema: the number of local slots (params + vars).
	numLocals int
}

// Stmt is any statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// VarStmt declares (and optionally initialises) a local.
type VarStmt struct {
	Name string
	Init Expr // may be nil
	Line int

	slot int // assigned by sema
}

// AssignStmt is `lvalue = expr;` where lvalue is an identifier, an index
// expression or a dereference.
type AssignStmt struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// ExprStmt evaluates an expression for its side effects (typically a call).
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is `if (cond) stmt [else stmt]`.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// WhileStmt is `while (cond) stmt`.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// ForStmt is `for (init; cond; post) stmt`; any clause may be nil.
type ForStmt struct {
	Init Stmt // AssignStmt or ExprStmt
	Cond Expr
	Post Stmt
	Body Stmt
	Line int
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
}

// BreakStmt / ContinueStmt.
type BreakStmt struct{ Line int }
type ContinueStmt struct{ Line int }

// LockStmt / UnlockStmt wrap the mlock/munlock instructions.
type LockStmt struct {
	Addr   Expr
	Unlock bool
	Line   int
}

// CoworkerStmt is the paper's conditional division construct:
//
//	coworker f(args);            // sequential call if the probe fails
//	coworker f(args) else { S }  // custom probe-failure branch
//
// The pre-processor expands it to a switch over nthr (see Fig. 2).
type CoworkerStmt struct {
	Callee string
	Args   []Expr
	Else   *BlockStmt // nil = implicit sequential call
	Line   int

	fn *FuncDecl // resolved by sema
}

func (*BlockStmt) stmtNode()    {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*LockStmt) stmtNode()     {}
func (*CoworkerStmt) stmtNode() {}

// Expr is any expression node.
type Expr interface{ exprNode() }

// NumExpr is an integer (or char) literal.
type NumExpr struct {
	Val  int64
	Line int
}

// IdentExpr names a local, global, or constant.
type IdentExpr struct {
	Name string
	Line int

	// Resolution, filled by sema.
	kind  identKind
	slot  int    // locals
	value int64  // consts
	sym   string // globals: assembly symbol
}

type identKind uint8

const (
	identUnresolved identKind = iota
	identLocal
	identGlobalScalar
	identGlobalArray // value of the expression is the array's address
	identConst
)

// UnaryExpr is -x, !x, ~x, *x (deref) or &g (address of global scalar).
type UnaryExpr struct {
	Op   tokKind // tokMinus, tokBang, tokTilde, tokStar, tokAmp
	X    Expr
	Line int
}

// BinaryExpr covers arithmetic, comparison, bitwise and logical operators.
type BinaryExpr struct {
	Op   tokKind
	X, Y Expr
	Line int
}

// IndexExpr is `base[idx]`: the word at base + 8*idx.
type IndexExpr struct {
	Base Expr
	Idx  Expr
	Line int
}

// CallExpr calls a function or builtin.
type CallExpr struct {
	Callee string
	Args   []Expr
	Line   int

	fn      *FuncDecl // resolved user function (nil for builtins)
	builtin *builtin  // resolved builtin (nil for user functions)
}

func (*NumExpr) exprNode()    {}
func (*IdentExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
