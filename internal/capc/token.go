package capc

import "fmt"

// tokKind enumerates CapC token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokChar

	// Punctuation and operators.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokSemi
	tokComma
	tokAssign
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokAmp
	tokPipe
	tokCaret
	tokTilde
	tokBang
	tokShl
	tokShr
	tokLt
	tokLe
	tokGt
	tokGe
	tokEq
	tokNe
	tokAndAnd
	tokOrOr

	// Keywords.
	tokConst
	tokVar
	tokFunc
	tokWorker
	tokIf
	tokElse
	tokWhile
	tokFor
	tokReturn
	tokBreak
	tokContinue
	tokLock
	tokUnlock
	tokCoworker
)

var keywords = map[string]tokKind{
	"const":    tokConst,
	"var":      tokVar,
	"func":     tokFunc,
	"worker":   tokWorker,
	"if":       tokIf,
	"else":     tokElse,
	"while":    tokWhile,
	"for":      tokFor,
	"return":   tokReturn,
	"break":    tokBreak,
	"continue": tokContinue,
	"lock":     tokLock,
	"unlock":   tokUnlock,
	"coworker": tokCoworker,
}

var kindNames = map[tokKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokNumber: "number", tokChar: "char",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLBracket: "'['", tokRBracket: "']'", tokSemi: "';'", tokComma: "','",
	tokAssign: "'='", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokSlash: "'/'", tokPercent: "'%'", tokAmp: "'&'", tokPipe: "'|'",
	tokCaret: "'^'", tokTilde: "'~'", tokBang: "'!'", tokShl: "'<<'", tokShr: "'>>'",
	tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='", tokEq: "'=='", tokNe: "'!='",
	tokAndAnd: "'&&'", tokOrOr: "'||'",
	tokConst: "'const'", tokVar: "'var'", tokFunc: "'func'", tokWorker: "'worker'",
	tokIf: "'if'", tokElse: "'else'", tokWhile: "'while'", tokFor: "'for'",
	tokReturn: "'return'", tokBreak: "'break'", tokContinue: "'continue'",
	tokLock: "'lock'", tokUnlock: "'unlock'", tokCoworker: "'coworker'",
}

func (k tokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", k)
}

// token is one lexeme with its source line.
type token struct {
	kind tokKind
	text string
	val  int64 // numbers and chars
	line int
}

// lexer turns CapC source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	file string
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, line: 1, file: file}
}

func (lx *lexer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", lx.file, line, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			if lx.pos+1 >= len(lx.src) {
				return token{}, lx.errf(lx.line, "unterminated block comment")
			}
			lx.pos += 2
		default:
			goto lexed
		}
	}
lexed:
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: lx.line}, nil
	}
	start, line := lx.pos, lx.line
	c := lx.src[lx.pos]

	isAlpha := func(c byte) bool {
		return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
	}
	isDigit := func(c byte) bool { return c >= '0' && c <= '9' }

	switch {
	case isAlpha(c):
		for lx.pos < len(lx.src) && (isAlpha(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[text]; ok {
			return token{kind: k, text: text, line: line}, nil
		}
		return token{kind: tokIdent, text: text, line: line}, nil
	case isDigit(c):
		base := int64(10)
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
			start = lx.pos
		}
		var v int64
		digits := 0
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			var dv int64
			switch {
			case isDigit(d):
				dv = int64(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				dv = int64(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				dv = int64(d-'A') + 10
			default:
				goto numDone
			}
			v = v*base + dv
			digits++
			lx.pos++
		}
	numDone:
		if digits == 0 {
			return token{}, lx.errf(line, "malformed number")
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], val: v, line: line}, nil
	case c == '\'':
		lx.pos++
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf(line, "unterminated char literal")
		}
		var v int64
		if lx.src[lx.pos] == '\\' {
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf(line, "unterminated char literal")
			}
			switch lx.src[lx.pos] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\'':
				v = '\''
			case '\\':
				v = '\\'
			default:
				return token{}, lx.errf(line, "unknown escape \\%c", lx.src[lx.pos])
			}
		} else {
			v = int64(lx.src[lx.pos])
		}
		lx.pos++
		if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
			return token{}, lx.errf(line, "unterminated char literal")
		}
		lx.pos++
		return token{kind: tokChar, val: v, line: line}, nil
	}

	two := func(k tokKind) (token, error) {
		lx.pos += 2
		return token{kind: k, text: lx.src[start : start+2], line: line}, nil
	}
	one := func(k tokKind) (token, error) {
		lx.pos++
		return token{kind: k, text: lx.src[start : start+1], line: line}, nil
	}
	nextIs := func(b byte) bool { return lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == b }

	switch c {
	case '(':
		return one(tokLParen)
	case ')':
		return one(tokRParen)
	case '{':
		return one(tokLBrace)
	case '}':
		return one(tokRBrace)
	case '[':
		return one(tokLBracket)
	case ']':
		return one(tokRBracket)
	case ';':
		return one(tokSemi)
	case ',':
		return one(tokComma)
	case '+':
		return one(tokPlus)
	case '-':
		return one(tokMinus)
	case '*':
		return one(tokStar)
	case '/':
		return one(tokSlash)
	case '%':
		return one(tokPercent)
	case '^':
		return one(tokCaret)
	case '~':
		return one(tokTilde)
	case '&':
		if nextIs('&') {
			return two(tokAndAnd)
		}
		return one(tokAmp)
	case '|':
		if nextIs('|') {
			return two(tokOrOr)
		}
		return one(tokPipe)
	case '!':
		if nextIs('=') {
			return two(tokNe)
		}
		return one(tokBang)
	case '=':
		if nextIs('=') {
			return two(tokEq)
		}
		return one(tokAssign)
	case '<':
		if nextIs('<') {
			return two(tokShl)
		}
		if nextIs('=') {
			return two(tokLe)
		}
		return one(tokLt)
	case '>':
		if nextIs('>') {
			return two(tokShr)
		}
		if nextIs('=') {
			return two(tokGe)
		}
		return one(tokGt)
	}
	return token{}, lx.errf(line, "unexpected character %q", string(c))
}
