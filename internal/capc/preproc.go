package capc

import (
	"fmt"
	"strings"
)

// PreProcess renders the file as the paper's Fig. 2(b) "pre-processed
// source": plain C-like code where every coworker statement has been
// expanded into a switch over the probe+spawn primitive. It is a
// presentation aid (the real lowering is Gen); capc -pre prints it.
func PreProcess(f *File) string {
	p := &printer{}
	for _, c := range f.Consts {
		p.linef("const %s = %d;", c.Name, c.Value)
	}
	for _, g := range f.Globals {
		if g.Array {
			p.linef("var %s[%d];", g.Name, g.Words)
		} else if g.Init != 0 {
			p.linef("var %s = %d;", g.Name, g.Init)
		} else {
			p.linef("var %s;", g.Name)
		}
	}
	for _, fn := range f.Funcs {
		kw := "func"
		if fn.Worker {
			kw = "worker"
		}
		p.linef("")
		p.linef("%s %s(%s) {", kw, fn.Name, strings.Join(fn.Params, ", "))
		p.indent++
		for _, s := range fn.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.linef("}")
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) linef(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
	fmt.Fprintf(&p.b, format+"\n", args...)
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.linef("{")
		p.indent++
		for _, in := range s.Stmts {
			p.stmt(in)
		}
		p.indent--
		p.linef("}")
	case *VarStmt:
		if s.Init != nil {
			p.linef("var %s = %s;", s.Name, exprString(s.Init))
		} else {
			p.linef("var %s;", s.Name)
		}
	case *AssignStmt:
		p.linef("%s = %s;", exprString(s.LHS), exprString(s.RHS))
	case *ExprStmt:
		p.linef("%s;", exprString(s.X))
	case *IfStmt:
		p.linef("if (%s)", exprString(s.Cond))
		p.indentStmt(s.Then)
		if s.Else != nil {
			p.linef("else")
			p.indentStmt(s.Else)
		}
	case *WhileStmt:
		p.linef("while (%s)", exprString(s.Cond))
		p.indentStmt(s.Body)
	case *ForStmt:
		init, cond, post := "", "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(stmtOneLine(s.Init), ";")
		}
		if s.Cond != nil {
			cond = exprString(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(stmtOneLine(s.Post), ";")
		}
		p.linef("for (%s; %s; %s)", init, cond, post)
		p.indentStmt(s.Body)
	case *ReturnStmt:
		if s.X != nil {
			p.linef("return %s;", exprString(s.X))
		} else {
			p.linef("return;")
		}
	case *BreakStmt:
		p.linef("break;")
	case *ContinueStmt:
		p.linef("continue;")
	case *LockStmt:
		if s.Unlock {
			p.linef("unlock(%s);", exprString(s.Addr))
		} else {
			p.linef("lock(%s);", exprString(s.Addr))
		}
	case *CoworkerStmt:
		// The Fig. 2(b) expansion.
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = exprString(a)
		}
		call := fmt.Sprintf("%s(%s)", s.Callee, strings.Join(args, ", "))
		p.linef("switch (nthr()) {        /* pre-processed coworker */")
		p.linef("case -1:                 /* probe failed */")
		p.indent++
		if s.Else != nil {
			for _, in := range s.Else.Stmts {
				p.stmt(in)
			}
		} else {
			p.linef("%s;", call)
		}
		p.linef("break;")
		p.indent--
		p.linef("case 0:                  /* parent keeps the left half */")
		p.indent++
		p.linef("break;")
		p.indent--
		p.linef("case 1:                  /* child: new stack, right half */")
		p.indent++
		p.linef("__capsule_new_stack();")
		p.linef("%s;", call)
		p.linef("kthr();")
		p.indent--
		p.linef("}")
	}
}

func (p *printer) indentStmt(s Stmt) {
	p.indent++
	p.stmt(s)
	p.indent--
}

func stmtOneLine(s Stmt) string {
	switch s := s.(type) {
	case *AssignStmt:
		return fmt.Sprintf("%s = %s;", exprString(s.LHS), exprString(s.RHS))
	case *ExprStmt:
		return exprString(s.X) + ";"
	}
	return "..."
}

var tokOpStrings = map[tokKind]string{
	tokPlus: "+", tokMinus: "-", tokStar: "*", tokSlash: "/", tokPercent: "%",
	tokAmp: "&", tokPipe: "|", tokCaret: "^", tokShl: "<<", tokShr: ">>",
	tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=", tokEq: "==", tokNe: "!=",
	tokAndAnd: "&&", tokOrOr: "||", tokBang: "!", tokTilde: "~",
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case *NumExpr:
		return fmt.Sprintf("%d", e.Val)
	case *IdentExpr:
		return e.Name
	case *UnaryExpr:
		if e.Op == tokStar {
			return "*" + exprString(e.X)
		}
		if e.Op == tokAmp {
			return "&" + exprString(e.X)
		}
		return tokOpStrings[e.Op] + exprString(e.X)
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(e.X), tokOpStrings[e.Op], exprString(e.Y))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", exprString(e.Base), exprString(e.Idx))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Callee, strings.Join(args, ", "))
	}
	return "?"
}
