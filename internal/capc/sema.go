package capc

import "fmt"

// builtin describes a CapC builtin function. Builtins compile to inline
// instruction sequences rather than calls (except alloc, which calls into
// the capsule runtime).
type builtin struct {
	name     string
	arity    int
	hasValue bool // produces a result
}

// builtins is the CapC builtin table.
//
//	alloc(n)      heap-allocate n words, returns address (runtime call)
//	print(x)      debug output via the print instruction
//	tcnt()        live worker count of this group
//	join()        stall until this worker is its group's only live member
//	loadb(p)      byte load
//	storeb(p,v)   byte store
//	itof(x)       float64(x) as raw bits
//	ftoi(b)       int64 truncation of raw bits b
//	fadd/fsub/fmul/fdiv(a,b)  float arithmetic on raw bits
//	fsqrt/fnegf(b)            unary float ops on raw bits
//	fltf/flef/feqf(a,b)       float comparisons, integer 0/1 result
var builtins = map[string]*builtin{
	"alloc":  {name: "alloc", arity: 1, hasValue: true},
	"print":  {name: "print", arity: 1},
	"tcnt":   {name: "tcnt", arity: 0, hasValue: true},
	"join":   {name: "join", arity: 0},
	"loadb":  {name: "loadb", arity: 1, hasValue: true},
	"storeb": {name: "storeb", arity: 2},
	"itof":   {name: "itof", arity: 1, hasValue: true},
	"ftoi":   {name: "ftoi", arity: 1, hasValue: true},
	"fadd":   {name: "fadd", arity: 2, hasValue: true},
	"fsub":   {name: "fsub", arity: 2, hasValue: true},
	"fmul":   {name: "fmul", arity: 2, hasValue: true},
	"fdiv":   {name: "fdiv", arity: 2, hasValue: true},
	"fsqrt":  {name: "fsqrt", arity: 1, hasValue: true},
	"fnegf":  {name: "fnegf", arity: 1, hasValue: true},
	"fltf":   {name: "fltf", arity: 2, hasValue: true},
	"flef":   {name: "flef", arity: 2, hasValue: true},
	"feqf":   {name: "feqf", arity: 2, hasValue: true},
}

// maxParams is the number of argument registers (a0..a7).
const maxParams = 8

// checker resolves names and validates the tree in place.
type checker struct {
	file    *File
	consts  map[string]int64
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	// Per-function state.
	fn        *FuncDecl
	scopes    []map[string]int // name -> slot
	nextSlot  int
	loopDepth int
}

// Check resolves and validates a parsed file. It mutates the AST
// (identifier resolution, local slot assignment).
func Check(f *File) error {
	c := &checker{
		file:    f,
		consts:  make(map[string]int64),
		globals: make(map[string]*GlobalDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, d := range f.Consts {
		if err := c.declare(d.Name, d.Line); err != nil {
			return err
		}
		c.consts[d.Name] = d.Value
	}
	for _, g := range f.Globals {
		if err := c.declare(g.Name, g.Line); err != nil {
			return err
		}
		c.globals[g.Name] = g
	}
	for _, fn := range f.Funcs {
		if err := c.declare(fn.Name, fn.Line); err != nil {
			return err
		}
		if len(fn.Params) > maxParams {
			return c.errf(fn.Line, "function %q has %d parameters; max %d", fn.Name, len(fn.Params), maxParams)
		}
		c.funcs[fn.Name] = fn
	}
	if _, ok := c.funcs["main"]; !ok {
		return fmt.Errorf("%s: no main function", f.Name)
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", c.file.Name, line, fmt.Sprintf(format, args...))
}

// declare rejects duplicate top-level names (including builtin shadowing).
func (c *checker) declare(name string, line int) error {
	if _, ok := builtins[name]; ok {
		return c.errf(line, "%q shadows a builtin", name)
	}
	if _, ok := c.consts[name]; ok {
		return c.errf(line, "duplicate top-level name %q", name)
	}
	if _, ok := c.globals[name]; ok {
		return c.errf(line, "duplicate top-level name %q", name)
	}
	if _, ok := c.funcs[name]; ok {
		return c.errf(line, "duplicate top-level name %q", name)
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.scopes = []map[string]int{make(map[string]int)}
	c.nextSlot = 0
	c.loopDepth = 0
	for _, p := range fn.Params {
		if _, dup := c.scopes[0][p]; dup {
			return c.errf(fn.Line, "duplicate parameter %q", p)
		}
		c.scopes[0][p] = c.nextSlot
		c.nextSlot++
	}
	if err := c.checkBlock(fn.Body); err != nil {
		return err
	}
	fn.numLocals = c.nextSlot
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]int)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *VarStmt:
		if s.Init != nil {
			if err := c.checkExpr(s.Init, true); err != nil {
				return err
			}
		}
		scope := c.scopes[len(c.scopes)-1]
		if _, dup := scope[s.Name]; dup {
			return c.errf(s.Line, "duplicate local %q in this scope", s.Name)
		}
		scope[s.Name] = c.nextSlot
		s.slot = c.nextSlot
		c.nextSlot++
		return nil
	case *AssignStmt:
		if err := c.checkLValue(s.LHS); err != nil {
			return err
		}
		return c.checkExpr(s.RHS, true)
	case *ExprStmt:
		// Statement expressions may be valueless calls (print, join...).
		return c.checkExpr(s.X, false)
	case *IfStmt:
		if err := c.checkExpr(s.Cond, true); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(s.Cond, true); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkStmt(s.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond, true); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkStmt(s.Body)
	case *ReturnStmt:
		if s.X != nil {
			return c.checkExpr(s.X, true)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return c.errf(s.Line, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return c.errf(s.Line, "continue outside loop")
		}
		return nil
	case *LockStmt:
		return c.checkExpr(s.Addr, true)
	case *CoworkerStmt:
		fn, ok := c.funcs[s.Callee]
		if !ok {
			return c.errf(s.Line, "coworker target %q is not a function", s.Callee)
		}
		if !fn.Worker {
			return c.errf(s.Line, "coworker target %q must be declared 'worker'", s.Callee)
		}
		if len(s.Args) != len(fn.Params) {
			return c.errf(s.Line, "coworker %s wants %d args, got %d", s.Callee, len(fn.Params), len(s.Args))
		}
		s.fn = fn
		for _, a := range s.Args {
			if err := c.checkExpr(a, true); err != nil {
				return err
			}
		}
		if s.Else != nil {
			return c.checkBlock(s.Else)
		}
		return nil
	}
	return fmt.Errorf("%s: unknown statement %T", c.file.Name, s)
}

// checkLValue validates assignment targets: locals, global scalars, index
// expressions, and dereferences.
func (c *checker) checkLValue(e Expr) error {
	switch e := e.(type) {
	case *IdentExpr:
		if err := c.checkExpr(e, true); err != nil {
			return err
		}
		switch e.kind {
		case identLocal, identGlobalScalar:
			return nil
		case identGlobalArray:
			return c.errf(e.Line, "cannot assign to array %q itself", e.Name)
		case identConst:
			return c.errf(e.Line, "cannot assign to constant %q", e.Name)
		}
		return c.errf(e.Line, "cannot assign to %q", e.Name)
	case *IndexExpr:
		if err := c.checkExpr(e.Base, true); err != nil {
			return err
		}
		return c.checkExpr(e.Idx, true)
	case *UnaryExpr:
		if e.Op != tokStar {
			return c.errf(e.Line, "invalid assignment target")
		}
		return c.checkExpr(e.X, true)
	}
	return fmt.Errorf("%s: invalid assignment target %T", c.file.Name, e)
}

// checkExpr resolves e. needValue requires the expression to produce a
// result (a call to a valueless builtin or void-ish function use fails).
func (c *checker) checkExpr(e Expr, needValue bool) error {
	switch e := e.(type) {
	case *NumExpr:
		return nil
	case *IdentExpr:
		if slot, ok := c.lookupLocal(e.Name); ok {
			e.kind, e.slot = identLocal, slot
			return nil
		}
		if v, ok := c.consts[e.Name]; ok {
			e.kind, e.value = identConst, v
			return nil
		}
		if g, ok := c.globals[e.Name]; ok {
			if g.Array {
				e.kind = identGlobalArray
			} else {
				e.kind = identGlobalScalar
			}
			e.sym = globalSym(e.Name)
			return nil
		}
		return c.errf(e.Line, "undefined name %q", e.Name)
	case *UnaryExpr:
		if e.Op == tokAmp {
			id, ok := e.X.(*IdentExpr)
			if !ok {
				return c.errf(e.Line, "& requires a global name")
			}
			if err := c.checkExpr(id, true); err != nil {
				return err
			}
			if id.kind != identGlobalScalar && id.kind != identGlobalArray {
				return c.errf(e.Line, "& requires a global (locals live in registers/stack)")
			}
			return nil
		}
		return c.checkExpr(e.X, true)
	case *BinaryExpr:
		if err := c.checkExpr(e.X, true); err != nil {
			return err
		}
		return c.checkExpr(e.Y, true)
	case *IndexExpr:
		if err := c.checkExpr(e.Base, true); err != nil {
			return err
		}
		return c.checkExpr(e.Idx, true)
	case *CallExpr:
		if b, ok := builtins[e.Callee]; ok {
			e.builtin = b
			if len(e.Args) != b.arity {
				return c.errf(e.Line, "%s wants %d args, got %d", b.name, b.arity, len(e.Args))
			}
			if needValue && !b.hasValue {
				return c.errf(e.Line, "%s produces no value", b.name)
			}
		} else if fn, ok := c.funcs[e.Callee]; ok {
			e.fn = fn
			if len(e.Args) != len(fn.Params) {
				return c.errf(e.Line, "%s wants %d args, got %d", e.Callee, len(fn.Params), len(e.Args))
			}
		} else {
			return c.errf(e.Line, "undefined function %q", e.Callee)
		}
		for _, a := range e.Args {
			if err := c.checkExpr(a, true); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%s: unknown expression %T", c.file.Name, e)
}

// globalSym maps a CapC global name to its assembly symbol.
func globalSym(name string) string { return "g_" + name }
