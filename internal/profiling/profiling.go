// Package profiling is the shared -cpuprofile/-memprofile plumbing for
// the CLIs (cmd/caprun, cmd/capload), so hot-path regressions can be
// diagnosed without editing code and the two binaries cannot drift.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function to defer (and to call explicitly ahead of any os.Exit, which
// skips defers; stopping twice is harmless). An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start CPU profile: %w", err)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}, nil
}

// WriteHeap snapshots the heap into path (no-op when empty), after a GC
// so the profile shows live objects, not garbage awaiting collection.
// Like StartCPU's stop, it is safe to call more than once: each call
// just refreshes the file.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("write heap profile: %w", err)
	}
	return nil
}
