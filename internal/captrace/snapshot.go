package captrace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// This file is the tracer's read side plus the identity plumbing: the
// Snapshot walk (validated slot copies, merged and time-ordered), the
// Event JSON codec shared by the /debug/trace endpoints and the
// captrace CLI, trace-ID generation/formatting, the per-request context
// carrier the router uses to hand identity to its in-process local
// tier, and the 1-in-N sampler for server-generated IDs.

// Event is one decoded ring entry. A and B are per-Kind payloads (see
// the Kind constants); Shard is the pool/stat shard the event describes
// for runtime-tier kinds and 0 elsewhere. Source names the snapshot the
// event came from once snapshots are merged ("" inside one process).
type Event struct {
	TS     int64
	TID    uint64
	Kind   Kind
	Shard  uint8
	A      uint16
	B      uint32
	Source string
}

// eventJSON is the wire shape: the trace ID as 16 hex digits (matching
// the header), the kind by name (stable across builds).
type eventJSON struct {
	TS     int64  `json:"ts"`
	ID     string `json:"id,omitempty"`
	Kind   string `json:"kind"`
	Shard  uint8  `json:"shard"`
	A      uint16 `json:"a"`
	B      uint32 `json:"b"`
	Source string `json:"source,omitempty"`
}

// MarshalJSON encodes the event in the wire shape.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{TS: e.TS, Kind: e.Kind.String(), Shard: e.Shard, A: e.A, B: e.B, Source: e.Source}
	if e.TID != 0 {
		j.ID = FormatID(e.TID)
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the wire shape. Unknown kind names decode to
// KNone rather than failing, so an older CLI can still render the rest
// of a newer snapshot.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Event{TS: j.TS, Shard: j.Shard, A: j.A, B: j.B, Source: j.Source}
	e.Kind, _ = KindFromString(j.Kind)
	if j.ID != "" {
		id, err := ParseID(j.ID)
		if err != nil {
			return err
		}
		e.TID = id
	}
	return nil
}

// Detail renders the per-kind payload for humans ("steal=2 ctx=7",
// "deny=throttle", "backend=1 credits=16"). The waterfall printers in
// capload and cmd/captrace share it so the two renderings agree.
func (e Event) Detail() string {
	switch e.Kind {
	case KProbeGranted:
		if e.A == 0 {
			return fmt.Sprintf("shard=%d local-hit ctx=%d", e.Shard, e.B)
		}
		return fmt.Sprintf("shard=%d steal-dist=%d ctx=%d", e.Shard, e.A, e.B)
	case KProbeDenied:
		reason := "no_ctx"
		switch e.A {
		case DenyThrottle:
			reason = "throttle"
		case DenyClosed:
			reason = "closed"
		}
		return fmt.Sprintf("shard=%d deny=%s", e.Shard, reason)
	case KDivideInline:
		return "ran inline on caller"
	case KHandoff:
		how := "spin-hit"
		if e.A == HandoffPark {
			how = "park-wakeup"
		}
		return fmt.Sprintf("%s ctx=%d", how, e.B)
	case KDeath:
		return fmt.Sprintf("ctx=%d", e.B)
	case KThrottleOpen, KThrottleClose:
		return ""
	case KReqAdmit:
		return fmt.Sprintf("queue-occupancy=%d", e.B)
	case KReqShed:
		return "queue full"
	case KReqDegraded:
		return "no headroom, sequential domain"
	case KReqDone:
		return fmt.Sprintf("status=%d dur=%s", e.A, time.Duration(e.B)*time.Microsecond)
	case KRouteRecv:
		return ""
	case KRouteDispatch:
		return fmt.Sprintf("backend=%d credits=%d", e.A, e.B)
	case KRouteShed:
		return fmt.Sprintf("backend=%d refused (503)", e.A)
	case KRouteDeath:
		return fmt.Sprintf("backend=%d failed", e.A)
	case KRouteServed:
		return fmt.Sprintf("backend=%d dur=%s", e.A, time.Duration(e.B)*time.Microsecond)
	case KRouteFallback:
		tier := "local-runtime"
		if e.A == TierSequential {
			tier = "sequential"
		}
		return fmt.Sprintf("tier=%s dur=%s", tier, time.Duration(e.B)*time.Microsecond)
	}
	return ""
}

// ShardInfo is one shard's occupancy accounting inside a Snapshot.
type ShardInfo struct {
	Written  uint64 `json:"written"`  // events ever claimed on this shard
	Capacity int    `json:"capacity"` // ring size
	Dropped  uint64 `json:"dropped"`  // overwritten before this snapshot: max(written-capacity, 0)
	Skipped  uint64 `json:"skipped"`  // slots that failed validation during this walk
}

// Snapshot is one point-in-time read of a tracer, the JSON body served
// by /debug/trace and ingested by cmd/captrace. Events are ascending by
// timestamp.
type Snapshot struct {
	Source  string      `json:"source"`
	TakenAt int64       `json:"taken_at"`
	Shards  []ShardInfo `json:"shards"`
	Events  []Event     `json:"events"`
}

// Snapshot copies out the most recent events without stopping writers:
// each shard's ring is walked backwards from its write head, and every
// slot is accepted only if its sequence header matches the expected
// claim both before and after the payload copy — a slot overwritten
// mid-walk is counted in Skipped, not returned. n > 0 caps the merged
// result to the n most recent events; n <= 0 returns everything
// resident. Safe on a nil Tracer (returns an empty snapshot).
func (t *Tracer) Snapshot(source string, n int) Snapshot {
	snap := Snapshot{Source: source, TakenAt: time.Now().UnixNano()}
	if t == nil {
		return snap
	}
	snap.Shards = make([]ShardInfo, len(t.shards))
	size := uint64(t.mask + 1)
	for si := range t.shards {
		s := &t.shards[si]
		head := s.seq.Load()
		info := &snap.Shards[si]
		info.Written = head
		info.Capacity = int(size)
		if head > size {
			info.Dropped = head - size
		}
		resident := head
		if resident > size {
			resident = size
		}
		for k := uint64(0); k < resident; k++ {
			i := head - 1 - k // claim index, newest first
			sl := &s.ring[i&t.mask]
			if sl.hdr.Load() != i+1 {
				info.Skipped++
				continue
			}
			ev := Event{
				TS:     sl.ts.Load(),
				TID:    sl.tid.Load(),
				Source: source,
			}
			packed := sl.packed.Load()
			if sl.hdr.Load() != i+1 { // overwritten mid-copy: discard
				info.Skipped++
				continue
			}
			ev.Kind = Kind(packed >> 56)
			ev.Shard = uint8(packed >> 48)
			ev.A = uint16(packed >> 32)
			ev.B = uint32(packed)
			snap.Events = append(snap.Events, ev)
		}
	}
	sortEvents(snap.Events)
	if n > 0 && len(snap.Events) > n {
		snap.Events = append([]Event(nil), snap.Events[len(snap.Events)-n:]...)
	}
	return snap
}

// DecodeSnapshots reads one /debug/trace body: either a single Snapshot
// object (capserve, a router with no co-process backends) or an array
// of them (a router merging its spawned backends' rings into one
// endpoint). Readers shouldn't care which topology produced the bytes,
// so both shapes decode to the same []Snapshot.
func DecodeSnapshots(r io.Reader) ([]Snapshot, error) {
	dec := json.NewDecoder(r)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	if len(raw) > 0 && raw[0] == '[' {
		var snaps []Snapshot
		err := json.Unmarshal(raw, &snaps)
		return snaps, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return []Snapshot{snap}, nil
}

// MergeEvents flattens several snapshots (e.g. router + each backend)
// into one ascending timeline. Wall-clock timestamps make same-host
// cross-process ordering meaningful, which is all the smoke tests and
// the CLI need.
func MergeEvents(snaps ...Snapshot) []Event {
	var all []Event
	for _, s := range snaps {
		all = append(all, s.Events...)
	}
	sortEvents(all)
	return all
}

// sortEvents orders by timestamp, then stably by (source, kind) so
// equal-timestamp events from one process keep a deterministic order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		if evs[i].Source != evs[j].Source {
			return evs[i].Source < evs[j].Source
		}
		return evs[i].Kind < evs[j].Kind
	})
}

// Trace-ID generation: ids are random-looking, never zero, and unique
// per process with overwhelming probability — a per-process random seed
// walked by a counter through the splitmix64 finaliser. No coordination
// between processes is needed; capload stamps most ids in practice.
var (
	idSeed    = newSeed()
	idCounter atomic.Uint64
)

func newSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return uint64(time.Now().UnixNano())
}

// NewID returns a fresh non-zero trace ID.
func NewID() uint64 {
	for {
		if id := mix(idSeed + idCounter.Add(1)*0x9e3779b97f4a7c15); id != 0 {
			return id
		}
	}
}

// FormatID renders a trace ID as the 16-hex-digit header value.
func FormatID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// ParseID parses a header value produced by FormatID (any nonzero hex
// uint64 is accepted; garbage and zero are rejected so a malformed
// client header degrades to "untraced", never to a shared bucket).
func ParseID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("captrace: bad trace id %q: %v", s, err)
	}
	if id == 0 {
		return 0, fmt.Errorf("captrace: zero trace id")
	}
	return id, nil
}

// Sampler makes the 1-in-N decision for tracing server-generated
// request IDs (adopted IDs bypass it — whoever stamped the header
// already decided). A nil Sampler never samples; n <= 1 always samples.
// The counter is shared across goroutines: "every Nth admission", not
// per-conn, so a steady load always yields exemplars.
type Sampler struct {
	n uint64
	c atomic.Uint64
}

// NewSampler returns a 1-in-n sampler (n <= 1: always; see Sampler).
func NewSampler(n int) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether this request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.c.Add(1)%s.n == 0
}

// Context plumbing: the router serves its local-fallback tier by
// calling the in-process capserve handler directly, so the trace
// identity travels in the request context instead of being re-derived
// from headers (which would double-sample and could disagree).

type ctxKey struct{}

type ctxIdentity struct {
	id     uint64
	traced bool
}

// WithRequest returns a context carrying an already-decided trace
// identity. traced=false with a nonzero id means "identified but not
// sampled": the id still echoes on responses, but no events are
// recorded for it.
func WithRequest(ctx context.Context, id uint64, traced bool) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxIdentity{id: id, traced: traced})
}

// RequestFrom extracts an identity placed by WithRequest; ok is false
// when the context carries none and the callee should derive its own.
func RequestFrom(ctx context.Context) (id uint64, traced, ok bool) {
	v, ok := ctx.Value(ctxKey{}).(ctxIdentity)
	return v.id, v.traced, ok
}
