package captrace

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// stormPayload derives every event field from one generator value, so a
// snapshot can recompute what each field must be from the timestamp
// alone — any event whose fields disagree was torn.
func stormPayload(v uint64) (ts int64, tid uint64, kind Kind, shard uint8, a uint16, b uint32) {
	h := mix(v)
	ts = int64(v)
	tid = h | 1 // nonzero
	kind = Kind(1 + v%uint64(kindCount-1))
	shard = uint8(h >> 8)
	a = uint16(h >> 16)
	b = uint32(h >> 32)
	return
}

func checkStormEvent(t *testing.T, ev Event) {
	t.Helper()
	_, tid, kind, shard, a, b := stormPayload(uint64(ev.TS))
	if ev.TID != tid || ev.Kind != kind || ev.Shard != shard || ev.A != a || ev.B != b {
		t.Fatalf("torn event: got %+v, want tid=%x kind=%v shard=%d a=%d b=%d",
			ev, tid, kind, shard, a, b)
	}
}

// TestStormDropsNeverTears hammers a deliberately tiny tracer from many
// writers while concurrent readers snapshot it: every ring wraps many
// times over, so the test exercises exactly the overflow path the ISSUE
// names. The invariants: every event a snapshot returns is internally
// consistent (no torn slots), per-shard accounting adds up (claims ==
// events written, drops == claims beyond capacity), and nothing blocks
// — the writers finish a fixed amount of work regardless of reader
// pressure. Run under -race in CI.
func TestStormDropsNeverTears(t *testing.T) {
	const (
		writers   = 8
		perWriter = 50_000
		readers   = 4
	)
	tr := New(4, 64) // 4 shards × 64 slots: overflow is immediate and constant

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tr.Snapshot("storm", 0)
				for _, ev := range snap.Events {
					checkStormEvent(t, ev)
				}
				if len(snap.Events) > tr.Shards()*tr.PerShard() {
					t.Errorf("snapshot larger than total capacity: %d", len(snap.Events))
					return
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w)<<32 | uint64(i) | 1
				ts, tid, kind, shard, a, b := stormPayload(v)
				tr.record(ts, kind, tid, shard, a, b)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	// Quiescent accounting: every claim happened, the overflow was
	// dropped (not blocked on), and a final snapshot validates clean
	// with zero skips.
	snap := tr.Snapshot("storm", 0)
	var written, dropped uint64
	for _, sh := range snap.Shards {
		written += sh.Written
		dropped += sh.Dropped
		if sh.Skipped != 0 {
			t.Errorf("quiescent snapshot skipped %d slots", sh.Skipped)
		}
	}
	if want := uint64(writers * perWriter); written != want {
		t.Fatalf("claims = %d, want %d (a writer blocked or lost a claim)", written, want)
	}
	if dropped == 0 {
		t.Fatalf("no drops recorded despite %d events into %d slots", written, tr.Shards()*tr.PerShard())
	}
	if len(snap.Events)+int(dropped) < int(written) {
		t.Fatalf("events %d + dropped %d < written %d", len(snap.Events), dropped, written)
	}
	for _, ev := range snap.Events {
		checkStormEvent(t, ev)
	}
}

func TestSnapshotOrderingAndCap(t *testing.T) {
	tr := New(2, 16)
	for i := 1; i <= 10; i++ {
		tr.record(int64(i), KProbeGranted, uint64(i), 0, 0, uint32(i))
	}
	snap := tr.Snapshot("unit", 0)
	if len(snap.Events) != 10 {
		t.Fatalf("got %d events, want 10", len(snap.Events))
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].TS < snap.Events[i-1].TS {
			t.Fatalf("events out of order: %d after %d", snap.Events[i].TS, snap.Events[i-1].TS)
		}
	}
	capped := tr.Snapshot("unit", 3)
	if len(capped.Events) != 3 {
		t.Fatalf("n=3 returned %d events", len(capped.Events))
	}
	if capped.Events[len(capped.Events)-1].TS != 10 {
		t.Fatalf("cap did not keep the most recent events: last ts=%d", capped.Events[len(capped.Events)-1].TS)
	}
	for _, ev := range capped.Events {
		if ev.Source != "unit" {
			t.Fatalf("event source = %q, want unit", ev.Source)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(KProbeGranted, 1, 0, 0, 0) // must not panic
	snap := tr.Snapshot("nil", 10)
	if len(snap.Events) != 0 || len(snap.Shards) != 0 {
		t.Fatalf("nil tracer snapshot not empty: %+v", snap)
	}
	if tr.Shards() != 0 || tr.PerShard() != 0 {
		t.Fatalf("nil tracer geometry nonzero")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := []Event{
		{TS: 123, TID: 0xdeadbeef, Kind: KRouteDispatch, A: 2, B: 16, Source: "router"},
		{TS: 456, Kind: KThrottleOpen}, // tid 0: id omitted from wire form
		{TS: 789, TID: 7, Kind: KProbeGranted, Shard: 3, A: 1, B: 9},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := New(1, 8)
	tr.record(1, KReqAdmit, 42, 0, 0, 3)
	tr.record(2, KReqDone, 42, 0, 200, 1500)
	snap := tr.Snapshot("backend-0", 0)
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Source != "backend-0" || len(got.Events) != 2 || len(got.Shards) != 1 {
		t.Fatalf("snapshot round trip mangled: %+v", got)
	}
	if got.Events[1].Kind != KReqDone || got.Events[1].A != 200 {
		t.Fatalf("payload lost: %+v", got.Events[1])
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("kind %d does not round-trip through %q", k, name)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Fatal("bogus name parsed")
	}
}

func TestIDRoundTrip(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned zero")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %x within 1000 draws", id)
		}
		seen[id] = true
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%x) = %q, want 16 hex digits", id, s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Fatalf("ParseID(FormatID(%x)) = %x, %v", id, back, err)
		}
	}
	for _, bad := range []string{"", "zz", "0", "0000000000000000", "12345678901234567890123"} {
		if _, err := ParseID(bad); err == nil {
			t.Fatalf("ParseID(%q) accepted", bad)
		}
	}
}

func TestSampler(t *testing.T) {
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("1-in-1 sampler skipped")
		}
	}
	s := NewSampler(8)
	hits := 0
	for i := 0; i < 800; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-8 over 800 draws hit %d, want exactly 100", hits)
	}
}

func TestContextIdentity(t *testing.T) {
	ctx := context.Background()
	if _, _, ok := RequestFrom(ctx); ok {
		t.Fatal("bare context reported an identity")
	}
	ctx = WithRequest(ctx, 0xabc, true)
	id, traced, ok := RequestFrom(ctx)
	if !ok || id != 0xabc || !traced {
		t.Fatalf("got id=%x traced=%v ok=%v", id, traced, ok)
	}
	ctx = WithRequest(ctx, 0xdef, false)
	id, traced, _ = RequestFrom(ctx)
	if id != 0xdef || traced {
		t.Fatalf("overwrite failed: id=%x traced=%v", id, traced)
	}
}

func TestMergeEvents(t *testing.T) {
	a := Snapshot{Source: "router", Events: []Event{{TS: 2, Kind: KRouteDispatch, Source: "router"}, {TS: 5, Kind: KRouteServed, Source: "router"}}}
	b := Snapshot{Source: "backend", Events: []Event{{TS: 3, Kind: KReqAdmit, Source: "backend"}, {TS: 4, Kind: KReqDone, Source: "backend"}}}
	merged := MergeEvents(a, b)
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	want := []Kind{KRouteDispatch, KReqAdmit, KReqDone, KRouteServed}
	for i, k := range want {
		if merged[i].Kind != k {
			t.Fatalf("merged[%d] = %v, want %v", i, merged[i].Kind, k)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	tr := New(0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(KProbeGranted, 0xabcdef, 3, 1, 42)
		}
	})
}

func BenchmarkRecordDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(KProbeGranted, 0xabcdef, 3, 1, 42)
		}
	})
}

// TestDecodeSnapshots covers both /debug/trace wire shapes: the single
// object a capserve serves and the array a router with in-process
// backends serves. Readers must not care which topology they hit.
func TestDecodeSnapshots(t *testing.T) {
	tr := New(1, 8)
	tr.record(1, KReqAdmit, 7, 0, 0, 1)
	one := tr.Snapshot("solo", 0)

	blob, _ := json.Marshal(one)
	snaps, err := DecodeSnapshots(bytes.NewReader(blob))
	if err != nil || len(snaps) != 1 || snaps[0].Source != "solo" || len(snaps[0].Events) != 1 {
		t.Fatalf("object shape: snaps=%+v err=%v", snaps, err)
	}

	blob, _ = json.Marshal([]Snapshot{one, tr.Snapshot("twin", 0)})
	snaps, err = DecodeSnapshots(bytes.NewReader(blob))
	if err != nil || len(snaps) != 2 || snaps[1].Source != "twin" {
		t.Fatalf("array shape: snaps=%+v err=%v", snaps, err)
	}

	if _, err := DecodeSnapshots(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
