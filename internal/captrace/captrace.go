// Package captrace is the runtime's flight recorder: a sharded,
// lock-free, fixed-size ring buffer of fixed-width lifecycle events fed
// by the probe/divide hot path and read — aggregated, never locked —
// by the /debug/trace endpoints, capload's -trace exemplars and the
// captrace CLI.
//
// The paper's evaluation leans on cycle-level event traces from the
// SOMT simulator (every granted division is a DivisionEvent with its
// cycle, parent and child context); the native, serving and cluster
// tiers get the same lens here, built the way McKenney's per-CPU
// playbook says to build any hot-path observable: per-shard state on
// the write side, aggregation on the read side, so tracing never
// re-serializes the path it observes.
//
// Write-side contract (the reason this can sit inside an ~18–55 ns
// probe): recording one event is one atomic increment to claim a slot
// plus a handful of atomic stores into it — no mutex, no allocation,
// no channel, and no word shared with another shard's writers. When a
// ring wraps, old events are overwritten: the tracer drops, it never
// blocks. A nil *Tracer disables everything at the cost of one
// predictable branch.
//
// Read-side contract: Snapshot walks each shard's ring backwards,
// validating every slot's sequence header before AND after copying the
// payload (all fields are single atomic words, so the copy itself can
// never tear a word). A slot being overwritten mid-read fails the
// validation and is counted as skipped, not returned — a snapshot
// under full write load is smaller, never wrong.
//
// Trace identity: a 64-bit request ID carried end to end in the
// X-Capsule-Trace-ID header. Events recorded with ID zero are
// tier-scoped (throttle transitions); everything else hangs off the
// request that caused it, so one ID reconstructs a request's journey
// router → backend → pool shard.
package captrace

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// HeaderTraceID is the request/response header carrying the 16-hex-digit
// trace ID across tiers: capload stamps it, capserve and capcluster
// adopt it (an adopted ID is always traced), capcluster re-propagates it
// on dispatch, and every tier echoes it on the response.
const HeaderTraceID = "X-Capsule-Trace-ID"

// Kind identifies one lifecycle event type. The A/B payload meanings per
// kind are documented on the constants and rendered by Event.Detail.
type Kind uint8

const (
	// KNone is the zero Kind; it is never recorded.
	KNone Kind = iota

	// Runtime tier (internal/capsule). Shard is the prober's pool/stat
	// shard for probe events.

	// KProbeGranted: a probe reserved a context token. A = shards walked
	// beyond the home shard (0 = local hit, >0 = steal distance),
	// B = context id granted.
	KProbeGranted
	// KProbeDenied: a probe was refused. A = deny reason (DenyNoCtx,
	// DenyThrottle, DenyClosed).
	KProbeDenied
	// KDivideInline: a Divide offer was refused and ran inline on the
	// caller (the sequential fallback at a division point).
	KDivideInline
	// KHandoff: a granted division reached its worker. A = outcome
	// (HandoffSpin: the worker was still spinning, slot CAS won;
	// HandoffPark: the worker had parked, mailbox send), B = context id.
	KHandoff
	// KDeath: a worker died (kthr) and its token went home. B = context id.
	KDeath
	// KThrottleOpen / KThrottleClose: the death-rate throttle transitioned.
	// Recorded with trace ID zero — the throttle belongs to the runtime,
	// not to any one request.
	KThrottleOpen
	KThrottleClose

	// Serving tier (internal/capserve).

	// KReqAdmit: a request took an accept-queue slot. B = queue occupancy
	// after admission.
	KReqAdmit
	// KReqShed: the accept queue was full; the request was 503ed.
	KReqShed
	// KReqDegraded: the admitted request found no division headroom and
	// ran on the Sequential domain.
	KReqDegraded
	// KReqDone: the request completed. A = HTTP status, B = duration µs.
	KReqDone

	// Cluster tier (internal/capcluster).

	// KRouteRecv: the router adopted or stamped this request's trace ID.
	KRouteRecv
	// KRouteDispatch: a remote probe was granted and the request went to
	// the wire. A = backend index, B = the backend's credit ceiling at
	// dispatch (the gauge snapshot).
	KRouteDispatch
	// KRouteShed: the dispatched backend 503ed (stale credits); the
	// router moves on. A = backend index.
	KRouteShed
	// KRouteDeath: the dispatch died (transport error, timeout, 5xx).
	// A = backend index.
	KRouteDeath
	// KRouteServed: a backend's response was proxied to the client.
	// A = backend index, B = dispatch duration µs.
	KRouteServed
	// KRouteFallback: the whole fleet refused or failed and the local
	// tier served the request. A = tier (TierLocalRuntime or
	// TierSequential), B = local handling duration µs.
	KRouteFallback

	kindCount // keep last
)

// KProbeDenied reasons (Event.A).
const (
	DenyNoCtx uint16 = iota
	DenyThrottle
	DenyClosed
)

// KHandoff outcomes (Event.A).
const (
	HandoffSpin uint16 = iota // spin-hit: slot store + CAS, no wakeup
	HandoffPark               // park-wakeup: mailbox send to a parked worker
)

// KRouteFallback tiers (Event.A).
const (
	TierLocalRuntime uint16 = 1 // local capsule runtime, divisions offered
	TierSequential   uint16 = 2 // local tier degraded to sequential
)

var kindNames = [kindCount]string{
	KNone:          "none",
	KProbeGranted:  "probe_granted",
	KProbeDenied:   "probe_denied",
	KDivideInline:  "divide_inline",
	KHandoff:       "handoff",
	KDeath:         "death",
	KThrottleOpen:  "throttle_open",
	KThrottleClose: "throttle_close",
	KReqAdmit:      "req_admit",
	KReqShed:       "req_shed",
	KReqDegraded:   "req_degraded",
	KReqDone:       "req_done",
	KRouteRecv:     "route_recv",
	KRouteDispatch: "route_dispatch",
	KRouteShed:     "route_shed",
	KRouteDeath:    "route_death",
	KRouteServed:   "route_served",
	KRouteFallback: "route_fallback",
}

// String returns the kind's wire name (stable: snapshots are consumed by
// a separately-built CLI).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString is the inverse of Kind.String; ok is false for names
// this build does not know (a newer snapshot read by an older CLI).
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s && Kind(k) != KNone {
			return Kind(k), true
		}
	}
	return KNone, false
}

// cacheLine mirrors internal/capsule's assumption; shard headers are
// padded to two lines so neighbouring writers never false-share.
const cacheLine = 64

// slot is one ring entry: a sequence header plus a fixed-width payload,
// every field its own atomic word. The header holds claim+1 of the event
// occupying the slot, or 0 while a writer is mid-publish; a reader
// accepts the payload only when the header reads the exact expected
// sequence before and after the copy. All loads and stores are atomic
// (sequentially consistent), so the slot protocol is race-detector-clean
// and a stale overwrite can never be observed as a torn event: any
// overwriter invalidates the header before touching the payload, and a
// reader that saw one of its payload words must then see its header
// write too.
type slot struct {
	hdr    atomic.Uint64 // claim+1, or 0 while being written
	ts     atomic.Int64  // unix nanoseconds (wall clock: cross-process comparable)
	tid    atomic.Uint64 // trace ID, 0 = tier-scoped event
	packed atomic.Uint64 // kind<<56 | shard<<48 | a<<32 | b
}

// traceShard is one padded write head plus its ring. seq counts every
// event ever claimed on this shard; seq - len(ring) of them (when
// positive) have been overwritten.
type traceShard struct {
	seq  atomic.Uint64
	_    [2*cacheLine - 8]byte
	ring []slot
}

// Tracer is the sharded recorder. A nil *Tracer is the disabled tracer:
// Record and Snapshot are safe no-ops, so call sites need exactly one
// branch and no build tags.
type Tracer struct {
	shards []traceShard
	mask   uint64
	// now is the event clock, injectable by tests. The default is wall
	// time so events from different processes on one machine merge into
	// one timeline.
	now func() int64
}

// DefaultPerShard is the per-shard ring capacity used when New is given
// a non-positive size: at ~6 events per traced request, 4096 slots hold
// several hundred requests per shard before overwrite.
const DefaultPerShard = 4096

// New builds a Tracer with shards cache-line-padded rings of perShard
// slots each (rounded up to a power of two; non-positive means
// DefaultPerShard). Non-positive shards means one per GOMAXPROCS at
// call time. Total memory is shards × perShard × 32 bytes.
func New(shards, perShard int) *Tracer {
	if shards <= 0 {
		shards = defaultShards()
	}
	if perShard <= 0 {
		perShard = DefaultPerShard
	}
	size := 1
	for size < perShard {
		size <<= 1
	}
	t := &Tracer{
		shards: make([]traceShard, shards),
		mask:   uint64(size - 1),
		now:    func() int64 { return time.Now().UnixNano() },
	}
	for i := range t.shards {
		t.shards[i].ring = make([]slot, size)
	}
	return t
}

// Shards returns the shard count (0 for the nil tracer).
func (t *Tracer) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.shards)
}

// PerShard returns the per-shard ring capacity (0 for the nil tracer).
func (t *Tracer) PerShard() int {
	if t == nil {
		return 0
	}
	return int(t.mask + 1)
}

// Record writes one event. The write shard is picked by the caller's
// stack-address affinity (the same trick the capsule pool uses), NOT by
// the shard argument — shard is payload, the pool/stat shard the event
// describes, or 0 where that has no meaning. Safe on a nil Tracer.
//
// Cost when t is non-nil: one clock read, one atomic increment, five
// atomic stores. Zero allocations, no waiting of any kind — under ring
// overflow the oldest events are silently overwritten.
func (t *Tracer) Record(kind Kind, tid uint64, shard uint8, a uint16, b uint32) {
	if t == nil {
		return
	}
	t.record(t.now(), kind, tid, shard, a, b)
}

// record is Record with the timestamp supplied, the seam the storm test
// uses to write self-validating payloads.
func (t *Tracer) record(ts int64, kind Kind, tid uint64, shard uint8, a uint16, b uint32) {
	s := &t.shards[writeHint(len(t.shards))]
	i := s.seq.Add(1) - 1
	sl := &s.ring[i&t.mask]
	sl.hdr.Store(0) // invalidate: readers of the old occupant now fail validation
	sl.ts.Store(ts)
	sl.tid.Store(tid)
	sl.packed.Store(pack(kind, shard, a, b))
	sl.hdr.Store(i + 1) // publish
}

func pack(kind Kind, shard uint8, a uint16, b uint32) uint64 {
	return uint64(kind)<<56 | uint64(shard)<<48 | uint64(a)<<32 | uint64(b)
}

// defaultShards mirrors the capsule pool's shard default: one per P.
func defaultShards() int {
	k := runtime.GOMAXPROCS(0)
	if k < 1 {
		k = 1
	}
	return k
}

// writeHint is the per-goroutine shard affinity: a mixed hash of a
// current stack address, a few ALU ops with no allocation and no
// atomics. Same rationale as capsule.affinityHint — a hint, not an
// identity; a moved stack just re-homes the goroutine.
func writeHint(k int) int {
	if k == 1 {
		return 0
	}
	var b byte
	return int(mix(uint64(uintptr(unsafe.Pointer(&b)))) % uint64(k))
}

// mix is splitmix64's finaliser (shared idiom with capsule.mix, copied
// rather than imported: capsule imports this package, not vice versa).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
