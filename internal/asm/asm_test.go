package asm

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble(Unit{Name: "test.s", Text: src})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, maxThreads int) *emu.Machine {
	t.Helper()
	p := mustAssemble(t, src)
	m := emu.NewMachine(p, maxThreads)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestBasicArithmetic(t *testing.T) {
	m := run(t, `
main:
	li a0, 6
	li a1, 7
	mul a2, a0, a1
	print a2
	halt
`, 1)
	if len(m.Output) != 1 || m.Output[0] != 42 {
		t.Fatalf("output = %v", m.Output)
	}
}

func TestLargeImmediates(t *testing.T) {
	m := run(t, `
main:
	li a0, 0x70000000
	print a0
	li a1, -1000000
	print a1
	li a2, 123456789012345
	print a2
	halt
`, 1)
	want := []int64{0x70000000, -1000000, 123456789012345}
	for i, w := range want {
		if m.Output[i] != w {
			t.Fatalf("output[%d] = %d; want %d", i, m.Output[i], w)
		}
	}
}

func TestDataSectionAndLA(t *testing.T) {
	m := run(t, `
.data
tbl:
	.word 10, 20, 30
msg:
	.asciiz "ok"
.text
main:
	la a0, tbl
	ld a1, 8(a0)
	print a1
	la a2, msg
	lb a3, 1(a2)
	print a3
	halt
`, 1)
	if m.Output[0] != 20 {
		t.Fatalf("word load got %d", m.Output[0])
	}
	if m.Output[1] != int64('k') {
		t.Fatalf("byte load got %d", m.Output[1])
	}
}

func TestWordSymbolReference(t *testing.T) {
	m := run(t, `
.data
ptr:
	.word target
target:
	.word 77
.text
main:
	la a0, ptr
	ld a1, 0(a0)   # a1 = &target
	ld a2, 0(a1)
	print a2
	halt
`, 1)
	if m.Output[0] != 77 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestControlFlowLoop(t *testing.T) {
	m := run(t, `
main:
	li a0, 0      # sum
	li a1, 1      # i
	li a2, 10
loop:
	add a0, a0, a1
	addi a1, a1, 1
	ble a1, a2, loop
	print a0
	halt
`, 1)
	if m.Output[0] != 55 {
		t.Fatalf("sum = %v", m.Output)
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, `
main:
	li a0, 5
	call double
	print a0
	halt
double:
	add a0, a0, a0
	ret
`, 1)
	if m.Output[0] != 10 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestStackDiscipline(t *testing.T) {
	m := run(t, `
main:
	li a0, 3
	call fact
	print a0
	halt
fact:                 # recursive factorial using the stack
	addi sp, sp, -16
	sd ra, 0(sp)
	sd a0, 8(sp)
	li t0, 2
	blt a0, t0, base
	addi a0, a0, -1
	call fact
	ld t1, 8(sp)
	mul a0, a0, t1
	j out
base:
	li a0, 1
out:
	ld ra, 0(sp)
	addi sp, sp, 16
	ret
`, 1)
	if m.Output[0] != 6 {
		t.Fatalf("3! = %v", m.Output)
	}
}

func TestFloatOps(t *testing.T) {
	m := run(t, `
.data
x:
	.float 2.0
.text
main:
	la a0, x
	fld f1, 0(a0)
	fsqrt f2, f1
	fmul f3, f2, f2
	fcvt.l.d a1, f3
	print a1
	halt
`, 1)
	if m.Output[0] != 2 {
		t.Fatalf("sqrt(2)^2 trunc = %v", m.Output)
	}
}

func TestDivisionAndKthr(t *testing.T) {
	// Parent divides; both increment a locked counter; parent joins.
	m := run(t, `
.data
counter:
	.word 0
.text
main:
	nthr t0
	li t1, -1
	beq t0, t1, seq      # denied: run the work twice sequentially
	bnez t0, child
	# parent (t0 == 0)
	call bump
	join
	la a0, counter
	ld a1, 0(a0)
	print a1
	halt
child:
	call bump
	kthr
seq:
	call bump
	call bump
	la a0, counter
	ld a1, 0(a0)
	print a1
	halt
bump:
	la t2, counter
	mlock t2
	ld t3, 0(t2)
	addi t3, t3, 1
	sd t3, 0(t2)
	munlock t2
	ret
`, 4)
	if m.Output[0] != 2 {
		t.Fatalf("counter = %v", m.Output)
	}
	if m.DivGranted != 1 {
		t.Fatalf("granted = %d", m.DivGranted)
	}
}

func TestDivisionDeniedPath(t *testing.T) {
	// maxThreads 1: division always denied; sequential fallback runs.
	m := run(t, `
.data
counter:
	.word 0
.text
main:
	nthr t0
	li t1, -1
	beq t0, t1, seq
	halt                 # unreachable under maxThreads=1
seq:
	li a1, 99
	print a1
	halt
`, 1)
	if len(m.Output) != 1 || m.Output[0] != 99 {
		t.Fatalf("output = %v", m.Output)
	}
	if m.DivDenied != 1 {
		t.Fatalf("denied = %d", m.DivDenied)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"main:\n\tbogus a0, a1\n",
		"main:\n\tadd a0, a1\n",     // wrong arity
		"main:\n\tadd a0, a1, f2\n", // fp reg in int slot
		"main:\n\tj nowhere\n",      // undefined label
		".data\nx:\n\t.word 1\n",    // no text entry
		"main:\nmain:\n\thalt\n",    // duplicate label
		".text\n\t.word 5\n",        // data directive in text
		"main:\n\tld a0, 8[sp]\n",   // bad mem operand
		"main:\n\t.bogusdir\n",      // unknown directive
	}
	for _, src := range cases {
		if _, err := Assemble(Unit{Name: "bad.s", Text: src}); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestMultiUnitLinking(t *testing.T) {
	lib := Unit{Name: "lib.s", Text: `
triple:
	li t0, 3
	mul a0, a0, t0
	ret
.data
libdata:
	.word 5
`}
	mainU := Unit{Name: "main.s", Text: `
_start:
	la a0, libdata
	ld a0, 0(a0)
	call triple
	print a0
	halt
`}
	p, err := Assemble(lib, mainU)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if p.Entry == 0 {
		// _start is after lib's code, so entry must be nonzero.
		t.Fatal("entry should point at _start, not 0")
	}
	m := emu.NewMachine(p, 1)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Output[0] != 15 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	m := run(t, `
# leading comment
main:	li a0, 1   # trailing comment
	print a0       // c++ style
	halt
`, 1)
	if m.Output[0] != 1 {
		t.Fatalf("got %v", m.Output)
	}
}

func TestDisassembleContainsSymbols(t *testing.T) {
	p := mustAssemble(t, `
main:
	li a0, 1
	halt
`)
	d := p.Disassemble(0, len(p.Insts))
	if !strings.Contains(d, "main:") {
		t.Fatalf("disassembly missing label:\n%s", d)
	}
	if !strings.Contains(d, "halt") {
		t.Fatalf("disassembly missing halt:\n%s", d)
	}
}

func TestPseudoExpansions(t *testing.T) {
	p := mustAssemble(t, `
main:
	mv a0, a1
	neg a2, a3
	not a4, a5
	ret
`)
	wantOps := []isa.Op{isa.OpAddi, isa.OpSub, isa.OpXori, isa.OpJalr}
	for i, w := range wantOps {
		if p.Insts[i].Op != w {
			t.Fatalf("inst %d = %v; want %v", i, p.Insts[i].Op, w)
		}
	}
}

func TestAlignDirective(t *testing.T) {
	p := mustAssemble(t, `
.data
a:
	.byte 1
	.align 8
b:
	.word 2
.text
main:
	halt
`)
	bAddr, err := p.DataAddr("b")
	if err != nil {
		t.Fatal(err)
	}
	if bAddr%8 != 0 {
		t.Fatalf("b not aligned: %#x", bAddr)
	}
}
