// Package asm implements the assembler for the reproduction's ISA. It plays
// the role of the paper's assembly-level stage: CapC's code generator emits
// textual assembly (as GCC did for the paper), the capsule runtime is written
// directly in this assembly, and Assemble links any number of units into one
// executable prog.Program with a shared symbol table.
//
// Syntax summary:
//
//	# comment            // comment
//	.text                switch to text section
//	.data                switch to data section
//	label:               define a symbol at the current location
//	.word 1, -2, sym     8-byte words (symbols store their value)
//	.byte 1, 2, 3        raw bytes
//	.float 1.5           float64 image
//	.space 64            zeroed bytes
//	.asciiz "s"          NUL-terminated string
//	.align 8             pad to alignment
//	add a0, a1, a2       one instruction per line (see isa package)
//
// Pseudo-instructions: li, la, mv, neg, not, beqz, bnez, bgt, ble, bgtu,
// bleu, call, ret, jmp.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Unit is one named assembly source (name is used in error messages).
type Unit struct {
	Name string
	Text string
}

// Assemble links the units into a program. The entry point is the `_start`
// symbol if present, otherwise `main`.
func Assemble(units ...Unit) (*prog.Program, error) {
	a := &assembler{symbols: make(map[string]prog.Symbol)}
	// Pass 1: lay out sections and record symbol values.
	for _, u := range units {
		if err := a.pass(u, 1); err != nil {
			return nil, err
		}
	}
	// Pass 2: emit instructions and data with symbols resolved.
	a.reset()
	for _, u := range units {
		if err := a.pass(u, 2); err != nil {
			return nil, err
		}
	}
	p := &prog.Program{Insts: a.insts, Data: a.data, Symbols: a.symbols}
	entrySym := "_start"
	if _, ok := a.symbols[entrySym]; !ok {
		entrySym = "main"
	}
	e, ok := a.symbols[entrySym]
	if !ok || e.Kind != prog.SymText {
		return nil, fmt.Errorf("asm: no _start or main text symbol")
	}
	p.Entry = int32(e.Value)
	return p, nil
}

type assembler struct {
	symbols map[string]prog.Symbol
	insts   []isa.Inst
	data    []byte

	// Layout cursors.
	textPos int // instruction index
	dataPos int // byte offset within the data image
}

func (a *assembler) reset() {
	a.textPos, a.dataPos = 0, 0
	a.insts = nil
	a.data = nil
}

type lineCtx struct {
	unit string
	num  int
}

func (lc lineCtx) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", lc.unit, lc.num, fmt.Sprintf(format, args...))
}

func (a *assembler) pass(u Unit, pass int) error {
	section := "text"
	lines := strings.Split(u.Text, "\n")
	for i, raw := range lines {
		lc := lineCtx{unit: u.Name, num: i + 1}
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Peel leading labels.
		for {
			idx := labelEnd(line)
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !validIdent(name) {
				return lc.errf("invalid label %q", name)
			}
			if pass == 1 {
				if _, dup := a.symbols[name]; dup {
					return lc.errf("duplicate symbol %q", name)
				}
				if section == "text" {
					a.symbols[name] = prog.Symbol{Kind: prog.SymText, Value: int64(a.textPos)}
				} else {
					a.symbols[name] = prog.Symbol{Kind: prog.SymData, Value: int64(prog.DataBase) + int64(a.dataPos)}
				}
			}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			var err error
			section, err = a.directive(lc, section, line, pass)
			if err != nil {
				return err
			}
			continue
		}
		if section != "text" {
			return lc.errf("instruction outside .text: %q", line)
		}
		if err := a.instruction(lc, line, pass); err != nil {
			return err
		}
	}
	return nil
}

// stripComment removes '#' and '//' comments, respecting double-quoted
// strings (for .asciiz).
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == '#':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

// labelEnd returns the index of a leading "label:" colon, or -1. It only
// matches when the text before the colon is a plain identifier.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			if i == 0 {
				return -1
			}
			return i
		}
		if !isIdentChar(c) {
			return -1
		}
	}
	return -1
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

func (a *assembler) directive(lc lineCtx, section, line string, pass int) (string, error) {
	name, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		return "text", nil
	case ".data":
		return "data", nil
	case ".global", ".globl":
		return section, nil // all symbols are global in this assembler
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n <= 0 {
			return section, lc.errf(".align wants a positive integer")
		}
		if section != "data" {
			return section, lc.errf(".align only valid in .data")
		}
		for a.dataPos%int(n) != 0 {
			a.emitByte(0)
		}
		return section, nil
	case ".word", ".byte", ".float", ".space", ".ascii", ".asciiz":
		if section != "data" {
			return section, lc.errf("%s only valid in .data", name)
		}
	default:
		return section, lc.errf("unknown directive %s", name)
	}

	switch name {
	case ".word":
		for a.dataPos%8 != 0 {
			a.emitByte(0)
		}
		for _, f := range splitOperands(rest) {
			v, err := a.wordValue(lc, f, pass)
			if err != nil {
				return section, err
			}
			a.emitWord(v)
		}
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				return section, lc.errf("bad byte %q", f)
			}
			a.emitByte(byte(v))
		}
	case ".float":
		for a.dataPos%8 != 0 {
			a.emitByte(0)
		}
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return section, lc.errf("bad float %q", f)
			}
			a.emitWord(int64(math.Float64bits(v)))
		}
	case ".space":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return section, lc.errf(".space wants a non-negative integer")
		}
		for j := int64(0); j < n; j++ {
			a.emitByte(0)
		}
	case ".ascii", ".asciiz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return section, lc.errf("bad string %s", rest)
		}
		for j := 0; j < len(s); j++ {
			a.emitByte(s[j])
		}
		if name == ".asciiz" {
			a.emitByte(0)
		}
	}
	return section, nil
}

func (a *assembler) wordValue(lc lineCtx, f string, pass int) (int64, error) {
	if v, err := parseInt(f); err == nil {
		return v, nil
	}
	if !validIdent(f) {
		return 0, lc.errf("bad word value %q", f)
	}
	if pass == 1 {
		return 0, nil // symbol values resolve in pass 2
	}
	sym, ok := a.symbols[f]
	if !ok {
		return 0, lc.errf("undefined symbol %q", f)
	}
	return sym.Value, nil
}

func (a *assembler) emitByte(b byte) {
	a.data = append(a.data, b)
	a.dataPos++
}

func (a *assembler) emitWord(v int64) {
	for j := 0; j < 8; j++ {
		a.emitByte(byte(uint64(v) >> (8 * j)))
	}
}

func (a *assembler) emit(in isa.Inst) {
	a.insts = append(a.insts, in)
	a.textPos++
}

// splitOperands splits on top-level commas (no nesting in this syntax).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(body[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

const fitsI16Min, fitsI16Max = -32768, 32767

// liLen returns the number of instructions li expands to for imm.
func liLen(imm int64) int {
	if imm >= fitsI16Min && imm <= fitsI16Max {
		return 1
	}
	return 2
}

// emitLI expands li rd, imm.
func (a *assembler) emitLI(rd isa.Reg, imm int64) {
	if imm >= fitsI16Min && imm <= fitsI16Max {
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: isa.RegZero, Imm: imm})
		return
	}
	hi := int64(uint64(imm) >> 16)
	lo := int64(uint64(imm) & 0xFFFF)
	a.emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: hi})
	a.emit(isa.Inst{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: lo})
}

// instSize returns the instruction count a statement expands to (pass 1).
func (a *assembler) instSize(lc lineCtx, mnem string, ops []string) (int, error) {
	switch mnem {
	case "li":
		if len(ops) != 2 {
			return 0, lc.errf("li wants 2 operands")
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			return 0, lc.errf("li immediate %q: %v", ops[1], err)
		}
		return liLen(imm), nil
	case "la":
		return 2, nil
	default:
		return 1, nil
	}
}

func (a *assembler) instruction(lc lineCtx, line string, pass int) error {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.TrimSpace(mnem)
	ops := splitOperands(strings.TrimSpace(rest))
	if pass == 1 {
		n, err := a.instSize(lc, mnem, ops)
		if err != nil {
			return err
		}
		a.textPos += n
		return nil
	}
	return a.encode(lc, mnem, ops)
}

func (a *assembler) intReg(lc lineCtx, s string) (isa.Reg, error) {
	r, ok := isa.IntRegByName(s)
	if !ok {
		return 0, lc.errf("bad integer register %q", s)
	}
	return r, nil
}

func (a *assembler) fpReg(lc lineCtx, s string) (isa.Reg, error) {
	r, ok := isa.FPRegByName(s)
	if !ok {
		return 0, lc.errf("bad fp register %q", s)
	}
	return r, nil
}

func (a *assembler) textTarget(lc lineCtx, s string) (int32, error) {
	sym, ok := a.symbols[s]
	if !ok {
		return 0, lc.errf("undefined label %q", s)
	}
	if sym.Kind != prog.SymText {
		return 0, lc.errf("%q is not a text label", s)
	}
	return int32(sym.Value), nil
}

// memOperand parses "imm(reg)" or "(reg)".
func (a *assembler) memOperand(lc lineCtx, s string) (isa.Reg, int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, lc.errf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	var imm int64
	if immStr != "" {
		v, err := parseInt(immStr)
		if err != nil {
			return 0, 0, lc.errf("bad displacement %q", immStr)
		}
		imm = v
	}
	reg, err := a.intReg(lc, strings.TrimSpace(s[open+1:len(s)-1]))
	return reg, imm, err
}

func (a *assembler) encode(lc lineCtx, mnem string, ops []string) error {
	want := func(n int) error {
		if len(ops) != n {
			return lc.errf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch mnem {
	case "li":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			return lc.errf("li immediate %q: %v", ops[1], err)
		}
		a.emitLI(rd, imm)
		return nil
	case "la":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		sym, ok := a.symbols[ops[1]]
		if !ok {
			return lc.errf("undefined symbol %q", ops[1])
		}
		v := sym.Value
		hi := int64(uint64(v) >> 16)
		lo := int64(uint64(v) & 0xFFFF)
		a.emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: hi, Sym: ops[1]})
		a.emit(isa.Inst{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: lo})
		return nil
	case "mv":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.intReg(lc, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs})
		return nil
	case "neg":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.intReg(lc, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpSub, Rd: rd, Rs1: isa.RegZero, Rs2: rs})
		return nil
	case "not":
		if err := want(2); err != nil {
			return err
		}
		rd, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.intReg(lc, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpXori, Rd: rd, Rs1: rs, Imm: -1})
		return nil
	case "beqz", "bnez":
		if err := want(2); err != nil {
			return err
		}
		rs, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		t, err := a.textTarget(lc, ops[1])
		if err != nil {
			return err
		}
		op := isa.OpBeq
		if mnem == "bnez" {
			op = isa.OpBne
		}
		a.emit(isa.Inst{Op: op, Rs1: rs, Rs2: isa.RegZero, Targ: t, Sym: ops[1]})
		return nil
	case "bgt", "ble", "bgtu", "bleu":
		if err := want(3); err != nil {
			return err
		}
		r1, err := a.intReg(lc, ops[0])
		if err != nil {
			return err
		}
		r2, err := a.intReg(lc, ops[1])
		if err != nil {
			return err
		}
		t, err := a.textTarget(lc, ops[2])
		if err != nil {
			return err
		}
		var op isa.Op
		switch mnem {
		case "bgt":
			op = isa.OpBlt
		case "ble":
			op = isa.OpBge
		case "bgtu":
			op = isa.OpBltu
		case "bleu":
			op = isa.OpBgeu
		}
		// Operands swapped: bgt a,b == blt b,a.
		a.emit(isa.Inst{Op: op, Rs1: r2, Rs2: r1, Targ: t, Sym: ops[2]})
		return nil
	case "call":
		if err := want(1); err != nil {
			return err
		}
		t, err := a.textTarget(lc, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Targ: t, Sym: ops[0]})
		return nil
	case "ret":
		if err := want(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA})
		return nil
	case "jmp":
		if err := want(1); err != nil {
			return err
		}
		t, err := a.textTarget(lc, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJ, Targ: t, Sym: ops[0]})
		return nil
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return lc.errf("unknown mnemonic %q", mnem)
	}
	in := isa.Inst{Op: op, Targ: -1}
	var err error
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu:
		if err = want(3); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.intReg(lc, ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.intReg(lc, ops[2]); err != nil {
			return err
		}
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti:
		if err = want(3); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.intReg(lc, ops[1]); err != nil {
			return err
		}
		if in.Imm, err = parseInt(ops[2]); err != nil {
			return lc.errf("bad immediate %q", ops[2])
		}
	case isa.OpLui:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Imm, err = parseInt(ops[1]); err != nil {
			return lc.errf("bad immediate %q", ops[1])
		}
	case isa.OpLd, isa.OpLb:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, in.Imm, err = a.memOperand(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpSd, isa.OpSb:
		if err = want(2); err != nil {
			return err
		}
		if in.Rs2, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, in.Imm, err = a.memOperand(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpFld:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.fpReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, in.Imm, err = a.memOperand(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpFsd:
		if err = want(2); err != nil {
			return err
		}
		if in.Rs2, err = a.fpReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, in.Imm, err = a.memOperand(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		if err = want(3); err != nil {
			return err
		}
		if in.Rs1, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs2, err = a.intReg(lc, ops[1]); err != nil {
			return err
		}
		if in.Targ, err = a.textTarget(lc, ops[2]); err != nil {
			return err
		}
		in.Sym = ops[2]
	case isa.OpJ:
		if err = want(1); err != nil {
			return err
		}
		if in.Targ, err = a.textTarget(lc, ops[0]); err != nil {
			return err
		}
		in.Sym = ops[0]
	case isa.OpJal:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Targ, err = a.textTarget(lc, ops[1]); err != nil {
			return err
		}
		in.Sym = ops[1]
	case isa.OpJalr:
		if err = want(3); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.intReg(lc, ops[1]); err != nil {
			return err
		}
		if in.Imm, err = parseInt(ops[2]); err != nil {
			return lc.errf("bad immediate %q", ops[2])
		}
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv:
		if err = want(3); err != nil {
			return err
		}
		if in.Rd, err = a.fpReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.fpReg(lc, ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.fpReg(lc, ops[2]); err != nil {
			return err
		}
	case isa.OpFsqrt, isa.OpFneg:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.fpReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.fpReg(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpFlt, isa.OpFle, isa.OpFeq:
		if err = want(3); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.fpReg(lc, ops[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.fpReg(lc, ops[2]); err != nil {
			return err
		}
	case isa.OpFcvtIF, isa.OpFmvIF:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.fpReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.intReg(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpFcvtFI, isa.OpFmvFI:
		if err = want(2); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.fpReg(lc, ops[1]); err != nil {
			return err
		}
	case isa.OpNthr, isa.OpTcnt:
		if err = want(1); err != nil {
			return err
		}
		if in.Rd, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
	case isa.OpMlock, isa.OpMunlock, isa.OpPrint:
		if err = want(1); err != nil {
			return err
		}
		if in.Rs1, err = a.intReg(lc, ops[0]); err != nil {
			return err
		}
	case isa.OpKthr, isa.OpJoin, isa.OpHalt, isa.OpNop:
		if err = want(0); err != nil {
			return err
		}
	default:
		return lc.errf("unencodable op %q", mnem)
	}
	a.emit(in)
	return nil
}
