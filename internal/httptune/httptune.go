// Package httptune is the one place the repo widens net/http's client
// transport for sustained closed-loop traffic. The default transport
// keeps only 2 idle connections per host — any load generator or router
// driving one backend with more than 2 concurrent requests re-dials
// constantly and measures TCP churn instead of the server. Every
// in-repo HTTP client (capload, capstress's serve/cluster loops, the
// capcluster dispatch client) builds its transport here, so transport
// fixes land once.
package httptune

import (
	"net/http"
	"time"
)

// Transport clones http.DefaultTransport (keeping its dialer, proxy and
// timeout defaults) and sizes the idle-connection pool to maxIdlePerHost
// concurrent requests per backend, with no global idle cap.
func Transport(maxIdlePerHost int) *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 0 // unlimited; the per-host cap is the bound
	t.MaxIdleConnsPerHost = maxIdlePerHost
	return t
}

// Client is Transport wrapped in an http.Client with the given
// per-request timeout — the common shape for the repo's load loops.
func Client(maxIdlePerHost int, timeout time.Duration) *http.Client {
	return &http.Client{Transport: Transport(maxIdlePerHost), Timeout: timeout}
}
