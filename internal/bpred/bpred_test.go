package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLearns(t *testing.T) {
	p := New(Default())
	pc := uint64(0x400)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("should predict taken after 100 taken outcomes")
	}
	if acc := p.Stats().Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy %v too low for a monotone branch", acc)
	}
}

func TestAlternatingPatternLearnedByTwoLevel(t *testing.T) {
	p := New(Default())
	pc := uint64(0x800)
	correct := 0
	n := 2000
	for i := 0; i < n; i++ {
		outcome := i%2 == 0
		if p.Predict(pc) == outcome {
			correct++
		}
		p.Update(pc, outcome)
	}
	// The gAp component captures the T/NT alternation; the last half of the
	// run should be near-perfect. Bimodal alone would sit near 50%.
	if frac := float64(correct) / float64(n); frac < 0.85 {
		t.Fatalf("alternating accuracy %v; two-level predictor should learn it", frac)
	}
}

func TestLoopExitPattern(t *testing.T) {
	p := New(Default())
	pc := uint64(0x900)
	correct, total := 0, 0
	// 8 iterations taken, then one not-taken exit, repeated.
	for rep := 0; rep < 300; rep++ {
		for i := 0; i < 9; i++ {
			outcome := i < 8
			if p.Predict(pc) == outcome {
				correct++
			}
			total++
			p.Update(pc, outcome)
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.9 {
		t.Fatalf("loop pattern accuracy %v", frac)
	}
}

func TestIndependentBranchesDoNotDestroyEachOther(t *testing.T) {
	p := New(Default())
	// Two branches with opposite biases at PCs mapping to different bimodal
	// slots must both be predictable.
	a, b := uint64(0x1000), uint64(0x1001)
	for i := 0; i < 500; i++ {
		p.Update(a, true)
		p.Update(b, false)
	}
	if !p.Predict(a) || p.Predict(b) {
		t.Fatal("opposite-biased branches should both be learned")
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(Default())
	for i := 0; i < 10; i++ {
		p.Update(42, true)
	}
	s := p.Stats()
	if s.Lookups != 10 {
		t.Fatalf("lookups = %d", s.Lookups)
	}
	if s.Correct == 0 || s.Correct > 10 {
		t.Fatalf("correct = %d", s.Correct)
	}
}

func TestRandomBranchesBounded(t *testing.T) {
	p := New(Default())
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		p.Update(uint64(r.Intn(256)), r.Intn(2) == 0)
	}
	acc := p.Stats().Accuracy()
	if acc < 0.3 || acc > 0.7 {
		t.Fatalf("random-branch accuracy %v should be near 0.5", acc)
	}
}

func TestConfigRoundingToPowerOfTwo(t *testing.T) {
	p := New(Config{BimodalEntries: 1000, MetaEntries: 3, PatternEntries: 5000, HistoryEntries: 100, HistoryBits: 10})
	if len(p.bimodal) != 1024 || len(p.meta) != 4 || len(p.pattern) != 8192 || len(p.history) != 128 {
		t.Fatalf("sizes = %d %d %d %d", len(p.bimodal), len(p.meta), len(p.pattern), len(p.history))
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	if a, ok := r.Pop(); !ok || a != 20 {
		t.Fatalf("pop = %d, %v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 10 {
		t.Fatalf("pop = %d, %v", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS should report not-ok")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Fatalf("got %d", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Fatalf("got %d", a)
	}
}

func TestRASClone(t *testing.T) {
	r := NewRAS(4)
	r.Push(7)
	c := r.Clone()
	r.Pop()
	if a, ok := c.Pop(); !ok || a != 7 {
		t.Fatal("clone must be independent")
	}
}
