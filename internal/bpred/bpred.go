// Package bpred implements the branch predictors of the paper's Table 1
// configuration: a combined predictor with a 1K-entry meta table choosing
// between a 4K-entry bimodal predictor and an 8K-entry second-level gAp
// (per-address history, global pattern table) predictor, plus a return
// address stack used per hardware context.
package bpred

// Config sizes the predictor tables. Entries must be powers of two.
type Config struct {
	BimodalEntries int // 2-bit counters indexed by PC
	MetaEntries    int // 2-bit chooser counters
	PatternEntries int // gAp second-level 2-bit counters
	HistoryEntries int // gAp first-level per-branch history registers
	HistoryBits    int // history length feeding the pattern table
	RASDepth       int // return address stack depth per context
}

// Default returns the Table 1 predictor: combined, 1K meta, 4K bimodal,
// 8K-entry gAp second level.
func Default() Config {
	return Config{
		BimodalEntries: 4096,
		MetaEntries:    1024,
		PatternEntries: 8192,
		HistoryEntries: 1024,
		HistoryBits:    13,
		RASDepth:       16,
	}
}

// Stats counts prediction outcomes.
type Stats struct {
	Lookups uint64
	Correct uint64
}

// Accuracy returns the fraction of correct predictions.
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Lookups)
}

// Predictor is the combined direction predictor. It is shared by all
// hardware contexts, as in the paper's SMT (predictor state is not
// per-thread).
type Predictor struct {
	cfg     Config
	bimodal []uint8
	meta    []uint8
	pattern []uint8
	history []uint16
	stats   Stats
}

// New builds a predictor; table sizes are rounded up to powers of two.
func New(cfg Config) *Predictor {
	pow2 := func(n int) int {
		if n < 2 {
			return 2
		}
		p := 1
		for p < n {
			p <<= 1
		}
		return p
	}
	cfg.BimodalEntries = pow2(cfg.BimodalEntries)
	cfg.MetaEntries = pow2(cfg.MetaEntries)
	cfg.PatternEntries = pow2(cfg.PatternEntries)
	cfg.HistoryEntries = pow2(cfg.HistoryEntries)
	if cfg.HistoryBits <= 0 || cfg.HistoryBits > 16 {
		cfg.HistoryBits = 13
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalEntries),
		meta:    make([]uint8, cfg.MetaEntries),
		pattern: make([]uint8, cfg.PatternEntries),
		history: make([]uint16, cfg.HistoryEntries),
	}
	// Weakly taken initial state, the usual SimpleScalar default.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.pattern {
		p.pattern[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2 // weakly prefer the two-level predictor
	}
	return p
}

func taken(counter uint8) bool { return counter >= 2 }

func bump(counter uint8, t bool) uint8 {
	if t {
		if counter < 3 {
			return counter + 1
		}
		return counter
	}
	if counter > 0 {
		return counter - 1
	}
	return counter
}

func (p *Predictor) bimodalIdx(pc uint64) int { return int(pc) & (len(p.bimodal) - 1) }
func (p *Predictor) metaIdx(pc uint64) int    { return int(pc) & (len(p.meta) - 1) }
func (p *Predictor) histIdx(pc uint64) int    { return int(pc) & (len(p.history) - 1) }

func (p *Predictor) patternIdx(pc uint64) int {
	h := p.history[p.histIdx(pc)] & uint16(1<<p.cfg.HistoryBits-1)
	// XOR-fold the PC into the history index (gshare-flavoured gAp).
	return (int(h) ^ int(pc)) & (len(p.pattern) - 1)
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	useTwoLevel := taken(p.meta[p.metaIdx(pc)])
	if useTwoLevel {
		return taken(p.pattern[p.patternIdx(pc)])
	}
	return taken(p.bimodal[p.bimodalIdx(pc)])
}

// Update trains the predictor with the resolved outcome and returns whether
// the earlier prediction (recomputed here against the pre-update state) was
// correct.
func (p *Predictor) Update(pc uint64, outcome bool) bool {
	bi := p.bimodalIdx(pc)
	pi := p.patternIdx(pc)
	mi := p.metaIdx(pc)
	bimodalPred := taken(p.bimodal[bi])
	twoLevelPred := taken(p.pattern[pi])
	pred := bimodalPred
	if taken(p.meta[mi]) {
		pred = twoLevelPred
	}

	// Meta table trains toward whichever component was right (only when
	// they disagree).
	if bimodalPred != twoLevelPred {
		p.meta[mi] = bump(p.meta[mi], twoLevelPred == outcome)
	}
	p.bimodal[bi] = bump(p.bimodal[bi], outcome)
	p.pattern[pi] = bump(p.pattern[pi], outcome)
	hi := p.histIdx(pc)
	p.history[hi] = p.history[hi]<<1 | b2u(outcome)

	p.stats.Lookups++
	if pred == outcome {
		p.stats.Correct++
		return true
	}
	return false
}

func b2u(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// Stats returns cumulative prediction statistics.
func (p *Predictor) Stats() Stats { return p.stats }

// RAS is a return-address stack. Each hardware context owns one; it predicts
// the target of indirect jumps used as returns.
type RAS struct {
	stack []uint64
	top   int
}

// NewRAS returns a RAS with the given depth (minimum 1).
func NewRAS(depth int) *RAS {
	if depth < 1 {
		depth = 1
	}
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address (on call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top%len(r.stack)] = addr
	r.top++
}

// Pop predicts the next return target; ok is false when the stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%len(r.stack)], true
}

// Clone duplicates the RAS (used when a worker divides: the child inherits
// the parent's call stack expectations).
func (r *RAS) Clone() *RAS {
	c := &RAS{stack: make([]uint64, len(r.stack)), top: r.top}
	copy(c.stack, r.stack)
	return c
}

// Reset empties the stack.
func (r *RAS) Reset() { r.top = 0 }
