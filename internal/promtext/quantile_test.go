package promtext

import (
	"math"
	"testing"
)

func feq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDeltaQuantile(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}

	// 100 observations: 50 in ≤10ms, 40 in (10ms,100ms], 10 in (100ms,1s].
	after := []float64{50, 90, 100, 100}

	// p50: rank 50 lands exactly at the first bucket's cumulative count
	// → interpolates to its upper bound.
	if q, ok := DeltaQuantile(bounds, nil, after, 0.50); !ok || !feq(q, 0.01) {
		t.Fatalf("p50 = %g, %v; want 0.01", q, ok)
	}
	// p75: rank 75, 25/40 into the second bucket: 0.01 + 0.625*0.09.
	if q, ok := DeltaQuantile(bounds, nil, after, 0.75); !ok || !feq(q, 0.01+0.625*0.09) {
		t.Fatalf("p75 = %g, %v", q, ok)
	}
	// p100 = last bucket's bound.
	if q, ok := DeltaQuantile(bounds, nil, after, 1); !ok || !feq(q, 1) {
		t.Fatalf("p100 = %g, %v; want 1", q, ok)
	}

	// Delta semantics: before cancels everything but 10 observations in
	// the middle bucket.
	before := []float64{50, 80, 90, 90}
	if q, ok := DeltaQuantile(bounds, before, after, 0.5); !ok || !feq(q, 0.01+0.5*0.09) {
		t.Fatalf("delta p50 = %g, %v", q, ok)
	}
}

func TestDeltaQuantileInfClamp(t *testing.T) {
	bounds := []float64{0.01, 0.1}
	// All mass in +Inf: the estimate clamps to the last finite bound.
	after := []float64{0, 0, 7}
	if q, ok := DeltaQuantile(bounds, nil, after, 0.99); !ok || !feq(q, 0.1) {
		t.Fatalf("+Inf p99 = %g, %v; want clamp to 0.1", q, ok)
	}
}

func TestDeltaQuantileRejects(t *testing.T) {
	bounds := []float64{0.01, 0.1}
	if _, ok := DeltaQuantile(bounds, nil, []float64{0, 0, 0}, 0.5); ok {
		t.Fatal("accepted an empty delta")
	}
	if _, ok := DeltaQuantile(bounds, []float64{5, 5, 5}, []float64{1, 2, 3}, 0.5); ok {
		t.Fatal("accepted shrinking counts")
	}
	if _, ok := DeltaQuantile(bounds, nil, []float64{1, 2}, 0.5); ok {
		t.Fatal("accepted a length mismatch")
	}
	if _, ok := DeltaQuantile(bounds, nil, []float64{1, 2, 3}, 1.5); ok {
		t.Fatal("accepted q > 1")
	}
	// Non-cumulative (decreasing) snapshot.
	if _, ok := DeltaQuantile(bounds, nil, []float64{5, 3, 6}, 0.5); ok {
		t.Fatal("accepted a non-cumulative snapshot")
	}
}

func TestDeltaFractionAbove(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	after := []float64{50, 90, 100, 100}

	// Threshold at a bucket boundary: exactly the mass above it.
	if f, ok := DeltaFractionAbove(bounds, nil, after, 0.1); !ok || !feq(f, 0.10) {
		t.Fatalf("frac>0.1 = %g, %v; want 0.10", f, ok)
	}
	// Mid-bucket: half the 40 observations in (0.01,0.1] sit above
	// 0.055 by interpolation → (20+10)/100.
	if f, ok := DeltaFractionAbove(bounds, nil, after, 0.055); !ok || !feq(f, 0.30) {
		t.Fatalf("frac>0.055 = %g, %v; want 0.30", f, ok)
	}
	// Past the last finite bound: only +Inf mass counts.
	if f, ok := DeltaFractionAbove(bounds, nil, after, 2); !ok || !feq(f, 0) {
		t.Fatalf("frac>2 = %g, %v; want 0", f, ok)
	}
	inf := []float64{50, 90, 100, 110}
	if f, ok := DeltaFractionAbove(bounds, nil, inf, 2); !ok || !feq(f, 10.0/110) {
		t.Fatalf("frac>2 with +Inf mass = %g, %v; want %g", f, ok, 10.0/110)
	}
	// Empty delta.
	if _, ok := DeltaFractionAbove(bounds, after, after, 0.1); ok {
		t.Fatal("accepted an empty delta")
	}
}

func TestHistogramBuckets(t *testing.T) {
	exposition := []byte(`
# TYPE x histogram
x_bucket{workload="a",le="0.01"} 5
x_bucket{workload="a",le="0.1"} 8
x_bucket{workload="a",le="+Inf"} 9
x_bucket{workload="b",le="0.01"} 1
x_bucket{workload="b",le="0.1"} 2
x_bucket{workload="b",le="+Inf"} 2
x_sum{workload="a"} 1.5
x_count{workload="a"} 9
other_bucket{le="0.5"} 3
`)
	samples := Parse(exposition)
	bounds, cum := HistogramBuckets(samples, "x")
	if len(bounds) != 2 || !feq(bounds[0], 0.01) || !feq(bounds[1], 0.1) {
		t.Fatalf("bounds = %v", bounds)
	}
	if len(cum) != 3 || !feq(cum[0], 6) || !feq(cum[1], 10) || !feq(cum[2], 11) {
		t.Fatalf("cum = %v, want label sets summed [6 10 11]", cum)
	}
	// The shapes feed straight into the delta helpers.
	if q, ok := DeltaQuantile(bounds, nil, cum, 0.5); !ok || q <= 0 {
		t.Fatalf("DeltaQuantile on HistogramBuckets output = %g, %v", q, ok)
	}
	if b, c := HistogramBuckets(samples, "missing"); b != nil || c != nil {
		t.Fatalf("missing family = %v, %v; want nil, nil", b, c)
	}
}
