// Package promtext is a minimal reader for the Prometheus text
// exposition format (version 0.0.4). The repo hand-rolls its exposition
// writers (capserve, capcluster) because the container forbids new
// dependencies; this is the matching reader, shared by everything that
// scrapes — capload's before/after diffs and the router's credit
// refresh — so the format's quirks live in exactly one place.
//
// Scope matches what our writers emit: sample lines without timestamps.
// A line carrying the optional timestamp field would be keyed wrongly
// and should be rejected by the caller's semantic checks, not here —
// parsers of foreign expositions must stay permissive.
package promtext

import (
	"strconv"
	"strings"
)

// Parse maps each sample line of an exposition to its value, keyed by
// the full series name including any label set (`name{a="b"}`).
// Comments, blank lines and malformed lines are skipped.
func Parse(exposition []byte) map[string]float64 {
	samples := map[string]float64{}
	for _, line := range strings.Split(string(exposition), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue
		}
		samples[line[:i]] = v
	}
	return samples
}

// Value returns the unlabelled series' sample.
func Value(samples map[string]float64, name string) (float64, bool) {
	v, ok := samples[name]
	return v, ok
}

// LabelValue extracts one label's (unquoted) value from a series key as
// produced by Parse: LabelValue(`x{backend="a:1"}`, "x", "backend")
// returns ("a:1", true). It returns false when the key is a different
// series or lacks the label.
func LabelValue(key, name, label string) (string, bool) {
	rest, ok := strings.CutPrefix(key, name+"{")
	if !ok {
		return "", false
	}
	rest, ok = strings.CutSuffix(rest, "}")
	if !ok {
		return "", false
	}
	// Our writers never emit commas or escapes inside label values, so a
	// plain split is exact here; foreign expositions may defeat it, in
	// which case the label simply won't be found.
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k != label {
			continue
		}
		if uq, err := strconv.Unquote(v); err == nil {
			return uq, true
		}
		return v, true
	}
	return "", false
}
