package promtext

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Histogram-pair math: quantiles and threshold fractions estimated from
// the *difference* of two cumulative bucket snapshots of the same
// fixed-bound histogram. This is the read-side half of the repo's
// hand-rolled histograms — capwatch's windowed p50/p95/p99 rollups and
// capload's server-side latency report both delta a pair of scrapes and
// interpolate inside the straddling bucket, so the arithmetic lives
// here once.
//
// Conventions, matching what our writers emit: `bounds` holds the
// finite upper bounds (seconds, ascending); a cumulative snapshot has
// len(bounds)+1 entries, the final one being the +Inf bucket (== the
// histogram's _count). A nil `before` means "delta against zero", i.e.
// use the snapshot as-is.

// DeltaQuantile estimates the q-quantile (0 ≤ q ≤ 1) of the
// observations recorded between two cumulative snapshots, by linear
// interpolation within the bucket the quantile rank lands in. The
// estimate clamps to the last finite bound when the rank falls in the
// +Inf bucket — the histogram cannot see past its table, and reporting
// "at least 5s" as 5s is the honest floor. Returns ok=false when the
// delta is empty or the snapshots are inconsistent (torn scrape,
// shrinking cumulative counts, length mismatch).
func DeltaQuantile(bounds, before, after []float64, q float64) (float64, bool) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, false
	}
	delta, total, ok := deltaCum(bounds, before, after)
	if !ok {
		return 0, false
	}
	n := len(bounds) + 1
	rank := q * total
	prevCum, lo := 0.0, 0.0
	for i := 0; i < n; i++ {
		cum := delta(i)
		if cum >= rank && cum > prevCum {
			if i == n-1 {
				return bounds[n-2], true // +Inf bucket: clamp
			}
			hi := bounds[i]
			frac := (rank - prevCum) / (cum - prevCum)
			return lo + frac*(hi-lo), true
		}
		if i < n-1 {
			lo = bounds[i]
		}
		prevCum = cum
	}
	return bounds[n-2], true
}

// deltaCum validates one snapshot pair — matching lengths, a positive
// total, cumulative counts that never shrink — and returns an indexed
// delta accessor plus the total. Shared by both estimators so a torn
// scrape is rejected identically everywhere.
func deltaCum(bounds, before, after []float64) (func(int) float64, float64, bool) {
	n := len(bounds) + 1
	if len(bounds) == 0 || len(after) != n || (before != nil && len(before) != n) {
		return nil, 0, false
	}
	delta := func(i int) float64 {
		d := after[i]
		if before != nil {
			d -= before[i]
		}
		return d
	}
	prev := 0.0
	for i := 0; i < n; i++ {
		d := delta(i)
		if d < prev || math.IsNaN(d) {
			return nil, 0, false
		}
		prev = d
	}
	total := delta(n - 1)
	if !(total > 0) {
		return nil, 0, false
	}
	return delta, total, true
}

// DeltaFractionAbove estimates the fraction of observations recorded
// between two cumulative snapshots that exceeded threshold, linearly
// interpolating within the bucket the threshold splits. Observations in
// the +Inf bucket count as above any threshold — the table cannot
// prove otherwise, and an SLO evaluator must not launder unbounded
// latencies into compliance. Returns ok=false on an empty delta or
// inconsistent snapshots.
func DeltaFractionAbove(bounds, before, after []float64, threshold float64) (float64, bool) {
	// deltaCum validates the whole cumulative chain *including* the
	// +Inf bucket. Checking only the finite buckets here used to let a
	// counter reset confined to the tail (process restart between the
	// two halves of a scrape) produce a negative fraction.
	delta, total, ok := deltaCum(bounds, before, after)
	if !ok {
		return 0, false
	}
	n := len(bounds) + 1
	prevCum, lo := 0.0, 0.0
	for i := 0; i < n-1; i++ {
		cum := delta(i)
		hi := bounds[i]
		if threshold >= hi {
			prevCum, lo = cum, hi
			continue
		}
		// The threshold lies inside (lo, hi): split this bucket's mass
		// uniformly, everything in later buckets is above.
		inBucket := cum - prevCum
		frac := 0.0
		if hi > lo {
			frac = (threshold - lo) / (hi - lo)
		}
		below := prevCum + frac*inBucket
		return 1 - below/total, true
	}
	// Threshold at or past the last finite bound: only the +Inf bucket
	// is provably above it.
	return (total - delta(n-2)) / total, true
}

// HistogramBuckets extracts one histogram family's cumulative bucket
// counts from a Parse result, summing across label sets (a sum of
// cumulative snapshots over the same bounds is itself cumulative, so
// per-workload series fold into one distribution). It returns the
// finite upper bounds ascending and the parallel cumulative counts
// with the +Inf bucket last — exactly the (bounds, snapshot) shapes
// DeltaQuantile and DeltaFractionAbove take. Missing family: both nil.
func HistogramBuckets(samples map[string]float64, name string) (bounds, cum []float64) {
	series := name + "_bucket"
	byLE := map[float64]float64{}
	for key, v := range samples {
		if !strings.HasPrefix(key, series+"{") {
			continue
		}
		le, ok := LabelValue(key, series, "le")
		if !ok {
			continue
		}
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = f
		}
		byLE[bound] += v
	}
	if len(byLE) == 0 {
		return nil, nil
	}
	all := make([]float64, 0, len(byLE))
	for b := range byLE {
		all = append(all, b)
	}
	sort.Float64s(all)
	cum = make([]float64, len(all))
	for i, b := range all {
		cum[i] = byLE[b]
	}
	if math.IsInf(all[len(all)-1], 1) {
		bounds = all[:len(all)-1]
	} else {
		// A writer that omitted +Inf: synthesize it from the last bound's
		// count, which is the best available _count proxy.
		bounds = all
		cum = append(cum, cum[len(cum)-1])
	}
	return bounds, cum
}
