package promtext

import "testing"

// Counter-reset coverage: when the process behind a histogram restarts
// mid-window, the "after" snapshot can be smaller than "before" — in
// every bucket, in some buckets, or only in the +Inf total (scrape
// halves straddling the restart). The delta estimators must reject the
// pair (ok=false); they must never interpolate a negative delta into a
// negative quantile or fraction.

var resetBounds = []float64{0.001, 0.01, 0.1, 1}

// resetCases are (before, after) snapshot pairs that all contain a
// shrinking cumulative count somewhere.
var resetCases = []struct {
	name          string
	before, after []float64
}{
	{
		name:   "full reset",
		before: []float64{5, 10, 20, 30, 30},
		after:  []float64{1, 2, 3, 4, 4},
	},
	{
		name:   "reset to zero",
		before: []float64{5, 10, 20, 30, 32},
		after:  []float64{0, 0, 0, 0, 0},
	},
	{
		name:   "first bucket shrinks",
		before: []float64{5, 10, 20, 30, 30},
		after:  []float64{3, 12, 22, 32, 32},
	},
	{
		name:   "interior bucket shrinks",
		before: []float64{5, 10, 20, 30, 30},
		after:  []float64{6, 8, 22, 32, 32},
	},
	{
		// The regression case: every finite bucket grew, only the
		// +Inf total shrank below the last finite count — the torn
		// pair a restart between scrape halves produces. The old
		// DeltaFractionAbove validated finite buckets only and
		// returned a *negative* fraction here with ok=true.
		name:   "tail-only reset",
		before: []float64{0, 0, 0, 10, 10},
		after:  []float64{5, 6, 7, 12, 9},
	},
	{
		name:   "non-cumulative after",
		before: nil,
		after:  []float64{5, 3, 7, 8, 8},
	},
}

func TestDeltaQuantileCounterReset(t *testing.T) {
	for _, tc := range resetCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, q := range []float64{0, 0.5, 0.99, 1} {
				v, ok := DeltaQuantile(resetBounds, tc.before, tc.after, q)
				if ok {
					t.Errorf("q=%g accepted a reset pair: %g", q, v)
				}
				if v < 0 {
					t.Errorf("q=%g went negative on reset: %g", q, v)
				}
			}
		})
	}
}

func TestDeltaFractionAboveCounterReset(t *testing.T) {
	for _, tc := range resetCases {
		t.Run(tc.name, func(t *testing.T) {
			// Thresholds below, inside, between, at and past the
			// bucket table — every return path must reject the pair.
			for _, thr := range []float64{0, 0.0005, 0.005, 0.05, 0.1, 0.5, 1, 5} {
				frac, ok := DeltaFractionAbove(resetBounds, tc.before, tc.after, thr)
				if ok {
					t.Errorf("threshold=%g accepted a reset pair: %g", thr, frac)
				}
				if frac < 0 {
					t.Errorf("threshold=%g went negative on reset: %g", thr, frac)
				}
			}
		})
	}
}

// TestDeltaAfterResetRecovers: the window after a restart (before
// taken post-restart) is a normal pair again — rejecting resets must
// not poison subsequent windows.
func TestDeltaAfterResetRecovers(t *testing.T) {
	before := []float64{1, 2, 3, 4, 4} // first post-restart scrape
	after := []float64{5, 10, 20, 30, 30}
	if p99, ok := DeltaQuantile(resetBounds, before, after, 0.99); !ok || p99 <= 0 {
		t.Fatalf("post-restart window rejected: %g ok=%v", p99, ok)
	}
	frac, ok := DeltaFractionAbove(resetBounds, before, after, 0.05)
	if !ok || frac < 0 || frac > 1 {
		t.Fatalf("post-restart fraction: %g ok=%v", frac, ok)
	}
}
