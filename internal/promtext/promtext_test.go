package promtext

import "testing"

const exposition = `# HELP capsule_contexts Context-token pool size.
# TYPE capsule_contexts gauge
capsule_contexts 4
capsule_grant_rate 0.375
caprouter_remote_denies_total{reason="credit"} 12
caprouter_backend_dispatches_total{backend="127.0.0.1:8101"} 7

malformed line without value
caprouter_fallback_rate NaN
`

func TestParse(t *testing.T) {
	m := Parse([]byte(exposition))
	if v, ok := Value(m, "capsule_contexts"); !ok || v != 4 {
		t.Fatalf("capsule_contexts = %v,%v", v, ok)
	}
	if v, ok := Value(m, "capsule_grant_rate"); !ok || v != 0.375 {
		t.Fatalf("capsule_grant_rate = %v,%v", v, ok)
	}
	if v := m[`caprouter_remote_denies_total{reason="credit"}`]; v != 12 {
		t.Fatalf("labelled series = %v, want 12", v)
	}
	if _, ok := Value(m, "nosuch"); ok {
		t.Fatal("missing series reported present")
	}
	if v, ok := Value(m, "caprouter_fallback_rate"); !ok || v == v { // NaN != NaN
		t.Fatalf("NaN sample = %v,%v, want parsed NaN", v, ok)
	}
	// Comment lines and the malformed line must not produce keys.
	for k := range m {
		if k == "" || k[0] == '#' || k == "malformed line without" {
			t.Fatalf("bad key %q survived parsing", k)
		}
	}
}

func TestLabelValue(t *testing.T) {
	key := `caprouter_backend_dispatches_total{backend="127.0.0.1:8101"}`
	if v, ok := LabelValue(key, "caprouter_backend_dispatches_total", "backend"); !ok || v != "127.0.0.1:8101" {
		t.Fatalf("LabelValue = %q,%v", v, ok)
	}
	if _, ok := LabelValue(key, "caprouter_backend_dispatches_total", "nosuch"); ok {
		t.Fatal("missing label reported present")
	}
	if _, ok := LabelValue(key, "other_series", "backend"); ok {
		t.Fatal("wrong series matched")
	}
	if _, ok := LabelValue("caprouter_backends", "caprouter_backends", "backend"); ok {
		t.Fatal("unlabelled series matched a label")
	}
	multi := `x{a="1",backend="b:2"}`
	if v, ok := LabelValue(multi, "x", "backend"); !ok || v != "b:2" {
		t.Fatalf("multi-label LabelValue = %q,%v", v, ok)
	}
}
