// Command capc drives the CapC toolchain: it compiles a component program
// and can show the Fig. 2 pipeline stages (source, pre-processed source,
// post-processed assembly) or run the program on a chosen machine.
//
// Usage:
//
//	capc -pre file.capc         # Fig. 2(b): pre-processed listing
//	capc -S file.capc           # Fig. 2(c): generated assembly
//	capc -run -arch somt file.capc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
)

func main() {
	pre := flag.Bool("pre", false, "print the pre-processed (coworker->switch) listing")
	asmOut := flag.Bool("S", false, "print the generated assembly")
	run := flag.Bool("run", false, "run the program")
	arch := flag.String("arch", "somt", "somt|smt|superscalar (with -run)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: capc [-pre] [-S] [-run -arch X] file.capc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	b, err := core.BuildCapC(flag.Arg(0), string(src))
	if err != nil {
		fail("%v", err)
	}
	if *pre {
		fmt.Println("// pre-processed (Fig. 2(b) stage)")
		fmt.Print(b.Compiled.PreProcessed)
	}
	if *asmOut {
		fmt.Println("# post-processed assembly (Fig. 2(c) stage)")
		fmt.Print(b.Compiled.Asm)
	}
	if *run {
		var cfg cpu.Config
		switch *arch {
		case "somt":
			cfg = cpu.SOMTConfig()
		case "smt":
			cfg = cpu.SMTConfig()
		case "superscalar":
			cfg = cpu.SuperscalarConfig()
		default:
			fail("unknown arch %q", *arch)
		}
		res, err := core.RunTiming(b.Program, cfg)
		if err != nil {
			fail("%v", err)
		}
		for _, v := range res.UserOutput() {
			fmt.Println(v)
		}
		s := res.Stats
		fmt.Fprintf(os.Stderr, "cycles=%d insts=%d ipc=%.2f divisions=%d/%d\n",
			s.Cycles, s.Insts, s.IPC(), s.DivGranted, s.DivRequested)
	}
	if !*pre && !*asmOut && !*run {
		fmt.Fprintln(os.Stderr, "compiled OK (use -pre, -S or -run)")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "capc: "+format+"\n", args...)
	os.Exit(1)
}
