// Command captop is the live fleet dashboard: it polls one or more
// capserve/caprouter /debug/watch endpoints and renders one row per
// report — router (replica) rows first, then every backend they front —
// with the windowed rates, latency quantiles and SLO burn each sampler
// computed server-side. Backend rows are joined with the routers'
// per-backend tables (same host:port label), so credits, inflight and
// breaker state appear next to the backend's own grant rate and p99.
//
// -url takes a comma-separated list, so a replicated router fleet
// renders as one dashboard: each replica contributes a lead row, and
// backends appearing in several replicas' arrays are deduped by their
// host:port source label. A replica that cannot be reached is reported
// on stderr and skipped — one dead router must not blind the dashboard
// to the survivors.
//
// Usage:
//
//	captop -url http://localhost:8090              # live, redraws every -interval
//	captop -url http://localhost:8090,http://localhost:8091   # replicated routers, one dashboard
//	captop -url http://localhost:8090 -window 30s
//	captop -url http://localhost:6060 -once        # one frame, then exit
//	captop -url http://localhost:8090 -once -json  # machine-readable report array
//
// In -json mode the output is the decoded report array exactly as the
// fleet produced it (always an array, even for a lone capserve), which
// is what the CI watch-smoke step asserts against.
//
// With -once the exit status is meaningful: 0 when every row's error
// budget has headroom, 3 when any row reports SLO budget exhaustion
// (fast and slow windows both burning at >= 1), 1 on fetch errors.
// The INC column counts capscope incident bundles captured by that
// process since start.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/capwatch"
)

func main() {
	base := flag.String("url", "http://localhost:8090", "comma-separated capserve/caprouter base URLs (each /debug/watch is polled; replica rows first, backends deduped by host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll/redraw interval")
	window := flag.Duration("window", time.Minute, "rollup window requested from the fleet")
	once := flag.Bool("once", false, "render a single frame and exit")
	asJSON := flag.Bool("json", false, "emit the merged report array as JSON (implies no screen handling)")
	flag.Parse()

	var endpoints []string
	for _, u := range strings.Split(*base, ",") {
		if u = strings.TrimSpace(u); u != "" {
			endpoints = append(endpoints, strings.TrimRight(u, "/")+"/debug/watch?window="+window.String())
		}
	}
	if len(endpoints) == 0 {
		fail("-url names no targets")
	}
	label := strings.Join(endpoints, " ")

	for {
		// Poll every endpoint; a dead replica is reported and skipped
		// rather than blinding the dashboard to the survivors. Only a
		// fully unreachable fleet is an error.
		var fleets [][]capwatch.Report
		var errs []error
		for _, ep := range endpoints {
			reps, err := fetch(ep)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			fleets = append(fleets, reps)
		}
		if len(fleets) == 0 {
			if *once {
				fail("%v", errs[0])
			}
			fmt.Fprintf(os.Stderr, "captop: %v\n", errs[0])
			time.Sleep(*interval)
			continue
		}
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "captop: %v\n", err)
		}
		merged := mergeFleets(fleets)
		if *asJSON {
			// Re-encode rather than echoing the bodies: the output is the
			// normalized, merged array shape regardless of fleet size.
			out, err := capwatch.EncodeReports(merged)
			if err != nil {
				fail("%v", err)
			}
			os.Stdout.Write(out)
			fmt.Println()
		} else {
			if !*once {
				fmt.Print("\x1b[H\x1b[2J") // home + clear: redraw in place
			}
			render(os.Stdout, label, merged, fleets)
		}
		if *once {
			// Exit 3 when any row's error budget is exhausted (fast AND
			// slow windows burning at >= 1) — scriptable paging: a cron
			// or CI gate distinguishes "fleet unhealthy" (3) from
			// "couldn't ask" (1) without parsing the frame.
			for _, r := range merged {
				if r.SLO.Exhausted {
					os.Exit(3)
				}
			}
			return
		}
		time.Sleep(*interval)
	}
}

// mergeFleets folds several endpoints' report arrays into one
// dashboard's row order: each fleet's lead (the router replica, or a
// lone capserve) first, then the union of backend rows deduped by their
// host:port source label — replicated routers front the same backends,
// so each backend renders once however many replicas report it (the
// first fleet listed wins).
func mergeFleets(fleets [][]capwatch.Report) []capwatch.Report {
	var leads, backends []capwatch.Report
	seen := map[string]bool{}
	for _, reps := range fleets {
		leads = append(leads, reps[0])
		for _, r := range reps[1:] {
			if seen[r.Source] {
				continue
			}
			seen[r.Source] = true
			backends = append(backends, r)
		}
	}
	return append(leads, backends...)
}

func fetch(url string) ([]capwatch.Report, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	reps, err := capwatch.DecodeReports(body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %v", url, err)
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("GET %s: empty report set", url)
	}
	return reps, nil
}

func render(w io.Writer, endpoint string, reps []capwatch.Report, fleets [][]capwatch.Report) {
	lead := reps[0]
	fmt.Fprintf(w, "captop  %s  %s\n", endpoint, time.UnixMilli(lead.NowUnixMS).Format("15:04:05"))
	fmt.Fprintf(w, "%s %s  go %s  gomaxprocs %d  |  slo: p99<%gms avail>=%.4g  fast %gs / slow %gs\n",
		lead.Source, lead.Build.Version, lead.Build.Go, lead.Build.MaxProcs,
		lead.SLO.TargetP99MS, lead.SLO.Availability, lead.SLO.Fast.WindowS, lead.SLO.Slow.WindowS)
	fmt.Fprintf(w, "window %gs (actual %.0fs, %d samples)  interval %gs  goroutines %d  heap %s\n\n",
		lead.WindowS, lead.WindowActualS, lead.WindowSamples, lead.IntervalS,
		lead.Go.Goroutines, mb(lead.Go.HeapLiveBytes))

	// Every lead's backend table, for joining credits/breaker state onto
	// the backend rows (keyed by the shared host:port label). With
	// replicated routers each replica holds its own independent gauge for
	// the same backend; the first fleet listed wins the cell.
	type gauge struct {
		credits, inflight int
		broken            bool
		known             bool
	}
	gauges := map[string]gauge{}
	for _, fl := range fleets {
		for _, br := range fl[0].Backends {
			if _, ok := gauges[br.Name]; ok {
				continue
			}
			gauges[br.Name] = gauge{credits: br.Credits, inflight: br.Inflight, broken: br.Broken, known: true}
		}
	}

	const hdr = "%-22s %-7s %8s %7s %6s %8s %4s %9s %7s %7s %4s\n"
	const row = "%-22s %-7s %8.1f %6.1f%% %6s %8s %4s %9.2f %6.2f%% %7.2f %4d\n"
	fmt.Fprintf(w, hdr, "SOURCE", "TIER", "REQ/S", "GRANT", "QUEUE", "CREDITS", "BRK", "P99(MS)", "AVAIL", "BURN", "INC")
	for _, r := range reps {
		queue := fmt.Sprintf("%d/%d", r.QueueOccupancy, r.QueueDepth)
		credits, brk := "-", "-"
		if g, ok := gauges[r.Source]; ok && g.known {
			credits = fmt.Sprintf("%d(%d)", g.credits, g.inflight)
			if g.broken {
				brk = "OPEN"
			} else {
				brk = "ok"
			}
		}
		burn := r.SLO.BurnRate
		marker := ""
		if r.SLO.Exhausted {
			marker = " !!"
		}
		fmt.Fprintf(w, row,
			r.Source+marker, r.Tier, r.Rates.RequestsPerSec, 100*r.Rates.GrantRate,
			queue, credits, brk, r.Latency.P99MS, 100*r.Rates.Availability, burn, r.Incidents)
	}

	if lead.Router != nil {
		rt := lead.Router
		fmt.Fprintf(w, "\nrouter tiers: remote %.1f/s  local %.1f/s  sequential %.1f/s  client-gone %.1f/s  remote-grant %.1f%%\n",
			rt.TierRemotePerSec, rt.TierLocalPerSec, rt.TierSequentialPerSec,
			rt.ClientGonePerSec, 100*rt.RemoteGrantRate)
	}
}

func mb(b uint64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "captop: "+format+"\n", args...)
	os.Exit(1)
}
