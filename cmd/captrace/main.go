// Command captrace is the read side of the flight recorder: it ingests
// trace snapshots — fetched live from /debug/trace endpoints or read
// from files — and renders them for humans.
//
// With no -id it prints the fleet summary: each snapshot's per-shard
// ring occupancy (written/dropped/skipped), the event-kind histogram,
// the pool-shard steal/local-hit breakdown reconstructed from the
// probe events, and the trace IDs with the most events. With -id it
// prints one request's waterfall: every event recorded under that ID
// across all ingested snapshots, merged into a single timeline —
// router span, backend serving span and pool-shard events interleaved
// (wall-clock timestamps make same-host cross-process ordering
// meaningful).
//
// Usage:
//
//	captrace -url http://localhost:8090                    # router summary
//	captrace -url http://r:8090,http://b1:8081,http://b2:8082
//	captrace -url http://localhost:8090 -id 00c0ffee00c0ffee
//	captrace router.json backend0.json -id 00c0ffee00c0ffee
//	curl -s localhost:8080/debug/trace | captrace -        # stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/captrace"
)

func main() {
	urls := flag.String("url", "", "comma-separated base URLs to fetch /debug/trace from")
	id := flag.String("id", "", "print this trace ID's waterfall instead of the summary")
	n := flag.Int("n", 0, "cap each fetched snapshot to its n most recent events (0 = all)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-fetch timeout")
	flag.Parse()

	var snaps []captrace.Snapshot
	client := &http.Client{Timeout: *timeout}
	if *urls != "" {
		for _, base := range strings.Split(*urls, ",") {
			base = strings.TrimSpace(base)
			got, err := fetch(client, base, *n)
			if err != nil {
				fail("%s: %v", base, err)
			}
			snaps = append(snaps, got...)
		}
	}
	for _, path := range flag.Args() {
		got, err := load(path)
		if err != nil {
			fail("%s: %v", path, err)
		}
		snaps = append(snaps, got...)
	}
	if len(snaps) == 0 {
		fail("nothing to read: pass -url and/or snapshot files (see -h)")
	}

	if *id != "" {
		tid, err := captrace.ParseID(*id)
		if err != nil {
			fail("%v", err)
		}
		if !waterfall(os.Stdout, snaps, tid) {
			fmt.Fprintf(os.Stderr, "captrace: no events for trace ID %s in %d snapshot(s)\n", *id, len(snaps))
			os.Exit(2)
		}
		return
	}
	summary(os.Stdout, snaps)
}

// fetch pulls one /debug/trace body — a single snapshot (capserve) or
// an array (a router merging its spawned backends' rings).
func fetch(client *http.Client, base string, n int) ([]captrace.Snapshot, error) {
	url := base + "/debug/trace"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/trace returned %d (tracing not armed?)", resp.StatusCode)
	}
	return captrace.DecodeSnapshots(resp.Body)
}

func load(path string) ([]captrace.Snapshot, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return captrace.DecodeSnapshots(r)
}

// waterfall prints one trace ID's merged timeline; false when no
// ingested snapshot holds an event for it.
func waterfall(w io.Writer, snaps []captrace.Snapshot, tid uint64) bool {
	var evs []captrace.Event
	for _, ev := range captrace.MergeEvents(snaps...) {
		if ev.TID == tid {
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		return false
	}
	t0 := evs[0].TS
	span := time.Duration(evs[len(evs)-1].TS - t0)
	fmt.Fprintf(w, "trace %s: %d events over %s\n", captrace.FormatID(tid), len(evs), span)
	for _, ev := range evs {
		src := ev.Source
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(w, "  +%9.1fµs %-16s %-14s %s\n", float64(ev.TS-t0)/1e3, src, ev.Kind, ev.Detail())
	}
	return true
}

// summary prints the fleet-wide view: ring occupancy per source, the
// kind histogram, the steal/local split per pool shard, and the
// busiest trace IDs (what to pass to -id).
func summary(w io.Writer, snaps []captrace.Snapshot) {
	for _, s := range snaps {
		fmt.Fprintf(w, "source %-16s %d events resident\n", s.Source, len(s.Events))
		for i, sh := range s.Shards {
			fmt.Fprintf(w, "  ring %2d: written=%-8d capacity=%-6d dropped=%-8d skipped=%d\n",
				i, sh.Written, sh.Capacity, sh.Dropped, sh.Skipped)
		}
	}

	all := captrace.MergeEvents(snaps...)
	if len(all) == 0 {
		fmt.Fprintln(w, "no events")
		return
	}

	kinds := map[captrace.Kind]int{}
	// Per pool shard (the event payload's shard, not the ring index):
	// how grants split between local hits and steals, the live view of
	// the capsule_shard_* series.
	type shardStat struct{ local, steals, denies int }
	shards := map[uint8]*shardStat{}
	byTID := map[uint64]int{}
	for _, ev := range all {
		kinds[ev.Kind]++
		if ev.TID != 0 {
			byTID[ev.TID]++
		}
		switch ev.Kind {
		case captrace.KProbeGranted:
			st := shards[ev.Shard]
			if st == nil {
				st = &shardStat{}
				shards[ev.Shard] = st
			}
			if ev.A == 0 {
				st.local++
			} else {
				st.steals++
			}
		case captrace.KProbeDenied:
			st := shards[ev.Shard]
			if st == nil {
				st = &shardStat{}
				shards[ev.Shard] = st
			}
			st.denies++
		}
	}

	fmt.Fprintf(w, "\n%d events, %d traced requests, spanning %s\n",
		len(all), len(byTID), time.Duration(all[len(all)-1].TS-all[0].TS))
	var ks []captrace.Kind
	for k := range kinds {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for _, k := range ks {
		fmt.Fprintf(w, "  %-14s %d\n", k, kinds[k])
	}

	if len(shards) > 0 {
		fmt.Fprintln(w, "\npool shards (from probe events):")
		var ids []int
		for sh := range shards {
			ids = append(ids, int(sh))
		}
		sort.Ints(ids)
		for _, sh := range ids {
			st := shards[uint8(sh)]
			fmt.Fprintf(w, "  shard %2d: local-hits=%-6d steals=%-6d denies=%d\n",
				sh, st.local, st.steals, st.denies)
		}
	}

	if len(byTID) > 0 {
		type tidCount struct {
			tid uint64
			n   int
		}
		var tids []tidCount
		for tid, n := range byTID {
			tids = append(tids, tidCount{tid, n})
		}
		sort.Slice(tids, func(i, j int) bool {
			if tids[i].n != tids[j].n {
				return tids[i].n > tids[j].n
			}
			return tids[i].tid < tids[j].tid
		})
		if len(tids) > 10 {
			tids = tids[:10]
		}
		fmt.Fprintln(w, "\nbusiest traces (pass to -id):")
		for _, tc := range tids {
			fmt.Fprintf(w, "  %s  %d events\n", captrace.FormatID(tc.tid), tc.n)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "captrace: "+format+"\n", args...)
	os.Exit(1)
}
