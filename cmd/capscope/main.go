// Command capscope reads incident bundles — the black-box flight
// recordings internal/capscope captures when an SLO burn, throttle
// edge, shed storm or breaker trip fires — and renders them for a
// human. It speaks both transports: live fleets over HTTP
// (/debug/incident on a capserve, caprouter or -debug-addr listener)
// and bundle directories on disk, which is how post-mortems work after
// the process is gone.
//
// Usage:
//
//	capscope list http://localhost:8090 /var/tmp/capscope   # every target's incident index
//	capscope report http://localhost:8090                   # latest bundle, rendered
//	capscope report /var/tmp/capscope inc-000003-shed_storm-1754650000000
//	capscope diff /var/tmp/capscope/caprouter/inc-000001-* /var/tmp/capscope/caprouter/inc-000002-*
//
// A directory target may be a single bundle (contains manifest.json),
// one recorder's dir (contains inc-* bundles), or a fleet root whose
// subdirectories are recorder dirs — the shape caprouter -incident-dir
// writes (one subdir per process). diff accepts any two targets that
// resolve to a bundle; a recorder dir or URL without an id means its
// latest.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/capscope"
	"repro/internal/captrace"
	"repro/internal/capwatch"
	"repro/internal/profparse"
)

func main() {
	top := flag.Int("top", 8, "rows per top-N section (trace spans, profile functions)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "list":
		if len(rest) == 0 {
			fail("list needs at least one URL or directory")
		}
		cmdList(rest)
	case "report":
		if len(rest) < 1 || len(rest) > 2 {
			fail("report needs a target and an optional bundle id")
		}
		id := ""
		if len(rest) == 2 {
			id = rest[1]
		}
		cmdReport(rest[0], id, *top)
	case "diff":
		if len(rest) != 2 {
			fail("diff needs exactly two targets")
		}
		cmdDiff(rest[0], rest[1], *top)
	default:
		usage()
		fail("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: capscope [-top n] <command> ...

  list <url-or-dir>...        incident index per target
  report <target> [id]        render one bundle (latest when id omitted)
  diff <target-a> <target-b>  compare two bundles (latest per target)
`)
}

// ---------------------------------------------------------------------
// Target resolution: URLs and directories both yield []capscope.List.

func isURL(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://")
}

// endpoint normalizes a base URL to its /debug/incident endpoint.
func endpoint(base string) string {
	base = strings.TrimRight(base, "/")
	if strings.HasSuffix(base, "/debug/incident") {
		return base
	}
	return base + "/debug/incident"
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// resolveLists turns one target into incident indexes. Directory
// targets are probed from most to least specific: a bundle dir, a
// recorder dir, a fleet root of recorder dirs.
func resolveLists(target string) ([]capscope.List, error) {
	if isURL(target) {
		body, err := httpGet(endpoint(target))
		if err != nil {
			return nil, err
		}
		return capscope.DecodeLists(body)
	}
	if m, err := capscope.LoadManifest(target); err == nil {
		return []capscope.List{{Source: m.Source, Dir: filepath.Dir(target), Bundles: []capscope.Manifest{m}}}, nil
	}
	if ms := capscope.LoadManifests(target); len(ms) > 0 {
		return []capscope.List{{Source: ms[len(ms)-1].Source, Dir: target, Bundles: ms}}, nil
	}
	ents, err := os.ReadDir(target)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", target, err)
	}
	var lists []capscope.List
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(target, e.Name())
		if ms := capscope.LoadManifests(sub); len(ms) > 0 {
			lists = append(lists, capscope.List{Source: ms[len(ms)-1].Source, Dir: sub, Bundles: ms})
		}
	}
	if len(lists) == 0 {
		return nil, fmt.Errorf("%s: no incident bundles (not a bundle, recorder dir, or fleet root)", target)
	}
	// The router's recorder leads, mirroring the HTTP merge order.
	sort.SliceStable(lists, func(i, j int) bool {
		if a, b := lists[i].Source == "caprouter", lists[j].Source == "caprouter"; a != b {
			return a
		}
		return lists[i].Source < lists[j].Source
	})
	return lists, nil
}

// resolveBundle fetches one bundle in full. An empty id means the
// newest bundle across the target's recorders.
func resolveBundle(target, id string) (*capscope.Bundle, error) {
	lists, err := resolveLists(target)
	if err != nil {
		return nil, err
	}
	var dir string
	if id == "" {
		var latest *capscope.Manifest
		for i := range lists {
			for j := range lists[i].Bundles {
				m := &lists[i].Bundles[j]
				if latest == nil || m.TakenAtUnixMS > latest.TakenAtUnixMS {
					latest, dir = m, lists[i].Dir
				}
			}
		}
		if latest == nil {
			return nil, fmt.Errorf("%s: no incident bundles", target)
		}
		id = latest.ID
	} else {
		for _, l := range lists {
			for _, m := range l.Bundles {
				if m.ID == id {
					dir = l.Dir
				}
			}
		}
		if dir == "" {
			return nil, fmt.Errorf("%s: no bundle %q", target, id)
		}
	}
	if isURL(target) {
		body, err := httpGet(endpoint(target) + "?id=" + id)
		if err != nil {
			return nil, err
		}
		var b capscope.Bundle
		if err := json.Unmarshal(body, &b); err != nil {
			return nil, fmt.Errorf("decoding bundle %s: %v", id, err)
		}
		return &b, nil
	}
	return capscope.LoadBundle(filepath.Join(dir, id))
}

// ---------------------------------------------------------------------
// list

func cmdList(targets []string) {
	failed := false
	for _, t := range targets {
		lists, err := resolveLists(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capscope: %v\n", err)
			failed = true
			continue
		}
		fmt.Printf("%s\n", t)
		for _, l := range lists {
			fmt.Printf("  %s  (%d resident, %d captured this lifetime)\n",
				l.Source, len(l.Bundles), l.IncidentsTotal)
			for _, m := range l.Bundles {
				fmt.Printf("    %-44s %-22s burn %6.2f  %s\n",
					m.ID, m.Trigger, m.SLO.BurnRate,
					time.UnixMilli(m.TakenAtUnixMS).Format("2006-01-02 15:04:05"))
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------
// report

func cmdReport(target, id string, top int) {
	b, err := resolveBundle(target, id)
	if err != nil {
		fail("%v", err)
	}
	m := b.Manifest
	fmt.Printf("incident %s\n", m.ID)
	fmt.Printf("  source   %s  (%s, go %s, gomaxprocs %d)\n", m.Source, m.Build.Version, m.Build.Go, m.Build.MaxProcs)
	fmt.Printf("  trigger  %s\n", m.Trigger)
	fmt.Printf("  reason   %s\n", m.Reason)
	fmt.Printf("  taken    %s  (cooldown %gs)\n", time.UnixMilli(m.TakenAtUnixMS).Format(time.RFC3339), m.CooldownS)
	fmt.Printf("  slo      target p99 < %gms, avail >= %.4g  |  burn fast %.2f (%gs) slow %.2f (%gs)  exhausted=%v\n",
		m.SLO.TargetP99MS, m.SLO.Availability,
		m.SLO.Fast.Burn, m.SLO.Fast.WindowS, m.SLO.Slow.Burn, m.SLO.Slow.WindowS, m.SLO.Exhausted)
	for _, n := range m.Notes {
		fmt.Printf("  note     %s\n", n)
	}

	if len(b.Watch) > 0 {
		var rep capwatch.Report
		if err := json.Unmarshal(b.Watch, &rep); err == nil {
			fmt.Printf("\nrollup (%gs window, %d samples)\n", rep.WindowActualS, rep.WindowSamples)
			fmt.Printf("  req %.1f/s  grant %.1f%%  avail %.2f%%  p50/p95/p99 %.2f/%.2f/%.2f ms\n",
				rep.Rates.RequestsPerSec, 100*rep.Rates.GrantRate, 100*rep.Rates.Availability,
				rep.Latency.P50MS, rep.Latency.P95MS, rep.Latency.P99MS)
			fmt.Printf("  queue %d/%d  free contexts %d  goroutines %d  heap %.1fMB  incidents %d\n",
				rep.QueueOccupancy, rep.QueueDepth, rep.FreeContexts,
				rep.Go.Goroutines, float64(rep.Go.HeapLiveBytes)/(1<<20), rep.Incidents)
		}
	}

	if len(b.Fault) > 0 {
		var fd capscope.FaultDoc
		if err := json.Unmarshal(b.Fault, &fd); err == nil {
			fmt.Printf("\nfault injector: armed=%v, %d live rules\n", fd.Armed, len(fd.Rules))
			for _, r := range fd.Rules {
				scope := r.Backend
				if scope == "" {
					scope = "*"
				}
				fmt.Printf("  #%d %s backend=%s decided=%d fired=%d\n", r.ID, r.Kind, scope, r.Decided, r.Fired)
			}
		}
	}

	if len(b.Backends) > 0 {
		var bd capscope.BackendsDoc
		if err := json.Unmarshal(b.Backends, &bd); err == nil && len(bd.Names) > 0 {
			fmt.Printf("\nbackends (%d)\n", len(bd.Names))
			for i, name := range bd.Names {
				if i < len(bd.Backends) {
					c := bd.Backends[i]
					broken := ""
					if c.Broken {
						broken = "  BREAKER OPEN"
					}
					fmt.Printf("  %-22s dispatched=%d served=%d sheds=%d ejections=%d credits=%d(%d)%s\n",
						name, c.Dispatches, c.Served, c.Sheds, c.Ejections, c.Credits, c.Inflight, broken)
				}
			}
		}
	}

	if spans := traceSpans(b.Trace, top); len(spans) > 0 {
		fmt.Printf("\ntop trace spans (by duration)\n")
		for _, s := range spans {
			fmt.Printf("  %s  %8.2fms  %3d events  %s -> %s  [%s]\n",
				captrace.FormatID(s.tid), float64(s.dur)/1e6, s.n, s.first, s.last, s.source)
		}
	}

	printProfile("cpu profile", b.CPUProfile, top)
	printProfile("heap profile", b.HeapProfile, top)
}

type span struct {
	tid         uint64
	dur         int64
	n           int
	first, last string
	source      string
}

// traceSpans groups the bundle's trace events by trace ID and ranks
// the resulting spans by wall duration.
func traceSpans(raw json.RawMessage, top int) []span {
	if len(raw) == 0 {
		return nil
	}
	snaps, err := captrace.DecodeSnapshots(bytes.NewReader(raw))
	if err != nil {
		return nil
	}
	events := captrace.MergeEvents(snaps...)
	byTID := map[uint64][]captrace.Event{}
	for _, e := range events {
		if e.TID != 0 {
			byTID[e.TID] = append(byTID[e.TID], e)
		}
	}
	spans := make([]span, 0, len(byTID))
	for tid, evs := range byTID {
		s := span{tid: tid, n: len(evs), first: evs[0].Kind.String(), last: evs[len(evs)-1].Kind.String(),
			dur: evs[len(evs)-1].TS - evs[0].TS, source: evs[0].Source}
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].dur > spans[j].dur })
	if len(spans) > top {
		spans = spans[:top]
	}
	return spans
}

func printProfile(title string, data []byte, top int) {
	if len(data) == 0 {
		return
	}
	p, err := profparse.Parse(data)
	if err != nil {
		fmt.Printf("\n%s: unparseable (%v)\n", title, err)
		return
	}
	unit := ""
	if n := len(p.SampleTypes); n > 0 {
		unit = p.SampleTypes[n-1]
	}
	total := p.TotalValue(-1)
	fmt.Printf("\n%s (%s, total %s)\n", title, unit, fmtValue(total, unit))
	for _, e := range p.Top(top, -1) {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(e.Flat) / float64(total)
		}
		fmt.Printf("  %10s flat (%5.1f%%)  %10s cum  %s\n",
			fmtValue(e.Flat, unit), pct, fmtValue(e.Cum, unit), e.Name)
	}
}

// fmtValue renders a profile value in its unit's natural scale.
func fmtValue(v int64, unit string) string {
	switch {
	case strings.HasSuffix(unit, "/nanoseconds"):
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case strings.HasSuffix(unit, "/bytes"):
		return fmt.Sprintf("%.1fKB", float64(v)/1024)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// ---------------------------------------------------------------------
// diff

func cmdDiff(ta, tb string, top int) {
	a, err := resolveBundle(ta, "")
	if err != nil {
		fail("%v", err)
	}
	b, err := resolveBundle(tb, "")
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("a: %s  (%s, %s)\n", a.Manifest.ID, a.Manifest.Trigger,
		time.UnixMilli(a.Manifest.TakenAtUnixMS).Format(time.RFC3339))
	fmt.Printf("b: %s  (%s, %s)\n\n", b.Manifest.ID, b.Manifest.Trigger,
		time.UnixMilli(b.Manifest.TakenAtUnixMS).Format(time.RFC3339))

	row := func(name string, va, vb float64) {
		fmt.Printf("  %-16s %12.2f %12.2f %+12.2f\n", name, va, vb, vb-va)
	}
	fmt.Printf("  %-16s %12s %12s %12s\n", "", "a", "b", "delta")
	row("burn (fast)", a.Manifest.SLO.Fast.Burn, b.Manifest.SLO.Fast.Burn)
	row("burn (slow)", a.Manifest.SLO.Slow.Burn, b.Manifest.SLO.Slow.Burn)
	var ra, rb capwatch.Report
	okA := len(a.Watch) > 0 && json.Unmarshal(a.Watch, &ra) == nil
	okB := len(b.Watch) > 0 && json.Unmarshal(b.Watch, &rb) == nil
	if okA && okB {
		row("req/s", ra.Rates.RequestsPerSec, rb.Rates.RequestsPerSec)
		row("grant %", 100*ra.Rates.GrantRate, 100*rb.Rates.GrantRate)
		row("avail %", 100*ra.Rates.Availability, 100*rb.Rates.Availability)
		row("p99 ms", ra.Latency.P99MS, rb.Latency.P99MS)
		row("goroutines", float64(ra.Go.Goroutines), float64(rb.Go.Goroutines))
		row("heap MB", float64(ra.Go.HeapLiveBytes)/(1<<20), float64(rb.Go.HeapLiveBytes)/(1<<20))
	}

	movers := profileMovers(a.CPUProfile, b.CPUProfile, top)
	if len(movers) > 0 {
		fmt.Printf("\ncpu profile movers (cum, %% of own profile)\n")
		for _, mv := range movers {
			fmt.Printf("  %6.1f%% -> %6.1f%%  (%+6.1f%%)  %s\n", mv.a, mv.b, mv.b-mv.a, mv.name)
		}
	}
}

type mover struct {
	name string
	a, b float64 // percent of each profile's total
}

// profileMovers ranks functions by how much their share of cumulative
// profile weight shifted between the two captures. Shares, not raw
// values: the two bursts cover different wall spans.
func profileMovers(da, db []byte, top int) []mover {
	sa, sb := cumShares(da), cumShares(db)
	if sa == nil || sb == nil {
		return nil
	}
	names := map[string]bool{}
	for n := range sa {
		names[n] = true
	}
	for n := range sb {
		names[n] = true
	}
	movers := make([]mover, 0, len(names))
	for n := range names {
		movers = append(movers, mover{name: n, a: sa[n], b: sb[n]})
	}
	sort.Slice(movers, func(i, j int) bool {
		di, dj := movers[i].b-movers[i].a, movers[j].b-movers[j].a
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	if len(movers) > top {
		movers = movers[:top]
	}
	return movers
}

func cumShares(data []byte) map[string]float64 {
	if len(data) == 0 {
		return nil
	}
	p, err := profparse.Parse(data)
	if err != nil {
		return nil
	}
	total := p.TotalValue(-1)
	if total <= 0 {
		return nil
	}
	shares := map[string]float64{}
	for _, e := range p.Top(1<<20, -1) {
		shares[e.Name] = 100 * float64(e.Cum) / float64(total)
	}
	return shares
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "capscope: "+format+"\n", args...)
	os.Exit(1)
}
