// Command capstress measures the capsule runtime's probe/divide hot path
// and emits a machine-readable BENCH_capsule.json, starting the repo's
// tracked benchmark trajectory. It runs the internal/capsule/hotpath
// suite (the live lock-free runtime AND the retained mutex baseline, so
// every report carries its own before/after), a short Divide storm for
// the grant rate, and an in-process capserve closed loop for serving
// throughput.
//
// Usage:
//
//	capstress                                  # print the report, write BENCH_capsule.json
//	capstress -out bench.json -serve=false     # hot path only, custom path
//	capstress -serve-duration 5s -serve-n 4000 # longer serving measurement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capserve"
	"repro/internal/capsule"
	"repro/internal/capsule/hotpath"
)

// caseResult is one benchmark's outcome.
type caseResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// report is the BENCH_capsule.json schema.
type report struct {
	GeneratedBy string  `json:"generated_by"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	DurationS   float64 `json:"duration_s"`

	// Results by hotpath case name ("atomic/..." is the live lock-free
	// runtime, "mutex/..." the pre-rewrite baseline).
	Results map[string]caseResult `json:"results"`

	// Speedups divide mutex ns/op by atomic ns/op for each shared path.
	Speedups map[string]float64 `json:"speedups"`

	Storm *stormResult `json:"storm,omitempty"`
	Serve *serveResult `json:"serve,omitempty"`
}

type stormResult struct {
	Goroutines int     `json:"goroutines"`
	Contexts   int     `json:"contexts"`
	Probes     uint64  `json:"probes"`
	Granted    uint64  `json:"granted"`
	GrantRate  float64 `json:"grant_rate"`
	DurationS  float64 `json:"duration_s"`
}

type serveResult struct {
	Workload  string  `json:"workload"`
	N         int     `json:"n"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	RPS       float64 `json:"rps"`
	DurationS float64 `json:"duration_s"`
}

func main() {
	out := flag.String("out", "BENCH_capsule.json", "output path for the JSON report")
	serve := flag.Bool("serve", true, "also measure in-process capserve throughput")
	serveDur := flag.Duration("serve-duration", 2*time.Second, "capserve measurement duration")
	serveN := flag.Int("serve-n", 2000, "capserve request input size")
	stormDur := flag.Duration("storm-duration", 500*time.Millisecond, "divide-storm duration for the grant rate")
	flag.Parse()

	start := time.Now()
	r := report{
		GeneratedBy: "cmd/capstress",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Results:     map[string]caseResult{},
		Speedups:    map[string]float64{},
	}

	for _, c := range hotpath.Cases() {
		res := testing.Benchmark(c.Bench)
		r.Results[c.Name] = caseResult{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		cr := r.Results[c.Name]
		fmt.Printf("%-36s %12.1f ns/op %6d allocs/op %6d B/op\n", c.Name, cr.NsPerOp, cr.AllocsPerOp, cr.BytesPerOp)
	}
	for name, atomicRes := range r.Results {
		path, ok := strings.CutPrefix(name, "atomic/")
		if !ok {
			continue
		}
		if mutexRes, ok := r.Results["mutex/"+path]; ok && atomicRes.NsPerOp > 0 {
			r.Speedups[path] = mutexRes.NsPerOp / atomicRes.NsPerOp
		}
	}

	r.Storm = divideStorm(*stormDur)
	fmt.Printf("storm: %d goroutines on %d contexts: %d probes, grant rate %.3f\n",
		r.Storm.Goroutines, r.Storm.Contexts, r.Storm.Probes, r.Storm.GrantRate)

	if *serve {
		s, err := serveLoop(*serveDur, *serveN)
		if err != nil {
			fail("capserve measurement: %v", err)
		}
		r.Serve = s
		fmt.Printf("capserve: %d clients x %s on %s n=%d: %.1f req/s (%d requests, %d errors)\n",
			s.Clients, serveDur, s.Workload, s.N, s.RPS, s.Requests, s.Errors)
	}

	r.DurationS = time.Since(start).Seconds()

	f, err := os.Create(*out)
	if err != nil {
		fail("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fail("%v", err)
	}
	if err := f.Close(); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %s (probe_granted_parallel_4x speedup: %.2fx)\n", *out, r.Speedups["probe_granted_parallel_4x"])
}

// divideStorm hammers a fresh default-sized runtime with Divide offers
// from 4×GOMAXPROCS goroutines and reports the paper's "% divisions
// allowed" under saturation.
func divideStorm(d time.Duration) *stormResult {
	rt := capsule.NewDefault()
	defer rt.Close()
	goroutines := 4 * runtime.GOMAXPROCS(0)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rt.Divide(func() {})
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	rt.Join()
	elapsed := time.Since(start)
	s := rt.Stats()
	return &stormResult{
		Goroutines: goroutines,
		Contexts:   rt.Contexts(),
		Probes:     s.Probes,
		Granted:    s.Granted,
		GrantRate:  s.GrantRate(),
		DurationS:  elapsed.Seconds(),
	}
}

// serveLoop stands up capserve in-process and drives it closed-loop, so
// the JSON carries an end-to-end serving number next to the
// microbenchmarks.
func serveLoop(d time.Duration, n int) (*serveResult, error) {
	rt := capsule.NewDefault()
	defer rt.Close()
	srv, err := capserve.New(capserve.Config{Runtime: rt})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	clients := 2 * runtime.GOMAXPROCS(0)
	if clients < 8 {
		clients = 8
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var requests, errors atomic.Int64
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				url := fmt.Sprintf("%s/run/quicksort?n=%d&seed=%d", ts.URL, n, c*1000+i%64)
				resp, err := client.Get(url)
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					requests.Add(1)
				} else {
					errors.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rt.Join()
	return &serveResult{
		Workload:  "quicksort",
		N:         n,
		Clients:   clients,
		Requests:  int(requests.Load()),
		Errors:    int(errors.Load()),
		RPS:       float64(requests.Load()) / elapsed.Seconds(),
		DurationS: elapsed.Seconds(),
	}, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "capstress: "+format+"\n", args...)
	os.Exit(1)
}
